file(REMOVE_RECURSE
  "libsintra_facade.a"
)
