# Empty dependencies file for sintra_facade.
# This may be replaced when dependencies are built.
