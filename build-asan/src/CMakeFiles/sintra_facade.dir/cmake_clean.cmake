file(REMOVE_RECURSE
  "CMakeFiles/sintra_facade.dir/facade/blocking_api.cpp.o"
  "CMakeFiles/sintra_facade.dir/facade/blocking_api.cpp.o.d"
  "CMakeFiles/sintra_facade.dir/facade/local_transport.cpp.o"
  "CMakeFiles/sintra_facade.dir/facade/local_transport.cpp.o.d"
  "libsintra_facade.a"
  "libsintra_facade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sintra_facade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
