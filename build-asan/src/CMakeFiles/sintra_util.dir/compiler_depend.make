# Empty compiler generated dependencies file for sintra_util.
# This may be replaced when dependencies are built.
