file(REMOVE_RECURSE
  "libsintra_util.a"
)
