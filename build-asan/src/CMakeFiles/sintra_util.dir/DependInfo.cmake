
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/bytes.cpp" "src/CMakeFiles/sintra_util.dir/util/bytes.cpp.o" "gcc" "src/CMakeFiles/sintra_util.dir/util/bytes.cpp.o.d"
  "/root/repo/src/util/hex.cpp" "src/CMakeFiles/sintra_util.dir/util/hex.cpp.o" "gcc" "src/CMakeFiles/sintra_util.dir/util/hex.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/sintra_util.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/sintra_util.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/serde.cpp" "src/CMakeFiles/sintra_util.dir/util/serde.cpp.o" "gcc" "src/CMakeFiles/sintra_util.dir/util/serde.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
