file(REMOVE_RECURSE
  "CMakeFiles/sintra_util.dir/util/bytes.cpp.o"
  "CMakeFiles/sintra_util.dir/util/bytes.cpp.o.d"
  "CMakeFiles/sintra_util.dir/util/hex.cpp.o"
  "CMakeFiles/sintra_util.dir/util/hex.cpp.o.d"
  "CMakeFiles/sintra_util.dir/util/rng.cpp.o"
  "CMakeFiles/sintra_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/sintra_util.dir/util/serde.cpp.o"
  "CMakeFiles/sintra_util.dir/util/serde.cpp.o.d"
  "libsintra_util.a"
  "libsintra_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sintra_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
