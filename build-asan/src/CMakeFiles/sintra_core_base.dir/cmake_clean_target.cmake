file(REMOVE_RECURSE
  "libsintra_core_base.a"
)
