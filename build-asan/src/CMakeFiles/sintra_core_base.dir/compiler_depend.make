# Empty compiler generated dependencies file for sintra_core_base.
# This may be replaced when dependencies are built.
