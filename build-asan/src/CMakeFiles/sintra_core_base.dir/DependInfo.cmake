
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/agreement/array_agreement.cpp" "src/CMakeFiles/sintra_core_base.dir/core/agreement/array_agreement.cpp.o" "gcc" "src/CMakeFiles/sintra_core_base.dir/core/agreement/array_agreement.cpp.o.d"
  "/root/repo/src/core/agreement/binary_agreement.cpp" "src/CMakeFiles/sintra_core_base.dir/core/agreement/binary_agreement.cpp.o" "gcc" "src/CMakeFiles/sintra_core_base.dir/core/agreement/binary_agreement.cpp.o.d"
  "/root/repo/src/core/agreement/validated_agreement.cpp" "src/CMakeFiles/sintra_core_base.dir/core/agreement/validated_agreement.cpp.o" "gcc" "src/CMakeFiles/sintra_core_base.dir/core/agreement/validated_agreement.cpp.o.d"
  "/root/repo/src/core/broadcast/consistent_broadcast.cpp" "src/CMakeFiles/sintra_core_base.dir/core/broadcast/consistent_broadcast.cpp.o" "gcc" "src/CMakeFiles/sintra_core_base.dir/core/broadcast/consistent_broadcast.cpp.o.d"
  "/root/repo/src/core/broadcast/reliable_broadcast.cpp" "src/CMakeFiles/sintra_core_base.dir/core/broadcast/reliable_broadcast.cpp.o" "gcc" "src/CMakeFiles/sintra_core_base.dir/core/broadcast/reliable_broadcast.cpp.o.d"
  "/root/repo/src/core/channel/atomic_channel.cpp" "src/CMakeFiles/sintra_core_base.dir/core/channel/atomic_channel.cpp.o" "gcc" "src/CMakeFiles/sintra_core_base.dir/core/channel/atomic_channel.cpp.o.d"
  "/root/repo/src/core/channel/broadcast_channel.cpp" "src/CMakeFiles/sintra_core_base.dir/core/channel/broadcast_channel.cpp.o" "gcc" "src/CMakeFiles/sintra_core_base.dir/core/channel/broadcast_channel.cpp.o.d"
  "/root/repo/src/core/channel/optimistic_channel.cpp" "src/CMakeFiles/sintra_core_base.dir/core/channel/optimistic_channel.cpp.o" "gcc" "src/CMakeFiles/sintra_core_base.dir/core/channel/optimistic_channel.cpp.o.d"
  "/root/repo/src/core/channel/secure_atomic_channel.cpp" "src/CMakeFiles/sintra_core_base.dir/core/channel/secure_atomic_channel.cpp.o" "gcc" "src/CMakeFiles/sintra_core_base.dir/core/channel/secure_atomic_channel.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/CMakeFiles/sintra_core_base.dir/core/config.cpp.o" "gcc" "src/CMakeFiles/sintra_core_base.dir/core/config.cpp.o.d"
  "/root/repo/src/core/dispatcher.cpp" "src/CMakeFiles/sintra_core_base.dir/core/dispatcher.cpp.o" "gcc" "src/CMakeFiles/sintra_core_base.dir/core/dispatcher.cpp.o.d"
  "/root/repo/src/core/link/sliding_window.cpp" "src/CMakeFiles/sintra_core_base.dir/core/link/sliding_window.cpp.o" "gcc" "src/CMakeFiles/sintra_core_base.dir/core/link/sliding_window.cpp.o.d"
  "/root/repo/src/core/message.cpp" "src/CMakeFiles/sintra_core_base.dir/core/message.cpp.o" "gcc" "src/CMakeFiles/sintra_core_base.dir/core/message.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/CMakeFiles/sintra_crypto.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/sintra_bignum.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/sintra_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
