file(REMOVE_RECURSE
  "CMakeFiles/sintra_core_base.dir/core/agreement/array_agreement.cpp.o"
  "CMakeFiles/sintra_core_base.dir/core/agreement/array_agreement.cpp.o.d"
  "CMakeFiles/sintra_core_base.dir/core/agreement/binary_agreement.cpp.o"
  "CMakeFiles/sintra_core_base.dir/core/agreement/binary_agreement.cpp.o.d"
  "CMakeFiles/sintra_core_base.dir/core/agreement/validated_agreement.cpp.o"
  "CMakeFiles/sintra_core_base.dir/core/agreement/validated_agreement.cpp.o.d"
  "CMakeFiles/sintra_core_base.dir/core/broadcast/consistent_broadcast.cpp.o"
  "CMakeFiles/sintra_core_base.dir/core/broadcast/consistent_broadcast.cpp.o.d"
  "CMakeFiles/sintra_core_base.dir/core/broadcast/reliable_broadcast.cpp.o"
  "CMakeFiles/sintra_core_base.dir/core/broadcast/reliable_broadcast.cpp.o.d"
  "CMakeFiles/sintra_core_base.dir/core/channel/atomic_channel.cpp.o"
  "CMakeFiles/sintra_core_base.dir/core/channel/atomic_channel.cpp.o.d"
  "CMakeFiles/sintra_core_base.dir/core/channel/broadcast_channel.cpp.o"
  "CMakeFiles/sintra_core_base.dir/core/channel/broadcast_channel.cpp.o.d"
  "CMakeFiles/sintra_core_base.dir/core/channel/optimistic_channel.cpp.o"
  "CMakeFiles/sintra_core_base.dir/core/channel/optimistic_channel.cpp.o.d"
  "CMakeFiles/sintra_core_base.dir/core/channel/secure_atomic_channel.cpp.o"
  "CMakeFiles/sintra_core_base.dir/core/channel/secure_atomic_channel.cpp.o.d"
  "CMakeFiles/sintra_core_base.dir/core/config.cpp.o"
  "CMakeFiles/sintra_core_base.dir/core/config.cpp.o.d"
  "CMakeFiles/sintra_core_base.dir/core/dispatcher.cpp.o"
  "CMakeFiles/sintra_core_base.dir/core/dispatcher.cpp.o.d"
  "CMakeFiles/sintra_core_base.dir/core/link/sliding_window.cpp.o"
  "CMakeFiles/sintra_core_base.dir/core/link/sliding_window.cpp.o.d"
  "CMakeFiles/sintra_core_base.dir/core/message.cpp.o"
  "CMakeFiles/sintra_core_base.dir/core/message.cpp.o.d"
  "libsintra_core_base.a"
  "libsintra_core_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sintra_core_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
