file(REMOVE_RECURSE
  "libsintra_sim.a"
)
