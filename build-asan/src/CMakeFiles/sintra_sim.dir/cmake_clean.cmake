file(REMOVE_RECURSE
  "CMakeFiles/sintra_sim.dir/sim/adversary.cpp.o"
  "CMakeFiles/sintra_sim.dir/sim/adversary.cpp.o.d"
  "CMakeFiles/sintra_sim.dir/sim/network.cpp.o"
  "CMakeFiles/sintra_sim.dir/sim/network.cpp.o.d"
  "CMakeFiles/sintra_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/sintra_sim.dir/sim/simulator.cpp.o.d"
  "CMakeFiles/sintra_sim.dir/sim/topologies.cpp.o"
  "CMakeFiles/sintra_sim.dir/sim/topologies.cpp.o.d"
  "libsintra_sim.a"
  "libsintra_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sintra_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
