# Empty dependencies file for sintra_sim.
# This may be replaced when dependencies are built.
