
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aes128.cpp" "src/CMakeFiles/sintra_crypto.dir/crypto/aes128.cpp.o" "gcc" "src/CMakeFiles/sintra_crypto.dir/crypto/aes128.cpp.o.d"
  "/root/repo/src/crypto/coin.cpp" "src/CMakeFiles/sintra_crypto.dir/crypto/coin.cpp.o" "gcc" "src/CMakeFiles/sintra_crypto.dir/crypto/coin.cpp.o.d"
  "/root/repo/src/crypto/cost.cpp" "src/CMakeFiles/sintra_crypto.dir/crypto/cost.cpp.o" "gcc" "src/CMakeFiles/sintra_crypto.dir/crypto/cost.cpp.o.d"
  "/root/repo/src/crypto/dealer.cpp" "src/CMakeFiles/sintra_crypto.dir/crypto/dealer.cpp.o" "gcc" "src/CMakeFiles/sintra_crypto.dir/crypto/dealer.cpp.o.d"
  "/root/repo/src/crypto/group.cpp" "src/CMakeFiles/sintra_crypto.dir/crypto/group.cpp.o" "gcc" "src/CMakeFiles/sintra_crypto.dir/crypto/group.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "src/CMakeFiles/sintra_crypto.dir/crypto/hmac.cpp.o" "gcc" "src/CMakeFiles/sintra_crypto.dir/crypto/hmac.cpp.o.d"
  "/root/repo/src/crypto/keyfile.cpp" "src/CMakeFiles/sintra_crypto.dir/crypto/keyfile.cpp.o" "gcc" "src/CMakeFiles/sintra_crypto.dir/crypto/keyfile.cpp.o.d"
  "/root/repo/src/crypto/multi_sig.cpp" "src/CMakeFiles/sintra_crypto.dir/crypto/multi_sig.cpp.o" "gcc" "src/CMakeFiles/sintra_crypto.dir/crypto/multi_sig.cpp.o.d"
  "/root/repo/src/crypto/rsa.cpp" "src/CMakeFiles/sintra_crypto.dir/crypto/rsa.cpp.o" "gcc" "src/CMakeFiles/sintra_crypto.dir/crypto/rsa.cpp.o.d"
  "/root/repo/src/crypto/sha1.cpp" "src/CMakeFiles/sintra_crypto.dir/crypto/sha1.cpp.o" "gcc" "src/CMakeFiles/sintra_crypto.dir/crypto/sha1.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/CMakeFiles/sintra_crypto.dir/crypto/sha256.cpp.o" "gcc" "src/CMakeFiles/sintra_crypto.dir/crypto/sha256.cpp.o.d"
  "/root/repo/src/crypto/shamir.cpp" "src/CMakeFiles/sintra_crypto.dir/crypto/shamir.cpp.o" "gcc" "src/CMakeFiles/sintra_crypto.dir/crypto/shamir.cpp.o.d"
  "/root/repo/src/crypto/tdh2.cpp" "src/CMakeFiles/sintra_crypto.dir/crypto/tdh2.cpp.o" "gcc" "src/CMakeFiles/sintra_crypto.dir/crypto/tdh2.cpp.o.d"
  "/root/repo/src/crypto/threshold_sig.cpp" "src/CMakeFiles/sintra_crypto.dir/crypto/threshold_sig.cpp.o" "gcc" "src/CMakeFiles/sintra_crypto.dir/crypto/threshold_sig.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/CMakeFiles/sintra_bignum.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/sintra_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
