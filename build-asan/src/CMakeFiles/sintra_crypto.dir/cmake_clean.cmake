file(REMOVE_RECURSE
  "CMakeFiles/sintra_crypto.dir/crypto/aes128.cpp.o"
  "CMakeFiles/sintra_crypto.dir/crypto/aes128.cpp.o.d"
  "CMakeFiles/sintra_crypto.dir/crypto/coin.cpp.o"
  "CMakeFiles/sintra_crypto.dir/crypto/coin.cpp.o.d"
  "CMakeFiles/sintra_crypto.dir/crypto/cost.cpp.o"
  "CMakeFiles/sintra_crypto.dir/crypto/cost.cpp.o.d"
  "CMakeFiles/sintra_crypto.dir/crypto/dealer.cpp.o"
  "CMakeFiles/sintra_crypto.dir/crypto/dealer.cpp.o.d"
  "CMakeFiles/sintra_crypto.dir/crypto/group.cpp.o"
  "CMakeFiles/sintra_crypto.dir/crypto/group.cpp.o.d"
  "CMakeFiles/sintra_crypto.dir/crypto/hmac.cpp.o"
  "CMakeFiles/sintra_crypto.dir/crypto/hmac.cpp.o.d"
  "CMakeFiles/sintra_crypto.dir/crypto/keyfile.cpp.o"
  "CMakeFiles/sintra_crypto.dir/crypto/keyfile.cpp.o.d"
  "CMakeFiles/sintra_crypto.dir/crypto/multi_sig.cpp.o"
  "CMakeFiles/sintra_crypto.dir/crypto/multi_sig.cpp.o.d"
  "CMakeFiles/sintra_crypto.dir/crypto/rsa.cpp.o"
  "CMakeFiles/sintra_crypto.dir/crypto/rsa.cpp.o.d"
  "CMakeFiles/sintra_crypto.dir/crypto/sha1.cpp.o"
  "CMakeFiles/sintra_crypto.dir/crypto/sha1.cpp.o.d"
  "CMakeFiles/sintra_crypto.dir/crypto/sha256.cpp.o"
  "CMakeFiles/sintra_crypto.dir/crypto/sha256.cpp.o.d"
  "CMakeFiles/sintra_crypto.dir/crypto/shamir.cpp.o"
  "CMakeFiles/sintra_crypto.dir/crypto/shamir.cpp.o.d"
  "CMakeFiles/sintra_crypto.dir/crypto/tdh2.cpp.o"
  "CMakeFiles/sintra_crypto.dir/crypto/tdh2.cpp.o.d"
  "CMakeFiles/sintra_crypto.dir/crypto/threshold_sig.cpp.o"
  "CMakeFiles/sintra_crypto.dir/crypto/threshold_sig.cpp.o.d"
  "libsintra_crypto.a"
  "libsintra_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sintra_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
