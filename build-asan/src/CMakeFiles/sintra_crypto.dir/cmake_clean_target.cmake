file(REMOVE_RECURSE
  "libsintra_crypto.a"
)
