# Empty dependencies file for sintra_crypto.
# This may be replaced when dependencies are built.
