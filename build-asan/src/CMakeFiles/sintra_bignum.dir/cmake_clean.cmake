file(REMOVE_RECURSE
  "CMakeFiles/sintra_bignum.dir/bignum/bigint.cpp.o"
  "CMakeFiles/sintra_bignum.dir/bignum/bigint.cpp.o.d"
  "CMakeFiles/sintra_bignum.dir/bignum/montgomery.cpp.o"
  "CMakeFiles/sintra_bignum.dir/bignum/montgomery.cpp.o.d"
  "CMakeFiles/sintra_bignum.dir/bignum/prime.cpp.o"
  "CMakeFiles/sintra_bignum.dir/bignum/prime.cpp.o.d"
  "libsintra_bignum.a"
  "libsintra_bignum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sintra_bignum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
