
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bignum/bigint.cpp" "src/CMakeFiles/sintra_bignum.dir/bignum/bigint.cpp.o" "gcc" "src/CMakeFiles/sintra_bignum.dir/bignum/bigint.cpp.o.d"
  "/root/repo/src/bignum/montgomery.cpp" "src/CMakeFiles/sintra_bignum.dir/bignum/montgomery.cpp.o" "gcc" "src/CMakeFiles/sintra_bignum.dir/bignum/montgomery.cpp.o.d"
  "/root/repo/src/bignum/prime.cpp" "src/CMakeFiles/sintra_bignum.dir/bignum/prime.cpp.o" "gcc" "src/CMakeFiles/sintra_bignum.dir/bignum/prime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/CMakeFiles/sintra_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
