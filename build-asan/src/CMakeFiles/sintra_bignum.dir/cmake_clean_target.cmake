file(REMOVE_RECURSE
  "libsintra_bignum.a"
)
