# Empty compiler generated dependencies file for sintra_bignum.
# This may be replaced when dependencies are built.
