# Empty compiler generated dependencies file for ext_optimistic.
# This may be replaced when dependencies are built.
