file(REMOVE_RECURSE
  "CMakeFiles/ext_optimistic.dir/ext_optimistic.cpp.o"
  "CMakeFiles/ext_optimistic.dir/ext_optimistic.cpp.o.d"
  "ext_optimistic"
  "ext_optimistic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_optimistic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
