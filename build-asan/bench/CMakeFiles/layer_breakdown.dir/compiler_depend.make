# Empty compiler generated dependencies file for layer_breakdown.
# This may be replaced when dependencies are built.
