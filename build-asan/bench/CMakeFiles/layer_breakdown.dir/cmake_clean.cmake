file(REMOVE_RECURSE
  "CMakeFiles/layer_breakdown.dir/layer_breakdown.cpp.o"
  "CMakeFiles/layer_breakdown.dir/layer_breakdown.cpp.o.d"
  "layer_breakdown"
  "layer_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layer_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
