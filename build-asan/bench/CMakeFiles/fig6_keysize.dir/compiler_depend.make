# Empty compiler generated dependencies file for fig6_keysize.
# This may be replaced when dependencies are built.
