file(REMOVE_RECURSE
  "CMakeFiles/fig6_keysize.dir/fig6_keysize.cpp.o"
  "CMakeFiles/fig6_keysize.dir/fig6_keysize.cpp.o.d"
  "fig6_keysize"
  "fig6_keysize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_keysize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
