# Empty dependencies file for fig5_wan_scatter.
# This may be replaced when dependencies are built.
