file(REMOVE_RECURSE
  "CMakeFiles/fig5_wan_scatter.dir/fig5_wan_scatter.cpp.o"
  "CMakeFiles/fig5_wan_scatter.dir/fig5_wan_scatter.cpp.o.d"
  "fig5_wan_scatter"
  "fig5_wan_scatter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_wan_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
