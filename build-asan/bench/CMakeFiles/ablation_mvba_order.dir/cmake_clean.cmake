file(REMOVE_RECURSE
  "CMakeFiles/ablation_mvba_order.dir/ablation_mvba_order.cpp.o"
  "CMakeFiles/ablation_mvba_order.dir/ablation_mvba_order.cpp.o.d"
  "ablation_mvba_order"
  "ablation_mvba_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mvba_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
