# Empty dependencies file for ablation_mvba_order.
# This may be replaced when dependencies are built.
