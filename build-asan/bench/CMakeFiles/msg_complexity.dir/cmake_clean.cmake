file(REMOVE_RECURSE
  "CMakeFiles/msg_complexity.dir/msg_complexity.cpp.o"
  "CMakeFiles/msg_complexity.dir/msg_complexity.cpp.o.d"
  "msg_complexity"
  "msg_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msg_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
