# Empty dependencies file for msg_complexity.
# This may be replaced when dependencies are built.
