file(REMOVE_RECURSE
  "CMakeFiles/crypto_micro.dir/crypto_micro.cpp.o"
  "CMakeFiles/crypto_micro.dir/crypto_micro.cpp.o.d"
  "crypto_micro"
  "crypto_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
