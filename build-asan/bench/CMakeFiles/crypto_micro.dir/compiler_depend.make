# Empty compiler generated dependencies file for crypto_micro.
# This may be replaced when dependencies are built.
