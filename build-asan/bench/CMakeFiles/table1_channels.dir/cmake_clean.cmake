file(REMOVE_RECURSE
  "CMakeFiles/table1_channels.dir/table1_channels.cpp.o"
  "CMakeFiles/table1_channels.dir/table1_channels.cpp.o.d"
  "table1_channels"
  "table1_channels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
