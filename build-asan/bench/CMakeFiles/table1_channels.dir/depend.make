# Empty dependencies file for table1_channels.
# This may be replaced when dependencies are built.
