file(REMOVE_RECURSE
  "CMakeFiles/fig4_lan_scatter.dir/fig4_lan_scatter.cpp.o"
  "CMakeFiles/fig4_lan_scatter.dir/fig4_lan_scatter.cpp.o.d"
  "fig4_lan_scatter"
  "fig4_lan_scatter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_lan_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
