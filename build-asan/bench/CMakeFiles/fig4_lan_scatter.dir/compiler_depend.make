# Empty compiler generated dependencies file for fig4_lan_scatter.
# This may be replaced when dependencies are built.
