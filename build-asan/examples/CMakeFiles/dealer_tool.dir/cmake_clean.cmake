file(REMOVE_RECURSE
  "CMakeFiles/dealer_tool.dir/dealer_tool.cpp.o"
  "CMakeFiles/dealer_tool.dir/dealer_tool.cpp.o.d"
  "dealer_tool"
  "dealer_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dealer_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
