# Empty dependencies file for dealer_tool.
# This may be replaced when dependencies are built.
