file(REMOVE_RECURSE
  "CMakeFiles/optimistic_ordering.dir/optimistic_ordering.cpp.o"
  "CMakeFiles/optimistic_ordering.dir/optimistic_ordering.cpp.o.d"
  "optimistic_ordering"
  "optimistic_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimistic_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
