# Empty dependencies file for optimistic_ordering.
# This may be replaced when dependencies are built.
