
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/sealed_bid_auction.cpp" "examples/CMakeFiles/sealed_bid_auction.dir/sealed_bid_auction.cpp.o" "gcc" "examples/CMakeFiles/sealed_bid_auction.dir/sealed_bid_auction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/CMakeFiles/sintra_facade.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/sintra_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/sintra_core_base.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/sintra_crypto.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/sintra_bignum.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/sintra_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
