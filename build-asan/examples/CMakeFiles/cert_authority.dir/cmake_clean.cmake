file(REMOVE_RECURSE
  "CMakeFiles/cert_authority.dir/cert_authority.cpp.o"
  "CMakeFiles/cert_authority.dir/cert_authority.cpp.o.d"
  "cert_authority"
  "cert_authority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cert_authority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
