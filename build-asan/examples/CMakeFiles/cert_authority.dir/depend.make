# Empty dependencies file for cert_authority.
# This may be replaced when dependencies are built.
