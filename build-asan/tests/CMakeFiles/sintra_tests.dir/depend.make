# Empty dependencies file for sintra_tests.
# This may be replaced when dependencies are built.
