
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_abort.cpp" "tests/CMakeFiles/sintra_tests.dir/test_abort.cpp.o" "gcc" "tests/CMakeFiles/sintra_tests.dir/test_abort.cpp.o.d"
  "/root/repo/tests/test_aes.cpp" "tests/CMakeFiles/sintra_tests.dir/test_aes.cpp.o" "gcc" "tests/CMakeFiles/sintra_tests.dir/test_aes.cpp.o.d"
  "/root/repo/tests/test_array_agreement.cpp" "tests/CMakeFiles/sintra_tests.dir/test_array_agreement.cpp.o" "gcc" "tests/CMakeFiles/sintra_tests.dir/test_array_agreement.cpp.o.d"
  "/root/repo/tests/test_atomic_channel.cpp" "tests/CMakeFiles/sintra_tests.dir/test_atomic_channel.cpp.o" "gcc" "tests/CMakeFiles/sintra_tests.dir/test_atomic_channel.cpp.o.d"
  "/root/repo/tests/test_bigint.cpp" "tests/CMakeFiles/sintra_tests.dir/test_bigint.cpp.o" "gcc" "tests/CMakeFiles/sintra_tests.dir/test_bigint.cpp.o.d"
  "/root/repo/tests/test_binary_agreement.cpp" "tests/CMakeFiles/sintra_tests.dir/test_binary_agreement.cpp.o" "gcc" "tests/CMakeFiles/sintra_tests.dir/test_binary_agreement.cpp.o.d"
  "/root/repo/tests/test_blocking_primitives.cpp" "tests/CMakeFiles/sintra_tests.dir/test_blocking_primitives.cpp.o" "gcc" "tests/CMakeFiles/sintra_tests.dir/test_blocking_primitives.cpp.o.d"
  "/root/repo/tests/test_broadcast_channel.cpp" "tests/CMakeFiles/sintra_tests.dir/test_broadcast_channel.cpp.o" "gcc" "tests/CMakeFiles/sintra_tests.dir/test_broadcast_channel.cpp.o.d"
  "/root/repo/tests/test_bytes.cpp" "tests/CMakeFiles/sintra_tests.dir/test_bytes.cpp.o" "gcc" "tests/CMakeFiles/sintra_tests.dir/test_bytes.cpp.o.d"
  "/root/repo/tests/test_byzantine.cpp" "tests/CMakeFiles/sintra_tests.dir/test_byzantine.cpp.o" "gcc" "tests/CMakeFiles/sintra_tests.dir/test_byzantine.cpp.o.d"
  "/root/repo/tests/test_channel_lifecycle.cpp" "tests/CMakeFiles/sintra_tests.dir/test_channel_lifecycle.cpp.o" "gcc" "tests/CMakeFiles/sintra_tests.dir/test_channel_lifecycle.cpp.o.d"
  "/root/repo/tests/test_coin.cpp" "tests/CMakeFiles/sintra_tests.dir/test_coin.cpp.o" "gcc" "tests/CMakeFiles/sintra_tests.dir/test_coin.cpp.o.d"
  "/root/repo/tests/test_config.cpp" "tests/CMakeFiles/sintra_tests.dir/test_config.cpp.o" "gcc" "tests/CMakeFiles/sintra_tests.dir/test_config.cpp.o.d"
  "/root/repo/tests/test_consistent_broadcast.cpp" "tests/CMakeFiles/sintra_tests.dir/test_consistent_broadcast.cpp.o" "gcc" "tests/CMakeFiles/sintra_tests.dir/test_consistent_broadcast.cpp.o.d"
  "/root/repo/tests/test_cost_model.cpp" "tests/CMakeFiles/sintra_tests.dir/test_cost_model.cpp.o" "gcc" "tests/CMakeFiles/sintra_tests.dir/test_cost_model.cpp.o.d"
  "/root/repo/tests/test_dealer.cpp" "tests/CMakeFiles/sintra_tests.dir/test_dealer.cpp.o" "gcc" "tests/CMakeFiles/sintra_tests.dir/test_dealer.cpp.o.d"
  "/root/repo/tests/test_dispatcher.cpp" "tests/CMakeFiles/sintra_tests.dir/test_dispatcher.cpp.o" "gcc" "tests/CMakeFiles/sintra_tests.dir/test_dispatcher.cpp.o.d"
  "/root/repo/tests/test_e2e.cpp" "tests/CMakeFiles/sintra_tests.dir/test_e2e.cpp.o" "gcc" "tests/CMakeFiles/sintra_tests.dir/test_e2e.cpp.o.d"
  "/root/repo/tests/test_edge_cases.cpp" "tests/CMakeFiles/sintra_tests.dir/test_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/sintra_tests.dir/test_edge_cases.cpp.o.d"
  "/root/repo/tests/test_facade.cpp" "tests/CMakeFiles/sintra_tests.dir/test_facade.cpp.o" "gcc" "tests/CMakeFiles/sintra_tests.dir/test_facade.cpp.o.d"
  "/root/repo/tests/test_figure2.cpp" "tests/CMakeFiles/sintra_tests.dir/test_figure2.cpp.o" "gcc" "tests/CMakeFiles/sintra_tests.dir/test_figure2.cpp.o.d"
  "/root/repo/tests/test_group.cpp" "tests/CMakeFiles/sintra_tests.dir/test_group.cpp.o" "gcc" "tests/CMakeFiles/sintra_tests.dir/test_group.cpp.o.d"
  "/root/repo/tests/test_hashes.cpp" "tests/CMakeFiles/sintra_tests.dir/test_hashes.cpp.o" "gcc" "tests/CMakeFiles/sintra_tests.dir/test_hashes.cpp.o.d"
  "/root/repo/tests/test_hex.cpp" "tests/CMakeFiles/sintra_tests.dir/test_hex.cpp.o" "gcc" "tests/CMakeFiles/sintra_tests.dir/test_hex.cpp.o.d"
  "/root/repo/tests/test_karatsuba.cpp" "tests/CMakeFiles/sintra_tests.dir/test_karatsuba.cpp.o" "gcc" "tests/CMakeFiles/sintra_tests.dir/test_karatsuba.cpp.o.d"
  "/root/repo/tests/test_keyfile.cpp" "tests/CMakeFiles/sintra_tests.dir/test_keyfile.cpp.o" "gcc" "tests/CMakeFiles/sintra_tests.dir/test_keyfile.cpp.o.d"
  "/root/repo/tests/test_label_binding.cpp" "tests/CMakeFiles/sintra_tests.dir/test_label_binding.cpp.o" "gcc" "tests/CMakeFiles/sintra_tests.dir/test_label_binding.cpp.o.d"
  "/root/repo/tests/test_montgomery.cpp" "tests/CMakeFiles/sintra_tests.dir/test_montgomery.cpp.o" "gcc" "tests/CMakeFiles/sintra_tests.dir/test_montgomery.cpp.o.d"
  "/root/repo/tests/test_multi_exp.cpp" "tests/CMakeFiles/sintra_tests.dir/test_multi_exp.cpp.o" "gcc" "tests/CMakeFiles/sintra_tests.dir/test_multi_exp.cpp.o.d"
  "/root/repo/tests/test_optimistic_channel.cpp" "tests/CMakeFiles/sintra_tests.dir/test_optimistic_channel.cpp.o" "gcc" "tests/CMakeFiles/sintra_tests.dir/test_optimistic_channel.cpp.o.d"
  "/root/repo/tests/test_prime.cpp" "tests/CMakeFiles/sintra_tests.dir/test_prime.cpp.o" "gcc" "tests/CMakeFiles/sintra_tests.dir/test_prime.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/sintra_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/sintra_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_reliable_broadcast.cpp" "tests/CMakeFiles/sintra_tests.dir/test_reliable_broadcast.cpp.o" "gcc" "tests/CMakeFiles/sintra_tests.dir/test_reliable_broadcast.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/sintra_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/sintra_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_robustness.cpp" "tests/CMakeFiles/sintra_tests.dir/test_robustness.cpp.o" "gcc" "tests/CMakeFiles/sintra_tests.dir/test_robustness.cpp.o.d"
  "/root/repo/tests/test_rsa.cpp" "tests/CMakeFiles/sintra_tests.dir/test_rsa.cpp.o" "gcc" "tests/CMakeFiles/sintra_tests.dir/test_rsa.cpp.o.d"
  "/root/repo/tests/test_secure_atomic_channel.cpp" "tests/CMakeFiles/sintra_tests.dir/test_secure_atomic_channel.cpp.o" "gcc" "tests/CMakeFiles/sintra_tests.dir/test_secure_atomic_channel.cpp.o.d"
  "/root/repo/tests/test_serde.cpp" "tests/CMakeFiles/sintra_tests.dir/test_serde.cpp.o" "gcc" "tests/CMakeFiles/sintra_tests.dir/test_serde.cpp.o.d"
  "/root/repo/tests/test_shamir.cpp" "tests/CMakeFiles/sintra_tests.dir/test_shamir.cpp.o" "gcc" "tests/CMakeFiles/sintra_tests.dir/test_shamir.cpp.o.d"
  "/root/repo/tests/test_simulator.cpp" "tests/CMakeFiles/sintra_tests.dir/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/sintra_tests.dir/test_simulator.cpp.o.d"
  "/root/repo/tests/test_sliding_window.cpp" "tests/CMakeFiles/sintra_tests.dir/test_sliding_window.cpp.o" "gcc" "tests/CMakeFiles/sintra_tests.dir/test_sliding_window.cpp.o.d"
  "/root/repo/tests/test_tdh2.cpp" "tests/CMakeFiles/sintra_tests.dir/test_tdh2.cpp.o" "gcc" "tests/CMakeFiles/sintra_tests.dir/test_tdh2.cpp.o.d"
  "/root/repo/tests/test_threshold_sig.cpp" "tests/CMakeFiles/sintra_tests.dir/test_threshold_sig.cpp.o" "gcc" "tests/CMakeFiles/sintra_tests.dir/test_threshold_sig.cpp.o.d"
  "/root/repo/tests/test_work_counter.cpp" "tests/CMakeFiles/sintra_tests.dir/test_work_counter.cpp.o" "gcc" "tests/CMakeFiles/sintra_tests.dir/test_work_counter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/CMakeFiles/sintra_facade.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/sintra_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/sintra_core_base.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/sintra_crypto.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/sintra_bignum.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/CMakeFiles/sintra_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
