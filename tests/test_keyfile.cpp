#include "crypto/keyfile.hpp"

#include <gtest/gtest.h>

#include "sim_fixture.hpp"

namespace sintra::crypto {
namespace {

Deal small_deal(SigImpl impl = SigImpl::kMultiSig) {
  return sintra::testing::cached_deal(4, 1, impl);
}

TEST(KeyFile, RoundTripMultiSig) {
  const Deal deal = small_deal();
  for (int i = 0; i < 4; ++i) {
    const Bytes file = write_party_keys(deal.raw[static_cast<std::size_t>(i)]);
    const RawPartyKeys back = read_party_keys(file);
    EXPECT_EQ(back.index, i);
    EXPECT_EQ(back.n, 4);
    EXPECT_EQ(back.t, 1);
    EXPECT_EQ(back.link_keys, deal.raw[static_cast<std::size_t>(i)].link_keys);
    EXPECT_EQ(back.own_rsa.pub, deal.raw[static_cast<std::size_t>(i)].own_rsa.pub);
    EXPECT_EQ(back.coin_share, deal.raw[static_cast<std::size_t>(i)].coin_share);
    EXPECT_EQ(back.tdh2_share, deal.raw[static_cast<std::size_t>(i)].tdh2_share);
    EXPECT_FALSE(back.threshold_broadcast.has_value());
  }
}

TEST(KeyFile, RoundTripThresholdRsa) {
  const Deal deal = small_deal(SigImpl::kThresholdRsa);
  const Bytes file = write_party_keys(deal.raw[2]);
  const RawPartyKeys back = read_party_keys(file);
  ASSERT_TRUE(back.threshold_broadcast.has_value());
  ASSERT_TRUE(back.threshold_agreement.has_value());
  EXPECT_EQ(back.threshold_broadcast->pub.modulus,
            deal.raw[2].threshold_broadcast->pub.modulus);
  EXPECT_EQ(back.threshold_broadcast->share,
            deal.raw[2].threshold_broadcast->share);
}

TEST(KeyFile, MaterializedKeysInteroperateWithOriginals) {
  // Serialize party 1's keys, reload, materialize — the resurrected party
  // must interoperate with the untouched parties on every scheme.
  const Deal deal = small_deal();
  const PartyKeys revived = materialize(
      read_party_keys(write_party_keys(deal.raw[1])));

  // Standard signatures.
  const Bytes msg = to_bytes("signed after reload");
  EXPECT_TRUE(deal.parties[0].verify_party_sig(1, msg, revived.sign(msg)));

  // Threshold (multi-)signatures.
  std::vector<std::pair<int, Bytes>> shares;
  shares.emplace_back(1, revived.sig_broadcast->sign_share(msg));
  shares.emplace_back(0, deal.parties[0].sig_broadcast->sign_share(msg));
  shares.emplace_back(2, deal.parties[2].sig_broadcast->sign_share(msg));
  const Bytes sig = deal.parties[3].sig_broadcast->combine(msg, shares);
  EXPECT_TRUE(deal.parties[0].sig_broadcast->verify(msg, sig));

  // Coin.
  const Bytes name = to_bytes("reload coin");
  std::vector<std::pair<int, Bytes>> cs;
  cs.emplace_back(1, revived.coin->release(name));
  cs.emplace_back(3, deal.parties[3].coin->release(name));
  const Bytes coin_val = deal.parties[0].coin->assemble(name, cs, 8);
  // Cross-check against a fully original share pair.
  std::vector<std::pair<int, Bytes>> cs2;
  cs2.emplace_back(0, deal.parties[0].coin->release(name));
  cs2.emplace_back(2, deal.parties[2].coin->release(name));
  EXPECT_EQ(deal.parties[0].coin->assemble(name, cs2, 8), coin_val);

  // TDH2.
  Rng rng(5);
  const Bytes ct =
      deal.encryption_key->encrypt(to_bytes("m"), to_bytes("L"), rng);
  std::vector<std::pair<int, Bytes>> ds;
  ds.emplace_back(1, *revived.cipher->decrypt_share(ct));
  ds.emplace_back(0, *deal.parties[0].cipher->decrypt_share(ct));
  EXPECT_EQ(deal.parties[2].cipher->combine(ct, ds), to_bytes("m"));
}

TEST(KeyFile, RejectsCorruptedFiles) {
  const Deal deal = small_deal();
  const Bytes good = write_party_keys(deal.raw[0]);
  EXPECT_THROW((void)read_party_keys(Bytes{}), SerdeError);
  Bytes truncated(good.begin(), good.begin() + static_cast<std::ptrdiff_t>(good.size() / 2));
  EXPECT_THROW((void)read_party_keys(truncated), SerdeError);
  Bytes bad_magic = good;
  bad_magic[4] ^= 0xff;  // inside the magic string
  EXPECT_THROW((void)read_party_keys(bad_magic), SerdeError);
  Bytes trailing = good;
  trailing.push_back(0x00);
  EXPECT_THROW((void)read_party_keys(trailing), SerdeError);
}

TEST(KeyFile, EncryptionKeyRoundTripUsableByOutsider) {
  const Deal deal = small_deal();
  const Bytes file = write_encryption_key(*deal.encryption_key);
  const Tdh2Public pub = read_encryption_key(file);
  Rng rng(7);
  const Bytes ct = pub.encrypt(to_bytes("outsider message"), to_bytes("L"), rng);
  std::vector<std::pair<int, Bytes>> ds;
  ds.emplace_back(0, *deal.parties[0].cipher->decrypt_share(ct));
  ds.emplace_back(1, *deal.parties[1].cipher->decrypt_share(ct));
  EXPECT_EQ(deal.parties[2].cipher->combine(ct, ds),
            to_bytes("outsider message"));
  EXPECT_THROW((void)read_encryption_key(Bytes(10, 3)), SerdeError);
}

}  // namespace
}  // namespace sintra::crypto
