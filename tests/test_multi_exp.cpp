// Property tests for the fast exponentiation layer: simultaneous
// multi-exponentiation, fixed-base comb tables, the DlogGroup cached
// paths, and Lagrange coefficient memoization.  Every fast path is checked
// against the naive composition of pow/mul/inv it replaces.
#include <gtest/gtest.h>

#include <stdexcept>
#include <utility>
#include <vector>

#include "bignum/montgomery.hpp"
#include "crypto/cost.hpp"
#include "crypto/group.hpp"
#include "crypto/shamir.hpp"

namespace sintra::bignum {
namespace {

using sintra::Rng;

// Random odd modulus of roughly `bits` bits (top bit set, forced odd).
BigInt random_odd_modulus(Rng& rng, int bits) {
  BigInt m = BigInt::random_bits(rng, bits);
  if (!m.is_odd()) m += BigInt{1};
  return m;
}

TEST(MultiExp, MulPowMatchesNaiveAcrossModuli) {
  Rng rng(0x517a);
  for (const int bits : {32, 64, 160, 512}) {
    const BigInt m = random_odd_modulus(rng, bits);
    const Montgomery mont(m);
    for (int trial = 0; trial < 8; ++trial) {
      const BigInt a = BigInt::random_below(rng, m);
      const BigInt b = BigInt::random_below(rng, m);
      const BigInt ea = BigInt::random_bits(rng, 1 + trial * 23);
      const BigInt eb = BigInt::random_bits(rng, 1 + trial * 31);
      EXPECT_EQ(mont.mul_pow(a, ea, b, eb),
                mont.mul(mont.pow(a, ea), mont.pow(b, eb)))
          << bits << " bits, trial " << trial;
    }
  }
}

TEST(MultiExp, MulPowHandlesDegenerateExponents) {
  Rng rng(0xdede);
  const BigInt m = random_odd_modulus(rng, 192);
  const Montgomery mont(m);
  const BigInt a = BigInt::random_below(rng, m);
  const BigInt b = BigInt::random_below(rng, m);
  // Width 0 (exponent zero), width 1, and mismatched widths.
  EXPECT_EQ(mont.mul_pow(a, BigInt{0}, b, BigInt{0}), BigInt{1}.mod(m));
  EXPECT_EQ(mont.mul_pow(a, BigInt{1}, b, BigInt{0}), a.mod(m));
  EXPECT_EQ(mont.mul_pow(a, BigInt{0}, b, BigInt{1}), b.mod(m));
  const BigInt wide = BigInt::random_bits(rng, 500);
  EXPECT_EQ(mont.mul_pow(a, BigInt{1}, b, wide),
            mont.mul(a.mod(m), mont.pow(b, wide)));
}

TEST(MultiExp, MulPowRejectsNegativeExponents) {
  const Montgomery mont(BigInt{1000003});
  EXPECT_THROW((void)mont.mul_pow(BigInt{2}, BigInt{-1}, BigInt{3}, BigInt{5}),
               std::domain_error);
  EXPECT_THROW((void)mont.mul_pow(BigInt{2}, BigInt{1}, BigInt{3}, BigInt{-5}),
               std::domain_error);
  EXPECT_THROW((void)mont.multi_pow({{BigInt{2}, BigInt{-7}}}),
               std::domain_error);
}

TEST(MultiExp, MultiPowMatchesNaiveIncludingChunkBoundary) {
  Rng rng(0xabc1);
  const BigInt m = random_odd_modulus(rng, 256);
  const Montgomery mont(m);
  // 10 terms crosses the 8-term shared-squaring chunk boundary.
  for (const std::size_t count : {std::size_t{1}, std::size_t{3},
                                  std::size_t{8}, std::size_t{10}}) {
    std::vector<std::pair<BigInt, BigInt>> terms;
    BigInt expected{1};
    for (std::size_t i = 0; i < count; ++i) {
      const BigInt base = BigInt::random_below(rng, m);
      const BigInt e = BigInt::random_bits(rng, 16 + static_cast<int>(i) * 29);
      expected = mont.mul(expected, mont.pow(base, e));
      terms.emplace_back(base, e);
    }
    EXPECT_EQ(mont.multi_pow(terms), expected) << count << " terms";
  }
  EXPECT_EQ(mont.multi_pow({}), BigInt{1}.mod(m));
}

TEST(FixedBase, CombMatchesPlainPow) {
  Rng rng(0xc0b1);
  const BigInt m = random_odd_modulus(rng, 320);
  const Montgomery mont(m);
  const BigInt base = BigInt::random_below(rng, m);
  const FixedBaseTable table = mont.precompute(base, 160);
  ASSERT_TRUE(table.valid());
  EXPECT_EQ(table.max_exp_bits(), 160);
  EXPECT_EQ(mont.pow(table, BigInt{0}), BigInt{1}.mod(m));
  EXPECT_EQ(mont.pow(table, BigInt{1}), base.mod(m));
  for (int trial = 0; trial < 8; ++trial) {
    const BigInt e = BigInt::random_bits(rng, 1 + trial * 22);
    EXPECT_EQ(mont.pow(table, e), mont.pow(base, e)) << trial;
  }
}

TEST(FixedBase, FallsBackWhenExponentTooWideOrModulusMismatched) {
  Rng rng(0xfa11);
  const BigInt m1 = random_odd_modulus(rng, 224);
  const BigInt m2 = random_odd_modulus(rng, 224);
  const Montgomery mont1(m1), mont2(m2);
  const BigInt base = BigInt::random_below(rng, m1);
  const FixedBaseTable table = mont1.precompute(base, 64);
  // Wider than the comb covers: must still be correct (plain-pow path).
  const BigInt wide = BigInt::random_bits(rng, 200);
  EXPECT_EQ(mont1.pow(table, wide), mont1.pow(base, wide));
  // Table built under a different modulus: same.
  const BigInt e = BigInt::random_bits(rng, 48);
  EXPECT_EQ(mont2.pow(table, e), mont2.pow(base, e));
}

TEST(FixedBase, DualAndMixedMulPowMatchNaive) {
  Rng rng(0xd0a1);
  const BigInt m = random_odd_modulus(rng, 288);
  const Montgomery mont(m);
  const BigInt a = BigInt::random_below(rng, m);
  const BigInt b = BigInt::random_below(rng, m);
  const FixedBaseTable ta = mont.precompute(a, 128);
  const FixedBaseTable tb = mont.precompute(b, 128);
  for (int trial = 0; trial < 6; ++trial) {
    const BigInt ea = BigInt::random_bits(rng, 1 + trial * 25);
    const BigInt eb = BigInt::random_bits(rng, 128 - trial * 20);
    const BigInt expected = mont.mul(mont.pow(a, ea), mont.pow(b, eb));
    EXPECT_EQ(mont.mul_pow(ta, ea, tb, eb), expected) << trial;
    EXPECT_EQ(mont.mul_pow(ta, ea, b, eb), expected) << trial;
  }
  // Zero exponents and the too-wide fallback on each side.
  EXPECT_EQ(mont.mul_pow(ta, BigInt{0}, tb, BigInt{3}), mont.pow(b, BigInt{3}));
  EXPECT_EQ(mont.mul_pow(ta, BigInt{3}, b, BigInt{0}), mont.pow(a, BigInt{3}));
  const BigInt wide = BigInt::random_bits(rng, 180);
  EXPECT_EQ(mont.mul_pow(ta, wide, tb, BigInt{5}),
            mont.mul(mont.pow(a, wide), mont.pow(b, BigInt{5})));
  EXPECT_EQ(mont.mul_pow(ta, wide, b, BigInt{5}),
            mont.mul(mont.pow(a, wide), mont.pow(b, BigInt{5})));
  EXPECT_THROW((void)mont.mul_pow(ta, BigInt{-2}, tb, BigInt{5}),
               std::domain_error);
}

TEST(FixedBase, TableBuildIsChargedToWorkCounter) {
  Rng rng(0x3011);
  const BigInt m = random_odd_modulus(rng, 512);
  const Montgomery mont(m);
  const BigInt base = BigInt::random_below(rng, m);
  const BigInt e = BigInt::random_bits(rng, 160);

  const std::uint64_t before_build = work_counter();
  const FixedBaseTable table = mont.precompute(base, 160);
  const std::uint64_t build_cost = work_counter() - before_build;
  EXPECT_GT(build_cost, 0u);

  const std::uint64_t before_eval = work_counter();
  (void)mont.pow(table, e);
  const std::uint64_t eval_cost = work_counter() - before_eval;

  const std::uint64_t before_plain = work_counter();
  (void)mont.pow(base, e);
  const std::uint64_t plain_cost = work_counter() - before_plain;

  // The comb evaluation must beat plain pow by a wide margin (it spends no
  // squarings); the build is the price, paid exactly once.
  EXPECT_LT(eval_cost * 3, plain_cost);
}

}  // namespace
}  // namespace sintra::bignum

namespace sintra::crypto {
namespace {

const DlogGroup& test_group() {
  static const DlogGroup grp = [] {
    Rng rng(0x6e1);
    return DlogGroup::generate(rng, 256, 96);
  }();
  return grp;
}

TEST(GroupFastPath, ExpCachedMatchesExp) {
  const DlogGroup& grp = test_group();
  Rng rng(3);
  for (int trial = 0; trial < 6; ++trial) {
    const BigInt e = grp.random_exponent(rng);
    EXPECT_EQ(grp.exp_cached(grp.g(), e), grp.exp(grp.g(), e)) << trial;
    EXPECT_EQ(grp.exp_reduced(grp.g(), e), grp.exp(grp.g(), e)) << trial;
  }
  // Unreduced exponent still folds mod q on the cached path.
  const BigInt big = grp.q() * BigInt{3} + BigInt{17};
  EXPECT_EQ(grp.exp_cached(grp.g(), big), grp.exp(grp.g(), BigInt{17}));
}

TEST(GroupFastPath, DualExpNegMatchesMulInvComposition) {
  const DlogGroup& grp = test_group();
  Rng rng(4);
  const BigInt h = grp.exp(grp.g(), grp.random_exponent(rng));
  for (const bool c1 : {false, true}) {
    for (const bool c2 : {false, true}) {
      const BigInt e1 = grp.random_exponent(rng);
      const BigInt e2 = grp.random_exponent(rng);
      const BigInt expected =
          grp.mul(grp.exp(grp.g(), e1), grp.inv(grp.exp(h, e2)));
      EXPECT_EQ(grp.dual_exp_neg(grp.g(), e1, c1, h, e2, c2), expected)
          << c1 << c2;
      EXPECT_EQ(grp.dual_exp(grp.g(), e1, c1, h, e2, c2),
                grp.mul(grp.exp(grp.g(), e1), grp.exp(h, e2)))
          << c1 << c2;
    }
  }
  // e2 == 0: no inversion at all.
  const BigInt e1 = grp.random_exponent(rng);
  EXPECT_EQ(grp.dual_exp_neg(grp.g(), e1, false, h, BigInt{0}, false),
            grp.exp(grp.g(), e1));
}

TEST(GroupFastPath, MultiExpMatchesProductOfExps) {
  const DlogGroup& grp = test_group();
  Rng rng(5);
  std::vector<std::pair<BigInt, BigInt>> terms;
  BigInt expected{1};
  for (int i = 0; i < 5; ++i) {
    const BigInt base = grp.exp(grp.g(), grp.random_exponent(rng));
    const BigInt e = grp.random_exponent(rng);
    expected = grp.mul(expected, grp.exp(base, e));
    terms.emplace_back(base, e);
  }
  EXPECT_EQ(grp.multi_exp(terms), expected);
}

TEST(GroupFastPath, IsMemberCachedAgreesWithIsMember) {
  const DlogGroup& grp = test_group();
  Rng rng(6);
  const BigInt member = grp.exp(grp.g(), grp.random_exponent(rng));
  EXPECT_TRUE(grp.is_member_cached(member));
  EXPECT_TRUE(grp.is_member_cached(member));  // memoized second call
  EXPECT_FALSE(grp.is_member_cached(BigInt{0}));
  EXPECT_FALSE(grp.is_member_cached(BigInt{1}));
  EXPECT_FALSE(grp.is_member_cached(grp.p()));
  // An element outside the order-q subgroup (order-2 element p-1).
  const BigInt nonmember = grp.p() - BigInt{1};
  EXPECT_EQ(grp.is_member_cached(nonmember), grp.is_member(nonmember));
  EXPECT_FALSE(grp.is_member_cached(nonmember));
}

TEST(GroupFastPath, CacheAmortizesAndEpochBumpRecharges) {
  // Fresh group so this test owns its cache state.
  Rng grng(0xeb0c);
  const DlogGroup grp = DlogGroup::generate(grng, 256, 96);
  Rng rng(7);
  const BigInt e1 = grp.random_exponent(rng);
  const BigInt e2 = grp.random_exponent(rng);

  bump_cache_epoch();
  const std::uint64_t before_first = bignum::work_counter();
  (void)grp.exp_cached(grp.g(), e1);
  const std::uint64_t first_cost = bignum::work_counter() - before_first;

  const std::uint64_t before_second = bignum::work_counter();
  (void)grp.exp_cached(grp.g(), e2);
  const std::uint64_t second_cost = bignum::work_counter() - before_second;

  // First call pays the comb build; later calls ride the table.
  EXPECT_GT(first_cost, 4 * second_cost);

  // After an epoch bump the build is charged again in full.
  bump_cache_epoch();
  const std::uint64_t before_again = bignum::work_counter();
  (void)grp.exp_cached(grp.g(), e1);
  const std::uint64_t again_cost = bignum::work_counter() - before_again;
  EXPECT_GT(again_cost, 4 * second_cost);
}

TEST(GroupFastPath, DleqWithHintsRoundTripsAndRejectsTampering) {
  const DlogGroup& grp = test_group();
  Rng rng(8);
  const DleqHints hints{.g1_long_lived = true,
                        .h1_long_lived = true,
                        .g2_long_lived = false,
                        .h2_long_lived = false};
  const BigInt x = grp.random_exponent(rng);
  const BigInt g2 = grp.hash_to_group(to_bytes("multi-exp test base"));
  const BigInt h1 = grp.exp(grp.g(), x);
  const BigInt h2 = grp.exp(g2, x);
  const DleqProof proof =
      dleq_prove(grp, grp.g(), h1, g2, h2, x, rng, hints);
  // Hinted and unhinted verification agree with each other.
  EXPECT_TRUE(dleq_verify(grp, grp.g(), h1, g2, h2, proof, hints));
  EXPECT_TRUE(dleq_verify(grp, grp.g(), h1, g2, h2, proof));
  // Tampering with any component must fail, hints or not.
  DleqProof bad = proof;
  bad.z = (bad.z + BigInt{1}).mod(grp.q());
  EXPECT_FALSE(dleq_verify(grp, grp.g(), h1, g2, h2, bad, hints));
  EXPECT_FALSE(dleq_verify(grp, grp.g(), h1, grp.g(), h2, proof, hints));
  const BigInt h2_bad = grp.mul(h2, grp.g());
  EXPECT_FALSE(dleq_verify(grp, grp.g(), h1, g2, h2_bad, proof, hints));
  // Out-of-range proof components are rejected before any arithmetic.
  DleqProof huge = proof;
  huge.z = grp.q() + BigInt{5};
  EXPECT_FALSE(dleq_verify(grp, grp.g(), h1, g2, h2, huge, hints));
  DleqProof wild = proof;
  wild.a1 = grp.p() + BigInt{2};
  EXPECT_FALSE(dleq_verify(grp, grp.g(), h1, g2, h2, wild, hints));
}

TEST(LagrangeCacheTest, MatchesPerCoefficientFunctions) {
  const BigInt q{4093};  // prime
  LagrangeCache cache;
  const std::vector<int> indices{0, 2, 5};
  const std::vector<BigInt> got = cache.coeffs_zero(indices, q);
  ASSERT_EQ(got.size(), indices.size());
  for (std::size_t j = 0; j < indices.size(); ++j) {
    EXPECT_EQ(got[j], lagrange_coeff_zero(indices, static_cast<int>(j), q))
        << j;
  }
  // Second lookup returns identical values (memo hit).
  EXPECT_EQ(cache.coeffs_zero(indices, q), got);

  const BigInt delta = factorial(6);
  const std::vector<BigInt> ints = cache.integer_coeffs(delta, indices);
  ASSERT_EQ(ints.size(), indices.size());
  for (std::size_t j = 0; j < indices.size(); ++j) {
    EXPECT_EQ(ints[j],
              integer_lagrange_coeff(delta, indices, static_cast<int>(j)))
        << j;
  }
  EXPECT_EQ(cache.integer_coeffs(delta, indices), ints);
  // A different index set under the same moduli is a distinct entry.
  const std::vector<int> other{1, 3, 4};
  EXPECT_NE(cache.coeffs_zero(other, q), got);
}

}  // namespace
}  // namespace sintra::crypto
