// The bignum work counter is the foundation of the simulator's timing —
// pin its semantics: deterministic, monotonic, and proportional to the
// arithmetic actually performed.
#include <gtest/gtest.h>

#include "bignum/montgomery.hpp"
#include "crypto/cost.hpp"
#include "crypto/rsa.hpp"

namespace sintra {
namespace {

using bignum::BigInt;

TEST(WorkCounter, MonotonicAndDeterministic) {
  const BigInt m = (BigInt{1} << 512) - BigInt{569};
  const bignum::Montgomery mont(m);
  Rng rng(1);
  const BigInt base = BigInt::random_below(rng, m);
  const BigInt e = BigInt::random_bits(rng, 512);

  const std::uint64_t w0 = bignum::work_counter();
  (void)mont.pow(base, e);
  const std::uint64_t w1 = bignum::work_counter();
  (void)mont.pow(base, e);
  const std::uint64_t w2 = bignum::work_counter();
  EXPECT_GT(w1, w0);
  // Same operation, same work.
  EXPECT_EQ(w2 - w1, w1 - w0);
}

TEST(WorkCounter, ScalesWithModulusSize) {
  Rng rng(2);
  auto work_of = [&](int bits) {
    const BigInt m = (BigInt{1} << bits) - BigInt{569};
    const bignum::Montgomery mont(m);
    const BigInt base = BigInt::random_below(rng, m);
    const BigInt e = BigInt::random_bits(rng, bits);
    const crypto::WorkMeter meter;
    (void)mont.pow(base, e);
    return meter.elapsed();
  };
  const auto w256 = work_of(256);
  const auto w512 = work_of(512);
  const auto w1024 = work_of(1024);
  // Cubic-ish growth: each doubling should cost 6-10x.
  EXPECT_GT(static_cast<double>(w512) / w256, 5.0);
  EXPECT_LT(static_cast<double>(w512) / w256, 12.0);
  EXPECT_GT(static_cast<double>(w1024) / w512, 5.0);
  EXPECT_LT(static_cast<double>(w1024) / w512, 12.0);
}

TEST(WorkCounter, CrtSigningCheaperThanFullExp) {
  // The structural fact behind Figure 6's multi-signature advantage.
  Rng rng(3);
  const crypto::RsaKeyPair key = crypto::rsa_generate(rng, 1024);
  const Bytes msg = to_bytes("m");

  const crypto::WorkMeter crt_meter;
  (void)crypto::rsa_sign(key, msg);
  const auto crt_work = crt_meter.elapsed();

  const crypto::BigInt x = crypto::rsa_fdh(msg, key.pub.n,
                                           crypto::HashKind::kSha256);
  const crypto::WorkMeter full_meter;
  (void)x.mod_pow(key.d, key.pub.n);
  const auto full_work = full_meter.elapsed();

  EXPECT_GT(static_cast<double>(full_work) / crt_work, 2.5);
}

TEST(WorkCounter, VerificationNearlyFree) {
  Rng rng(4);
  const crypto::RsaKeyPair key = crypto::rsa_generate(rng, 1024);
  const Bytes msg = to_bytes("m");
  const Bytes sig = crypto::rsa_sign(key, msg);

  const crypto::WorkMeter sign_meter;
  (void)crypto::rsa_sign(key, msg);
  const auto sign_work = sign_meter.elapsed();

  const crypto::WorkMeter verify_meter;
  EXPECT_TRUE(crypto::rsa_verify(key.pub, msg, sig));
  const auto verify_work = verify_meter.elapsed();

  // e = 65537: verification is an order of magnitude cheaper than signing.
  EXPECT_GT(static_cast<double>(sign_work) / verify_work, 5.0);
}

}  // namespace
}  // namespace sintra
