// Differential tests for the 64-bit limb rework (PR 8).
//
// The live BigInt/Montgomery layer moved from 32-bit to 64-bit limbs with
// fused CIOS reduction; the old implementation is frozen verbatim under
// sintra::bignum::ref32 (src/bignum/ref32.hpp).  Limb width is an internal
// representation choice, so every arithmetic result and every serialized
// byte must be bit-identical between the two.  This suite drives both
// implementations with the same randomized and adversarial inputs and
// compares outputs — values via to_bytes(), wire format via write().
//
// Runs under SINTRA_SANITIZE like the rest of the suite; the randomized
// cases double as a UBSan/ASan workout for the __int128 carry paths.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "bignum/bigint.hpp"
#include "bignum/montgomery.hpp"
#include "bignum/ref32.hpp"
#include "util/rng.hpp"
#include "util/serde.hpp"

namespace sintra::bignum {
namespace {

// A value held by both implementations at once.  All checks compare the
// minimal big-endian bytes plus the sign, which is exactly the surface
// the crypto layer consumes.
struct Pair {
  BigInt live;
  ref32::Ref32Int ref;
};

Pair from_bytes(const Bytes& be, bool negative = false) {
  Pair p{BigInt::from_bytes(be), ref32::Ref32Int::from_bytes(be)};
  if (negative) {
    p.live = -p.live;
    p.ref = -p.ref;
  }
  return p;
}

void expect_same(const BigInt& live, const ref32::Ref32Int& ref,
                 const std::string& what) {
  EXPECT_EQ(live.is_negative(), ref.is_negative()) << what;
  const BigInt mag = live.is_negative() ? -live : live;
  const ref32::Ref32Int rmag = ref.is_negative() ? -ref : ref;
  EXPECT_EQ(mag.to_bytes(), rmag.to_bytes()) << what;
  EXPECT_EQ(live.bit_length(), ref.bit_length()) << what;
}

Bytes random_bytes(Rng& rng, std::size_t n) { return rng.bytes(n); }

// --- randomized cross-checks ----------------------------------------------

TEST(BignumDiff, RandomizedAddSubMul) {
  Rng rng(0xd1ff64);
  for (int iter = 0; iter < 400; ++iter) {
    const std::size_t la = rng.uniform(48);  // up to 384 bits
    const std::size_t lb = rng.uniform(48);
    Pair a = from_bytes(random_bytes(rng, la), rng.coin());
    Pair b = from_bytes(random_bytes(rng, lb), rng.coin());
    expect_same(a.live + b.live, a.ref + b.ref, "add");
    expect_same(a.live - b.live, a.ref - b.ref, "sub");
    expect_same(a.live * b.live, a.ref * b.ref, "mul");
  }
}

TEST(BignumDiff, RandomizedDivMod) {
  Rng rng(0xd1ff65);
  for (int iter = 0; iter < 300; ++iter) {
    const std::size_t la = 1 + rng.uniform(40);
    const std::size_t lb = 1 + rng.uniform(20);
    Pair a = from_bytes(random_bytes(rng, la), rng.coin());
    Pair b = from_bytes(random_bytes(rng, lb), rng.coin());
    if (b.live.is_zero()) continue;
    const auto [q, r] = BigInt::div_mod(a.live, b.live);
    const auto [rq, rr] = ref32::Ref32Int::div_mod(a.ref, b.ref);
    expect_same(q, rq, "quotient");
    expect_same(r, rr, "remainder");
    // Non-negative residue agrees too (different rounding convention).
    const ref32::Ref32Int rm = b.ref.is_negative() ? -b.ref : b.ref;
    const BigInt lm = b.live.is_negative() ? -b.live : b.live;
    expect_same(a.live.mod(lm), a.ref.mod(rm), "mod");
  }
}

TEST(BignumDiff, RandomizedKaratsubaSizes) {
  // Products wide enough to cross both Karatsuba thresholds (20 limbs /
  // 1280 bits live, 24 limbs / 768 bits in ref32) in the same operation.
  Rng rng(0xd1ff66);
  for (int iter = 0; iter < 12; ++iter) {
    const std::size_t la = 160 + rng.uniform(160);  // up to ~2560 bits
    const std::size_t lb = 160 + rng.uniform(160);
    Pair a = from_bytes(random_bytes(rng, la));
    Pair b = from_bytes(random_bytes(rng, lb));
    expect_same(a.live * b.live, a.ref * b.ref, "wide mul");
  }
}

TEST(BignumDiff, RandomizedShifts) {
  Rng rng(0xd1ff67);
  for (int iter = 0; iter < 200; ++iter) {
    Pair a = from_bytes(random_bytes(rng, 1 + rng.uniform(40)), rng.coin());
    const int k = static_cast<int>(rng.uniform(200));
    expect_same(a.live << k, a.ref << k, "shl");
    expect_same(a.live >> k, a.ref >> k, "shr");
  }
}

TEST(BignumDiff, RandomizedModexpOddModulus) {
  Rng rng(0xd1ff68);
  for (int iter = 0; iter < 8; ++iter) {
    const std::size_t lm = 16 + rng.uniform(49);  // 128..512-bit moduli
    Bytes mb = random_bytes(rng, lm);
    mb.back() |= 1;  // odd
    mb.front() |= 0x80;
    Pair m = from_bytes(mb);
    Pair b = from_bytes(random_bytes(rng, lm + 4));
    Pair e = from_bytes(random_bytes(rng, 1 + rng.uniform(lm)));
    expect_same(b.live.mod_pow(e.live, m.live), b.ref.mod_pow(e.ref, m.ref),
                "modexp");
  }
}

TEST(BignumDiff, Modexp1024BitVector) {
  // One full RSA-sized case through the fused CIOS path vs the old
  // two-pass CIOS-32 ladder.
  Rng rng(0xd1ff69);
  Bytes mb = random_bytes(rng, 128);
  mb.back() |= 1;
  mb.front() |= 0x80;
  Pair m = from_bytes(mb);
  Pair b = from_bytes(random_bytes(rng, 128));
  Pair e = from_bytes(random_bytes(rng, 128));
  expect_same(b.live.mod_pow(e.live, m.live), b.ref.mod_pow(e.ref, m.ref),
              "modexp-1024");
}

// --- adversarial edge vectors ---------------------------------------------

TEST(BignumDiff, EdgeVectors) {
  // Values chosen to sit on 64-bit limb boundaries: all-ones runs force
  // maximal carry chains; single set bits probe the limb indexing; the
  // 32-bit patterns are boundaries only for ref32, exercising asymmetric
  // limb splits.
  std::vector<Bytes> raw;
  raw.push_back(Bytes{});             // zero
  raw.push_back(Bytes{0x01});         // one
  for (std::size_t len : {1u, 4u, 7u, 8u, 9u, 15u, 16u, 17u, 24u, 32u, 33u}) {
    raw.push_back(Bytes(len, 0xff));  // maximal carry chains
    Bytes top(len, 0x00);
    top.front() = 0x80;               // single top bit
    raw.push_back(top);
    Bytes walk(len, 0x00);
    walk.front() = 0x80;
    walk.back() |= 0x01;              // top and bottom bit
    raw.push_back(walk);
  }
  std::vector<Pair> vals;
  for (const auto& b : raw) {
    vals.push_back(from_bytes(b, false));
    if (!b.empty()) vals.push_back(from_bytes(b, true));
  }
  for (const auto& a : vals) {
    for (const auto& b : vals) {
      expect_same(a.live + b.live, a.ref + b.ref, "edge add");
      expect_same(a.live - b.live, a.ref - b.ref, "edge sub");
      expect_same(a.live * b.live, a.ref * b.ref, "edge mul");
      if (!b.live.is_zero()) {
        const auto [q, r] = BigInt::div_mod(a.live, b.live);
        const auto [rq, rr] = ref32::Ref32Int::div_mod(a.ref, b.ref);
        expect_same(q, rq, "edge quot");
        expect_same(r, rr, "edge rem");
      }
    }
  }
}

TEST(BignumDiff, KnuthDQhatStress) {
  // Dividends shaped so the initial qhat estimate overshoots and the
  // correction/add-back paths run with 64-bit limbs: divisor just above a
  // power of two, dividend with saturated high limbs.
  Rng rng(0xd1ff6a);
  for (int iter = 0; iter < 60; ++iter) {
    Bytes db(9 + rng.uniform(16), 0x00);
    db.front() = 0x80;
    db.back() = static_cast<std::uint8_t>(1 + rng.uniform(3));
    Bytes nb(db.size() + 8 + rng.uniform(16), 0xff);
    for (std::size_t i = 0; i < nb.size(); i += 1 + rng.uniform(4)) {
      nb[i] = static_cast<std::uint8_t>(rng.uniform(256));
    }
    Pair d = from_bytes(db);
    Pair n = from_bytes(nb);
    const auto [q, r] = BigInt::div_mod(n.live, d.live);
    const auto [rq, rr] = ref32::Ref32Int::div_mod(n.ref, d.ref);
    expect_same(q, rq, "qhat quot");
    expect_same(r, rr, "qhat rem");
    EXPECT_EQ(q * d.live + r, n.live) << "divisor/quotient identity";
  }
}

// --- wire-format compatibility --------------------------------------------

TEST(BignumDiff, WireBytesIdentical) {
  Rng rng(0xd1ff6b);
  for (int iter = 0; iter < 200; ++iter) {
    Pair a = from_bytes(random_bytes(rng, rng.uniform(64)), rng.coin());
    Writer wl;
    a.live.write(wl);
    Writer wr;
    a.ref.write(wr);
    ASSERT_EQ(wl.data(), wr.data()) << "serialized bytes diverge";
    Reader rd(wl.data());
    EXPECT_EQ(BigInt::read(rd), a.live) << "round-trip";
  }
}

TEST(BignumDiff, WireGoldenVectors) {
  // Hardcoded expected serializations: sign byte (0 = +, 1 = -) then a
  // big-endian u32 length prefix and big-endian magnitude bytes.  These
  // bytes are the PR 1 wire format; they must never change.
  struct Golden {
    std::int64_t value;
    Bytes expected;
  };
  const std::vector<Golden> cases = {
      {0, Bytes{0x00, 0x00, 0x00, 0x00, 0x00}},
      {1, Bytes{0x00, 0x00, 0x00, 0x00, 0x01, 0x01}},
      {-1, Bytes{0x01, 0x00, 0x00, 0x00, 0x01, 0x01}},
      {0x1234, Bytes{0x00, 0x00, 0x00, 0x00, 0x02, 0x12, 0x34}},
      {-0x80, Bytes{0x01, 0x00, 0x00, 0x00, 0x01, 0x80}},
  };
  for (const auto& c : cases) {
    Writer w;
    BigInt{c.value}.write(w);
    EXPECT_EQ(w.data(), c.expected) << c.value;
  }
  // A value spanning several 64-bit limbs: 2^130 + 5 is 17 magnitude
  // bytes, 0x04 (15 zero bytes) 0x05.
  const BigInt big = (BigInt{1} << 130) + BigInt{5};
  Writer w;
  big.write(w);
  Bytes expected{0x00, 0x00, 0x00, 0x00, 0x11, 0x04};
  expected.insert(expected.end(), 15, 0x00);
  expected.push_back(0x05);
  EXPECT_EQ(w.data(), expected);
}

TEST(BignumDiff, ToBytesMatchesAcrossWidths) {
  Rng rng(0xd1ff6c);
  for (int iter = 0; iter < 200; ++iter) {
    Bytes be = random_bytes(rng, rng.uniform(48));
    // Leading zeros must be stripped identically.
    if (!be.empty() && rng.coin()) be.front() = 0;
    Pair a = from_bytes(be);
    EXPECT_EQ(a.live.to_bytes(), a.ref.to_bytes());
  }
}

// --- live-layer invariants the rework introduced --------------------------

TEST(BignumDiff, BitsWindowMatchesBitReconstruction) {
  Rng rng(0xd1ff6d);
  for (int iter = 0; iter < 50; ++iter) {
    const BigInt a = BigInt::from_bytes(random_bytes(rng, 1 + rng.uniform(33)));
    for (int width : {1, 3, 8, 31, 32, 33, 63, 64}) {
      const int i = static_cast<int>(rng.uniform(300));
      BigInt::Limb want = 0;
      for (int b = width; b-- > 0;) {
        want = (want << 1) | (a.bit(i + b) ? 1u : 0u);
      }
      EXPECT_EQ(a.bits_window(i, width), want)
          << "i=" << i << " width=" << width;
    }
  }
}

TEST(BignumDiff, MontgomeryRejectsOversizedModulus) {
  // Fixed-capacity scratch is sized for kMaxModulusBits; wider moduli must
  // be rejected at construction, not corrupt the stack.
  BigInt m = (BigInt{1} << kMaxModulusBits) + BigInt{1};  // 4097 bits, odd
  EXPECT_THROW(Montgomery{m}, std::domain_error);
  BigInt ok = (BigInt{1} << (kMaxModulusBits - 1)) + BigInt{1};
  EXPECT_NO_THROW(Montgomery{ok});
}

TEST(BignumDiff, WorkCounterUnchangedByRescale) {
  // kLimbWorkScale must keep the counter bit-identical to the 32-bit
  // layer for 64-bit-multiple moduli: one mmul over an n-limb modulus
  // charges 4*n^2 = (2n)^2, exactly the old count for the same modulus.
  Rng rng(0xd1ff6e);
  Bytes mb = random_bytes(rng, 64);  // 512-bit modulus: n = 8 limbs
  mb.back() |= 1;
  mb.front() |= 0x80;
  const Montgomery mont{BigInt::from_bytes(mb)};
  const BigInt a = BigInt::from_bytes(random_bytes(rng, 64));
  const BigInt b = BigInt::from_bytes(random_bytes(rng, 64));
  reset_work_counter();
  (void)mont.mul(a, b);
  // mul() = to_mont(a) + to_mont(b) + product + from_mont: 4 mmuls.
  EXPECT_EQ(work_counter(), 4 * kLimbWorkScale * 8 * 8);
  EXPECT_EQ(work_counter(), 4ull * 16 * 16);  // the old 32-bit count
}

}  // namespace
}  // namespace sintra::bignum
