#include <gtest/gtest.h>

#include "crypto/rsa.hpp"
#include "sim/adversary.hpp"
#include "sim/simulator.hpp"

namespace sintra::sim {
namespace {

crypto::Deal test_deal(int n = 4, int t = 1) {
  crypto::DealerConfig cfg;
  cfg.n = n;
  cfg.t = t;
  cfg.rsa_bits = 512;
  cfg.dl_p_bits = 256;
  cfg.dl_q_bits = 96;
  return crypto::run_dealer(cfg);
}

TEST(Simulator, DeliversPointToPoint) {
  const auto deal = test_deal();
  Simulator sim(uniform_setup(4, 90.0, 5.0), deal);
  std::vector<std::string> got;
  sim.node(1).dispatcher().register_pid(
      "test", [&](core::PartyId from, BytesView p) {
        got.push_back(std::to_string(from) + ":" + to_string(p));
      });
  sim.at(0.0, 0, [&] {
    sim.node(0).send(1, core::frame_message("test", to_bytes("hi")));
  });
  sim.run();
  EXPECT_EQ(got, (std::vector<std::string>{"0:hi"}));
  // Arrival after latency.
  EXPECT_GT(sim.now_ms(), 4.0);
}

TEST(Simulator, SendAllIncludesSelf) {
  const auto deal = test_deal();
  Simulator sim(uniform_setup(4), deal);
  int count = 0;
  for (int i = 0; i < 4; ++i) {
    sim.node(i).dispatcher().register_pid(
        "b", [&](core::PartyId, BytesView) { ++count; });
  }
  sim.at(0.0, 2, [&] {
    sim.node(2).send_all(core::frame_message("b", to_bytes("x")));
  });
  sim.run();
  EXPECT_EQ(count, 4);
}

TEST(Simulator, FifoPerLink) {
  const auto deal = test_deal();
  Topology topo = uniform_setup(4, 90.0, 10.0, /*jitter=*/0.5);
  Simulator sim(topo, deal, /*seed=*/7);
  std::vector<int> order;
  sim.node(1).dispatcher().register_pid(
      "seq", [&](core::PartyId, BytesView p) {
        order.push_back(static_cast<int>(p[0]));
      });
  sim.at(0.0, 0, [&] {
    for (int i = 0; i < 20; ++i) {
      sim.node(0).send(1, core::frame_message("seq", Bytes{static_cast<std::uint8_t>(i)}));
    }
  });
  sim.run();
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, DeterministicForSeed) {
  const auto deal = test_deal();
  auto run_once = [&](std::uint64_t seed) {
    Simulator sim(uniform_setup(4, 90.0, 3.0, 0.3), deal, seed);
    std::vector<double> arrivals;
    sim.node(1).dispatcher().register_pid(
        "d", [&](core::PartyId, BytesView) { arrivals.push_back(sim.now_ms()); });
    for (int i = 0; i < 10; ++i) {
      sim.at(static_cast<double>(i), 0, [&] {
        sim.node(0).send(1, core::frame_message("d", {}));
      });
    }
    sim.run();
    return arrivals;
  };
  EXPECT_EQ(run_once(5), run_once(5));
  EXPECT_NE(run_once(5), run_once(6));
}

TEST(Simulator, CrashedNodeSilent) {
  const auto deal = test_deal();
  Simulator sim(uniform_setup(4), deal);
  int received = 0;
  sim.node(1).dispatcher().register_pid(
      "x", [&](core::PartyId, BytesView) { ++received; });
  sim.node(1).crash();
  sim.at(0.0, 0, [&] {
    sim.node(0).send(1, core::frame_message("x", {}));
  });
  sim.run();
  EXPECT_EQ(received, 0);

  // Crashed node also cannot send.
  sim.node(0).crash();
  sim.at(10.0, 0, [&] {
    sim.node(0).send(2, core::frame_message("x", {}));
  });
  const auto sent_before = sim.messages_sent();
  sim.run();
  EXPECT_EQ(sim.messages_sent(), sent_before);
}

TEST(Simulator, CpuTimeAccountsForCrypto) {
  const auto deal = test_deal();
  // Host 0 is 10x slower than host 1.
  Topology topo = uniform_setup(2 + 2, 0.0, 1.0, 0.0);
  topo.hosts[0].exp_ms = 500.0;
  topo.hosts[1].exp_ms = 50.0;
  Simulator sim(topo, deal);
  sim.per_message_cpu_ms = 0.0;

  // Each node signs once upon stimulus; measure completion time via a
  // message it then sends to itself.
  std::vector<double> done(2, 0.0);
  for (int i = 0; i < 2; ++i) {
    sim.node(i).dispatcher().register_pid(
        "done", [&, i](core::PartyId, BytesView) { done[static_cast<std::size_t>(i)] = sim.now_ms(); });
  }
  for (int i = 0; i < 2; ++i) {
    sim.at(0.0, i, [&sim, &deal, i] {
      (void)crypto::rsa_sign(*deal.parties[static_cast<std::size_t>(i)].own_rsa,
                             to_bytes("payload"));
      sim.node(i).send(i, core::frame_message("done", {}));
    });
  }
  sim.run();
  EXPECT_GT(done[0], 0.0);
  EXPECT_GT(done[1], 0.0);
  // Same signing work, 10x CPU-speed difference; the self-send adds only
  // the 0.01 ms loopback to both.
  const double ratio = done[0] / done[1];
  EXPECT_GT(ratio, 7.0);
  EXPECT_LT(ratio, 13.0);
}

TEST(Simulator, CpuSerializesHandlers) {
  const auto deal = test_deal();
  Topology topo = uniform_setup(4, 100.0, 1.0, 0.0);
  Simulator sim(topo, deal);
  sim.per_message_cpu_ms = 10.0;  // each handler occupies the CPU 10 ms
  std::vector<double> times;
  sim.node(1).dispatcher().register_pid(
      "work", [&](core::PartyId, BytesView) { times.push_back(sim.now_ms()); });
  sim.at(0.0, 0, [&] {
    for (int i = 0; i < 5; ++i) {
      sim.node(0).send(1, core::frame_message("work", {}));
    }
  });
  sim.run();
  ASSERT_EQ(times.size(), 5u);
  // All five arrive at ~1ms but the last one's *processing end* is 50 ms
  // later; arrival timestamps are equal, so check via total sim time:
  EXPECT_GE(sim.now_ms(), 1.0);
}

TEST(Simulator, ForgedWireWithoutKeysDropped) {
  const auto deal = test_deal();
  Simulator sim(uniform_setup(4), deal);
  int received = 0;
  sim.node(1).dispatcher().register_pid(
      "x", [&](core::PartyId, BytesView) { ++received; });
  // Raw injection without valid HMAC must be dropped.
  sim.inject(0, 1, core::frame_message("x", to_bytes("forged")), 0.0);
  sim.run();
  EXPECT_EQ(received, 0);
}

TEST(Simulator, AdversaryWithKeysCanImpersonateCorrupted) {
  const auto deal = test_deal();
  Simulator sim(uniform_setup(4), deal);
  Adversary adv(sim, deal);
  std::vector<std::string> got;
  sim.node(1).dispatcher().register_pid(
      "x", [&](core::PartyId from, BytesView p) {
        got.push_back(std::to_string(from) + ":" + to_string(p));
      });
  adv.corrupt(3);
  adv.send_as(3, 1, "x", to_bytes("equivocation-A"), 0.0);
  sim.run();
  EXPECT_EQ(got, (std::vector<std::string>{"3:equivocation-A"}));
}

TEST(Simulator, DelayHookAddsAdversarialDelay) {
  const auto deal = test_deal();
  Simulator sim(uniform_setup(4, 90.0, 1.0, 0.0), deal);
  sim.delay_hook = [](int from, int, double) {
    return from == 0 ? 500.0 : 0.0;
  };
  double arrival = -1;
  sim.node(1).dispatcher().register_pid(
      "x", [&](core::PartyId, BytesView) { arrival = sim.now_ms(); });
  sim.at(0.0, 0, [&] {
    sim.node(0).send(1, core::frame_message("x", {}));
  });
  sim.run();
  EXPECT_GT(arrival, 500.0);
}

TEST(Simulator, RunUntilRespectsDeadline) {
  const auto deal = test_deal();
  Simulator sim(uniform_setup(4, 90.0, 100.0, 0.0), deal);
  bool got = false;
  sim.node(1).dispatcher().register_pid(
      "x", [&](core::PartyId, BytesView) { got = true; });
  sim.at(0.0, 0, [&] {
    sim.node(0).send(1, core::frame_message("x", {}));
  });
  EXPECT_FALSE(sim.run_until([&] { return got; }, 10.0));
  EXPECT_TRUE(sim.run_until([&] { return got; }, 1000.0));
}

TEST(Simulator, PaperTopologiesWellFormed) {
  for (const Topology& topo :
       {lan_setup(), internet_setup(), combined_setup()}) {
    const int n = topo.n();
    ASSERT_EQ(topo.latency_ms.size(), static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        EXPECT_GT(topo.latency_ms[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)], 0.0);
        EXPECT_EQ(topo.latency_ms[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)],
                  topo.latency_ms[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)]);
      }
      EXPECT_GT(topo.hosts[static_cast<std::size_t>(i)].exp_ms, 0.0);
    }
  }
  // Spot-check Figure 3: Zurich–NewYork one-way 46.5 ms.
  EXPECT_DOUBLE_EQ(internet_setup().latency_ms[0][2], 46.5);
  EXPECT_EQ(combined_setup().n(), 7);
}

}  // namespace
}  // namespace sintra::sim

namespace sintra::sim {
namespace {

TEST(Simulator, MessageTraceRecordsPidsAndBytes) {
  crypto::DealerConfig cfg;
  cfg.n = 4;
  cfg.t = 1;
  cfg.rsa_bits = 512;
  cfg.dl_p_bits = 256;
  cfg.dl_q_bits = 96;
  const auto deal = crypto::run_dealer(cfg);
  Simulator sim(uniform_setup(4), deal);
  MessageTrace trace;
  sim.trace = &trace;
  sim.at(0.0, 0, [&] {
    sim.node(0).send_all(core::frame_message("traced.pid", to_bytes("xyz")));
  });
  sim.run();
  ASSERT_EQ(trace.entries().size(), 4u);
  for (const auto& e : trace.entries()) {
    EXPECT_EQ(e.pid, "traced.pid");
    EXPECT_EQ(e.from, 0);
    EXPECT_GT(e.bytes, 3u);
  }
  const auto totals = trace.by_class([](const std::string& pid) {
    return pid.substr(0, pid.find('.'));
  });
  ASSERT_TRUE(totals.contains("traced"));
  EXPECT_EQ(totals.at("traced").messages, 4u);
}

}  // namespace
}  // namespace sintra::sim
