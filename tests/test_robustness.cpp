// Robustness sweeps: random-bytes fuzzing of every message handler, and
// edge cases not covered by the per-module suites.
#include <gtest/gtest.h>

#include "core/agreement/binary_agreement.hpp"
#include "core/broadcast/reliable_broadcast.hpp"
#include "core/channel/atomic_channel.hpp"
#include "core/channel/optimistic_channel.hpp"
#include "core/channel/secure_atomic_channel.hpp"
#include "sim_fixture.hpp"

namespace sintra::core {
namespace {

using testing::Cluster;

// --- Handler fuzzing: random bytes must never crash or cause output ---

class FuzzTargets {
 public:
  explicit FuzzTargets(Cluster& c) {
    rbc_ = std::make_unique<ReliableBroadcast>(
        c.sim.node(0), c.sim.node(0).dispatcher(), "fuzz.rbc", 1);
    cb_ = std::make_unique<VerifiableConsistentBroadcast>(
        c.sim.node(0), c.sim.node(0).dispatcher(), "fuzz.cb", 1);
    ba_ = std::make_unique<BinaryAgreement>(
        c.sim.node(0), c.sim.node(0).dispatcher(), "fuzz.ba");
    mvba_ = std::make_unique<ArrayAgreement>(
        c.sim.node(0), c.sim.node(0).dispatcher(), "fuzz.mvba",
        [](BytesView) { return true; });
    ac_ = std::make_unique<AtomicChannel>(c.sim.node(0),
                                          c.sim.node(0).dispatcher(),
                                          "fuzz.ac");
    sac_ = std::make_unique<SecureAtomicChannel>(
        c.sim.node(0), c.sim.node(0).dispatcher(), "fuzz.sac");
    oc_ = std::make_unique<OptimisticChannel>(
        c.sim.node(0), c.sim.node(0).dispatcher(), "fuzz.oc");
    pids_ = {"fuzz.rbc.1", "fuzz.cb.1",  "fuzz.ba", "fuzz.mvba",
             "fuzz.ac",    "fuzz.sac",   "fuzz.oc", "fuzz.mvba.cb.0",
             "fuzz.mvba.vba.0", "fuzz.sac.ac", "fuzz.oc.e0.s0.0"};
  }

  void assert_silent() const {
    EXPECT_FALSE(rbc_->delivered().has_value());
    EXPECT_FALSE(cb_->delivered().has_value());
    EXPECT_FALSE(ba_->decided().has_value());
    EXPECT_FALSE(mvba_->decided().has_value());
    EXPECT_TRUE(ac_->deliveries().empty());
    EXPECT_TRUE(sac_->deliveries().empty());
    EXPECT_TRUE(oc_->deliveries().empty());
  }

  std::vector<std::string> pids_;

 private:
  std::unique_ptr<ReliableBroadcast> rbc_;
  std::unique_ptr<VerifiableConsistentBroadcast> cb_;
  std::unique_ptr<BinaryAgreement> ba_;
  std::unique_ptr<ArrayAgreement> mvba_;
  std::unique_ptr<AtomicChannel> ac_;
  std::unique_ptr<SecureAtomicChannel> sac_;
  std::unique_ptr<OptimisticChannel> oc_;
};

TEST(Robustness, RandomBytesIntoEveryHandler) {
  Cluster c(4, 1, 0xf022);
  FuzzTargets targets(c);
  sim::Adversary adv(c.sim, c.deal);
  adv.corrupt(2);
  Rng fuzz(0xfa22);
  // 600 random payloads of random lengths across all registered pids.
  for (int i = 0; i < 600; ++i) {
    const std::string& pid = targets.pids_[fuzz.uniform(targets.pids_.size())];
    const std::size_t len = fuzz.uniform(120);
    adv.send_as(2, 0, pid, fuzz.bytes(len), static_cast<double>(i) * 0.5);
  }
  c.sim.run(100000);
  targets.assert_silent();
}

TEST(Robustness, StructuredGarbageWithValidTags) {
  // Same, but first bytes look like valid message tags, exercising the
  // deeper parse paths.
  Cluster c(4, 1, 0xf023);
  FuzzTargets targets(c);
  sim::Adversary adv(c.sim, c.deal);
  adv.corrupt(3);
  Rng fuzz(0x5eed);
  for (int i = 0; i < 400; ++i) {
    const std::string& pid = targets.pids_[fuzz.uniform(targets.pids_.size())];
    Writer w;
    w.u8(static_cast<std::uint8_t>(fuzz.uniform(6)));  // plausible tag
    w.u32(static_cast<std::uint32_t>(fuzz.uniform(4)));  // plausible round
    const std::size_t len = fuzz.uniform(200);
    w.raw(fuzz.bytes(len));
    adv.send_as(3, 0, pid, w.data(), static_cast<double>(i));
  }
  c.sim.run(100000);
  targets.assert_silent();
}

// --- Edge cases ---

TEST(Robustness, AtomicChannelDeliversQueuedMessagesBeforeClose) {
  // A party queues payloads then close(); its FIFO guarantees the
  // payloads precede the close marker, so they are delivered before the
  // channel terminates.
  Cluster c(4, 1, 0xf024);
  auto chans = c.make_protocols<AtomicChannel>(
      [&](Environment& env, Dispatcher& disp, int) {
        return std::make_unique<AtomicChannel>(env, disp, "edge.close");
      });
  c.sim.at(0.0, 0, [&] {
    chans[0]->send(to_bytes("before-close-1"));
    chans[0]->send(to_bytes("before-close-2"));
    chans[0]->close();
  });
  c.sim.at(0.0, 1, [&] { chans[1]->close(); });
  ASSERT_TRUE(c.sim.run_until(
      [&] {
        return std::all_of(chans.begin(), chans.end(), [](const auto& ch) {
          return ch->is_closed();
        });
      },
      8e6));
  for (const auto& ch : chans) {
    ASSERT_EQ(ch->deliveries().size(), 2u);
    EXPECT_EQ(to_string(ch->deliveries()[0].payload), "before-close-1");
    EXPECT_EQ(to_string(ch->deliveries()[1].payload), "before-close-2");
  }
}

TEST(Robustness, SecureChannelEarlySharesBuffered) {
  // Decryption shares that arrive before the local atomic delivery of
  // their ciphertext must be buffered, not lost: delay all atomic-layer
  // traffic to node 3 so its shares arrive "early" relative to it.
  Cluster c(4, 1, 0xf025);
  auto chans = c.make_protocols<SecureAtomicChannel>(
      [&](Environment& env, Dispatcher& disp, int) {
        return std::make_unique<SecureAtomicChannel>(env, disp, "edge.early");
      });
  c.sim.delay_hook = [](int, int to, double) {
    return to == 3 ? 300.0 : 0.0;  // node 3 lags behind the others
  };
  c.sim.at(0.0, 0, [&] { chans[0]->send(to_bytes("delayed decrypt")); });
  ASSERT_TRUE(c.sim.run_until(
      [&] {
        return std::all_of(chans.begin(), chans.end(), [](const auto& ch) {
          return ch->deliveries().size() >= 1;
        });
      },
      8e6));
  EXPECT_EQ(to_string(chans[3]->deliveries()[0].payload), "delayed decrypt");
}

TEST(Robustness, BinaryAgreementLateProposerStillDecides) {
  // Three parties start immediately; the fourth proposes only long after
  // the others may already have decided — it must still decide the same
  // value (via the DECIDE gadget).
  Cluster c(4, 1, 0xf026);
  auto ps = c.make_protocols<BinaryAgreement>(
      [&](Environment& env, Dispatcher& disp, int) {
        return std::make_unique<BinaryAgreement>(env, disp, "edge.late");
      });
  for (int i = 0; i < 3; ++i) {
    c.sim.at(0.0, i, [&, i] { ps[static_cast<std::size_t>(i)]->propose(true); });
  }
  c.sim.at(60000.0, 3, [&] { ps[3]->propose(false); });
  ASSERT_TRUE(c.sim.run_until(
      [&] {
        return std::all_of(ps.begin(), ps.end(), [](const auto& p) {
          return p->decided().has_value();
        });
      },
      600000));
  for (const auto& p : ps) EXPECT_EQ(*p->decided(), true);
}

TEST(Robustness, AtomicChannelManyMessagesStress) {
  // 60 messages from 4 senders with heavy jitter: total order end to end.
  Cluster c(4, 1, 0xf027, 2.0, 0.45);
  auto chans = c.make_protocols<AtomicChannel>(
      [&](Environment& env, Dispatcher& disp, int) {
        return std::make_unique<AtomicChannel>(env, disp, "edge.stress");
      });
  for (int s = 0; s < 4; ++s) {
    for (int m = 0; m < 15; ++m) {
      c.sim.at(m * 1.0, s, [&, s, m] {
        chans[static_cast<std::size_t>(s)]->send(
            to_bytes("x" + std::to_string(s) + "." + std::to_string(m)));
      });
    }
  }
  ASSERT_TRUE(c.sim.run_until(
      [&] {
        return std::all_of(chans.begin(), chans.end(), [](const auto& ch) {
          return ch->deliveries().size() >= 60;
        });
      },
      4e7));
  std::vector<std::string> expected;
  for (const auto& d : chans[0]->deliveries()) {
    expected.push_back(to_string(d.payload));
  }
  for (const auto& ch : chans) {
    std::vector<std::string> got;
    for (const auto& d : ch->deliveries()) got.push_back(to_string(d.payload));
    EXPECT_EQ(got, expected);
  }
  // Exactly-once: 60 distinct payloads.
  std::set<std::string> uniq(expected.begin(), expected.end());
  EXPECT_EQ(uniq.size(), 60u);
}

}  // namespace
}  // namespace sintra::core
