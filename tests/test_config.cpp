#include "core/config.hpp"

#include <gtest/gtest.h>

namespace sintra::core {
namespace {

constexpr const char* kGoodConfig = R"(
# SINTRA test group
n = 4
t = 1
rsa_bits = 1024
dl_p_bits = 1024
dl_q_bits = 160
hash = sha1
signatures = multi
seed = 42
party.0 = zurich.example.com:7001   # P0
party.1 = tokyo.example.com:7001
party.2 = newyork.example.com:7001
party.3 = california.example.com:7001
)";

TEST(GroupConfig, ParsesFullConfig) {
  const GroupConfig cfg = GroupConfig::parse(kGoodConfig);
  EXPECT_EQ(cfg.dealer.n, 4);
  EXPECT_EQ(cfg.dealer.t, 1);
  EXPECT_EQ(cfg.dealer.rsa_bits, 1024);
  EXPECT_EQ(cfg.dealer.dl_p_bits, 1024);
  EXPECT_EQ(cfg.dealer.dl_q_bits, 160);
  EXPECT_EQ(cfg.dealer.hash, crypto::HashKind::kSha1);
  EXPECT_EQ(cfg.dealer.sig_impl, crypto::SigImpl::kMultiSig);
  EXPECT_EQ(cfg.dealer.seed, 42u);
  ASSERT_EQ(cfg.parties.size(), 4u);
  EXPECT_EQ(cfg.parties[0], (Endpoint{"zurich.example.com", 7001}));
  EXPECT_EQ(cfg.parties[3], (Endpoint{"california.example.com", 7001}));
}

TEST(GroupConfig, RoundTripsThroughText) {
  const GroupConfig cfg = GroupConfig::parse(kGoodConfig);
  const GroupConfig again = GroupConfig::parse(cfg.to_text());
  EXPECT_EQ(again.dealer.n, cfg.dealer.n);
  EXPECT_EQ(again.dealer.hash, cfg.dealer.hash);
  EXPECT_EQ(again.parties, cfg.parties);
}

TEST(GroupConfig, DefaultsApplyForOptionalKeys) {
  const GroupConfig cfg = GroupConfig::parse(
      "n = 4\nt = 1\n"
      "party.0 = a:1\nparty.1 = b:2\nparty.2 = c:3\nparty.3 = d:4\n");
  EXPECT_EQ(cfg.dealer.rsa_bits, crypto::DealerConfig{}.rsa_bits);
  EXPECT_EQ(cfg.dealer.sig_impl, crypto::SigImpl::kMultiSig);
}

TEST(GroupConfig, ThresholdRsaAndSha256Options) {
  const GroupConfig cfg = GroupConfig::parse(
      "n = 4\nt = 1\nhash = sha256\nsignatures = threshold-rsa\n"
      "party.0 = a:1\nparty.1 = b:2\nparty.2 = c:3\nparty.3 = d:4\n");
  EXPECT_EQ(cfg.dealer.hash, crypto::HashKind::kSha256);
  EXPECT_EQ(cfg.dealer.sig_impl, crypto::SigImpl::kThresholdRsa);
}

TEST(GroupConfig, IPv6StyleHostUsesLastColon) {
  const GroupConfig cfg = GroupConfig::parse(
      "n = 4\nt = 1\n"
      "party.0 = ::1:7001\nparty.1 = b:2\nparty.2 = c:3\nparty.3 = d:4\n");
  EXPECT_EQ(cfg.parties[0], (Endpoint{"::1", 7001}));
}

TEST(GroupConfig, RejectsBadInputs) {
  // Missing n/t.
  EXPECT_THROW((void)GroupConfig::parse("party.0 = a:1\n"),
               std::invalid_argument);
  // n <= 3t.
  EXPECT_THROW((void)GroupConfig::parse(
                   "n = 3\nt = 1\nparty.0=a:1\nparty.1=b:2\nparty.2=c:3\n"),
               std::invalid_argument);
  // Wrong endpoint count.
  EXPECT_THROW((void)GroupConfig::parse("n = 4\nt = 1\nparty.0 = a:1\n"),
               std::invalid_argument);
  // Missing index 2.
  EXPECT_THROW((void)GroupConfig::parse(
                   "n = 4\nt = 1\nparty.0=a:1\nparty.1=b:2\nparty.4=e:5\n"
                   "party.3=d:4\n"),
               std::invalid_argument);
  // Duplicate party.
  EXPECT_THROW((void)GroupConfig::parse(
                   "n = 4\nt = 1\nparty.0=a:1\nparty.0=b:2\nparty.2=c:3\n"
                   "party.3=d:4\n"),
               std::invalid_argument);
  // Unknown key.
  EXPECT_THROW((void)GroupConfig::parse("n = 4\nt = 1\nbogus = 1\n"),
               std::invalid_argument);
  // Malformed endpoint.
  EXPECT_THROW((void)GroupConfig::parse(
                   "n = 4\nt = 1\nparty.0 = nocolon\nparty.1=b:2\n"
                   "party.2=c:3\nparty.3=d:4\n"),
               std::invalid_argument);
  // Port out of range.
  EXPECT_THROW((void)GroupConfig::parse(
                   "n = 4\nt = 1\nparty.0 = a:99999\nparty.1=b:2\n"
                   "party.2=c:3\nparty.3=d:4\n"),
               std::invalid_argument);
  // Bad hash value.
  EXPECT_THROW((void)GroupConfig::parse(
                   "n = 4\nt = 1\nhash = md5\nparty.0=a:1\nparty.1=b:2\n"
                   "party.2=c:3\nparty.3=d:4\n"),
               std::invalid_argument);
  // Garbage line.
  EXPECT_THROW((void)GroupConfig::parse("n = 4\nt = 1\njust some words\n"),
               std::invalid_argument);
}

TEST(GroupConfig, ErrorsCarryLineNumbers) {
  try {
    (void)GroupConfig::parse("n = 4\nt = 1\nbogus = 1\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(GroupConfig, ConfigDrivesDealer) {
  // End-to-end: parse a config, run the dealer from it.
  const GroupConfig cfg = GroupConfig::parse(
      "n = 4\nt = 1\nrsa_bits = 512\ndl_p_bits = 256\ndl_q_bits = 96\n"
      "party.0=a:1\nparty.1=b:2\nparty.2=c:3\nparty.3=d:4\n");
  const crypto::Deal deal = crypto::run_dealer(cfg.dealer);
  EXPECT_EQ(deal.parties.size(), 4u);
}

}  // namespace
}  // namespace sintra::core
