#include <gtest/gtest.h>

#include "core/dispatcher.hpp"

namespace sintra::core {
namespace {

TEST(Dispatcher, RoutesToRegisteredHandler) {
  Dispatcher d;
  std::vector<std::pair<PartyId, std::string>> got;
  d.register_pid("p1", [&](PartyId from, BytesView payload) {
    got.emplace_back(from, to_string(payload));
  });
  d.on_message(2, frame_message("p1", to_bytes("hello")));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].first, 2);
  EXPECT_EQ(got[0].second, "hello");
}

TEST(Dispatcher, BuffersEarlyMessagesAndReplaysInOrder) {
  Dispatcher d;
  d.on_message(0, frame_message("late", to_bytes("a")));
  d.on_message(1, frame_message("late", to_bytes("b")));
  EXPECT_EQ(d.buffered_count(), 2u);
  std::vector<std::string> got;
  d.register_pid("late", [&](PartyId, BytesView p) {
    got.push_back(to_string(p));
  });
  EXPECT_EQ(got, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(d.buffered_count(), 0u);
}

TEST(Dispatcher, SeparatePidsDoNotInterfere) {
  Dispatcher d;
  int c1 = 0, c2 = 0;
  d.register_pid("a", [&](PartyId, BytesView) { ++c1; });
  d.register_pid("b", [&](PartyId, BytesView) { ++c2; });
  d.on_message(0, frame_message("a", {}));
  d.on_message(0, frame_message("b", {}));
  d.on_message(0, frame_message("b", {}));
  EXPECT_EQ(c1, 1);
  EXPECT_EQ(c2, 2);
}

TEST(Dispatcher, DuplicateRegistrationThrows) {
  Dispatcher d;
  d.register_pid("x", [](PartyId, BytesView) {});
  EXPECT_THROW(d.register_pid("x", [](PartyId, BytesView) {}),
               std::logic_error);
}

TEST(Dispatcher, UnregisteredRetiredPidDropsMessages) {
  Dispatcher d;
  d.register_pid("x", [](PartyId, BytesView) {});
  d.unregister_pid("x");
  d.on_message(0, frame_message("x", to_bytes("dropped")));
  EXPECT_EQ(d.buffered_count(), 0u);
  // Re-registration is allowed and starts clean.
  int count = 0;
  d.register_pid("x", [&](PartyId, BytesView) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(Dispatcher, MalformedFramesDropped) {
  Dispatcher d;
  int count = 0;
  d.register_pid("x", [&](PartyId, BytesView) { ++count; });
  d.on_message(0, Bytes{0x01});  // truncated frame
  d.on_message(0, Bytes{});
  EXPECT_EQ(count, 0);
}

TEST(Dispatcher, HandlerCanUnregisterDuringReplay) {
  Dispatcher d;
  d.on_message(0, frame_message("p", to_bytes("1")));
  d.on_message(0, frame_message("p", to_bytes("2")));
  int seen = 0;
  d.register_pid("p", [&](PartyId, BytesView) {
    ++seen;
    d.unregister_pid("p");  // one-shot protocol terminates
  });
  EXPECT_EQ(seen, 1);  // second buffered message must not be delivered
}

TEST(Dispatcher, ByzantinePidsDoNotGrowLayerMetrics) {
  // Per-layer registry entries derive from the attacker-controlled pid;
  // distinct non-numeric pids must all collapse into one "unrouted"
  // layer instead of registering unbounded metrics.
  Dispatcher d;
  d.attach_obs(93, [] { return 0.0; });
  const auto layer_entries = [] {
    std::size_t n = 0;
    for (const auto& c : obs::registry().snapshot().counters) {
      if (c.name != "dispatcher.messages") continue;
      for (const auto& [k, v] : c.labels) {
        if (k == "party" && v == "93") ++n;
      }
    }
    return n;
  };
  d.on_message(0, frame_message("junk.seed", to_bytes("x")));
  const std::size_t base = layer_entries();
  for (int i = 0; i < 300; ++i) {
    const std::string pid = std::string("junk.") +
                            static_cast<char>('a' + i % 26) +
                            static_cast<char>('a' + i / 26);
    d.on_message(0, frame_message(pid, to_bytes("x")));
  }
  EXPECT_EQ(layer_entries(), base);

  // A registered pid still gets its own layer entry.
  d.register_pid("real.7", [](PartyId, BytesView) {});
  d.on_message(0, frame_message("real.7", to_bytes("x")));
  EXPECT_EQ(layer_entries(), base + 1);
}

TEST(Dispatcher, FloodingGuardCapsBuffer) {
  Dispatcher d;
  const Bytes frame = frame_message("never-registered", to_bytes("x"));
  for (std::size_t i = 0; i < Dispatcher::kMaxBuffered + 10; ++i) {
    d.on_message(0, frame);
  }
  EXPECT_EQ(d.buffered_count(), Dispatcher::kMaxBuffered);
}

}  // namespace
}  // namespace sintra::core
