#include <gtest/gtest.h>

#include <algorithm>

#include "bignum/prime.hpp"
#include "crypto/shamir.hpp"

namespace sintra::crypto {
namespace {

TEST(Shamir, InterpolationRecoversSecret) {
  Rng rng(1);
  const BigInt q = bignum::random_prime(rng, 128);
  const BigInt secret = BigInt::random_below(rng, q);
  const SecretPolynomial poly(rng, secret, q, 3);
  const std::vector<BigInt> shares = poly.shares(7);

  // Any 3 of the 7 shares recover the secret.
  for (const auto& pick : std::vector<std::vector<int>>{
           {0, 1, 2}, {4, 5, 6}, {0, 3, 6}, {2, 4, 5}, {6, 1, 3}}) {
    std::vector<SharePoint> pts;
    for (int i : pick) pts.push_back({i, shares[static_cast<std::size_t>(i)]});
    EXPECT_EQ(lagrange_zero(pts, q), secret);
  }
}

TEST(Shamir, TooFewSharesGiveWrongSecret) {
  Rng rng(2);
  const BigInt q = bignum::random_prime(rng, 128);
  const BigInt secret = BigInt::random_below(rng, q);
  const SecretPolynomial poly(rng, secret, q, 4);
  const std::vector<BigInt> shares = poly.shares(7);
  // Interpolating with only 3 points of a degree-3 polynomial is (w.h.p.)
  // not the secret.
  std::vector<SharePoint> pts{{0, shares[0]}, {1, shares[1]}, {2, shares[2]}};
  EXPECT_NE(lagrange_zero(pts, q), secret);
}

TEST(Shamir, KEqualsOneIsConstant) {
  Rng rng(3);
  const BigInt q = bignum::random_prime(rng, 64);
  const BigInt secret = BigInt::random_below(rng, q);
  const SecretPolynomial poly(rng, secret, q, 1);
  for (const BigInt& s : poly.shares(5)) EXPECT_EQ(s, secret);
}

TEST(Shamir, DuplicateIndicesRejected) {
  Rng rng(4);
  const BigInt q = bignum::random_prime(rng, 64);
  std::vector<SharePoint> pts{{0, BigInt{1}}, {0, BigInt{2}}, {1, BigInt{3}}};
  EXPECT_THROW((void)lagrange_zero(pts, q), std::invalid_argument);
  EXPECT_THROW((void)lagrange_coeff_zero({0, 0, 1}, 0, q),
               std::invalid_argument);
}

TEST(Shamir, CoefficientsSumToIdentity) {
  // sum_j lambda_j * f(x_j) must equal f(0) for every polynomial; with the
  // constant polynomial f == 1, the lambdas must sum to 1.
  Rng rng(5);
  const BigInt q = bignum::random_prime(rng, 96);
  const std::vector<int> indices{1, 3, 4, 6};
  BigInt sum;
  for (std::size_t j = 0; j < indices.size(); ++j) {
    sum = (sum + lagrange_coeff_zero(indices, static_cast<int>(j), q)).mod(q);
  }
  EXPECT_EQ(sum, BigInt{1});
}

TEST(Shamir, Factorial) {
  EXPECT_EQ(factorial(0), BigInt{1});
  EXPECT_EQ(factorial(1), BigInt{1});
  EXPECT_EQ(factorial(5), BigInt{120});
  EXPECT_EQ(factorial(20), BigInt::from_string("2432902008176640000"));
}

TEST(Shamir, IntegerLagrangeIsExact) {
  // For every subset the scaled coefficients must be integers and satisfy
  // the interpolation identity Δ·f(0) = sum_j (Δλ_j) f(x_j) over the
  // integers for any integer polynomial.
  const int n = 7;
  const BigInt delta = factorial(n);
  Rng rng(6);
  // Integer polynomial of degree 2.
  const BigInt a0{12345}, a1{678}, a2{91};
  auto f = [&](int x) {
    const BigInt bx{x};
    return a0 + a1 * bx + a2 * bx * bx;
  };
  const std::vector<int> indices{0, 2, 5};  // 0-based parties -> x = 1,3,6
  BigInt acc;
  for (std::size_t j = 0; j < indices.size(); ++j) {
    const BigInt lambda =
        integer_lagrange_coeff(delta, indices, static_cast<int>(j));
    acc += lambda * f(indices[j] + 1);
  }
  EXPECT_EQ(acc, delta * a0);
}

TEST(Shamir, IntegerLagrangeAllSubsetsOfFive) {
  const int n = 5;
  const BigInt delta = factorial(n);
  // Exhaustively check every 3-subset of 5 parties.
  const BigInt a0{7}, a1{11};
  auto f = [&](int x) { return a0 + a1 * BigInt{x}; };
  std::vector<int> parties{0, 1, 2, 3, 4};
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      for (int k = j + 1; k < n; ++k) {
        const std::vector<int> idx{i, j, k};
        BigInt acc;
        for (int m = 0; m < 3; ++m) {
          acc += integer_lagrange_coeff(delta, idx, m) * f(idx[static_cast<std::size_t>(m)] + 1);
        }
        EXPECT_EQ(acc, delta * a0) << i << "," << j << "," << k;
      }
    }
  }
}

TEST(Shamir, ShareForMatchesShares) {
  Rng rng(7);
  const BigInt q = bignum::random_prime(rng, 64);
  const SecretPolynomial poly(rng, BigInt{42}, q, 3);
  const auto all = poly.shares(6);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(all[static_cast<std::size_t>(i)], poly.share_for(i));
  }
}

}  // namespace
}  // namespace sintra::crypto
