#include "bignum/bigint.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "util/hex.hpp"

namespace sintra::bignum {
namespace {

BigInt bi(std::string_view s) { return BigInt::from_string(s); }

TEST(BigInt, ConstructionFromInt64) {
  EXPECT_EQ(BigInt{0}.to_string(), "0");
  EXPECT_EQ(BigInt{1}.to_string(), "1");
  EXPECT_EQ(BigInt{-1}.to_string(), "-1");
  EXPECT_EQ(BigInt{INT64_MAX}.to_string(), "9223372036854775807");
  EXPECT_EQ(BigInt{INT64_MIN}.to_string(), "-9223372036854775808");
}

TEST(BigInt, DecimalStringRoundTrip) {
  const char* cases[] = {
      "0",
      "1",
      "-1",
      "4294967295",
      "4294967296",
      "123456789012345678901234567890",
      "-999999999999999999999999999999999999",
  };
  for (const char* s : cases) EXPECT_EQ(bi(s).to_string(), s);
}

TEST(BigInt, HexParsingMatchesDecimal) {
  EXPECT_EQ(bi("0xff"), bi("255"));
  EXPECT_EQ(bi("0x100000000"), bi("4294967296"));
  EXPECT_EQ(bi("-0x10"), bi("-16"));
  EXPECT_EQ(bi("0xDEADBEEF"), bi("3735928559"));
}

TEST(BigInt, ToHex) {
  EXPECT_EQ(bi("255").to_hex(), "ff");
  EXPECT_EQ(bi("4294967296").to_hex(), "100000000");
  EXPECT_EQ(BigInt{0}.to_hex(), "0");
}

TEST(BigInt, RejectsMalformedStrings) {
  EXPECT_THROW(bi(""), std::invalid_argument);
  EXPECT_THROW(bi("12a"), std::invalid_argument);
  EXPECT_THROW(bi("0xgg"), std::invalid_argument);
  EXPECT_THROW(bi("-"), std::invalid_argument);
}

TEST(BigInt, AdditionCarriesAcrossLimbs) {
  EXPECT_EQ(bi("4294967295") + BigInt{1}, bi("4294967296"));
  EXPECT_EQ(bi("18446744073709551615") + BigInt{1}, bi("18446744073709551616"));
}

TEST(BigInt, SignedAddition) {
  EXPECT_EQ(BigInt{5} + BigInt{-3}, BigInt{2});
  EXPECT_EQ(BigInt{3} + BigInt{-5}, BigInt{-2});
  EXPECT_EQ(BigInt{-3} + BigInt{-5}, BigInt{-8});
  EXPECT_EQ(BigInt{5} + BigInt{-5}, BigInt{0});
}

TEST(BigInt, SubtractionBorrows) {
  EXPECT_EQ(bi("4294967296") - BigInt{1}, bi("4294967295"));
  EXPECT_EQ(BigInt{0} - bi("123456789012345678901234567890"),
            bi("-123456789012345678901234567890"));
}

TEST(BigInt, MultiplicationLarge) {
  EXPECT_EQ(bi("123456789012345678901234567890") * bi("987654321098765432109876543210"),
            bi("121932631137021795226185032733622923332237463801111263526900"));
}

TEST(BigInt, MultiplicationSigns) {
  EXPECT_EQ(BigInt{-4} * BigInt{5}, BigInt{-20});
  EXPECT_EQ(BigInt{-4} * BigInt{-5}, BigInt{20});
  EXPECT_EQ(BigInt{-4} * BigInt{0}, BigInt{0});
}

TEST(BigInt, DivisionSingleLimb) {
  EXPECT_EQ(bi("1000000000000") / BigInt{7}, bi("142857142857"));
  EXPECT_EQ(bi("1000000000000") % BigInt{7}, BigInt{1});
}

TEST(BigInt, DivisionMultiLimbKnuthD) {
  const BigInt a = bi("340282366920938463463374607431768211456");  // 2^128
  const BigInt b = bi("18446744073709551629");                     // 2^64+13
  const auto [q, r] = BigInt::div_mod(a, b);
  EXPECT_EQ(q * b + r, a);
  EXPECT_GE(r, BigInt{0});
  EXPECT_LT(r, b);
}

TEST(BigInt, DivisionTruncatesTowardZero) {
  EXPECT_EQ(BigInt{-7} / BigInt{2}, BigInt{-3});
  EXPECT_EQ(BigInt{-7} % BigInt{2}, BigInt{-1});
  EXPECT_EQ(BigInt{7} / BigInt{-2}, BigInt{-3});
  EXPECT_EQ(BigInt{7} % BigInt{-2}, BigInt{1});
}

TEST(BigInt, DivisionByZeroThrows) {
  EXPECT_THROW(BigInt{1} / BigInt{0}, std::domain_error);
}

TEST(BigInt, DivModPropertyRandomized) {
  Rng rng(123);
  for (int i = 0; i < 200; ++i) {
    const BigInt a = BigInt::random_bits(rng, 20 + static_cast<int>(rng.uniform(500)));
    const BigInt b = BigInt::random_bits(rng, 8 + static_cast<int>(rng.uniform(300)));
    const auto [q, r] = BigInt::div_mod(a, b);
    EXPECT_EQ(q * b + r, a);
    EXPECT_GE(r, BigInt{0});
    EXPECT_LT(r, b);
  }
}

TEST(BigInt, Shifts) {
  EXPECT_EQ(BigInt{1} << 100, bi("1267650600228229401496703205376"));
  EXPECT_EQ(bi("1267650600228229401496703205376") >> 100, BigInt{1});
  EXPECT_EQ(bi("12345") >> 200, BigInt{0});
  EXPECT_EQ(BigInt{6} >> 1, BigInt{3});
  EXPECT_EQ(BigInt{6} << 0, BigInt{6});
}

TEST(BigInt, ShiftRoundTripRandomized) {
  Rng rng(321);
  for (int i = 0; i < 100; ++i) {
    const BigInt a = BigInt::random_bits(rng, 1 + static_cast<int>(rng.uniform(400)));
    const int k = static_cast<int>(rng.uniform(130));
    EXPECT_EQ((a << k) >> k, a);
  }
}

TEST(BigInt, Comparisons) {
  EXPECT_LT(BigInt{-2}, BigInt{-1});
  EXPECT_LT(BigInt{-1}, BigInt{0});
  EXPECT_LT(BigInt{0}, BigInt{1});
  EXPECT_LT(bi("4294967295"), bi("4294967296"));
  EXPECT_GT(bi("100000000000000000000"), bi("99999999999999999999"));
}

TEST(BigInt, BitLength) {
  EXPECT_EQ(BigInt{0}.bit_length(), 0);
  EXPECT_EQ(BigInt{1}.bit_length(), 1);
  EXPECT_EQ(BigInt{255}.bit_length(), 8);
  EXPECT_EQ(BigInt{256}.bit_length(), 9);
  EXPECT_EQ((BigInt{1} << 1000).bit_length(), 1001);
}

TEST(BigInt, BitAccess) {
  const BigInt v = bi("0b1010" == nullptr ? "10" : "10");  // 10 = 0b1010
  EXPECT_FALSE(v.bit(0));
  EXPECT_TRUE(v.bit(1));
  EXPECT_FALSE(v.bit(2));
  EXPECT_TRUE(v.bit(3));
  EXPECT_FALSE(v.bit(100));
}

TEST(BigInt, ModNonNegative) {
  EXPECT_EQ(BigInt{-7}.mod(BigInt{3}), BigInt{2});
  EXPECT_EQ(BigInt{7}.mod(BigInt{3}), BigInt{1});
  EXPECT_EQ(BigInt{-6}.mod(BigInt{3}), BigInt{0});
  EXPECT_THROW(BigInt{1}.mod(BigInt{0}), std::domain_error);
}

TEST(BigInt, ModPowSmallKnownValues) {
  EXPECT_EQ(BigInt{2}.mod_pow(BigInt{10}, BigInt{1000}), BigInt{24});
  EXPECT_EQ(BigInt{3}.mod_pow(BigInt{0}, BigInt{7}), BigInt{1});
  EXPECT_EQ(BigInt{0}.mod_pow(BigInt{5}, BigInt{7}), BigInt{0});
  EXPECT_EQ(BigInt{5}.mod_pow(BigInt{3}, BigInt{1}), BigInt{0});
}

TEST(BigInt, ModPowFermat) {
  // a^(p-1) == 1 mod p for prime p, gcd(a,p)=1.
  const BigInt p = bi("1000000007");
  for (std::int64_t a : {2, 3, 65537, 999999999}) {
    EXPECT_EQ(BigInt{a}.mod_pow(p - BigInt{1}, p), BigInt{1});
  }
}

TEST(BigInt, ModPowEvenModulus) {
  EXPECT_EQ(BigInt{3}.mod_pow(BigInt{4}, BigInt{100}), BigInt{81});
  EXPECT_EQ(BigInt{7}.mod_pow(BigInt{5}, BigInt{16}), BigInt{7});
}

TEST(BigInt, ModInverse) {
  const BigInt m = bi("1000000007");
  Rng rng(55);
  for (int i = 0; i < 50; ++i) {
    const BigInt a = BigInt{1} + BigInt::random_below(rng, m - BigInt{1});
    const BigInt inv = a.mod_inverse(m);
    EXPECT_EQ((a * inv).mod(m), BigInt{1});
  }
}

TEST(BigInt, ModInverseNotInvertibleThrows) {
  EXPECT_THROW(BigInt{6}.mod_inverse(BigInt{9}), std::domain_error);
  EXPECT_THROW(BigInt{0}.mod_inverse(BigInt{7}), std::domain_error);
}

TEST(BigInt, Gcd) {
  EXPECT_EQ(BigInt::gcd(BigInt{12}, BigInt{18}), BigInt{6});
  EXPECT_EQ(BigInt::gcd(BigInt{-12}, BigInt{18}), BigInt{6});
  EXPECT_EQ(BigInt::gcd(BigInt{0}, BigInt{5}), BigInt{5});
  EXPECT_EQ(BigInt::gcd(bi("123456789012345678901234567890"), BigInt{0}),
            bi("123456789012345678901234567890"));
}

TEST(BigInt, BytesRoundTrip) {
  const BigInt v = bi("0xdeadbeefcafebabe0123456789");
  EXPECT_EQ(BigInt::from_bytes(v.to_bytes()), v);
  EXPECT_TRUE(BigInt{0}.to_bytes().empty());
  EXPECT_EQ(BigInt::from_bytes(Bytes{}), BigInt{0});
}

TEST(BigInt, BytesPadded) {
  const Bytes b = BigInt{258}.to_bytes_padded(4);
  EXPECT_EQ(b, (Bytes{0, 0, 1, 2}));
  EXPECT_THROW(bi("100000000000").to_bytes_padded(2), std::logic_error);
  EXPECT_THROW(BigInt{-1}.to_bytes(), std::logic_error);
}

TEST(BigInt, BytesLeadingZerosStripped) {
  const Bytes raw{0, 0, 1, 2};
  EXPECT_EQ(BigInt::from_bytes(raw).to_bytes(), (Bytes{1, 2}));
}

TEST(BigInt, ToU64) {
  EXPECT_EQ(BigInt{0}.to_u64(), 0u);
  EXPECT_EQ(bi("18446744073709551615").to_u64(), UINT64_MAX);
  EXPECT_THROW((void)bi("18446744073709551616").to_u64(), std::overflow_error);
  EXPECT_THROW((void)BigInt{-1}.to_u64(), std::overflow_error);
}

TEST(BigInt, SerdeRoundTrip) {
  for (const char* s : {"0", "-12345678901234567890", "0xffffffffffffffff"}) {
    Writer w;
    bi(s).write(w);
    Reader r(w.data());
    EXPECT_EQ(BigInt::read(r), bi(s));
    r.expect_end();
  }
}

TEST(BigInt, RandomBelowInRange) {
  Rng rng(77);
  const BigInt bound = bi("1000000000000000000000");
  for (int i = 0; i < 100; ++i) {
    const BigInt v = BigInt::random_below(rng, bound);
    EXPECT_GE(v, BigInt{0});
    EXPECT_LT(v, bound);
  }
}

TEST(BigInt, RandomBitsExactWidth) {
  Rng rng(88);
  for (int bits : {1, 8, 9, 31, 32, 33, 160, 512}) {
    for (int i = 0; i < 10; ++i) {
      EXPECT_EQ(BigInt::random_bits(rng, bits).bit_length(), bits);
    }
  }
}

TEST(BigInt, ArithmeticIdentitiesRandomized) {
  Rng rng(99);
  for (int i = 0; i < 100; ++i) {
    const BigInt a = BigInt::random_bits(rng, 1 + static_cast<int>(rng.uniform(256)));
    const BigInt b = BigInt::random_bits(rng, 1 + static_cast<int>(rng.uniform(256)));
    EXPECT_EQ(a + b - b, a);
    EXPECT_EQ((a * b) / b, a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) * (a - b), a * a - b * b);
  }
}

}  // namespace
}  // namespace sintra::bignum
