#include "bignum/montgomery.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace sintra::bignum {
namespace {

BigInt bi(std::string_view s) { return BigInt::from_string(s); }

// Reference square-and-multiply that does not use Montgomery.
BigInt naive_pow(const BigInt& base, const BigInt& exp, const BigInt& m) {
  BigInt result{1};
  BigInt b = base.mod(m);
  for (int i = exp.bit_length() - 1; i >= 0; --i) {
    result = (result * result).mod(m);
    if (exp.bit(i)) result = (result * b).mod(m);
  }
  return result;
}

TEST(Montgomery, RejectsEvenModulus) {
  EXPECT_THROW(Montgomery(BigInt{10}), std::domain_error);
  EXPECT_THROW(Montgomery(BigInt{1}), std::domain_error);
}

TEST(Montgomery, MulMatchesPlainArithmetic) {
  const BigInt m = bi("1000000007");
  Montgomery mont(m);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const BigInt a = BigInt::random_below(rng, m);
    const BigInt b = BigInt::random_below(rng, m);
    EXPECT_EQ(mont.mul(a, b), (a * b).mod(m));
  }
}

TEST(Montgomery, PowMatchesNaiveSmall) {
  const BigInt m = bi("1000003");
  Montgomery mont(m);
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const BigInt a = BigInt::random_below(rng, m);
    const BigInt e = BigInt::random_below(rng, bi("100000"));
    EXPECT_EQ(mont.pow(a, e), naive_pow(a, e, m));
  }
}

TEST(Montgomery, PowMatchesNaiveMultiLimb) {
  // 521-bit Mersenne prime 2^521 - 1 — odd, many limbs.
  const BigInt m = (BigInt{1} << 521) - BigInt{1};
  Montgomery mont(m);
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    const BigInt a = BigInt::random_below(rng, m);
    const BigInt e = BigInt::random_bits(rng, 64);
    EXPECT_EQ(mont.pow(a, e), naive_pow(a, e, m));
  }
}

TEST(Montgomery, PowEdgeCases) {
  const BigInt m = bi("1000000007");
  Montgomery mont(m);
  EXPECT_EQ(mont.pow(BigInt{5}, BigInt{0}), BigInt{1});
  EXPECT_EQ(mont.pow(BigInt{0}, BigInt{5}), BigInt{0});
  EXPECT_EQ(mont.pow(BigInt{1}, bi("123456789123456789")), BigInt{1});
  EXPECT_EQ(mont.pow(m - BigInt{1}, BigInt{2}), BigInt{1});  // (-1)^2
}

TEST(Montgomery, FermatLargePrime) {
  // 2^607-1 is a Mersenne prime.
  const BigInt p = (BigInt{1} << 607) - BigInt{1};
  Montgomery mont(p);
  Rng rng(4);
  const BigInt a = BigInt{2} + BigInt::random_below(rng, p - BigInt{3});
  EXPECT_EQ(mont.pow(a, p - BigInt{1}), BigInt{1});
}

TEST(Montgomery, ExponentWithZeroWindows) {
  // Exponent with long runs of zero bits exercises the windowed loop.
  const BigInt m = bi("0xffffffffffffffffffffffffffffff61");
  Montgomery mont(m);
  const BigInt e = (BigInt{1} << 120) + BigInt{1};
  EXPECT_EQ(mont.pow(BigInt{3}, e), naive_pow(BigInt{3}, e, m));
}

TEST(Montgomery, MulPowConsistency) {
  const BigInt m = (BigInt{1} << 127) - BigInt{1};
  Montgomery mont(m);
  Rng rng(5);
  const BigInt a = BigInt::random_below(rng, m);
  // a^2 via pow == a*a via mul
  EXPECT_EQ(mont.pow(a, BigInt{2}), mont.mul(a, a));
  // a^(e1+e2) == a^e1 * a^e2
  const BigInt e1 = BigInt::random_bits(rng, 50);
  const BigInt e2 = BigInt::random_bits(rng, 50);
  EXPECT_EQ(mont.pow(a, e1 + e2), mont.mul(mont.pow(a, e1), mont.pow(a, e2)));
}

}  // namespace
}  // namespace sintra::bignum
