#include "core/broadcast/reliable_broadcast.hpp"

#include <gtest/gtest.h>

#include "sim_fixture.hpp"

namespace sintra::core {
namespace {

using testing::Cluster;

std::vector<std::unique_ptr<ReliableBroadcast>> make_rbc(Cluster& c,
                                                         int sender,
                                                         const std::string& basepid = "rbc") {
  return c.make_protocols<ReliableBroadcast>(
      [&](Environment& env, Dispatcher& disp, int) {
        return std::make_unique<ReliableBroadcast>(env, disp, basepid, sender);
      });
}

bool all_delivered(const std::vector<std::unique_ptr<ReliableBroadcast>>& ps,
                   const Bytes& expect,
                   const std::set<int>& skip = {}) {
  for (std::size_t i = 0; i < ps.size(); ++i) {
    if (skip.contains(static_cast<int>(i))) continue;
    if (!ps[i]->delivered() || *ps[i]->delivered() != expect) return false;
  }
  return true;
}

TEST(ReliableBroadcast, AllHonestDeliverSenderPayload) {
  Cluster c;
  auto ps = make_rbc(c, 0);
  const Bytes payload = to_bytes("state update #1");
  c.sim.at(0.0, 0, [&] { ps[0]->send(payload); });
  ASSERT_TRUE(c.sim.run_until(
      [&] { return all_delivered(ps, payload); }, 10000));
}

TEST(ReliableBroadcast, WorksForEverySenderIndex) {
  Cluster c;
  for (int s = 0; s < 4; ++s) {
    auto ps = make_rbc(c, s, "rbc.sender" + std::to_string(s));
    const Bytes payload = to_bytes("from " + std::to_string(s));
    c.sim.at(c.sim.now_ms(), s, [&, s] { ps[static_cast<std::size_t>(s)]->send(payload); });
    ASSERT_TRUE(c.sim.run_until(
        [&] { return all_delivered(ps, payload); }, c.sim.now_ms() + 10000))
        << s;
  }
}

TEST(ReliableBroadcast, EmptyAndLargePayloads) {
  Cluster c;
  auto small = make_rbc(c, 1, "rbc.small");
  auto large = make_rbc(c, 2, "rbc.large");
  const Bytes empty;
  Bytes big(20000);
  for (std::size_t i = 0; i < big.size(); ++i)
    big[i] = static_cast<std::uint8_t>(i);
  c.sim.at(0.0, 1, [&] { small[1]->send(empty); });
  c.sim.at(0.0, 2, [&] { large[2]->send(big); });
  ASSERT_TRUE(c.sim.run_until(
      [&] {
        return all_delivered(small, empty) && all_delivered(large, big);
      },
      10000));
}

TEST(ReliableBroadcast, NonSenderCannotSend) {
  Cluster c;
  auto ps = make_rbc(c, 0);
  EXPECT_THROW(ps[1]->send(to_bytes("x")), std::logic_error);
}

TEST(ReliableBroadcast, DoubleSendRejected) {
  Cluster c;
  auto ps = make_rbc(c, 0);
  c.sim.at(0.0, 0, [&] {
    ps[0]->send(to_bytes("a"));
    EXPECT_THROW(ps[0]->send(to_bytes("b")), std::logic_error);
  });
  c.sim.run();
}

TEST(ReliableBroadcast, ToleratesOneCrashedReceiver) {
  Cluster c;
  auto ps = make_rbc(c, 0);
  c.sim.node(3).crash();
  const Bytes payload = to_bytes("survives crash");
  c.sim.at(0.0, 0, [&] { ps[0]->send(payload); });
  ASSERT_TRUE(c.sim.run_until(
      [&] { return all_delivered(ps, payload, {3}); }, 10000));
}

TEST(ReliableBroadcast, CrashedSenderDeliversNothing) {
  Cluster c;
  auto ps = make_rbc(c, 0);
  c.sim.node(0).crash();
  c.sim.run(5000);
  for (const auto& p : ps) EXPECT_FALSE(p->delivered().has_value());
}

TEST(ReliableBroadcast, AgreementUnderEquivocatingSender) {
  // Byzantine sender sends payload A to parties {1,2} and B to {3}.
  // Agreement: the honest parties must never deliver different payloads.
  Cluster c;
  auto ps = make_rbc(c, 0);
  sim::Adversary adv(c.sim, c.deal);
  adv.corrupt(0);
  const std::string pid = ps[1]->pid();

  Writer wa;
  wa.u8(0);  // SEND
  wa.raw(to_bytes("payload-A"));
  Writer wb;
  wb.u8(0);
  wb.raw(to_bytes("payload-B"));
  adv.send_as(0, 1, pid, wa.data(), 0.0);
  adv.send_as(0, 2, pid, wa.data(), 0.0);
  adv.send_as(0, 3, pid, wb.data(), 0.0);
  c.sim.run(20000);

  std::set<std::string> delivered;
  for (int i = 1; i < 4; ++i) {
    if (ps[static_cast<std::size_t>(i)]->delivered()) {
      delivered.insert(to_string(*ps[static_cast<std::size_t>(i)]->delivered()));
    }
  }
  EXPECT_LE(delivered.size(), 1u);
}

TEST(ReliableBroadcast, TotalityWithEquivocatingSenderAndUnanimousMajority) {
  // n=4, t=1: if the Byzantine sender gives the same payload to all three
  // honest parties, they must all deliver it.
  Cluster c;
  auto ps = make_rbc(c, 3);
  sim::Adversary adv(c.sim, c.deal);
  adv.corrupt(3);
  const std::string pid = ps[0]->pid();
  Writer w;
  w.u8(0);
  w.raw(to_bytes("common"));
  for (int i = 0; i < 3; ++i) adv.send_as(3, i, pid, w.data(), 0.0);
  ASSERT_TRUE(c.sim.run_until(
      [&] { return all_delivered(ps, to_bytes("common"), {3}); }, 20000));
}

TEST(ReliableBroadcast, ForgedEchoesCannotForceDelivery) {
  // A single corrupted party (t=1) echoes/readies a payload the sender
  // never sent; quorums of ceil((n+t+1)/2)=3 echoes resp. 2t+1=3 readies
  // cannot be met with one voter, so nothing may be delivered.
  Cluster c;
  auto ps = make_rbc(c, 0);
  sim::Adversary adv(c.sim, c.deal);
  adv.corrupt(2);
  const std::string pid = ps[0]->pid();
  Writer echo;
  echo.u8(1);
  echo.raw(to_bytes("phantom"));
  Writer ready;
  ready.u8(2);
  ready.raw(to_bytes("phantom"));
  for (int rep = 0; rep < 5; ++rep) {  // duplicates must not inflate counts
    adv.send_as_all(2, pid, echo.data(), rep * 1.0);
    adv.send_as_all(2, pid, ready.data(), rep * 1.0);
  }
  c.sim.run(20000);
  for (int i = 0; i < 4; ++i) {
    if (i == 2) continue;
    EXPECT_FALSE(ps[static_cast<std::size_t>(i)]->delivered().has_value()) << i;
  }
}

TEST(ReliableBroadcast, MalformedMessagesIgnored) {
  Cluster c;
  auto ps = make_rbc(c, 0);
  sim::Adversary adv(c.sim, c.deal);
  adv.corrupt(1);
  adv.send_as_all(1, ps[0]->pid(), Bytes{}, 0.0);
  adv.send_as_all(1, ps[0]->pid(), Bytes{0xff, 0x00}, 0.0);
  const Bytes payload = to_bytes("still works");
  c.sim.at(1.0, 0, [&] { ps[0]->send(payload); });
  ASSERT_TRUE(c.sim.run_until(
      [&] { return all_delivered(ps, payload, {1}); }, 20000));
}

TEST(ReliableBroadcast, DeliverCallbackFiresOnce) {
  Cluster c;
  auto ps = make_rbc(c, 0);
  int fires = 0;
  ps[1]->set_deliver_callback([&](const Bytes&) { ++fires; });
  c.sim.at(0.0, 0, [&] { ps[0]->send(to_bytes("x")); });
  c.sim.run(10000);
  EXPECT_EQ(fires, 1);
}

TEST(ReliableBroadcast, LargerGroupN7T2) {
  Cluster c(7, 2);
  auto ps = make_rbc(c, 4);
  const Bytes payload = to_bytes("n=7");
  c.sim.at(0.0, 4, [&] { ps[4]->send(payload); });
  ASSERT_TRUE(c.sim.run_until(
      [&] { return all_delivered(ps, payload); }, 20000));
}

TEST(ReliableBroadcast, ToleratesTwoCrashesInN7) {
  Cluster c(7, 2);
  auto ps = make_rbc(c, 0);
  c.sim.node(5).crash();
  c.sim.node(6).crash();
  const Bytes payload = to_bytes("two crashes");
  c.sim.at(0.0, 0, [&] { ps[0]->send(payload); });
  ASSERT_TRUE(c.sim.run_until(
      [&] { return all_delivered(ps, payload, {5, 6}); }, 20000));
}

}  // namespace
}  // namespace sintra::core
