// Channel lifecycle edges: idle-wake behaviour, long gaps between sends,
// sliding-window receive-buffer overflow recovery, and concurrent sends
// through the blocking facade.
#include <gtest/gtest.h>

#include <thread>

#include "core/channel/atomic_channel.hpp"
#include "core/link/sliding_window.hpp"
#include "facade/blocking_api.hpp"
#include "sim_fixture.hpp"

namespace sintra {
namespace {

using core::AtomicChannel;
using testing::Cluster;

TEST(ChannelLifecycle, WakesFromIdleOnNewSend) {
  Cluster c(4, 1, 0x1dfe);
  auto chans = c.make_protocols<AtomicChannel>(
      [&](core::Environment& env, core::Dispatcher& disp, int) {
        return std::make_unique<AtomicChannel>(env, disp, "idle.ac");
      });
  // Burst 1.
  c.sim.at(0.0, 0, [&] { chans[0]->send(to_bytes("burst1")); });
  ASSERT_TRUE(c.sim.run_until(
      [&] { return chans[2]->deliveries().size() >= 1; }, 4e6));
  const double quiet_until = c.sim.now_ms() + 120000.0;  // 2 idle minutes
  // Burst 2 after the long gap — the channel must restart cleanly.
  c.sim.at(quiet_until, 1, [&] { chans[1]->send(to_bytes("burst2")); });
  ASSERT_TRUE(c.sim.run_until(
      [&] {
        return std::all_of(chans.begin(), chans.end(), [](const auto& ch) {
          return ch->deliveries().size() >= 2;
        });
      },
      quiet_until + 4e6));
  for (const auto& ch : chans) {
    EXPECT_EQ(to_string(ch->deliveries()[0].payload), "burst1");
    EXPECT_EQ(to_string(ch->deliveries()[1].payload), "burst2");
  }
}

TEST(ChannelLifecycle, IdleChannelSendsNothing) {
  Cluster c(4, 1, 0x1dff);
  auto chans = c.make_protocols<AtomicChannel>(
      [&](core::Environment& env, core::Dispatcher& disp, int) {
        return std::make_unique<AtomicChannel>(env, disp, "idle.silent");
      });
  const auto before = c.sim.messages_sent();
  c.sim.run(60000);
  EXPECT_EQ(c.sim.messages_sent(), before)
      << "an idle atomic channel must be network-silent";
}

TEST(ChannelLifecycle, SlidingWindowReceiverBufferOverflowRecovers) {
  // Deliver frames far beyond the receive buffer: they are dropped, but
  // retransmission eventually fills the gap and everything arrives.
  core::SlidingWindowLink::Options opts;
  opts.window = 64;
  opts.max_receive_buffer = 8;

  struct Chan final : core::DatagramChannel {
    std::vector<Bytes> sent;
    std::vector<std::pair<double, std::function<void()>>> timers;
    void send_datagram(Bytes d) override { sent.push_back(std::move(d)); }
    void call_later(double ms, std::function<void()> fn) override {
      timers.emplace_back(ms, std::move(fn));
    }
  };
  Chan ca, cb;
  core::SlidingWindowLink a(ca, 0, 1, to_bytes("0123456789abcdef"), opts);
  core::SlidingWindowLink b(cb, 1, 0, to_bytes("0123456789abcdef"), opts);
  std::vector<std::string> got;
  b.set_deliver_callback([&](Bytes m) { got.push_back(to_string(m)); });

  for (int i = 0; i < 30; ++i) a.send(to_bytes("m" + std::to_string(i)));
  // Deliver sender's frames in REVERSE: the high sequence numbers exceed
  // expected+8 and are dropped.
  auto frames = std::move(ca.sent);
  ca.sent.clear();
  std::reverse(frames.begin(), frames.end());
  for (const auto& f : frames) b.on_datagram(f);
  EXPECT_LT(got.size(), 30u);

  // Retransmission rounds heal everything.
  for (int round = 0; round < 30 && got.size() < 30; ++round) {
    auto timers = std::move(ca.timers);
    ca.timers.clear();
    for (auto& [ms, fn] : timers) fn();
    auto data = std::move(ca.sent);
    ca.sent.clear();
    for (const auto& f : data) b.on_datagram(f);
    auto acks = std::move(cb.sent);
    cb.sent.clear();
    for (const auto& f : acks) a.on_datagram(f);
  }
  ASSERT_EQ(got.size(), 30u);
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)], "m" + std::to_string(i));
  }
}

TEST(ChannelLifecycle, ConcurrentSendsThroughFacade) {
  const auto deal = testing::cached_deal(4, 1);
  facade::LocalGroup group(deal);
  std::vector<std::unique_ptr<facade::BlockingAtomicChannel>> chans;
  for (int i = 0; i < 4; ++i) {
    chans.push_back(std::make_unique<facade::BlockingAtomicChannel>(
        group, i, "conc.ac"));
  }
  // 3 application threads hammer different replicas concurrently.
  std::vector<std::thread> threads;
  for (int s = 0; s < 3; ++s) {
    threads.emplace_back([&, s] {
      for (int m = 0; m < 4; ++m) {
        chans[static_cast<std::size_t>(s)]->send(
            to_bytes("c" + std::to_string(s) + "." + std::to_string(m)));
      }
    });
  }
  for (auto& th : threads) th.join();

  std::vector<std::vector<std::string>> streams(4);
  for (int i = 0; i < 4; ++i) {
    for (int m = 0; m < 12; ++m) {
      auto payload = chans[static_cast<std::size_t>(i)]->receive_for(
          std::chrono::seconds(60));
      ASSERT_TRUE(payload.has_value()) << i << "," << m;
      streams[static_cast<std::size_t>(i)].push_back(to_string(*payload));
    }
  }
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(streams[static_cast<std::size_t>(i)], streams[0]);
  }
}

}  // namespace
}  // namespace sintra
