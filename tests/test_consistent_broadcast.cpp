#include "core/broadcast/consistent_broadcast.hpp"

#include <gtest/gtest.h>

#include "sim_fixture.hpp"

namespace sintra::core {
namespace {

using testing::Cluster;

std::vector<std::unique_ptr<VerifiableConsistentBroadcast>> make_cb(
    Cluster& c, int sender, const std::string& basepid = "cb") {
  return c.make_protocols<VerifiableConsistentBroadcast>(
      [&](Environment& env, Dispatcher& disp, int) {
        return std::make_unique<VerifiableConsistentBroadcast>(env, disp,
                                                               basepid, sender);
      });
}

template <typename P>
bool all_delivered(const std::vector<std::unique_ptr<P>>& ps,
                   const Bytes& expect, const std::set<int>& skip = {}) {
  for (std::size_t i = 0; i < ps.size(); ++i) {
    if (skip.contains(static_cast<int>(i))) continue;
    if (!ps[i]->delivered() || *ps[i]->delivered() != expect) return false;
  }
  return true;
}

TEST(ConsistentBroadcast, AllHonestDeliver) {
  Cluster c;
  auto ps = make_cb(c, 0);
  const Bytes payload = to_bytes("echo broadcast payload");
  c.sim.at(0.0, 0, [&] { ps[0]->send(payload); });
  ASSERT_TRUE(c.sim.run_until(
      [&] { return all_delivered(ps, payload); }, 30000));
}

TEST(ConsistentBroadcast, WorksWithThresholdRsaSignatures) {
  // Same protocol, proper Shoup threshold signatures instead of
  // multi-signatures (paper §2.1 drop-in).
  Cluster c(4, 1, 1, 2.0, 0.25, crypto::SigImpl::kThresholdRsa);
  auto ps = make_cb(c, 2);
  const Bytes payload = to_bytes("threshold-RSA run");
  c.sim.at(0.0, 2, [&] { ps[2]->send(payload); });
  ASSERT_TRUE(c.sim.run_until(
      [&] { return all_delivered(ps, payload); }, 60000));
}

TEST(ConsistentBroadcast, ToleratesCrashedReceiver) {
  Cluster c;
  auto ps = make_cb(c, 0);
  c.sim.node(2).crash();
  const Bytes payload = to_bytes("crash-tolerant");
  c.sim.at(0.0, 0, [&] { ps[0]->send(payload); });
  ASSERT_TRUE(c.sim.run_until(
      [&] { return all_delivered(ps, payload, {2}); }, 30000));
}

TEST(ConsistentBroadcast, NonSenderCannotSend) {
  Cluster c;
  auto ps = make_cb(c, 0);
  EXPECT_THROW(ps[2]->send(to_bytes("x")), std::logic_error);
}

TEST(ConsistentBroadcast, ConsistencyUnderEquivocatingSender) {
  // The Byzantine sender runs the protocol twice in parallel with two
  // payloads, hoping different honest parties deliver different values.
  // Because each honest party signs at most one echo share, at most one
  // payload can gather the ceil((n+t+1)/2)=3 quorum.
  Cluster c;
  auto ps = make_cb(c, 0);
  sim::Adversary adv(c.sim, c.deal);
  adv.corrupt(0);
  const std::string pid = ps[1]->pid();
  Writer wa;
  wa.u8(0);
  wa.raw(to_bytes("A"));
  Writer wb;
  wb.u8(0);
  wb.raw(to_bytes("B"));
  // Send A to 1, B to 2 and 3.
  adv.send_as(0, 1, pid, wa.data(), 0.0);
  adv.send_as(0, 2, pid, wb.data(), 0.0);
  adv.send_as(0, 3, pid, wb.data(), 0.0);
  c.sim.run(5000);

  // The adversary now holds at most: 1 share for A, 2 shares for B, plus
  // its own share for each => max 2 for A, 3 for B. It could therefore
  // close B but not A. Whatever it does, honest deliveries must agree.
  const crypto::PartyKeys& k0 = adv.keys_of(0);
  const Bytes stA = [] {
    return Bytes{};
  }();
  (void)stA;
  (void)k0;
  std::set<std::string> seen;
  for (int i = 1; i < 4; ++i) {
    if (ps[static_cast<std::size_t>(i)]->delivered()) {
      seen.insert(to_string(*ps[static_cast<std::size_t>(i)]->delivered()));
    }
  }
  EXPECT_LE(seen.size(), 1u);
}

TEST(ConsistentBroadcast, ForgedFinalRejected) {
  Cluster c;
  auto ps = make_cb(c, 0);
  sim::Adversary adv(c.sim, c.deal);
  adv.corrupt(3);
  // Party 3 forges a FINAL with a garbage "signature".
  Writer w;
  w.u8(2);  // kFinal
  w.bytes(to_bytes("forged payload"));
  w.bytes(Bytes(64, 0xaa));
  adv.send_as_all(3, ps[0]->pid(), w.data(), 0.0);
  c.sim.run(5000);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(ps[static_cast<std::size_t>(i)]->delivered().has_value()) << i;
  }
}

TEST(ConsistentBroadcast, BadEchoSharesDoNotBlockQuorum) {
  // A corrupted party sends an invalid share; the sender must still close
  // with the three honest shares (incl. its own).
  Cluster c;
  auto ps = make_cb(c, 0);
  sim::Adversary adv(c.sim, c.deal);
  adv.corrupt(2);
  Writer bad;
  bad.u8(1);  // kEchoShare
  bad.bytes(Bytes(40, 0x13));
  adv.send_as(2, 0, ps[0]->pid(), bad.data(), 1.0);
  const Bytes payload = to_bytes("resilient");
  c.sim.at(0.0, 0, [&] { ps[0]->send(payload); });
  ASSERT_TRUE(c.sim.run_until(
      [&] { return all_delivered(ps, payload, {2}); }, 30000));
}

TEST(ConsistentBroadcast, ClosingMessageTransfersDelivery) {
  Cluster c;
  auto ps = make_cb(c, 0);
  // Cut party 3 off from everyone (drop all its inbound traffic).
  c.sim.delay_hook = [](int, int to, double) {
    return to == 3 ? 1e12 : 0.0;
  };
  const Bytes payload = to_bytes("verifiable");
  c.sim.at(0.0, 0, [&] { ps[0]->send(payload); });
  ASSERT_TRUE(c.sim.run_until(
      [&] { return all_delivered(ps, payload, {3}); }, 30000));
  EXPECT_FALSE(ps[3]->delivered().has_value());

  // Party 1 extracts the closing message and hands it to 3 out-of-band.
  ASSERT_TRUE(ps[1]->get_closing().has_value());
  const Bytes closing = *ps[1]->get_closing();
  EXPECT_TRUE(VerifiableConsistentBroadcast::is_valid_closing(
      c.deal.parties[3], ps[3]->pid(), closing));
  EXPECT_EQ(VerifiableConsistentBroadcast::payload_from_closing(closing),
            payload);
  ps[3]->deliver_closing(closing);
  ASSERT_TRUE(ps[3]->delivered().has_value());
  EXPECT_EQ(*ps[3]->delivered(), payload);
}

TEST(ConsistentBroadcast, InvalidClosingIgnored) {
  Cluster c;
  auto ps = make_cb(c, 0);
  Writer w;
  w.bytes(to_bytes("fake payload"));
  w.bytes(Bytes(64, 0x77));
  ps[1]->deliver_closing(w.data());
  EXPECT_FALSE(ps[1]->delivered().has_value());
  ps[1]->deliver_closing(Bytes{});
  EXPECT_FALSE(ps[1]->delivered().has_value());
  EXPECT_FALSE(VerifiableConsistentBroadcast::is_valid_closing(
      c.deal.parties[1], ps[1]->pid(), w.data()));
}

TEST(ConsistentBroadcast, ClosingBoundToInstance) {
  // A closing for instance "cb.x" must not close instance "cb.y".
  Cluster c;
  auto x = make_cb(c, 0, "cb.x");
  auto y = make_cb(c, 0, "cb.y");
  const Bytes payload = to_bytes("pid binding");
  c.sim.at(0.0, 0, [&] { x[0]->send(payload); });
  ASSERT_TRUE(c.sim.run_until(
      [&] { return all_delivered(x, payload); }, 30000));
  const Bytes closing = *x[1]->get_closing();
  y[1]->deliver_closing(closing);
  EXPECT_FALSE(y[1]->delivered().has_value());
}

TEST(ConsistentBroadcast, LargerGroup) {
  Cluster c(7, 2);
  auto ps = make_cb(c, 6);
  const Bytes payload = to_bytes("n=7 echo");
  c.sim.at(0.0, 6, [&] { ps[6]->send(payload); });
  ASSERT_TRUE(c.sim.run_until(
      [&] { return all_delivered(ps, payload); }, 30000));
}

}  // namespace
}  // namespace sintra::core
