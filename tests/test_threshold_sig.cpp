// Tests for both implementations of the ThresholdSigScheme interface:
// Shoup RSA threshold signatures and multi-signatures.  The parameterized
// suite runs every behavioural test against both, which is exactly the
// drop-in property the paper relies on (§2.1).
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "crypto/dealer.hpp"
#include "crypto/multi_sig.hpp"
#include "crypto/threshold_sig.hpp"

namespace sintra::crypto {
namespace {

struct SchemeFixture {
  std::vector<std::shared_ptr<ThresholdSigScheme>> parties;
  int n;
  int k;
};

SchemeFixture make_shoup(int n, int k) {
  static std::map<std::pair<int, int>, RsaThresholdDeal> cache;
  auto it = cache.find({n, k});
  if (it == cache.end()) {
    Rng rng(0x515);
    it = cache.emplace(std::pair{n, k}, deal_rsa_threshold(rng, n, k, 512))
             .first;
  }
  SchemeFixture fx;
  fx.n = n;
  fx.k = k;
  for (int i = 0; i < n; ++i) fx.parties.push_back(it->second.make_party(i));
  return fx;
}

SchemeFixture make_multi(int n, int k) {
  static std::map<int, std::vector<RsaKeyPair>> keycache;
  auto it = keycache.find(n);
  if (it == keycache.end()) {
    std::vector<RsaKeyPair> keys;
    for (int i = 0; i < n; ++i) {
      Rng rng(0x600d + static_cast<std::uint64_t>(i));
      keys.push_back(rsa_generate(rng, 512));
    }
    it = keycache.emplace(n, std::move(keys)).first;
  }
  std::vector<RsaPublicKey> pubs;
  for (const auto& kp : it->second) pubs.push_back(kp.pub);
  auto pub = std::make_shared<const MultiSigPublic>(
      MultiSigPublic{n, k, pubs, HashKind::kSha256});
  SchemeFixture fx;
  fx.n = n;
  fx.k = k;
  for (int i = 0; i < n; ++i) {
    fx.parties.push_back(std::make_shared<MultiSigScheme>(
        pub, i, std::make_shared<const RsaKeyPair>(it->second[static_cast<std::size_t>(i)])));
  }
  return fx;
}

using Maker = std::function<SchemeFixture(int, int)>;

class ThresholdSigBoth : public ::testing::TestWithParam<const char*> {
 protected:
  SchemeFixture make(int n, int k) const {
    return std::string(GetParam()) == "shoup" ? make_shoup(n, k)
                                              : make_multi(n, k);
  }
};

TEST_P(ThresholdSigBoth, KSharesProduceValidSignature) {
  SchemeFixture fx = make(4, 3);
  const Bytes msg = to_bytes("pid.cb.0|echo|payload-hash");
  std::vector<std::pair<int, Bytes>> shares;
  for (int i = 0; i < fx.k; ++i) {
    shares.emplace_back(i, fx.parties[static_cast<std::size_t>(i)]->sign_share(msg));
  }
  const Bytes sig = fx.parties[3]->combine(msg, shares);
  for (const auto& p : fx.parties) EXPECT_TRUE(p->verify(msg, sig));
}

TEST_P(ThresholdSigBoth, AnyKSubsetWorks) {
  SchemeFixture fx = make(7, 5);
  const Bytes msg = to_bytes("message");
  std::vector<std::pair<int, Bytes>> all;
  for (int i = 0; i < fx.n; ++i) {
    all.emplace_back(i, fx.parties[static_cast<std::size_t>(i)]->sign_share(msg));
  }
  // A few different 5-subsets.
  for (const auto& pick : std::vector<std::vector<int>>{
           {0, 1, 2, 3, 4}, {2, 3, 4, 5, 6}, {0, 2, 4, 5, 6}, {6, 4, 3, 1, 0}}) {
    std::vector<std::pair<int, Bytes>> subset;
    for (int i : pick) subset.push_back(all[static_cast<std::size_t>(i)]);
    const Bytes sig = fx.parties[0]->combine(msg, subset);
    EXPECT_TRUE(fx.parties[1]->verify(msg, sig));
  }
}

TEST_P(ThresholdSigBoth, SharesVerify) {
  SchemeFixture fx = make(4, 3);
  const Bytes msg = to_bytes("m");
  for (int i = 0; i < fx.n; ++i) {
    const Bytes share = fx.parties[static_cast<std::size_t>(i)]->sign_share(msg);
    for (int j = 0; j < fx.n; ++j) {
      EXPECT_TRUE(fx.parties[static_cast<std::size_t>(j)]->verify_share(msg, i, share));
    }
  }
}

TEST_P(ThresholdSigBoth, ShareFromWrongSignerRejected) {
  SchemeFixture fx = make(4, 3);
  const Bytes msg = to_bytes("m");
  const Bytes share = fx.parties[0]->sign_share(msg);
  EXPECT_FALSE(fx.parties[1]->verify_share(msg, 1, share));
  EXPECT_FALSE(fx.parties[1]->verify_share(msg, 2, share));
}

TEST_P(ThresholdSigBoth, ShareForWrongMessageRejected) {
  SchemeFixture fx = make(4, 3);
  const Bytes share = fx.parties[0]->sign_share(to_bytes("m1"));
  EXPECT_FALSE(fx.parties[1]->verify_share(to_bytes("m2"), 0, share));
}

TEST_P(ThresholdSigBoth, GarbageSharesRejected) {
  SchemeFixture fx = make(4, 3);
  const Bytes msg = to_bytes("m");
  EXPECT_FALSE(fx.parties[0]->verify_share(msg, 1, Bytes{}));
  EXPECT_FALSE(fx.parties[0]->verify_share(msg, 1, Bytes(40, 0xcc)));
  EXPECT_FALSE(fx.parties[0]->verify_share(msg, -1, Bytes(40, 0xcc)));
  EXPECT_FALSE(fx.parties[0]->verify_share(msg, 99, Bytes(40, 0xcc)));
}

TEST_P(ThresholdSigBoth, TamperedShareRejected) {
  SchemeFixture fx = make(4, 3);
  const Bytes msg = to_bytes("m");
  Bytes share = fx.parties[2]->sign_share(msg);
  share[share.size() / 2] ^= 0x40;
  EXPECT_FALSE(fx.parties[0]->verify_share(msg, 2, share));
}

TEST_P(ThresholdSigBoth, CombineRequiresKShares) {
  SchemeFixture fx = make(4, 3);
  const Bytes msg = to_bytes("m");
  std::vector<std::pair<int, Bytes>> two;
  for (int i = 0; i < 2; ++i) {
    two.emplace_back(i, fx.parties[static_cast<std::size_t>(i)]->sign_share(msg));
  }
  EXPECT_THROW((void)fx.parties[0]->combine(msg, two), std::invalid_argument);
}

TEST_P(ThresholdSigBoth, CombineRejectsDuplicateSigners) {
  SchemeFixture fx = make(4, 3);
  const Bytes msg = to_bytes("m");
  const Bytes s0 = fx.parties[0]->sign_share(msg);
  std::vector<std::pair<int, Bytes>> shares{{0, s0}, {0, s0}, {1, fx.parties[1]->sign_share(msg)}};
  EXPECT_THROW((void)fx.parties[0]->combine(msg, shares),
               std::invalid_argument);
}

TEST_P(ThresholdSigBoth, VerifyRejectsWrongMessage) {
  SchemeFixture fx = make(4, 3);
  const Bytes msg = to_bytes("m");
  std::vector<std::pair<int, Bytes>> shares;
  for (int i = 0; i < 3; ++i) {
    shares.emplace_back(i, fx.parties[static_cast<std::size_t>(i)]->sign_share(msg));
  }
  const Bytes sig = fx.parties[0]->combine(msg, shares);
  EXPECT_FALSE(fx.parties[0]->verify(to_bytes("other"), sig));
}

TEST_P(ThresholdSigBoth, VerifyRejectsGarbage) {
  SchemeFixture fx = make(4, 3);
  EXPECT_FALSE(fx.parties[0]->verify(to_bytes("m"), Bytes{}));
  EXPECT_FALSE(fx.parties[0]->verify(to_bytes("m"), Bytes(64, 0xee)));
}

TEST_P(ThresholdSigBoth, MinimalGroup) {
  // n=1, k=1 degenerates to an ordinary signature.
  SchemeFixture fx = make(1, 1);
  const Bytes msg = to_bytes("solo");
  std::vector<std::pair<int, Bytes>> shares{{0, fx.parties[0]->sign_share(msg)}};
  EXPECT_TRUE(fx.parties[0]->verify(msg, fx.parties[0]->combine(msg, shares)));
}

INSTANTIATE_TEST_SUITE_P(Schemes, ThresholdSigBoth,
                         ::testing::Values("shoup", "multi"),
                         [](const auto& info) { return info.param; });

// --- Shoup-specific behaviours ---

TEST(RsaThreshold, ExtraSharesBeyondKIgnored) {
  SchemeFixture fx = make_shoup(4, 3);
  const Bytes msg = to_bytes("m");
  std::vector<std::pair<int, Bytes>> shares;
  for (int i = 0; i < 4; ++i) {
    shares.emplace_back(i, fx.parties[static_cast<std::size_t>(i)]->sign_share(msg));
  }
  const Bytes sig = fx.parties[0]->combine(msg, shares);
  EXPECT_TRUE(fx.parties[0]->verify(msg, sig));
}

TEST(RsaThreshold, SignatureIsStandardRsa) {
  // The assembled signature must verify as a plain RSA-FDH signature under
  // (N, e) — this is what lets verifiers be oblivious to thresholding.
  Rng rng(0x7777);
  const RsaThresholdDeal deal = deal_rsa_threshold(rng, 4, 3, 512);
  auto p0 = deal.make_party(0);
  auto p1 = deal.make_party(1);
  auto p2 = deal.make_party(2);
  const Bytes msg = to_bytes("standard verification");
  std::vector<std::pair<int, Bytes>> shares{{0, p0->sign_share(msg)},
                                            {1, p1->sign_share(msg)},
                                            {2, p2->sign_share(msg)}};
  const Bytes sig = p0->combine(msg, shares);
  const RsaPublicKey pub{deal.pub->modulus, deal.pub->e};
  EXPECT_TRUE(rsa_verify(pub, msg, sig, deal.pub->hash));
}

TEST(RsaThreshold, VerifyOnlyHandleCannotSign) {
  Rng rng(0x8888);
  const RsaThresholdDeal deal = deal_rsa_threshold(rng, 4, 3, 512);
  auto external = deal.make_party(-1);
  EXPECT_THROW((void)external->sign_share(to_bytes("m")), std::logic_error);
  // But it can verify.
  auto p0 = deal.make_party(0);
  const Bytes share = p0->sign_share(to_bytes("m"));
  EXPECT_TRUE(external->verify_share(to_bytes("m"), 0, share));
}

TEST(RsaThreshold, RejectsBadParameters) {
  Rng rng(1);
  EXPECT_THROW((void)deal_rsa_threshold(rng, 4, 5, 256), std::invalid_argument);
  EXPECT_THROW((void)deal_rsa_threshold(rng, 0, 0, 256), std::invalid_argument);
}

}  // namespace
}  // namespace sintra::crypto
