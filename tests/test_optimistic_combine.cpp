// Adversarial tests for the combine-first fast paths (crypto/
// threshold_sig.hpp, coin.hpp, tdh2.hpp): a Byzantine share must trigger
// the per-share fallback and local blacklisting, the combine must still
// succeed from k honest shares, blacklisted signers' later shares are
// ignored, and the simulator (inline pool) stays deterministic.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "core/agreement/binary_agreement.hpp"
#include "crypto/coin.hpp"
#include "crypto/dealer.hpp"
#include "crypto/multi_sig.hpp"
#include "crypto/tdh2.hpp"
#include "crypto/threshold_sig.hpp"
#include "obs/metrics.hpp"
#include "sim_fixture.hpp"

namespace sintra::crypto {
namespace {

std::uint64_t op_counter(const char* name, const char* op) {
  return obs::registry().counter(name, {{"op", op}}).value();
}

// --- threshold signatures (both implementations) ---

struct SigFixture {
  std::vector<std::shared_ptr<ThresholdSigScheme>> parties;
  int n = 0;
  int k = 0;
};

SigFixture make_shoup(int n, int k) {
  static std::map<std::pair<int, int>, RsaThresholdDeal> cache;
  auto it = cache.find({n, k});
  if (it == cache.end()) {
    Rng rng(0x0c515);
    it = cache.emplace(std::pair{n, k}, deal_rsa_threshold(rng, n, k, 512))
             .first;
  }
  SigFixture fx;
  fx.n = n;
  fx.k = k;
  for (int i = 0; i < n; ++i) fx.parties.push_back(it->second.make_party(i));
  return fx;
}

SigFixture make_multi(int n, int k) {
  static std::map<int, std::vector<RsaKeyPair>> keycache;
  auto it = keycache.find(n);
  if (it == keycache.end()) {
    std::vector<RsaKeyPair> keys;
    for (int i = 0; i < n; ++i) {
      Rng rng(0x0c600d + static_cast<std::uint64_t>(i));
      keys.push_back(rsa_generate(rng, 512));
    }
    it = keycache.emplace(n, std::move(keys)).first;
  }
  std::vector<RsaPublicKey> pubs;
  for (const auto& kp : it->second) pubs.push_back(kp.pub);
  auto pub = std::make_shared<const MultiSigPublic>(
      MultiSigPublic{n, k, pubs, HashKind::kSha256});
  SigFixture fx;
  fx.n = n;
  fx.k = k;
  for (int i = 0; i < n; ++i) {
    fx.parties.push_back(std::make_shared<MultiSigScheme>(
        pub, i,
        std::make_shared<const RsaKeyPair>(
            it->second[static_cast<std::size_t>(i)])));
  }
  return fx;
}

class OptimisticSig : public ::testing::TestWithParam<const char*> {
 protected:
  SigFixture make(int n, int k) {
    return std::string(GetParam()) == "shoup" ? make_shoup(n, k)
                                              : make_multi(n, k);
  }
};

INSTANTIATE_TEST_SUITE_P(Impls, OptimisticSig,
                         ::testing::Values("shoup", "multi"));

TEST_P(OptimisticSig, HonestSharesAreAnOptimisticHit) {
  SigFixture fx = make(4, 3);
  const Bytes msg = to_bytes("stmt.honest");
  std::vector<std::pair<int, Bytes>> shares;
  for (int i = 0; i < fx.k; ++i) {
    shares.emplace_back(i, fx.parties[static_cast<std::size_t>(i)]
                               ->sign_share(msg));
  }
  const auto hits0 = op_counter("crypto.optimistic_hits", "threshold_sig");
  const auto falls0 = op_counter("crypto.fallbacks", "threshold_sig");
  const auto out = fx.parties[3]->combine_checked(msg, shares);
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(fx.parties[3]->verify(msg, out->sig));
  EXPECT_EQ(out->used, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(op_counter("crypto.optimistic_hits", "threshold_sig"), hits0 + 1);
  EXPECT_EQ(op_counter("crypto.fallbacks", "threshold_sig"), falls0);
}

TEST_P(OptimisticSig, ByzantineShareFallsBackBlacklistsAndRecovers) {
  SigFixture fx = make(4, 3);
  const Bytes msg = to_bytes("stmt.byz");
  // Party 0 submits a well-formed share for a *different* message:
  // parses fine, poisons the combine.
  std::vector<std::pair<int, Bytes>> shares;
  shares.emplace_back(0, fx.parties[0]->sign_share(to_bytes("stmt.other")));
  for (int i = 1; i < fx.n; ++i) {
    shares.emplace_back(i, fx.parties[static_cast<std::size_t>(i)]
                               ->sign_share(msg));
  }
  const auto falls0 = op_counter("crypto.fallbacks", "threshold_sig");
  const auto& combiner = fx.parties[3];
  const auto out = combiner->combine_checked(msg, shares);
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(combiner->verify(msg, out->sig));
  EXPECT_EQ(out->used, (std::vector<int>{1, 2, 3}));
  EXPECT_GE(op_counter("crypto.fallbacks", "threshold_sig"), falls0 + 1);
  EXPECT_TRUE(combiner->is_blacklisted(0));
  EXPECT_FALSE(combiner->is_blacklisted(1));

  // Blacklisted: even a now-valid share from party 0 is ignored, so with
  // only k-1 other shares the combine must report "not enough".
  std::vector<std::pair<int, Bytes>> retry;
  retry.emplace_back(0, fx.parties[0]->sign_share(msg));  // valid this time
  retry.emplace_back(1, shares[1].second);
  retry.emplace_back(2, shares[2].second);
  EXPECT_FALSE(combiner->combine_checked(msg, retry).has_value());

  // A fresh handle has no blacklist: the same shares combine fine.
  EXPECT_TRUE(fx.parties[2]->combine_checked(msg, retry).has_value());
}

TEST_P(OptimisticSig, FewerThanKSharesIsNotAnError) {
  SigFixture fx = make(4, 3);
  const Bytes msg = to_bytes("stmt.short");
  std::vector<std::pair<int, Bytes>> shares;
  shares.emplace_back(1, fx.parties[1]->sign_share(msg));
  // Duplicates don't help reach the threshold.
  shares.emplace_back(1, fx.parties[1]->sign_share(msg));
  EXPECT_FALSE(fx.parties[0]->combine_checked(msg, shares).has_value());
}

// --- threshold coin ---

struct CoinFixture {
  CoinDeal deal;
  std::vector<std::unique_ptr<ThresholdCoin>> parties;
};

CoinFixture make_coin(int n, int k) {
  Rng rng(0x0c0117);
  static const DlogGroup grp = [] {
    Rng g(0x0c7357);
    return DlogGroup::generate(g, 256, 96);
  }();
  CoinFixture fx;
  fx.deal = deal_coin(rng, n, k, grp);
  for (int i = 0; i < n; ++i) fx.parties.push_back(fx.deal.make_party(i));
  return fx;
}

TEST(OptimisticCoin, HonestSharesAssembleWithoutFallback) {
  CoinFixture fx = make_coin(4, 2);
  const Bytes name = to_bytes("coin.honest");
  std::vector<std::pair<int, Bytes>> shares;
  for (int i = 0; i < 2; ++i) {
    shares.emplace_back(i, fx.parties[static_cast<std::size_t>(i)]
                               ->release(name));
  }
  const auto hits0 = op_counter("crypto.optimistic_hits", "coin");
  const auto falls0 = op_counter("crypto.fallbacks", "coin");
  const auto out = fx.parties[3]->assemble_checked(name, shares, 8);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->value, fx.parties[3]->assemble(name, shares, 8));
  EXPECT_EQ(out->used.size(), 2u);
  EXPECT_EQ(op_counter("crypto.optimistic_hits", "coin"), hits0 + 1);
  EXPECT_EQ(op_counter("crypto.fallbacks", "coin"), falls0);
}

TEST(OptimisticCoin, ByzantineShareFallsBackAndValueIsUnchanged) {
  CoinFixture fx = make_coin(4, 2);
  const Bytes name = to_bytes("coin.byz");
  // Party 0's share is for a different coin: well-formed, wrong proof.
  std::vector<std::pair<int, Bytes>> shares;
  shares.emplace_back(0, fx.parties[0]->release(to_bytes("coin.other")));
  for (int i = 1; i < 4; ++i) {
    shares.emplace_back(i, fx.parties[static_cast<std::size_t>(i)]
                               ->release(name));
  }
  std::vector<std::pair<int, Bytes>> honest(shares.begin() + 1, shares.end());

  const auto falls0 = op_counter("crypto.fallbacks", "coin");
  const auto& assembler = fx.parties[1];
  const auto out = assembler->assemble_bit_checked(name, shares);
  ASSERT_TRUE(out.has_value());
  const Bytes reference = assembler->assemble(name, honest, 1);
  EXPECT_EQ(out->first, (reference[0] & 1) != 0);
  EXPECT_GE(op_counter("crypto.fallbacks", "coin"), falls0 + 1);
  EXPECT_TRUE(assembler->is_blacklisted(0));
  for (const auto& [idx, share] : out->second) EXPECT_NE(idx, 0);

  // Blacklisted: a later valid share from party 0 no longer counts
  // toward the threshold on this handle.
  std::vector<std::pair<int, Bytes>> late;
  late.emplace_back(0, fx.parties[0]->release(name));
  late.emplace_back(2, shares[2].second);
  EXPECT_FALSE(assembler->assemble_bit_checked(name, late).has_value());
}

TEST(OptimisticCoin, VerifySharesBatchAgreesWithScalarVerifier) {
  CoinFixture fx = make_coin(4, 2);
  const Bytes name = to_bytes("coin.batchverify");
  std::vector<std::pair<int, Bytes>> shares;
  shares.emplace_back(0, fx.parties[0]->release(name));
  shares.emplace_back(1, fx.parties[1]->release(to_bytes("coin.wrong")));
  shares.emplace_back(2, fx.parties[2]->release(name));
  shares.emplace_back(3, to_bytes("garbage"));  // unparseable

  const std::vector<bool> flags =
      fx.parties[0]->verify_shares_batch(name, shares);
  ASSERT_EQ(flags.size(), 4u);
  for (std::size_t i = 0; i < shares.size(); ++i) {
    EXPECT_EQ(flags[i], fx.parties[0]->verify_share(name, shares[i].first,
                                                    shares[i].second))
        << i;
  }
  EXPECT_TRUE(flags[0]);
  EXPECT_FALSE(flags[1]);
  EXPECT_TRUE(flags[2]);
  EXPECT_FALSE(flags[3]);
  // verify_shares_batch judges forwarded shares: it must NOT blacklist
  // (a bad share in a justification indicts the forwarder, not the
  // signer it names).
  EXPECT_FALSE(fx.parties[0]->is_blacklisted(1));
  EXPECT_FALSE(fx.parties[0]->is_blacklisted(3));
}

// --- TDH2 ---

struct Tdh2Fixture {
  Tdh2Deal deal;
  std::vector<std::unique_ptr<Tdh2Party>> parties;
};

Tdh2Fixture make_tdh2(int n, int k) {
  Rng rng(0x0c7d42);
  static const DlogGroup grp = [] {
    Rng g(0x0c7d426);
    return DlogGroup::generate(g, 256, 96);
  }();
  Tdh2Fixture fx;
  fx.deal = deal_tdh2(rng, n, k, grp);
  for (int i = 0; i < n; ++i) fx.parties.push_back(fx.deal.make_party(i));
  return fx;
}

TEST(OptimisticTdh2, HonestSharesDecryptWithoutFallback) {
  Tdh2Fixture fx = make_tdh2(4, 2);
  Rng rng(9);
  const Bytes msg = to_bytes("causal payload");
  const Bytes ct = fx.parties[0]->pub().encrypt(msg, to_bytes("label"), rng);
  std::vector<std::pair<int, Bytes>> shares;
  for (int i = 0; i < 2; ++i) {
    auto s = fx.parties[static_cast<std::size_t>(i)]->decrypt_share(ct);
    ASSERT_TRUE(s.has_value());
    shares.emplace_back(i, std::move(*s));
  }
  const auto hits0 = op_counter("crypto.optimistic_hits", "tdh2");
  const auto falls0 = op_counter("crypto.fallbacks", "tdh2");
  const auto out = fx.parties[3]->combine_checked(ct, shares);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, msg);
  EXPECT_EQ(op_counter("crypto.optimistic_hits", "tdh2"), hits0 + 1);
  EXPECT_EQ(op_counter("crypto.fallbacks", "tdh2"), falls0);
}

TEST(OptimisticTdh2, ByzantineShareFallsBackAndPlaintextIsCorrect) {
  Tdh2Fixture fx = make_tdh2(4, 2);
  Rng rng(10);
  const Bytes msg = to_bytes("still recoverable");
  const Bytes ct = fx.parties[0]->pub().encrypt(msg, to_bytes("label"), rng);
  const Bytes decoy =
      fx.parties[0]->pub().encrypt(to_bytes("noise"), to_bytes("label"), rng);

  std::vector<std::pair<int, Bytes>> shares;
  // Party 0's share is for a different ciphertext: parses, fails DLEQ.
  auto bad = fx.parties[0]->decrypt_share(decoy);
  ASSERT_TRUE(bad.has_value());
  shares.emplace_back(0, std::move(*bad));
  for (int i = 1; i < 4; ++i) {
    auto s = fx.parties[static_cast<std::size_t>(i)]->decrypt_share(ct);
    ASSERT_TRUE(s.has_value());
    shares.emplace_back(i, std::move(*s));
  }

  const auto falls0 = op_counter("crypto.fallbacks", "tdh2");
  const auto& combiner = fx.parties[2];
  const auto out = combiner->combine_checked(ct, shares);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, msg);  // fallback recovered the true plaintext
  EXPECT_GE(op_counter("crypto.fallbacks", "tdh2"), falls0 + 1);
  EXPECT_TRUE(combiner->is_blacklisted(0));

  // Only the blacklisted signer plus one honest share: below threshold.
  std::vector<std::pair<int, Bytes>> late;
  auto good0 = fx.parties[0]->decrypt_share(ct);
  ASSERT_TRUE(good0.has_value());
  late.emplace_back(0, std::move(*good0));
  late.emplace_back(1, shares[1].second);
  EXPECT_FALSE(combiner->combine_checked(ct, late).has_value());
}

TEST(OptimisticTdh2, MalformedCiphertextYieldsNulloptNotThrow) {
  Tdh2Fixture fx = make_tdh2(4, 2);
  EXPECT_FALSE(
      fx.parties[0]->combine_checked(to_bytes("not a ciphertext"), {})
          .has_value());
}

}  // namespace
}  // namespace sintra::crypto

// --- simulator determinism (inline pool) ---

namespace sintra::core {
namespace {

std::uint64_t total_counter(const std::string& name) {
  std::uint64_t total = 0;
  for (const auto& c : obs::registry().snapshot().counters) {
    if (c.name == name) total += c.value;
  }
  return total;
}

TEST(OptimisticCombine, SimulatorStaysDeterministicWithInlinePool) {
  // The simulator keeps the default inline pool, so the optimistic paths
  // run synchronously: two runs with the same seed must produce the same
  // decisions, the same rounds, and the same simulated end time.  The
  // simulated end time depends on counted modexp work, which depends on
  // the per-handle batch-verification randomness — so each run must get
  // freshly materialized scheme handles, exactly as a freshly started
  // process would (the cached deal's shared handles would otherwise leak
  // rng state from run 1 into run 2).
  auto run = [](std::uint64_t seed) {
    crypto::Deal deal = testing::cached_deal(4, 1);
    for (std::size_t i = 0; i < deal.raw.size(); ++i) {
      deal.parties[i] = crypto::materialize(deal.raw[i]);
    }
    sim::Simulator sim(sim::uniform_setup(4, 30.0, 2.0, 0.25), deal, seed);
    sim.per_message_cpu_ms = 0.01;
    std::vector<std::unique_ptr<BinaryAgreement>> ps;
    for (int i = 0; i < 4; ++i) {
      ps.push_back(std::make_unique<BinaryAgreement>(
          sim.node(i), sim.node(i).dispatcher(),
          "ba.det" + std::to_string(seed)));
    }
    for (int i = 0; i < 4; ++i) {
      sim.at(static_cast<double>(i), i,
             [&, i] { ps[static_cast<std::size_t>(i)]->propose(i < 2); });
    }
    EXPECT_TRUE(sim.run_until(
        [&] {
          for (const auto& p : ps) {
            if (!p->decided().has_value()) return false;
          }
          return true;
        },
        120000));
    std::vector<std::pair<bool, int>> outcome;
    for (const auto& p : ps) {
      outcome.emplace_back(*p->decided(), p->decision_round());
    }
    return std::make_tuple(outcome, sim.now_ms());
  };

  const auto coins0 = total_counter("ba.coins_assembled");
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    EXPECT_EQ(run(seed), run(seed)) << "seed " << seed;
  }
  // The mixed 2-vs-2 proposals force abstain rounds under some of these
  // schedules, so the optimistic coin-assembly path was actually on the
  // trace being compared.
  EXPECT_GT(total_counter("ba.coins_assembled"), coins0);
}

}  // namespace
}  // namespace sintra::core
