#include "core/channel/secure_atomic_channel.hpp"

#include <gtest/gtest.h>

#include "sim_fixture.hpp"

namespace sintra::core {
namespace {

using testing::Cluster;

std::vector<std::unique_ptr<SecureAtomicChannel>> make_channels(
    Cluster& c, const std::string& pid) {
  return c.make_protocols<SecureAtomicChannel>(
      [&](Environment& env, Dispatcher& disp, int) {
        return std::make_unique<SecureAtomicChannel>(env, disp, pid);
      });
}

std::vector<std::string> delivered_strings(const SecureAtomicChannel& ch) {
  std::vector<std::string> out;
  for (const auto& d : ch.deliveries()) out.push_back(to_string(d.payload));
  return out;
}

bool all_delivered_count(
    const std::vector<std::unique_ptr<SecureAtomicChannel>>& cs,
    std::size_t count, const std::set<int>& skip = {}) {
  for (std::size_t i = 0; i < cs.size(); ++i) {
    if (skip.contains(static_cast<int>(i))) continue;
    if (cs[i]->deliveries().size() < count) return false;
  }
  return true;
}

TEST(SecureAtomicChannel, EndToEndDelivery) {
  Cluster c(4, 1, 1);
  auto chans = make_channels(c, "sac.e2e");
  for (int m = 0; m < 3; ++m) {
    c.sim.at(m * 1.0, 0, [&, m] {
      chans[0]->send(to_bytes("secret-" + std::to_string(m)));
    });
  }
  ASSERT_TRUE(c.sim.run_until(
      [&] { return all_delivered_count(chans, 3); }, 4e6));
  const auto expected = delivered_strings(*chans[0]);
  EXPECT_EQ(expected, (std::vector<std::string>{"secret-0", "secret-1",
                                                "secret-2"}));
  for (const auto& ch : chans) EXPECT_EQ(delivered_strings(*ch), expected);
}

TEST(SecureAtomicChannel, CiphertextAvailableBeforeCleartext) {
  // receiveCiphertext (§3.4): the position of the next output is fixed
  // (ciphertext known) before/independently of its decryption.
  Cluster c(4, 1, 2);
  auto chans = make_channels(c, "sac.ct");
  c.sim.at(0.0, 1, [&] { chans[1]->send(to_bytes("payload")); });
  ASSERT_TRUE(c.sim.run_until(
      [&] { return all_delivered_count(chans, 1); }, 4e6));
  ASSERT_TRUE(chans[2]->can_receive_ciphertext());
  const auto ct = chans[2]->receive_ciphertext();
  ASSERT_TRUE(ct.has_value());
  // The ciphertext is not the payload (it is hidden until decryption) ...
  EXPECT_EQ(to_string(*ct).find("payload"), std::string::npos);
  // ... and the cleartext is separately receivable.
  EXPECT_EQ(to_string(*chans[2]->receive()), "payload");
}

TEST(SecureAtomicChannel, PayloadHiddenOnTheWire) {
  // No transmitted frame may contain the plaintext: confidentiality until
  // the delivery position is fixed.
  Cluster c(4, 1, 3);
  const std::string secret = "DEADBEEF-THE-SEALED-BID-4242";
  // Capture all frames via the delay hook? The simulator doesn't expose
  // payloads there; instead check the ciphertext bytes directly.
  auto chans = make_channels(c, "sac.hidden");
  Rng rng(7);
  const Bytes ct = SecureAtomicChannel::encrypt(
      *c.deal.encryption_key, "sac.hidden", to_bytes(secret), rng);
  EXPECT_EQ(to_string(ct).find(secret), std::string::npos);
  c.sim.at(0.0, 0, [&] { chans[0]->send_ciphertext(ct); });
  ASSERT_TRUE(c.sim.run_until(
      [&] { return all_delivered_count(chans, 1); }, 4e6));
  EXPECT_EQ(to_string(*chans[3]->receive()), secret);
}

TEST(SecureAtomicChannel, ExternalClientCiphertextPath) {
  // A non-member encrypts with only the public key; a member relays the
  // ciphertext without seeing the cleartext (paper §3.4).
  Cluster c(4, 1, 4);
  auto chans = make_channels(c, "sac.ext");
  Rng client_rng(99);  // the client's own randomness, outside the group
  const Bytes ct = SecureAtomicChannel::encrypt(
      *c.deal.encryption_key, "sac.ext", to_bytes("external order #7"),
      client_rng);
  c.sim.at(0.0, 2, [&] { chans[2]->send_ciphertext(ct); });
  ASSERT_TRUE(c.sim.run_until(
      [&] { return all_delivered_count(chans, 1); }, 4e6));
  for (const auto& ch : chans) {
    EXPECT_EQ(delivered_strings(*ch),
              std::vector<std::string>{"external order #7"});
  }
}

TEST(SecureAtomicChannel, MauledCiphertextSkippedUniformly) {
  // A Byzantine member bypasses encrypt() and broadcasts garbage.  TDH2's
  // validity check fails identically everywhere; honest parties skip the
  // position and stay in sync.
  Cluster c(4, 1, 5);
  auto chans = make_channels(c, "sac.maul");
  c.sim.at(0.0, 3, [&] {
    chans[3]->send_ciphertext(Bytes(50, 0xab));  // not a valid ciphertext
  });
  c.sim.at(1.0, 0, [&] { chans[0]->send(to_bytes("good")); });
  ASSERT_TRUE(c.sim.run_until(
      [&] { return all_delivered_count(chans, 1); }, 4e6));
  for (const auto& ch : chans) {
    EXPECT_EQ(delivered_strings(*ch), std::vector<std::string>{"good"});
  }
}

TEST(SecureAtomicChannel, OrderPreservedUnderConcurrentSends) {
  Cluster c(4, 1, 6);
  auto chans = make_channels(c, "sac.order");
  for (int s = 0; s < 3; ++s) {
    for (int m = 0; m < 2; ++m) {
      c.sim.at(m * 2.0, s, [&, s, m] {
        chans[static_cast<std::size_t>(s)]->send(
            to_bytes("p" + std::to_string(s) + std::to_string(m)));
      });
    }
  }
  ASSERT_TRUE(c.sim.run_until(
      [&] { return all_delivered_count(chans, 6); }, 8e6));
  const auto expected = delivered_strings(*chans[0]);
  for (const auto& ch : chans) EXPECT_EQ(delivered_strings(*ch), expected);
}

TEST(SecureAtomicChannel, CloseProtocolWorksThroughEncryptedChannel) {
  Cluster c(4, 1, 7);
  auto chans = make_channels(c, "sac.close");
  c.sim.at(0.0, 0, [&] { chans[0]->close(); });
  c.sim.at(0.0, 1, [&] { chans[1]->close(); });
  ASSERT_TRUE(c.sim.run_until(
      [&] {
        return std::all_of(chans.begin(), chans.end(),
                           [](const auto& ch) { return ch->is_closed(); });
      },
      4e6));
  EXPECT_FALSE(chans[0]->can_send());
}

TEST(SecureAtomicChannel, DecryptionAddsLatencyOverAtomic) {
  // Sanity check of the Table 1 relationship: secure > atomic for the
  // same workload (one extra decryption round).
  Cluster c(4, 1, 8);
  auto secure = make_channels(c, "sac.lat");
  auto atomic = c.make_protocols<AtomicChannel>(
      [&](Environment& env, Dispatcher& disp, int) {
        return std::make_unique<AtomicChannel>(env, disp, "ac.lat");
      });
  c.sim.at(0.0, 0, [&] {
    secure[0]->send(to_bytes("x"));
    atomic[0]->send(to_bytes("x"));
  });
  ASSERT_TRUE(c.sim.run_until(
      [&] {
        return secure[1]->deliveries().size() == 1 &&
               atomic[1]->deliveries().size() == 1;
      },
      8e6));
  EXPECT_GT(secure[1]->deliveries()[0].time_ms,
            atomic[1]->deliveries()[0].time_ms);
}

}  // namespace
}  // namespace sintra::core
