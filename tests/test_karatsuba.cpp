// Karatsuba multiplication correctness: cross-checked against reference
// products around and far beyond the schoolbook/Karatsuba threshold.
#include <gtest/gtest.h>

#include "bignum/bigint.hpp"

namespace sintra::bignum {
namespace {

// Reference product via repeated shift-and-add (independent of the
// implementation's multiplication path).
BigInt reference_mul(const BigInt& a, const BigInt& b) {
  BigInt acc;
  for (int i = 0; i < b.bit_length(); ++i) {
    if (b.bit(i)) acc += a << i;
  }
  return acc;
}

TEST(Karatsuba, MatchesReferenceAroundThreshold) {
  Rng rng(0xca2a);
  // 20 limbs = 1280 bits is the crossover since the 64-bit limb rework
  // (kKaratsubaThreshold in bigint.cpp); sweep sizes around it.
  for (int bits : {1200, 1279, 1280, 1281, 1344, 1536, 2048, 4096}) {
    for (int rep = 0; rep < 4; ++rep) {
      const BigInt a = BigInt::random_bits(rng, bits);
      const BigInt b = BigInt::random_bits(rng, bits - rep * 13);
      EXPECT_EQ(a * b, reference_mul(a, b)) << bits << "/" << rep;
    }
  }
}

TEST(Karatsuba, AsymmetricOperands) {
  Rng rng(0xca2b);
  const BigInt big = BigInt::random_bits(rng, 3000);
  const BigInt small = BigInt::random_bits(rng, 40);
  EXPECT_EQ(big * small, reference_mul(big, small));
  EXPECT_EQ(small * big, reference_mul(small, big));
  EXPECT_EQ(big * BigInt{1}, big);
  EXPECT_EQ(big * BigInt{0}, BigInt{0});
}

TEST(Karatsuba, CarriesAcrossHalves) {
  // All-ones operands maximize carries through the recombination.
  const BigInt a = (BigInt{1} << 1600) - BigInt{1};
  const BigInt b = (BigInt{1} << 1600) - BigInt{1};
  // (2^k - 1)^2 = 2^{2k} - 2^{k+1} + 1.
  EXPECT_EQ(a * b,
            (BigInt{1} << 3200) - (BigInt{1} << 1601) + BigInt{1});
}

TEST(Karatsuba, DivisionStillInvertsLargeProducts) {
  Rng rng(0xca2c);
  for (int rep = 0; rep < 5; ++rep) {
    const BigInt a = BigInt::random_bits(rng, 1800);
    const BigInt b = BigInt::random_bits(rng, 1200);
    const BigInt p = a * b;
    EXPECT_EQ(p / a, b);
    EXPECT_EQ(p / b, a);
    EXPECT_EQ(p % a, BigInt{0});
  }
}

TEST(Karatsuba, SquaringIdentity) {
  Rng rng(0xca2d);
  const BigInt a = BigInt::random_bits(rng, 1500);
  const BigInt b = BigInt::random_bits(rng, 1500);
  EXPECT_EQ((a + b) * (a + b), a * a + (a * b << 1) + b * b);
}

}  // namespace
}  // namespace sintra::bignum
