#include "bignum/prime.hpp"

#include <gtest/gtest.h>

namespace sintra::bignum {
namespace {

BigInt bi(std::string_view s) { return BigInt::from_string(s); }

TEST(Prime, KnownSmallPrimes) {
  Rng rng(1);
  for (std::int64_t p : {2, 3, 5, 7, 11, 13, 97, 251, 257, 65537}) {
    EXPECT_TRUE(is_probable_prime(BigInt{p}, rng)) << p;
  }
}

TEST(Prime, KnownSmallComposites) {
  Rng rng(2);
  for (std::int64_t c : {0, 1, 4, 6, 9, 255, 1001, 65535}) {
    EXPECT_FALSE(is_probable_prime(BigInt{c}, rng)) << c;
  }
}

TEST(Prime, CarmichaelNumbersRejected) {
  Rng rng(3);
  // Classic Fermat pseudoprimes that Miller–Rabin must catch.
  for (const char* c : {"561", "1105", "1729", "2465", "6601", "8911",
                        "41041", "825265", "321197185"}) {
    EXPECT_FALSE(is_probable_prime(bi(c), rng)) << c;
  }
}

TEST(Prime, KnownLargePrimes) {
  Rng rng(4);
  // Mersenne primes.
  EXPECT_TRUE(is_probable_prime((BigInt{1} << 127) - BigInt{1}, rng));
  EXPECT_TRUE(is_probable_prime((BigInt{1} << 521) - BigInt{1}, rng));
  // 2^127+45 is... not obviously prime; use known RFC 3526 1536-bit prime? —
  // stick to verifiable values:
  EXPECT_FALSE(is_probable_prime((BigInt{1} << 128) - BigInt{1}, rng));
}

TEST(Prime, RandomPrimeHasExactBitsAndIsPrime) {
  Rng rng(5);
  for (int bits : {16, 32, 64, 128, 256}) {
    const BigInt p = random_prime(rng, bits);
    EXPECT_EQ(p.bit_length(), bits);
    EXPECT_TRUE(is_probable_prime(p, rng));
  }
}

TEST(Prime, SafePrimeStructure) {
  Rng rng(6);
  const BigInt p = random_safe_prime(rng, 64);
  EXPECT_EQ(p.bit_length(), 64);
  EXPECT_TRUE(is_probable_prime(p, rng));
  const BigInt q = (p - BigInt{1}) / BigInt{2};
  EXPECT_TRUE(is_probable_prime(q, rng));
}

TEST(Prime, SchnorrGroupStructure) {
  Rng rng(7);
  const SchnorrGroup grp = generate_schnorr_group(rng, 256, 80);
  EXPECT_EQ(grp.p.bit_length(), 256);
  EXPECT_EQ(grp.q.bit_length(), 80);
  EXPECT_TRUE(is_probable_prime(grp.p, rng));
  EXPECT_TRUE(is_probable_prime(grp.q, rng));
  // q | p-1
  EXPECT_EQ((grp.p - BigInt{1}) % grp.q, BigInt{0});
  // g has order exactly q: g != 1 and g^q == 1.
  EXPECT_NE(grp.g, BigInt{1});
  EXPECT_EQ(grp.g.mod_pow(grp.q, grp.p), BigInt{1});
}

TEST(Prime, SchnorrGroupElementsStayInSubgroup) {
  Rng rng(8);
  const SchnorrGroup grp = generate_schnorr_group(rng, 200, 64);
  // Random powers of g still have order dividing q.
  for (int i = 0; i < 5; ++i) {
    const BigInt x = BigInt::random_below(rng, grp.q);
    const BigInt y = grp.g.mod_pow(x, grp.p);
    EXPECT_EQ(y.mod_pow(grp.q, grp.p), BigInt{1});
  }
}

TEST(Prime, DeterministicGivenSeed) {
  Rng a(99), b(99);
  EXPECT_EQ(random_prime(a, 64), random_prime(b, 64));
}

}  // namespace
}  // namespace sintra::bignum
