#include <gtest/gtest.h>

#include "crypto/cost.hpp"
#include "crypto/dealer.hpp"
#include "crypto/hmac.hpp"

namespace sintra::crypto {
namespace {

DealerConfig small_config() {
  DealerConfig cfg;
  cfg.n = 4;
  cfg.t = 1;
  cfg.rsa_bits = 512;
  cfg.dl_p_bits = 256;
  cfg.dl_q_bits = 96;
  return cfg;
}

TEST(Dealer, ProducesNParties) {
  const Deal deal = run_dealer(small_config());
  EXPECT_EQ(deal.parties.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    const PartyKeys& k = deal.parties[static_cast<std::size_t>(i)];
    EXPECT_EQ(k.index, i);
    EXPECT_EQ(k.n, 4);
    EXPECT_EQ(k.t, 1);
    EXPECT_NE(k.own_rsa, nullptr);
    EXPECT_NE(k.sig_broadcast, nullptr);
    EXPECT_NE(k.sig_agreement, nullptr);
    EXPECT_NE(k.coin, nullptr);
    EXPECT_NE(k.cipher, nullptr);
  }
}

TEST(Dealer, RejectsBadGroupSizes) {
  DealerConfig cfg = small_config();
  cfg.n = 3;  // violates n > 3t
  EXPECT_THROW((void)run_dealer(cfg), std::invalid_argument);
  cfg.n = 0;
  cfg.t = 0;
  EXPECT_THROW((void)run_dealer(cfg), std::invalid_argument);
}

TEST(Dealer, LinkKeysAreSymmetricAndPairwiseDistinct) {
  const Deal deal = run_dealer(small_config());
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_EQ(deal.parties[static_cast<std::size_t>(i)].link_keys[static_cast<std::size_t>(j)],
                deal.parties[static_cast<std::size_t>(j)].link_keys[static_cast<std::size_t>(i)]);
    }
  }
  EXPECT_NE(deal.parties[0].link_keys[1], deal.parties[0].link_keys[2]);
  // Link keys actually authenticate.
  const Bytes msg = to_bytes("p2p message");
  const Bytes tag = hmac(HashKind::kSha1, deal.parties[0].link_keys[1], msg);
  EXPECT_TRUE(hmac_verify(HashKind::kSha1, deal.parties[1].link_keys[0], msg, tag));
}

TEST(Dealer, StandardSignaturesInteroperate) {
  const Deal deal = run_dealer(small_config());
  const Bytes msg = to_bytes("round 3|payload xyz");
  const Bytes sig = deal.parties[2].sign(msg);
  for (int j = 0; j < 4; ++j) {
    EXPECT_TRUE(deal.parties[static_cast<std::size_t>(j)].verify_party_sig(2, msg, sig));
    EXPECT_FALSE(deal.parties[static_cast<std::size_t>(j)].verify_party_sig(1, msg, sig));
  }
  EXPECT_FALSE(deal.parties[0].verify_party_sig(-1, msg, sig));
  EXPECT_FALSE(deal.parties[0].verify_party_sig(9, msg, sig));
}

TEST(Dealer, ThresholdQuorumsAreCorrect) {
  const Deal deal = run_dealer(small_config());
  // n=4, t=1: broadcast quorum ceil((4+1+1)/2) = 3, agreement n-t = 3,
  // coin and cipher t+1 = 2.
  EXPECT_EQ(deal.parties[0].sig_broadcast->k(), 3);
  EXPECT_EQ(deal.parties[0].sig_agreement->k(), 3);
  EXPECT_EQ(deal.parties[0].coin->k(), 2);
  EXPECT_EQ(deal.parties[0].cipher->k(), 2);
}

TEST(Dealer, MultiSigPartiesInteroperate) {
  const Deal deal = run_dealer(small_config());
  const Bytes msg = to_bytes("consistent broadcast echo");
  std::vector<std::pair<int, Bytes>> shares;
  for (int i = 0; i < 3; ++i) {
    shares.emplace_back(
        i, deal.parties[static_cast<std::size_t>(i)].sig_broadcast->sign_share(msg));
  }
  const Bytes sig = deal.parties[3].sig_broadcast->combine(msg, shares);
  EXPECT_TRUE(deal.parties[0].sig_broadcast->verify(msg, sig));
}

TEST(Dealer, ThresholdRsaVariantWorks) {
  DealerConfig cfg = small_config();
  cfg.sig_impl = SigImpl::kThresholdRsa;
  cfg.rsa_bits = 256;  // keep safe-prime generation cheap in tests
  const Deal deal = run_dealer(cfg);
  const Bytes msg = to_bytes("m");
  std::vector<std::pair<int, Bytes>> shares;
  for (int i = 0; i < 3; ++i) {
    shares.emplace_back(
        i, deal.parties[static_cast<std::size_t>(i)].sig_agreement->sign_share(msg));
  }
  const Bytes sig = deal.parties[3].sig_agreement->combine(msg, shares);
  EXPECT_TRUE(deal.parties[1].sig_agreement->verify(msg, sig));
}

TEST(Dealer, CoinAndCipherInteroperate) {
  const Deal deal = run_dealer(small_config());
  // Coin round-trip across dealt parties.
  const Bytes name = to_bytes("dealer coin");
  std::vector<std::pair<int, Bytes>> cs;
  cs.emplace_back(0, deal.parties[0].coin->release(name));
  cs.emplace_back(2, deal.parties[2].coin->release(name));
  EXPECT_NO_THROW((void)deal.parties[1].coin->assemble(name, cs, 8));

  // Cipher round-trip via the published channel key.
  Rng rng(1);
  const Bytes ct =
      deal.encryption_key->encrypt(to_bytes("msg"), to_bytes("chan"), rng);
  std::vector<std::pair<int, Bytes>> ds;
  ds.emplace_back(1, *deal.parties[1].cipher->decrypt_share(ct));
  ds.emplace_back(3, *deal.parties[3].cipher->decrypt_share(ct));
  EXPECT_EQ(deal.parties[0].cipher->combine(ct, ds), to_bytes("msg"));
}

TEST(Dealer, DeterministicForSeed) {
  const Deal a = run_dealer(small_config());
  const Deal b = run_dealer(small_config());
  EXPECT_EQ(a.parties[0].own_rsa->pub.n, b.parties[0].own_rsa->pub.n);
  EXPECT_EQ(a.parties[0].link_keys[1], b.parties[0].link_keys[1]);
}

TEST(Dealer, DifferentSeedsDiffer) {
  DealerConfig c1 = small_config();
  DealerConfig c2 = small_config();
  c2.seed = 999;
  EXPECT_NE(run_dealer(c1).parties[0].link_keys[1],
            run_dealer(c2).parties[0].link_keys[1]);
}

TEST(Dealer, LargerGroup) {
  DealerConfig cfg = small_config();
  cfg.n = 7;
  cfg.t = 2;
  const Deal deal = run_dealer(cfg);
  EXPECT_EQ(deal.parties.size(), 7u);
  EXPECT_EQ(deal.parties[0].sig_broadcast->k(), 5);  // ceil((7+2+1)/2)
  EXPECT_EQ(deal.parties[0].sig_agreement->k(), 5);  // 7-2
  EXPECT_EQ(deal.parties[0].coin->k(), 3);
}

TEST(CostModel, CalibrationIsPositiveAndStable) {
  const std::uint64_t w = work_per_exp1024();
  EXPECT_GT(w, 100000u);
  EXPECT_EQ(w, work_per_exp1024());
}

TEST(CostModel, ScalesLinearlyWithHostSpeed) {
  const std::uint64_t w = work_per_exp1024();
  EXPECT_DOUBLE_EQ(work_to_ms(w, 93.0), 93.0);
  EXPECT_DOUBLE_EQ(work_to_ms(w, 427.0), 427.0);
  EXPECT_DOUBLE_EQ(work_to_ms(2 * w, 93.0), 186.0);
}

TEST(CostModel, WorkMeterObservesCrypto) {
  WorkMeter meter;
  Rng rng(1);
  const RsaKeyPair key = rsa_generate(rng, 256);
  (void)rsa_sign(key, to_bytes("x"));
  EXPECT_GT(meter.elapsed(), 0u);
}

}  // namespace
}  // namespace sintra::crypto
