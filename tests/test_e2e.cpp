// Grand end-to-end integration: "everything at once" on the paper's WAN
// topology — Shoup threshold signatures, a crashed replica, a Byzantine
// flooder, and a secure causal channel running alongside the atomic
// channel — plus polymorphic use of the Figure 2 Channel interface.
#include <gtest/gtest.h>

#include "core/channel/broadcast_channel.hpp"
#include "core/channel/channel_base.hpp"
#include "core/channel/secure_atomic_channel.hpp"
#include "sim_fixture.hpp"

namespace sintra::core {
namespace {

using testing::Cluster;

TEST(EndToEnd, ChannelInterfaceIsPolymorphic) {
  // The Figure 2 hierarchy: one application function drives all four
  // channel kinds through the abstract interface.
  Cluster c(4, 1, 0xe2e0);
  std::vector<std::vector<std::unique_ptr<ChannelBase>>> all(4);
  for (int i = 0; i < 4; ++i) {
    auto& env = c.sim.node(i);
    auto& disp = c.sim.node(i).dispatcher();
    all[static_cast<std::size_t>(i)].push_back(
        std::make_unique<AtomicChannel>(env, disp, "poly.ac"));
    all[static_cast<std::size_t>(i)].push_back(
        std::make_unique<SecureAtomicChannel>(env, disp, "poly.sac"));
    all[static_cast<std::size_t>(i)].push_back(
        std::make_unique<ReliableChannel>(env, disp, "poly.rc"));
    all[static_cast<std::size_t>(i)].push_back(
        std::make_unique<ConsistentChannel>(env, disp, "poly.cc"));
  }
  c.sim.at(0.0, 0, [&] {
    for (auto& ch : all[0]) {
      ASSERT_TRUE(ch->can_send_payload());
      ch->send_payload(to_bytes("via interface"));
    }
  });
  ASSERT_TRUE(c.sim.run_until(
      [&] {
        for (int i = 0; i < 4; ++i) {
          for (const auto& ch : all[static_cast<std::size_t>(i)]) {
            if (!ch->can_receive_payload()) return false;
          }
        }
        return true;
      },
      8e6));
  for (int i = 0; i < 4; ++i) {
    for (auto& ch : all[static_cast<std::size_t>(i)]) {
      auto payload = ch->receive_payload();
      ASSERT_TRUE(payload.has_value());
      EXPECT_EQ(to_string(*payload), "via interface");
      EXPECT_FALSE(ch->channel_closed());
    }
  }
}

TEST(EndToEnd, EverythingAtOnceOnPaperTopology) {
  // n=7, t=2 on the combined LAN+Internet topology with Shoup threshold
  // signatures; one replica crashed from the start, one actively
  // Byzantine; atomic and secure channels run concurrently.
  const auto deal = testing::cached_deal(7, 2, crypto::SigImpl::kThresholdRsa);
  sim::Simulator sim(sim::combined_setup(), deal, 0xe2e1);
  sim.per_message_cpu_ms = 0.05;

  std::vector<std::unique_ptr<AtomicChannel>> atomic;
  std::vector<std::unique_ptr<SecureAtomicChannel>> secure;
  for (int i = 0; i < 7; ++i) {
    atomic.push_back(std::make_unique<AtomicChannel>(
        sim.node(i), sim.node(i).dispatcher(), "e2e.ac"));
    secure.push_back(std::make_unique<SecureAtomicChannel>(
        sim.node(i), sim.node(i).dispatcher(), "e2e.sac"));
  }

  sim::Adversary adv(sim, deal);
  adv.crash(6);    // California down from the start
  adv.corrupt(5);  // New York actively Byzantine
  Rng junk(0xbad);
  for (int burst = 0; burst < 20; ++burst) {
    adv.send_as_all(5, "e2e.ac", junk.bytes(60), burst * 20.0);
    adv.send_as_all(5, "e2e.sac", junk.bytes(60), burst * 20.0);
    adv.send_as_all(5, "e2e.sac.ac", junk.bytes(60), burst * 20.0);
  }

  // Live senders: 0 (Zurich LAN) and 4 (Tokyo).
  for (int m = 0; m < 3; ++m) {
    sim.at(m * 10.0, 0, [&, m] {
      atomic[0]->send(to_bytes("a0." + std::to_string(m)));
      secure[0]->send(to_bytes("s0." + std::to_string(m)));
    });
    sim.at(m * 10.0, 4, [&, m] {
      atomic[4]->send(to_bytes("a4." + std::to_string(m)));
    });
  }

  ASSERT_TRUE(sim.run_until(
      [&] {
        for (int i = 0; i < 5; ++i) {  // the five honest live replicas
          if (atomic[static_cast<std::size_t>(i)]->deliveries().size() < 6)
            return false;
          if (secure[static_cast<std::size_t>(i)]->deliveries().size() < 3)
            return false;
        }
        return true;
      },
      6e7));

  // Total order on both channels across all honest live replicas.
  auto seq_of = [](const auto& ch) {
    std::vector<std::string> out;
    for (const auto& d : ch.deliveries()) out.push_back(to_string(d.payload));
    return out;
  };
  const auto atomic_seq = seq_of(*atomic[0]);
  const auto secure_seq = seq_of(*secure[0]);
  EXPECT_EQ(atomic_seq.size(), 6u);
  EXPECT_EQ(secure_seq.size(), 3u);
  for (int i = 1; i < 5; ++i) {
    EXPECT_EQ(seq_of(*atomic[static_cast<std::size_t>(i)]), atomic_seq) << i;
    EXPECT_EQ(seq_of(*secure[static_cast<std::size_t>(i)]), secure_seq) << i;
  }
  // Per-sender FIFO within the atomic order.
  std::vector<std::string> from0, from4;
  for (const auto& v : atomic_seq) {
    if (v.rfind("a0", 0) == 0) from0.push_back(v);
    if (v.rfind("a4", 0) == 0) from4.push_back(v);
  }
  EXPECT_EQ(from0, (std::vector<std::string>{"a0.0", "a0.1", "a0.2"}));
  EXPECT_EQ(from4, (std::vector<std::string>{"a4.0", "a4.1", "a4.2"}));
}

TEST(EndToEnd, ForcedMultiRoundAgreementStillDecides) {
  // Adversarial link delays steer the vote pattern so that round 1 cannot
  // reach unanimity at everyone, forcing coin rounds (decision_round > 1
  // for at least one party across the seeds) — the randomized path the
  // FLP argument makes necessary.
  int multi_round_seen = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Cluster c(4, 1, seed * 101, 2.0, 0.1);
    Rng delays(seed);
    c.sim.delay_hook = [&delays](int from, int, double) {
      // Persistently slow some senders' links to split vote arrival.
      return (from % 2 == 0) ? delays.uniform01() * 80.0 : 0.0;
    };
    auto ps = c.make_protocols<BinaryAgreement>(
        [&](Environment& env, Dispatcher& disp, int) {
          return std::make_unique<BinaryAgreement>(env, disp,
                                                   "e2e.rounds" + std::to_string(seed));
        });
    for (int i = 0; i < 4; ++i) {
      c.sim.at(0.0, i, [&, i] { ps[static_cast<std::size_t>(i)]->propose(i % 2 == 0); });
    }
    ASSERT_TRUE(c.sim.run_until(
        [&] {
          return std::all_of(ps.begin(), ps.end(), [](const auto& p) {
            return p->decided().has_value();
          });
        },
        600000))
        << seed;
    std::set<bool> values;
    for (const auto& p : ps) {
      values.insert(*p->decided());
      if (p->decision_round() > 1) ++multi_round_seen;
    }
    EXPECT_EQ(values.size(), 1u) << seed;
  }
  EXPECT_GT(multi_round_seen, 0)
      << "no run exercised the coin path; adjust the schedule";
}

}  // namespace
}  // namespace sintra::core
