// Property sweeps: the protocol-stack invariants of DESIGN.md §5, run
// across group sizes, fault patterns and adversarial schedules with
// parameterized gtest.
#include <gtest/gtest.h>

#include "core/agreement/binary_agreement.hpp"
#include "core/channel/atomic_channel.hpp"
#include "sim_fixture.hpp"

namespace sintra::core {
namespace {

using testing::Cluster;

struct SweepParam {
  int n;
  int t;
  std::uint64_t seed;

  friend std::ostream& operator<<(std::ostream& os, const SweepParam& p) {
    return os << "n" << p.n << "t" << p.t << "seed" << p.seed;
  }
};

std::vector<SweepParam> sweep_params() {
  std::vector<SweepParam> out;
  for (const auto& [n, t] : {std::pair{4, 1}, {5, 1}, {7, 2}}) {
    for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
      out.push_back({n, t, seed});
    }
  }
  return out;
}

std::string param_name(const ::testing::TestParamInfo<SweepParam>& info) {
  return "n" + std::to_string(info.param.n) + "t" +
         std::to_string(info.param.t) + "s" + std::to_string(info.param.seed);
}

// --- Binary agreement across group sizes, seeds and crash patterns ---

class AgreementSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(AgreementSweep, AgreementValidityTermination) {
  const SweepParam p = GetParam();
  Cluster c(p.n, p.t, p.seed, 2.0, 0.4);
  auto ps = c.make_protocols<BinaryAgreement>(
      [&](Environment& env, Dispatcher& disp, int) {
        return std::make_unique<BinaryAgreement>(env, disp, "sweep.ba");
      });
  // Proposals split roughly in half; staggered start times.
  std::vector<bool> proposals;
  for (int i = 0; i < p.n; ++i) {
    const bool v = (i + static_cast<int>(p.seed)) % 2 == 0;
    proposals.push_back(v);
    c.sim.at(static_cast<double>(i) * 3.0, i,
             [&, i, v] { ps[static_cast<std::size_t>(i)]->propose(v); });
  }
  ASSERT_TRUE(c.sim.run_until(
      [&] {
        return std::all_of(ps.begin(), ps.end(), [](const auto& x) {
          return x->decided().has_value();
        });
      },
      600000));
  // Agreement: one decision value everywhere.
  std::set<bool> values;
  for (const auto& x : ps) values.insert(*x->decided());
  ASSERT_EQ(values.size(), 1u);
  // Validity: the decision was proposed by someone (here: some honest).
  EXPECT_TRUE(std::find(proposals.begin(), proposals.end(), *values.begin()) !=
              proposals.end());
}

TEST_P(AgreementSweep, ToleratesTCrashes) {
  const SweepParam p = GetParam();
  Cluster c(p.n, p.t, p.seed ^ 0x77, 2.0, 0.4);
  auto ps = c.make_protocols<BinaryAgreement>(
      [&](Environment& env, Dispatcher& disp, int) {
        return std::make_unique<BinaryAgreement>(env, disp, "sweep.bacrash");
      });
  // Crash the last t parties.
  std::set<int> crashed;
  for (int i = p.n - p.t; i < p.n; ++i) {
    c.sim.node(i).crash();
    crashed.insert(i);
  }
  for (int i = 0; i < p.n - p.t; ++i) {
    c.sim.at(0.0, i,
             [&, i] { ps[static_cast<std::size_t>(i)]->propose(i % 2 == 0); });
  }
  ASSERT_TRUE(c.sim.run_until(
      [&] {
        for (int i = 0; i < p.n - p.t; ++i) {
          if (!ps[static_cast<std::size_t>(i)]->decided()) return false;
        }
        return true;
      },
      600000));
  std::set<bool> values;
  for (int i = 0; i < p.n - p.t; ++i) {
    values.insert(*ps[static_cast<std::size_t>(i)]->decided());
  }
  EXPECT_EQ(values.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AgreementSweep,
                         ::testing::ValuesIn(sweep_params()), param_name);

// --- Atomic channel total order across sweeps ---

class AtomicSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(AtomicSweep, TotalOrderHolds) {
  const SweepParam p = GetParam();
  Cluster c(p.n, p.t, p.seed, 2.0, 0.4);
  auto chans = c.make_protocols<AtomicChannel>(
      [&](Environment& env, Dispatcher& disp, int) {
        return std::make_unique<AtomicChannel>(env, disp, "sweep.ac");
      });
  const int per_sender = 2;
  int total = 0;
  for (int s = 0; s < p.n; ++s) {
    for (int m = 0; m < per_sender; ++m) {
      c.sim.at(m * 3.0 + s, s, [&, s, m] {
        chans[static_cast<std::size_t>(s)]->send(
            to_bytes("p" + std::to_string(s) + "." + std::to_string(m)));
      });
      ++total;
    }
  }
  ASSERT_TRUE(c.sim.run_until(
      [&] {
        return std::all_of(chans.begin(), chans.end(), [&](const auto& ch) {
          return static_cast<int>(ch->deliveries().size()) >= total;
        });
      },
      8e6));
  // Identical sequences everywhere.
  auto seq = [](const AtomicChannel& ch) {
    std::vector<std::string> out;
    for (const auto& d : ch.deliveries()) out.push_back(to_string(d.payload));
    return out;
  };
  const auto expected = seq(*chans[0]);
  EXPECT_EQ(expected.size(), static_cast<std::size_t>(total));
  for (const auto& ch : chans) EXPECT_EQ(seq(*ch), expected);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AtomicSweep,
                         ::testing::ValuesIn(sweep_params()), param_name);

// --- Adversarial scheduling: random heavy delays must not break safety ---

class AdversarialScheduleSweep : public ::testing::TestWithParam<SweepParam> {
};

TEST_P(AdversarialScheduleSweep, TotalOrderUnderRandomDelays) {
  const SweepParam p = GetParam();
  Cluster c(p.n, p.t, p.seed, 2.0, 0.1);
  // Adversarial scheduler: random per-message extra delay up to 200 ms,
  // with some links consistently much slower than others.
  Rng delay_rng(p.seed * 31 + 7);
  c.sim.delay_hook = [&delay_rng](int from, int to, double) {
    double extra = delay_rng.uniform01() * 200.0;
    if ((from + 2 * to) % 5 == 0) extra += 400.0;  // persistently slow links
    return extra;
  };
  auto chans = c.make_protocols<AtomicChannel>(
      [&](Environment& env, Dispatcher& disp, int) {
        return std::make_unique<AtomicChannel>(env, disp, "sweep.delay");
      });
  const int total = p.n;  // one message per party
  for (int s = 0; s < p.n; ++s) {
    c.sim.at(static_cast<double>(s), s, [&, s] {
      chans[static_cast<std::size_t>(s)]->send(to_bytes("d" + std::to_string(s)));
    });
  }
  ASSERT_TRUE(c.sim.run_until(
      [&] {
        return std::all_of(chans.begin(), chans.end(), [&](const auto& ch) {
          return static_cast<int>(ch->deliveries().size()) >= total;
        });
      },
      8e6));
  std::vector<std::string> expected;
  for (const auto& d : chans[0]->deliveries()) {
    expected.push_back(to_string(d.payload));
  }
  for (const auto& ch : chans) {
    std::vector<std::string> got;
    for (const auto& d : ch->deliveries()) got.push_back(to_string(d.payload));
    EXPECT_EQ(got, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AdversarialScheduleSweep,
                         ::testing::ValuesIn(sweep_params()), param_name);

}  // namespace
}  // namespace sintra::core
