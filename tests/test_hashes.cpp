#include <gtest/gtest.h>

#include "crypto/hmac.hpp"
#include "crypto/sha1.hpp"
#include "crypto/sha256.hpp"
#include "util/hex.hpp"

namespace sintra::crypto {
namespace {

// --- SHA-1: FIPS 180-1 test vectors ---

TEST(Sha1, EmptyString) {
  EXPECT_EQ(hex_encode(Sha1::hash(to_bytes(""))),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc) {
  EXPECT_EQ(hex_encode(Sha1::hash(to_bytes("abc"))),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, TwoBlockMessage) {
  EXPECT_EQ(hex_encode(Sha1::hash(to_bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs) {
  Sha1 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hex_encode(h.digest()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, IncrementalMatchesOneShot) {
  const Bytes msg = to_bytes("the quick brown fox jumps over the lazy dog");
  Sha1 h;
  for (std::size_t i = 0; i < msg.size(); ++i) {
    h.update(BytesView(msg).subspan(i, 1));
  }
  EXPECT_EQ(h.digest(), Sha1::hash(msg));
}

TEST(Sha1, UpdateAfterDigestThrows) {
  Sha1 h;
  h.update(to_bytes("x"));
  (void)h.digest();
  EXPECT_THROW(h.update(to_bytes("y")), std::logic_error);
  Sha1 h2;
  (void)h2.digest();
  EXPECT_THROW((void)h2.digest(), std::logic_error);
}

// Padding boundary cases: lengths 55, 56, 63, 64 straddle the block edge.
TEST(Sha1, PaddingBoundaries) {
  for (std::size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const Bytes msg(len, 'z');
    Sha1 a;
    a.update(msg);
    // Split at an awkward point.
    Sha1 b;
    b.update(BytesView(msg).subspan(0, len / 3));
    b.update(BytesView(msg).subspan(len / 3));
    EXPECT_EQ(a.digest(), b.digest()) << "len=" << len;
  }
}

// --- SHA-256: FIPS 180-2 test vectors ---

TEST(Sha256, EmptyString) {
  EXPECT_EQ(hex_encode(Sha256::hash(to_bytes(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex_encode(Sha256::hash(to_bytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hex_encode(Sha256::hash(to_bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const Bytes chunk(10000, 'a');
  for (int i = 0; i < 100; ++i) h.update(chunk);
  EXPECT_EQ(hex_encode(h.digest()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, DispatchHelpers) {
  EXPECT_EQ(hash_bytes(HashKind::kSha1, to_bytes("abc")),
            Sha1::hash(to_bytes("abc")));
  EXPECT_EQ(hash_bytes(HashKind::kSha256, to_bytes("abc")),
            Sha256::hash(to_bytes("abc")));
  EXPECT_EQ(hash_digest_size(HashKind::kSha1), 20u);
  EXPECT_EQ(hash_digest_size(HashKind::kSha256), 32u);
}

// --- HMAC: RFC 2202 (SHA-1) and RFC 4231 (SHA-256) vectors ---

TEST(Hmac, Rfc2202Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(hex_encode(hmac_sha1(key, to_bytes("Hi There"))),
            "b617318655057264e28bc0b6fb378c8ef146be00");
}

TEST(Hmac, Rfc2202Case2) {
  EXPECT_EQ(hex_encode(hmac_sha1(to_bytes("Jefe"),
                                 to_bytes("what do ya want for nothing?"))),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
}

TEST(Hmac, Rfc2202LongKey) {
  const Bytes key(80, 0xaa);
  EXPECT_EQ(hex_encode(hmac_sha1(
                key, to_bytes("Test Using Larger Than Block-Size Key - "
                              "Hash Key First"))),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112");
}

TEST(Hmac, Rfc4231Case1Sha256) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(hex_encode(hmac(HashKind::kSha256, key, to_bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2Sha256) {
  EXPECT_EQ(hex_encode(hmac(HashKind::kSha256, to_bytes("Jefe"),
                            to_bytes("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, VerifyAcceptsAndRejects) {
  const Bytes key = to_bytes("0123456789abcdef");
  const Bytes msg = to_bytes("link message 42");
  Bytes tag = hmac(HashKind::kSha1, key, msg);
  EXPECT_TRUE(hmac_verify(HashKind::kSha1, key, msg, tag));
  tag[0] ^= 1;
  EXPECT_FALSE(hmac_verify(HashKind::kSha1, key, msg, tag));
  EXPECT_FALSE(hmac_verify(HashKind::kSha1, key, to_bytes("other"), tag));
  EXPECT_FALSE(hmac_verify(HashKind::kSha1, to_bytes("wrong key 1234567"),
                           msg, tag));
}

TEST(Hmac, DifferentKeysDisagree) {
  const Bytes msg = to_bytes("same message");
  EXPECT_NE(hmac_sha1(to_bytes("key-a"), msg), hmac_sha1(to_bytes("key-b"), msg));
}

}  // namespace
}  // namespace sintra::crypto
