// Tests for the off-loop crypto worker pool (crypto/work_pool.hpp): the
// zero-thread pool must be fully synchronous (the simulator's determinism
// contract), the threaded pool must run work off-thread but completions
// on the draining thread, the notify hook must fire, and destruction must
// drain queued work rather than drop it.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "crypto/work_pool.hpp"

namespace sintra::crypto {
namespace {

TEST(WorkPool, InlineModeRunsEverythingSynchronously) {
  WorkPool pool(0);
  EXPECT_TRUE(pool.inline_mode());
  EXPECT_EQ(pool.threads(), 0u);

  const std::thread::id self = std::this_thread::get_id();
  std::vector<int> order;
  pool.submit(
      [&] {
        EXPECT_EQ(std::this_thread::get_id(), self);
        order.push_back(1);
      },
      [&] {
        EXPECT_EQ(std::this_thread::get_id(), self);
        order.push_back(2);
      });
  // Both closures already ran, in order, before submit returned — so
  // there is nothing left for a drain to do.
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(pool.drain_completions(), 0u);
}

TEST(WorkPool, InlineCompletionsNeverNeedANotifyHook) {
  WorkPool pool(0);
  int notified = 0;
  pool.set_completion_notify([&] { ++notified; });
  int completed = 0;
  pool.submit([] {}, [&] { ++completed; });
  EXPECT_EQ(completed, 1);
  // Inline mode completes in submit(); the hook is a threaded-mode
  // mechanism and must not fire (nothing was queued).
  EXPECT_EQ(notified, 0);
}

TEST(WorkPool, ThreadedPoolRunsWorkOffThreadAndCompletionsOnOwner) {
  WorkPool pool(2);
  EXPECT_FALSE(pool.inline_mode());
  EXPECT_EQ(pool.threads(), 2u);

  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  std::set<std::thread::id> work_threads;
  std::vector<std::thread::id> completion_threads;

  const int kJobs = 16;
  for (int i = 0; i < kJobs; ++i) {
    pool.submit(
        [&] {
          std::lock_guard<std::mutex> lk(mu);
          work_threads.insert(std::this_thread::get_id());
        },
        [&] {
          completion_threads.push_back(std::this_thread::get_id());
          std::lock_guard<std::mutex> lk(mu);
          ++done;
          cv.notify_one();
        });
  }

  // Completions only run when the owner drains; poll until all arrived.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  int drained = 0;
  while (drained < kJobs && std::chrono::steady_clock::now() < deadline) {
    drained += static_cast<int>(pool.drain_completions());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(drained, kJobs);
  EXPECT_EQ(done, kJobs);

  const std::thread::id self = std::this_thread::get_id();
  // Work ran on worker threads, never on the owner.
  EXPECT_FALSE(work_threads.empty());
  EXPECT_FALSE(work_threads.contains(self));
  // Every completion ran on the thread that called drain_completions().
  ASSERT_EQ(completion_threads.size(), static_cast<std::size_t>(kJobs));
  for (const std::thread::id id : completion_threads) EXPECT_EQ(id, self);
}

TEST(WorkPool, CompletionNotifyFiresForThreadedJobs) {
  WorkPool pool(1);
  std::mutex mu;
  std::condition_variable cv;
  int notified = 0;
  pool.set_completion_notify([&] {
    std::lock_guard<std::mutex> lk(mu);
    ++notified;
    cv.notify_one();
  });
  std::atomic<int> worked{0};
  pool.submit([&] { worked.fetch_add(1); }, [] {});

  std::unique_lock<std::mutex> lk(mu);
  ASSERT_TRUE(cv.wait_for(lk, std::chrono::seconds(30),
                          [&] { return notified >= 1; }));
  lk.unlock();
  EXPECT_EQ(worked.load(), 1);
  EXPECT_EQ(pool.drain_completions(), 1u);
}

TEST(WorkPool, DestructorDrainsQueuedWork) {
  // Submit a burst that cannot possibly finish before the destructor
  // runs; the pool must complete every work closure before joining
  // (undrained completions are allowed to be dropped, the work is not).
  std::atomic<int> worked{0};
  const int kJobs = 64;
  {
    WorkPool pool(1);
    for (int i = 0; i < kJobs; ++i) {
      pool.submit(
          [&] {
            std::this_thread::sleep_for(std::chrono::microseconds(200));
            worked.fetch_add(1);
          },
          [] {});
    }
  }
  EXPECT_EQ(worked.load(), kJobs);
}

TEST(WorkPool, ManyProducersOneDrainer) {
  // The completion queue is MPSC: hammer it from several producer threads
  // submitting through the same pool while the owner drains.
  WorkPool pool(3);
  std::atomic<int> completed{0};
  const int kProducers = 4;
  const int kPerProducer = 50;
  {
    std::vector<std::jthread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&] {
        for (int i = 0; i < kPerProducer; ++i) {
          pool.submit([] {}, [&] { completed.fetch_add(1); });
        }
      });
    }
  }
  const int kTotal = kProducers * kPerProducer;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  int drained = 0;
  while (drained < kTotal && std::chrono::steady_clock::now() < deadline) {
    drained += static_cast<int>(pool.drain_completions());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(drained, kTotal);
  EXPECT_EQ(completed.load(), kTotal);
}

}  // namespace
}  // namespace sintra::crypto
