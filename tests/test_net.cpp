// Deployment-transport tests: real UDP sockets on the loopback device,
// several NetEnvironment parties sharing one event loop, and the
// transport-level drop accounting for junk datagrams.  Everything binds
// port 0 (ephemeral) so parallel test runs cannot collide.
#include "net/net_environment.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/broadcast/reliable_broadcast.hpp"
#include "core/channel/atomic_channel.hpp"
#include "obs/metrics.hpp"
#include "sim_fixture.hpp"
#include "util/serde.hpp"

namespace sintra::net {
namespace {

/// Value of counter `name`{party=`party`} in a snapshot (0 if absent).
/// The process registry accumulates across tests, so assertions below
/// compare before/after deltas, never absolute values.
std::uint64_t snapshot_counter(const obs::Snapshot& snap,
                               const std::string& name, int party) {
  const obs::Labels labels = obs::party_labels(party);
  for (const auto& c : snap.counters) {
    if (c.name == name && c.labels == labels) return c.value;
  }
  return 0;
}

core::Endpoint endpoint_of(const UdpSocket& socket) {
  const std::string addr = socket.local_address().to_string();
  const auto colon = addr.rfind(':');
  return {addr.substr(0, colon), std::stoi(addr.substr(colon + 1))};
}

TEST(UdpSocket, LoopbackRoundtripWithEphemeralPorts) {
  EventLoop loop;
  UdpSocket a(SocketAddress::resolve("127.0.0.1", 0));
  UdpSocket b(SocketAddress::resolve("127.0.0.1", 0));
  EXPECT_NE(endpoint_of(a).port, 0);  // local_address resolves port 0
  EXPECT_NE(endpoint_of(a).port, endpoint_of(b).port);

  std::vector<std::string> got;
  loop.add_fd(b.fd(), [&] {
    while (auto received = b.receive()) {
      got.push_back(to_string(received->first));
    }
  });
  ASSERT_TRUE(a.send_to(b.local_address(), to_bytes("over the wire")));
  ASSERT_TRUE(loop.run_until([&] { return !got.empty(); }, 5000.0));
  EXPECT_EQ(got, (std::vector<std::string>{"over the wire"}));
  loop.remove_fd(b.fd());
}

TEST(UdpSocket, ResolveRendersNumericAddresses) {
  const SocketAddress addr = SocketAddress::resolve("127.0.0.1", 12345);
  EXPECT_EQ(addr.to_string(), "127.0.0.1:12345");
  EXPECT_THROW(SocketAddress::resolve("no.such.host.invalid", 1),
               std::runtime_error);
}

/// n NetEnvironment parties on one loop, each with its own ephemeral-port
/// socket — a whole cluster over real UDP inside one test process.
struct InProcessCluster {
  crypto::Deal deal;
  EventLoop loop;
  std::vector<std::unique_ptr<NetEnvironment>> envs;

  explicit InProcessCluster(int n, int t, NetOptions options = {})
      : deal(testing::cached_deal(n, t)) {
    std::vector<UdpSocket> sockets;
    std::vector<core::Endpoint> endpoints;
    for (int i = 0; i < n; ++i) {
      sockets.emplace_back(SocketAddress::resolve("127.0.0.1", 0));
      endpoints.push_back(endpoint_of(sockets.back()));
    }
    for (int i = 0; i < n; ++i) {
      envs.push_back(std::make_unique<NetEnvironment>(
          loop, std::move(sockets[static_cast<std::size_t>(i)]), endpoints,
          deal.parties[static_cast<std::size_t>(i)], options));
    }
  }
};

TEST(NetEnvironment, ReliableBroadcastAcrossRealSockets) {
  InProcessCluster c(4, 1);
  std::vector<std::unique_ptr<core::ReliableBroadcast>> rbcs;
  for (auto& env : c.envs) {
    rbcs.push_back(std::make_unique<core::ReliableBroadcast>(
        *env, env->dispatcher(), "net.rbc", 0));
  }
  const Bytes payload = to_bytes("across real sockets");
  rbcs[0]->send(payload);
  ASSERT_TRUE(c.loop.run_until(
      [&] {
        return std::all_of(rbcs.begin(), rbcs.end(), [](const auto& r) {
          return r->delivered().has_value();
        });
      },
      60000.0));
  for (const auto& r : rbcs) EXPECT_EQ(*r->delivered(), payload);
  // Real traffic flowed through the sockets.
  EXPECT_GT(c.envs[0]->stats().datagrams_received, 0u);
}

TEST(NetEnvironment, AtomicChannelTotalOrderAcrossRealSockets) {
  InProcessCluster c(4, 1);
  std::vector<std::unique_ptr<core::AtomicChannel>> channels;
  std::vector<std::vector<std::string>> delivered(4);
  int closed = 0;
  for (int i = 0; i < 4; ++i) {
    auto& env = *c.envs[static_cast<std::size_t>(i)];
    channels.push_back(std::make_unique<core::AtomicChannel>(
        env, env.dispatcher(), "net.atomic"));
    channels.back()->set_deliver_callback(
        [&delivered, i](const Bytes& payload, core::PartyId) {
          delivered[static_cast<std::size_t>(i)].push_back(
              to_string(payload));
        });
    channels.back()->set_closed_callback([&closed] { ++closed; });
  }
  for (int i = 0; i < 4; ++i) {
    channels[static_cast<std::size_t>(i)]->send(
        to_bytes("net" + std::to_string(i)));
    channels[static_cast<std::size_t>(i)]->close();
  }
  ASSERT_TRUE(c.loop.run_until([&] { return closed == 4; }, 120000.0));
  // Agreed close: all parties delivered the identical sequence.
  EXPECT_FALSE(delivered[0].empty());
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(delivered[static_cast<std::size_t>(i)], delivered[0]);
  }
}

TEST(NetEnvironment, JunkDatagramsAccountedAndSurvived) {
  NetOptions options;
  options.max_datagram = 1024;
  InProcessCluster c(4, 1, options);
  NetEnvironment& victim = *c.envs[0];
  UdpSocket attacker(SocketAddress::resolve("127.0.0.1", 0));
  const SocketAddress target = victim.local_address();
  const obs::Snapshot before = obs::registry().snapshot();

  ASSERT_TRUE(attacker.send_to(target, Bytes(2, 0xab)));  // no id prefix
  Writer out_of_range;
  out_of_range.u32(99);  // not a party
  ASSERT_TRUE(attacker.send_to(target, out_of_range.data()));
  Writer self_claim;
  self_claim.u32(0);  // claims to be the victim itself
  ASSERT_TRUE(attacker.send_to(target, self_claim.data()));
  Writer forged;
  forged.u32(2);  // valid prefix, garbage frame: reaches link 2 and dies
  forged.raw(Bytes(40, 0x5c));
  ASSERT_TRUE(attacker.send_to(target, forged.data()));
  ASSERT_TRUE(attacker.send_to(target, Bytes(2048, 0x01)));  // oversized

  ASSERT_TRUE(c.loop.run_until(
      [&] { return victim.stats().datagrams_received >= 5; }, 5000.0));
  EXPECT_EQ(victim.stats().drop_no_sender, 1u);
  EXPECT_EQ(victim.stats().drop_bad_sender, 2u);
  EXPECT_EQ(victim.stats().drop_oversized, 1u);

  // The same accounting must be observable through the public metrics
  // path (docs/OBSERVABILITY.md): the transport mirrors its drop buckets
  // into obs::registry() live.
  const obs::Snapshot after = obs::registry().snapshot();
  const int party = victim.self();
  EXPECT_EQ(snapshot_counter(after, "net.drop_no_sender", party) -
                snapshot_counter(before, "net.drop_no_sender", party),
            1u);
  EXPECT_EQ(snapshot_counter(after, "net.drop_bad_sender", party) -
                snapshot_counter(before, "net.drop_bad_sender", party),
            2u);
  EXPECT_EQ(snapshot_counter(after, "net.drop_oversized", party) -
                snapshot_counter(before, "net.drop_oversized", party),
            1u);
  EXPECT_GE(snapshot_counter(after, "net.datagrams_received", party) -
                snapshot_counter(before, "net.datagrams_received", party),
            5u);
  EXPECT_EQ(victim.link_stats(2).drop_malformed +
                victim.link_stats(2).drop_auth,
            1u);
  EXPECT_EQ(victim.link_stats(2).delivered, 0u);

  // The environment still works after the junk: broadcast goes through.
  std::vector<std::unique_ptr<core::ReliableBroadcast>> rbcs;
  for (auto& env : c.envs) {
    rbcs.push_back(std::make_unique<core::ReliableBroadcast>(
        *env, env->dispatcher(), "after.junk", 1));
  }
  rbcs[1]->send(to_bytes("still alive"));
  ASSERT_TRUE(c.loop.run_until(
      [&] { return rbcs[0]->delivered().has_value(); }, 60000.0));
  EXPECT_EQ(*rbcs[0]->delivered(), to_bytes("still alive"));
}

}  // namespace
}  // namespace sintra::net
