#include "facade/blocking_api.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "sim_fixture.hpp"

namespace sintra::facade {
namespace {

using namespace std::chrono_literals;

crypto::Deal facade_deal() { return testing::cached_deal(4, 1); }

TEST(LocalTransport, DeliversAuthenticatedMessages) {
  const auto deal = facade_deal();
  LocalGroup group(deal);
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::string> got;
  group.post_sync(1, [&] {
    group.node(1).dispatcher().register_pid(
        "t", [&](core::PartyId from, BytesView p) {
          const std::lock_guard<std::mutex> lock(mu);
          got.push_back(std::to_string(from) + ":" + to_string(p));
          cv.notify_all();
        });
  });
  group.post(0, [&] {
    group.node(0).send(1, core::frame_message("t", to_bytes("hello")));
  });
  std::unique_lock<std::mutex> lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, 10s, [&] { return !got.empty(); }));
  EXPECT_EQ(got[0], "0:hello");
}

TEST(LocalTransport, PostSyncRunsOnNodeThread) {
  const auto deal = facade_deal();
  LocalGroup group(deal);
  std::thread::id main_id = std::this_thread::get_id();
  std::thread::id node_id;
  group.post_sync(2, [&] { node_id = std::this_thread::get_id(); });
  EXPECT_NE(node_id, main_id);
  // Same thread every time.
  std::thread::id again;
  group.post_sync(2, [&] { again = std::this_thread::get_id(); });
  EXPECT_EQ(node_id, again);
}

TEST(LocalTransport, CrashedNodeStopsParticipating) {
  const auto deal = facade_deal();
  LocalGroup group(deal);
  group.crash(3);
  // post_sync to a crashed node must not deadlock.
  bool ran = false;
  group.post_sync(3, [&] { ran = true; });
  EXPECT_TRUE(ran);
}

TEST(BlockingApi, AtomicChannelEndToEnd) {
  const auto deal = facade_deal();
  LocalGroup group(deal);
  std::vector<std::unique_ptr<BlockingAtomicChannel>> chans;
  for (int i = 0; i < 4; ++i) {
    chans.push_back(
        std::make_unique<BlockingAtomicChannel>(group, i, "fac.ac"));
  }
  chans[0]->send(to_bytes("a"));
  chans[1]->send(to_bytes("b"));
  std::vector<std::vector<std::string>> streams(4);
  for (int i = 0; i < 4; ++i) {
    for (int m = 0; m < 2; ++m) {
      auto payload = chans[static_cast<std::size_t>(i)]->receive_for(30s);
      ASSERT_TRUE(payload.has_value()) << i << "," << m;
      streams[static_cast<std::size_t>(i)].push_back(to_string(*payload));
    }
  }
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(streams[static_cast<std::size_t>(i)], streams[0]);
  }
}

TEST(BlockingApi, CanReceiveProbe) {
  const auto deal = facade_deal();
  LocalGroup group(deal);
  std::vector<std::unique_ptr<BlockingAtomicChannel>> chans;
  for (int i = 0; i < 4; ++i) {
    chans.push_back(
        std::make_unique<BlockingAtomicChannel>(group, i, "fac.probe"));
  }
  EXPECT_FALSE(chans[2]->can_receive());
  chans[0]->send(to_bytes("x"));
  auto payload = chans[2]->receive_for(30s);
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(to_string(*payload), "x");
  EXPECT_FALSE(chans[2]->can_receive());
}

TEST(BlockingApi, CloseWaitTerminates) {
  const auto deal = facade_deal();
  LocalGroup group(deal);
  std::vector<std::unique_ptr<BlockingAtomicChannel>> chans;
  for (int i = 0; i < 4; ++i) {
    chans.push_back(
        std::make_unique<BlockingAtomicChannel>(group, i, "fac.close"));
  }
  chans[0]->close();
  chans[1]->close();
  chans[2]->close_wait();
  EXPECT_TRUE(chans[2]->is_closed());
}

TEST(BlockingApi, ReliableAndConsistentChannels) {
  const auto deal = facade_deal();
  LocalGroup group(deal);
  std::vector<std::unique_ptr<BlockingReliableChannel>> rc;
  std::vector<std::unique_ptr<BlockingConsistentChannel>> cc;
  for (int i = 0; i < 4; ++i) {
    rc.push_back(
        std::make_unique<BlockingReliableChannel>(group, i, "fac.rc"));
    cc.push_back(
        std::make_unique<BlockingConsistentChannel>(group, i, "fac.cc"));
  }
  rc[0]->send(to_bytes("r"));
  cc[1]->send(to_bytes("c"));
  for (int i = 0; i < 4; ++i) {
    auto r = rc[static_cast<std::size_t>(i)]->receive_for(30s);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(to_string(*r), "r");
    auto c = cc[static_cast<std::size_t>(i)]->receive_for(30s);
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(to_string(*c), "c");
  }
}

TEST(BlockingApi, SecureChannelEndToEnd) {
  const auto deal = facade_deal();
  LocalGroup group(deal);
  std::vector<std::unique_ptr<BlockingSecureAtomicChannel>> chans;
  for (int i = 0; i < 4; ++i) {
    chans.push_back(
        std::make_unique<BlockingSecureAtomicChannel>(group, i, "fac.sac"));
  }
  chans[3]->send(to_bytes("sealed"));
  for (int i = 0; i < 4; ++i) {
    auto payload = chans[static_cast<std::size_t>(i)]->receive_for(60s);
    ASSERT_TRUE(payload.has_value()) << i;
    EXPECT_EQ(to_string(*payload), "sealed");
  }
}

}  // namespace
}  // namespace sintra::facade
