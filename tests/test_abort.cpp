// abort() semantics across the protocol stack (paper §3.2/3.3: "provides
// a way to terminate a broadcast/agreement instance immediately.  The
// local instance of the protocol is cleaned up, but the state of other
// parties engaged in the protocol is unspecified").
#include <gtest/gtest.h>

#include "core/agreement/array_agreement.hpp"
#include "core/agreement/binary_agreement.hpp"
#include "core/broadcast/reliable_broadcast.hpp"
#include "core/channel/atomic_channel.hpp"
#include "sim_fixture.hpp"

namespace sintra::core {
namespace {

using testing::Cluster;

TEST(Abort, AbortedBroadcastStopsLocallyOthersFinish) {
  Cluster c(4, 1, 0xab0);
  auto ps = c.make_protocols<ReliableBroadcast>(
      [&](Environment& env, Dispatcher& disp, int) {
        return std::make_unique<ReliableBroadcast>(env, disp, "ab.rbc", 0);
      });
  c.sim.at(0.0, 0, [&] { ps[0]->send(to_bytes("payload")); });
  // Party 3 aborts its local instance immediately.
  c.sim.at(0.1, 3, [&] { ps[3]->abort(); });
  // The remaining three (n-t = 3 honest participants) still deliver.
  ASSERT_TRUE(c.sim.run_until(
      [&] {
        for (int i = 0; i < 3; ++i) {
          if (!ps[static_cast<std::size_t>(i)]->delivered()) return false;
        }
        return true;
      },
      8e6));
  EXPECT_FALSE(ps[3]->delivered().has_value());
}

TEST(Abort, AbortedAgreementNeverDecides) {
  Cluster c(4, 1, 0xab1);
  auto ps = c.make_protocols<BinaryAgreement>(
      [&](Environment& env, Dispatcher& disp, int) {
        return std::make_unique<BinaryAgreement>(env, disp, "ab.ba");
      });
  for (int i = 0; i < 4; ++i) {
    c.sim.at(0.0, i, [&, i] { ps[static_cast<std::size_t>(i)]->propose(true); });
  }
  c.sim.at(0.5, 2, [&] { ps[2]->abort(); });
  ASSERT_TRUE(c.sim.run_until(
      [&] {
        return ps[0]->decided() && ps[1]->decided() && ps[3]->decided();
      },
      8e6));
  EXPECT_FALSE(ps[2]->decided().has_value());
}

TEST(Abort, AbortedMvbaStopsCleanly) {
  Cluster c(4, 1, 0xab2);
  auto ps = c.make_protocols<ArrayAgreement>(
      [&](Environment& env, Dispatcher& disp, int) {
        return std::make_unique<ArrayAgreement>(env, disp, "ab.mvba",
                                                [](BytesView) { return true; });
      });
  for (int i = 0; i < 4; ++i) {
    c.sim.at(0.0, i, [&, i] {
      ps[static_cast<std::size_t>(i)]->propose(to_bytes("v" + std::to_string(i)));
    });
  }
  c.sim.at(0.5, 1, [&] { ps[1]->abort(); });
  ASSERT_TRUE(c.sim.run_until(
      [&] {
        return ps[0]->decided() && ps[2]->decided() && ps[3]->decided();
      },
      8e6));
  EXPECT_FALSE(ps[1]->decided().has_value());
  // Agreement among the finishers.
  EXPECT_EQ(*ps[0]->decided(), *ps[2]->decided());
  EXPECT_EQ(*ps[0]->decided(), *ps[3]->decided());
}

TEST(Abort, AbortedChannelDropsLateTraffic) {
  Cluster c(4, 1, 0xab3);
  auto chans = c.make_protocols<AtomicChannel>(
      [&](Environment& env, Dispatcher& disp, int) {
        return std::make_unique<AtomicChannel>(env, disp, "ab.ac");
      });
  c.sim.at(0.0, 0, [&] { chans[0]->send(to_bytes("first")); });
  ASSERT_TRUE(c.sim.run_until(
      [&] { return chans[3]->deliveries().size() >= 1; }, 8e6));
  c.sim.at(c.sim.now_ms(), 3, [&] { chans[3]->abort(); });
  // More traffic flows; the aborted party must not process it or crash.
  c.sim.at(c.sim.now_ms() + 1, 0, [&] { chans[0]->send(to_bytes("second")); });
  ASSERT_TRUE(c.sim.run_until(
      [&] {
        return chans[0]->deliveries().size() >= 2 &&
               chans[1]->deliveries().size() >= 2 &&
               chans[2]->deliveries().size() >= 2;
      },
      8e6));
  EXPECT_EQ(chans[3]->deliveries().size(), 1u);
  EXPECT_FALSE(chans[3]->can_send());
}

TEST(Abort, DoubleAbortIsIdempotent) {
  Cluster c(4, 1, 0xab4);
  auto ps = c.make_protocols<ReliableBroadcast>(
      [&](Environment& env, Dispatcher& disp, int) {
        return std::make_unique<ReliableBroadcast>(env, disp, "ab.twice", 0);
      });
  ps[1]->abort();
  ps[1]->abort();  // no throw, no double-unregister
  SUCCEED();
}

TEST(Abort, PidReusableAfterAbort) {
  // After aborting, the pid slot is free: a fresh instance under the same
  // pid can be created (dispatcher re-registration works).
  Cluster c(4, 1, 0xab5);
  auto& env = c.sim.node(0);
  auto& disp = c.sim.node(0).dispatcher();
  auto first = std::make_unique<ReliableBroadcast>(env, disp, "ab.reuse", 0);
  first->abort();
  EXPECT_NO_THROW(
      (void)std::make_unique<ReliableBroadcast>(env, disp, "ab.reuse", 0));
}

}  // namespace
}  // namespace sintra::core
