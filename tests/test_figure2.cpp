// The paper's Figure 2 class hierarchy, exercised polymorphically:
// both broadcast primitives behind BroadcastBase, and a paper-faithful
// SHA-1 configuration driving the full stack.
#include <gtest/gtest.h>

#include "core/broadcast/broadcast_base.hpp"
#include "core/broadcast/consistent_broadcast.hpp"
#include "core/broadcast/reliable_broadcast.hpp"
#include "core/channel/atomic_channel.hpp"
#include "sim_fixture.hpp"

namespace sintra::core {
namespace {

using testing::Cluster;

TEST(Figure2, BroadcastBasePolymorphicUse) {
  Cluster c(4, 1, 0xf16);
  // One reliable and one consistent instance per party, driven through
  // the abstract interface only.
  std::vector<std::vector<std::unique_ptr<BroadcastBase>>> all(4);
  for (int i = 0; i < 4; ++i) {
    auto& env = c.sim.node(i);
    auto& disp = c.sim.node(i).dispatcher();
    all[static_cast<std::size_t>(i)].push_back(
        std::make_unique<ReliableBroadcast>(env, disp, "f2.rbc", 1));
    all[static_cast<std::size_t>(i)].push_back(
        std::make_unique<ConsistentBroadcast>(env, disp, "f2.cbc", 1));
  }
  EXPECT_EQ(all[0][0]->broadcast_sender(), 1);
  EXPECT_EQ(all[0][1]->broadcast_sender(), 1);
  c.sim.at(0.0, 1, [&] {
    for (auto& b : all[1]) b->send_broadcast(to_bytes("via base"));
  });
  ASSERT_TRUE(c.sim.run_until(
      [&] {
        for (const auto& per_party : all) {
          for (const auto& b : per_party) {
            if (!b->can_receive_broadcast()) return false;
          }
        }
        return true;
      },
      8e6));
  for (const auto& per_party : all) {
    for (const auto& b : per_party) {
      EXPECT_EQ(to_string(*b->broadcast_delivered()), "via base");
    }
  }
}

TEST(Figure2, NonSenderCannotSendThroughBase) {
  Cluster c(4, 1, 0xf17);
  std::unique_ptr<BroadcastBase> b = std::make_unique<ReliableBroadcast>(
      c.sim.node(0), c.sim.node(0).dispatcher(), "f2.guard", 2);
  EXPECT_THROW(b->send_broadcast(to_bytes("not mine")), std::logic_error);
}

TEST(Figure2, Sha1ConfigurationRunsFullStack) {
  // The paper's prototype used SHA-1 throughout (§3); run the atomic
  // channel on a SHA-1 deal to pin that configuration end to end.
  crypto::DealerConfig cfg;
  cfg.n = 4;
  cfg.t = 1;
  cfg.rsa_bits = 512;
  cfg.dl_p_bits = 256;
  cfg.dl_q_bits = 96;
  cfg.hash = crypto::HashKind::kSha1;
  const crypto::Deal deal = crypto::run_dealer(cfg);
  sim::Simulator sim(sim::uniform_setup(4, 30.0, 2.0, 0.2), deal, 0xf18);
  sim.per_message_cpu_ms = 0.01;

  std::vector<std::unique_ptr<AtomicChannel>> chans;
  for (int i = 0; i < 4; ++i) {
    chans.push_back(std::make_unique<AtomicChannel>(
        sim.node(i), sim.node(i).dispatcher(), "f2.sha1"));
  }
  for (int m = 0; m < 3; ++m) {
    sim.at(m * 1.0, 0, [&, m] {
      chans[0]->send(to_bytes("sha1-" + std::to_string(m)));
    });
  }
  ASSERT_TRUE(sim.run_until(
      [&] {
        return std::all_of(chans.begin(), chans.end(), [](const auto& ch) {
          return ch->deliveries().size() >= 3;
        });
      },
      8e6));
  for (const auto& ch : chans) {
    EXPECT_EQ(to_string(ch->deliveries()[0].payload), "sha1-0");
  }
}

}  // namespace
}  // namespace sintra::core
