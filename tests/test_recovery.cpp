// Crash-recovery subsystem (DESIGN.md §10): durable replica log,
// threshold-signed checkpoints, and the catch-up protocol, exercised
// from the storage primitives up to a full simulated crash + restart.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include <unistd.h>

#include "core/channel/atomic_channel.hpp"
#include "recovery/checkpoint.hpp"
#include "recovery/recovery_manager.hpp"
#include "recovery/replica_log.hpp"
#include "recovery/state_store.hpp"
#include "sim_fixture.hpp"
#include "util/atomic_file.hpp"
#include "util/crc32.hpp"

namespace sintra::recovery {
namespace {

using sintra::testing::Cluster;

/// Fresh directory under the system temp root, removed on destruction.
struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const std::string& name)
      : path(std::filesystem::temp_directory_path() /
             ("sintra_recovery_" + name + "_" + std::to_string(::getpid()))) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  [[nodiscard]] std::string str() const { return path.string(); }
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string s((std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
  return s;
}

// ---------------------------------------------------------------- crc32

TEST(Crc32, KnownVectors) {
  // The classic IEEE 802.3 check value.
  EXPECT_EQ(util::crc32(to_bytes("123456789")), 0xCBF43926u);
  EXPECT_EQ(util::crc32(BytesView{}), 0x00000000u);
}

TEST(Crc32, StreamingMatchesOneShot) {
  const Bytes data = to_bytes("the quick brown fox jumps over the lazy dog");
  std::uint32_t state = util::crc32_init();
  state = util::crc32_update(state, BytesView(data).subspan(0, 7));
  state = util::crc32_update(state, BytesView(data).subspan(7));
  EXPECT_EQ(util::crc32_final(state), util::crc32(data));
}

// ----------------------------------------------------------- atomic_file

TEST(AtomicFile, WritesAndReplaces) {
  TempDir dir("atomic_file");
  const std::string path = dir.str() + "/snap";
  ASSERT_TRUE(util::atomic_write_file(path, std::string_view("first")));
  EXPECT_EQ(read_file(path), "first");
  ASSERT_TRUE(util::atomic_write_file(path, to_bytes("second, longer")));
  EXPECT_EQ(read_file(path), "second, longer");
  // No temporary sibling left behind.
  std::size_t entries = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir.path)) {
    (void)e;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
}

TEST(AtomicFile, FailsIntoErrorString) {
  std::string error;
  EXPECT_FALSE(util::atomic_write_file("/nonexistent-dir-xyz/f",
                                       std::string_view("x"), &error));
  EXPECT_FALSE(error.empty());
}

// ------------------------------------------------------------ replica log

TEST(ReplicaLog, RoundtripAndMissingFileIsEmpty) {
  TempDir dir("log_roundtrip");
  const std::string path = dir.str() + "/replica.log";

  const auto empty = ReplicaLog::load(path);
  EXPECT_TRUE(empty.records.empty());
  EXPECT_FALSE(empty.truncated);

  {
    ReplicaLog log(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log.append(to_bytes("one")));
    ASSERT_TRUE(log.append(to_bytes("")));  // empty records are legal
    ASSERT_TRUE(log.append(to_bytes("three")));
  }
  const auto loaded = ReplicaLog::load(path);
  EXPECT_FALSE(loaded.truncated);
  ASSERT_EQ(loaded.records.size(), 3u);
  EXPECT_EQ(to_string(loaded.records[0]), "one");
  EXPECT_EQ(to_string(loaded.records[1]), "");
  EXPECT_EQ(to_string(loaded.records[2]), "three");
}

TEST(ReplicaLog, TornTailIsTruncatedAndRepaired) {
  TempDir dir("log_torn");
  const std::string path = dir.str() + "/replica.log";
  {
    ReplicaLog log(path);
    ASSERT_TRUE(log.append(to_bytes("alpha")));
    ASSERT_TRUE(log.append(to_bytes("beta")));
  }
  // A crash mid-append leaves a partial frame: a length prefix with no
  // payload behind it.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    const char torn[] = {0, 0, 0, 42, 1};
    out.write(torn, sizeof torn);
  }
  const auto loaded = ReplicaLog::load(path);
  EXPECT_TRUE(loaded.truncated);
  ASSERT_EQ(loaded.records.size(), 2u);

  // Repair (what replay_local does), then appends extend a valid log.
  ASSERT_TRUE(ReplicaLog::truncate_to(path, loaded.valid_bytes));
  {
    ReplicaLog log(path);
    ASSERT_TRUE(log.append(to_bytes("gamma")));
  }
  const auto repaired = ReplicaLog::load(path);
  EXPECT_FALSE(repaired.truncated);
  ASSERT_EQ(repaired.records.size(), 3u);
  EXPECT_EQ(to_string(repaired.records[2]), "gamma");
}

TEST(ReplicaLog, CorruptMiddleDiscardsSuffix) {
  TempDir dir("log_corrupt");
  const std::string path = dir.str() + "/replica.log";
  {
    ReplicaLog log(path);
    ASSERT_TRUE(log.append(to_bytes("first-record")));
    ASSERT_TRUE(log.append(to_bytes("second-record")));
  }
  // Flip one payload byte of the FIRST record: the valid prefix is empty,
  // even though the second frame is intact (prefix semantics).
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(10);  // inside the first record's payload
    char b = 0;
    f.seekg(10);
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x40);
    f.seekp(10);
    f.write(&b, 1);
  }
  const auto loaded = ReplicaLog::load(path);
  EXPECT_TRUE(loaded.truncated);
  EXPECT_EQ(loaded.records.size(), 0u);
  EXPECT_EQ(loaded.valid_bytes, 0u);
}

// ------------------------------------------------------------ state store

TEST(StateStore, BootCounterAndBlobs) {
  TempDir dir("state_store");
  const std::string sub = dir.str() + "/nested/state";  // created on demand
  {
    StateStore store(sub);
    EXPECT_EQ(store.bump_boot(), 1u);
    EXPECT_EQ(store.bump_boot(), 2u);
    ASSERT_TRUE(store.save_blob("cluster.chan", to_bytes("cert-bytes")));
  }
  StateStore reopened(sub);
  EXPECT_EQ(reopened.bump_boot(), 3u);  // durable across instances
  const auto blob = reopened.load_blob("cluster.chan");
  ASSERT_TRUE(blob.has_value());
  EXPECT_EQ(to_string(*blob), "cert-bytes");
  EXPECT_FALSE(reopened.load_blob("never-saved").has_value());
}

// ------------------------------------------------- digest chain and certs

TEST(Checkpoint, ChainIsDeterministicAndPositionBound) {
  const Bytes d0 = chain_init("chan");
  EXPECT_EQ(d0, chain_init("chan"));
  EXPECT_NE(d0, chain_init("other-chan"));
  const Bytes d1 = chain_next(d0, 1, 0, to_bytes("m"));
  EXPECT_EQ(d1, chain_next(d0, 1, 0, to_bytes("m")));
  EXPECT_NE(d1, chain_next(d0, 2, 0, to_bytes("m")));      // seq bound
  EXPECT_NE(d1, chain_next(d0, 1, 1, to_bytes("m")));      // origin bound
  EXPECT_NE(d1, chain_next(d0, 1, 0, to_bytes("m2")));     // payload bound
}

TEST(Checkpoint, CertRoundtripAndThresholdVerify) {
  const crypto::Deal deal = sintra::testing::cached_deal(4, 1);
  auto& scheme = *deal.parties[0].sig_agreement;  // k = n - t = 3

  CheckpointCert cert;
  cert.seq = 8;
  cert.final = true;
  cert.digest = chain_next(chain_init("chan"), 1, 0, to_bytes("m"));
  const Bytes stmt =
      checkpoint_statement("chan", cert.seq, cert.final, cert.digest);
  std::vector<std::pair<int, Bytes>> shares;
  for (int i = 0; i < 3; ++i) {
    shares.emplace_back(i, deal.parties[static_cast<std::size_t>(i)]
                               .sig_agreement->sign_share(stmt));
  }
  cert.sig = scheme.combine(stmt, shares);

  EXPECT_TRUE(verify_cert(scheme, "chan", cert));

  // Encode/decode preserves every field and the signature still checks.
  const CheckpointCert back = decode_cert(encode_cert(cert));
  EXPECT_EQ(back.seq, cert.seq);
  EXPECT_EQ(back.final, cert.final);
  EXPECT_EQ(back.digest, cert.digest);
  EXPECT_TRUE(verify_cert(scheme, "chan", back));

  // Any tampering breaks the single threshold verification.
  CheckpointCert bad = cert;
  bad.seq = 9;
  EXPECT_FALSE(verify_cert(scheme, "chan", bad));
  bad = cert;
  bad.final = false;
  EXPECT_FALSE(verify_cert(scheme, "chan", bad));
  bad = cert;
  bad.digest[0] ^= 1;
  EXPECT_FALSE(verify_cert(scheme, "chan", bad));
  EXPECT_FALSE(verify_cert(scheme, "other-chan", cert));
}

// --------------------------------------------------------- replay (local)

TEST(RecoveryManager, ReplaysLogAcrossGenerations) {
  Cluster c(4, 1, 11);
  TempDir dir("replay");
  StateStore store(dir.str());
  RecoveryManager::Options opts;
  opts.checkpoint_interval = 1000;  // no checkpoint traffic in this test

  {
    RecoveryManager first(c.sim.node(0), c.sim.node(0).dispatcher(), "chan",
                          &store, opts);
    first.on_delivered(to_bytes("r1"), 2);
    first.on_delivered(to_bytes("r2"), 0);
    first.on_delivered(to_bytes("r3"), -1);  // unknown origin
    EXPECT_EQ(first.delivered_seq(), 3u);
  }

  RecoveryManager second(c.sim.node(0), c.sim.node(0).dispatcher(), "chan",
                         &store, opts);
  std::vector<RecoveryManager::Record> applied;
  second.set_apply_callback(
      [&](const RecoveryManager::Record& r) { applied.push_back(r); });
  EXPECT_EQ(second.replay_local(), 3u);
  EXPECT_EQ(second.delivered_seq(), 3u);
  ASSERT_EQ(applied.size(), 3u);
  EXPECT_EQ(applied[0].seq, 1u);
  EXPECT_EQ(to_string(applied[0].payload), "r1");
  EXPECT_EQ(applied[0].origin, 2u);
  EXPECT_EQ(to_string(applied[1].payload), "r2");
  EXPECT_EQ(applied[2].origin, 0xFFFFFFFFu);  // -1 recorded as unknown
  EXPECT_FALSE(second.caught_up());  // replay alone proves nothing final
}

// ------------------------------------------- full crash + restart (sim)

/// Everything a live party needs in the crash-recovery integration tests.
struct Party {
  std::unique_ptr<RecoveryManager> rec;
  std::unique_ptr<core::AtomicChannel> chan;
  std::vector<std::string> delivered;  // live channel deliveries, in order
};

/// Runs the shared first act: four parties on an atomic channel with
/// recovery managers (party 3 durable in `dir3`), six payloads from
/// parties 0..2, party 3 SIGKILLed (crash-stop) after `crash_after`
/// deliveries, survivors run to completion, close the channel and
/// assemble the final checkpoint certificate.
class CrashRecoveryTest : public ::testing::Test {
 protected:
  static constexpr const char* kPid = "rec.chan";
  static constexpr std::size_t kTotal = 6;

  void run_first_act(Cluster& c, StateStore& store3,
                     const RecoveryManager::Options& opts,
                     std::size_t crash_after, std::vector<Party>& parties,
                     const core::AtomicChannel::Config& chan_cfg = {}) {
    for (int i = 0; i < 4; ++i) {
      Party p;
      p.rec = std::make_unique<RecoveryManager>(
          c.sim.node(i), c.sim.node(i).dispatcher(), kPid,
          i == 3 ? &store3 : nullptr, opts);
      p.chan = std::make_unique<core::AtomicChannel>(
          c.sim.node(i), c.sim.node(i).dispatcher(), kPid, chan_cfg);
      parties.push_back(std::move(p));
    }
    for (int i = 0; i < 4; ++i) {
      Party& p = parties[static_cast<std::size_t>(i)];
      RecoveryManager* rec = p.rec.get();
      std::vector<std::string>* sink = &p.delivered;
      p.chan->set_deliver_callback(
          [rec, sink](const Bytes& payload, core::PartyId origin) {
            rec->on_delivered(payload, origin);
            sink->push_back(to_string(payload));
          });
      p.chan->set_closed_callback([rec] { rec->force_checkpoint(true); });
    }

    for (int s = 0; s < 3; ++s) {
      for (int m = 0; m < 2; ++m) {
        c.sim.at(1.0 + 40.0 * m + s, s, [&parties, s, m] {
          parties[static_cast<std::size_t>(s)].chan->send(
              to_bytes("s" + std::to_string(s) + "m" + std::to_string(m)));
        });
      }
    }

    // Party 3 dies only after `crash_after` deliveries hit its disk.
    ASSERT_TRUE(c.sim.run_until(
        [&] { return parties[3].delivered.size() >= crash_after; }, 4e6));
    c.sim.node(3).crash();

    // The three survivors (exactly n - t = k) finish and close.
    ASSERT_TRUE(c.sim.run_until(
        [&] {
          for (int i = 0; i < 3; ++i) {
            if (parties[static_cast<std::size_t>(i)].delivered.size() < kTotal)
              return false;
          }
          return true;
        },
        4e6));
    for (int i = 0; i < 3; ++i) {
      c.sim.at(c.sim.now_ms() + 1.0, i, [&parties, i] {
        parties[static_cast<std::size_t>(i)].chan->close();
      });
    }
    ASSERT_TRUE(c.sim.run_until(
        [&] {
          for (int i = 0; i < 3; ++i) {
            const auto& cert =
                parties[static_cast<std::size_t>(i)].rec->latest_cert();
            if (!cert.has_value() || !cert->final) return false;
          }
          return true;
        },
        4e6));
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(parties[static_cast<std::size_t>(i)]
                    .rec->latest_cert()
                    ->seq,
                kTotal);
    }
  }

  /// Second act: restart party 3 from `store3` and drive replay +
  /// catch-up to completion.  Returns the recovered record stream.
  std::vector<std::string> recover_party3(Cluster& c, StateStore& store3,
                                          const RecoveryManager::Options& opts,
                                          std::vector<Party>& parties,
                                          std::size_t* replayed_out) {
    // Protocols hold references into the dead incarnation: drop them
    // first, exactly as the docs on restart_node require.
    parties[3].chan.reset();
    parties[3].rec.reset();
    sim::Node& reborn = c.sim.restart_node(3);
    EXPECT_EQ(c.sim.boots(3), 2u);

    parties[3].rec = std::make_unique<RecoveryManager>(
        reborn, reborn.dispatcher(), kPid, &store3, opts);
    std::vector<std::string> recovered;
    parties[3].rec->set_apply_callback([&](const RecoveryManager::Record& r) {
      recovered.push_back(to_string(r.payload));
    });
    bool caught_up_fired = false;
    parties[3].rec->set_caught_up_callback([&] { caught_up_fired = true; });

    std::size_t replayed = 0;
    c.sim.at(c.sim.now_ms() + 1.0, 3, [&] {
      replayed = parties[3].rec->replay_local();
      parties[3].rec->start_catchup();
    });
    EXPECT_TRUE(c.sim.run_until([&] { return parties[3].rec->caught_up(); },
                                4e6));
    EXPECT_TRUE(caught_up_fired);
    if (replayed_out != nullptr) *replayed_out = replayed;
    return recovered;
  }
};

TEST_F(CrashRecoveryTest, RestartedPartyConvergesDeterministically) {
  RecoveryManager::Options opts;
  opts.checkpoint_interval = 2;
  Cluster c(4, 1, 21);
  TempDir dir("crash_restart");
  StateStore store3(dir.str());
  std::vector<Party> parties;
  run_first_act(c, store3, opts, /*crash_after=*/2, parties);

  std::size_t replayed = 0;
  const std::vector<std::string> recovered =
      recover_party3(c, store3, opts, parties, &replayed);

  // The log held exactly what party 3 delivered before the crash; replay
  // plus catch-up reconstructs the survivors' stream bit for bit.
  EXPECT_GE(replayed, 2u);
  EXPECT_LT(replayed, kTotal);
  EXPECT_EQ(recovered, parties[0].delivered);
  EXPECT_EQ(parties[1].delivered, parties[0].delivered);
  EXPECT_EQ(parties[2].delivered, parties[0].delivered);
  EXPECT_EQ(parties[3].rec->delivered_seq(), kTotal);
  ASSERT_TRUE(parties[3].rec->latest_cert().has_value());
  EXPECT_TRUE(parties[3].rec->latest_cert()->final);

  // Determinism: the whole scenario replays identically under the same
  // seed (the point of deterministic crash+restart in the simulator).
  Cluster c2(4, 1, 21);
  TempDir dir2("crash_restart_2");
  StateStore store3b(dir2.str());
  std::vector<Party> parties2;
  run_first_act(c2, store3b, opts, /*crash_after=*/2, parties2);
  const std::vector<std::string> recovered2 =
      recover_party3(c2, store3b, opts, parties2, nullptr);
  EXPECT_EQ(recovered2, recovered);
  EXPECT_EQ(parties2[0].delivered, parties[0].delivered);
}

TEST_F(CrashRecoveryTest, PipelinedChannelRecoversMidPipeline) {
  // Throughput mode (DESIGN.md §11): party 3 is SIGKILLed while several
  // rounds are in flight and bundles carry multiple payloads.  The
  // durable log + catch-up must still reconstruct the survivors' stream
  // exactly — recovery keys off the delivered sequence, which stays
  // strictly round-ordered under pipelining.
  RecoveryManager::Options opts;
  opts.checkpoint_interval = 2;
  core::AtomicChannel::Config chan_cfg;
  chan_cfg.max_batch_count = 4;
  chan_cfg.pipeline_depth = 3;
  Cluster c(4, 1, 23);
  TempDir dir("crash_pipelined");
  StateStore store3(dir.str());
  std::vector<Party> parties;
  run_first_act(c, store3, opts, /*crash_after=*/2, parties, chan_cfg);

  std::size_t replayed = 0;
  const std::vector<std::string> recovered =
      recover_party3(c, store3, opts, parties, &replayed);

  EXPECT_GE(replayed, 2u);
  EXPECT_EQ(recovered, parties[0].delivered);
  EXPECT_EQ(parties[1].delivered, parties[0].delivered);
  EXPECT_EQ(parties[2].delivered, parties[0].delivered);
  EXPECT_EQ(parties[3].rec->delivered_seq(), kTotal);
  ASSERT_TRUE(parties[3].rec->latest_cert().has_value());
  EXPECT_TRUE(parties[3].rec->latest_cert()->final);
}

TEST_F(CrashRecoveryTest, CorruptedLogFallsBackToCatchup) {
  RecoveryManager::Options opts;
  opts.checkpoint_interval = 2;
  Cluster c(4, 1, 22);
  TempDir dir("crash_corrupt");
  StateStore store3(dir.str());
  std::vector<Party> parties;
  run_first_act(c, store3, opts, /*crash_after=*/3, parties);

  // Bit rot on party 3's disk: flip a byte inside the log's final frame.
  const std::string log_path = store3.log_path(kPid);
  const std::size_t logged = ReplicaLog::load(log_path).records.size();
  ASSERT_GE(logged, 3u);
  const std::size_t size = std::filesystem::file_size(log_path);
  ASSERT_GT(size, 2u);
  {
    std::fstream f(log_path, std::ios::binary | std::ios::in | std::ios::out);
    char b = 0;
    f.seekg(static_cast<std::streamoff>(size - 2));
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x01);
    f.seekp(static_cast<std::streamoff>(size - 2));
    f.write(&b, 1);
  }

  std::size_t replayed = 0;
  const std::vector<std::string> recovered =
      recover_party3(c, store3, opts, parties, &replayed);

  // Replay stopped at the corruption, catch-up supplied the difference,
  // and the stream still converges with the survivors'.
  EXPECT_EQ(replayed, logged - 1);
  EXPECT_EQ(recovered, parties[0].delivered);
  EXPECT_EQ(parties[3].rec->delivered_seq(), kTotal);
  EXPECT_TRUE(parties[3].rec->caught_up());

  // The repaired log was re-extended: a THIRD incarnation replays the
  // complete stream from disk alone.
  parties[3].rec.reset();
  sim::Node& third = c.sim.restart_node(3);
  RecoveryManager again(third, third.dispatcher(), kPid, &store3, opts);
  std::size_t from_disk = 0;
  again.set_apply_callback(
      [&](const RecoveryManager::Record&) { ++from_disk; });
  EXPECT_EQ(again.replay_local(), kTotal);
  EXPECT_EQ(from_disk, kTotal);
  // The persisted final certificate makes it caught up without network.
  EXPECT_TRUE(again.caught_up());
}

}  // namespace
}  // namespace sintra::recovery
