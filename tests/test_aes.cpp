#include <gtest/gtest.h>

#include "crypto/aes128.hpp"
#include "util/hex.hpp"

namespace sintra::crypto {
namespace {

// FIPS 197 Appendix C.1 known-answer test.
TEST(Aes128, Fips197Vector) {
  const Bytes key = hex_decode("000102030405060708090a0b0c0d0e0f");
  const Bytes pt = hex_decode("00112233445566778899aabbccddeeff");
  Aes128 aes(key);
  std::uint8_t block[16];
  std::copy(pt.begin(), pt.end(), block);
  aes.encrypt_block(block);
  EXPECT_EQ(hex_encode(Bytes(block, block + 16)),
            "69c4e0d86a7b0430d8cdb78070b4c55a");
}

// NIST SP 800-38A F.5.1 CTR-AES128 test vectors.
TEST(Aes128, Sp80038aCtr) {
  const Bytes key = hex_decode("2b7e151628aed2a6abf7158809cf4f3c");
  const Bytes ctr = hex_decode("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  const Bytes pt = hex_decode(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  const Bytes expected = hex_decode(
      "874d6191b620e3261bef6864990db6ce"
      "9806f66b7970fdff8617187bb9fffdff"
      "5ae4df3edbd5d35e5b4f09020db03eab"
      "1e031dda2fbe03d1792170a0f3009cee");
  Aes128 aes(key);
  EXPECT_EQ(aes.ctr_crypt(ctr, pt), expected);
}

TEST(Aes128, CtrRoundTrip) {
  const Bytes key = hex_decode("00112233445566778899aabbccddeeff");
  const Bytes nonce(16, 0x42);
  Aes128 aes(key);
  for (std::size_t len : {0u, 1u, 15u, 16u, 17u, 100u, 4096u}) {
    Bytes msg(len);
    for (std::size_t i = 0; i < len; ++i)
      msg[i] = static_cast<std::uint8_t>(i * 7);
    EXPECT_EQ(aes.ctr_crypt(nonce, aes.ctr_crypt(nonce, msg)), msg)
        << "len=" << len;
  }
}

TEST(Aes128, CtrCounterCarriesAcrossBytes) {
  // A nonce of all-0xff forces the counter increment to carry through
  // every byte after the first block.
  const Bytes key = hex_decode("000102030405060708090a0b0c0d0e0f");
  const Bytes nonce(16, 0xff);
  Aes128 aes(key);
  const Bytes msg(48, 0x00);
  const Bytes ct = aes.ctr_crypt(nonce, msg);
  // Decryption must invert even across the wraparound.
  EXPECT_EQ(aes.ctr_crypt(nonce, ct), msg);
  // Keystream blocks must differ (counter must actually change).
  EXPECT_NE(Bytes(ct.begin(), ct.begin() + 16),
            Bytes(ct.begin() + 16, ct.begin() + 32));
}

TEST(Aes128, DifferentKeysProduceDifferentStreams) {
  const Bytes nonce(16, 0);
  const Bytes msg(32, 0);
  const Bytes a = Aes128(hex_decode("00000000000000000000000000000000"))
                      .ctr_crypt(nonce, msg);
  const Bytes b = Aes128(hex_decode("00000000000000000000000000000001"))
                      .ctr_crypt(nonce, msg);
  EXPECT_NE(a, b);
}

TEST(Aes128, RejectsBadSizes) {
  EXPECT_THROW(Aes128(Bytes(15, 0)), std::invalid_argument);
  EXPECT_THROW(Aes128(Bytes(17, 0)), std::invalid_argument);
  Aes128 aes(Bytes(16, 0));
  EXPECT_THROW((void)aes.ctr_crypt(Bytes(8, 0), Bytes(4, 0)),
               std::invalid_argument);
}

}  // namespace
}  // namespace sintra::crypto
