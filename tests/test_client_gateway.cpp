// Client service layer (DESIGN.md §12): wire authentication, the
// gateway's admission/dedup/backpressure pipeline, the client library's
// t+1 reply quorums with a Byzantine replica in the group, and
// deterministic sim-mode replay.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "client/gateway.hpp"
#include "client/keys.hpp"
#include "client/service_client.hpp"
#include "client/sim_net.hpp"
#include "client/wire.hpp"
#include "core/channel/atomic_channel.hpp"
#include "sim_fixture.hpp"

namespace sintra::client {
namespace {

using core::AtomicChannel;
using testing::Cluster;

// ---------------------------------------------------------------------------
// Wire format

TEST(ClientWire, RequestRoundTripAndAuthentication) {
  const Bytes key = to_bytes("k0"), wrong = to_bytes("k1");
  RequestFrame f;
  f.client_id = 7;
  f.seq = 42;
  f.payload = to_bytes("hello");
  const Bytes dgram = encode_request(f, key);

  EXPECT_EQ(peek_type(dgram), FrameType::kRequest);
  EXPECT_EQ(peek_client_id(dgram), 7u);

  const auto back = decode_request(dgram, key);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->client_id, 7u);
  EXPECT_EQ(back->seq, 42u);
  EXPECT_EQ(back->payload, f.payload);

  EXPECT_FALSE(decode_request(dgram, wrong).has_value());
  Bytes flipped = dgram;
  flipped[10] ^= 0x01;
  EXPECT_FALSE(decode_request(flipped, key).has_value());
  Bytes truncated(dgram.begin(), dgram.begin() + 9);
  EXPECT_FALSE(decode_request(truncated, key).has_value());
  EXPECT_FALSE(peek_type(to_bytes("xy")).has_value());
}

TEST(ClientWire, ReplyRoundTripAndChannelWrap) {
  const Bytes key = to_bytes("kr");
  ReplyFrame r;
  r.client_id = 3;
  r.seq = 9;
  r.replica = 2;
  r.status = Status::kOk;
  r.global_seq = 1234;
  r.result = to_bytes("ok:1234");
  const Bytes dgram = encode_reply(r, key);
  EXPECT_EQ(peek_type(dgram), FrameType::kReply);
  const auto back = decode_reply(dgram, key);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->replica, 2u);
  EXPECT_EQ(back->global_seq, 1234u);
  EXPECT_EQ(back->result, r.result);
  Bytes mangled = dgram;
  mangled.back() ^= 0xFF;
  EXPECT_FALSE(decode_reply(mangled, key).has_value());

  WrappedRequest w;
  w.client_id = 3;
  w.seq = 9;
  w.payload = to_bytes("pay");
  w.mac = request_mac(3, 9, w.payload, key);
  const auto un = unwrap_request(wrap_request(w));
  ASSERT_TRUE(un.has_value());
  EXPECT_EQ(un->seq, 9u);
  EXPECT_EQ(un->mac, w.mac);
  // A raw (pre-client-layer) payload is not a client envelope.
  EXPECT_FALSE(unwrap_request(to_bytes("raw payload")).has_value());
}

TEST(ClientKeys, DeriveAndFileRoundTrip) {
  KeyTable table = make_key_table(100, 7);
  EXPECT_NE(table.key(0), table.key(1));
  EXPECT_TRUE(table.known(99));
  EXPECT_FALSE(table.known(100));
  const std::string path = ::testing::TempDir() + "/clients.keys";
  write_key_file(path, table);
  const KeyTable back = read_key_file(path);
  EXPECT_EQ(back.count, table.count);
  EXPECT_EQ(back.key(17), table.key(17));
}

// ---------------------------------------------------------------------------
// Gateway pipeline, driven directly with stub hooks.

struct GatewayHarness {
  KeyTable table = make_key_table(64, 3);
  double now_ms = 0.0;
  std::vector<Bytes> submitted;              // wrapped channel payloads
  std::map<std::string, std::vector<Bytes>> replies;  // addr -> datagrams
  std::unique_ptr<ClientGateway> gw;

  explicit GatewayHarness(ClientGateway::Options opts = {}) {
    gw = std::make_unique<ClientGateway>(opts, [this] { return now_ms; });
    gw->set_key_table(table);
    gw->set_submit([this](Bytes w) {
      submitted.push_back(std::move(w));
      return true;
    });
    gw->set_reply([this](const ClientGateway::Address& a, Bytes d) {
      replies[a].push_back(std::move(d));
    });
  }

  Bytes request(std::uint32_t id, std::uint64_t seq,
                const std::string& payload) {
    RequestFrame f;
    f.client_id = id;
    f.seq = seq;
    f.payload = to_bytes(payload);
    return encode_request(f, table.key(id));
  }

  /// Delivers everything submitted so far (in order) back to the
  /// gateway, as the atomic channel would.
  void deliver_submitted() {
    std::vector<Bytes> batch;
    batch.swap(submitted);
    for (const Bytes& b : batch) gw->on_delivered(b);
  }

  std::optional<ReplyFrame> last_reply(std::uint32_t id,
                                       const std::string& addr) {
    auto it = replies.find(addr);
    if (it == replies.end() || it->second.empty()) return std::nullopt;
    return decode_reply(it->second.back(), table.key(id));
  }
};

TEST(ClientGateway, RejectsBadMacForgedIdAndMalformed) {
  GatewayHarness h;
  // MAC computed with the wrong client's key.
  RequestFrame f;
  f.client_id = 1;
  f.seq = 1;
  f.payload = to_bytes("x");
  h.gw->on_request_datagram(encode_request(f, h.table.key(2)), "a1");
  // Unknown (unregistered) client id.
  KeyTable big = make_key_table(1000, 3);
  RequestFrame g;
  g.client_id = 999;
  g.seq = 1;
  g.payload = to_bytes("y");
  h.gw->on_request_datagram(encode_request(g, big.key(999)), "a2");
  // Not even a frame.
  h.gw->on_request_datagram(to_bytes("garbage"), "a3");

  EXPECT_TRUE(h.submitted.empty());
  // No reply to unauthenticated traffic (no amplification surface).
  EXPECT_TRUE(h.replies.empty());
}

TEST(ClientGateway, AdmitExecuteReplyThenDedupReplay) {
  GatewayHarness h;
  const Bytes req = h.request(5, 1, "add 1");
  h.gw->on_request_datagram(req, "addr5");
  ASSERT_EQ(h.submitted.size(), 1u);
  EXPECT_EQ(h.gw->pending_depth(), 1u);

  h.deliver_submitted();
  EXPECT_EQ(h.gw->pending_depth(), 0u);
  auto reply = h.last_reply(5, "addr5");
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->status, Status::kOk);
  EXPECT_EQ(reply->global_seq, 0u);
  EXPECT_EQ(to_string(reply->result), "ok:0");

  // Byte-identical replay: answered from the reply cache, not re-run.
  h.gw->on_request_datagram(req, "addr5");
  EXPECT_TRUE(h.submitted.empty());
  ASSERT_EQ(h.replies["addr5"].size(), 2u);
  EXPECT_EQ(h.replies["addr5"][0], h.replies["addr5"][1]);
  EXPECT_EQ(h.gw->executed_count(), 1u);
}

TEST(ClientGateway, StaleSeqAfterCacheEviction) {
  ClientGateway::Options opts;
  opts.reply_cache = 1;
  GatewayHarness h(opts);
  h.gw->on_request_datagram(h.request(4, 1, "a"), "x");
  h.deliver_submitted();
  h.gw->on_request_datagram(h.request(4, 2, "b"), "x");
  h.deliver_submitted();  // seq 2's reply evicts seq 1's from the cache
  h.gw->on_request_datagram(h.request(4, 1, "a"), "x");
  auto reply = h.last_reply(4, "x");
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->status, Status::kStale);
  EXPECT_EQ(h.gw->executed_count(), 2u);  // never re-executed
}

TEST(ClientGateway, RateLimitShedsWithOverloadedReply) {
  ClientGateway::Options opts;
  opts.global_rate_per_sec = 1.0;
  opts.global_burst = 2.0;
  opts.rate_per_sec = 1000.0;  // per-client bucket out of the way
  opts.burst = 1000.0;
  GatewayHarness h(opts);
  h.gw->on_request_datagram(h.request(1, 1, "a"), "a1");
  h.gw->on_request_datagram(h.request(2, 1, "b"), "a2");
  h.gw->on_request_datagram(h.request(3, 1, "c"), "a3");  // bucket empty
  EXPECT_EQ(h.submitted.size(), 2u);
  auto reply = h.last_reply(3, "a3");
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->status, Status::kOverloaded);

  // Virtual time refills the bucket: same client admitted later.
  h.now_ms += 2000.0;
  h.gw->on_request_datagram(h.request(3, 1, "c"), "a3");
  EXPECT_EQ(h.submitted.size(), 3u);
}

TEST(ClientGateway, PerClientBucketIsIndependent) {
  ClientGateway::Options opts;
  opts.rate_per_sec = 1.0;
  opts.burst = 1.0;
  GatewayHarness h(opts);
  // Client 1 exhausts its own bucket (deliver in between so dedup/one-
  // outstanding doesn't mask the rate limit)...
  h.gw->on_request_datagram(h.request(1, 1, "a"), "a1");
  h.deliver_submitted();
  h.gw->on_request_datagram(h.request(1, 2, "b"), "a1");
  auto reply = h.last_reply(1, "a1");
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->status, Status::kOverloaded);
  // ...client 2 is unaffected.
  h.gw->on_request_datagram(h.request(2, 1, "c"), "a2");
  EXPECT_EQ(h.submitted.size(), 1u);
}

TEST(ClientGateway, BackpressureUnderFullPipelineWindow) {
  ClientGateway::Options opts;
  opts.max_pending = 2;
  opts.retry_hint_ms = 75;
  GatewayHarness h(opts);
  h.gw->on_request_datagram(h.request(1, 1, "a"), "a1");
  h.gw->on_request_datagram(h.request(2, 1, "b"), "a2");
  h.gw->on_request_datagram(h.request(3, 1, "c"), "a3");  // window full
  EXPECT_EQ(h.submitted.size(), 2u);
  auto reply = h.last_reply(3, "a3");
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->status, Status::kRetryLater);
  EXPECT_EQ(reply->retry_ms, 75u);

  // Deliveries drain the window; the retry is admitted.
  h.deliver_submitted();
  h.gw->on_request_datagram(h.request(3, 1, "c"), "a3");
  EXPECT_EQ(h.submitted.size(), 1u);
}

TEST(ClientGateway, ByzantineProposalRejectedAtDelivery) {
  GatewayHarness h;
  // A corrupted replica proposes a fabricated entry for a registered
  // client: the delivery-time MAC re-check must skip it on every
  // correct replica.
  WrappedRequest forged;
  forged.client_id = 6;
  forged.seq = 1;
  forged.payload = to_bytes("evil");
  forged.mac = to_bytes("not-a-mac");
  EXPECT_FALSE(h.gw->on_delivered(wrap_request(forged)).has_value());
  // Same for an unregistered id.
  forged.client_id = 5000;
  EXPECT_FALSE(h.gw->on_delivered(wrap_request(forged)).has_value());
  EXPECT_EQ(h.gw->executed_count(), 0u);
}

TEST(ClientGateway, OutOfOrderDeliveryExecutesOnceEach) {
  GatewayHarness h;
  // Different replicas proposed different seqs of client 2; the order
  // delivered 2 before 1, and 2 again (two proposers raced).
  auto wrapped = [&](std::uint64_t seq) {
    WrappedRequest w;
    w.client_id = 2;
    w.seq = seq;
    w.payload = to_bytes("p" + std::to_string(seq));
    w.mac = request_mac(2, seq, w.payload, h.table.key(2));
    return wrap_request(w);
  };
  EXPECT_TRUE(h.gw->on_delivered(wrapped(2)).has_value());
  EXPECT_FALSE(h.gw->on_delivered(wrapped(2)).has_value());  // duplicate
  EXPECT_TRUE(h.gw->on_delivered(wrapped(1)).has_value());
  EXPECT_FALSE(h.gw->on_delivered(wrapped(1)).has_value());
  EXPECT_EQ(h.gw->executed_count(), 2u);
}

TEST(ClientGateway, LocalSubmissionsShareTheDedupPolicy) {
  GatewayHarness h;
  h.gw->submit_local(to_bytes("local-0"));
  ASSERT_EQ(h.submitted.size(), 1u);
  const Bytes wrapped = h.submitted[0];
  const auto w = unwrap_request(wrapped);
  ASSERT_TRUE(w.has_value());
  EXPECT_TRUE(is_local_client(w->client_id));

  auto ex = h.gw->on_delivered(wrapped);
  ASSERT_TRUE(ex.has_value());
  EXPECT_TRUE(ex->local);
  EXPECT_EQ(to_string(ex->payload), "local-0");
  // The same wrapped entry delivered again (two replicas proposed
  // something identical-looking) is dropped by the same dedup map.
  EXPECT_FALSE(h.gw->on_delivered(wrapped).has_value());
  // No reply machinery fires for local pseudo-clients.
  EXPECT_TRUE(h.replies.empty());
}

TEST(ClientGateway, LocalQueueDrainsAsWindowFrees) {
  ClientGateway::Options opts;
  opts.max_pending = 2;
  GatewayHarness h(opts);
  for (int i = 0; i < 5; ++i) {
    h.gw->submit_local(to_bytes("m" + std::to_string(i)));
  }
  EXPECT_EQ(h.submitted.size(), 2u);
  EXPECT_FALSE(h.gw->local_queue_empty());
  h.deliver_submitted();
  EXPECT_EQ(h.submitted.size(), 2u);  // two more entered the window
  h.deliver_submitted();
  h.deliver_submitted();
  EXPECT_TRUE(h.gw->local_queue_empty());
  EXPECT_EQ(h.gw->executed_count(), 5u);
}

// ---------------------------------------------------------------------------
// End-to-end in the simulator: gateways on a real atomic channel, real
// quorum-collecting clients, one Byzantine replica mangling replies.

struct SimScenario {
  static constexpr int kClients = 6;
  static constexpr int kRequests = 2;

  Cluster cluster;
  KeyTable table = make_key_table(kClients, 11);
  SimClientNet net;
  std::vector<std::unique_ptr<AtomicChannel>> channels;
  std::vector<std::unique_ptr<ClientGateway>> gateways;
  std::vector<std::unique_ptr<ReplicatedServiceClient>> clients;
  std::vector<std::vector<std::string>> executed;  // per replica
  std::vector<std::vector<std::string>> outcomes;  // per client
  int done = 0;

  explicit SimScenario(std::uint64_t seed, std::uint64_t client_seed,
                       int byzantine = -1)
      : cluster(4, 1, seed),
        net(cluster.sim, [client_seed] {
          SimClientNet::Options o;
          o.latency_ms = 1.5;
          o.jitter_ms = 1.0;
          o.loss = 0.05;
          o.seed = client_seed;
          return o;
        }()) {
    executed.resize(4);
    channels = cluster.make_protocols<AtomicChannel>(
        [&](core::Environment& env, core::Dispatcher& disp, int) {
          AtomicChannel::Config cfg;
          cfg.max_batch_count = 4;
          cfg.pipeline_depth = 2;
          return std::make_unique<AtomicChannel>(env, disp, "cluster.client",
                                                 cfg);
        });
    for (int i = 0; i < 4; ++i) {
      ClientGateway::Options gopts;
      gopts.replica = static_cast<std::uint32_t>(i);
      gopts.n = 4;
      gopts.t = 1;
      gopts.rate_per_sec = 1000.0;
      gopts.burst = 1000.0;
      gateways.push_back(std::make_unique<ClientGateway>(
          gopts, [this] { return cluster.sim.now_ms(); }));
      auto& gw = *gateways.back();
      gw.set_key_table(table);
      gw.set_submit([this, i](Bytes wrapped) {
        if (!channels[static_cast<std::size_t>(i)]->can_send()) return false;
        channels[static_cast<std::size_t>(i)]->send(wrapped);
        return true;
      });
      gw.set_reply(net.attach_gateway(i, gw));
      if (i == byzantine) {
        // This replica's replies are corrupted in flight: clients must
        // still assemble t+1 matching quorums from the honest three.
        gw.set_reply_mangler([](Bytes d) {
          if (!d.empty()) d[d.size() / 2] ^= 0xA5;
          return d;
        });
      }
      channels[static_cast<std::size_t>(i)]->set_deliver_callback(
          [this, i](const Bytes& payload, core::PartyId) {
            if (auto ex =
                    gateways[static_cast<std::size_t>(i)]->on_delivered(
                        payload)) {
              executed[static_cast<std::size_t>(i)].push_back(
                  std::to_string(ex->client_id) + ":" +
                  to_string(ex->payload));
            }
            while (channels[static_cast<std::size_t>(i)]->receive()) {
            }
          });
    }
    outcomes.resize(kClients);
    for (int c = 0; c < kClients; ++c) {
      const auto id = static_cast<std::uint32_t>(c);
      ReplicatedServiceClient::Options copts;
      copts.client_id = id;
      copts.key = table.key(id);
      copts.n = 4;
      copts.t = 1;
      copts.rto_ms = 400.0;
      copts.max_attempts = 20;
      clients.push_back(std::make_unique<ReplicatedServiceClient>(
          copts, net.client_hooks(id)));
      net.register_client(id, [this, c](BytesView d) {
        clients[static_cast<std::size_t>(c)]->on_datagram(d);
      });
    }
  }

  void start() {
    for (int c = 0; c < kClients; ++c) {
      for (int k = 0; k < kRequests; ++k) {
        submit(c, k);
      }
    }
  }

  void submit(int c, int k) {
    clients[static_cast<std::size_t>(c)]->submit(
        to_bytes("c" + std::to_string(c) + ":req" + std::to_string(k)),
        [this, c](ReplicatedServiceClient::Outcome o) {
          outcomes[static_cast<std::size_t>(c)].push_back(
              (o.ok ? "ok@" + std::to_string(o.global_seq) + ":" +
                          to_string(o.result)
                    : std::string("fail")));
          ++done;
        });
  }

  bool run() {
    cluster.sim.post(0.0, [this] { start(); });
    return cluster.sim.run_until(
        [this] { return done >= kClients * kRequests; }, 4e6);
  }
};

TEST(ClientServiceE2E, QuorumAssemblyWithByzantineReplica) {
  SimScenario s(/*seed=*/1, /*client_seed=*/21, /*byzantine=*/3);
  ASSERT_TRUE(s.run());
  for (int c = 0; c < SimScenario::kClients; ++c) {
    ASSERT_EQ(s.outcomes[static_cast<std::size_t>(c)].size(),
              static_cast<std::size_t>(SimScenario::kRequests));
    for (const auto& o : s.outcomes[static_cast<std::size_t>(c)]) {
      EXPECT_TRUE(o.rfind("ok@", 0) == 0) << "client " << c << ": " << o;
    }
  }
  // Every replica executed the identical sequence (the quorum argument's
  // premise), and each request exactly once.
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(s.executed[static_cast<std::size_t>(i)], s.executed[0]);
  }
  EXPECT_EQ(s.executed[0].size(),
            static_cast<std::size_t>(SimScenario::kClients *
                                     SimScenario::kRequests));
}

TEST(ClientServiceE2E, DeterministicReplayAcrossSeeds) {
  for (const std::uint64_t seed : {1ull, 2ull}) {
    SimScenario a(seed, 100 + seed);
    SimScenario b(seed, 100 + seed);
    ASSERT_TRUE(a.run());
    ASSERT_TRUE(b.run());
    // Same seeds -> bit-identical execution sequences and outcomes.
    EXPECT_EQ(a.executed, b.executed);
    EXPECT_EQ(a.outcomes, b.outcomes);
  }
}

}  // namespace
}  // namespace sintra::client
