#include "util/serde.hpp"

#include <gtest/gtest.h>

namespace sintra {
namespace {

TEST(Serde, RoundTripScalars) {
  Writer w;
  w.u8(0xab);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.empty());
}

TEST(Serde, BigEndianLayout) {
  Writer w;
  w.u32(0x01020304);
  EXPECT_EQ(w.data(), (Bytes{0x01, 0x02, 0x03, 0x04}));
}

TEST(Serde, RoundTripBytesAndStrings) {
  Writer w;
  w.bytes(to_bytes("payload"));
  w.str("pid.0.echo");
  w.bytes(Bytes{});
  Reader r(w.data());
  EXPECT_EQ(to_string(r.bytes()), "payload");
  EXPECT_EQ(r.str(), "pid.0.echo");
  EXPECT_TRUE(r.bytes().empty());
  r.expect_end();
}

TEST(Serde, RawHasNoPrefix) {
  Writer w;
  w.raw(to_bytes("xyz"));
  EXPECT_EQ(w.data().size(), 3u);
  Reader r(w.data());
  EXPECT_EQ(to_string(r.raw(3)), "xyz");
}

TEST(Serde, TruncatedScalarThrows) {
  const Bytes two{0x00, 0x01};
  Reader r(two);
  EXPECT_THROW(r.u32(), SerdeError);
}

TEST(Serde, TruncatedBytesThrows) {
  Writer w;
  w.u32(100);  // claims 100 bytes follow
  w.raw(to_bytes("short"));
  Reader r(w.data());
  EXPECT_THROW(r.bytes(), SerdeError);
}

TEST(Serde, TrailingGarbageDetected) {
  Writer w;
  w.u8(1);
  w.u8(2);
  Reader r(w.data());
  r.u8();
  EXPECT_THROW(r.expect_end(), SerdeError);
  r.u8();
  EXPECT_NO_THROW(r.expect_end());
}

TEST(Serde, RemainingTracksPosition) {
  Writer w;
  w.u64(7);
  Reader r(w.data());
  EXPECT_EQ(r.remaining(), 8u);
  r.u32();
  EXPECT_EQ(r.remaining(), 4u);
}

}  // namespace
}  // namespace sintra
