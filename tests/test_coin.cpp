#include <gtest/gtest.h>

#include <map>

#include "crypto/coin.hpp"

namespace sintra::crypto {
namespace {

struct CoinFixture {
  CoinDeal deal;
  std::vector<std::unique_ptr<ThresholdCoin>> parties;
};

CoinFixture make_coin(int n, int k, std::uint64_t seed = 0xc0117055) {
  Rng rng(seed);
  static const DlogGroup grp = [] {
    Rng g(0x7357);
    return DlogGroup::generate(g, 256, 96);
  }();
  CoinFixture fx;
  fx.deal = deal_coin(rng, n, k, grp);
  for (int i = 0; i < n; ++i) fx.parties.push_back(fx.deal.make_party(i));
  return fx;
}

std::vector<std::pair<int, Bytes>> release_shares(CoinFixture& fx,
                                                  BytesView name,
                                                  const std::vector<int>& who) {
  std::vector<std::pair<int, Bytes>> out;
  for (int i : who) {
    out.emplace_back(i, fx.parties[static_cast<std::size_t>(i)]->release(name));
  }
  return out;
}

TEST(Coin, AllSubsetsAgreeOnValue) {
  CoinFixture fx = make_coin(4, 2);
  const Bytes name = to_bytes("abba.round.1");
  auto all = release_shares(fx, name, {0, 1, 2, 3});

  Bytes reference;
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      std::vector<std::pair<int, Bytes>> subset{all[static_cast<std::size_t>(a)],
                                                all[static_cast<std::size_t>(b)]};
      const Bytes v = fx.parties[0]->assemble(name, subset, 8);
      if (reference.empty()) {
        reference = v;
      } else {
        EXPECT_EQ(v, reference) << a << "," << b;
      }
    }
  }
  EXPECT_EQ(reference.size(), 8u);
}

TEST(Coin, DifferentNamesGiveIndependentValues) {
  CoinFixture fx = make_coin(4, 2);
  std::map<Bytes, int> seen;
  int bits[2] = {0, 0};
  for (int i = 0; i < 32; ++i) {
    Writer w;
    w.u32(static_cast<std::uint32_t>(i));
    const Bytes name = w.data();
    auto shares = release_shares(fx, name, {0, 1});
    const bool bit = fx.parties[2]->assemble_bit(name, shares);
    ++bits[bit ? 1 : 0];
  }
  // 32 tosses: both outcomes should appear (p(fail) = 2^-31).
  EXPECT_GT(bits[0], 0);
  EXPECT_GT(bits[1], 0);
}

TEST(Coin, DeterministicPerName) {
  CoinFixture fx = make_coin(4, 2);
  const Bytes name = to_bytes("same coin");
  auto s1 = release_shares(fx, name, {0, 1});
  auto s2 = release_shares(fx, name, {2, 3});
  EXPECT_EQ(fx.parties[0]->assemble(name, s1, 16),
            fx.parties[0]->assemble(name, s2, 16));
}

TEST(Coin, SharesVerify) {
  CoinFixture fx = make_coin(4, 2);
  const Bytes name = to_bytes("verify me");
  for (int i = 0; i < 4; ++i) {
    const Bytes share = fx.parties[static_cast<std::size_t>(i)]->release(name);
    for (int j = 0; j < 4; ++j) {
      EXPECT_TRUE(
          fx.parties[static_cast<std::size_t>(j)]->verify_share(name, i, share));
    }
  }
}

TEST(Coin, ShareBoundToName) {
  CoinFixture fx = make_coin(4, 2);
  const Bytes share = fx.parties[0]->release(to_bytes("coin A"));
  EXPECT_FALSE(fx.parties[1]->verify_share(to_bytes("coin B"), 0, share));
}

TEST(Coin, ShareBoundToSigner) {
  CoinFixture fx = make_coin(4, 2);
  const Bytes share = fx.parties[0]->release(to_bytes("coin"));
  EXPECT_FALSE(fx.parties[1]->verify_share(to_bytes("coin"), 1, share));
  EXPECT_FALSE(fx.parties[1]->verify_share(to_bytes("coin"), -1, share));
  EXPECT_FALSE(fx.parties[1]->verify_share(to_bytes("coin"), 7, share));
}

TEST(Coin, ForgedShareRejected) {
  CoinFixture fx = make_coin(4, 2);
  const Bytes name = to_bytes("coin");
  Bytes share = fx.parties[0]->release(name);
  share[share.size() / 2] ^= 0x02;
  EXPECT_FALSE(fx.parties[1]->verify_share(name, 0, share));
  EXPECT_FALSE(fx.parties[1]->verify_share(name, 0, Bytes{}));
  EXPECT_FALSE(fx.parties[1]->verify_share(name, 0, Bytes(10, 0xab)));
}

TEST(Coin, AssembleRequiresKShares) {
  CoinFixture fx = make_coin(4, 3);
  const Bytes name = to_bytes("coin");
  auto shares = release_shares(fx, name, {0, 1});
  EXPECT_THROW((void)fx.parties[0]->assemble(name, shares, 8),
               std::invalid_argument);
}

TEST(Coin, AssembleRejectsDuplicates) {
  CoinFixture fx = make_coin(4, 2);
  const Bytes name = to_bytes("coin");
  const Bytes s0 = fx.parties[0]->release(name);
  std::vector<std::pair<int, Bytes>> dup{{0, s0}, {0, s0}};
  EXPECT_THROW((void)fx.parties[0]->assemble(name, dup, 8),
               std::invalid_argument);
}

TEST(Coin, UnpredictableWithoutKShares) {
  // With k-1 shares, the coin value depends on the missing share; releasing
  // it from two *different* deals with identical released subsets must give
  // different outputs (a smoke test of unpredictability, not a proof).
  CoinFixture a = make_coin(4, 2, 111);
  CoinFixture b = make_coin(4, 2, 222);
  const Bytes name = to_bytes("secret coin");
  auto sa = release_shares(a, name, {0, 1});
  auto sb = release_shares(b, name, {0, 1});
  EXPECT_NE(a.parties[0]->assemble(name, sa, 16),
            b.parties[0]->assemble(name, sb, 16));
}

TEST(Coin, BitIsBalancedAcrossNames) {
  CoinFixture fx = make_coin(4, 2);
  int heads = 0;
  const int kTosses = 200;
  for (int i = 0; i < kTosses; ++i) {
    Writer w;
    w.str("balance");
    w.u32(static_cast<std::uint32_t>(i));
    auto shares = release_shares(fx, w.data(), {1, 3});
    heads += fx.parties[0]->assemble_bit(w.data(), shares) ? 1 : 0;
  }
  EXPECT_GT(heads, 60);
  EXPECT_LT(heads, 140);
}

TEST(Coin, VerifyOnlyHandleCannotRelease) {
  CoinFixture fx = make_coin(4, 2);
  auto external = fx.deal.make_party(-1);
  EXPECT_THROW((void)external->release(to_bytes("x")), std::logic_error);
  const Bytes share = fx.parties[0]->release(to_bytes("x"));
  EXPECT_TRUE(external->verify_share(to_bytes("x"), 0, share));
}

TEST(Coin, DealRejectsBadParameters) {
  Rng rng(1);
  const DlogGroup grp = DlogGroup::generate(rng, 200, 64);
  EXPECT_THROW((void)deal_coin(rng, 4, 5, grp), std::invalid_argument);
  EXPECT_THROW((void)deal_coin(rng, 0, 0, grp), std::invalid_argument);
}

}  // namespace
}  // namespace sintra::crypto
