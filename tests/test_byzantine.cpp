// Active-adversary tests: corrupted parties use their REAL key material
// (threshold-signature shares, link keys) to mount protocol-level
// attacks — equivocating votes, conflicting signed channel messages —
// not just garbage.  Safety must hold in every case.
#include <gtest/gtest.h>

#include "core/agreement/binary_agreement.hpp"
#include "core/channel/atomic_channel.hpp"
#include "sim_fixture.hpp"

namespace sintra::core {
namespace {

using testing::Cluster;

// Rebuilds the agreement engine's pre-vote statement (kept in sync with
// binary_agreement.cpp; a mismatch makes these tests vacuous, which the
// SharesActuallyVerify test below guards against).
Bytes pre_statement(const std::string& pid, int r, bool b) {
  Writer w;
  w.str("ba-pre");
  w.str(pid);
  w.u32(static_cast<std::uint32_t>(r));
  w.u8(b ? 1 : 0);
  return std::move(w).take();
}

// Wire encoding of a round-1 pre-vote as the engine expects it.
Bytes encode_round1_prevote(bool b, BytesView share) {
  Writer w;
  w.u8(1);  // kPreVote
  w.u32(1);  // round 1
  w.u8(b ? 1 : 0);
  w.bytes(Bytes{});  // proof
  w.u8(1);           // justification: round-1
  w.bytes(Bytes{});  // just.sig
  w.u32(0);          // no coin shares
  w.bytes(share);
  return std::move(w).take();
}

TEST(ByzantineAgreement, SharesActuallyVerify) {
  // Guard: the hand-crafted pre-vote must be accepted as genuine by the
  // threshold scheme, otherwise the equivocation tests prove nothing.
  Cluster c(4, 1, 1);
  const auto& keys = c.deal.parties[3];
  const Bytes share =
      keys.sig_agreement->sign_share(pre_statement("byz.pid", 1, true));
  EXPECT_TRUE(c.deal.parties[0].sig_agreement->verify_share(
      pre_statement("byz.pid", 1, true), 3, share));
}

TEST(ByzantineAgreement, EquivocatingPreVotesCannotBreakAgreement) {
  // Corrupted party 3 signs pre-vote(1,0) for parties {1} and
  // pre-vote(1,1) for parties {0,2} — a real equivocation with valid
  // threshold shares.  Honest parties (who propose a mix) must still
  // agree on a single value.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Cluster c(4, 1, seed, 2.0, 0.35);
    const std::string pid = "byz.equiv" + std::to_string(seed);
    auto ps = c.make_protocols<BinaryAgreement>(
        [&](Environment& env, Dispatcher& disp, int) {
          return std::make_unique<BinaryAgreement>(env, disp, pid);
        });
    sim::Adversary adv(c.sim, c.deal);
    adv.corrupt(3);
    const auto& keys = adv.keys_of(3);
    const Bytes share0 =
        keys.sig_agreement->sign_share(pre_statement(pid, 1, false));
    const Bytes share1 =
        keys.sig_agreement->sign_share(pre_statement(pid, 1, true));
    adv.send_as(3, 1, pid, encode_round1_prevote(false, share0), 0.5);
    adv.send_as(3, 0, pid, encode_round1_prevote(true, share1), 0.5);
    adv.send_as(3, 2, pid, encode_round1_prevote(true, share1), 0.5);

    c.sim.at(1.0, 0, [&] { ps[0]->propose(true); });
    c.sim.at(1.0, 1, [&] { ps[1]->propose(false); });
    c.sim.at(1.0, 2, [&] { ps[2]->propose(true); });
    ASSERT_TRUE(c.sim.run_until(
        [&] {
          return ps[0]->decided() && ps[1]->decided() && ps[2]->decided();
        },
        600000))
        << "seed " << seed;
    std::set<bool> values{*ps[0]->decided(), *ps[1]->decided(),
                          *ps[2]->decided()};
    EXPECT_EQ(values.size(), 1u) << "seed " << seed;
  }
}

TEST(ByzantineAtomic, EquivocatingSignedMessagesKeepOrderConsistent) {
  // Corrupted party 3 signs two DIFFERENT payloads for the same round and
  // sends one version to each half of the group (valid standard
  // signatures under its real key).  Total order must hold regardless of
  // which (if either) gets delivered.
  Cluster c(4, 1, 5);
  auto chans = c.make_protocols<AtomicChannel>(
      [&](Environment& env, Dispatcher& disp, int) {
        return std::make_unique<AtomicChannel>(env, disp, "byz.ac");
      });
  sim::Adversary adv(c.sim, c.deal);
  adv.corrupt(3);
  const auto& keys = adv.keys_of(3);

  auto signed_wire = [&](int round, std::uint64_t seq,
                         const std::string& user_payload) {
    // Payload as the channel frames it: marker byte 0 + user bytes.
    Writer pw;
    pw.u8(0);
    pw.raw(to_bytes(user_payload));
    const Bytes payload = std::move(pw).take();
    // Statement as atomic_channel.cpp signs it.
    Writer sw;
    sw.str("ac-sign");
    sw.str("byz.ac");
    sw.u32(static_cast<std::uint32_t>(round));
    sw.u32(3);  // origin = the corrupted party
    sw.u64(seq);
    sw.bytes(payload);
    const Bytes sig = keys.sign(sw.data());
    Writer w;
    w.u8(1);  // kSignedTag
    w.u32(static_cast<std::uint32_t>(round));
    w.u32(3);  // signer
    w.u32(3);  // origin
    w.u64(seq);
    w.bytes(payload);
    w.bytes(sig);
    return std::move(w).take();
  };

  adv.send_as(3, 0, "byz.ac", signed_wire(1, 0, "EVIL-A"), 0.0);
  adv.send_as(3, 1, "byz.ac", signed_wire(1, 0, "EVIL-B"), 0.0);
  adv.send_as(3, 2, "byz.ac", signed_wire(1, 0, "EVIL-A"), 0.0);

  for (int m = 0; m < 3; ++m) {
    c.sim.at(1.0 + m, 0, [&, m] {
      chans[0]->send(to_bytes("honest-" + std::to_string(m)));
    });
  }
  ASSERT_TRUE(c.sim.run_until(
      [&] {
        for (int i = 0; i < 3; ++i) {
          int honest = 0;
          for (const auto& d :
               chans[static_cast<std::size_t>(i)]->deliveries()) {
            if (to_string(d.payload).rfind("honest", 0) == 0) ++honest;
          }
          if (honest < 3) return false;
        }
        return true;
      },
      4e6));
  auto seq_of = [](const AtomicChannel& ch) {
    std::vector<std::string> out;
    for (const auto& d : ch.deliveries()) out.push_back(to_string(d.payload));
    return out;
  };
  const auto expected = seq_of(*chans[0]);
  for (int i = 1; i < 3; ++i) {
    EXPECT_EQ(seq_of(*chans[static_cast<std::size_t>(i)]), expected) << i;
  }
  // At most ONE of the equivocating payloads may appear (same (origin,seq)
  // key delivered at most once), and if it appears it is identical at all
  // honest parties (already implied by the sequence equality above).
  int evil = 0;
  for (const auto& v : expected) {
    if (v.rfind("EVIL", 0) == 0) ++evil;
  }
  EXPECT_LE(evil, 1);
}

TEST(ByzantineAtomic, ReplayedSignedMessagesDoNotDuplicateDelivery) {
  // The adversary replays an honest party's round-1 signed message in
  // later rounds (same signature — wrong round statement, so it must be
  // rejected) and replays the same wire bytes many times.
  Cluster c(4, 1, 6);
  auto chans = c.make_protocols<AtomicChannel>(
      [&](Environment& env, Dispatcher& disp, int) {
        return std::make_unique<AtomicChannel>(env, disp, "byz.replay");
      });
  sim::Adversary adv(c.sim, c.deal);
  adv.corrupt(3);

  c.sim.at(0.0, 0, [&] { chans[0]->send(to_bytes("once")); });
  ASSERT_TRUE(c.sim.run_until(
      [&] {
        return chans[1]->deliveries().size() >= 1 &&
               chans[2]->deliveries().size() >= 1;
      },
      4e6));

  // Replay an honest signed frame: re-sign "once" as round 50 under the
  // corrupted party's key but claim origin 0 — signature check must fail
  // because party 3's key cannot speak for origin 0's signer slot.
  // (signer field == link sender is enforced, so the adversary can only
  // replay as itself.)
  Writer pw;
  pw.u8(0);
  pw.raw(to_bytes("once"));
  const Bytes payload = std::move(pw).take();
  Writer w;
  w.u8(1);
  w.u32(50);
  w.u32(0);  // claims signer 0
  w.u32(0);
  w.u64(0);
  w.bytes(payload);
  w.bytes(Bytes(64, 0x99));
  adv.send_as_all(3, "byz.replay", w.data(), c.sim.now_ms() + 1);

  c.sim.at(c.sim.now_ms() + 2, 1, [&] { chans[1]->send(to_bytes("more")); });
  ASSERT_TRUE(c.sim.run_until(
      [&] {
        return chans[0]->deliveries().size() >= 2 &&
               chans[2]->deliveries().size() >= 2;
      },
      4e6));
  // "once" must appear exactly once at every honest party.
  for (int i = 0; i < 3; ++i) {
    int count = 0;
    for (const auto& d : chans[static_cast<std::size_t>(i)]->deliveries()) {
      if (to_string(d.payload) == "once") ++count;
    }
    EXPECT_EQ(count, 1) << i;
  }
}

TEST(ByzantineCoin, ValidShareForWrongRoundRejectedInProtocol) {
  // A corrupted party releases a genuinely valid coin share for round 2
  // but labels it round 1; verify_share must bind the round name.
  Cluster c(4, 1, 7);
  const std::string pid = "byz.coin";
  const auto& keys = c.deal.parties[3];
  Writer name1;
  name1.str("ba-coin");
  name1.str(pid);
  name1.u32(1);
  Writer name2;
  name2.str("ba-coin");
  name2.str(pid);
  name2.u32(2);
  const Bytes share_r2 = keys.coin->release(name2.data());
  EXPECT_TRUE(c.deal.parties[0].coin->verify_share(name2.data(), 3, share_r2));
  EXPECT_FALSE(c.deal.parties[0].coin->verify_share(name1.data(), 3, share_r2));
}

}  // namespace
}  // namespace sintra::core
