// Cost-model regression canaries: the simulator's virtual timing drives
// every reproduced figure, so pin its behaviour with coarse bounds and a
// determinism check.  A change that breaks these very likely invalidates
// EXPERIMENTS.md.
#include <gtest/gtest.h>

#include "bench/common.hpp"

namespace sintra::bench {
namespace {

const crypto::Deal& paper_deal() {
  static const crypto::Deal deal = crypto::run_dealer(paper_dealer_config(4, 1));
  return deal;
}

TEST(CostModel, LanAtomicLatencyInCalibratedBand) {
  WorkloadOptions opt;
  opt.kind = ChannelKind::kAtomic;
  opt.senders = {0};
  opt.total_messages = 10;
  opt.per_message_cpu_ms = 12.0;  // the calibrated default
  const WorkloadResult res = run_workload(sim::lan_setup(), paper_deal(), opt);
  ASSERT_TRUE(res.completed);
  // Paper: 0.69 s.  Anything outside [0.3, 3] means the cost model moved.
  EXPECT_GT(res.mean_interdelivery_s(), 0.3);
  EXPECT_LT(res.mean_interdelivery_s(), 3.0);
}

TEST(CostModel, WanSlowerThanLan) {
  WorkloadOptions opt;
  opt.kind = ChannelKind::kAtomic;
  opt.senders = {0};
  opt.total_messages = 10;
  const double lan =
      run_workload(sim::lan_setup(), paper_deal(), opt).mean_interdelivery_s();
  const double wan = run_workload(sim::internet_setup(), paper_deal(), opt)
                         .mean_interdelivery_s();
  EXPECT_GT(wan, lan * 1.2);
}

TEST(CostModel, ChannelOrderingMatchesTable1) {
  // reliable ≈ consistent < atomic < secure, on the LAN, always.
  WorkloadOptions opt;
  opt.senders = {0};
  opt.total_messages = 10;
  std::map<ChannelKind, double> s;
  for (ChannelKind k : {ChannelKind::kAtomic, ChannelKind::kSecure,
                        ChannelKind::kReliable, ChannelKind::kConsistent}) {
    opt.kind = k;
    const WorkloadResult res = run_workload(sim::lan_setup(), paper_deal(), opt);
    ASSERT_TRUE(res.completed) << channel_name(k);
    s[k] = res.mean_interdelivery_s();
  }
  EXPECT_LT(s[ChannelKind::kReliable], s[ChannelKind::kAtomic]);
  EXPECT_LT(s[ChannelKind::kConsistent], s[ChannelKind::kAtomic]);
  EXPECT_LT(s[ChannelKind::kAtomic], s[ChannelKind::kSecure]);
}

TEST(CostModel, WorkloadsAreDeterministic) {
  WorkloadOptions opt;
  opt.kind = ChannelKind::kAtomic;
  opt.senders = {0, 2};
  opt.total_messages = 8;
  const WorkloadResult a = run_workload(sim::lan_setup(), paper_deal(), opt);
  const WorkloadResult b = run_workload(sim::lan_setup(), paper_deal(), opt);
  ASSERT_EQ(a.deliveries.size(), b.deliveries.size());
  for (std::size_t i = 0; i < a.deliveries.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.deliveries[i].time_ms, b.deliveries[i].time_ms);
    EXPECT_EQ(a.deliveries[i].origin, b.deliveries[i].origin);
  }
}

TEST(CostModel, SeedChangesSchedule) {
  WorkloadOptions opt;
  opt.kind = ChannelKind::kAtomic;
  opt.senders = {0};
  opt.total_messages = 8;
  opt.seed = 1;
  const WorkloadResult a = run_workload(sim::lan_setup(), paper_deal(), opt);
  opt.seed = 2;
  const WorkloadResult b = run_workload(sim::lan_setup(), paper_deal(), opt);
  ASSERT_TRUE(a.completed && b.completed);
  // Jitter differs => at least one delivery timestamp differs.
  bool any_diff = false;
  for (std::size_t i = 0; i < std::min(a.deliveries.size(), b.deliveries.size());
       ++i) {
    if (a.deliveries[i].time_ms != b.deliveries[i].time_ms) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace sintra::bench
