#include "core/agreement/binary_agreement.hpp"

#include <gtest/gtest.h>

#include "core/agreement/validated_agreement.hpp"
#include "sim_fixture.hpp"

namespace sintra::core {
namespace {

using testing::Cluster;

std::vector<std::unique_ptr<BinaryAgreement>> make_ba(Cluster& c,
                                                      const std::string& pid) {
  return c.make_protocols<BinaryAgreement>(
      [&](Environment& env, Dispatcher& disp, int) {
        return std::make_unique<BinaryAgreement>(env, disp, pid);
      });
}

template <typename P>
bool all_decided(const std::vector<std::unique_ptr<P>>& ps,
                 const std::set<int>& skip = {}) {
  for (std::size_t i = 0; i < ps.size(); ++i) {
    if (skip.contains(static_cast<int>(i))) continue;
    if (!ps[i]->decided().has_value()) return false;
  }
  return true;
}

template <typename P>
std::set<bool> decision_values(const std::vector<std::unique_ptr<P>>& ps,
                               const std::set<int>& skip = {}) {
  std::set<bool> out;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    if (skip.contains(static_cast<int>(i))) continue;
    if (ps[i]->decided().has_value()) out.insert(*ps[i]->decided());
  }
  return out;
}

TEST(BinaryAgreement, UnanimousProposalDecidesThatValue) {
  for (bool value : {false, true}) {
    Cluster c(4, 1, value ? 11 : 12);
    auto ps = make_ba(c, value ? "ba.u1" : "ba.u0");
    for (int i = 0; i < 4; ++i) {
      c.sim.at(0.0, i, [&, i] { ps[static_cast<std::size_t>(i)]->propose(value); });
    }
    ASSERT_TRUE(c.sim.run_until([&] { return all_decided(ps); }, 60000));
    EXPECT_EQ(decision_values(ps), std::set<bool>{value});
  }
}

TEST(BinaryAgreement, MixedProposalsAgreeOnProposedValue) {
  // 2 parties propose 1, 2 propose 0: must agree, and on a proposed value
  // (both are proposed here, so just agreement + termination).
  Cluster c(4, 1, 21);
  auto ps = make_ba(c, "ba.mixed");
  for (int i = 0; i < 4; ++i) {
    c.sim.at(0.0, i, [&, i] { ps[static_cast<std::size_t>(i)]->propose(i % 2 == 0); });
  }
  ASSERT_TRUE(c.sim.run_until([&] { return all_decided(ps); }, 120000));
  EXPECT_EQ(decision_values(ps).size(), 1u);
}

TEST(BinaryAgreement, MixedProposalsManySeeds) {
  // Randomized protocol: exercise several schedules; agreement must hold
  // in every one.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Cluster c(4, 1, seed, /*latency=*/2.0, /*jitter=*/0.45);
    auto ps = make_ba(c, "ba.seed" + std::to_string(seed));
    for (int i = 0; i < 4; ++i) {
      c.sim.at(static_cast<double>(i), i,
               [&, i] { ps[static_cast<std::size_t>(i)]->propose(i < 2); });
    }
    ASSERT_TRUE(c.sim.run_until([&] { return all_decided(ps); }, 120000))
        << "seed " << seed;
    EXPECT_EQ(decision_values(ps).size(), 1u) << "seed " << seed;
  }
}

TEST(BinaryAgreement, ValidityUnderUnanimity) {
  // If all honest parties propose 0, the decision must be 0 even with a
  // crashed party (t = 1).
  Cluster c(4, 1, 31);
  auto ps = make_ba(c, "ba.validity");
  c.sim.node(3).crash();
  for (int i = 0; i < 3; ++i) {
    c.sim.at(0.0, i, [&, i] { ps[static_cast<std::size_t>(i)]->propose(false); });
  }
  ASSERT_TRUE(c.sim.run_until([&] { return all_decided(ps, {3}); }, 120000));
  EXPECT_EQ(decision_values(ps, {3}), std::set<bool>{false});
}

TEST(BinaryAgreement, ToleratesCrashWithMixedProposals) {
  Cluster c(4, 1, 41);
  auto ps = make_ba(c, "ba.crash");
  c.sim.node(2).crash();
  c.sim.at(0.0, 0, [&] { ps[0]->propose(true); });
  c.sim.at(0.0, 1, [&] { ps[1]->propose(false); });
  c.sim.at(0.0, 3, [&] { ps[3]->propose(true); });
  ASSERT_TRUE(c.sim.run_until([&] { return all_decided(ps, {2}); }, 240000));
  EXPECT_EQ(decision_values(ps, {2}).size(), 1u);
}

TEST(BinaryAgreement, AgreementUnderByzantineGarbage) {
  // A corrupted party floods every message type with garbage; honest
  // parties must still agree on a proposed value.
  Cluster c(4, 1, 51);
  auto ps = make_ba(c, "ba.garbage");
  sim::Adversary adv(c.sim, c.deal);
  adv.corrupt(3);
  for (int burst = 0; burst < 3; ++burst) {
    for (std::uint8_t tag = 0; tag <= 5; ++tag) {
      Writer w;
      w.u8(tag);
      w.u32(1);
      w.raw(Bytes(17, static_cast<std::uint8_t>(tag * 7 + burst)));
      adv.send_as_all(3, ps[0]->pid(), w.data(), burst * 5.0);
    }
  }
  for (int i = 0; i < 3; ++i) {
    c.sim.at(1.0, i, [&, i] { ps[static_cast<std::size_t>(i)]->propose(i == 0); });
  }
  ASSERT_TRUE(c.sim.run_until([&] { return all_decided(ps, {3}); }, 240000));
  EXPECT_EQ(decision_values(ps, {3}).size(), 1u);
}

TEST(BinaryAgreement, ForgedDecideRejected) {
  // A corrupted party sends DECIDE with a bogus threshold signature;
  // honest parties must not adopt it.
  Cluster c(4, 1, 61);
  auto ps = make_ba(c, "ba.forgedecide");
  sim::Adversary adv(c.sim, c.deal);
  adv.corrupt(1);
  Writer w;
  w.u8(4);  // kDecide
  w.u32(1);
  w.u8(1);
  w.bytes(Bytes{});
  w.bytes(Bytes(64, 0x5a));
  adv.send_as_all(1, ps[0]->pid(), w.data(), 0.0);
  c.sim.run(2000);
  for (int i : {0, 2, 3}) {
    EXPECT_FALSE(ps[static_cast<std::size_t>(i)]->decided().has_value()) << i;
  }
  // And the protocol still completes afterwards.
  for (int i : {0, 2, 3}) {
    c.sim.at(c.sim.now_ms(), i,
             [&, i] { ps[static_cast<std::size_t>(i)]->propose(true); });
  }
  ASSERT_TRUE(c.sim.run_until([&] { return all_decided(ps, {1}); }, 240000));
  EXPECT_EQ(decision_values(ps, {1}), std::set<bool>{true});
}

TEST(BinaryAgreement, DecideCallbackFires) {
  Cluster c(4, 1, 71);
  auto ps = make_ba(c, "ba.cb");
  int fired = 0;
  std::optional<bool> got;
  ps[2]->set_decide_callback([&](bool b) {
    ++fired;
    got = b;
  });
  for (int i = 0; i < 4; ++i) {
    c.sim.at(0.0, i, [&, i] { ps[static_cast<std::size_t>(i)]->propose(true); });
  }
  ASSERT_TRUE(c.sim.run_until([&] { return all_decided(ps); }, 60000));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(got, true);
}

TEST(BinaryAgreement, LargerGroupMixed) {
  Cluster c(7, 2, 81);
  auto ps = make_ba(c, "ba.n7");
  for (int i = 0; i < 7; ++i) {
    c.sim.at(0.0, i, [&, i] { ps[static_cast<std::size_t>(i)]->propose(i % 3 == 0); });
  }
  ASSERT_TRUE(c.sim.run_until([&] { return all_decided(ps); }, 240000));
  EXPECT_EQ(decision_values(ps).size(), 1u);
}

TEST(BinaryAgreement, WorksWithShoupThresholdSignatures) {
  Cluster c(4, 1, 91, 2.0, 0.25, crypto::SigImpl::kThresholdRsa);
  auto ps = make_ba(c, "ba.shoup");
  for (int i = 0; i < 4; ++i) {
    c.sim.at(0.0, i, [&, i] { ps[static_cast<std::size_t>(i)]->propose(i % 2 == 0); });
  }
  ASSERT_TRUE(c.sim.run_until([&] { return all_decided(ps); }, 600000));
  EXPECT_EQ(decision_values(ps).size(), 1u);
}

// --- Validated agreement ---

BinaryValidator even_proof_validator() {
  // A toy external-validity predicate: a proof for value b is a nonempty
  // byte string whose first byte has parity b.
  return [](bool value, BytesView proof) {
    return !proof.empty() && (proof[0] % 2 == (value ? 1 : 0));
  };
}

TEST(ValidatedAgreement, DecisionCarriesValidProof) {
  Cluster c(4, 1, 101);
  auto ps = c.make_protocols<ValidatedAgreement>(
      [&](Environment& env, Dispatcher& disp, int) {
        return std::make_unique<ValidatedAgreement>(env, disp, "vba.proof",
                                                    even_proof_validator());
      });
  const Bytes proof1{1, 0xaa};
  const Bytes proof0{2, 0xbb};
  for (int i = 0; i < 4; ++i) {
    c.sim.at(0.0, i, [&, i] {
      const bool v = i < 2;
      ps[static_cast<std::size_t>(i)]->propose(v, v ? proof1 : proof0);
    });
  }
  ASSERT_TRUE(c.sim.run_until([&] { return all_decided(ps); }, 240000));
  const bool decided = *ps[0]->decided();
  for (const auto& p : ps) {
    EXPECT_EQ(*p->decided(), decided);
    EXPECT_TRUE(even_proof_validator()(decided, p->proof()));
  }
}

TEST(ValidatedAgreement, ProposeRejectsInvalidProof) {
  Cluster c(4, 1, 111);
  auto ps = c.make_protocols<ValidatedAgreement>(
      [&](Environment& env, Dispatcher& disp, int) {
        return std::make_unique<ValidatedAgreement>(env, disp, "vba.badproof",
                                                    even_proof_validator());
      });
  EXPECT_THROW(ps[0]->propose(true, Bytes{2}), std::invalid_argument);
  EXPECT_THROW(ps[0]->propose(false, Bytes{}), std::invalid_argument);
}

TEST(ValidatedAgreement, BiasedDecidesPreferredValueOnDetection) {
  // Bias 1; one honest party proposes 1 (with proof) *early*, the rest
  // propose 0 much later, so every party's first n−t pre-votes contain
  // the 1 — the detection event.  With detection guaranteed, the paper's
  // bias guarantee applies: the protocol must decide 1 in every schedule.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Cluster c(4, 1, seed * 7);
    auto ps = c.make_protocols<ValidatedAgreement>(
        [&](Environment& env, Dispatcher& disp, int) {
          return std::make_unique<ValidatedAgreement>(
              env, disp, "vba.bias" + std::to_string(seed),
              even_proof_validator(), /*bias=*/true);
        });
    const Bytes proof1{3};
    const Bytes proof0{4};
    c.sim.at(0.0, 0, [&] { ps[0]->propose(true, proof1); });
    for (int i = 1; i < 4; ++i) {
      c.sim.at(100.0, i, [&, i] { ps[static_cast<std::size_t>(i)]->propose(false, proof0); });
    }
    ASSERT_TRUE(c.sim.run_until([&] { return all_decided(ps); }, 240000));
    EXPECT_EQ(decision_values(ps), std::set<bool>{true}) << "seed " << seed;
  }
}

TEST(ValidatedAgreement, BiasedMixedProposalsAlwaysAgree) {
  // Without guaranteed detection the decision value may be either, but
  // agreement and external validity must always hold.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Cluster c(4, 1, seed * 13);
    auto ps = c.make_protocols<ValidatedAgreement>(
        [&](Environment& env, Dispatcher& disp, int) {
          return std::make_unique<ValidatedAgreement>(
              env, disp, "vba.biasmix" + std::to_string(seed),
              even_proof_validator(), /*bias=*/true);
        });
    const Bytes proof1{3};
    const Bytes proof0{4};
    for (int i = 0; i < 4; ++i) {
      const bool v = i == 0;
      c.sim.at(0.0, i, [&, i, v] {
        ps[static_cast<std::size_t>(i)]->propose(v, v ? proof1 : proof0);
      });
    }
    ASSERT_TRUE(c.sim.run_until([&] { return all_decided(ps); }, 240000));
    ASSERT_EQ(decision_values(ps).size(), 1u) << "seed " << seed;
    for (const auto& p : ps) {
      EXPECT_TRUE(even_proof_validator()(*p->decided(), p->proof()));
    }
  }
}

TEST(ValidatedAgreement, UnanimousZeroStaysZeroDespiteBias) {
  // Bias must never override validity: all honest propose 0 => decide 0.
  Cluster c(4, 1, 131);
  auto ps = c.make_protocols<ValidatedAgreement>(
      [&](Environment& env, Dispatcher& disp, int) {
        return std::make_unique<ValidatedAgreement>(env, disp, "vba.allzero",
                                                    even_proof_validator(),
                                                    /*bias=*/true);
      });
  const Bytes proof0{6};
  for (int i = 0; i < 4; ++i) {
    c.sim.at(0.0, i, [&, i] { ps[static_cast<std::size_t>(i)]->propose(false, proof0); });
  }
  ASSERT_TRUE(c.sim.run_until([&] { return all_decided(ps); }, 240000));
  EXPECT_EQ(decision_values(ps), std::set<bool>{false});
}

}  // namespace
}  // namespace sintra::core
