#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace sintra {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform(17), 17u);
}

TEST(Rng, UniformCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BytesHaveRequestedLength) {
  Rng rng(13);
  EXPECT_EQ(rng.bytes(0).size(), 0u);
  EXPECT_EQ(rng.bytes(1).size(), 1u);
  EXPECT_EQ(rng.bytes(33).size(), 33u);
}

TEST(Rng, BytesLookRandom) {
  Rng rng(17);
  const Bytes b = rng.bytes(4096);
  // Count distinct byte values; 4 KiB of uniform bytes hits all 256 w.h.p.
  std::set<std::uint8_t> seen(b.begin(), b.end());
  EXPECT_GT(seen.size(), 250u);
}

TEST(Rng, CoinIsNotConstant) {
  Rng rng(19);
  int heads = 0;
  for (int i = 0; i < 1000; ++i) heads += rng.coin() ? 1 : 0;
  EXPECT_GT(heads, 400);
  EXPECT_LT(heads, 600);
}

}  // namespace
}  // namespace sintra
