// Throughput mode (DESIGN.md §11): proposer batching + pipelined rounds
// on the atomic channel.  These tests pin down the properties the
// ordering argument relies on — determinism with several rounds in
// flight, round-order delivery under chaos, Byzantine bundle rejection —
// plus the round-amortization effect batching exists for and the
// delivery-log retention cap.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "core/channel/atomic_channel.hpp"
#include "core/channel/secure_atomic_channel.hpp"
#include "sim_fixture.hpp"

namespace sintra::core {
namespace {

using testing::Cluster;

AtomicChannel::Config pipelined(int batch, int depth) {
  AtomicChannel::Config cfg;
  cfg.max_batch_count = batch;
  cfg.pipeline_depth = depth;
  return cfg;
}

std::vector<std::unique_ptr<AtomicChannel>> make_channels(
    Cluster& c, const std::string& pid, AtomicChannel::Config cfg = {}) {
  return c.make_protocols<AtomicChannel>(
      [&](Environment& env, Dispatcher& disp, int) {
        return std::make_unique<AtomicChannel>(env, disp, pid, cfg);
      });
}

std::vector<std::string> delivered_strings(const AtomicChannel& ch) {
  std::vector<std::string> out;
  for (const auto& d : ch.deliveries()) out.push_back(to_string(d.payload));
  return out;
}

bool all_delivered_count(const std::vector<std::unique_ptr<AtomicChannel>>& cs,
                         std::size_t count, const std::set<int>& skip = {}) {
  for (std::size_t i = 0; i < cs.size(); ++i) {
    if (skip.contains(static_cast<int>(i))) continue;
    if (cs[i]->deliveries().size() < count) return false;
  }
  return true;
}

/// Three senders, `per_sender` payloads each, on a pipelined channel;
/// returns party 0's delivery sequence after asserting agreement and
/// exactly-once delivery of every payload.  (Per-sender FIFO is a
/// depth-1 property: with several rounds in flight, a bundle that loses
/// its round can see the origin's later payloads — signed into the next
/// concurrent round — deliver first; see DESIGN.md §11.)
std::vector<std::string> run_pipelined_workload(std::uint64_t seed,
                                                const std::string& pid) {
  Cluster c(4, 1, seed);
  auto chans = make_channels(c, pid, pipelined(4, 4));
  const int per_sender = 6;
  for (int s = 0; s < 3; ++s) {
    for (int m = 0; m < per_sender; ++m) {
      c.sim.at(0.7 * m + 0.3 * s, s, [&, s, m] {
        chans[static_cast<std::size_t>(s)]->send(
            to_bytes("s" + std::to_string(s) + "m" + std::to_string(m)));
      });
    }
  }
  const std::size_t total = 3 * per_sender;
  EXPECT_TRUE(c.sim.run_until(
      [&] { return all_delivered_count(chans, total); }, 4e6));
  const auto expected = delivered_strings(*chans[0]);
  EXPECT_EQ(expected.size(), total);
  for (const auto& ch : chans) EXPECT_EQ(delivered_strings(*ch), expected);
  for (int s = 0; s < 3; ++s) {
    for (int m = 0; m < per_sender; ++m) {
      const std::string want =
          "s" + std::to_string(s) + "m" + std::to_string(m);
      EXPECT_EQ(std::count(expected.begin(), expected.end(), want), 1)
          << want;
    }
  }
  return expected;
}

TEST(ThroughputMode, PipelinedRunsAreDeterministicPerSeed) {
  // With four rounds in flight the delivery order must still be a pure
  // function of the seed: same seed => bit-identical global sequence,
  // and under any seed all parties agree (asserted inside the helper).
  const auto seed31_a = run_pipelined_workload(31, "tm.det");
  const auto seed31_b = run_pipelined_workload(31, "tm.det");
  EXPECT_EQ(seed31_a, seed31_b);
  // A different seed may (and here does not need to) produce a different
  // interleaving — the point is that it also satisfies agreement + FIFO.
  run_pipelined_workload(32, "tm.det2");
}

TEST(ThroughputMode, BatchingAmortizesRoundsOverQueuedPayloads) {
  // 24 payloads queued up-front at one sender: with 8-entry bundles the
  // whole backlog must drain in a handful of rounds, not one per payload.
  Cluster c(4, 1, 33);
  auto chans = make_channels(c, "tm.amort", pipelined(8, 1));
  const int kMessages = 24;
  c.sim.at(0.0, 1, [&] {
    for (int m = 0; m < kMessages; ++m) {
      chans[1]->send(to_bytes("q" + std::to_string(m)));
    }
  });
  ASSERT_TRUE(c.sim.run_until(
      [&] { return all_delivered_count(chans, kMessages); }, 4e6));
  EXPECT_LE(chans[0]->rounds_completed(), kMessages / 4);
  // FIFO survives the bundling.
  const auto seq = delivered_strings(*chans[2]);
  for (int m = 0; m < kMessages; ++m) {
    EXPECT_EQ(seq[static_cast<std::size_t>(m)], "q" + std::to_string(m));
  }
}

TEST(ThroughputMode, ChaosReorderAndDuplicatesKeepTotalOrder) {
  // Seeded extra delays reorder traffic across links while several
  // rounds are in flight, and a corrupted party replays one of its own
  // correctly-signed bundles many times (duplication).  Decided batches
  // must still deliver strictly in round order, each payload at most
  // once per send, identically at every honest party.
  Cluster c(4, 1, 34);
  const std::string pid = "tm.chaos";
  c.sim.delay_hook = [state = 0x9e3779b97f4a7c15ULL](int, int,
                                                     double) mutable {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return 12.0 * static_cast<double>((state >> 33) & 0xffff) / 65535.0;
  };
  auto chans = make_channels(c, pid, pipelined(4, 4));
  sim::Adversary adv(c.sim, c.deal);
  adv.corrupt(3);

  // Party 3's replayed round-1 bundle, correctly signed with its real
  // key (sign_statement format: "ac-sign" pid round count entries).
  const Bytes evil_payload = [&] {
    Writer w;
    w.u8(0);  // kData marker
    w.raw(to_bytes("dup-me"));
    return std::move(w).take();
  }();
  Writer stmt;
  stmt.str("ac-sign");
  stmt.str(pid);
  stmt.u32(1);  // round
  stmt.u32(1);  // one entry
  stmt.u32(3);  // origin
  stmt.u64(0);  // seq
  stmt.bytes(evil_payload);
  const Bytes sig = adv.keys_of(3).sign(stmt.data());
  Writer frame;
  frame.u8(1);  // kSignedTag
  frame.u32(1);
  frame.u32(3);  // signer
  frame.u32(1);
  frame.u32(3);
  frame.u64(0);
  frame.bytes(evil_payload);
  frame.bytes(sig);
  for (int copy = 0; copy < 4; ++copy) {
    adv.send_as_all(3, pid, frame.data(), 0.5 + 3.0 * copy);
  }

  const int per_sender = 5;
  for (int s = 0; s < 3; ++s) {
    for (int m = 0; m < per_sender; ++m) {
      c.sim.at(0.9 * m + 0.4 * s, s, [&, s, m] {
        chans[static_cast<std::size_t>(s)]->send(
            to_bytes("h" + std::to_string(s) + "m" + std::to_string(m)));
      });
    }
  }
  const std::size_t total = 3 * per_sender + 1;  // + the adversary's payload
  ASSERT_TRUE(c.sim.run_until(
      [&] { return all_delivered_count(chans, total, {3}); }, 4e6));
  c.sim.run(c.sim.now_ms() + 5000.0);  // absorb the replayed copies

  const auto expected = delivered_strings(*chans[0]);
  for (int i = 1; i < 3; ++i) {
    EXPECT_EQ(delivered_strings(*chans[static_cast<std::size_t>(i)]),
              expected);
  }
  // At most once despite four transmissions.
  EXPECT_EQ(std::count(expected.begin(), expected.end(), "dup-me"), 1);
  // Rounds delivered strictly in order at every party.
  for (int i = 0; i < 3; ++i) {
    const auto& ds = chans[static_cast<std::size_t>(i)]->deliveries();
    for (std::size_t k = 1; k < ds.size(); ++k) {
      EXPECT_LE(ds[k - 1].round, ds[k].round);
    }
  }
}

TEST(ThroughputMode, ByzantineDuplicateKeyBundleRejected) {
  // A corrupted proposer stuffs the same (origin, seq) twice into one
  // correctly-signed bundle; bundle validation must reject it outright,
  // so its payload never delivers while honest traffic is unaffected.
  Cluster c(4, 1, 35);
  const std::string pid = "tm.stuff";
  auto chans = make_channels(c, pid, pipelined(4, 2));
  sim::Adversary adv(c.sim, c.deal);
  adv.corrupt(3);

  const Bytes evil_payload = [&] {
    Writer w;
    w.u8(0);
    w.raw(to_bytes("stuffed"));
    return std::move(w).take();
  }();
  Writer stmt;
  stmt.str("ac-sign");
  stmt.str(pid);
  stmt.u32(1);
  stmt.u32(2);  // two entries, same (origin, seq)!
  for (int i = 0; i < 2; ++i) {
    stmt.u32(3);
    stmt.u64(0);
    stmt.bytes(evil_payload);
  }
  const Bytes sig = adv.keys_of(3).sign(stmt.data());
  Writer frame;
  frame.u8(1);
  frame.u32(1);
  frame.u32(3);
  frame.u32(2);
  for (int i = 0; i < 2; ++i) {
    frame.u32(3);
    frame.u64(0);
    frame.bytes(evil_payload);
  }
  frame.bytes(sig);
  adv.send_as_all(3, pid, frame.data(), 0.2);

  for (int m = 0; m < 4; ++m) {
    c.sim.at(1.0 + m, 0, [&, m] {
      chans[0]->send(to_bytes("ok" + std::to_string(m)));
    });
  }
  ASSERT_TRUE(c.sim.run_until(
      [&] { return all_delivered_count(chans, 4, {3}); }, 4e6));
  for (int i = 0; i < 3; ++i) {
    const auto seq = delivered_strings(*chans[static_cast<std::size_t>(i)]);
    EXPECT_EQ(std::count(seq.begin(), seq.end(), "stuffed"), 0);
    for (int m = 0; m < 4; ++m) {
      EXPECT_EQ(seq[static_cast<std::size_t>(m)], "ok" + std::to_string(m));
    }
  }
}

TEST(ThroughputMode, DeliveryLogLimitBoundsRetention) {
  Cluster c(4, 1, 36);
  auto chans = make_channels(c, "tm.cap", pipelined(2, 2));
  constexpr std::size_t kCap = 4;
  chans[0]->set_delivery_log_limit(kCap);
  const int kMessages = 20;
  for (int m = 0; m < kMessages; ++m) {
    c.sim.at(0.5 * m, 1, [&, m] {
      chans[1]->send(to_bytes("cap" + std::to_string(m)));
    });
  }
  ASSERT_TRUE(c.sim.run_until(
      [&] {
        return chans[1]->deliveries().size() >=
               static_cast<std::size_t>(kMessages);
      },
      4e6));
  // Capped log stays under 2x the limit and keeps the most recent tail;
  // the uncapped parties retain everything.
  EXPECT_LE(chans[0]->deliveries().size(), 2 * kCap);
  EXPECT_GE(chans[0]->deliveries().size(), kCap);
  EXPECT_EQ(to_string(chans[0]->deliveries().back().payload),
            "cap" + std::to_string(kMessages - 1));
  EXPECT_EQ(chans[1]->deliveries().size(),
            static_cast<std::size_t>(kMessages));
  // The inbox (receive() surface) is unaffected by log trimming.
  std::size_t popped = 0;
  while (chans[0]->receive()) ++popped;
  EXPECT_EQ(popped, static_cast<std::size_t>(kMessages));
}

TEST(ThroughputMode, SecureChannelPipelinesAndCapsLog) {
  // The labeled/secure wrapper rides the same pipelined core: payloads
  // stay totally ordered and its own delivery log honors the cap.
  Cluster c(4, 1, 37);
  AtomicChannel::Config cfg = pipelined(4, 3);
  auto chans = c.make_protocols<SecureAtomicChannel>(
      [&](Environment& env, Dispatcher& disp, int) {
        auto ch = std::make_unique<SecureAtomicChannel>(env, disp, "tm.sec",
                                                        cfg);
        ch->set_delivery_log_limit(3);
        return ch;
      });
  std::vector<std::vector<std::string>> seen(chans.size());
  for (std::size_t i = 0; i < chans.size(); ++i) {
    chans[i]->set_deliver_callback([&seen, i](const Bytes& payload) {
      seen[i].push_back(to_string(payload));
    });
  }
  const int kMessages = 12;
  for (int m = 0; m < kMessages; ++m) {
    c.sim.at(1.0 * m, m % 3, [&, m] {
      chans[static_cast<std::size_t>(m % 3)]->send(
          to_bytes("sec" + std::to_string(m)));
    });
  }
  ASSERT_TRUE(c.sim.run_until(
      [&] {
        for (const auto& s : seen) {
          if (s.size() < static_cast<std::size_t>(kMessages)) return false;
        }
        return true;
      },
      8e6));
  // Total order of cleartexts across all parties, and the capped log
  // holds at most 2x the limit.
  for (const auto& s : seen) EXPECT_EQ(s, seen[0]);
  for (const auto& ch : chans) EXPECT_LE(ch->deliveries().size(), 6u);
}

}  // namespace
}  // namespace sintra::core
