// Shared test scaffolding: a dealt group of parties on a simulated
// network, with helpers to instantiate one protocol object per node.
#pragma once

#include <memory>
#include <vector>

#include "crypto/dealer.hpp"
#include "sim/adversary.hpp"
#include "sim/simulator.hpp"

namespace sintra::testing {

inline crypto::Deal cached_deal(int n, int t,
                                crypto::SigImpl impl = crypto::SigImpl::kMultiSig) {
  // Deals are deterministic; the dealer memoizes the expensive parameters,
  // but we also memoize whole deals per (n, t, impl) to keep test setup fast.
  static std::map<std::tuple<int, int, int>, crypto::Deal> cache;
  const auto key = std::tuple{n, t, static_cast<int>(impl)};
  auto it = cache.find(key);
  if (it == cache.end()) {
    crypto::DealerConfig cfg;
    cfg.n = n;
    cfg.t = t;
    cfg.rsa_bits = 512;
    cfg.dl_p_bits = 256;
    cfg.dl_q_bits = 96;
    cfg.sig_impl = impl;
    it = cache.emplace(key, crypto::run_dealer(cfg)).first;
  }
  return it->second;
}

/// n parties on a uniform low-latency network; the workhorse for protocol
/// tests.  Byzantine tests layer an Adversary on top.
struct Cluster {
  crypto::Deal deal;
  sim::Simulator sim;

  explicit Cluster(int n = 4, int t = 1, std::uint64_t seed = 1,
                   double latency_ms = 2.0, double jitter = 0.25,
                   crypto::SigImpl impl = crypto::SigImpl::kMultiSig)
      : deal(cached_deal(n, t, impl)),
        sim(sim::uniform_setup(n, 30.0, latency_ms, jitter), deal, seed) {
    // Tests don't model per-message protocol overhead.
    sim.per_message_cpu_ms = 0.01;
  }

  /// Creates one protocol instance per party.  Factory signature:
  /// unique_ptr<P> f(core::Environment& env, core::Dispatcher& disp, int i).
  template <typename P, typename Factory>
  std::vector<std::unique_ptr<P>> make_protocols(Factory&& factory) {
    std::vector<std::unique_ptr<P>> out;
    for (int i = 0; i < sim.n(); ++i) {
      out.push_back(factory(sim.node(i), sim.node(i).dispatcher(), i));
    }
    return out;
  }
};

}  // namespace sintra::testing
