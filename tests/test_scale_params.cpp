// Big-group parameter sweep: every threshold primitive must work — and
// the fast paths must stay exact — at the group sizes of DESIGN.md §14's
// scaling story, n ∈ {4, 7, 10, 16, 31} with t = ⌊(n-1)/3⌋.  Thresholds
// follow the paper: signatures use the agreement threshold k = n - t,
// coin and TDH2 use k = t + 1.  The largest size additionally faces one
// Byzantine share with a *threaded* WorkPool, exercising the parallel
// per-share verification fallback (run_parallel) end to end, and the
// incremental-Lagrange and comb-window-sizing invariants are asserted
// directly against their from-scratch counterparts.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "bignum/montgomery.hpp"
#include "crypto/coin.hpp"
#include "crypto/multi_sig.hpp"
#include "crypto/shamir.hpp"
#include "crypto/tdh2.hpp"
#include "crypto/threshold_sig.hpp"
#include "crypto/work_pool.hpp"
#include "obs/metrics.hpp"

namespace sintra::crypto {
namespace {

const std::vector<int> kSizes{4, 7, 10, 16, 31};

int corruption_bound(int n) { return (n - 1) / 3; }

// One safe-prime RSA key shared by every Shoup deal: prime generation is
// the expensive part and is independent of the group size.
const RsaKeyPair& shared_safe_key() {
  static const RsaKeyPair key = [] {
    Rng rng(0x5ca1e);
    return rsa_generate(rng, 512, /*safe_primes=*/true);
  }();
  return key;
}

const DlogGroup& shared_group() {
  static const DlogGroup grp = [] {
    Rng rng(0x5ca1e601);
    return DlogGroup::generate(rng, 256, 96);
  }();
  return grp;
}

const RsaThresholdDeal& shoup_deal(int n) {
  static std::map<int, RsaThresholdDeal> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    Rng rng(0x540u + static_cast<std::uint64_t>(n));
    const int k = n - corruption_bound(n);
    it = cache.emplace(n, deal_rsa_threshold_with_key(rng, n, k,
                                                      shared_safe_key()))
             .first;
  }
  return it->second;
}

TEST(ScaleParams, ThresholdRsaAllSizes) {
  for (int n : kSizes) {
    const RsaThresholdDeal& deal = shoup_deal(n);
    const int k = deal.pub->k;
    ASSERT_EQ(k, n - corruption_bound(n)) << n;
    const Bytes msg = to_bytes("scale.rsa." + std::to_string(n));
    std::vector<std::pair<int, Bytes>> shares;
    for (int i = 0; i < n; ++i) {
      shares.emplace_back(i, deal.make_party(i)->sign_share(msg));
    }
    const auto combiner = deal.make_party(0);
    // First k signers, then the *last* k (a different Lagrange set).
    const auto out = combiner->combine_checked(msg, shares);
    ASSERT_TRUE(out.has_value()) << n;
    EXPECT_TRUE(combiner->verify(msg, out->sig)) << n;
    std::vector<std::pair<int, Bytes>> tail(shares.end() - k, shares.end());
    const auto out2 = combiner->combine_checked(msg, tail);
    ASSERT_TRUE(out2.has_value()) << n;
    EXPECT_TRUE(combiner->verify(msg, out2->sig)) << n;
  }
}

TEST(ScaleParams, MultiSigAllSizes) {
  // One key ladder reused across sizes: party i's key is the same at
  // every n, only the (n, k) public wrapper changes.
  static std::vector<std::shared_ptr<const RsaKeyPair>> keys = [] {
    std::vector<std::shared_ptr<const RsaKeyPair>> out;
    for (int i = 0; i < 31; ++i) {
      Rng rng(0x3a17u + static_cast<std::uint64_t>(i));
      out.push_back(std::make_shared<const RsaKeyPair>(rsa_generate(rng, 512)));
    }
    return out;
  }();
  for (int n : kSizes) {
    const int k = n - corruption_bound(n);
    std::vector<RsaPublicKey> pubs;
    for (int i = 0; i < n; ++i) pubs.push_back(keys[static_cast<std::size_t>(i)]->pub);
    auto pub = std::make_shared<const MultiSigPublic>(
        MultiSigPublic{n, k, pubs, HashKind::kSha256});
    const Bytes msg = to_bytes("scale.multi." + std::to_string(n));
    std::vector<std::pair<int, Bytes>> shares;
    for (int i = 0; i < k; ++i) {
      MultiSigScheme signer(pub, i, keys[static_cast<std::size_t>(i)]);
      shares.emplace_back(i, signer.sign_share(msg));
    }
    MultiSigScheme verifier(pub, -1, nullptr);
    const auto out = verifier.combine_checked(msg, shares);
    ASSERT_TRUE(out.has_value()) << n;
    EXPECT_TRUE(verifier.verify(msg, out->sig)) << n;
  }
}

TEST(ScaleParams, CoinAllSizes) {
  for (int n : kSizes) {
    const int k = corruption_bound(n) + 1;
    Rng rng(0xc01u + static_cast<std::uint64_t>(n));
    const CoinDeal deal = deal_coin(rng, n, k, shared_group());
    const Bytes name = to_bytes("scale.coin." + std::to_string(n));
    std::vector<std::unique_ptr<ThresholdCoin>> parties;
    for (int i = 0; i < n; ++i) parties.push_back(deal.make_party(i));
    std::vector<std::pair<int, Bytes>> head;
    std::vector<std::pair<int, Bytes>> tail;
    for (int i = 0; i < k; ++i) {
      head.emplace_back(i, parties[static_cast<std::size_t>(i)]->release(name));
      const int j = n - 1 - i;
      tail.emplace_back(j, parties[static_cast<std::size_t>(j)]->release(name));
    }
    // Disjoint quorums agree on the coin value at every size.
    EXPECT_EQ(parties[0]->assemble(name, head, 8),
              parties[0]->assemble(name, tail, 8))
        << n;
  }
}

TEST(ScaleParams, Tdh2AllSizes) {
  for (int n : kSizes) {
    const int k = corruption_bound(n) + 1;
    Rng rng(0x7d2u + static_cast<std::uint64_t>(n));
    const Tdh2Deal deal = deal_tdh2(rng, n, k, shared_group());
    Rng enc_rng(7);
    const Bytes msg = to_bytes("payload at n=" + std::to_string(n));
    const Bytes ct = deal.pub->encrypt(msg, to_bytes("L"), enc_rng);
    std::vector<std::pair<int, Bytes>> shares;
    for (int i = 0; i < k; ++i) {
      auto s = deal.make_party(i)->decrypt_share(ct);
      ASSERT_TRUE(s.has_value()) << n << "," << i;
      shares.emplace_back(i, std::move(*s));
    }
    EXPECT_EQ(deal.make_party(0)->combine(ct, shares), msg) << n;
  }
}

std::uint64_t parallel_verify_count(const char* op) {
  return obs::registry()
      .counter("crypto.parallel_verify_shares", {{"op", op}})
      .value();
}

// One Byzantine share at the largest size, with a *threaded* pool: the
// fallback must verify shares via WorkPool::run_parallel (visible through
// crypto.parallel_verify_shares), blacklist the offender, and still
// produce the value the honest quorum would have produced.
TEST(ScaleParams, ByzantineShareParallelFallbackAtN31) {
  const int n = 31;
  const int k = corruption_bound(n) + 1;  // 11
  Rng rng(0xba2d);
  const CoinDeal deal = deal_coin(rng, n, k, shared_group());
  const Bytes name = to_bytes("scale.byz.coin");
  std::vector<std::unique_ptr<ThresholdCoin>> parties;
  for (int i = 0; i < n; ++i) parties.push_back(deal.make_party(i));

  std::vector<std::pair<int, Bytes>> shares;
  for (int i = 0; i <= k; ++i) {
    shares.emplace_back(i, parties[static_cast<std::size_t>(i)]->release(name));
  }
  // Honest reference value before corruption.
  std::vector<std::pair<int, Bytes>> honest(shares.begin() + 1, shares.end());
  const Bytes reference = parties[0]->assemble(name, honest, 8);
  // Signer 0 presents signer k's share bytes: parses fine, DLEQ-invalid.
  shares[0].second = shares[static_cast<std::size_t>(k)].second;

  WorkPool pool(2);
  ASSERT_FALSE(pool.inline_mode());
  const auto before = parallel_verify_count("coin");
  const auto out = parties[0]->assemble_checked(name, shares, 8, &pool);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->value, reference);
  EXPECT_TRUE(parties[0]->is_blacklisted(0));
  // The fallback pushed its k chosen shares through run_parallel.
  EXPECT_EQ(parallel_verify_count("coin"),
            before + static_cast<std::uint64_t>(k));

  // Same adversary against the threshold-RSA fallback at n=31.
  const RsaThresholdDeal& sig_deal = shoup_deal(n);
  const Bytes msg = to_bytes("scale.byz.sig");
  std::vector<std::pair<int, Bytes>> sig_shares;
  for (int i = 0; i < n; ++i) {
    sig_shares.emplace_back(i, sig_deal.make_party(i)->sign_share(msg));
  }
  sig_shares[0].second = sig_shares[1].second;  // wrong signer id
  const auto combiner = sig_deal.make_party(0);
  const auto before_sig = parallel_verify_count("threshold_sig");
  const auto sig = combiner->combine_checked(msg, sig_shares, &pool);
  ASSERT_TRUE(sig.has_value());
  EXPECT_TRUE(combiner->verify(msg, sig->sig));
  EXPECT_TRUE(combiner->is_blacklisted(0));
  EXPECT_EQ(parallel_verify_count("threshold_sig"),
            before_sig + static_cast<std::uint64_t>(sig_deal.pub->k));
}

// The incremental prefix-extension path must be bit-identical to the
// from-scratch computation, over both coefficient domains, for index
// sequences that grow one point at a time the way combiners see them.
TEST(ScaleParams, IncrementalLagrangeMatchesDirect) {
  const BigInt q = shared_group().q();
  const BigInt delta = factorial(31);
  LagrangeCache cache;
  // A scattered, unsorted arrival order over parties 0..30.
  const std::vector<int> arrival{7, 0, 30, 3, 18, 11, 25, 1, 14, 22, 9};
  std::vector<int> indices;
  for (int idx : arrival) {
    indices.push_back(idx);
    const auto field = cache.coeffs_zero(indices, q);
    const auto integer = cache.integer_coeffs(delta, indices);
    ASSERT_EQ(field.size(), indices.size());
    ASSERT_EQ(integer.size(), indices.size());
    for (std::size_t j = 0; j < indices.size(); ++j) {
      EXPECT_EQ(field[j],
                lagrange_coeff_zero(indices, static_cast<int>(j), q))
          << indices.size() << "," << j;
      EXPECT_EQ(integer[j],
                integer_lagrange_coeff(delta, indices, static_cast<int>(j)))
          << indices.size() << "," << j;
    }
  }
  const auto stats = cache.stats();
  EXPECT_GT(stats.prefix_extends, 0u);
}

// Window sizing: the n=4 configuration keeps the historical 4-bit comb
// windows (bit-identical work accounting), the n=31 configuration narrows
// until the projected table memory fits the budget — and the bound
// actually holds at the sizes the schemes hint.
TEST(ScaleParams, CombTableMemoryBoundedAtN31) {
  using bignum::comb_table_bytes;
  using bignum::kCombMemoryBudgetBytes;
  using bignum::pick_comb_window_bits;

  // DlogGroup::hint_group_size uses ~2n+8 long-lived bases; exponents are
  // order-q (the paper's 160-bit subgroup), modulus 1024 bits.
  const auto tables = [](int n) {
    return static_cast<std::size_t>(2 * n + 8);
  };
  const int w4 = pick_comb_window_bits(160, 1024, tables(4));
  const int w31 = pick_comb_window_bits(160, 1024, tables(31));
  EXPECT_EQ(w4, 4);
  EXPECT_LT(w31, w4);
  EXPECT_GE(w31, 2);
  EXPECT_LE(comb_table_bytes(160, 1024, w31) * tables(31),
            kCombMemoryBudgetBytes);

  // Shoup verification at 1024-bit moduli mixes widths: one response-wide
  // v table (z = s_i*c + r spans ~modulus + two hash outputs) plus n
  // challenge-wide signer tables (one hash output).  Mirror the per-handle
  // projection from threshold_sig.cpp and check the chosen window keeps
  // the whole handle inside the budget at n=31.
  const int z_bits = 1024 + 2 * 256 + 16;  // sha-256 challenges
  const int c_bits = 256;
  const auto shoup_handle_bytes = [&](int n, int w) {
    return comb_table_bytes(z_bits, 1024, w) +
           static_cast<std::size_t>(n) * comb_table_bytes(c_bits, 1024, w);
  };
  int ws31 = 4;
  for (; ws31 > 2; --ws31)
    if (shoup_handle_bytes(31, ws31) <= kCombMemoryBudgetBytes) break;
  EXPECT_GE(ws31, 2);
  EXPECT_LE(shoup_handle_bytes(31, ws31), kCombMemoryBudgetBytes);
  // The paper-sized group (n=4) keeps the historical widest window.
  EXPECT_LE(shoup_handle_bytes(4, 4), kCombMemoryBudgetBytes);
}

}  // namespace
}  // namespace sintra::crypto
