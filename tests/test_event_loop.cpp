// Event-loop tests: timer ordering and cancellation, cross-thread
// post(), fd readiness dispatch and bounded run_until — the real-time
// scheduler under the deployment transport (src/net/).
#include "net/event_loop.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <csignal>

#include <thread>
#include <vector>

namespace sintra::net {
namespace {

/// RAII pipe pair for fd-readiness tests.
struct Pipe {
  int fds[2] = {-1, -1};
  Pipe() { EXPECT_EQ(pipe(fds), 0); }
  ~Pipe() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
  [[nodiscard]] int read_end() const { return fds[0]; }
  void write_byte(char c = 'x') const {
    ASSERT_EQ(::write(fds[1], &c, 1), 1);
  }
  [[nodiscard]] char read_byte() const {
    char c = 0;
    EXPECT_EQ(::read(fds[0], &c, 1), 1);
    return c;
  }
};

TEST(EventLoop, TimersFireInDeadlineOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.call_later(30.0, [&] { order.push_back(3); });
  loop.call_later(5.0, [&] { order.push_back(1); });
  loop.call_later(15.0, [&] { order.push_back(2); });
  const double start = loop.now_ms();
  ASSERT_TRUE(loop.run_until([&] { return order.size() == 3; }, 5000.0));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_GE(loop.now_ms() - start, 30.0);
}

TEST(EventLoop, SameDeadlineTimersKeepCreationOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.call_later(0.0, [&order, i] { order.push_back(i); });
  }
  ASSERT_TRUE(loop.run_until([&] { return order.size() == 5; }, 5000.0));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoop, CancelledTimerNeverFires) {
  EventLoop loop;
  bool cancelled_fired = false;
  bool other_fired = false;
  const EventLoop::TimerId id =
      loop.call_later(1.0, [&] { cancelled_fired = true; });
  loop.call_later(20.0, [&] { other_fired = true; });
  loop.cancel(id);
  ASSERT_TRUE(loop.run_until([&] { return other_fired; }, 5000.0));
  EXPECT_FALSE(cancelled_fired);
}

TEST(EventLoop, TimersCanRescheduleFromWithinCallbacks) {
  EventLoop loop;
  int ticks = 0;
  std::function<void()> tick = [&] {
    if (++ticks < 5) loop.call_later(1.0, tick);
  };
  loop.call_later(1.0, tick);
  ASSERT_TRUE(loop.run_until([&] { return ticks == 5; }, 5000.0));
  EXPECT_EQ(ticks, 5);
}

TEST(EventLoop, PostFromAnotherThreadWakesTheLoop) {
  EventLoop loop;
  bool ran = false;
  std::thread poster([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    loop.post([&] { ran = true; });
  });
  // No timers pending: the loop parks in epoll_wait until the post wakes
  // it via the eventfd.
  EXPECT_TRUE(loop.run_until([&] { return ran; }, 5000.0));
  poster.join();
}

TEST(EventLoop, StopFromAnotherThreadEndsRun) {
  EventLoop loop;
  std::thread stopper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    loop.stop();
  });
  loop.run();  // must return rather than hang
  stopper.join();
  EXPECT_TRUE(loop.stopped());
}

TEST(EventLoop, FdReadinessDispatchesCallback) {
  EventLoop loop;
  Pipe p;
  std::vector<char> got;
  loop.add_fd(p.read_end(), [&] { got.push_back(p.read_byte()); });
  loop.call_later(5.0, [&] { p.write_byte('a'); });
  loop.call_later(10.0, [&] { p.write_byte('b'); });
  ASSERT_TRUE(loop.run_until([&] { return got.size() == 2; }, 5000.0));
  EXPECT_EQ(got, (std::vector<char>{'a', 'b'}));
}

TEST(EventLoop, RemovedFdStopsDispatching) {
  EventLoop loop;
  Pipe p;
  int wakes = 0;
  loop.add_fd(p.read_end(), [&] {
    ++wakes;
    (void)p.read_byte();
  });
  p.write_byte();
  ASSERT_TRUE(loop.run_until([&] { return wakes == 1; }, 5000.0));
  loop.remove_fd(p.read_end());
  p.write_byte();  // now unwatched: must not be dispatched
  bool timer_fired = false;
  loop.call_later(30.0, [&] { timer_fired = true; });
  ASSERT_TRUE(loop.run_until([&] { return timer_fired; }, 5000.0));
  EXPECT_EQ(wakes, 1);
}

TEST(EventLoop, RunUntilTimesOutWhenPredicateStaysFalse) {
  EventLoop loop;
  const double start = loop.now_ms();
  EXPECT_FALSE(loop.run_until([] { return false; }, 50.0));
  EXPECT_GE(loop.now_ms() - start, 50.0);
}

TEST(EventLoop, RunCountsDispatchedCallbacks) {
  EventLoop loop;
  for (int i = 0; i < 3; ++i) loop.call_later(1.0, [] {});
  loop.call_later(2.0, [&] { loop.stop(); });
  EXPECT_GE(loop.run(), 4u);
}

TEST(EventLoop, OnSignalRunsCallbackWithoutStopping) {
  // The sintra_node SIGUSR1 path: a non-stopping signal callback that
  // composes with stop_on_signals.
  EventLoop loop;
  int snapshots = 0;
  loop.on_signal(SIGUSR1, [&] { ++snapshots; });
  loop.call_later(5.0, [] { raise(SIGUSR1); });
  ASSERT_TRUE(loop.run_until([&] { return snapshots == 1; }, 5000.0));
  EXPECT_FALSE(loop.stopped());  // the loop kept running

  // A second delivery still works, and a stop signal still stops.
  loop.stop_on_signals({SIGTERM});
  loop.call_later(1.0, [] { raise(SIGUSR1); });
  ASSERT_TRUE(loop.run_until([&] { return snapshots == 2; }, 5000.0));
  EXPECT_FALSE(loop.stopped());
  loop.call_later(1.0, [] { raise(SIGTERM); });
  loop.run();
  EXPECT_TRUE(loop.stopped());
}

TEST(EventLoop, SignalBurstKeepsBothStopAndCallback) {
  // A SIGUSR1 landing after SIGTERM but before the loop processes
  // pending signals must not overwrite the stop request: both the
  // snapshot callback and the stop must happen.
  EventLoop loop;
  int snapshots = 0;
  loop.on_signal(SIGUSR1, [&] { ++snapshots; });
  loop.stop_on_signals({SIGTERM});
  loop.call_later(1.0, [] {
    raise(SIGTERM);
    raise(SIGUSR1);  // delivered before the loop's signal scan
  });
  loop.run();
  EXPECT_TRUE(loop.stopped());
  EXPECT_EQ(snapshots, 1);
}

}  // namespace
}  // namespace sintra::net
