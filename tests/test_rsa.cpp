#include <gtest/gtest.h>

#include "bignum/prime.hpp"
#include "crypto/rsa.hpp"

namespace sintra::crypto {
namespace {

RsaKeyPair test_key() {
  static const RsaKeyPair key = [] {
    Rng rng(0xabc);
    return rsa_generate(rng, 512);
  }();
  return key;
}

TEST(Rsa, KeyStructure) {
  const RsaKeyPair key = test_key();
  EXPECT_EQ(key.pub.n.bit_length(), 512);
  EXPECT_EQ(key.pub.n, key.p * key.q);
  Rng rng(1);
  EXPECT_TRUE(bignum::is_probable_prime(key.p, rng));
  EXPECT_TRUE(bignum::is_probable_prime(key.q, rng));
  // e*d == 1 mod phi
  const BigInt phi = (key.p - BigInt{1}) * (key.q - BigInt{1});
  EXPECT_EQ((key.pub.e * key.d).mod(phi), BigInt{1});
}

TEST(Rsa, SignVerifyRoundTrip) {
  const RsaKeyPair key = test_key();
  const Bytes msg = to_bytes("pid.atomic.0|round 7|payload");
  const Bytes sig = rsa_sign(key, msg);
  EXPECT_EQ(sig.size(), key.pub.modulus_bytes());
  EXPECT_TRUE(rsa_verify(key.pub, msg, sig));
}

TEST(Rsa, VerifyRejectsWrongMessage) {
  const RsaKeyPair key = test_key();
  const Bytes sig = rsa_sign(key, to_bytes("message A"));
  EXPECT_FALSE(rsa_verify(key.pub, to_bytes("message B"), sig));
}

TEST(Rsa, VerifyRejectsTamperedSignature) {
  const RsaKeyPair key = test_key();
  const Bytes msg = to_bytes("message");
  Bytes sig = rsa_sign(key, msg);
  sig[sig.size() / 2] ^= 0x01;
  EXPECT_FALSE(rsa_verify(key.pub, msg, sig));
}

TEST(Rsa, VerifyRejectsWrongKey) {
  const RsaKeyPair key = test_key();
  Rng rng(0xdef);
  const RsaKeyPair other = rsa_generate(rng, 512);
  const Bytes msg = to_bytes("message");
  EXPECT_FALSE(rsa_verify(other.pub, msg, rsa_sign(key, msg)));
}

TEST(Rsa, VerifyRejectsMalformedSignature) {
  const RsaKeyPair key = test_key();
  const Bytes msg = to_bytes("message");
  EXPECT_FALSE(rsa_verify(key.pub, msg, Bytes{}));
  EXPECT_FALSE(rsa_verify(key.pub, msg, Bytes(3, 0xab)));
  // Right length but >= n.
  Bytes huge(key.pub.modulus_bytes(), 0xff);
  EXPECT_FALSE(rsa_verify(key.pub, msg, huge));
}

TEST(Rsa, SignatureIsDeterministic) {
  const RsaKeyPair key = test_key();
  const Bytes msg = to_bytes("same input");
  EXPECT_EQ(rsa_sign(key, msg), rsa_sign(key, msg));
}

TEST(Rsa, Sha1AndSha256Differ) {
  const RsaKeyPair key = test_key();
  const Bytes msg = to_bytes("m");
  const Bytes s1 = rsa_sign(key, msg, HashKind::kSha1);
  const Bytes s256 = rsa_sign(key, msg, HashKind::kSha256);
  EXPECT_NE(s1, s256);
  EXPECT_TRUE(rsa_verify(key.pub, msg, s1, HashKind::kSha1));
  EXPECT_FALSE(rsa_verify(key.pub, msg, s1, HashKind::kSha256));
}

TEST(Rsa, FdhCoversModulusRange) {
  // The FDH output should not be systematically short.
  const RsaKeyPair key = test_key();
  int high_bit_set = 0;
  for (int i = 0; i < 64; ++i) {
    Writer w;
    w.u32(static_cast<std::uint32_t>(i));
    const BigInt x = rsa_fdh(w.data(), key.pub.n, HashKind::kSha256);
    EXPECT_LT(x, key.pub.n);
    if (x.bit_length() >= key.pub.n.bit_length() - 1) ++high_bit_set;
  }
  EXPECT_GT(high_bit_set, 16);  // ~50% expected
}

TEST(Rsa, CrtMatchesPlainExponentiation) {
  const RsaKeyPair key = test_key();
  const Bytes msg = to_bytes("crt check");
  const BigInt x = rsa_fdh(msg, key.pub.n, HashKind::kSha256);
  const BigInt plain = x.mod_pow(key.d, key.pub.n);
  EXPECT_EQ(rsa_sign(key, msg), plain.to_bytes_padded(key.pub.modulus_bytes()));
}

TEST(Rsa, SafePrimeGeneration) {
  Rng rng(0x5afe);
  const RsaKeyPair key = rsa_generate(rng, 256, /*safe_primes=*/true);
  const BigInt pp = (key.p - BigInt{1}) >> 1;
  const BigInt qp = (key.q - BigInt{1}) >> 1;
  EXPECT_TRUE(bignum::is_probable_prime(pp, rng));
  EXPECT_TRUE(bignum::is_probable_prime(qp, rng));
}

TEST(Rsa, SmallModuliWork) {
  // Figure 6 sweeps key sizes down to 128 bits.
  for (int bits : {128, 256}) {
    Rng rng(static_cast<std::uint64_t>(bits));
    const RsaKeyPair key = rsa_generate(rng, bits);
    const Bytes msg = to_bytes("tiny key test");
    EXPECT_TRUE(rsa_verify(key.pub, msg, rsa_sign(key, msg))) << bits;
  }
}

TEST(Rsa, PublicKeySerdeRoundTrip) {
  const RsaKeyPair key = test_key();
  Writer w;
  key.pub.write(w);
  Reader r(w.data());
  EXPECT_EQ(RsaPublicKey::read(r), key.pub);
}

}  // namespace
}  // namespace sintra::crypto
