#include "util/hex.hpp"

#include <gtest/gtest.h>

namespace sintra {
namespace {

TEST(Hex, EncodeKnownBytes) {
  EXPECT_EQ(hex_encode(Bytes{0x00, 0xff, 0x10, 0xab}), "00ff10ab");
}

TEST(Hex, EncodeEmpty) { EXPECT_EQ(hex_encode(Bytes{}), ""); }

TEST(Hex, DecodeLowerAndUpper) {
  EXPECT_EQ(hex_decode("00ff10ab"), (Bytes{0x00, 0xff, 0x10, 0xab}));
  EXPECT_EQ(hex_decode("00FF10AB"), (Bytes{0x00, 0xff, 0x10, 0xab}));
}

TEST(Hex, RoundTrip) {
  Bytes data;
  for (int i = 0; i < 256; ++i) data.push_back(static_cast<std::uint8_t>(i));
  EXPECT_EQ(hex_decode(hex_encode(data)), data);
}

TEST(Hex, RejectsOddLength) {
  EXPECT_THROW(hex_decode("abc"), std::invalid_argument);
}

TEST(Hex, RejectsNonHex) {
  EXPECT_THROW(hex_decode("zz"), std::invalid_argument);
  EXPECT_THROW(hex_decode("0g"), std::invalid_argument);
}

}  // namespace
}  // namespace sintra
