#include "util/bytes.hpp"

#include <gtest/gtest.h>

namespace sintra {
namespace {

TEST(Bytes, RoundTripString) {
  const std::string s = "hello SINTRA";
  EXPECT_EQ(to_string(to_bytes(s)), s);
}

TEST(Bytes, EmptyString) {
  EXPECT_TRUE(to_bytes("").empty());
  EXPECT_EQ(to_string(Bytes{}), "");
}

TEST(Bytes, ConcatJoinsInOrder) {
  const Bytes a = to_bytes("ab");
  const Bytes b = to_bytes("cd");
  const Bytes c = to_bytes("e");
  EXPECT_EQ(to_string(concat({a, b, c})), "abcde");
}

TEST(Bytes, ConcatEmptyParts) {
  EXPECT_TRUE(concat({}).empty());
  EXPECT_EQ(to_string(concat({Bytes{}, to_bytes("x"), Bytes{}})), "x");
}

TEST(Bytes, CtEqualMatches) {
  EXPECT_TRUE(ct_equal(to_bytes("same"), to_bytes("same")));
  EXPECT_TRUE(ct_equal(Bytes{}, Bytes{}));
}

TEST(Bytes, CtEqualRejectsDifferentContent) {
  EXPECT_FALSE(ct_equal(to_bytes("aaaa"), to_bytes("aaab")));
  EXPECT_FALSE(ct_equal(to_bytes("baaa"), to_bytes("aaaa")));
}

TEST(Bytes, CtEqualRejectsDifferentLength) {
  EXPECT_FALSE(ct_equal(to_bytes("aa"), to_bytes("aaa")));
}

}  // namespace
}  // namespace sintra
