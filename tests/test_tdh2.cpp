#include <gtest/gtest.h>

#include "crypto/tdh2.hpp"

namespace sintra::crypto {
namespace {

struct Tdh2Fixture {
  Tdh2Deal deal;
  std::vector<std::unique_ptr<Tdh2Party>> parties;
};

Tdh2Fixture make_tdh2(int n, int k) {
  Rng rng(0x7d42);
  static const DlogGroup grp = [] {
    Rng g(0x7d42601);
    return DlogGroup::generate(g, 256, 96);
  }();
  Tdh2Fixture fx;
  fx.deal = deal_tdh2(rng, n, k, grp);
  for (int i = 0; i < n; ++i) fx.parties.push_back(fx.deal.make_party(i));
  return fx;
}

std::vector<std::pair<int, Bytes>> shares_from(Tdh2Fixture& fx, BytesView ct,
                                               const std::vector<int>& who) {
  std::vector<std::pair<int, Bytes>> out;
  for (int i : who) {
    auto s = fx.parties[static_cast<std::size_t>(i)]->decrypt_share(ct);
    EXPECT_TRUE(s.has_value()) << i;
    out.emplace_back(i, std::move(*s));
  }
  return out;
}

TEST(Tdh2, EncryptDecryptRoundTrip) {
  Tdh2Fixture fx = make_tdh2(4, 2);
  Rng rng(1);
  const Bytes msg = to_bytes("the secret transaction payload");
  const Bytes label = to_bytes("channel.pid.0");
  const Bytes ct = fx.deal.pub->encrypt(msg, label, rng);
  auto shares = shares_from(fx, ct, {0, 1});
  EXPECT_EQ(fx.parties[2]->combine(ct, shares), msg);
}

TEST(Tdh2, AnyKSubsetDecrypts) {
  Tdh2Fixture fx = make_tdh2(4, 2);
  Rng rng(2);
  const Bytes msg = to_bytes("m");
  const Bytes ct = fx.deal.pub->encrypt(msg, to_bytes("L"), rng);
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      auto shares = shares_from(fx, ct, {a, b});
      EXPECT_EQ(fx.parties[0]->combine(ct, shares), msg) << a << "," << b;
    }
  }
}

TEST(Tdh2, EmptyAndLargePlaintexts) {
  Tdh2Fixture fx = make_tdh2(4, 2);
  Rng rng(3);
  for (std::size_t len : {0u, 1u, 16u, 1000u}) {
    Bytes msg(len);
    for (std::size_t i = 0; i < len; ++i)
      msg[i] = static_cast<std::uint8_t>(i);
    const Bytes ct = fx.deal.pub->encrypt(msg, to_bytes("L"), rng);
    auto shares = shares_from(fx, ct, {1, 3});
    EXPECT_EQ(fx.parties[0]->combine(ct, shares), msg) << len;
  }
}

TEST(Tdh2, CiphertextValidity) {
  Tdh2Fixture fx = make_tdh2(4, 2);
  Rng rng(4);
  const Bytes ct = fx.deal.pub->encrypt(to_bytes("m"), to_bytes("L"), rng);
  EXPECT_TRUE(fx.deal.pub->ciphertext_valid(ct));
  EXPECT_FALSE(fx.deal.pub->ciphertext_valid(Bytes{}));
  EXPECT_FALSE(fx.deal.pub->ciphertext_valid(Bytes(30, 0x11)));
}

TEST(Tdh2, MauledCiphertextRejected) {
  // The CCA property SINTRA needs: flipping any byte invalidates the
  // ciphertext, so honest parties refuse decryption shares (paper §2.6).
  Tdh2Fixture fx = make_tdh2(4, 2);
  Rng rng(5);
  const Bytes ct = fx.deal.pub->encrypt(to_bytes("bid: 100 CHF"), to_bytes("L"), rng);
  for (std::size_t pos = 0; pos < ct.size(); pos += 7) {
    Bytes mauled = ct;
    mauled[pos] ^= 0x01;
    EXPECT_FALSE(fx.deal.pub->ciphertext_valid(mauled)) << pos;
    EXPECT_EQ(fx.parties[0]->decrypt_share(mauled), std::nullopt) << pos;
  }
}

TEST(Tdh2, LabelIsAuthenticated) {
  // The label binds the ciphertext to its context (the channel pid); a
  // swapped label must invalidate it.
  Tdh2Fixture fx = make_tdh2(4, 2);
  Rng rng(6);
  const Bytes ct = fx.deal.pub->encrypt(to_bytes("m"), to_bytes("channel-A"), rng);
  // Re-serialize with a different label by surgically editing: simplest is
  // to check that two encryptions with different labels are both valid but
  // a byte flip in the label region invalidates (covered by Mauled test);
  // here verify decrypt_share refuses a ciphertext whose label was swapped
  // wholesale via parse/re-encode (no public API — flip a label byte).
  Bytes mauled = ct;
  // label is stored right after the 4-byte length + c bytes; flip a byte in
  // the first 40 bytes region conservatively:
  mauled[6] ^= 0xff;
  EXPECT_FALSE(fx.deal.pub->ciphertext_valid(mauled));
}

TEST(Tdh2, SharesVerify) {
  Tdh2Fixture fx = make_tdh2(4, 2);
  Rng rng(7);
  const Bytes ct = fx.deal.pub->encrypt(to_bytes("m"), to_bytes("L"), rng);
  for (int i = 0; i < 4; ++i) {
    auto share = fx.parties[static_cast<std::size_t>(i)]->decrypt_share(ct);
    ASSERT_TRUE(share.has_value());
    for (int j = 0; j < 4; ++j) {
      EXPECT_TRUE(fx.parties[static_cast<std::size_t>(j)]->verify_share(ct, i, *share));
    }
  }
}

TEST(Tdh2, WrongSignerShareRejected) {
  Tdh2Fixture fx = make_tdh2(4, 2);
  Rng rng(8);
  const Bytes ct = fx.deal.pub->encrypt(to_bytes("m"), to_bytes("L"), rng);
  auto share = fx.parties[0]->decrypt_share(ct);
  ASSERT_TRUE(share.has_value());
  EXPECT_FALSE(fx.parties[1]->verify_share(ct, 1, *share));
  EXPECT_FALSE(fx.parties[1]->verify_share(ct, 5, *share));
}

TEST(Tdh2, ForgedShareRejected) {
  Tdh2Fixture fx = make_tdh2(4, 2);
  Rng rng(9);
  const Bytes ct = fx.deal.pub->encrypt(to_bytes("m"), to_bytes("L"), rng);
  auto share = fx.parties[0]->decrypt_share(ct);
  ASSERT_TRUE(share.has_value());
  Bytes bad = *share;
  bad[bad.size() / 3] ^= 0x10;
  EXPECT_FALSE(fx.parties[1]->verify_share(ct, 0, bad));
  EXPECT_FALSE(fx.parties[1]->verify_share(ct, 0, Bytes{}));
}

TEST(Tdh2, ShareBoundToCiphertext) {
  Tdh2Fixture fx = make_tdh2(4, 2);
  Rng rng(10);
  const Bytes ct1 = fx.deal.pub->encrypt(to_bytes("m1"), to_bytes("L"), rng);
  const Bytes ct2 = fx.deal.pub->encrypt(to_bytes("m2"), to_bytes("L"), rng);
  auto share = fx.parties[0]->decrypt_share(ct1);
  ASSERT_TRUE(share.has_value());
  EXPECT_FALSE(fx.parties[1]->verify_share(ct2, 0, *share));
}

TEST(Tdh2, CombineChecksArguments) {
  Tdh2Fixture fx = make_tdh2(4, 3);
  Rng rng(11);
  const Bytes ct = fx.deal.pub->encrypt(to_bytes("m"), to_bytes("L"), rng);
  auto shares = shares_from(fx, ct, {0, 1});
  EXPECT_THROW((void)fx.parties[0]->combine(ct, shares),
               std::invalid_argument);
  auto s0 = fx.parties[0]->decrypt_share(ct);
  std::vector<std::pair<int, Bytes>> dup{{0, *s0}, {0, *s0}, {0, *s0}};
  EXPECT_THROW((void)fx.parties[0]->combine(ct, dup), std::invalid_argument);
}

TEST(Tdh2, NonMemberCanEncrypt) {
  // Paper §3.4: an external client only needs the public key.
  Tdh2Fixture fx = make_tdh2(4, 2);
  const Tdh2Public pub_copy = *fx.deal.pub;  // "shipped" to an outsider
  Rng rng(12);
  const Bytes ct = pub_copy.encrypt(to_bytes("external request"), to_bytes("L"), rng);
  auto shares = shares_from(fx, ct, {2, 3});
  EXPECT_EQ(fx.parties[0]->combine(ct, shares), to_bytes("external request"));
}

TEST(Tdh2, CiphertextsRandomized) {
  Tdh2Fixture fx = make_tdh2(4, 2);
  Rng rng(13);
  const Bytes m = to_bytes("same message");
  EXPECT_NE(fx.deal.pub->encrypt(m, to_bytes("L"), rng),
            fx.deal.pub->encrypt(m, to_bytes("L"), rng));
}

}  // namespace
}  // namespace sintra::crypto
