// Observability-layer tests: registry handle semantics, log-bucketed
// histogram edges, snapshot JSON round-trips, concurrent updates, and the
// typed event trace that superseded sim::MessageTrace.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.hpp"

namespace sintra::obs {
namespace {

TEST(MetricsRegistry, SameNameAndLabelsYieldSameInstance) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x.messages", {{"party", "0"}});
  Counter& b = reg.counter("x.messages", {{"party", "0"}});
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(MetricsRegistry, LabelOrderIsInsensitive) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x", {{"party", "1"}, {"layer", "ac"}});
  Counter& b = reg.counter("x", {{"layer", "ac"}, {"party", "1"}});
  EXPECT_EQ(&a, &b);
}

TEST(MetricsRegistry, DistinctLabelsAreDistinctInstances) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x", {{"party", "0"}});
  Counter& b = reg.counter("x", {{"party", "1"}});
  Counter& c = reg.counter("y", {{"party", "0"}});
  EXPECT_NE(&a, &b);
  EXPECT_NE(&a, &c);
  a.inc();
  EXPECT_EQ(b.value(), 0u);
}

TEST(MetricsRegistry, GaugeIsLastWriteWins) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("rtt", party_labels(2));
  g.set(12.5);
  g.set(3.25);
  EXPECT_DOUBLE_EQ(g.value(), 3.25);
}

TEST(MetricsRegistry, ResetZeroesButKeepsHandles) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  Gauge& g = reg.gauge("g");
  Histogram& h = reg.histogram("h");
  c.inc(7);
  g.set(1.0);
  h.observe(5.0);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  c.inc();  // the handle still works after reset
  EXPECT_EQ(c.value(), 1u);
}

TEST(Histogram, BucketEdges) {
  // Bucket i counts v with 1000*v (rounded) in [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::bucket_of(0.0), 0);
  EXPECT_EQ(Histogram::bucket_of(-1.0), 0);      // clamped, not UB
  EXPECT_EQ(Histogram::bucket_of(0.0004), 0);    // rounds to 0
  EXPECT_EQ(Histogram::bucket_of(0.001), 1);     // scaled == 1
  EXPECT_EQ(Histogram::bucket_of(0.002), 2);     // scaled == 2
  EXPECT_EQ(Histogram::bucket_of(0.003), 2);     // scaled == 3
  EXPECT_EQ(Histogram::bucket_of(0.004), 3);     // scaled == 4
  EXPECT_EQ(Histogram::bucket_of(1.0), 10);      // 1000 in [512, 1024)
  EXPECT_EQ(Histogram::bucket_of(1e16), Histogram::kBuckets - 1);  // clamp
  // bucket_upper is the exclusive bound in the observed unit.
  EXPECT_DOUBLE_EQ(Histogram::bucket_upper(10), 1.024);
  EXPECT_DOUBLE_EQ(Histogram::bucket_upper(0), 0.001);
}

TEST(Histogram, ObserveAccumulatesCountSumAndBuckets) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat");
  h.observe(0.5);
  h.observe(0.5);
  h.observe(300.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_NEAR(h.sum(), 301.0, 1e-9);
  EXPECT_EQ(h.bucket(Histogram::bucket_of(0.5)), 2u);
  EXPECT_EQ(h.bucket(Histogram::bucket_of(300.0)), 1u);
}

TEST(Snapshot, JsonRoundTrip) {
  MetricsRegistry reg;
  reg.counter("dispatcher.messages", party_layer_labels(0, "a.b.r*")).inc(42);
  reg.counter("plain").inc();
  reg.gauge("link.srtt_ms", {{"party", "0"}, {"peer", "3"}}).set(1.75);
  reg.gauge("weird \"quoted\"\n").set(-0.5);
  Histogram& h = reg.histogram("channel.round_ms", party_labels(1));
  h.observe(0.25);
  h.observe(4096.0);

  const Snapshot snap = reg.snapshot();
  const std::string json = snap.to_json();
  const Snapshot back = Snapshot::from_json(json);

  ASSERT_EQ(back.counters.size(), snap.counters.size());
  ASSERT_EQ(back.gauges.size(), snap.gauges.size());
  ASSERT_EQ(back.histograms.size(), snap.histograms.size());
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    EXPECT_EQ(back.counters[i].name, snap.counters[i].name);
    EXPECT_EQ(back.counters[i].labels, snap.counters[i].labels);
    EXPECT_EQ(back.counters[i].value, snap.counters[i].value);
  }
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    EXPECT_EQ(back.gauges[i].name, snap.gauges[i].name);
    EXPECT_DOUBLE_EQ(back.gauges[i].value, snap.gauges[i].value);
  }
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    EXPECT_EQ(back.histograms[i].count, snap.histograms[i].count);
    EXPECT_DOUBLE_EQ(back.histograms[i].sum, snap.histograms[i].sum);
    EXPECT_EQ(back.histograms[i].buckets, snap.histograms[i].buckets);
  }
  // Round-trip is a fixed point once through the parser.
  EXPECT_EQ(back.to_json(), json);
}

TEST(Snapshot, JsonRoundTripIsExactAtExtremePrecision) {
  // Counters must survive above 2^53 (crypto.work on large runs) and
  // gauges must round-trip bit-exactly, not at %.6g.
  MetricsRegistry reg;
  const std::uint64_t big = (std::uint64_t{1} << 63) + 12345;
  reg.counter("crypto.work", {{"op", "tdh2.combine"}}).inc(big);
  reg.gauge("crypto.work_units").set(12345678.25);
  reg.gauge("tiny").set(0.1);

  const Snapshot back = Snapshot::from_json(reg.snapshot().to_json());
  ASSERT_EQ(back.counters.size(), 1u);
  EXPECT_EQ(back.counters[0].value, big);
  ASSERT_EQ(back.gauges.size(), 2u);
  EXPECT_EQ(back.gauges[0].value, 12345678.25);
  EXPECT_EQ(back.gauges[1].value, 0.1);
}

TEST(Snapshot, FromJsonRejectsMalformedInput) {
  EXPECT_THROW(Snapshot::from_json("not json"), std::runtime_error);
  EXPECT_THROW(Snapshot::from_json("{\"schema\":\"other.v9\"}"),
               std::runtime_error);
  EXPECT_THROW(Snapshot::from_json("{\"schema\":\"sintra.metrics.v1\""),
               std::runtime_error);
}

TEST(MetricsRegistry, ConcurrentIncrementsAreLossless) {
  MetricsRegistry reg;
  Counter& c = reg.counter("hot", party_labels(0));
  Histogram& h = reg.histogram("hot_ms", party_labels(0));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&c, &h] {
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        h.observe(1.0);
      }
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.bucket(Histogram::bucket_of(1.0)),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(LayerOf, CollapsesDigitRunsToStar) {
  EXPECT_EQ(layer_of("cluster.atomic.r3.cb.2"), "cluster.atomic.r*.cb.*");
  EXPECT_EQ(layer_of("net.rbc"), "net.rbc");
  EXPECT_EQ(layer_of("a12b345"), "a*b*");
  EXPECT_EQ(layer_of(""), "");
}

TEST(EventTrace, CompatRecordIsASendAndByClassFiltersSends) {
  EventTrace trace;
  trace.record(1.0, 0, 1, "x.atomic.r1", 100);  // legacy signature
  Event decide;
  decide.type = EventType::kDecide;
  decide.pid = "x.atomic.r1";
  decide.bytes = 999;  // must not pollute the send totals
  trace.record(decide);

  ASSERT_EQ(trace.entries().size(), 2u);
  EXPECT_EQ(trace.entries()[0].type, EventType::kSend);
  const auto totals = trace.by_class([](const std::string& pid) {
    return layer_of(pid);
  });
  ASSERT_EQ(totals.size(), 1u);
  const auto& t = totals.at("x.atomic.r*");
  EXPECT_EQ(t.messages, 1u);
  EXPECT_EQ(t.bytes, 100u);
}

TEST(EventTrace, StreamWithoutRetentionWritesJsonLines) {
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  EventTrace trace;
  trace.set_stream(tmp);
  trace.set_retain(false);
  set_trace_sink(&trace);
  emit(EventType::kDeliver, 7.5, 2, 0, "x.ch", 16, 3.0, "batch");
  set_trace_sink(nullptr);

  EXPECT_TRUE(trace.entries().empty());  // streamed, not retained
  std::fflush(tmp);
  std::rewind(tmp);
  char line[512] = {};
  ASSERT_NE(std::fgets(line, sizeof(line), tmp), nullptr);
  const std::string s(line);
  EXPECT_NE(s.find("\"type\":\"deliver\""), std::string::npos);
  EXPECT_NE(s.find("\"pid\":\"x.ch\""), std::string::npos);
  EXPECT_NE(s.find("\"bytes\":16"), std::string::npos);
  std::fclose(tmp);
}

TEST(EventTrace, EmitWithoutSinkIsANoOp) {
  set_trace_sink(nullptr);
  emit(EventType::kSend, 0.0, 0, 1, "nobody.listens", 1);  // must not crash
  SUCCEED();
}

}  // namespace
}  // namespace sintra::obs
