#include "core/channel/optimistic_channel.hpp"

#include <gtest/gtest.h>

#include "core/channel/atomic_channel.hpp"
#include "sim_fixture.hpp"

namespace sintra::core {
namespace {

using testing::Cluster;

std::vector<std::unique_ptr<OptimisticChannel>> make_channels(
    Cluster& c, const std::string& pid) {
  return c.make_protocols<OptimisticChannel>(
      [&](Environment& env, Dispatcher& disp, int) {
        return std::make_unique<OptimisticChannel>(env, disp, pid);
      });
}

std::vector<std::string> seq_of(const OptimisticChannel& ch) {
  std::vector<std::string> out;
  for (const auto& d : ch.deliveries()) out.push_back(to_string(d.payload));
  return out;
}

bool all_have(const std::vector<std::unique_ptr<OptimisticChannel>>& cs,
              std::size_t count, const std::set<int>& skip = {}) {
  for (std::size_t i = 0; i < cs.size(); ++i) {
    if (skip.contains(static_cast<int>(i))) continue;
    if (cs[i]->deliveries().size() < count) return false;
  }
  return true;
}

TEST(OptimisticChannel, FastPathTotalOrder) {
  Cluster c(4, 1, 1);
  auto chans = make_channels(c, "oc.fast");
  for (int s = 0; s < 3; ++s) {
    for (int m = 0; m < 3; ++m) {
      c.sim.at(m * 2.0 + s, s, [&, s, m] {
        chans[static_cast<std::size_t>(s)]->send(
            to_bytes("f" + std::to_string(s) + std::to_string(m)));
      });
    }
  }
  ASSERT_TRUE(c.sim.run_until([&] { return all_have(chans, 9); }, 4e6));
  const auto expected = seq_of(*chans[0]);
  EXPECT_EQ(expected.size(), 9u);
  for (const auto& ch : chans) {
    EXPECT_EQ(seq_of(*ch), expected);
    EXPECT_EQ(ch->epoch(), 0);  // no switch happened
  }
}

template <typename C>
std::uint64_t messages_for_five_deliveries(const std::string& pid) {
  Cluster c(4, 1, 2);
  auto chans = c.make_protocols<C>(
      [&](Environment& env, Dispatcher& disp, int) {
        return std::make_unique<C>(env, disp, pid);
      });
  for (int m = 0; m < 5; ++m) {
    c.sim.at(m * 2.0, 0, [&, m] {
      chans[0]->send(to_bytes("x" + std::to_string(m)));
    });
  }
  EXPECT_TRUE(c.sim.run_until(
      [&] {
        return std::all_of(chans.begin(), chans.end(), [](const auto& ch) {
          return ch->deliveries().size() >= 5;
        });
      },
      4e6));
  return c.sim.messages_sent();
}

TEST(OptimisticChannel, FastPathCheaperThanFullAtomic) {
  // The paper's Conclusion: the optimistic path should cost "essentially
  // a single broadcast per delivered message" — far fewer network
  // messages than MVBA-per-round atomic broadcast.
  const auto optimistic_msgs =
      messages_for_five_deliveries<OptimisticChannel>("oc.cmp");
  const auto atomic_msgs = messages_for_five_deliveries<AtomicChannel>("ac.cmp");
  EXPECT_LT(optimistic_msgs * 3, atomic_msgs)
      << "optimistic=" << optimistic_msgs << " atomic=" << atomic_msgs;
}

TEST(OptimisticChannel, SwitchOnCrashedSequencerRecovers) {
  // Epoch 0's sequencer (party 0) crashes; the application layer
  // suspects; after the switch, party 1 sequences and delivery resumes.
  Cluster c(4, 1, 3);
  auto chans = make_channels(c, "oc.switch");
  c.sim.node(0).crash();
  for (int m = 0; m < 3; ++m) {
    c.sim.at(m * 1.0, 1, [&, m] {
      chans[1]->send(to_bytes("s" + std::to_string(m)));
    });
  }
  // Nothing can be ordered (sequencer dead); suspicion fires at t=500ms.
  for (int i = 1; i < 4; ++i) {
    c.sim.at(500.0, i, [&, i] { chans[static_cast<std::size_t>(i)]->suspect(); });
  }
  ASSERT_TRUE(c.sim.run_until([&] { return all_have(chans, 3, {0}); }, 8e6));
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(chans[static_cast<std::size_t>(i)]->epoch(), 1) << i;
    EXPECT_EQ(seq_of(*chans[static_cast<std::size_t>(i)]), seq_of(*chans[1]));
  }
}

TEST(OptimisticChannel, SwitchPreservesPrefixAndNoDuplicates) {
  // Deliver some messages in epoch 0, then force a switch; messages must
  // not be lost or duplicated across the epoch boundary.
  Cluster c(4, 1, 4);
  auto chans = make_channels(c, "oc.prefix");
  for (int m = 0; m < 3; ++m) {
    c.sim.at(m * 1.0, 2, [&, m] {
      chans[2]->send(to_bytes("pre" + std::to_string(m)));
    });
  }
  ASSERT_TRUE(c.sim.run_until([&] { return all_have(chans, 3); }, 4e6));

  // Gratuitous suspicion (sequencer was fine) — the switch must still be
  // safe.
  for (int i = 0; i < 4; ++i) {
    c.sim.at(c.sim.now_ms() + 10, i,
             [&, i] { chans[static_cast<std::size_t>(i)]->suspect(); });
  }
  // Send more during/after the switch.
  for (int m = 0; m < 3; ++m) {
    c.sim.at(c.sim.now_ms() + 20 + m, 1, [&, m] {
      chans[1]->send(to_bytes("post" + std::to_string(m)));
    });
  }
  ASSERT_TRUE(c.sim.run_until([&] { return all_have(chans, 6); }, 8e6));
  const auto expected = seq_of(*chans[0]);
  for (const auto& ch : chans) EXPECT_EQ(seq_of(*ch), expected);
  // No duplicates.
  std::set<std::string> uniq(expected.begin(), expected.end());
  EXPECT_EQ(uniq.size(), expected.size());
  // Prefix preserved: the three "pre" messages come first.
  for (int m = 0; m < 3; ++m) {
    EXPECT_EQ(expected[static_cast<std::size_t>(m)].rfind("pre", 0), 0u);
  }
}

TEST(OptimisticChannel, SingleComplaintDoesNotSwitch) {
  Cluster c(4, 1, 5);
  auto chans = make_channels(c, "oc.onecomplaint");
  c.sim.at(0.0, 3, [&] { chans[3]->suspect(); });
  c.sim.at(5.0, 0, [&] { chans[0]->send(to_bytes("still fast")); });
  ASSERT_TRUE(c.sim.run_until([&] { return all_have(chans, 1); }, 4e6));
  for (const auto& ch : chans) EXPECT_EQ(ch->epoch(), 0);
}

TEST(OptimisticChannel, ByzantineSequencerEquivocationCaughtByConsistency) {
  // The corrupted sequencer sends different ORDER payloads for slot 0 to
  // different parties.  Verifiable consistent broadcast allows at most
  // one version to complete, so honest parties never diverge; after
  // suspicion they switch and deliver via the new sequencer.
  Cluster c(4, 1, 6);
  auto chans = make_channels(c, "oc.byzseq");
  sim::Adversary adv(c.sim, c.deal);
  adv.corrupt(0);  // epoch-0 sequencer
  // Equivocating slot-0 SENDs under the real slot pid.
  const std::string slot_pid = "oc.byzseq.e0.s0.0";
  Writer wa;
  wa.u8(0);  // CB kSend
  wa.u32(0);
  wa.u64(0);
  wa.bytes(to_bytes("version-A"));
  Writer wb;
  wb.u8(0);
  wb.u32(0);
  wb.u64(0);
  wb.bytes(to_bytes("version-B"));
  adv.send_as(0, 1, slot_pid, wa.data(), 0.0);
  adv.send_as(0, 2, slot_pid, wb.data(), 0.0);
  adv.send_as(0, 3, slot_pid, wb.data(), 0.0);

  c.sim.run(2000);
  for (int i = 1; i < 4; ++i) {
    c.sim.at(c.sim.now_ms(), i,
             [&, i] { chans[static_cast<std::size_t>(i)]->suspect(); });
  }
  c.sim.at(c.sim.now_ms() + 1, 1, [&] {
    chans[1]->send(to_bytes("honest"));
  });
  ASSERT_TRUE(c.sim.run_until(
      [&] {
        for (int i = 1; i < 4; ++i) {
          bool has_honest = false;
          for (const auto& d : chans[static_cast<std::size_t>(i)]->deliveries()) {
            if (to_string(d.payload) == "honest") has_honest = true;
          }
          if (!has_honest) return false;
        }
        return true;
      },
      8e6));
  // All honest parties delivered identical sequences.
  for (int i = 2; i < 4; ++i) {
    EXPECT_EQ(seq_of(*chans[static_cast<std::size_t>(i)]), seq_of(*chans[1]));
  }
}

TEST(OptimisticChannel, LargerGroupFastPath) {
  Cluster c(7, 2, 7);
  auto chans = make_channels(c, "oc.n7");
  for (int m = 0; m < 4; ++m) {
    c.sim.at(m * 1.0, 3, [&, m] {
      chans[3]->send(to_bytes("n7-" + std::to_string(m)));
    });
  }
  ASSERT_TRUE(c.sim.run_until([&] { return all_have(chans, 4); }, 4e6));
  const auto expected = seq_of(*chans[0]);
  for (const auto& ch : chans) EXPECT_EQ(seq_of(*ch), expected);
}

}  // namespace
}  // namespace sintra::core
