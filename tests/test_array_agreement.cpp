#include "core/agreement/array_agreement.hpp"

#include <gtest/gtest.h>

#include "sim_fixture.hpp"

namespace sintra::core {
namespace {

using testing::Cluster;

ArrayValidator accept_all() {
  return [](BytesView) { return true; };
}

ArrayValidator require_prefix(std::string prefix) {
  return [prefix = std::move(prefix)](BytesView v) {
    const std::string s = to_string(v);
    return s.rfind(prefix, 0) == 0;
  };
}

std::vector<std::unique_ptr<ArrayAgreement>> make_mvba(
    Cluster& c, const std::string& pid,
    ArrayValidator validator = accept_all(),
    ArrayAgreement::CandidateOrder order =
        ArrayAgreement::CandidateOrder::kRandomLocal) {
  return c.make_protocols<ArrayAgreement>(
      [&](Environment& env, Dispatcher& disp, int) {
        return std::make_unique<ArrayAgreement>(env, disp, pid, validator,
                                                order);
      });
}

template <typename P>
bool all_decided(const std::vector<std::unique_ptr<P>>& ps,
                 const std::set<int>& skip = {}) {
  for (std::size_t i = 0; i < ps.size(); ++i) {
    if (skip.contains(static_cast<int>(i))) continue;
    if (!ps[i]->decided().has_value()) return false;
  }
  return true;
}

TEST(ArrayAgreement, AgreesOnOneProposedValue) {
  Cluster c(4, 1, 1);
  auto ps = make_mvba(c, "mvba.basic");
  std::set<std::string> proposed;
  for (int i = 0; i < 4; ++i) {
    const std::string v = "proposal-" + std::to_string(i);
    proposed.insert(v);
    c.sim.at(0.0, i, [&, i, v] { ps[static_cast<std::size_t>(i)]->propose(to_bytes(v)); });
  }
  ASSERT_TRUE(c.sim.run_until([&] { return all_decided(ps); }, 600000));
  const std::string decided = to_string(*ps[0]->decided());
  for (const auto& p : ps) EXPECT_EQ(to_string(*p->decided()), decided);
  EXPECT_TRUE(proposed.contains(decided)) << decided;
  // All parties agree on the selected candidate too.
  for (const auto& p : ps) {
    EXPECT_EQ(p->decided_candidate(), ps[0]->decided_candidate());
  }
}

TEST(ArrayAgreement, FixedOrderSelectsLowestLiveCandidate) {
  Cluster c(4, 1, 2);
  auto ps = make_mvba(c, "mvba.fixed", accept_all(),
                      ArrayAgreement::CandidateOrder::kFixed);
  for (int i = 0; i < 4; ++i) {
    c.sim.at(0.0, i, [&, i] {
      ps[static_cast<std::size_t>(i)]->propose(to_bytes("v" + std::to_string(i)));
    });
  }
  ASSERT_TRUE(c.sim.run_until([&] { return all_decided(ps); }, 600000));
  // With fixed order and all proposals circulating fast, candidate 0 wins
  // in the first iteration.
  EXPECT_EQ(ps[0]->decided_candidate(), 0);
  EXPECT_EQ(to_string(*ps[1]->decided()), "v0");
}

TEST(ArrayAgreement, ManySeedsAlwaysAgree) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Cluster c(4, 1, seed, 2.0, 0.45);
    auto ps = make_mvba(c, "mvba.seed" + std::to_string(seed));
    for (int i = 0; i < 4; ++i) {
      c.sim.at(static_cast<double>(3 * i), i, [&, i] {
        ps[static_cast<std::size_t>(i)]->propose(to_bytes("val" + std::to_string(i)));
      });
    }
    ASSERT_TRUE(c.sim.run_until([&] { return all_decided(ps); }, 600000))
        << seed;
    std::set<std::string> values;
    for (const auto& p : ps) values.insert(to_string(*p->decided()));
    EXPECT_EQ(values.size(), 1u) << seed;
  }
}

TEST(ArrayAgreement, ExternalValidityFiltersProposals) {
  // Parties 0 and 1 propose predicate-valid values, 2 and 3 cannot even
  // propose invalid ones; the decision must satisfy the predicate.
  Cluster c(4, 1, 3);
  auto ps = make_mvba(c, "mvba.valid", require_prefix("ok:"));
  EXPECT_THROW(ps[2]->propose(to_bytes("bad value")), std::invalid_argument);
  for (int i = 0; i < 4; ++i) {
    c.sim.at(0.0, i, [&, i] {
      ps[static_cast<std::size_t>(i)]->propose(to_bytes("ok:" + std::to_string(i)));
    });
  }
  ASSERT_TRUE(c.sim.run_until([&] { return all_decided(ps); }, 600000));
  EXPECT_TRUE(to_string(*ps[0]->decided()).rfind("ok:", 0) == 0);
}

TEST(ArrayAgreement, ByzantineInvalidProposalNeverDecided) {
  // Corrupted party broadcasts a predicate-invalid proposal via its own
  // consistent broadcast; external validity demands it is never selected.
  Cluster c(4, 1, 4);
  auto ps = make_mvba(c, "mvba.byz", require_prefix("good:"));
  sim::Adversary adv(c.sim, c.deal);
  adv.corrupt(0);  // candidate 0 would be examined early in fixed order
  // Forge the corrupted party's CB SEND with an invalid payload.
  Writer w;
  w.u8(0);  // CB kSend
  w.raw(to_bytes("EVIL payload"));
  adv.send_as_all(0, ps[1]->pid() + ".cb.0", w.data(), 0.0);
  for (int i = 1; i < 4; ++i) {
    c.sim.at(1.0, i, [&, i] {
      ps[static_cast<std::size_t>(i)]->propose(to_bytes("good:" + std::to_string(i)));
    });
  }
  ASSERT_TRUE(c.sim.run_until([&] { return all_decided(ps, {0}); }, 600000));
  for (int i = 1; i < 4; ++i) {
    EXPECT_TRUE(to_string(*ps[static_cast<std::size_t>(i)]->decided()).rfind("good:", 0) == 0);
  }
}

TEST(ArrayAgreement, ToleratesCrashedParty) {
  Cluster c(4, 1, 5);
  auto ps = make_mvba(c, "mvba.crash");
  c.sim.node(1).crash();
  for (int i : {0, 2, 3}) {
    c.sim.at(0.0, i, [&, i] {
      ps[static_cast<std::size_t>(i)]->propose(to_bytes("live" + std::to_string(i)));
    });
  }
  ASSERT_TRUE(c.sim.run_until([&] { return all_decided(ps, {1}); }, 600000));
  std::set<std::string> values;
  for (int i : {0, 2, 3}) values.insert(to_string(*ps[static_cast<std::size_t>(i)]->decided()));
  EXPECT_EQ(values.size(), 1u);
  // The crashed party's value may still be selected only if it circulated —
  // it never sent anything, so the decision must come from a live party.
  EXPECT_NE(to_string(*ps[0]->decided()), "live1");
}

TEST(ArrayAgreement, CrashedFixedOrderFirstCandidateIsSkipped) {
  // With fixed order, candidate 0 crashed: its VBA decides 0 and the loop
  // must move on — the second band of Figure 5's explanation.
  Cluster c(4, 1, 6);
  auto ps = make_mvba(c, "mvba.skip", accept_all(),
                      ArrayAgreement::CandidateOrder::kFixed);
  c.sim.node(0).crash();
  for (int i = 1; i < 4; ++i) {
    c.sim.at(0.0, i, [&, i] {
      ps[static_cast<std::size_t>(i)]->propose(to_bytes("x" + std::to_string(i)));
    });
  }
  ASSERT_TRUE(c.sim.run_until([&] { return all_decided(ps, {0}); }, 600000));
  for (int i = 1; i < 4; ++i) {
    EXPECT_GT(ps[static_cast<std::size_t>(i)]->decided_candidate(), 0);
    EXPECT_GE(ps[static_cast<std::size_t>(i)]->iterations_used(), 2);
  }
}

TEST(ArrayAgreement, EmptyValueAllowed) {
  Cluster c(4, 1, 7);
  auto ps = make_mvba(c, "mvba.empty");
  for (int i = 0; i < 4; ++i) {
    c.sim.at(0.0, i, [&, i] { ps[static_cast<std::size_t>(i)]->propose(Bytes{}); });
  }
  ASSERT_TRUE(c.sim.run_until([&] { return all_decided(ps); }, 600000));
  EXPECT_TRUE(ps[2]->decided()->empty());
}

TEST(ArrayAgreement, DoubleProposeRejected) {
  Cluster c(4, 1, 8);
  auto ps = make_mvba(c, "mvba.double");
  c.sim.at(0.0, 0, [&] {
    ps[0]->propose(to_bytes("a"));
    EXPECT_THROW(ps[0]->propose(to_bytes("b")), std::logic_error);
  });
  c.sim.run(100);
}

TEST(ArrayAgreement, LargerGroupWithTwoCrashes) {
  Cluster c(7, 2, 9);
  auto ps = make_mvba(c, "mvba.n7");
  c.sim.node(3).crash();
  c.sim.node(5).crash();
  for (int i : {0, 1, 2, 4, 6}) {
    c.sim.at(0.0, i, [&, i] {
      ps[static_cast<std::size_t>(i)]->propose(to_bytes("n7-" + std::to_string(i)));
    });
  }
  ASSERT_TRUE(c.sim.run_until([&] { return all_decided(ps, {3, 5}); }, 900000));
  std::set<std::string> values;
  for (int i : {0, 1, 2, 4, 6}) values.insert(to_string(*ps[static_cast<std::size_t>(i)]->decided()));
  EXPECT_EQ(values.size(), 1u);
}

TEST(ArrayAgreement, DecideCallbackFires) {
  Cluster c(4, 1, 10);
  auto ps = make_mvba(c, "mvba.cb");
  std::optional<std::string> got;
  ps[3]->set_decide_callback([&](const Bytes& v) { got = to_string(v); });
  for (int i = 0; i < 4; ++i) {
    c.sim.at(0.0, i, [&, i] {
      ps[static_cast<std::size_t>(i)]->propose(to_bytes("cb" + std::to_string(i)));
    });
  }
  ASSERT_TRUE(c.sim.run_until([&] { return all_decided(ps); }, 600000));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, to_string(*ps[3]->decided()));
}

}  // namespace
}  // namespace sintra::core
