// Cross-channel replay protection: TDH2's label binds a ciphertext to
// its channel (Shoup–Gennaro labeled CCA security); a ciphertext sealed
// for channel A must be skipped by channel B.
#include <gtest/gtest.h>

#include "core/channel/secure_atomic_channel.hpp"
#include "sim_fixture.hpp"

namespace sintra::core {
namespace {

using testing::Cluster;

TEST(LabelBinding, Tdh2LabelExtraction) {
  Cluster c(4, 1, 0x1ab);
  Rng rng(1);
  const Bytes ct = c.deal.encryption_key->encrypt(
      to_bytes("m"), to_bytes("channel-A"), rng);
  const auto label = crypto::tdh2_ciphertext_label(ct);
  ASSERT_TRUE(label.has_value());
  EXPECT_EQ(to_string(*label), "channel-A");
  EXPECT_EQ(crypto::tdh2_ciphertext_label(Bytes{}), std::nullopt);
  EXPECT_EQ(crypto::tdh2_ciphertext_label(Bytes(5, 0x1)), std::nullopt);
}

TEST(LabelBinding, CrossChannelReplaySkipped) {
  // A Byzantine member takes a valid ciphertext destined for channel A
  // and broadcasts it on channel B.  B's parties must skip it (it is
  // valid TDH2, but its label names the wrong channel), while the honest
  // payload still flows on B.
  Cluster c(4, 1, 0x1ac);
  auto chan_a = c.make_protocols<SecureAtomicChannel>(
      [&](Environment& env, Dispatcher& disp, int) {
        return std::make_unique<SecureAtomicChannel>(env, disp, "chanA");
      });
  auto chan_b = c.make_protocols<SecureAtomicChannel>(
      [&](Environment& env, Dispatcher& disp, int) {
        return std::make_unique<SecureAtomicChannel>(env, disp, "chanB");
      });

  Rng rng(7);
  const Bytes ct_for_a = SecureAtomicChannel::encrypt(
      *c.deal.encryption_key, "chanA", to_bytes("secret for A"), rng);
  // Party 3 (acting maliciously but through its honest stack, which any
  // member can do via send_ciphertext) replays A's ciphertext onto B.
  c.sim.at(0.0, 3, [&] { chan_b[3]->send_ciphertext(ct_for_a); });
  c.sim.at(1.0, 0, [&] { chan_b[0]->send(to_bytes("b-payload")); });
  c.sim.at(1.0, 1, [&] { chan_a[1]->send_ciphertext(ct_for_a); });

  ASSERT_TRUE(c.sim.run_until(
      [&] {
        return std::all_of(chan_b.begin(), chan_b.end(),
                           [](const auto& ch) {
                             return ch->deliveries().size() >= 1;
                           }) &&
               std::all_of(chan_a.begin(), chan_a.end(),
                           [](const auto& ch) {
                             return ch->deliveries().size() >= 1;
                           });
      },
      8e6));
  // Channel B delivered ONLY its own payload; the replayed A-ciphertext
  // was skipped uniformly.
  for (const auto& ch : chan_b) {
    ASSERT_EQ(ch->deliveries().size(), 1u);
    EXPECT_EQ(to_string(ch->deliveries()[0].payload), "b-payload");
  }
  // Channel A (the legitimate context) decrypted it fine.
  for (const auto& ch : chan_a) {
    EXPECT_EQ(to_string(ch->deliveries()[0].payload), "secret for A");
  }
}

TEST(LabelBinding, HonestPathUnaffected) {
  Cluster c(4, 1, 0x1ad);
  auto chans = c.make_protocols<SecureAtomicChannel>(
      [&](Environment& env, Dispatcher& disp, int) {
        return std::make_unique<SecureAtomicChannel>(env, disp, "labelled");
      });
  c.sim.at(0.0, 2, [&] { chans[2]->send(to_bytes("normal")); });
  ASSERT_TRUE(c.sim.run_until(
      [&] {
        return std::all_of(chans.begin(), chans.end(), [](const auto& ch) {
          return ch->deliveries().size() >= 1;
        });
      },
      8e6));
  EXPECT_EQ(to_string(chans[0]->deliveries()[0].payload), "normal");
}

}  // namespace
}  // namespace sintra::core
