// Targeted edge cases: Knuth Algorithm D correction paths, key-file
// corruption fuzzing, and consecutive optimistic-channel switches.
#include <gtest/gtest.h>

#include "bignum/bigint.hpp"
#include "core/channel/optimistic_channel.hpp"
#include "crypto/keyfile.hpp"
#include "sim_fixture.hpp"

namespace sintra {
namespace {

using bignum::BigInt;

// --- Knuth Algorithm D: qhat-correction and add-back territory ---

BigInt from_limbs_be(std::initializer_list<std::uint32_t> limbs_be) {
  BigInt acc;
  for (std::uint32_t limb : limbs_be) {
    acc = (acc << 32) + BigInt{static_cast<std::int64_t>(limb)};
  }
  return acc;
}

void check_divmod(const BigInt& a, const BigInt& b) {
  const auto [q, r] = BigInt::div_mod(a, b);
  EXPECT_EQ(q * b + r, a);
  EXPECT_GE(r, BigInt{0});
  EXPECT_LT(r, b);
}

TEST(KnuthD, QhatOverestimatePatterns) {
  // Dividends saturated with 0xffffffff and divisors with a 0x80000000
  // top limb sit exactly where qhat must be corrected downward.
  const std::vector<BigInt> dividends = {
      from_limbs_be({0xffffffff, 0xffffffff, 0xffffffff, 0xffffffff}),
      from_limbs_be({0x80000000, 0x00000000, 0x00000000, 0x00000000}),
      from_limbs_be({0x80000000, 0xffffffff, 0xfffffffe, 0x00000001}),
      from_limbs_be({0xfffffffe, 0x00000000, 0xffffffff, 0xfffffffe}),
      from_limbs_be({0x7fffffff, 0xffffffff, 0x80000000, 0x00000000}),
  };
  const std::vector<BigInt> divisors = {
      from_limbs_be({0x80000000, 0x00000000}),
      from_limbs_be({0x80000000, 0x00000001}),
      from_limbs_be({0x80000000, 0xffffffff}),
      from_limbs_be({0xffffffff, 0xfffffffe}),
      from_limbs_be({0x80000001, 0x00000000, 0x00000001}),
  };
  for (const BigInt& a : dividends) {
    for (const BigInt& b : divisors) {
      check_divmod(a, b);
    }
  }
}

// Same idea at the 64-bit limb width the PR 8 layer actually divides in:
// the 32-bit patterns above now land mid-limb, so these vectors re-create
// the qhat-overestimate and add-back corners on true limb boundaries
// (saturated 0xffff.. dividends against 0x8000.. divisors, and divisors
// whose second limb maximizes the rhat correction loop).
BigInt from_limbs64_be(std::initializer_list<std::uint64_t> limbs_be) {
  BigInt acc;
  for (std::uint64_t limb : limbs_be) {
    acc = (acc << 64) + (BigInt{static_cast<std::int64_t>(limb >> 32)} << 32) +
          BigInt{static_cast<std::int64_t>(limb & 0xffffffffu)};
  }
  return acc;
}

TEST(KnuthD, QhatOverestimatePatterns64) {
  constexpr std::uint64_t kMax = 0xffffffffffffffffULL;
  constexpr std::uint64_t kTop = 0x8000000000000000ULL;
  const std::vector<BigInt> dividends = {
      from_limbs64_be({kMax, kMax, kMax, kMax}),
      from_limbs64_be({kTop, 0, 0, 0}),
      from_limbs64_be({kTop, kMax, kMax - 1, 1}),
      from_limbs64_be({kMax - 1, 0, kMax, kMax - 1}),
      from_limbs64_be({kTop - 1, kMax, kTop, 0}),
  };
  const std::vector<BigInt> divisors = {
      from_limbs64_be({kTop, 0}),
      from_limbs64_be({kTop, 1}),
      from_limbs64_be({kTop, kMax}),
      from_limbs64_be({kMax, kMax - 1}),
      from_limbs64_be({kTop + 1, 0, 1}),
  };
  for (const BigInt& a : dividends) {
    for (const BigInt& b : divisors) {
      check_divmod(a, b);
    }
  }
}

TEST(KnuthD, SingleLimbDivisor64) {
  // The one-limb fast path divides through a 128-bit intermediate.
  const std::vector<BigInt> dividends = {
      from_limbs64_be({0xffffffffffffffffULL, 0xffffffffffffffffULL}),
      from_limbs64_be({1, 0}),
      from_limbs64_be({0x8000000000000000ULL, 0x0000000000000001ULL}),
  };
  for (const BigInt& a : dividends) {
    for (std::uint64_t d : {0xffffffffffffffffULL, 0x8000000000000000ULL,
                            0x100000001ULL, 3ULL}) {
      check_divmod(a, from_limbs64_be({d}));
    }
  }
}

TEST(KnuthD, NearEqualOperands) {
  Rng rng(0xedce);
  for (int i = 0; i < 50; ++i) {
    const BigInt b = BigInt::random_bits(rng, 160);
    check_divmod(b, b);                       // q=1, r=0
    check_divmod(b + BigInt{1}, b);           // q=1, r=1
    check_divmod(b - BigInt{1}, b);           // q=0
    check_divmod((b << 32) - BigInt{1}, b);   // max single-digit quotient
  }
}

TEST(KnuthD, PowerOfTwoBoundaries) {
  for (int abits : {64, 65, 96, 127, 128, 129, 256}) {
    for (int bbits : {33, 63, 64, 65, 96}) {
      if (bbits >= abits) continue;
      const BigInt a = (BigInt{1} << abits) - BigInt{1};
      const BigInt b = (BigInt{1} << bbits) + BigInt{1};
      check_divmod(a, b);
      check_divmod(a, b - BigInt{2});
    }
  }
}

TEST(KnuthD, DenseRandomSweepWithSaturatedLimbs) {
  // Random operands whose limbs are biased toward 0x00000000/0xffffffff —
  // the corner of the distribution where correction branches live.
  Rng rng(0xdeca);
  for (int i = 0; i < 300; ++i) {
    auto biased = [&](int limbs) {
      BigInt acc;
      for (int j = 0; j < limbs; ++j) {
        const std::uint64_t pick = rng.uniform(4);
        std::uint32_t limb;
        if (pick == 0) limb = 0x00000000;
        else if (pick == 1) limb = 0xffffffff;
        else if (pick == 2) limb = 0x80000000;
        else limb = static_cast<std::uint32_t>(rng.next_u64());
        acc = (acc << 32) + BigInt{static_cast<std::int64_t>(limb)};
      }
      return acc;
    };
    const BigInt a = biased(2 + static_cast<int>(rng.uniform(6)));
    const BigInt b = biased(2 + static_cast<int>(rng.uniform(3)));
    if (b.is_zero()) continue;
    check_divmod(a, b);
  }
}

// --- Key-file corruption fuzz ---

TEST(KeyFileFuzz, RandomSingleByteCorruptionNeverCrashes) {
  const crypto::Deal deal = testing::cached_deal(4, 1);
  const Bytes good = crypto::write_party_keys(deal.raw[0]);
  Rng rng(0xf11e);
  int parsed_ok = 0;
  for (int i = 0; i < 300; ++i) {
    Bytes mutated = good;
    const std::size_t pos = rng.uniform(mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform(255));
    try {
      const crypto::RawPartyKeys raw = crypto::read_party_keys(mutated);
      // Structurally valid despite the flip (e.g. inside a key's bytes):
      // materialization may throw or succeed, but must not crash.
      ++parsed_ok;
      try {
        (void)crypto::materialize(raw);
      } catch (const std::exception&) {
      }
    } catch (const SerdeError&) {
      // expected for most flips
    }
  }
  // Some flips land inside opaque key bytes and still parse.
  EXPECT_GE(parsed_ok, 0);
}

TEST(KeyFileFuzz, RandomTruncationNeverCrashes) {
  const crypto::Deal deal = testing::cached_deal(4, 1);
  const Bytes good = crypto::write_party_keys(deal.raw[2]);
  Rng rng(0xf12e);
  for (int i = 0; i < 100; ++i) {
    const std::size_t len = rng.uniform(good.size());
    const Bytes truncated(good.begin(),
                          good.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW((void)crypto::read_party_keys(truncated), SerdeError);
  }
}

// --- Optimistic channel: two consecutive bad sequencers ---

TEST(OptimisticDoubleSwitch, TwoConsecutiveCrashedSequencersRecovered) {
  using core::OptimisticChannel;
  testing::Cluster c(7, 2, 0xdb1);
  auto chans = c.make_protocols<OptimisticChannel>(
      [&](core::Environment& env, core::Dispatcher& disp, int) {
        return std::make_unique<OptimisticChannel>(env, disp, "oc.double");
      });
  // Sequencers of epochs 0 and 1 (parties 0 and 1) are both dead.
  c.sim.node(0).crash();
  c.sim.node(1).crash();
  for (int m = 0; m < 3; ++m) {
    c.sim.at(m * 1.0, 3, [&, m] {
      chans[3]->send(to_bytes("d" + std::to_string(m)));
    });
  }
  // First round of suspicion at 500 ms, second at 3000 ms.
  for (double when : {500.0, 3000.0}) {
    for (int i = 2; i < 7; ++i) {
      c.sim.at(when, i, [&, i] { chans[static_cast<std::size_t>(i)]->suspect(); });
    }
  }
  ASSERT_TRUE(c.sim.run_until(
      [&] {
        for (int i = 2; i < 7; ++i) {
          if (chans[static_cast<std::size_t>(i)]->deliveries().size() < 3)
            return false;
        }
        return true;
      },
      6e7));
  for (int i = 2; i < 7; ++i) {
    EXPECT_EQ(chans[static_cast<std::size_t>(i)]->epoch(), 2) << i;
  }
  // Identical sequences, no duplicates.
  auto seq_of = [](const OptimisticChannel& ch) {
    std::vector<std::string> out;
    for (const auto& d : ch.deliveries()) out.push_back(to_string(d.payload));
    return out;
  };
  const auto expected = seq_of(*chans[2]);
  EXPECT_EQ(expected, (std::vector<std::string>{"d0", "d1", "d2"}));
  for (int i = 3; i < 7; ++i) {
    EXPECT_EQ(seq_of(*chans[static_cast<std::size_t>(i)]), expected) << i;
  }
}

}  // namespace
}  // namespace sintra
