#include "facade/blocking_primitives.hpp"

#include <gtest/gtest.h>

#include "sim_fixture.hpp"

namespace sintra::facade {
namespace {

using namespace std::chrono_literals;

crypto::Deal deal4() { return testing::cached_deal(4, 1); }

TEST(BlockingBroadcast, ReliableRoundTrip) {
  const auto deal = deal4();
  LocalGroup group(deal);
  std::vector<std::unique_ptr<BlockingReliableBroadcast>> bs;
  for (int i = 0; i < 4; ++i) {
    bs.push_back(std::make_unique<BlockingReliableBroadcast>(
        group, i, "fb.rbc", /*sender=*/2));
  }
  EXPECT_FALSE(bs[0]->can_receive());
  bs[2]->send(to_bytes("reliable payload"));
  for (auto& b : bs) {
    auto payload = b->receive_for(30s);
    ASSERT_TRUE(payload.has_value());
    EXPECT_EQ(to_string(*payload), "reliable payload");
  }
  EXPECT_TRUE(bs[0]->can_receive());
}

TEST(BlockingBroadcast, ConsistentRoundTrip) {
  const auto deal = deal4();
  LocalGroup group(deal);
  std::vector<std::unique_ptr<BlockingConsistentBroadcast>> bs;
  for (int i = 0; i < 4; ++i) {
    bs.push_back(std::make_unique<BlockingConsistentBroadcast>(
        group, i, "fb.cb", /*sender=*/0));
  }
  bs[0]->send(to_bytes("echo payload"));
  for (auto& b : bs) {
    auto payload = b->receive_for(30s);
    ASSERT_TRUE(payload.has_value());
    EXPECT_EQ(to_string(*payload), "echo payload");
  }
}

TEST(BlockingAgreement, NegotiateUnanimous) {
  const auto deal = deal4();
  LocalGroup group(deal);
  std::vector<std::unique_ptr<BlockingBinaryAgreement>> as;
  for (int i = 0; i < 4; ++i) {
    as.push_back(
        std::make_unique<BlockingBinaryAgreement>(group, i, "fb.ba"));
  }
  // negotiate() from several threads at once (it blocks per caller).
  std::vector<std::thread> threads;
  std::vector<int> results(4, -1);
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&, i] {
      results[static_cast<std::size_t>(i)] =
          as[static_cast<std::size_t>(i)]->negotiate(true) ? 1 : 0;
    });
  }
  for (auto& th : threads) th.join();
  for (int r : results) EXPECT_EQ(r, 1);
  EXPECT_TRUE(as[0]->can_decide());
}

TEST(BlockingAgreement, MixedProposalsAgree) {
  const auto deal = deal4();
  LocalGroup group(deal);
  std::vector<std::unique_ptr<BlockingBinaryAgreement>> as;
  for (int i = 0; i < 4; ++i) {
    as.push_back(
        std::make_unique<BlockingBinaryAgreement>(group, i, "fb.bamix"));
  }
  for (int i = 0; i < 4; ++i) as[static_cast<std::size_t>(i)]->propose(i % 2 == 0);
  const bool v0 = as[0]->decide();
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(as[static_cast<std::size_t>(i)]->decide(), v0);
  }
}

TEST(BlockingArrayAgreement, NegotiateValues) {
  const auto deal = deal4();
  LocalGroup group(deal);
  std::vector<std::unique_ptr<BlockingArrayAgreement>> as;
  for (int i = 0; i < 4; ++i) {
    as.push_back(std::make_unique<BlockingArrayAgreement>(
        group, i, "fb.mvba", [](BytesView) { return true; }));
  }
  for (int i = 0; i < 4; ++i) {
    as[static_cast<std::size_t>(i)]->propose(
        to_bytes("value-" + std::to_string(i)));
  }
  const Bytes v0 = as[0]->decide();
  EXPECT_EQ(to_string(v0).rfind("value-", 0), 0u);
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(as[static_cast<std::size_t>(i)]->decide(), v0);
  }
}

}  // namespace
}  // namespace sintra::facade
