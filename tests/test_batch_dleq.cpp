// Batch DLEQ verification (crypto/group.hpp): the random-linear-
// combination batch accepts exactly what the scalar verifier accepts,
// bisection isolates the offenders, a size-1 batch is the scalar
// verifier, and the odd-exponent batched membership check cannot be
// fooled by order-2 cofactor components.
#include <gtest/gtest.h>

#include <vector>

#include "crypto/group.hpp"

namespace sintra::crypto {
namespace {

const DlogGroup& test_group() {
  static const DlogGroup grp = [] {
    Rng rng(0xba7c4);
    return DlogGroup::generate(rng, 256, 96);
  }();
  return grp;
}

/// `count` valid statements sharing g1 = g and g2 = hash("base") — the
/// shape coin/TDH2 batches have, which exercises the shared-base folding.
std::vector<DleqStatement> make_statements(std::size_t count,
                                           std::uint64_t seed,
                                           bool shared_g2 = true) {
  const DlogGroup& grp = test_group();
  Rng rng(seed);
  std::vector<DleqStatement> stmts;
  stmts.reserve(count);
  for (std::size_t j = 0; j < count; ++j) {
    const BigInt g2 =
        shared_g2 ? grp.hash_to_group(to_bytes("base"))
                  : grp.hash_to_group(to_bytes("base." + std::to_string(j)));
    const BigInt x = grp.random_exponent(rng);
    DleqStatement s;
    s.g1 = grp.g();
    s.h1 = grp.exp(grp.g(), x);
    s.g2 = g2;
    s.h2 = grp.exp(g2, x);
    s.proof = dleq_prove(grp, s.g1, s.h1, s.g2, s.h2, x, rng);
    stmts.push_back(std::move(s));
  }
  return stmts;
}

TEST(BatchDleq, ValidBatchAccepts) {
  const DlogGroup& grp = test_group();
  Rng rng(1);
  for (const std::size_t m : {std::size_t{2}, std::size_t{4}, std::size_t{16}}) {
    auto stmts = make_statements(m, 0x5eed + m);
    EXPECT_TRUE(dleq_batch_verify(grp, stmts, rng)) << "m=" << m;
    EXPECT_TRUE(dleq_batch_verify(grp, stmts, rng, {},
                                  BatchMembership::kBatched))
        << "m=" << m;
  }
  // Distinct g2 per statement: no shared-base folding possible.
  auto varied = make_statements(5, 0xabcd, /*shared_g2=*/false);
  EXPECT_TRUE(dleq_batch_verify(grp, varied, rng));
  // Empty batch is vacuously valid.
  EXPECT_TRUE(dleq_batch_verify(grp, {}, rng));
}

TEST(BatchDleq, AnyCorruptedStatementRejectsTheBatch) {
  const DlogGroup& grp = test_group();
  Rng rng(2);
  auto stmts = make_statements(8, 0xc0de);
  stmts[5].proof.z = (stmts[5].proof.z + BigInt{1}).mod(grp.q());
  EXPECT_FALSE(dleq_batch_verify(grp, stmts, rng));
  // Rejection is not randomness luck: repeat with fresh batch coefficients.
  EXPECT_FALSE(dleq_batch_verify(grp, stmts, rng));
}

TEST(BatchDleq, BisectionIsolatesCorruptedProofs) {
  const DlogGroup& grp = test_group();
  Rng rng(3);
  auto stmts = make_statements(16, 0xf00d);
  stmts[3].proof.a1 = grp.mul(stmts[3].proof.a1, grp.g());
  stmts[11].proof.z = (stmts[11].proof.z + BigInt{7}).mod(grp.q());
  const std::vector<std::size_t> bad = dleq_find_invalid(grp, stmts, rng);
  EXPECT_EQ(bad, (std::vector<std::size_t>{3, 11}));
}

TEST(BatchDleq, BisectionOnAllValidFindsNothing) {
  const DlogGroup& grp = test_group();
  Rng rng(4);
  auto stmts = make_statements(6, 0x600d);
  EXPECT_TRUE(dleq_find_invalid(grp, stmts, rng).empty());
}

TEST(BatchDleq, SizeOneMatchesScalarVerifier) {
  // A batch of one delegates to dleq_verify, so the results must agree
  // bit-for-bit on both valid and corrupted proofs.
  const DlogGroup& grp = test_group();
  Rng rng(5);
  auto stmts = make_statements(1, 0x1);
  auto check = [&](const DleqStatement& s) {
    const bool scalar =
        dleq_verify(grp, s.g1, s.h1, s.g2, s.h2, s.proof);
    const bool batch = dleq_batch_verify(grp, {s}, rng);
    EXPECT_EQ(scalar, batch);
    return scalar;
  };
  EXPECT_TRUE(check(stmts[0]));
  DleqStatement tampered = stmts[0];
  tampered.proof.z = (tampered.proof.z + BigInt{1}).mod(grp.q());
  EXPECT_FALSE(check(tampered));
  DleqStatement wild = stmts[0];
  wild.proof.a2 = grp.p() + BigInt{2};  // out of range
  EXPECT_FALSE(check(wild));
}

TEST(BatchDleq, BatchedMembershipCatchesOrderTwoComponent) {
  // p = 2q+1, so the only cofactor junk possible is an order-2 component:
  // y' = y * (p-1).  The odd batch exponents guarantee (-1)^t = -1, so
  // is_member_batch can never be fooled — deterministically, not w.h.p.
  const DlogGroup& grp = test_group();
  Rng rng(6);
  std::vector<BigInt> members;
  for (int i = 0; i < 4; ++i) {
    members.push_back(grp.exp(grp.g(), grp.random_exponent(rng)));
  }
  std::vector<const BigInt*> ptrs;
  for (const BigInt& m : members) ptrs.push_back(&m);
  EXPECT_TRUE(grp.is_member_batch(ptrs, rng));

  const BigInt twisted = grp.mul(members[2], grp.p() - BigInt{1});
  EXPECT_FALSE(grp.is_member(twisted));
  std::vector<BigInt> poisoned = members;
  poisoned[2] = twisted;
  ptrs.clear();
  for (const BigInt& m : poisoned) ptrs.push_back(&m);
  for (int trial = 0; trial < 8; ++trial) {
    EXPECT_FALSE(grp.is_member_batch(ptrs, rng)) << trial;
  }
}

TEST(BatchDleq, RejectsOutOfRangeElementsInBatch) {
  const DlogGroup& grp = test_group();
  Rng rng(7);
  auto stmts = make_statements(3, 0xbad);
  stmts[1].h2 = grp.p() + BigInt{3};
  EXPECT_FALSE(dleq_batch_verify(grp, stmts, rng));
  const std::vector<std::size_t> bad = dleq_find_invalid(grp, stmts, rng);
  EXPECT_EQ(bad, std::vector<std::size_t>{1});
}

}  // namespace
}  // namespace sintra::crypto
