// Sliding-window link tests: unit-level over a scripted channel, and
// integration-level by running a full Byzantine protocol over lossy
// datagrams through the link layer — the paper's planned TCP replacement
// (§3) actually carrying SINTRA traffic.
#include "core/link/sliding_window.hpp"

#include <gtest/gtest.h>

#include "core/broadcast/reliable_broadcast.hpp"
#include "core/channel/atomic_channel.hpp"
#include "sim_fixture.hpp"

namespace sintra::core {
namespace {

using testing::Cluster;

// --- Unit level: a scripted in-memory channel pair ---

class ScriptedChannel final : public DatagramChannel {
 public:
  void send_datagram(Bytes datagram) override {
    sent.push_back(std::move(datagram));
  }
  void call_later(double delay_ms, std::function<void()> fn) override {
    timers.emplace_back(delay_ms, std::move(fn));
  }
  void fire_timers() {
    auto pending = std::move(timers);
    timers.clear();
    for (auto& [delay, fn] : pending) fn();
  }
  std::vector<Bytes> sent;
  std::vector<std::pair<double, std::function<void()>>> timers;
};

struct LinkPair {
  ScriptedChannel ca, cb;
  SlidingWindowLink a, b;
  std::vector<std::string> delivered_at_a, delivered_at_b;

  explicit LinkPair(SlidingWindowLink::Options opts = {})
      : a(ca, 0, 1, to_bytes("0123456789abcdef"), opts),
        b(cb, 1, 0, to_bytes("0123456789abcdef"), opts) {
    a.set_deliver_callback(
        [this](Bytes m) { delivered_at_a.push_back(to_string(m)); });
    b.set_deliver_callback(
        [this](Bytes m) { delivered_at_b.push_back(to_string(m)); });
    // Epoch bootstrap, as NetEnvironment does on startup: exchange
    // announcements so both ends know the peer's session epoch and
    // manually-fed frames below are numbered against a known session.
    a.announce();
    b.announce();
    shuttle();
    ca.sent.clear();
    cb.sent.clear();
  }

  // Moves all queued datagrams in both directions until quiescent.
  void shuttle() {
    for (int round = 0; round < 100; ++round) {
      auto from_a = std::move(ca.sent);
      ca.sent.clear();
      auto from_b = std::move(cb.sent);
      cb.sent.clear();
      if (from_a.empty() && from_b.empty()) return;
      for (const auto& d : from_a) b.on_datagram(d);
      for (const auto& d : from_b) a.on_datagram(d);
    }
  }
};

TEST(SlidingWindow, InOrderDeliveryOnCleanChannel) {
  LinkPair lp;
  for (int i = 0; i < 10; ++i) lp.a.send(to_bytes("m" + std::to_string(i)));
  lp.shuttle();
  ASSERT_EQ(lp.delivered_at_b.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(lp.delivered_at_b[static_cast<std::size_t>(i)],
              "m" + std::to_string(i));
  }
  EXPECT_EQ(lp.a.acked_seq(), 10u);
}

TEST(SlidingWindow, BidirectionalTraffic) {
  LinkPair lp;
  lp.a.send(to_bytes("ping"));
  lp.b.send(to_bytes("pong"));
  lp.shuttle();
  EXPECT_EQ(lp.delivered_at_b, std::vector<std::string>{"ping"});
  EXPECT_EQ(lp.delivered_at_a, std::vector<std::string>{"pong"});
}

TEST(SlidingWindow, LostDataRecoveredByRetransmission) {
  LinkPair lp;
  lp.a.send(to_bytes("lost"));
  lp.ca.sent.clear();  // the network ate the datagram
  EXPECT_TRUE(lp.delivered_at_b.empty());
  lp.ca.fire_timers();  // retransmission timeout
  lp.shuttle();
  EXPECT_EQ(lp.delivered_at_b, std::vector<std::string>{"lost"});
  EXPECT_GE(lp.a.retransmissions(), 1u);
}

TEST(SlidingWindow, LostAckHealedByDuplicateData) {
  LinkPair lp;
  lp.a.send(to_bytes("x"));
  // Deliver the data but drop the ACK.
  auto data = std::move(lp.ca.sent);
  lp.ca.sent.clear();
  for (const auto& d : data) lp.b.on_datagram(d);
  lp.cb.sent.clear();  // ACK lost
  EXPECT_EQ(lp.a.acked_seq(), 0u);
  // Sender times out and retransmits; receiver re-acks without
  // re-delivering.
  lp.ca.fire_timers();
  lp.shuttle();
  EXPECT_EQ(lp.delivered_at_b, std::vector<std::string>{"x"});  // once!
  EXPECT_EQ(lp.a.acked_seq(), 1u);
}

TEST(SlidingWindow, DuplicatedDatagramsDeliverOnce) {
  LinkPair lp;
  lp.a.send(to_bytes("dup"));
  auto data = std::move(lp.ca.sent);
  lp.ca.sent.clear();
  for (int i = 0; i < 5; ++i) {
    for (const auto& d : data) lp.b.on_datagram(d);
  }
  EXPECT_EQ(lp.delivered_at_b, std::vector<std::string>{"dup"});
}

TEST(SlidingWindow, ReorderedDatagramsDeliverInOrder) {
  LinkPair lp;
  for (int i = 0; i < 5; ++i) lp.a.send(to_bytes("r" + std::to_string(i)));
  auto data = std::move(lp.ca.sent);
  lp.ca.sent.clear();
  std::reverse(data.begin(), data.end());
  for (const auto& d : data) lp.b.on_datagram(d);
  ASSERT_EQ(lp.delivered_at_b.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(lp.delivered_at_b[static_cast<std::size_t>(i)],
              "r" + std::to_string(i));
  }
}

TEST(SlidingWindow, WindowLimitsInFlight) {
  SlidingWindowLink::Options opts;
  opts.window = 4;
  LinkPair lp(opts);
  for (int i = 0; i < 10; ++i) lp.a.send(to_bytes("w" + std::to_string(i)));
  EXPECT_EQ(lp.ca.sent.size(), 4u);  // only the window is in flight
  lp.shuttle();  // acks open the window
  EXPECT_EQ(lp.delivered_at_b.size(), 10u);
}

TEST(SlidingWindow, ForgedAcknowledgmentsRejected) {
  // The §3 attack: forged acknowledgments must not advance the sender.
  LinkPair lp;
  lp.a.send(to_bytes("guarded"));
  lp.ca.sent.clear();  // data lost
  // Attacker forges an ACK frame for seq 1 without the key.
  Writer w;
  w.u8(2);           // kAck
  w.u64(lp.b.epoch());  // even genuine-looking epochs don't help
  w.u64(lp.a.epoch());
  w.u64(1);
  w.bytes(Bytes{});
  w.bytes(Bytes(20, 0x42));  // bogus MAC
  lp.a.on_datagram(w.data());
  EXPECT_EQ(lp.a.acked_seq(), 0u);  // not fooled
  // Recovery still works.
  lp.ca.fire_timers();
  lp.shuttle();
  EXPECT_EQ(lp.delivered_at_b, std::vector<std::string>{"guarded"});
}

TEST(SlidingWindow, ForgedDataRejected) {
  LinkPair lp;
  Writer w;
  w.u8(1);  // kData
  w.u64(lp.a.epoch());
  w.u64(lp.b.epoch());
  w.u64(0);
  w.bytes(to_bytes("evil"));
  w.bytes(Bytes(20, 0x13));
  lp.b.on_datagram(w.data());
  EXPECT_TRUE(lp.delivered_at_b.empty());
  lp.b.on_datagram(Bytes{});        // malformed
  lp.b.on_datagram(Bytes(3, 0x7));  // truncated
  EXPECT_TRUE(lp.delivered_at_b.empty());
}

TEST(SlidingWindow, ReflectedFrameRejected) {
  // A frame A sent to B, replayed back at A, must not verify (direction
  // is bound into the MAC even though the link key is symmetric).
  LinkPair lp;
  lp.a.send(to_bytes("directional"));
  ASSERT_FALSE(lp.ca.sent.empty());
  const Bytes frame = lp.ca.sent[0];
  lp.a.on_datagram(frame);  // reflected
  EXPECT_TRUE(lp.delivered_at_a.empty());
}

// --- Drop accounting: every rejected datagram lands in exactly one
// stats bucket (the counters the cluster runner and node stats report) ---

TEST(SlidingWindowStats, TruncatedFramesCountedMalformed) {
  LinkPair lp;
  lp.b.on_datagram(Bytes{});         // empty
  lp.b.on_datagram(Bytes(3, 0x7));   // too short for any frame
  lp.a.send(to_bytes("basis"));
  ASSERT_FALSE(lp.ca.sent.empty());
  Bytes cut = lp.ca.sent[0];
  cut.resize(cut.size() / 2);        // genuine frame, chopped mid-body
  lp.b.on_datagram(cut);
  EXPECT_EQ(lp.b.stats().drop_malformed, 3u);
  EXPECT_EQ(lp.b.stats().drop_auth, 0u);
  EXPECT_EQ(lp.b.stats().delivered, 0u);
  EXPECT_TRUE(lp.delivered_at_b.empty());
}

TEST(SlidingWindowStats, BitFlippedFrameCountedAuthFailure) {
  LinkPair lp;
  lp.a.send(to_bytes("integrity"));
  ASSERT_FALSE(lp.ca.sent.empty());
  const Bytes genuine = lp.ca.sent[0];
  // Flip one bit in the epoch-echo field (offset 13 = inside the echo,
  // past the type and sender-epoch header) and one in the MAC: both must
  // fail verification, not parsing — the epochs are MAC-covered.
  for (const std::size_t at : {std::size_t{13}, genuine.size() - 1}) {
    Bytes flipped = genuine;
    flipped[at] ^= 0x01;
    lp.b.on_datagram(flipped);
  }
  EXPECT_EQ(lp.b.stats().drop_auth, 2u);
  EXPECT_EQ(lp.b.stats().data_received, 0u);
  EXPECT_TRUE(lp.delivered_at_b.empty());
  // The untouched frame still goes through afterwards.
  lp.b.on_datagram(genuine);
  EXPECT_EQ(lp.delivered_at_b, std::vector<std::string>{"integrity"});
}

TEST(SlidingWindowStats, ForgedMacCountedAuthFailureBothFrameTypes) {
  LinkPair lp;
  Writer data;
  data.u8(1);  // kData
  data.u64(lp.a.epoch());
  data.u64(lp.b.epoch());
  data.u64(0);
  data.bytes(to_bytes("evil"));
  data.bytes(Bytes(20, 0x13));
  lp.b.on_datagram(data.data());
  Writer ack;
  ack.u8(2);  // kAck
  ack.u64(lp.b.epoch());
  ack.u64(lp.a.epoch());
  ack.u64(7);
  ack.bytes(Bytes{});
  ack.bytes(Bytes(20, 0x42));
  lp.a.send(to_bytes("held"));
  lp.a.on_datagram(ack.data());
  EXPECT_EQ(lp.b.stats().drop_auth, 1u);
  EXPECT_EQ(lp.a.stats().drop_auth, 1u);
  EXPECT_EQ(lp.a.acked_seq(), 0u);  // the forged ACK moved nothing
  Writer unknown;
  unknown.u8(9);  // not a frame type
  unknown.u64(0);
  unknown.u64(0);
  unknown.u64(0);
  unknown.bytes(Bytes{});
  unknown.bytes(Bytes(20, 0x00));
  lp.b.on_datagram(unknown.data());
  EXPECT_EQ(lp.b.stats().drop_malformed, 1u);
}

TEST(SlidingWindowStats, ReplayedFrameCountedDuplicate) {
  LinkPair lp;
  lp.a.send(to_bytes("once"));
  ASSERT_FALSE(lp.ca.sent.empty());
  const Bytes frame = lp.ca.sent[0];
  lp.b.on_datagram(frame);
  for (int i = 0; i < 3; ++i) lp.b.on_datagram(frame);  // replays
  EXPECT_EQ(lp.delivered_at_b, std::vector<std::string>{"once"});
  EXPECT_EQ(lp.b.stats().delivered, 1u);
  EXPECT_EQ(lp.b.stats().drop_duplicate, 3u);
  EXPECT_EQ(lp.b.stats().data_received, 4u);  // all authenticated fine
}

TEST(SlidingWindowStats, FramesBeyondReceiveBufferCountedOverflow) {
  SlidingWindowLink::Options opts;
  opts.max_receive_buffer = 4;
  LinkPair lp(opts);
  for (int i = 0; i < 10; ++i) lp.a.send(to_bytes("f" + std::to_string(i)));
  ASSERT_EQ(lp.ca.sent.size(), 10u);
  // Withhold seq 0: seqs 1..3 fit in the buffer window [0, 4), the rest
  // must be dropped (flood guard), not buffered.
  for (std::size_t i = 1; i < 10; ++i) lp.b.on_datagram(lp.ca.sent[i]);
  EXPECT_TRUE(lp.delivered_at_b.empty());
  EXPECT_EQ(lp.b.stats().drop_overflow, 6u);  // seqs 4..9
  lp.b.on_datagram(lp.ca.sent[0]);  // the hole arrives
  EXPECT_EQ(lp.delivered_at_b.size(), 4u);    // 0..3 flush in order
  EXPECT_EQ(lp.delivered_at_b[0], "f0");
  EXPECT_EQ(lp.delivered_at_b[3], "f3");
}

// --- Link-session epochs: restart detection, session reset, and
// rejection of frames replayed from a dead session (DESIGN.md §10) ---

TEST(SlidingWindowEpoch, EpochsAreNonzeroAndLearnedOnBootstrap) {
  SlidingWindowLink::Options opts;
  opts.epoch = 42;
  ScriptedChannel ch;
  SlidingWindowLink explicit_epoch(ch, 0, 1, to_bytes("0123456789abcdef"),
                                   opts);
  EXPECT_EQ(explicit_epoch.epoch(), 42u);

  LinkPair lp;  // derived epochs, announce-synced in the constructor
  EXPECT_NE(lp.a.epoch(), 0u);
  EXPECT_NE(lp.b.epoch(), 0u);
  EXPECT_NE(lp.a.epoch(), lp.b.epoch());  // distinct per direction pair
  EXPECT_EQ(lp.a.peer_epoch(), lp.b.epoch());
  EXPECT_EQ(lp.b.peer_epoch(), lp.a.epoch());
  EXPECT_EQ(lp.a.stats().epoch_resets, 0u);  // clean bootstrap, no reset
  EXPECT_EQ(lp.b.stats().epoch_resets, 0u);
}

TEST(SlidingWindowEpoch, PeerRestartResetsSessionAndTrafficResumes) {
  const Bytes key = to_bytes("0123456789abcdef");
  ScriptedChannel ca, cb;
  SlidingWindowLink::Options oa, ob1, ob2;
  oa.epoch = 111;
  ob1.epoch = 500;
  ob2.epoch = 501;  // the reborn process draws a fresh epoch

  SlidingWindowLink a(ca, 0, 1, key, oa);
  auto b = std::make_unique<SlidingWindowLink>(cb, 1, 0, key, ob1);
  std::vector<std::string> at_b;
  b->set_deliver_callback([&](Bytes m) { at_b.push_back(to_string(m)); });
  auto shuttle = [&] {
    for (int round = 0; round < 100; ++round) {
      auto from_a = std::move(ca.sent);
      ca.sent.clear();
      auto from_b = std::move(cb.sent);
      cb.sent.clear();
      if (from_a.empty() && from_b.empty()) return;
      for (const auto& d : from_a) b->on_datagram(d);
      for (const auto& d : from_b) a.on_datagram(d);
    }
  };

  a.send(to_bytes("one"));
  shuttle();
  EXPECT_EQ(at_b, std::vector<std::string>{"one"});
  EXPECT_EQ(a.acked_seq(), 1u);
  EXPECT_EQ(a.peer_epoch(), 500u);

  // B's process is SIGKILLed and restarted: a fresh link with a fresh
  // epoch and zero window state, same key.  A still believes in the old
  // session and numbers its next message against it.
  b = std::make_unique<SlidingWindowLink>(cb, 1, 0, key, ob2);
  at_b.clear();
  b->set_deliver_callback([&](Bytes m) { at_b.push_back(to_string(m)); });
  b->announce();
  a.send(to_bytes("two"));
  shuttle();

  // A detected the restart, reset the session, renumbered the in-flight
  // message from zero, and delivery resumed — exactly once.
  EXPECT_EQ(at_b, std::vector<std::string>{"two"});
  EXPECT_EQ(a.peer_epoch(), 501u);
  EXPECT_EQ(a.stats().epoch_resets, 1u);
  EXPECT_EQ(a.acked_seq(), 1u);  // renumbered: "two" is seq 0 of the new
                                 // session, cumulatively acked to 1
}

TEST(SlidingWindowEpoch, FramesFromDeadSessionRejected) {
  const Bytes key = to_bytes("0123456789abcdef");
  ScriptedChannel ca, cb;
  SlidingWindowLink::Options oa1, oa2, ob;
  oa1.epoch = 111;
  oa2.epoch = 222;
  ob.epoch = 500;

  auto a = std::make_unique<SlidingWindowLink>(ca, 0, 1, key, oa1);
  SlidingWindowLink b(cb, 1, 0, key, ob);
  std::vector<std::string> at_b;
  b.set_deliver_callback([&](Bytes m) { at_b.push_back(to_string(m)); });
  auto shuttle = [&] {
    for (int round = 0; round < 100; ++round) {
      auto from_a = std::move(ca.sent);
      ca.sent.clear();
      auto from_b = std::move(cb.sent);
      cb.sent.clear();
      if (from_a.empty() && from_b.empty()) return;
      for (const auto& d : from_a) b.on_datagram(d);
      for (const auto& d : from_b) a->on_datagram(d);
    }
  };

  // Session 1: deliver a frame and keep a verbatim copy (an attacker
  // recording the wire).
  a->send(to_bytes("recorded"));
  ASSERT_FALSE(ca.sent.empty());
  shuttle();
  ASSERT_EQ(at_b, std::vector<std::string>{"recorded"});

  a->send(to_bytes("captured-in-flight"));
  ASSERT_FALSE(ca.sent.empty());
  const Bytes old_frame = ca.sent[0];
  ca.sent.clear();  // never arrives; only the attacker holds it

  // A restarts with a new epoch; B adopts it and retires epoch 111.
  a = std::make_unique<SlidingWindowLink>(ca, 0, 1, key, oa2);
  a->announce();
  shuttle();
  EXPECT_GE(b.stats().epoch_resets, 1u);
  EXPECT_EQ(b.peer_epoch(), 222u);

  // Replaying the genuine-but-dead frame must not deliver: B's receive
  // state was reset, so without the epoch check this authenticated frame
  // (seq 1 of the old numbering) would be accepted as new-session data.
  at_b.clear();
  const std::uint64_t drops_before = b.stats().drop_epoch;
  b.on_datagram(old_frame);
  EXPECT_TRUE(at_b.empty());
  EXPECT_EQ(b.stats().drop_epoch, drops_before + 1);
  EXPECT_EQ(b.stats().drop_auth, 0u);  // it authenticated fine — the
                                       // epoch, not the MAC, killed it
}

// --- Adaptive retransmission timeout (RTT sampling, backoff, jitter) ---

/// ScriptedChannel plus a controllable monotonic clock, enabling the
/// link's RTT estimator (a clockless channel reports now_ms() < 0).
class ClockedChannel final : public DatagramChannel {
 public:
  void send_datagram(Bytes datagram) override {
    sent.push_back(std::move(datagram));
  }
  void call_later(double delay_ms, std::function<void()> fn) override {
    timers.emplace_back(delay_ms, std::move(fn));
  }
  [[nodiscard]] double now_ms() const override { return now; }
  void fire_timers() {
    auto pending = std::move(timers);
    timers.clear();
    for (auto& [delay, fn] : pending) fn();
  }
  double now = 0.0;
  std::vector<Bytes> sent;
  std::vector<std::pair<double, std::function<void()>>> timers;
};

struct ClockedLinkPair {
  ClockedChannel ca, cb;
  SlidingWindowLink a, b;

  explicit ClockedLinkPair(SlidingWindowLink::Options opts = {})
      : a(ca, 0, 1, to_bytes("0123456789abcdef"), opts),
        b(cb, 1, 0, to_bytes("0123456789abcdef"), opts) {
    // Epoch bootstrap (see LinkPair); announcement ACKs carry seq 0 and
    // produce no RTT samples, so the estimator stays cold.
    a.announce();
    b.announce();
    for (int round = 0; round < 10; ++round) {
      auto from_a = std::move(ca.sent);
      ca.sent.clear();
      auto from_b = std::move(cb.sent);
      cb.sent.clear();
      if (from_a.empty() && from_b.empty()) break;
      for (const auto& d : from_a) b.on_datagram(d);
      for (const auto& d : from_b) a.on_datagram(d);
    }
  }

  /// One message a -> b with the given one-way delay; the ACK returns
  /// after the same delay, so the measured RTT is 2 * delay.
  void roundtrip(double one_way_ms) {
    a.send(to_bytes("m"));
    auto data = std::move(ca.sent);
    ca.sent.clear();
    ca.now += one_way_ms;
    cb.now = ca.now;
    for (const auto& d : data) b.on_datagram(d);
    auto acks = std::move(cb.sent);
    cb.sent.clear();
    ca.now += one_way_ms;
    cb.now = ca.now;
    for (const auto& d : acks) a.on_datagram(d);
  }
};

TEST(SlidingWindowRto, RttSamplesAdaptTheTimeout) {
  SlidingWindowLink::Options opts;
  opts.retransmit_ms = 500.0;  // deliberately far from the true RTT
  opts.min_rto_ms = 10.0;
  ClockedLinkPair lp(opts);
  EXPECT_EQ(lp.a.stats().rto_ms, 500.0);
  lp.roundtrip(2.5);  // RTT 5ms
  EXPECT_EQ(lp.a.stats().rtt_samples, 1u);
  EXPECT_DOUBLE_EQ(lp.a.stats().srtt_ms, 5.0);
  // First sample: rto = srtt + 4 * (srtt / 2) = 15, clamped above min.
  EXPECT_DOUBLE_EQ(lp.a.stats().rto_ms, 15.0);
  for (int i = 0; i < 20; ++i) lp.roundtrip(2.5);
  // Stable RTT: variance decays, rto converges toward srtt (min clamp).
  EXPECT_EQ(lp.a.stats().rtt_samples, 21u);
  EXPECT_LT(lp.a.stats().rto_ms, 15.0);
  EXPECT_GE(lp.a.stats().rto_ms, opts.min_rto_ms);
}

TEST(SlidingWindowRto, TimeoutsBackOffExponentiallyToTheCap) {
  SlidingWindowLink::Options opts;
  opts.retransmit_ms = 50.0;
  opts.max_rto_ms = 300.0;
  opts.jitter = 0.0;  // deterministic timer delays for this test
  ClockedLinkPair lp(opts);
  lp.a.send(to_bytes("void"));  // the peer never answers
  lp.ca.sent.clear();
  double previous = lp.a.stats().rto_ms;
  EXPECT_DOUBLE_EQ(previous, 50.0);
  lp.ca.fire_timers();
  EXPECT_DOUBLE_EQ(lp.a.stats().rto_ms, 100.0);
  lp.ca.fire_timers();
  EXPECT_DOUBLE_EQ(lp.a.stats().rto_ms, 200.0);
  lp.ca.fire_timers();
  EXPECT_DOUBLE_EQ(lp.a.stats().rto_ms, 300.0);  // clamped to the cap
  EXPECT_EQ(lp.a.stats().backoffs, 3u);
  lp.ca.fire_timers();
  EXPECT_DOUBLE_EQ(lp.a.stats().rto_ms, 300.0);  // stays at the cap
  EXPECT_EQ(lp.a.stats().backoffs, 3u);  // capped expiries don't count
  EXPECT_EQ(lp.a.stats().retransmissions, 4u);
  // The re-armed timer uses the backed-off value.
  ASSERT_FALSE(lp.ca.timers.empty());
  EXPECT_DOUBLE_EQ(lp.ca.timers.back().first, 300.0);
}

TEST(SlidingWindowRto, KarnsRuleSkipsRetransmittedFrames) {
  SlidingWindowLink::Options opts;
  opts.jitter = 0.0;
  ClockedLinkPair lp(opts);
  lp.a.send(to_bytes("retried"));
  lp.ca.sent.clear();      // first copy lost
  lp.ca.now = 60.0;
  lp.cb.now = 60.0;
  lp.ca.fire_timers();     // retransmission
  auto data = std::move(lp.ca.sent);
  lp.ca.sent.clear();
  lp.ca.now = 65.0;
  lp.cb.now = 65.0;
  for (const auto& d : data) lp.b.on_datagram(d);
  auto acks = std::move(lp.cb.sent);
  lp.cb.sent.clear();
  for (const auto& d : acks) lp.a.on_datagram(d);
  // Acked — but via a retransmitted frame, so the ambiguous RTT (which
  // copy was acked?) must produce no sample and leave the estimator cold.
  EXPECT_EQ(lp.a.acked_seq(), 1u);
  EXPECT_EQ(lp.a.stats().rtt_samples, 0u);
  EXPECT_LT(lp.a.stats().srtt_ms, 0.0);
  // The next clean exchange samples normally again.
  lp.roundtrip(2.0);
  EXPECT_EQ(lp.a.stats().rtt_samples, 1u);
}

TEST(SlidingWindowRto, RetransmitTimerIsJittered) {
  SlidingWindowLink::Options opts;
  opts.retransmit_ms = 100.0;
  opts.jitter = 0.1;
  // Clockless pair: no RTT samples, so every arm jitters around the same
  // fixed 100ms timeout and the spread is purely the jitter term.
  LinkPair lp(opts);
  std::vector<double> delays;
  for (int i = 0; i < 16; ++i) {
    lp.a.send(to_bytes("j" + std::to_string(i)));
    ASSERT_FALSE(lp.ca.timers.empty());
    delays.push_back(lp.ca.timers.back().first);
    // Complete the exchange, then let the (now-moot) timer expire so the
    // next send arms a fresh one.
    auto data = std::move(lp.ca.sent);
    lp.ca.sent.clear();
    for (const auto& d : data) lp.b.on_datagram(d);
    auto acks = std::move(lp.cb.sent);
    lp.cb.sent.clear();
    for (const auto& d : acks) lp.a.on_datagram(d);
    lp.ca.fire_timers();  // nothing in flight: no retransmission
  }
  double lo = delays[0], hi = delays[0];
  for (const double d : delays) {
    EXPECT_GE(d, 100.0 * 0.9);
    EXPECT_LE(d, 100.0 * 1.1);
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  EXPECT_GT(hi - lo, 1.0);  // actually spread, not a constant
}

TEST(SlidingWindowRto, ClocklessChannelKeepsFixedTimeout) {
  // The simulator-era ScriptedChannel has no clock (now_ms() < 0): the
  // link must never RTT-sample there, only back off and recover.
  LinkPair lp;
  lp.a.send(to_bytes("no-clock"));
  lp.shuttle();
  EXPECT_EQ(lp.delivered_at_b, std::vector<std::string>{"no-clock"});
  EXPECT_EQ(lp.a.stats().rtt_samples, 0u);
  EXPECT_LT(lp.a.stats().srtt_ms, 0.0);
}

// --- Integration: a Byzantine protocol over lossy datagram links ---

// Environment that routes all sends through sliding-window links over the
// simulator's unreliable datagram service.
class LossyLinkEnv final : public Environment {
 public:
  LossyLinkEnv(sim::Simulator& sim, int self, const crypto::PartyKeys& keys)
      : sim_(sim), self_(self), keys_(keys), rng_(0x105e ^ self) {
    auto& svc = sim_.datagrams(self);
    for (int peer = 0; peer < keys_.n; ++peer) {
      if (peer == self) continue;
      channels_.emplace(peer, std::make_unique<PeerChannel>(svc, peer));
      SlidingWindowLink::Options opts;
      opts.retransmit_ms = 20.0;
      links_.emplace(peer, std::make_unique<SlidingWindowLink>(
                               *channels_[peer], self, peer,
                               keys_.link_keys[static_cast<std::size_t>(peer)],
                               opts));
      links_[peer]->set_deliver_callback([this, peer](Bytes wire) {
        dispatcher_.on_message(peer, wire);
      });
    }
    svc.set_handler([this](int from, BytesView datagram) {
      auto it = links_.find(from);
      if (it != links_.end()) it->second->on_datagram(datagram);
    });
  }

  [[nodiscard]] PartyId self() const override { return self_; }
  [[nodiscard]] int n() const override { return keys_.n; }
  [[nodiscard]] int t() const override { return keys_.t; }
  void send(PartyId to, Bytes wire) override {
    if (to == self_) {
      // Loopback: short local delay, no link needed.
      sim_.datagrams(self_).call_later(0.01, [this, wire = std::move(wire)] {
        dispatcher_.on_message(self_, wire);
      });
      return;
    }
    links_.at(to)->send(std::move(wire));
  }
  void send_all(Bytes wire) override {
    for (int j = 0; j < n(); ++j) send(j, wire);
  }
  [[nodiscard]] double now_ms() const override { return sim_.now_ms(); }
  [[nodiscard]] Rng& rng() override { return rng_; }
  [[nodiscard]] const crypto::PartyKeys& keys() const override {
    return keys_;
  }

  [[nodiscard]] Dispatcher& dispatcher() { return dispatcher_; }

 private:
  struct PeerChannel final : public DatagramChannel {
    PeerChannel(sim::DatagramService& svc, int peer) : svc(svc), peer(peer) {}
    void send_datagram(Bytes datagram) override {
      svc.send_datagram(peer, std::move(datagram));
    }
    void call_later(double delay_ms, std::function<void()> fn) override {
      svc.call_later(delay_ms, std::move(fn));
    }
    sim::DatagramService& svc;
    int peer;
  };

  sim::Simulator& sim_;
  int self_;
  crypto::PartyKeys keys_;
  Rng rng_;
  Dispatcher dispatcher_;
  std::map<int, std::unique_ptr<PeerChannel>> channels_;
  std::map<int, std::unique_ptr<SlidingWindowLink>> links_;
};

TEST(SlidingWindowIntegration, ReliableBroadcastOver30PercentLoss) {
  Cluster c(4, 1, 99);
  // 30% datagram loss plus duplication and heavy reorder — the link layer
  // must present clean reliable FIFO links to the protocol.
  Rng fault_rng(4242);
  c.sim.datagram_faults.drop = [&fault_rng](int, int, double) {
    return fault_rng.uniform01() < 0.30;
  };
  c.sim.datagram_faults.duplicate = [&fault_rng](int, int, double) {
    return fault_rng.uniform01() < 0.10 ? 1 : 0;
  };
  c.sim.datagram_faults.extra_delay = [&fault_rng](int, int, double) {
    return fault_rng.uniform01() * 30.0;
  };

  std::vector<std::unique_ptr<LossyLinkEnv>> envs;
  std::vector<std::unique_ptr<ReliableBroadcast>> rbcs;
  for (int i = 0; i < 4; ++i) {
    envs.push_back(std::make_unique<LossyLinkEnv>(c.sim, i,
                                                  c.deal.parties[static_cast<std::size_t>(i)]));
    rbcs.push_back(std::make_unique<ReliableBroadcast>(
        *envs.back(), envs.back()->dispatcher(), "lossy.rbc", 0));
  }
  const Bytes payload = to_bytes("delivered despite 30% loss");
  c.sim.at(0.0, 0, [&] { rbcs[0]->send(payload); });
  ASSERT_TRUE(c.sim.run_until(
      [&] {
        return std::all_of(rbcs.begin(), rbcs.end(), [&](const auto& r) {
          return r->delivered().has_value();
        });
      },
      600000));
  for (const auto& r : rbcs) EXPECT_EQ(*r->delivered(), payload);
}

TEST(SlidingWindowIntegration, AtomicChannelLaggardCatchesUp) {
  // The multi-process deployment hazard: one party's network is so slow
  // that the other three finish the whole channel (including the agreed
  // close) before it completes its first round.  Once its datagrams start
  // flowing it must catch up from the peers' retransmissions and retained
  // instances alone — nobody re-runs anything for it.
  Cluster c(4, 1, 11);
  c.sim.datagram_faults.extra_delay = [](int from, int to, double depart) {
    const bool involves_laggard = from == 3 || to == 3;
    return involves_laggard && depart < 2000.0 ? 5000.0 : 0.0;
  };

  std::vector<std::unique_ptr<LossyLinkEnv>> envs;
  std::vector<std::unique_ptr<AtomicChannel>> channels;
  std::vector<std::vector<std::string>> delivered(4);
  int closed = 0;
  for (int i = 0; i < 4; ++i) {
    envs.push_back(std::make_unique<LossyLinkEnv>(
        c.sim, i, c.deal.parties[static_cast<std::size_t>(i)]));
    channels.push_back(std::make_unique<AtomicChannel>(
        *envs.back(), envs.back()->dispatcher(), "laggard.ac"));
    channels.back()->set_deliver_callback(
        [&delivered, i](const Bytes& payload, PartyId) {
          delivered[static_cast<std::size_t>(i)].push_back(
              to_string(payload));
        });
    channels.back()->set_closed_callback([&closed] { ++closed; });
  }
  for (int i = 0; i < 4; ++i) {
    c.sim.at(0.0, i, [&, i] {
      for (int k = 0; k < 3; ++k) {
        channels[static_cast<std::size_t>(i)]->send(
            to_bytes("p" + std::to_string(i) + ":" + std::to_string(k)));
      }
      channels[static_cast<std::size_t>(i)]->close();
    });
  }
  const bool ok = c.sim.run_until([&] { return closed == 4; }, 600000);
  if (!ok) {
    for (int i = 0; i < 4; ++i) {
      std::fprintf(stderr,
                   "party %d: closed=%d rounds=%d delivered=%zu buffered=%zu\n",
                   i, channels[static_cast<std::size_t>(i)]->is_closed(),
                   channels[static_cast<std::size_t>(i)]->rounds_completed(),
                   delivered[static_cast<std::size_t>(i)].size(),
                   envs[static_cast<std::size_t>(i)]
                       ->dispatcher()
                       .buffered_count());
    }
  }
  ASSERT_TRUE(ok);
  EXPECT_FALSE(delivered[0].empty());
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(delivered[static_cast<std::size_t>(i)], delivered[0]);
  }
}

TEST(SlidingWindowIntegration, ManyMessagesStayFifoUnderLoss) {
  Cluster c(4, 1, 7);
  Rng fault_rng(777);
  c.sim.datagram_faults.drop = [&fault_rng](int, int, double) {
    return fault_rng.uniform01() < 0.25;
  };
  LossyLinkEnv env0(c.sim, 0, c.deal.parties[0]);
  LossyLinkEnv env1(c.sim, 1, c.deal.parties[1]);
  std::vector<int> got;
  env1.dispatcher().register_pid("fifo", [&](PartyId, BytesView p) {
    Reader r(p);
    got.push_back(static_cast<int>(r.u32()));
  });
  c.sim.at(0.0, 0, [&] {
    for (int i = 0; i < 50; ++i) {
      Writer w;
      w.u32(static_cast<std::uint32_t>(i));
      env0.send(1, frame_message("fifo", w.data()));
    }
  });
  ASSERT_TRUE(c.sim.run_until([&] { return got.size() >= 50; }, 600000));
  for (int i = 0; i < 50; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
}

}  // namespace
}  // namespace sintra::core
