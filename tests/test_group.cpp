#include <gtest/gtest.h>

#include "crypto/group.hpp"

namespace sintra::crypto {
namespace {

const DlogGroup& test_group() {
  static const DlogGroup grp = [] {
    Rng rng(0x9199);
    return DlogGroup::generate(rng, 256, 96);
  }();
  return grp;
}

TEST(DlogGroup, GeneratorIsMember) {
  const DlogGroup& grp = test_group();
  EXPECT_TRUE(grp.is_member(grp.g()));
  EXPECT_FALSE(grp.is_member(BigInt{1}));
  EXPECT_FALSE(grp.is_member(BigInt{0}));
  EXPECT_FALSE(grp.is_member(grp.p()));
  EXPECT_FALSE(grp.is_member(grp.p() - BigInt{1}));  // order 2 element
}

TEST(DlogGroup, ExpHomomorphic) {
  const DlogGroup& grp = test_group();
  Rng rng(1);
  const BigInt a = grp.random_exponent(rng);
  const BigInt b = grp.random_exponent(rng);
  EXPECT_EQ(grp.exp(grp.g(), (a + b).mod(grp.q())),
            grp.mul(grp.exp(grp.g(), a), grp.exp(grp.g(), b)));
}

TEST(DlogGroup, InvIsInverse) {
  const DlogGroup& grp = test_group();
  Rng rng(2);
  const BigInt y = grp.exp(grp.g(), grp.random_exponent(rng));
  EXPECT_EQ(grp.mul(y, grp.inv(y)), BigInt{1});
}

TEST(DlogGroup, HashToGroupProducesMembers) {
  const DlogGroup& grp = test_group();
  for (int i = 0; i < 10; ++i) {
    Writer w;
    w.u32(static_cast<std::uint32_t>(i));
    const BigInt el = grp.hash_to_group(w.data());
    EXPECT_TRUE(grp.is_member(el)) << i;
  }
}

TEST(DlogGroup, HashToGroupDeterministicAndDistinct) {
  const DlogGroup& grp = test_group();
  EXPECT_EQ(grp.hash_to_group(to_bytes("coin.42")),
            grp.hash_to_group(to_bytes("coin.42")));
  EXPECT_NE(grp.hash_to_group(to_bytes("coin.42")),
            grp.hash_to_group(to_bytes("coin.43")));
}

TEST(DlogGroup, HashToExponentInRange) {
  const DlogGroup& grp = test_group();
  for (int i = 0; i < 20; ++i) {
    Writer w;
    w.u32(static_cast<std::uint32_t>(i));
    const BigInt e = grp.hash_to_exponent(w.data());
    EXPECT_GE(e, BigInt{0});
    EXPECT_LT(e, grp.q());
  }
}

TEST(DlogGroup, RejectsBadParameters) {
  // q does not divide p-1.
  EXPECT_THROW(DlogGroup(BigInt{23}, BigInt{7}, BigInt{2}),
               std::invalid_argument);
  // g not of order q (23 = 2*11+1, q=11, g=22 has order 2).
  EXPECT_THROW(DlogGroup(BigInt{23}, BigInt{11}, BigInt{22}),
               std::invalid_argument);
}

TEST(DlogGroup, SerdeRoundTrip) {
  const DlogGroup& grp = test_group();
  Writer w;
  grp.write(w);
  Reader r(w.data());
  const DlogGroup back = DlogGroup::read(r);
  EXPECT_EQ(back.p(), grp.p());
  EXPECT_EQ(back.q(), grp.q());
  EXPECT_EQ(back.g(), grp.g());
}

TEST(Dleq, ProveVerifyRoundTrip) {
  const DlogGroup& grp = test_group();
  Rng rng(3);
  const BigInt x = grp.random_exponent(rng);
  const BigInt g2 = grp.hash_to_group(to_bytes("second base"));
  const BigInt h1 = grp.exp(grp.g(), x);
  const BigInt h2 = grp.exp(g2, x);
  const DleqProof proof = dleq_prove(grp, grp.g(), h1, g2, h2, x, rng);
  EXPECT_TRUE(dleq_verify(grp, grp.g(), h1, g2, h2, proof));
}

TEST(Dleq, RejectsUnequalLogs) {
  const DlogGroup& grp = test_group();
  Rng rng(4);
  const BigInt x = grp.random_exponent(rng);
  const BigInt y = (x + BigInt{1}).mod(grp.q());
  const BigInt g2 = grp.hash_to_group(to_bytes("second base"));
  const BigInt h1 = grp.exp(grp.g(), x);
  const BigInt h2 = grp.exp(g2, y);  // different exponent!
  const DleqProof proof = dleq_prove(grp, grp.g(), h1, g2, h2, x, rng);
  EXPECT_FALSE(dleq_verify(grp, grp.g(), h1, g2, h2, proof));
}

TEST(Dleq, RejectsTamperedProof) {
  const DlogGroup& grp = test_group();
  Rng rng(5);
  const BigInt x = grp.random_exponent(rng);
  const BigInt g2 = grp.hash_to_group(to_bytes("b2"));
  const BigInt h1 = grp.exp(grp.g(), x);
  const BigInt h2 = grp.exp(g2, x);
  DleqProof proof = dleq_prove(grp, grp.g(), h1, g2, h2, x, rng);
  DleqProof bad_a = proof;
  bad_a.a1 = grp.mul(bad_a.a1, grp.g());
  EXPECT_FALSE(dleq_verify(grp, grp.g(), h1, g2, h2, bad_a));
  DleqProof bad_z = proof;
  bad_z.z = (bad_z.z + BigInt{1}).mod(grp.q());
  EXPECT_FALSE(dleq_verify(grp, grp.g(), h1, g2, h2, bad_z));
}

TEST(Dleq, RejectsOutOfRangeValues) {
  const DlogGroup& grp = test_group();
  Rng rng(6);
  const BigInt x = grp.random_exponent(rng);
  const BigInt g2 = grp.hash_to_group(to_bytes("b2"));
  const BigInt h1 = grp.exp(grp.g(), x);
  const BigInt h2 = grp.exp(g2, x);
  DleqProof proof = dleq_prove(grp, grp.g(), h1, g2, h2, x, rng);
  proof.z = proof.z + grp.q();  // out of range
  EXPECT_FALSE(dleq_verify(grp, grp.g(), h1, g2, h2, proof));
  // Non-member h values must be rejected regardless of the proof.
  EXPECT_FALSE(dleq_verify(grp, grp.g(), BigInt{1}, g2, h2,
                           dleq_prove(grp, grp.g(), h1, g2, h2, x, rng)));
}

TEST(Dleq, ProofBoundToBases) {
  const DlogGroup& grp = test_group();
  Rng rng(7);
  const BigInt x = grp.random_exponent(rng);
  const BigInt g2 = grp.hash_to_group(to_bytes("base A"));
  const BigInt g3 = grp.hash_to_group(to_bytes("base B"));
  const BigInt h1 = grp.exp(grp.g(), x);
  const BigInt h2 = grp.exp(g2, x);
  const BigInt h3 = grp.exp(g3, x);
  const DleqProof proof = dleq_prove(grp, grp.g(), h1, g2, h2, x, rng);
  // Valid statement, wrong transcript base — must fail.
  EXPECT_FALSE(dleq_verify(grp, grp.g(), h1, g3, h3, proof));
}

}  // namespace
}  // namespace sintra::crypto
