#include "core/channel/atomic_channel.hpp"

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim_fixture.hpp"

namespace sintra::core {
namespace {

using testing::Cluster;

std::vector<std::unique_ptr<AtomicChannel>> make_channels(
    Cluster& c, const std::string& pid, AtomicChannel::Config cfg = {}) {
  return c.make_protocols<AtomicChannel>(
      [&](Environment& env, Dispatcher& disp, int) {
        return std::make_unique<AtomicChannel>(env, disp, pid, cfg);
      });
}

std::vector<std::string> delivered_strings(const AtomicChannel& ch) {
  std::vector<std::string> out;
  for (const auto& d : ch.deliveries()) out.push_back(to_string(d.payload));
  return out;
}

bool all_delivered_count(const std::vector<std::unique_ptr<AtomicChannel>>& cs,
                         std::size_t count, const std::set<int>& skip = {}) {
  for (std::size_t i = 0; i < cs.size(); ++i) {
    if (skip.contains(static_cast<int>(i))) continue;
    if (cs[i]->deliveries().size() < count) return false;
  }
  return true;
}

TEST(AtomicChannel, SingleSenderTotalOrder) {
  Cluster c(4, 1, 1);
  auto chans = make_channels(c, "ac.single");
  const int kMessages = 6;
  for (int m = 0; m < kMessages; ++m) {
    c.sim.at(m * 1.0, 0, [&, m] {
      chans[0]->send(to_bytes("msg-" + std::to_string(m)));
    });
  }
  ASSERT_TRUE(c.sim.run_until(
      [&] { return all_delivered_count(chans, kMessages); }, 4e6));
  // Same sequence everywhere, and FIFO for a single sender.
  const auto expected = delivered_strings(*chans[0]);
  for (const auto& ch : chans) EXPECT_EQ(delivered_strings(*ch), expected);
  for (int m = 0; m < kMessages; ++m) {
    EXPECT_EQ(expected[static_cast<std::size_t>(m)], "msg-" + std::to_string(m));
  }
}

TEST(AtomicChannel, MultiSenderAgreementOnOrder) {
  Cluster c(4, 1, 2);
  auto chans = make_channels(c, "ac.multi");
  const int kPerSender = 4;
  for (int s = 0; s < 3; ++s) {
    for (int m = 0; m < kPerSender; ++m) {
      c.sim.at(m * 2.0 + s, s, [&, s, m] {
        chans[static_cast<std::size_t>(s)]->send(
            to_bytes("s" + std::to_string(s) + "m" + std::to_string(m)));
      });
    }
  }
  const std::size_t total = 3 * kPerSender;
  ASSERT_TRUE(c.sim.run_until(
      [&] { return all_delivered_count(chans, total); }, 4e6));
  const auto expected = delivered_strings(*chans[0]);
  EXPECT_EQ(expected.size(), total);
  for (const auto& ch : chans) EXPECT_EQ(delivered_strings(*ch), expected);
  // Per-sender FIFO within the total order.
  for (int s = 0; s < 3; ++s) {
    std::vector<std::string> mine;
    for (const auto& v : expected) {
      if (v.rfind("s" + std::to_string(s), 0) == 0) mine.push_back(v);
    }
    for (int m = 0; m < kPerSender; ++m) {
      EXPECT_EQ(mine[static_cast<std::size_t>(m)],
                "s" + std::to_string(s) + "m" + std::to_string(m));
    }
  }
}

TEST(AtomicChannel, SameBitStringFromTwoSendersDeliveredTwice) {
  // The §2.5 integrity relaxation: identity is (origin, seq), so the same
  // bit string sent by two honest parties is delivered once per send.
  Cluster c(4, 1, 3);
  auto chans = make_channels(c, "ac.dup");
  c.sim.at(0.0, 0, [&] { chans[0]->send(to_bytes("identical")); });
  c.sim.at(0.0, 1, [&] { chans[1]->send(to_bytes("identical")); });
  ASSERT_TRUE(c.sim.run_until(
      [&] { return all_delivered_count(chans, 2); }, 4e6));
  EXPECT_EQ(delivered_strings(*chans[2]),
            (std::vector<std::string>{"identical", "identical"}));
}

TEST(AtomicChannel, ReceiveDrainsInOrder) {
  Cluster c(4, 1, 4);
  auto chans = make_channels(c, "ac.recv");
  for (int m = 0; m < 3; ++m) {
    c.sim.at(m * 1.0, 1, [&, m] {
      chans[1]->send(to_bytes("r" + std::to_string(m)));
    });
  }
  ASSERT_TRUE(c.sim.run_until(
      [&] { return all_delivered_count(chans, 3); }, 4e6));
  EXPECT_TRUE(chans[2]->can_receive());
  EXPECT_EQ(to_string(*chans[2]->receive()), "r0");
  EXPECT_EQ(to_string(*chans[2]->receive()), "r1");
  EXPECT_EQ(to_string(*chans[2]->receive()), "r2");
  EXPECT_FALSE(chans[2]->can_receive());
  EXPECT_EQ(chans[2]->receive(), std::nullopt);
}

TEST(AtomicChannel, FairnessAdoptedMessageDelivered) {
  // Only party 2 ever sends; all others adopt its message each round so
  // every payload is delivered even though senders != proposers.
  Cluster c(4, 1, 5);
  auto chans = make_channels(c, "ac.fair");
  for (int m = 0; m < 3; ++m) {
    c.sim.at(m * 1.0, 2, [&, m] {
      chans[2]->send(to_bytes("only-" + std::to_string(m)));
    });
  }
  ASSERT_TRUE(c.sim.run_until(
      [&] { return all_delivered_count(chans, 3); }, 4e6));
  for (const auto& ch : chans) {
    for (const auto& d : ch->deliveries()) EXPECT_EQ(d.origin, 2);
  }
}

TEST(AtomicChannel, BatchSizeTwoDeliversPairsFromConcurrentSenders) {
  // Three concurrent senders, batch t+1 = 2: rounds should mostly deliver
  // two distinct messages (the Figure 4 "0s band" effect).
  Cluster c(4, 1, 6);
  auto chans = make_channels(c, "ac.batch");
  for (int s = 0; s < 3; ++s) {
    for (int m = 0; m < 4; ++m) {
      c.sim.at(0.5 * m, s, [&, s, m] {
        chans[static_cast<std::size_t>(s)]->send(
            to_bytes("b" + std::to_string(s) + "." + std::to_string(m)));
      });
    }
  }
  ASSERT_TRUE(c.sim.run_until(
      [&] { return all_delivered_count(chans, 12); }, 4e6));
  // 12 messages in >= 6 rounds; with pair-batches, rounds < messages.
  EXPECT_LT(chans[0]->rounds_completed(), 12);
  EXPECT_GE(chans[0]->rounds_completed(), 6);
}

TEST(AtomicChannel, CloseRequiresQuorumAndCloses) {
  Cluster c(4, 1, 7);
  auto chans = make_channels(c, "ac.close");
  c.sim.at(0.0, 0, [&] { chans[0]->send(to_bytes("payload")); });
  ASSERT_TRUE(c.sim.run_until(
      [&] { return all_delivered_count(chans, 1); }, 4e6));

  // One close() (t=1 => needs t+1 = 2 origins) must NOT close the channel.
  c.sim.at(c.sim.now_ms() + 1, 0, [&] { chans[0]->close(); });
  c.sim.run(c.sim.now_ms() + 200000);
  for (const auto& ch : chans) EXPECT_FALSE(ch->is_closed());

  // A second honest close() reaches the t+1 quorum; all close.
  c.sim.at(c.sim.now_ms() + 1, 1, [&] { chans[1]->close(); });
  ASSERT_TRUE(c.sim.run_until(
      [&] {
        return std::all_of(chans.begin(), chans.end(),
                           [](const auto& ch) { return ch->is_closed(); });
      },
      4e6));
  EXPECT_THROW(chans[2]->send(to_bytes("late")), std::logic_error);
  EXPECT_FALSE(chans[2]->can_send());
}

TEST(AtomicChannel, ClosedCallbackFires) {
  Cluster c(4, 1, 8);
  auto chans = make_channels(c, "ac.closecb");
  int fired = 0;
  chans[3]->set_closed_callback([&] { ++fired; });
  c.sim.at(0.0, 0, [&] { chans[0]->close(); });
  c.sim.at(0.0, 1, [&] { chans[1]->close(); });
  ASSERT_TRUE(c.sim.run_until([&] { return chans[3]->is_closed(); }, 4e6));
  EXPECT_EQ(fired, 1);
}

TEST(AtomicChannel, ToleratesCrashedParty) {
  Cluster c(4, 1, 9);
  auto chans = make_channels(c, "ac.crash");
  c.sim.node(3).crash();
  for (int m = 0; m < 3; ++m) {
    c.sim.at(m * 1.0, 0, [&, m] {
      chans[0]->send(to_bytes("c" + std::to_string(m)));
    });
  }
  ASSERT_TRUE(c.sim.run_until(
      [&] { return all_delivered_count(chans, 3, {3}); }, 4e6));
  EXPECT_EQ(delivered_strings(*chans[1]), delivered_strings(*chans[2]));
}

TEST(AtomicChannel, ByzantineGarbageDoesNotBreakOrder) {
  Cluster c(4, 1, 10);
  auto chans = make_channels(c, "ac.byz");
  sim::Adversary adv(c.sim, c.deal);
  adv.corrupt(3);
  // Garbage signed-message frames, wrong signatures, replayed tags.
  for (int i = 0; i < 5; ++i) {
    Writer w;
    w.u8(1);
    w.u32(1);
    w.u32(3);
    w.u32(0);
    w.u64(static_cast<std::uint64_t>(i));
    w.bytes(to_bytes("fake"));
    w.bytes(Bytes(64, 0x11));
    adv.send_as_all(3, "ac.byz", w.data(), i * 2.0);
    adv.send_as_all(3, "ac.byz", Bytes{0x01, 0x02}, i * 2.0);
  }
  for (int m = 0; m < 3; ++m) {
    c.sim.at(m * 1.0, 0, [&, m] {
      chans[0]->send(to_bytes("z" + std::to_string(m)));
    });
  }
  ASSERT_TRUE(c.sim.run_until(
      [&] { return all_delivered_count(chans, 3, {3}); }, 4e6));
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(delivered_strings(*chans[static_cast<std::size_t>(i)]),
              (std::vector<std::string>{"z0", "z1", "z2"}));
  }
}

TEST(AtomicChannel, LargerGroupTotalOrder) {
  Cluster c(7, 2, 11);
  auto chans = make_channels(c, "ac.n7");
  for (int s = 0; s < 7; ++s) {
    c.sim.at(static_cast<double>(s), s, [&, s] {
      chans[static_cast<std::size_t>(s)]->send(to_bytes("n7-" + std::to_string(s)));
    });
  }
  ASSERT_TRUE(c.sim.run_until(
      [&] { return all_delivered_count(chans, 7); }, 8e6));
  const auto expected = delivered_strings(*chans[0]);
  for (const auto& ch : chans) EXPECT_EQ(delivered_strings(*ch), expected);
}

TEST(AtomicChannel, ExplicitBatchSizeRespected) {
  Cluster c(4, 1, 12);
  AtomicChannel::Config cfg;
  cfg.batch_size = 3;
  auto chans = make_channels(c, "ac.b3", cfg);
  for (int s = 0; s < 3; ++s) {
    c.sim.at(0.0, s, [&, s] {
      chans[static_cast<std::size_t>(s)]->send(to_bytes("e" + std::to_string(s)));
    });
  }
  ASSERT_TRUE(c.sim.run_until(
      [&] { return all_delivered_count(chans, 3); }, 4e6));
  // Three distinct messages can fit one batch-of-3 round.
  EXPECT_EQ(chans[0]->rounds_completed(), 1);
}

/// Counter value for (name, party, layer) in a snapshot, 0 if absent.
std::uint64_t channel_counter(const obs::Snapshot& snap,
                              const std::string& name, int party,
                              const std::string& layer) {
  const obs::Labels labels = obs::party_layer_labels(party, layer);
  for (const auto& c : snap.counters) {
    if (c.name == name && c.labels == labels) return c.value;
  }
  return 0;
}

TEST(AtomicChannel, InstrumentationCountsRoundsAndDeliveries) {
  // The simulated channel feeds the same obs::registry() as the real
  // deployment; the process registry accumulates across tests, so all
  // assertions are before/after deltas.
  const std::string pid = "ac.obs";
  const std::string layer = obs::layer_of(pid);
  const obs::Snapshot before = obs::registry().snapshot();

  Cluster c(4, 1, 21);
  auto chans = make_channels(c, pid);
  for (int s = 0; s < 3; ++s) {
    c.sim.at(static_cast<double>(s), s, [&, s] {
      chans[static_cast<std::size_t>(s)]->send(
          to_bytes("obs" + std::to_string(s)));
    });
  }
  ASSERT_TRUE(c.sim.run_until(
      [&] { return all_delivered_count(chans, 3); }, 4e6));

  const obs::Snapshot after = obs::registry().snapshot();
  for (int i = 0; i < 4; ++i) {
    const auto& ch = *chans[static_cast<std::size_t>(i)];
    const std::uint64_t rounds =
        channel_counter(after, "channel.rounds", i, layer) -
        channel_counter(before, "channel.rounds", i, layer);
    EXPECT_EQ(rounds, static_cast<std::uint64_t>(ch.rounds_completed()));
    const std::uint64_t deliveries =
        channel_counter(after, "channel.deliveries", i, layer) -
        channel_counter(before, "channel.deliveries", i, layer);
    EXPECT_EQ(deliveries, ch.deliveries().size());
    // The dispatcher saw traffic for this channel's protocol family.
    std::uint64_t dispatched = 0;
    for (const auto& cv : after.counters) {
      if (cv.name != "dispatcher.messages") continue;
      for (const auto& [k, v] : cv.labels) {
        if (k == "layer" && v.rfind(layer, 0) == 0) dispatched += cv.value;
      }
    }
    EXPECT_GT(dispatched, 0u);
  }
}

}  // namespace
}  // namespace sintra::core
