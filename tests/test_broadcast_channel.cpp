#include "core/channel/broadcast_channel.hpp"

#include <gtest/gtest.h>

#include "sim_fixture.hpp"

namespace sintra::core {
namespace {

using testing::Cluster;

template <typename C>
std::vector<std::unique_ptr<C>> make_channels(Cluster& c,
                                              const std::string& pid) {
  return c.make_protocols<C>([&](Environment& env, Dispatcher& disp, int) {
    return std::make_unique<C>(env, disp, pid);
  });
}

template <typename C>
std::multiset<std::string> delivered_set(const C& ch) {
  std::multiset<std::string> out;
  for (const auto& d : ch.deliveries()) out.insert(to_string(d.payload));
  return out;
}

template <typename C>
bool all_have(const std::vector<std::unique_ptr<C>>& cs, std::size_t count,
              const std::set<int>& skip = {}) {
  for (std::size_t i = 0; i < cs.size(); ++i) {
    if (skip.contains(static_cast<int>(i))) continue;
    if (cs[i]->deliveries().size() < count) return false;
  }
  return true;
}

using ChannelTypes = ::testing::Types<ReliableChannel, ConsistentChannel>;

template <typename C>
class BroadcastChannelTest : public ::testing::Test {};
TYPED_TEST_SUITE(BroadcastChannelTest, ChannelTypes);

TYPED_TEST(BroadcastChannelTest, MultiplexesManyMessagesPerSender) {
  Cluster c(4, 1, 1);
  auto chans = make_channels<TypeParam>(c, "bc.multi");
  for (int s = 0; s < 3; ++s) {
    for (int m = 0; m < 3; ++m) {
      c.sim.at(m * 1.0, s, [&, s, m] {
        chans[static_cast<std::size_t>(s)]->send(
            to_bytes("s" + std::to_string(s) + "m" + std::to_string(m)));
      });
    }
  }
  ASSERT_TRUE(c.sim.run_until([&] { return all_have(chans, 9); }, 4e6));
  const auto expected = delivered_set(*chans[0]);
  EXPECT_EQ(expected.size(), 9u);
  for (const auto& ch : chans) EXPECT_EQ(delivered_set(*ch), expected);
}

TYPED_TEST(BroadcastChannelTest, PerSenderFifo) {
  // Instances are sequenced per sender, so one sender's messages arrive
  // in send order even though the channel itself guarantees no ordering.
  Cluster c(4, 1, 2);
  auto chans = make_channels<TypeParam>(c, "bc.fifo");
  for (int m = 0; m < 5; ++m) {
    c.sim.at(m * 0.5, 0, [&, m] {
      chans[0]->send(to_bytes("f" + std::to_string(m)));
    });
  }
  ASSERT_TRUE(c.sim.run_until([&] { return all_have(chans, 5); }, 4e6));
  for (const auto& ch : chans) {
    std::uint64_t expected_seq = 0;
    for (const auto& d : ch->deliveries()) {
      EXPECT_EQ(d.sender, 0);
      EXPECT_EQ(d.seq, expected_seq++);
    }
  }
}

TYPED_TEST(BroadcastChannelTest, ReceiveApiDrains) {
  Cluster c(4, 1, 3);
  auto chans = make_channels<TypeParam>(c, "bc.drain");
  c.sim.at(0.0, 1, [&] { chans[1]->send(to_bytes("one")); });
  ASSERT_TRUE(c.sim.run_until([&] { return all_have(chans, 1); }, 4e6));
  EXPECT_TRUE(chans[0]->can_receive());
  EXPECT_EQ(to_string(*chans[0]->receive()), "one");
  EXPECT_FALSE(chans[0]->can_receive());
}

TYPED_TEST(BroadcastChannelTest, CloseNeedsQuorum) {
  Cluster c(4, 1, 4);
  auto chans = make_channels<TypeParam>(c, "bc.close");
  c.sim.at(0.0, 0, [&] { chans[0]->close(); });
  c.sim.run(200000);
  for (const auto& ch : chans) EXPECT_FALSE(ch->is_closed());
  c.sim.at(c.sim.now_ms(), 2, [&] { chans[2]->close(); });
  ASSERT_TRUE(c.sim.run_until(
      [&] {
        return std::all_of(chans.begin(), chans.end(),
                           [](const auto& ch) { return ch->is_closed(); });
      },
      4e6));
  EXPECT_THROW(chans[1]->send(to_bytes("late")), std::logic_error);
}

TYPED_TEST(BroadcastChannelTest, ToleratesCrashedParty) {
  Cluster c(4, 1, 5);
  auto chans = make_channels<TypeParam>(c, "bc.crash");
  c.sim.node(3).crash();
  for (int m = 0; m < 3; ++m) {
    c.sim.at(m * 1.0, 0, [&, m] {
      chans[0]->send(to_bytes("c" + std::to_string(m)));
    });
  }
  ASSERT_TRUE(c.sim.run_until([&] { return all_have(chans, 3, {3}); }, 4e6));
  EXPECT_EQ(delivered_set(*chans[1]), delivered_set(*chans[2]));
}

TEST(ReliableChannelTest, AgreementPerMessage) {
  // Reliable channel inherits reliable broadcast's agreement: honest
  // parties deliver identical multisets even with an equivocating sender.
  Cluster c(4, 1, 6);
  auto chans = make_channels<ReliableChannel>(c, "rc.agree");
  sim::Adversary adv(c.sim, c.deal);
  adv.corrupt(0);
  // Forge the corrupted sender's first instance: payload A to 1, B to 2/3.
  Writer wa;
  wa.u8(0);  // RBC kSend
  wa.u8(0);  // channel data marker inside the broadcast payload
  wa.raw(to_bytes("AAA"));
  Writer wb;
  wb.u8(0);
  wb.u8(0);
  wb.raw(to_bytes("BBB"));
  const std::string inst_pid = "rc.agree.q0.0";
  adv.send_as(0, 1, inst_pid, wa.data(), 0.0);
  adv.send_as(0, 2, inst_pid, wb.data(), 0.0);
  adv.send_as(0, 3, inst_pid, wb.data(), 0.0);
  c.sim.run(400000);
  EXPECT_EQ(delivered_set(*chans[1]), delivered_set(*chans[2]));
  EXPECT_EQ(delivered_set(*chans[2]), delivered_set(*chans[3]));
}

TEST(ConsistentChannelTest, NoTwoHonestDeliverDifferentForSameSeq) {
  Cluster c(4, 1, 7);
  auto chans = make_channels<ConsistentChannel>(c, "cc.consist");
  c.sim.at(0.0, 2, [&] { chans[2]->send(to_bytes("v")); });
  ASSERT_TRUE(c.sim.run_until([&] { return all_have(chans, 1); }, 4e6));
  for (const auto& ch : chans) {
    EXPECT_EQ(ch->deliveries()[0].sender, 2);
    EXPECT_EQ(to_string(ch->deliveries()[0].payload), "v");
  }
}

TEST(ChannelComparison, ReliableVsConsistentBothDeliver) {
  // Table 1's cheap channels: both deliver the same workload; reliable
  // needs no signatures (more messages), consistent needs signatures
  // (fewer messages) — here we just pin the functional equivalence.
  Cluster c(4, 1, 8);
  auto rc = make_channels<ReliableChannel>(c, "cmp.rc");
  auto cc = make_channels<ConsistentChannel>(c, "cmp.cc");
  for (int m = 0; m < 3; ++m) {
    c.sim.at(m * 1.0, 0, [&, m] {
      rc[0]->send(to_bytes("m" + std::to_string(m)));
      cc[0]->send(to_bytes("m" + std::to_string(m)));
    });
  }
  ASSERT_TRUE(c.sim.run_until(
      [&] { return all_have(rc, 3) && all_have(cc, 3); }, 4e6));
  EXPECT_EQ(delivered_set(*rc[1]), delivered_set(*cc[1]));
}

}  // namespace
}  // namespace sintra::core
