// client_swarm — many-client load driver for the client service layer
// (DESIGN.md §12): simulates thousands of concurrent service clients
// against a sintra_node cluster's client lanes, from one process and
// one UDP socket.
//
//   $ ./client_swarm --keys clients.keys --clients 2000 --requests 1
//         --targets 127.0.0.1:9200,127.0.0.1:9201,127.0.0.1:9202,127.0.0.1:9203
//
// Every simulated client is a full ReplicatedServiceClient: it
// multicasts signed requests to all n replicas, collects t+1 matching
// reply quorums, retransmits on loss and backs off on kOverloaded.
// All clients share one socket — replies are routed back by the client
// id in the reply header — so the swarm scales to tens of thousands of
// clients without exhausting file descriptors.
//
// Modes: closed (each client issues its next request when the previous
// completes) and open (requests are injected on a fixed per-client
// schedule regardless of completions).  --ramp-ms spreads client start
// times so the first instant isn't an artificial thundering herd.
//
// Adversarial traffic for CI assertions: --replay N re-sends N already
// executed request frames byte-for-byte (gateways must answer from the
// reply cache and count client.dedup_hits), --forge N sends N frames
// MAC'd with the wrong key (gateways must drop and count
// client.rejected_auth, and must NOT reply).
//
// Exit code 0 iff every request completed with a kOk quorum.  --json-out
// writes the load summary consumed by scripts/bench_e2e.sh.
#include <algorithm>
#include <csignal>
#include <cstdio>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "client/keys.hpp"
#include "client/service_client.hpp"
#include "client/wire.hpp"
#include "net/event_loop.hpp"
#include "net/udp.hpp"
#include "obs/metrics.hpp"
#include "util/atomic_file.hpp"

using namespace sintra;

namespace {

struct Options {
  std::string keys_path;
  std::vector<std::string> targets;  // host:port per replica client lane
  bool keygen = false;               // write the key file and exit
  std::uint64_t key_seed = 1;
  int clients = 100;
  int requests = 1;        // per client
  std::string mode = "closed";
  double rate = 10.0;      // open mode: requests/sec per client
  double ramp_ms = 500.0;  // client start times spread over this window
  int payload_bytes = 32;
  std::uint32_t id_base = 0;
  int t = 1;
  double rto_ms = 250.0;
  int max_attempts = 10;
  int replay = 0;          // replayed (duplicate) frames to inject
  int forge = 0;           // wrong-key frames to inject
  double timeout_s = 120.0;  // whole-run wall-clock cap
  std::string label = "client_swarm";
  std::string json_out;
  std::string metrics_out;
};

Options parse_args(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) throw std::runtime_error(arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--keys") {
      o.keys_path = value();
    } else if (arg == "--keygen") {
      o.keygen = true;
    } else if (arg == "--key-seed") {
      o.key_seed = std::stoull(value());
    } else if (arg == "--targets") {
      std::istringstream ss(value());
      std::string part;
      while (std::getline(ss, part, ',')) o.targets.push_back(part);
    } else if (arg == "--clients") {
      o.clients = std::stoi(value());
    } else if (arg == "--requests") {
      o.requests = std::stoi(value());
    } else if (arg == "--mode") {
      o.mode = value();
      if (o.mode != "closed" && o.mode != "open") {
        throw std::runtime_error("--mode wants closed|open");
      }
    } else if (arg == "--rate") {
      o.rate = std::stod(value());
    } else if (arg == "--ramp-ms") {
      o.ramp_ms = std::stod(value());
    } else if (arg == "--payload-bytes") {
      o.payload_bytes = std::stoi(value());
    } else if (arg == "--id-base") {
      o.id_base = static_cast<std::uint32_t>(std::stoul(value()));
    } else if (arg == "--t") {
      o.t = std::stoi(value());
    } else if (arg == "--rto-ms") {
      o.rto_ms = std::stod(value());
    } else if (arg == "--max-attempts") {
      o.max_attempts = std::stoi(value());
    } else if (arg == "--replay") {
      o.replay = std::stoi(value());
    } else if (arg == "--forge") {
      o.forge = std::stoi(value());
    } else if (arg == "--timeout-s") {
      o.timeout_s = std::stod(value());
    } else if (arg == "--label") {
      o.label = value();
    } else if (arg == "--json-out") {
      o.json_out = value();
    } else if (arg == "--metrics-out") {
      o.metrics_out = value();
    } else {
      throw std::runtime_error("unknown option " + arg);
    }
  }
  if (o.keys_path.empty()) throw std::runtime_error("--keys is required");
  if (o.targets.empty() && !o.keygen) {
    throw std::runtime_error("--targets is required");
  }
  if (o.clients < 1 || o.requests < 1) {
    throw std::runtime_error("--clients/--requests want >= 1");
  }
  return o;
}

Bytes payload_of(std::uint32_t client_id, int k, int pad) {
  std::string s = "c" + std::to_string(client_id) + ":" + std::to_string(k);
  if (static_cast<int>(s.size()) < pad) {
    s.resize(static_cast<std::size_t>(pad), '.');
  }
  return to_bytes(s);
}

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(p * (static_cast<double>(v.size()) - 1.0) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

class Swarm {
 public:
  Swarm(const Options& opts, net::EventLoop& loop)
      : opts_(opts),
        loop_(loop),
        socket_(net::SocketAddress::resolve("0.0.0.0", 0)),
        table_(client::read_key_file(opts.keys_path)) {
    for (const std::string& target : opts_.targets) {
      const auto colon = target.rfind(':');
      if (colon == std::string::npos) {
        throw std::runtime_error("--targets wants host:port, got " + target);
      }
      targets_.push_back(net::SocketAddress::resolve(
          target.substr(0, colon), std::stoi(target.substr(colon + 1))));
    }
    total_ = static_cast<std::uint64_t>(opts_.clients) *
             static_cast<std::uint64_t>(opts_.requests);

    const int n = static_cast<int>(targets_.size());
    for (int c = 0; c < opts_.clients; ++c) {
      const std::uint32_t id = opts_.id_base + static_cast<std::uint32_t>(c);
      if (!table_.known(id)) {
        throw std::runtime_error("client id " + std::to_string(id) +
                                 " not covered by the key file");
      }
      client::ReplicatedServiceClient::Options copts;
      copts.client_id = id;
      copts.key = table_.key(id);
      copts.n = n;
      copts.t = opts_.t;
      copts.rto_ms = opts_.rto_ms;
      copts.max_attempts = opts_.max_attempts;
      client::ReplicatedServiceClient::Hooks hooks;
      hooks.now_ms = [this] { return loop_.now_ms(); };
      hooks.send = [this](int replica, const Bytes& dgram) {
        socket_.send_to(targets_[static_cast<std::size_t>(replica)], dgram);
      };
      hooks.call_later = [this](double delay_ms, std::function<void()> fn) {
        loop_.call_later(delay_ms, std::move(fn));
      };
      clients_.push_back(std::make_unique<client::ReplicatedServiceClient>(
          std::move(copts), std::move(hooks)));
    }

    loop_.add_fd(socket_.fd(), [this] { on_readable(); });
  }

  ~Swarm() { loop_.remove_fd(socket_.fd()); }

  void start() {
    started_ms_ = loop_.now_ms();
    inject_forged();
    const double step =
        opts_.clients > 1 ? opts_.ramp_ms / (opts_.clients - 1) : 0.0;
    for (int c = 0; c < opts_.clients; ++c) {
      loop_.call_later(step * c, [this, c] { start_client(c); });
    }
    loop_.call_later(opts_.timeout_s * 1000.0, [this] {
      std::fprintf(stderr, "# swarm: wall-clock timeout\n");
      loop_.stop();
    });
  }

  [[nodiscard]] bool all_ok() const {
    return completed_ == total_ && rejected_ == 0 && timeouts_ == 0;
  }

  void report() {
    const double wall_s = (last_done_ms_ - started_ms_) / 1000.0;
    std::uint64_t retransmits = 0;
    for (const auto& c : clients_) retransmits += c->retransmits();
    std::ostringstream json;
    json.setf(std::ios::fixed);
    json.precision(3);
    json << "{\"label\":\"" << opts_.label << "\""
         << ",\"clients\":" << opts_.clients
         << ",\"requests\":" << total_
         << ",\"completed\":" << completed_
         << ",\"rejected\":" << rejected_
         << ",\"timeouts\":" << timeouts_
         << ",\"retransmits\":" << retransmits
         << ",\"wall_s\":" << wall_s
         << ",\"requests_per_sec\":"
         << (wall_s > 0.0 ? static_cast<double>(completed_) / wall_s : 0.0)
         << ",\"p50_reply_ms\":" << percentile(latencies_, 0.50)
         << ",\"p99_reply_ms\":" << percentile(latencies_, 0.99) << "}\n";
    std::fputs(json.str().c_str(), stdout);
    if (!opts_.json_out.empty()) {
      util::atomic_write_file(opts_.json_out, json.str());
    }
    if (!opts_.metrics_out.empty()) {
      std::string snap = obs::registry().snapshot().to_json();
      snap.push_back('\n');
      util::atomic_write_file(opts_.metrics_out, snap);
    }
  }

 private:
  void start_client(int c) {
    auto& cl = *clients_[static_cast<std::size_t>(c)];
    if (opts_.mode == "closed") {
      submit_next(c, 0);
    } else {
      // Open loop: the submission schedule ignores completions; the
      // client library queues what it cannot yet issue.
      const double interval = 1000.0 / std::max(0.001, opts_.rate);
      for (int k = 0; k < opts_.requests; ++k) {
        loop_.call_later(interval * k, [this, c, k] {
          auto& cl2 = *clients_[static_cast<std::size_t>(c)];
          cl2.submit(payload_of(cl2.client_id(), k, opts_.payload_bytes),
                     [this, c, k](client::ReplicatedServiceClient::Outcome o) {
                       on_done(c, k, std::move(o));
                     });
        });
      }
    }
    (void)cl;
  }

  void submit_next(int c, int k) {
    auto& cl = *clients_[static_cast<std::size_t>(c)];
    cl.submit(payload_of(cl.client_id(), k, opts_.payload_bytes),
              [this, c, k](client::ReplicatedServiceClient::Outcome o) {
                on_done(c, k, std::move(o));
              });
  }

  void on_done(int c, int k, client::ReplicatedServiceClient::Outcome o) {
    ++done_;
    last_done_ms_ = loop_.now_ms();
    if (o.ok) {
      ++completed_;
      latencies_.push_back(o.latency_ms);
    } else if (o.timed_out) {
      ++timeouts_;
    } else {
      ++rejected_;
    }
    if (o.ok && c < opts_.replay && k == 0) inject_replay(c);
    if (opts_.mode == "closed" && k + 1 < opts_.requests) {
      submit_next(c, k + 1);
    }
    if (done_ >= total_) loop_.stop();
  }

  /// Byte-for-byte duplicate of client c's first (already executed)
  /// request: encode_request is deterministic, so re-encoding with the
  /// same key/seq/payload reproduces the original datagram exactly.
  void inject_replay(int c) {
    const std::uint32_t id = opts_.id_base + static_cast<std::uint32_t>(c);
    client::RequestFrame f;
    f.client_id = id;
    f.seq = 1;  // the first request a client issues
    f.payload = payload_of(id, 0, opts_.payload_bytes);
    const Bytes dgram = client::encode_request(f, table_.key(id));
    for (const auto& target : targets_) socket_.send_to(target, dgram);
  }

  /// Frames MAC'd with a key derived from the wrong secret: structurally
  /// valid, authentication must fail at every gateway.
  void inject_forged() {
    Bytes wrong_secret = table_.secret;
    wrong_secret.push_back(0xFF);
    for (int j = 0; j < opts_.forge; ++j) {
      const std::uint32_t id =
          opts_.id_base + static_cast<std::uint32_t>(j % opts_.clients);
      client::RequestFrame f;
      f.client_id = id;
      f.seq = 1;
      f.payload = payload_of(id, 0, opts_.payload_bytes);
      const Bytes dgram = client::encode_request(
          f, client::derive_client_key(wrong_secret, id));
      for (const auto& target : targets_) socket_.send_to(target, dgram);
    }
  }

  void on_readable() {
    // Bounded drain so timer dispatch (RTOs) interleaves under floods.
    for (int i = 0; i < 1024; ++i) {
      auto received = socket_.receive();
      if (!received) return;
      const auto id = client::peek_client_id(received->first);
      if (!id || *id < opts_.id_base) continue;
      const std::uint64_t index = *id - opts_.id_base;
      if (index >= clients_.size()) continue;
      clients_[static_cast<std::size_t>(index)]->on_datagram(received->first);
    }
  }

  Options opts_;
  net::EventLoop& loop_;
  net::UdpSocket socket_;
  client::KeyTable table_;
  std::vector<net::SocketAddress> targets_;
  std::vector<std::unique_ptr<client::ReplicatedServiceClient>> clients_;
  std::uint64_t total_ = 0;
  std::uint64_t done_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t timeouts_ = 0;
  std::vector<double> latencies_;
  double started_ms_ = 0.0;
  double last_done_ms_ = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opts = parse_args(argc, argv);
    if (opts.keygen) {
      // Dealer-of-client-keys mode: every replica and the swarm read the
      // same file, so one invocation provisions the whole deployment.
      client::write_key_file(
          opts.keys_path,
          client::make_key_table(static_cast<std::uint32_t>(opts.clients),
                                 opts.key_seed));
      std::fprintf(stderr, "# wrote %d client keys to %s\n", opts.clients,
                   opts.keys_path.c_str());
      return 0;
    }
    net::EventLoop loop;
    Swarm swarm(opts, loop);
    loop.stop_on_signals({SIGINT, SIGTERM});
    swarm.start();
    loop.run();
    swarm.report();
    if (!swarm.all_ok()) {
      std::fprintf(stderr, "# swarm: incomplete run\n");
      return 3;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr,
                 "error: %s\nusage: client_swarm --keys FILE --targets "
                 "host:port,host:port,... [--keygen] [--key-seed S] "
                 "[--clients N] [--requests R] "
                 "[--mode closed|open] [--rate R] [--ramp-ms MS] "
                 "[--payload-bytes B] [--id-base I] [--t T] [--rto-ms MS] "
                 "[--max-attempts N] [--replay N] [--forge N] "
                 "[--timeout-s S] [--label L] [--json-out FILE] "
                 "[--metrics-out FILE]\n",
                 e.what());
    return 2;
  }
}
