// Intrusion-tolerant certification authority (COCA-style, cf. paper §5).
//
// The CA's signing key never exists in one place: it is a threshold RSA
// key dealt across the replicas.  Certificate requests are totally
// ordered by atomic broadcast (so serial numbers are consistent), then
// each replica emits a signature share; any k shares assemble into a
// standard RSA certificate signature that external clients verify against
// the single group public key — no replica alone can issue a certificate,
// and t corrupted replicas cannot forge one.
//
//   $ ./cert_authority
//
#include <chrono>
#include <condition_variable>
#include <iostream>
#include <mutex>

#include "facade/blocking_api.hpp"

namespace {

using namespace sintra;

std::string certificate_text(std::uint64_t serial, const std::string& subject) {
  return "cert{serial=" + std::to_string(serial) + ", subject=" + subject +
         ", issuer=SINTRA-CA}";
}

}  // namespace

int main() {
  crypto::DealerConfig config;
  config.n = 4;
  config.t = 1;
  config.rsa_bits = 512;
  config.dl_p_bits = 256;
  config.dl_q_bits = 96;
  // The CA uses proper Shoup threshold signatures: the assembled
  // certificate signature is a *standard* RSA signature (§2.1).
  config.sig_impl = crypto::SigImpl::kThresholdRsa;
  const crypto::Deal deal = crypto::run_dealer(config);
  facade::LocalGroup group(deal);

  std::vector<std::unique_ptr<facade::BlockingAtomicChannel>> channel;
  for (int i = 0; i < group.n(); ++i) {
    channel.push_back(std::make_unique<facade::BlockingAtomicChannel>(
        group, i, "ca"));
  }

  // Clients submit certificate requests at different replicas.
  channel[1]->send(to_bytes("alice@example.com"));
  channel[2]->send(to_bytes("bob@example.org"));

  // Every replica processes the ordered requests identically: assign the
  // serial number by position, sign a share of the certificate.
  const int kRequests = 2;
  std::mutex mu;
  std::map<std::uint64_t, std::vector<std::pair<int, Bytes>>> shares;
  std::map<std::uint64_t, std::string> texts;

  for (int i = 0; i < group.n(); ++i) {
    for (std::uint64_t serial = 0; serial < kRequests; ++serial) {
      auto req = channel[static_cast<std::size_t>(i)]->receive_for(
          std::chrono::seconds(30));
      if (!req) {
        std::cerr << "timeout\n";
        return 1;
      }
      const std::string cert = certificate_text(serial, to_string(*req));
      // Each replica contributes its signature share (on its own thread,
      // where its key material lives).
      group.post_sync(i, [&, i, serial, cert] {
        Bytes share = group.node(i).keys().sig_broadcast->sign_share(
            to_bytes(cert));
        const std::lock_guard<std::mutex> lock(mu);
        shares[serial].emplace_back(i, std::move(share));
        texts[serial] = cert;
      });
    }
  }

  // Any replica (here: 0) assembles k = ceil((n+t+1)/2) = 3 shares into
  // the final certificate signature; an external client verifies it.
  const auto& scheme = *deal.parties[0].sig_broadcast;
  for (std::uint64_t serial = 0; serial < kRequests; ++serial) {
    const std::string& cert = texts[serial];
    // Verify the shares first (robustness: a corrupted replica's bogus
    // share would be identified and excluded).
    for (const auto& [signer, share] : shares[serial]) {
      if (!scheme.verify_share(to_bytes(cert), signer, share)) {
        std::cerr << "invalid share from replica " << signer << "\n";
        return 1;
      }
    }
    const Bytes signature = scheme.combine(to_bytes(cert), shares[serial]);
    const bool ok = scheme.verify(to_bytes(cert), signature);
    std::cout << cert << "\n  threshold signature: "
              << (ok ? "VALID" : "INVALID") << " (" << signature.size()
              << "-byte standard RSA signature)\n";
    if (!ok) return 1;

    // Tampered certificates must not verify.
    if (scheme.verify(to_bytes(cert + "x"), signature)) {
      std::cerr << "forged certificate verified — broken!\n";
      return 1;
    }
  }
  std::cout << "certificates issued under the distributed CA key; "
               "no single replica ever held the signing key\n";
  return 0;
}
