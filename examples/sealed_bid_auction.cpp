// Sealed-bid auction over secure causal atomic broadcast (paper §2.6).
//
// The attack this defeats: a Byzantine auctioneer-replica that sees
// Alice's bid in cleartext before it is ordered could front-run her with
// a bid derived from hers.  Secure causal atomic broadcast encrypts every
// bid under the group's TDH2 key; replicas only obtain decryption shares
// *after* the ciphertext's position in the total order is fixed, and the
// scheme's CCA security stops anyone from mauling a ciphertext into a
// related bid.  Causality between submission and revelation is preserved.
//
//   $ ./sealed_bid_auction
//
#include <chrono>
#include <iostream>

#include "facade/blocking_api.hpp"

int main() {
  using namespace sintra;

  crypto::DealerConfig config;
  config.n = 4;
  config.t = 1;
  config.rsa_bits = 512;
  config.dl_p_bits = 256;
  config.dl_q_bits = 96;
  const crypto::Deal deal = crypto::run_dealer(config);
  facade::LocalGroup group(deal);

  std::vector<std::unique_ptr<facade::BlockingSecureAtomicChannel>> channel;
  for (int i = 0; i < group.n(); ++i) {
    channel.push_back(std::make_unique<facade::BlockingSecureAtomicChannel>(
        group, i, "auction"));
  }

  // Bidders are EXTERNAL clients: they hold only the channel's public key
  // (paper §3.4) and hand sealed ciphertexts to replicas for broadcast.
  Rng alice_rng(1001), bob_rng(1002), carol_rng(1003);
  const Bytes alice_ct = core::SecureAtomicChannel::encrypt(
      *deal.encryption_key, "auction", to_bytes("alice:730"), alice_rng);
  const Bytes bob_ct = core::SecureAtomicChannel::encrypt(
      *deal.encryption_key, "auction", to_bytes("bob:915"), bob_rng);
  const Bytes carol_ct = core::SecureAtomicChannel::encrypt(
      *deal.encryption_key, "auction", to_bytes("carol:850"), carol_rng);

  // The sealed bids reveal nothing (ciphertext does not contain the bid).
  for (const Bytes* ct : {&alice_ct, &bob_ct, &carol_ct}) {
    if (to_string(*ct).find(":") != std::string::npos &&
        (to_string(*ct).find("alice") != std::string::npos ||
         to_string(*ct).find("bob") != std::string::npos ||
         to_string(*ct).find("carol") != std::string::npos)) {
      std::cerr << "bid leaked in ciphertext!\n";
      return 1;
    }
  }
  std::cout << "three sealed bids submitted (" << alice_ct.size()
            << "-byte ciphertexts, cleartext hidden until ordered)\n";

  // Different replicas relay the sealed bids without seeing their content.
  channel[0]->with([&](core::SecureAtomicChannel& ch) {
    ch.send_ciphertext(alice_ct);
  });
  channel[1]->with([&](core::SecureAtomicChannel& ch) {
    ch.send_ciphertext(bob_ct);
  });
  channel[2]->with([&](core::SecureAtomicChannel& ch) {
    ch.send_ciphertext(carol_ct);
  });

  // Every replica opens the bids in the SAME (now fixed) order and
  // computes the same winner.
  for (int i = 0; i < group.n(); ++i) {
    std::string winner;
    int best = -1;
    std::cout << "replica " << i << " opens:";
    for (int b = 0; b < 3; ++b) {
      auto bid = channel[static_cast<std::size_t>(i)]->receive_for(
          std::chrono::seconds(60));
      if (!bid) {
        std::cerr << "\ntimeout\n";
        return 1;
      }
      const std::string s = to_string(*bid);
      std::cout << " " << s;
      const auto colon = s.find(':');
      const int amount = std::stoi(s.substr(colon + 1));
      if (amount > best) {
        best = amount;
        winner = s.substr(0, colon);
      }
    }
    std::cout << " -> winner: " << winner << " (" << best << ")\n";
    if (winner != "bob") {
      std::cerr << "replicas disagree on the winner!\n";
      return 1;
    }
  }
  std::cout << "auction settled identically on all replicas; bids stayed "
               "sealed until their order was fixed\n";
  return 0;
}
