// The trusted dealer as a command-line tool (paper §2: "the dealer is
// required only once, when the system is initialized, and the keys must
// be distributed to all servers in a trusted way").
//
// Reads a group configuration file (core/config.hpp format), runs the
// dealer, and writes one key file per party plus the public encryption
// key for external clients:
//
//   $ ./dealer_tool group.conf /secure/keydir
//   wrote /secure/keydir/party-0.keys
//   ...
//   wrote /secure/keydir/encryption.pub
//
// Each party-<i>.keys file must reach server i over a trusted channel
// and be deleted from the dealer machine; encryption.pub is public.
// With no arguments, runs a self-contained demo against a temporary
// directory (used as the example smoke test).
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/config.hpp"
#include "crypto/keyfile.hpp"

namespace fs = std::filesystem;
using namespace sintra;

namespace {

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path.string());
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const fs::path& path, BytesView data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write " + path.string());
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

int run(const std::string& config_path, const fs::path& outdir) {
  const core::GroupConfig cfg =
      core::GroupConfig::parse(read_file(config_path));
  std::printf("dealing keys for n=%d, t=%d (%s signatures, %d-bit RSA, "
              "%d/%d-bit DL group)...\n",
              cfg.dealer.n, cfg.dealer.t,
              cfg.dealer.sig_impl == crypto::SigImpl::kThresholdRsa
                  ? "threshold-RSA"
                  : "multi",
              cfg.dealer.rsa_bits, cfg.dealer.dl_p_bits, cfg.dealer.dl_q_bits);

  const crypto::Deal deal = crypto::run_dealer(cfg.dealer);
  fs::create_directories(outdir);
  for (int i = 0; i < cfg.dealer.n; ++i) {
    const fs::path path = outdir / ("party-" + std::to_string(i) + ".keys");
    write_file(path, crypto::write_party_keys(deal.raw[static_cast<std::size_t>(i)]));
    std::printf("wrote %s  (deliver to %s:%d over a trusted channel)\n",
                path.c_str(), cfg.parties[static_cast<std::size_t>(i)].host.c_str(),
                cfg.parties[static_cast<std::size_t>(i)].port);
  }
  const fs::path enc = outdir / "encryption.pub";
  write_file(enc, crypto::write_encryption_key(*deal.encryption_key));
  std::printf("wrote %s  (public — for external clients)\n", enc.c_str());

  // Verification pass: every key file loads and materializes.
  for (int i = 0; i < cfg.dealer.n; ++i) {
    const fs::path path = outdir / ("party-" + std::to_string(i) + ".keys");
    const std::string blob = read_file(path);
    const crypto::RawPartyKeys raw = crypto::read_party_keys(
        BytesView(reinterpret_cast<const std::uint8_t*>(blob.data()),
                  blob.size()));
    const crypto::PartyKeys keys = crypto::materialize(raw);
    const Bytes sig = keys.sign(to_bytes("keyfile self-check"));
    if (!keys.verify_party_sig(i, to_bytes("keyfile self-check"), sig)) {
      std::fprintf(stderr, "self-check failed for party %d!\n", i);
      return 1;
    }
  }
  std::printf("all key files verified\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc == 3) return run(argv[1], argv[2]);
    if (argc != 1) {
      std::fprintf(stderr, "usage: %s <group.conf> <output-dir>\n", argv[0]);
      return 2;
    }
    // Demo mode: generate a config, deal into a temp dir.
    const fs::path dir =
        fs::temp_directory_path() / "sintra-dealer-demo";
    fs::create_directories(dir);
    core::GroupConfig cfg;
    cfg.dealer.n = 4;
    cfg.dealer.t = 1;
    cfg.dealer.rsa_bits = 512;
    cfg.dealer.dl_p_bits = 256;
    cfg.dealer.dl_q_bits = 96;
    for (int i = 0; i < 4; ++i) {
      cfg.parties.push_back({"replica" + std::to_string(i) + ".example.com",
                             7000 + i});
    }
    const fs::path conf = dir / "group.conf";
    std::ofstream(conf) << cfg.to_text();
    std::printf("demo mode: config at %s\n", conf.c_str());
    return run(conf.string(), dir / "keys");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
