// Optimistic atomic broadcast demo (paper §6, future work — implemented
// here): a sequencer fast path orders messages with one verifiable
// broadcast each; when the sequencer is suspected, the group falls back
// to randomized Byzantine agreement, switches sequencers, and continues
// without losing or duplicating anything.
//
// This example runs on the deterministic simulator (virtual time) so the
// fast-path-vs-switch costs are visible in the printed timestamps.
//
//   $ ./optimistic_ordering
//
#include <cstdio>

#include "core/channel/optimistic_channel.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace sintra;

  crypto::DealerConfig config;
  config.n = 4;
  config.t = 1;
  config.rsa_bits = 512;
  config.dl_p_bits = 256;
  config.dl_q_bits = 96;
  const crypto::Deal deal = crypto::run_dealer(config);

  sim::Simulator sim(sim::lan_setup(), deal);
  std::vector<std::unique_ptr<core::OptimisticChannel>> chan;
  for (int i = 0; i < 4; ++i) {
    chan.push_back(std::make_unique<core::OptimisticChannel>(
        sim.node(i), sim.node(i).dispatcher(), "optdemo"));
  }

  // Phase 1: fast path under the epoch-0 sequencer (party 0).
  for (int m = 0; m < 4; ++m) {
    sim.at(m * 5.0, 1, [&, m] {
      chan[1]->send(to_bytes("fast-" + std::to_string(m)));
    });
  }
  sim.run_until([&] { return chan[2]->deliveries().size() >= 4; }, 1e6);
  std::printf("epoch 0 (sequencer P0) — fast path:\n");
  for (const auto& d : chan[2]->deliveries()) {
    std::printf("  %7.1f ms  [%s]\n", d.time_ms, to_string(d.payload).c_str());
  }

  // Phase 2: the sequencer crashes; the application's timeout fires
  // suspect(); the group wedges, agrees on the epoch history and
  // switches to sequencer P1.
  sim.node(0).crash();
  std::printf("\nP0 (the sequencer) crashes; replicas raise suspicion...\n");
  for (int m = 0; m < 3; ++m) {
    sim.at(sim.now_ms() + m, 2, [&, m] {
      chan[2]->send(to_bytes("queued-" + std::to_string(m)));
    });
  }
  for (int i = 1; i < 4; ++i) {
    sim.at(sim.now_ms() + 200.0, i, [&, i] { chan[static_cast<std::size_t>(i)]->suspect(); });
  }
  if (!sim.run_until(
          [&] {
            for (int i = 1; i < 4; ++i) {
              if (chan[static_cast<std::size_t>(i)]->deliveries().size() < 7)
                return false;
            }
            return true;
          },
          1e7)) {
    std::printf("recovery failed!\n");
    return 1;
  }
  std::printf("switched to epoch %d (sequencer P%d); queued messages "
              "delivered:\n", chan[2]->epoch(), chan[2]->sequencer());
  for (std::size_t i = 4; i < chan[2]->deliveries().size(); ++i) {
    const auto& d = chan[2]->deliveries()[i];
    std::printf("  %7.1f ms  [%s] (epoch %d)\n", d.time_ms,
                to_string(d.payload).c_str(), d.epoch);
  }

  // All live replicas hold identical sequences.
  for (int i = 2; i < 4; ++i) {
    if (chan[static_cast<std::size_t>(i)]->deliveries().size() !=
        chan[1]->deliveries().size()) {
      std::printf("sequence divergence!\n");
      return 1;
    }
  }
  std::printf("\nall live replicas delivered identical sequences across the "
              "switch\n");
  return 0;
}
