// One SINTRA party as a standalone OS process over real UDP sockets —
// the deployment shape of the paper's prototype (§3: n servers,
// hostname:port endpoints from the configuration file, per-server
// "initialization data" from the trusted dealer).
//
//   $ ./sintra_node group.conf keys/party-2.keys --channel atomic
//         --send 5 --close --out /tmp/out.2 --stats
//
// The node loads its key file, binds its configured endpoint, runs the
// chosen channel (atomic / secure-atomic / optimistic), contributes
// `--send` payloads, and writes one "DELIVER <payload>" line per
// delivered message in delivery order — so total order across nodes can
// be checked by comparing output files (scripts/run_local_cluster.sh).
//
// Termination: with --close the node closes the channel after its last
// send and completes when the close protocol terminates; with --expect N
// it completes after N deliveries (the optimistic channel has no close
// protocol).  On completion it writes <out>.done (when --out is given),
// lingers so its links and protocol instances keep serving slower peers,
// then exits 0.  --linger -1 means serve until signaled — used by the
// cluster runner, which SIGTERMs the group only once every node's .done
// marker exists, so no peer ever disappears while another still needs
// its responses.  SIGINT/SIGTERM shut down cleanly: flush output, print
// stats, exit 0 if completed and 3 otherwise.
//
// Observability (docs/OBSERVABILITY.md): --metrics-out FILE writes a JSON
// metrics snapshot on exit and on SIGUSR1 (overwritten each time);
// --trace-out FILE streams typed protocol events as JSON lines.
// scripts/aggregate_metrics.py merges the per-node snapshot files.
//
// Crash recovery (DESIGN.md §10): --state-dir DIR makes every delivery
// durable (fsync'd replica log) and exchanges threshold-signed
// checkpoints every --checkpoint-interval deliveries.  A node restarted
// with the same --state-dir detects the restart via its boot counter,
// replays its log, catches up from its peers, and completes when it
// reaches the close-time `final` checkpoint certificate — it does not
// rejoin the in-progress rounds; the recovery layer delivers the stream:
//
//   $ kill -9 <pid of node 3>
//   $ ./sintra_node group.conf keys/party-3.keys --channel atomic
//         --state-dir /tmp/state.3 --out /tmp/out.3 --linger -1
//
// and /tmp/out.3 converges to the same delivery sequence as its peers
// (scripts/run_local_cluster.sh --scenario recover automates this).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>

#include <csignal>

#include "client/gateway.hpp"
#include "client/keys.hpp"
#include "client/udp_front.hpp"
#include "core/channel/atomic_channel.hpp"
#include "core/channel/optimistic_channel.hpp"
#include "core/channel/secure_atomic_channel.hpp"
#include "bignum/montgomery.hpp"
#include "core/config.hpp"
#include "crypto/cost.hpp"
#include "crypto/keyfile.hpp"
#include "net/net_environment.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "recovery/recovery_manager.hpp"
#include "recovery/state_store.hpp"
#include "util/atomic_file.hpp"

using namespace sintra;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct Args {
  std::string config_path;
  std::string keyfile_path;
  std::string channel = "atomic";
  int send_count = 4;
  std::uint64_t expect = 0;  // 0 = not used
  bool close_after_send = false;
  double linger_ms = 1500.0;
  std::string out_path;  // empty = stdout
  bool print_stats = false;
  std::string metrics_out;  // JSON snapshot on exit / SIGUSR1
  std::string trace_out;    // JSON-lines event stream
  std::string via_host;  // chaos proxy: host part of --via
  int via_base_port = 0;
  int crypto_threads = -1;      // -1 = hardware_concurrency; 0 = inline
  bool use_mmsg = true;         // --no-mmsg: one syscall per datagram
  bool corrupt_shares = false;  // Byzantine chaos: emit garbage sig shares
  std::string state_dir;        // durable log + checkpoints (recovery)
  std::uint64_t checkpoint_interval = 8;
  // Throughput mode (DESIGN.md §11): 0 = keep the channel defaults.
  int batch_count = 0;        // payloads per signed bundle
  std::size_t batch_bytes = 0;  // byte cap per bundle
  int pipeline_depth = 0;     // concurrent rounds in flight
  int bench_payload_bytes = 0;  // --bench-load: pad payloads to this size
  // Client service layer (DESIGN.md §12): 0 = no client lane.
  int client_port = 0;          // UDP port for signed client requests
  std::string client_keys;      // client key table (client/keys.hpp format)
  std::size_t max_clients = 0;  // distinct clients tracked; 0 = unlimited
  double client_rate = 100.0;   // per-client admission rate (req/s)
  double client_global_rate = 0.0;  // global shed threshold; 0 = off
  std::size_t client_pending = 1024;  // proposed-not-yet-executed window
};

Args parse_args(int argc, char** argv) {
  Args a;
  if (argc < 3) throw std::runtime_error("missing config/keyfile arguments");
  a.config_path = argv[1];
  a.keyfile_path = argv[2];
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) throw std::runtime_error(arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--channel") {
      a.channel = value();
    } else if (arg == "--send") {
      a.send_count = std::stoi(value());
    } else if (arg == "--expect") {
      a.expect = std::stoull(value());
    } else if (arg == "--close") {
      a.close_after_send = true;
    } else if (arg == "--linger") {
      a.linger_ms = std::stod(value());
    } else if (arg == "--out") {
      a.out_path = value();
    } else if (arg == "--stats") {
      a.print_stats = true;
    } else if (arg == "--metrics-out") {
      a.metrics_out = value();
    } else if (arg == "--trace-out") {
      a.trace_out = value();
    } else if (arg == "--crypto-threads") {
      a.crypto_threads = std::stoi(value());
      if (a.crypto_threads < 0) {
        throw std::runtime_error("--crypto-threads wants >= 0");
      }
    } else if (arg == "--no-mmsg") {
      a.use_mmsg = false;
    } else if (arg == "--corrupt-shares") {
      a.corrupt_shares = true;
    } else if (arg == "--state-dir") {
      a.state_dir = value();
    } else if (arg == "--checkpoint-interval") {
      a.checkpoint_interval = std::stoull(value());
      if (a.checkpoint_interval == 0) {
        throw std::runtime_error("--checkpoint-interval wants >= 1");
      }
    } else if (arg == "--batch-count") {
      a.batch_count = std::stoi(value());
      if (a.batch_count < 1) throw std::runtime_error("--batch-count wants >= 1");
    } else if (arg == "--batch-bytes") {
      a.batch_bytes = std::stoull(value());
    } else if (arg == "--pipeline-depth") {
      a.pipeline_depth = std::stoi(value());
      if (a.pipeline_depth < 1) {
        throw std::runtime_error("--pipeline-depth wants >= 1");
      }
    } else if (arg == "--bench-load") {
      // <msgs>x<bytes>: sustained load without a client layer, e.g.
      // --bench-load 2000x256 sends 2000 padded 256-byte payloads.
      const std::string v = value();
      const auto x = v.find('x');
      if (x == std::string::npos) {
        throw std::runtime_error("--bench-load wants <msgs>x<bytes>");
      }
      a.send_count = std::stoi(v.substr(0, x));
      a.bench_payload_bytes = std::stoi(v.substr(x + 1));
      if (a.send_count < 0 || a.bench_payload_bytes < 0) {
        throw std::runtime_error("--bench-load wants non-negative values");
      }
    } else if (arg == "--client-port") {
      a.client_port = std::stoi(value());
      if (a.client_port <= 0) throw std::runtime_error("--client-port wants > 0");
    } else if (arg == "--client-keys") {
      a.client_keys = value();
    } else if (arg == "--max-clients") {
      a.max_clients = std::stoull(value());
    } else if (arg == "--client-rate") {
      a.client_rate = std::stod(value());
      if (a.client_rate <= 0.0) throw std::runtime_error("--client-rate wants > 0");
    } else if (arg == "--client-global-rate") {
      a.client_global_rate = std::stod(value());
    } else if (arg == "--client-pending") {
      a.client_pending = std::stoull(value());
      if (a.client_pending == 0) {
        throw std::runtime_error("--client-pending wants >= 1");
      }
    } else if (arg == "--via") {
      const std::string v = value();
      const auto colon = v.rfind(':');
      if (colon == std::string::npos) {
        throw std::runtime_error("--via wants host:base_port");
      }
      a.via_host = v.substr(0, colon);
      a.via_base_port = std::stoi(v.substr(colon + 1));
    } else {
      throw std::runtime_error("unknown option " + arg);
    }
  }
  return a;
}

/// Byzantine chaos helper (--corrupt-shares): a threshold-signature
/// handle whose *own* shares are garbage while every verify/combine stays
/// honest.  Receivers' optimistic combine-first paths must fall back,
/// blacklist this node, and finish with the honest quorum — observable as
/// crypto.fallbacks > 0 in their metrics snapshots.
class CorruptingSigScheme final : public crypto::ThresholdSigScheme {
 public:
  explicit CorruptingSigScheme(
      std::shared_ptr<crypto::ThresholdSigScheme> inner)
      : inner_(std::move(inner)) {}

  [[nodiscard]] int n() const override { return inner_->n(); }
  [[nodiscard]] int k() const override { return inner_->k(); }
  [[nodiscard]] int index() const override { return inner_->index(); }

  [[nodiscard]] Bytes sign_share(BytesView msg) override {
    Bytes share = inner_->sign_share(msg);
    if (!share.empty()) share[share.size() / 2] ^= 0x5a;
    return share;
  }
  [[nodiscard]] bool verify_share(BytesView msg, int signer,
                                  BytesView share) const override {
    return inner_->verify_share(msg, signer, share);
  }
  [[nodiscard]] Bytes combine(
      BytesView msg,
      const std::vector<std::pair<int, Bytes>>& shares) const override {
    return inner_->combine(msg, shares);
  }
  [[nodiscard]] bool verify(BytesView msg, BytesView sig) const override {
    return inner_->verify(msg, sig);
  }

 private:
  std::shared_ptr<crypto::ThresholdSigScheme> inner_;
};

/// The running node: one environment, one channel, one workload.
class NodeApp {
 public:
  NodeApp(const Args& args, net::EventLoop& loop)
      : args_(args), loop_(loop) {
    const core::GroupConfig cfg =
        core::GroupConfig::parse(read_file(args.config_path));
    const std::string blob = read_file(args.keyfile_path);
    const crypto::RawPartyKeys raw = crypto::read_party_keys(
        BytesView(reinterpret_cast<const std::uint8_t*>(blob.data()),
                  blob.size()));
    crypto::PartyKeys keys = crypto::materialize(raw);
    if (args.corrupt_shares) {
      keys.sig_broadcast =
          std::make_shared<CorruptingSigScheme>(std::move(keys.sig_broadcast));
      keys.sig_agreement =
          std::make_shared<CorruptingSigScheme>(std::move(keys.sig_agreement));
    }

    net::NetOptions opts;
    opts.crypto_threads =
        args.crypto_threads >= 0
            ? args.crypto_threads
            : static_cast<int>(std::thread::hardware_concurrency());
    opts.use_mmsg = args.use_mmsg;
    if (!args.via_host.empty()) {
      for (int j = 0; j < keys.n; ++j) {
        opts.send_to.push_back({args.via_host, args.via_base_port + j});
      }
    }
    env_ = std::make_unique<net::NetEnvironment>(loop_, cfg.parties,
                                                 std::move(keys), opts);

    if (!args.out_path.empty()) {
      out_ = std::fopen(args.out_path.c_str(), "w");
      if (out_ == nullptr) {
        throw std::runtime_error("cannot open " + args.out_path);
      }
    } else {
      out_ = stdout;
    }

    if (!args.trace_out.empty()) {
      trace_file_ = std::fopen(args.trace_out.c_str(), "w");
      if (trace_file_ == nullptr) {
        throw std::runtime_error("cannot open " + args.trace_out);
      }
      trace_ = std::make_unique<obs::EventTrace>();
      trace_->set_stream(trace_file_);
      trace_->set_retain(false);  // stream only: bounded memory
      obs::set_trace_sink(trace_.get());
    }

    if (!args.state_dir.empty()) {
      store_ = std::make_unique<recovery::StateStore>(args.state_dir);
      // The boot counter is bumped before anything else: boot > 1 means
      // this directory already hosted a run, so this process is a
      // restart and must recover instead of joining the rounds.
      recovering_ = store_->bump_boot() > 1;
      recovery::RecoveryManager::Options ropts;
      ropts.checkpoint_interval = args.checkpoint_interval;
      rec_ = std::make_unique<recovery::RecoveryManager>(
          *env_, env_->dispatcher(), "cluster." + args.channel, store_.get(),
          ropts);
    }

    if (recovering_) {
      start_recovery();
    } else {
      start_channel();
    }
  }

  ~NodeApp() {
    if (trace_) obs::set_trace_sink(nullptr);
    if (trace_file_ != nullptr) std::fclose(trace_file_);
    if (out_ != nullptr && out_ != stdout) std::fclose(out_);
  }

  /// Writes a JSON metrics snapshot to --metrics-out (no-op without the
  /// flag).  Called on exit and on SIGUSR1; each call overwrites the file
  /// with the freshest totals.
  void write_metrics() {
    if (args_.metrics_out.empty()) return;
    env_->publish_link_metrics();  // sample the link layer's plain structs
    auto& reg = obs::registry();
    const obs::Labels labels = obs::party_labels(env_->self());
    reg.gauge("node.delivered", labels)
        .set(static_cast<double>(delivered_));
    reg.gauge("crypto.work_units", labels)
        .set(static_cast<double>(bignum::work_counter()));
    reg.gauge("crypto.work_per_exp1024", labels)
        .set(static_cast<double>(crypto::work_per_exp1024()));
    // Atomic replacement: a reader (aggregate_metrics.py, the cluster
    // runner) racing a SIGUSR1 snapshot never sees a torn file.
    std::string json = reg.snapshot().to_json();
    json.push_back('\n');
    std::string error;
    if (!util::atomic_write_file(args_.metrics_out, json, &error)) {
      std::fprintf(stderr, "# node %d: metrics snapshot failed: %s\n",
                   env_->self(), error.c_str());
    }
  }

  void flush_trace() {
    if (trace_file_ != nullptr) std::fflush(trace_file_);
  }

  [[nodiscard]] bool completed() const { return completed_; }
  [[nodiscard]] int party() const { return env_->self(); }

  void flush() { std::fflush(out_); }

  void print_stats(const char* reason) {
    std::fprintf(stderr, "# node %d: %s, delivered=%llu\n", env_->self(),
                 reason, static_cast<unsigned long long>(delivered_));
    const auto& es = env_->stats();
    std::fprintf(stderr,
                 "STATS env received=%llu drop_no_sender=%llu "
                 "drop_bad_sender=%llu drop_oversized=%llu\n",
                 static_cast<unsigned long long>(es.datagrams_received),
                 static_cast<unsigned long long>(es.drop_no_sender),
                 static_cast<unsigned long long>(es.drop_bad_sender),
                 static_cast<unsigned long long>(es.drop_oversized));
    for (int j = 0; j < env_->n(); ++j) {
      if (j == env_->self()) continue;
      const auto& ls = env_->link_stats(j);
      std::fprintf(stderr,
                   "STATS link peer=%d retrans=%llu backoffs=%llu "
                   "rtt_samples=%llu srtt_ms=%.3f rto_ms=%.3f "
                   "drop_auth=%llu drop_malformed=%llu drop_overflow=%llu "
                   "drop_duplicate=%llu\n",
                   j, static_cast<unsigned long long>(ls.retransmissions),
                   static_cast<unsigned long long>(ls.backoffs),
                   static_cast<unsigned long long>(ls.rtt_samples),
                   ls.srtt_ms, ls.rto_ms,
                   static_cast<unsigned long long>(ls.drop_auth),
                   static_cast<unsigned long long>(ls.drop_malformed),
                   static_cast<unsigned long long>(ls.drop_overflow),
                   static_cast<unsigned long long>(ls.drop_duplicate));
    }
  }

 private:
  /// Throughput-mode channel configuration from the CLI flags (0 keeps
  /// the seed defaults: one payload per bundle, one round in flight).
  [[nodiscard]] core::AtomicChannel::Config channel_config() const {
    core::AtomicChannel::Config cfg;
    if (args_.batch_count > 0) cfg.max_batch_count = args_.batch_count;
    if (args_.batch_bytes > 0) cfg.max_batch_bytes = args_.batch_bytes;
    if (args_.pipeline_depth > 0) cfg.pipeline_depth = args_.pipeline_depth;
    return cfg;
  }

  /// Builds the client gateway (DESIGN.md §12).  Created for every
  /// gateway-backed channel even without --client-port: replica --send
  /// payloads route through the same submit_local / wrap / delivery-time
  /// dedup machinery as client requests, so there is exactly one
  /// at-most-once policy in the node.
  void setup_gateway() {
    client::ClientGateway::Options gopts;
    gopts.replica = static_cast<std::uint32_t>(env_->self());
    gopts.n = env_->n();
    gopts.t = env_->t();
    gopts.rate_per_sec = args_.client_rate;
    gopts.burst = std::max(2.0, args_.client_rate / 5.0);
    gopts.global_rate_per_sec = args_.client_global_rate;
    gopts.global_burst = std::max(2.0, args_.client_global_rate / 4.0);
    gopts.max_clients = args_.max_clients;
    gopts.max_pending = args_.client_pending;
    gateway_ = std::make_unique<client::ClientGateway>(
        gopts, [this] { return loop_.now_ms(); });
    if (!args_.client_keys.empty()) {
      gateway_->set_key_table(client::read_key_file(args_.client_keys));
    }
    gateway_->set_submit([this](Bytes wrapped) {
      if (atomic_ != nullptr && atomic_->can_send()) {
        atomic_->send(wrapped);
        return true;
      }
      if (secure_ != nullptr && secure_->can_send()) {
        secure_->send(wrapped);
        return true;
      }
      return false;
    });
    if (args_.client_port > 0) {
      if (args_.client_keys.empty()) {
        throw std::runtime_error("--client-port needs --client-keys");
      }
      front_ = std::make_unique<client::UdpClientFront>(
          loop_, net::SocketAddress::resolve("0.0.0.0", args_.client_port),
          *gateway_);
      std::fprintf(stderr, "# node %d: client lane on %s\n", env_->self(),
                   front_->local_address().to_string().c_str());
    }
  }

  /// Every channel delivery funnels here: durable-log it raw, then let
  /// the gateway unwrap, dedup, reply, and decide whether it executes.
  void execute(const Bytes& payload, core::PartyId origin) {
    record(payload, origin);
    if (auto ex = gateway_->on_delivered(payload)) deliver(ex->payload);
    maybe_close();
  }

  /// --close waits for queued local submissions to reach the proposer;
  /// closing under a full pipeline window would strand them.
  void maybe_close() {
    if (!close_wanted_ || close_issued_ || !gateway_->local_queue_empty()) {
      return;
    }
    close_issued_ = true;
    if (atomic_ != nullptr) atomic_->close();
    if (secure_ != nullptr) secure_->close();
  }

  void start_channel() {
    auto& disp = env_->dispatcher();
    const std::string pid = "cluster." + args_.channel;
    // A node is a long-running process: cap the in-memory delivery log
    // (the durable record, when wanted, lives in the recovery log).
    constexpr std::size_t kDeliveryLogCap = 4096;
    if (args_.channel == "atomic") {
      atomic_ = std::make_unique<core::AtomicChannel>(*env_, disp, pid,
                                                      channel_config());
      atomic_->set_delivery_log_limit(kDeliveryLogCap);
      atomic_->set_deliver_callback(
          [this](const Bytes& payload, core::PartyId origin) {
            execute(payload, origin);
            // The node consumes deliveries via this callback; drain the
            // pull-style inbox so it cannot grow without bound.
            while (atomic_->receive()) {
            }
          });
      atomic_->set_closed_callback([this] { on_closed(); });
    } else if (args_.channel == "secure-atomic") {
      secure_ = std::make_unique<core::SecureAtomicChannel>(
          *env_, disp, pid, channel_config());
      secure_->set_delivery_log_limit(kDeliveryLogCap);
      secure_->set_deliver_callback([this](const Bytes& payload) {
        execute(payload, -1);
        while (secure_->receive()) {
        }
      });
      secure_->set_closed_callback([this] { on_closed(); });
    } else if (args_.channel == "optimistic") {
      if (args_.expect == 0) {
        throw std::runtime_error(
            "--channel optimistic needs --expect (it has no close protocol)");
      }
      if (args_.client_port > 0) {
        throw std::runtime_error(
            "--client-port needs a gateway-backed channel "
            "(atomic or secure-atomic)");
      }
      optimistic_ =
          std::make_unique<core::OptimisticChannel>(*env_, disp, pid);
      optimistic_->set_deliver_callback(
          [this](const Bytes& payload, core::PartyId origin) {
            record(payload, origin);
            deliver(payload);
          });
      for (int k = 0; k < args_.send_count; ++k) {
        optimistic_->send(payload_of(k));
      }
      return;
    } else {
      throw std::runtime_error("unknown channel type " + args_.channel);
    }
    setup_gateway();
    for (int k = 0; k < args_.send_count; ++k) {
      gateway_->submit_local(payload_of(k));
    }
    close_wanted_ = args_.close_after_send;
    maybe_close();
  }

  /// Restart path: no channel — replay the durable log, then fetch the
  /// remainder (plus the authenticating certificates) from the peers.
  /// Completion is reaching the close-time `final` certificate, not
  /// --expect: a restarted node cannot know the final count in advance.
  void start_recovery() {
    // The gateway runs in recovery too — replayed records are wrapped,
    // and the dedup/unwrap decisions must match what this node printed
    // before it crashed and what its live peers print now.  No client
    // lane and no submit hook: a recovering node cannot propose.
    setup_gateway();
    rec_->set_apply_callback(
        [this](const recovery::RecoveryManager::Record& r) {
          if (auto ex = gateway_->on_delivered(r.payload)) {
            deliver(ex->payload);
          }
        });
    rec_->set_caught_up_callback([this] {
      std::fprintf(stderr,
                   "# node %d: caught up at seq %llu (final certificate)\n",
                   env_->self(),
                   static_cast<unsigned long long>(rec_->delivered_seq()));
      finish();
    });
    const std::size_t replayed = rec_->replay_local();
    std::fprintf(stderr, "# node %d: recovery: replayed %zu from log\n",
                 env_->self(), replayed);
    rec_->start_catchup();
  }

  [[nodiscard]] Bytes payload_of(int k) const {
    std::string s =
        "p" + std::to_string(env_->self()) + ":" + std::to_string(k);
    // --bench-load pads every payload to a fixed size; the unique header
    // stays, so total-order comparison across nodes still works.
    if (static_cast<int>(s.size()) < args_.bench_payload_bytes) {
      s.resize(static_cast<std::size_t>(args_.bench_payload_bytes), '.');
    }
    return to_bytes(s);
  }

  /// Normal path only: feeds a live channel delivery to the recovery
  /// layer (durable log + digest chain) before it is printed.
  void record(const Bytes& payload, core::PartyId origin) {
    if (rec_) rec_->on_delivered(payload, origin);
  }

  void deliver(const Bytes& payload) {
    ++delivered_;
    std::fprintf(out_, "DELIVER %s\n", to_string(payload).c_str());
    if (!recovering_ && args_.expect != 0 && delivered_ >= args_.expect) {
      finish();
    }
  }

  void on_closed() {
    // The close-time checkpoint covers the whole sequence; its `final`
    // certificate is what tells restarted/lagging replicas they have
    // everything.
    if (rec_) rec_->force_checkpoint(/*final=*/true);
    finish();
  }

  void finish() {
    if (completed_) return;
    completed_ = true;
    flush();
    if (!args_.out_path.empty()) {
      // Completion marker for external orchestration (the cluster runner
      // waits for every node's marker before signaling).  Atomic: the
      // runner never observes a half-created marker.
      util::atomic_write_file(args_.out_path + ".done", std::string_view{});
    }
    if (args_.linger_ms < 0.0) return;  // serve until signaled
    finish_ms_ = loop_.now_ms();
    wait_for_quiescence();
  }

  // Linger before exiting: our links keep retransmitting unacked frames
  // and our (closed but live) channel keeps answering protocol messages,
  // so slower peers can finish their own close/delivery.  Leave only once
  // every peer has acked everything we sent (backlog drained), with a
  // hard cap so a crashed peer cannot hold us hostage.
  void wait_for_quiescence() {
    const double elapsed = loop_.now_ms() - finish_ms_;
    const bool drained = env_->send_backlog() == 0;
    if ((elapsed >= args_.linger_ms && drained) ||
        elapsed >= 10.0 * args_.linger_ms) {
      loop_.stop();
      return;
    }
    loop_.call_later(100.0, [this] { wait_for_quiescence(); });
  }

  Args args_;
  net::EventLoop& loop_;
  std::unique_ptr<net::NetEnvironment> env_;
  std::unique_ptr<recovery::StateStore> store_;
  std::unique_ptr<recovery::RecoveryManager> rec_;
  bool recovering_ = false;
  std::unique_ptr<core::AtomicChannel> atomic_;
  std::unique_ptr<core::SecureAtomicChannel> secure_;
  std::unique_ptr<core::OptimisticChannel> optimistic_;
  std::unique_ptr<client::ClientGateway> gateway_;
  std::unique_ptr<client::UdpClientFront> front_;
  bool close_wanted_ = false;
  bool close_issued_ = false;
  std::FILE* out_ = nullptr;
  std::FILE* trace_file_ = nullptr;
  std::unique_ptr<obs::EventTrace> trace_;
  std::uint64_t delivered_ = 0;
  bool completed_ = false;
  double finish_ms_ = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse_args(argc, argv);
    net::EventLoop loop;
    NodeApp app(args, loop);
    loop.stop_on_signals({SIGINT, SIGTERM}, [&](int signo) {
      std::fprintf(stderr, "# node %d: signal %d, shutting down\n",
                   app.party(), signo);
    });
    if (!args.metrics_out.empty()) {
      // Live snapshot without stopping: kill -USR1 <pid>.
      loop.on_signal(SIGUSR1, [&] { app.write_metrics(); });
    }
    loop.run();
    app.flush();
    app.flush_trace();
    app.write_metrics();
    if (args.print_stats) {
      app.print_stats(app.completed() ? "completed" : "interrupted");
    }
    return app.completed() ? 0 : 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr,
                 "error: %s\nusage: sintra_node <group.conf> <party.keys> "
                 "[--channel atomic|secure-atomic|optimistic] [--send N] "
                 "[--close] [--expect N] [--linger MS] [--out FILE] "
                 "[--stats] [--metrics-out FILE] [--trace-out FILE] "
                 "[--via host:base_port] [--crypto-threads N] "
                 "[--no-mmsg] [--corrupt-shares] [--state-dir DIR] "
                 "[--checkpoint-interval K] [--batch-count N] "
                 "[--batch-bytes N] [--pipeline-depth W] "
                 "[--bench-load MxB] [--client-port P] "
                 "[--client-keys FILE] [--max-clients N] "
                 "[--client-rate R] [--client-global-rate R] "
                 "[--client-pending N]\n",
                 e.what());
    return 2;
  }
}
