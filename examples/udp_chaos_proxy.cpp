// Packet-mangling UDP proxy: sits between sintra_node processes and
// injects loss, duplication and reordering — the WAN conditions the
// paper's sliding-window link (§3) exists to survive, reproduced on
// localhost so the cluster tests exercise real retransmission and
// backoff instead of a clean kernel loopback.
//
//   $ ./udp_chaos_proxy group.conf 127.0.0.1:19000
//         --loss 0.1 --dup 0.05 --reorder-ms 25 --seed 7
//
// The proxy binds base_port+j for every party j and forwards datagrams
// arriving there to party j's real endpoint from the config.  Nodes are
// pointed at it with sintra_node --via 127.0.0.1:19000.  Replies flow
// through the proxy the same way, so both directions are mangled.
// Receivers identify peers by the authenticated sender id inside each
// datagram, never by source address, which is what makes interposition
// possible without rewriting anything.
//
// SIGINT/SIGTERM: print forwarding stats and exit.
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

#include <csignal>

#include "core/config.hpp"
#include "net/event_loop.hpp"
#include "net/udp.hpp"
#include "util/rng.hpp"

using namespace sintra;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct Stats {
  std::uint64_t received = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
};

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 3) {
      std::fprintf(stderr,
                   "usage: udp_chaos_proxy <group.conf> <host:base_port> "
                   "[--loss P] [--dup P] [--reorder-ms MS] [--seed N]\n");
      return 2;
    }
    const core::GroupConfig cfg = core::GroupConfig::parse(read_file(argv[1]));
    const std::string listen = argv[2];
    const auto colon = listen.rfind(':');
    if (colon == std::string::npos) {
      throw std::runtime_error("listen address wants host:base_port");
    }
    const std::string host = listen.substr(0, colon);
    const int base_port = std::stoi(listen.substr(colon + 1));

    double loss = 0.1, dup = 0.05, reorder_ms = 25.0;
    std::uint64_t seed = 1;
    for (int i = 3; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&]() -> std::string {
        if (i + 1 >= argc) throw std::runtime_error(arg + " needs a value");
        return argv[++i];
      };
      if (arg == "--loss") {
        loss = std::stod(value());
      } else if (arg == "--dup") {
        dup = std::stod(value());
      } else if (arg == "--reorder-ms") {
        reorder_ms = std::stod(value());
      } else if (arg == "--seed") {
        seed = std::stoull(value());
      } else {
        throw std::runtime_error("unknown option " + arg);
      }
    }

    net::EventLoop loop;
    Rng rng(seed);
    Stats stats;

    const int n = cfg.dealer.n;
    std::vector<std::unique_ptr<net::UdpSocket>> sockets;
    std::vector<net::SocketAddress> targets;
    for (int j = 0; j < n; ++j) {
      targets.push_back(net::SocketAddress::resolve(
          cfg.parties[static_cast<std::size_t>(j)].host,
          cfg.parties[static_cast<std::size_t>(j)].port));
      sockets.push_back(std::make_unique<net::UdpSocket>(
          net::SocketAddress::resolve(host, base_port + j)));
    }
    for (int j = 0; j < n; ++j) {
      net::UdpSocket& sock = *sockets[static_cast<std::size_t>(j)];
      const net::SocketAddress target = targets[static_cast<std::size_t>(j)];
      loop.add_fd(sock.fd(), [&loop, &rng, &stats, &sock, target, loss, dup,
                              reorder_ms] {
        while (auto received = sock.receive()) {
          ++stats.received;
          Bytes datagram = std::move(received->first);
          if (rng.uniform01() < loss) {
            ++stats.dropped;
            continue;
          }
          int copies = 1;
          if (rng.uniform01() < dup) {
            copies = 2;
            ++stats.duplicated;
          }
          for (int c = 0; c < copies; ++c) {
            const double delay =
                reorder_ms > 0.0 ? rng.uniform01() * reorder_ms : 0.0;
            loop.call_later(delay, [&stats, &sock, target, datagram] {
              if (sock.send_to(target, datagram)) ++stats.forwarded;
            });
          }
        }
      });
    }

    loop.stop_on_signals({SIGINT, SIGTERM});
    std::fprintf(stderr, "# chaos proxy up: %d ports from %s:%d, loss=%.2f "
                         "dup=%.2f reorder<=%.0fms\n",
                 n, host.c_str(), base_port, loss, dup, reorder_ms);
    loop.run();
    std::fprintf(stderr,
                 "STATS proxy received=%llu forwarded=%llu dropped=%llu "
                 "duplicated=%llu\n",
                 static_cast<unsigned long long>(stats.received),
                 static_cast<unsigned long long>(stats.forwarded),
                 static_cast<unsigned long long>(stats.dropped),
                 static_cast<unsigned long long>(stats.duplicated));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
