// Packet-mangling UDP proxy: sits between sintra_node processes and
// injects loss, duplication and reordering — the WAN conditions the
// paper's sliding-window link (§3) exists to survive, reproduced on
// localhost so the cluster tests exercise real retransmission and
// backoff instead of a clean kernel loopback.
//
//   $ ./udp_chaos_proxy group.conf 127.0.0.1:19000
//         --loss 0.1 --dup 0.05 --reorder-ms 25 --seed 7
//
// The proxy binds base_port+j for every party j and forwards datagrams
// arriving there to party j's real endpoint from the config.  Nodes are
// pointed at it with sintra_node --via 127.0.0.1:19000.  Replies flow
// through the proxy the same way, so both directions are mangled.
// Receivers identify peers by the authenticated sender id inside each
// datagram, never by source address, which is what makes interposition
// possible without rewriting anything.
//
// Network partitions: --partition "0,1|2,3" drops every datagram between
// parties in different groups (here {0,1} vs {2,3}); --heal-after-ms N
// lifts the partition after N ms, so recovery and catch-up under a
// healed partition can be exercised end to end.  The sender is taken
// from the advisory id prefix of each datagram — good enough for fault
// injection (a node forging its own prefix only mangles its own
// traffic; authenticity is still the links' HMAC problem).  Parties not
// named in any group are unrestricted.
//
// Client lanes: --client-ports TBASE additionally binds base_port+n+j
// per party j and forwards datagrams arriving there — client requests —
// to (party j's host, TBASE+j), i.e. the replica's --client-port.  The
// proxy learns each client's return address from the advisory client id
// in the request header and NATs replies back by the id in the reply
// header, so a whole client_swarm runs through the same loss/dup/
// reorder mill as the replica traffic.  Advisory routing only: MACs
// stay the gateways'/clients' problem, exactly like the sender-id
// prefix on the replica lane.
//
// SIGINT/SIGTERM: print forwarding stats and exit.
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <unordered_map>
#include <vector>

#include <csignal>

#include "client/wire.hpp"
#include "core/config.hpp"
#include "net/event_loop.hpp"
#include "net/udp.hpp"
#include "util/rng.hpp"

using namespace sintra;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct Stats {
  std::uint64_t received = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t partitioned = 0;  // cut by an active --partition
  std::uint64_t client_requests = 0;  // client->replica lane traffic
  std::uint64_t client_replies = 0;   // replica->client lane traffic
};

/// Parses "0,1|2,3" into a per-party group id (-1 = unrestricted).
std::vector<int> parse_partition(const std::string& spec, int n) {
  std::vector<int> group(static_cast<std::size_t>(n), -1);
  int g = 0;
  std::stringstream groups(spec);
  std::string one;
  while (std::getline(groups, one, '|')) {
    std::stringstream members(one);
    std::string id;
    while (std::getline(members, id, ',')) {
      const int j = std::stoi(id);
      if (j < 0 || j >= n) {
        throw std::runtime_error("--partition names party " + id +
                                 " outside 0.." + std::to_string(n - 1));
      }
      group[static_cast<std::size_t>(j)] = g;
    }
    ++g;
  }
  return group;
}

/// The advisory sender id every sintra datagram is prefixed with
/// (net/net_environment.hpp); -1 when too short to carry one.
int sender_of(const Bytes& datagram) {
  if (datagram.size() < 4) return -1;
  return static_cast<int>((static_cast<std::uint32_t>(datagram[0]) << 24) |
                          (static_cast<std::uint32_t>(datagram[1]) << 16) |
                          (static_cast<std::uint32_t>(datagram[2]) << 8) |
                          static_cast<std::uint32_t>(datagram[3]));
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 3) {
      std::fprintf(stderr,
                   "usage: udp_chaos_proxy <group.conf> <host:base_port> "
                   "[--loss P] [--dup P] [--reorder-ms MS] [--seed N]\n"
                   "       [--partition \"0,1|2,3\"] [--heal-after-ms N] "
                   "[--client-ports TBASE]\n");
      return 2;
    }
    const core::GroupConfig cfg = core::GroupConfig::parse(read_file(argv[1]));
    const std::string listen = argv[2];
    const auto colon = listen.rfind(':');
    if (colon == std::string::npos) {
      throw std::runtime_error("listen address wants host:base_port");
    }
    const std::string host = listen.substr(0, colon);
    const int base_port = std::stoi(listen.substr(colon + 1));

    double loss = 0.1, dup = 0.05, reorder_ms = 25.0;
    std::uint64_t seed = 1;
    std::string partition_spec;
    double heal_after_ms = -1.0;  // < 0: the partition never heals
    int client_target_base = 0;   // --client-ports: replicas' client lanes
    for (int i = 3; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&]() -> std::string {
        if (i + 1 >= argc) throw std::runtime_error(arg + " needs a value");
        return argv[++i];
      };
      if (arg == "--loss") {
        loss = std::stod(value());
      } else if (arg == "--dup") {
        dup = std::stod(value());
      } else if (arg == "--reorder-ms") {
        reorder_ms = std::stod(value());
      } else if (arg == "--seed") {
        seed = std::stoull(value());
      } else if (arg == "--partition") {
        partition_spec = value();
      } else if (arg == "--heal-after-ms") {
        heal_after_ms = std::stod(value());
      } else if (arg == "--client-ports") {
        client_target_base = std::stoi(value());
      } else {
        throw std::runtime_error("unknown option " + arg);
      }
    }

    net::EventLoop loop;
    Rng rng(seed);
    Stats stats;

    const int n = cfg.dealer.n;
    const std::vector<int> group =
        partition_spec.empty() ? std::vector<int>(static_cast<std::size_t>(n),
                                                  -1)
                               : parse_partition(partition_spec, n);
    bool partitioned = !partition_spec.empty();
    std::vector<std::unique_ptr<net::UdpSocket>> sockets;
    std::vector<net::SocketAddress> targets;
    for (int j = 0; j < n; ++j) {
      targets.push_back(net::SocketAddress::resolve(
          cfg.parties[static_cast<std::size_t>(j)].host,
          cfg.parties[static_cast<std::size_t>(j)].port));
      sockets.push_back(std::make_unique<net::UdpSocket>(
          net::SocketAddress::resolve(host, base_port + j)));
    }
    for (int j = 0; j < n; ++j) {
      net::UdpSocket& sock = *sockets[static_cast<std::size_t>(j)];
      const net::SocketAddress target = targets[static_cast<std::size_t>(j)];
      loop.add_fd(sock.fd(), [&loop, &rng, &stats, &sock, target, loss, dup,
                              reorder_ms, j, &group, &partitioned] {
        while (auto received = sock.receive()) {
          ++stats.received;
          Bytes datagram = std::move(received->first);
          if (partitioned) {
            // Cut traffic that crosses partition groups.  Datagrams from
            // parties outside every group (or too short to carry a sender
            // id) pass; same-group and self traffic passes.
            const int from = sender_of(datagram);
            const int from_group =
                (from >= 0 && from < static_cast<int>(group.size()))
                    ? group[static_cast<std::size_t>(from)]
                    : -1;
            const int to_group = group[static_cast<std::size_t>(j)];
            if (from_group >= 0 && to_group >= 0 && from_group != to_group) {
              ++stats.partitioned;
              continue;
            }
          }
          if (rng.uniform01() < loss) {
            ++stats.dropped;
            continue;
          }
          int copies = 1;
          if (rng.uniform01() < dup) {
            copies = 2;
            ++stats.duplicated;
          }
          for (int c = 0; c < copies; ++c) {
            const double delay =
                reorder_ms > 0.0 ? rng.uniform01() * reorder_ms : 0.0;
            loop.call_later(delay, [&stats, &sock, target, datagram] {
              if (sock.send_to(target, datagram)) ++stats.forwarded;
            });
          }
        }
      });
    }

    // Client lanes (one per party, after the n replica lanes).  Shared
    // mangler: same loss/dup/reorder knobs as the replica traffic.
    std::vector<std::unique_ptr<net::UdpSocket>> client_sockets;
    std::vector<net::SocketAddress> client_targets;
    std::unordered_map<std::uint32_t, net::SocketAddress> client_addrs;
    auto mangle_and_send = [&loop, &rng, &stats, loss, dup, reorder_ms](
                               net::UdpSocket& sock,
                               const net::SocketAddress& target,
                               Bytes datagram) {
      if (rng.uniform01() < loss) {
        ++stats.dropped;
        return;
      }
      int copies = 1;
      if (rng.uniform01() < dup) {
        copies = 2;
        ++stats.duplicated;
      }
      for (int c = 0; c < copies; ++c) {
        const double delay =
            reorder_ms > 0.0 ? rng.uniform01() * reorder_ms : 0.0;
        loop.call_later(delay, [&stats, &sock, target, datagram] {
          if (sock.send_to(target, datagram)) ++stats.forwarded;
        });
      }
    };
    if (client_target_base > 0) {
      for (int j = 0; j < n; ++j) {
        client_targets.push_back(net::SocketAddress::resolve(
            cfg.parties[static_cast<std::size_t>(j)].host,
            client_target_base + j));
        client_sockets.push_back(std::make_unique<net::UdpSocket>(
            net::SocketAddress::resolve(host, base_port + n + j)));
      }
      for (int j = 0; j < n; ++j) {
        net::UdpSocket& sock = *client_sockets[static_cast<std::size_t>(j)];
        const net::SocketAddress target =
            client_targets[static_cast<std::size_t>(j)];
        loop.add_fd(sock.fd(), [&stats, &sock, target, &client_addrs,
                                &mangle_and_send] {
          while (auto received = sock.receive()) {
            ++stats.received;
            Bytes datagram = std::move(received->first);
            const auto type = client::peek_type(datagram);
            const auto id = client::peek_client_id(datagram);
            if (!type || !id) continue;  // not a client frame: drop
            if (*type == client::FrameType::kRequest) {
              // Learn (advisory) where this client answers, then pass
              // the request on to the replica's client lane.
              ++stats.client_requests;
              client_addrs[*id] = received->second;
              mangle_and_send(sock, target, std::move(datagram));
            } else {
              // Reply from the replica: NAT back by client id.
              auto it = client_addrs.find(*id);
              if (it == client_addrs.end()) continue;
              ++stats.client_replies;
              mangle_and_send(sock, it->second, std::move(datagram));
            }
          }
        });
      }
    }

    if (partitioned && heal_after_ms >= 0.0) {
      loop.call_later(heal_after_ms, [&partitioned] {
        partitioned = false;
        std::fprintf(stderr, "# chaos proxy: partition healed\n");
      });
    }

    loop.stop_on_signals({SIGINT, SIGTERM});
    std::fprintf(stderr, "# chaos proxy up: %d ports from %s:%d, loss=%.2f "
                         "dup=%.2f reorder<=%.0fms\n",
                 n, host.c_str(), base_port, loss, dup, reorder_ms);
    if (client_target_base > 0) {
      std::fprintf(stderr,
                   "# chaos proxy: %d client lanes from %s:%d -> ports %d+\n",
                   n, host.c_str(), base_port + n, client_target_base);
    }
    if (partitioned) {
      std::fprintf(stderr, "# chaos proxy: partition \"%s\" active%s\n",
                   partition_spec.c_str(),
                   heal_after_ms >= 0.0 ? " (will heal)" : "");
    }
    loop.run();
    std::fprintf(stderr,
                 "STATS proxy received=%llu forwarded=%llu dropped=%llu "
                 "duplicated=%llu partitioned=%llu client_requests=%llu "
                 "client_replies=%llu\n",
                 static_cast<unsigned long long>(stats.received),
                 static_cast<unsigned long long>(stats.forwarded),
                 static_cast<unsigned long long>(stats.dropped),
                 static_cast<unsigned long long>(stats.duplicated),
                 static_cast<unsigned long long>(stats.partitioned),
                 static_cast<unsigned long long>(stats.client_requests),
                 static_cast<unsigned long long>(stats.client_replies));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
