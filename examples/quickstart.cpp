// Quickstart: secure state-machine replication in ~60 lines.
//
// Four replicas tolerate one Byzantine fault (n = 4, t = 1).  The trusted
// dealer hands out all key material, an atomic broadcast channel totally
// orders client commands, and every replica observes the same sequence —
// the paper's core claim, end to end.
//
//   $ ./quickstart
//
#include <chrono>
#include <iostream>

#include "facade/blocking_api.hpp"

int main() {
  using namespace sintra;

  // 1. The trusted dealer (run once, §2): group of 4, one may be corrupt.
  crypto::DealerConfig config;
  config.n = 4;
  config.t = 1;
  config.rsa_bits = 512;   // demo-sized keys; the paper used 1024
  config.dl_p_bits = 256;
  config.dl_q_bits = 96;
  const crypto::Deal deal = crypto::run_dealer(config);

  // 2. Boot the replicas (one thread each, authenticated links).
  facade::LocalGroup group(deal);

  // 3. Open the atomic broadcast channel on every replica.
  std::vector<std::unique_ptr<facade::BlockingAtomicChannel>> channel;
  for (int i = 0; i < group.n(); ++i) {
    channel.push_back(std::make_unique<facade::BlockingAtomicChannel>(
        group, i, "quickstart"));
  }

  // 4. Two replicas broadcast commands concurrently.
  channel[0]->send(to_bytes("credit alice 100"));
  channel[1]->send(to_bytes("debit bob 40"));
  channel[0]->send(to_bytes("credit carol 7"));

  // 5. Every replica receives the SAME totally-ordered command stream.
  for (int i = 0; i < group.n(); ++i) {
    std::cout << "replica " << i << " applies:";
    for (int m = 0; m < 3; ++m) {
      auto cmd = channel[static_cast<std::size_t>(i)]->receive_for(
          std::chrono::seconds(30));
      if (!cmd) {
        std::cerr << "\ntimeout waiting for delivery\n";
        return 1;
      }
      std::cout << "  [" << to_string(*cmd) << "]";
    }
    std::cout << "\n";
  }

  // 6. Close the channel (t+1 = 2 honest closes terminate it, §2.5).
  channel[0]->close();
  channel[1]->close();
  channel[2]->close_wait();
  std::cout << "channel closed on all replicas\n";
  return 0;
}
