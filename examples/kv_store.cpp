// Intrusion-tolerant replicated key-value store.
//
// State-machine replication (Schneider) over SINTRA's atomic broadcast:
// every replica applies the same totally-ordered stream of SET/DEL
// commands, so all honest replicas hold identical state even though one
// replica crashes mid-run.  This is the paper's motivating application
// ("Given an atomic broadcast primitive, a fault-tolerant replicated
// service can be implemented immediately", §2.5).
//
//   $ ./kv_store
//
#include <chrono>
#include <iostream>
#include <map>
#include <sstream>

#include "facade/blocking_api.hpp"

namespace {

using sintra::Bytes;

/// The deterministic state machine each replica runs.
class KvStateMachine {
 public:
  /// Commands: "SET key value" | "DEL key".
  void apply(const std::string& command) {
    std::istringstream in(command);
    std::string op, key;
    in >> op >> key;
    if (op == "SET") {
      std::string value;
      std::getline(in, value);
      if (!value.empty() && value.front() == ' ') value.erase(0, 1);
      state_[key] = value;
    } else if (op == "DEL") {
      state_.erase(key);
    }
    ++applied_;
  }

  [[nodiscard]] std::string fingerprint() const {
    std::ostringstream out;
    for (const auto& [k, v] : state_) out << k << "=" << v << ";";
    return out.str();
  }

  [[nodiscard]] int applied() const { return applied_; }

 private:
  std::map<std::string, std::string> state_;
  int applied_ = 0;
};

}  // namespace

int main() {
  using namespace sintra;

  crypto::DealerConfig config;
  config.n = 4;
  config.t = 1;
  config.rsa_bits = 512;
  config.dl_p_bits = 256;
  config.dl_q_bits = 96;
  const crypto::Deal deal = crypto::run_dealer(config);
  facade::LocalGroup group(deal);

  std::vector<std::unique_ptr<facade::BlockingAtomicChannel>> channel;
  for (int i = 0; i < group.n(); ++i) {
    channel.push_back(std::make_unique<facade::BlockingAtomicChannel>(
        group, i, "kv"));
  }

  // Commands submitted concurrently at different replicas — including
  // conflicting writes to the same key, which total order resolves
  // identically everywhere.
  const std::vector<std::pair<int, std::string>> workload = {
      {0, "SET balance:alice 100"}, {1, "SET balance:bob 250"},
      {2, "SET balance:alice 90"},  {0, "DEL balance:bob"},
      {1, "SET audit last-writer-one"}, {2, "SET audit last-writer-two"},
  };
  for (const auto& [replica, cmd] : workload) {
    channel[static_cast<std::size_t>(replica)]->send(to_bytes(cmd));
  }

  // Replica 3 crashes mid-run: with n=4, t=1 the service must not notice.
  group.crash(3);
  std::cout << "replica 3 crashed; continuing with 3 of 4\n";

  std::vector<KvStateMachine> machines(3);
  for (int i = 0; i < 3; ++i) {
    for (std::size_t m = 0; m < workload.size(); ++m) {
      auto cmd = channel[static_cast<std::size_t>(i)]->receive_for(
          std::chrono::seconds(60));
      if (!cmd) {
        std::cerr << "timeout: replica " << i << " at command " << m << "\n";
        return 1;
      }
      machines[static_cast<std::size_t>(i)].apply(to_string(*cmd));
    }
  }

  const std::string expected = machines[0].fingerprint();
  std::cout << "replica 0 state: " << expected << "\n";
  for (int i = 1; i < 3; ++i) {
    std::cout << "replica " << i << " state: "
              << machines[static_cast<std::size_t>(i)].fingerprint() << "\n";
    if (machines[static_cast<std::size_t>(i)].fingerprint() != expected) {
      std::cerr << "STATE DIVERGENCE — replication broken!\n";
      return 1;
    }
  }
  std::cout << "all live replicas converged on identical state ("
            << machines[0].applied() << " commands applied)\n";
  return 0;
}
