# Regenerates the paper's Figure 5 scatter:
#
#   ./build/bench/fig5_wan_scatter 1000 --points | grep -v '^[^ 0-9]' > fig5.dat
#   gnuplot -e "datafile='fig5.dat'" scripts/plot_fig5.gp
#
# Produces fig5.png: delivery time per message for AtomicChannel on the
# Internet setup — compare with the paper's three bands (0 s batch band,
# the one-agreement band, and the extra-binary-agreement band about one
# agreement higher).
if (!exists("datafile")) datafile = "fig5.dat"
set terminal pngcairo size 900,600
set output "fig5.png"
set title "Delivery time per message, AtomicChannel on the Internet (reproduction)"
set xlabel "Delivery Number"
set ylabel "sec/delivery"
set key top right title "Senders:"
plot datafile using 1:(strcol(3) eq "P0" ? $2 : 1/0) title "Zurich P0" pt 7 ps 0.5, \
     datafile using 1:(strcol(3) eq "P1" ? $2 : 1/0) title "Tokyo P1" pt 5 ps 0.5, \
     datafile using 1:(strcol(3) eq "P2" ? $2 : 1/0) title "New York P2" pt 9 ps 0.5
