#!/usr/bin/env bash
# Documentation consistency checks (registered as the ctest "DocsCheck"):
#
#   1. every relative markdown link in the repo's *.md files resolves to
#      an existing file;
#   2. every metric name emitted by the source tree — any string literal
#      passed to registry .counter(" / .gauge(" / .histogram(" — is
#      documented in docs/OBSERVABILITY.md;
#   3. every command-line flag sintra_node parses appears in README.md;
#   4. every benchmark scenario recorded in a BENCH_*.json at the repo
#      root is mentioned in README.md or docs/, so published numbers
#      always have prose explaining what they measure;
#   5. every public header under src/bignum opens with a file-level doc
#      comment (the crypto substrate is the part of the tree where an
#      undocumented invariant becomes a key-corrupting bug).
#
# Grep-based on purpose: no build products needed, so it runs in any
# checkout and catches drift at review time.
set -u

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

failures=0

fail() {
  echo "FAIL: $*" >&2
  failures=$((failures + 1))
}

# --- 1. markdown links -----------------------------------------------------
# Matches ](path) targets; ignores http(s), mailto, pure #anchors, and
# anything with a space (those are C++ lambdas inside code blocks, not
# markdown links).
while IFS=: read -r file target; do
  [ -n "$target" ] || continue
  case "$target" in
    http://*|https://*|mailto:*|\#*|*" "*) continue ;;
  esac
  path="${target%%#*}"          # strip an anchor suffix
  [ -n "$path" ] || continue
  base="$(dirname "$file")"
  if [ ! -e "$base/$path" ] && [ ! -e "$path" ]; then
    fail "$file links to missing file: $target"
  fi
done < <(grep -oHE '\]\([^)]+\)' --include='*.md' -r . \
           --exclude-dir=build --exclude-dir=.git \
         | sed -E 's/\]\(([^)]*)\)$/\1/')

# --- 2. metric names documented --------------------------------------------
OBS_DOC="docs/OBSERVABILITY.md"
if [ ! -f "$OBS_DOC" ]; then
  fail "$OBS_DOC does not exist"
else
  metric_names="$(grep -rhoE '\.(counter|gauge|histogram)\("[^"]+"' \
                    src examples 2>/dev/null \
                  | sed -E 's/.*\("([^"]+)"/\1/' | sort -u)"
  if [ -z "$metric_names" ]; then
    fail "found no emitted metric names under src/ — check_docs.sh grep drifted"
  fi
  while IFS= read -r name; do
    if ! grep -qF "$name" "$OBS_DOC"; then
      fail "metric \"$name\" is emitted in the source but not documented in $OBS_DOC"
    fi
  done <<< "$metric_names"

  # Trace event names likewise.
  for event in send recv round_start transition coin_release decide deliver \
               park shed; do
    if ! grep -qF "\`$event\`" "$OBS_DOC"; then
      fail "trace event \"$event\" is not documented in $OBS_DOC"
    fi
  done
fi

# --- 3. sintra_node flags documented ---------------------------------------
# Every command-line flag sintra_node parses (the `arg == "--..."`
# literals) must appear somewhere in README.md, so the deployment
# walkthrough can't silently drift from the binary.
NODE_SRC="examples/sintra_node.cpp"
if [ -f "$NODE_SRC" ]; then
  node_flags="$(grep -oE '== "--[a-z-]+"' "$NODE_SRC" \
                | sed -E 's/== "(--[a-z-]+)"/\1/' | sort -u)"
  if [ -z "$node_flags" ]; then
    fail "found no flags in $NODE_SRC — check_docs.sh grep drifted"
  fi
  while IFS= read -r flag; do
    if ! grep -qF -- "$flag" README.md; then
      fail "sintra_node flag \"$flag\" is not documented in README.md"
    fi
  done <<< "$node_flags"
fi

# --- 4. bench scenarios documented -----------------------------------------
# Every scenario name recorded in a BENCH_*.json at the repo root (keys of
# its "benchmarks" or "runs" object; google-benchmark /arg suffixes are
# stripped) must be mentioned in README.md or somewhere under docs/ —
# numbers we publish need prose saying what they measure.
for bench in BENCH_*.json; do
  [ -f "$bench" ] || continue
  bench_names="$(python3 -c '
import json, sys
d = json.load(open(sys.argv[1]))
names = set()
for key in ("benchmarks", "runs"):
    for name in d.get(key, {}):
        names.add(name.split("/")[0])
print("\n".join(sorted(names)))' "$bench")"
  if [ -z "$bench_names" ]; then
    fail "$bench records no benchmarks/runs — check_docs.sh extraction drifted"
    continue
  fi
  while IFS= read -r name; do
    if ! grep -qrF -- "$name" README.md docs/; then
      fail "bench scenario \"$name\" ($bench) is not described in README.md or docs/"
    fi
  done <<< "$bench_names"
done

# --- 5. bignum headers carry file-level doc comments ------------------------
# The crypto substrate's invariants (limb layout, CIOS bounds, work-unit
# definition) live in header prose; a bare header is a review failure.
for hdr in src/bignum/*.hpp; do
  [ -f "$hdr" ] || continue
  if ! head -n 1 "$hdr" | grep -qE '^//'; then
    fail "$hdr has no file-level doc comment (first line must be // prose)"
  fi
done

if [ "$failures" -ne 0 ]; then
  echo "check_docs.sh: $failures problem(s)" >&2
  exit 1
fi
echo "check_docs.sh: OK"
