#!/usr/bin/env bash
# Group-size scaling benchmark, distilled into BENCH_scale.json at the
# repo root (DESIGN.md §14; README "Scaling the group").
#
# Three measurement families:
#   scale-nN        bench/scale_sweep --sweep on the discrete-event
#                   simulator at n ∈ {4, 7, 10, 16, 31}: deliveries/sec
#                   (virtual AND wall clock), crypto work units per
#                   delivery, and datagrams-per-delivery (= syscalls per
#                   delivery on the unbatched transport, 2 kernel
#                   round-trips per datagram).
#   fallback-n16    the crypto-layer gate: at n=16 one Byzantine share
#                   forces per-share verification, timed serial (the
#                   pre-PR path) vs WorkPool-parallel in one process.
#   cluster-n7-*    a real 7-process loopback cluster (sintra_node over
#                   UDP, via scripts/run_local_cluster.sh) run twice —
#                   with the default sendmmsg/recvmmsg transport
#                   (cluster-n7-mmsg) and with --no-mmsg
#                   (cluster-n7-sendto) — comparing measured
#                   syscalls-per-delivery from the net.tx_syscalls /
#                   net.rx_syscalls gauges.
#
# Gate (>= 2x, optimized vs pre-PR baseline, measured in the same run):
# on machines with >= 4 hardware threads the basis is the fallback-n16
# wall-clock speedup (parallel share verification); on smaller machines —
# where a parallel verify physically cannot beat serial — the basis is
# the cluster-n7 syscall reduction, which batching delivers regardless
# of core count.  Both figures are always recorded.
#
# Usage: scripts/bench_scale.sh [build_dir]   (default: ./build)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

if [[ ! -d "$build_dir" ]]; then
  cmake -S "$repo_root" -B "$build_dir" -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$build_dir" --target scale_sweep sintra_node dealer_tool \
  udp_chaos_proxy -j"$(nproc)"

bench="$build_dir/bench/scale_sweep"
raw="$(mktemp)"
mdir_mmsg="$(mktemp -d)"
mdir_sendto="$(mktemp -d)"
trap 'rm -rf "$raw" "$mdir_mmsg" "$mdir_sendto"' EXIT

# Simulator sweep: message counts taper with n so the n=31 run (whose
# real crypto is ~100x a n=4 delivery) keeps the suite quick.
for spec in 4:40 7:32 10:24 16:16 31:8; do
  n="${spec%%:*}"; msgs="${spec##*:}"
  echo "# scale: sweep n=$n" >&2
  "$bench" --sweep --n "$n" --messages "$msgs" >>"$raw"
done

echo "# scale: fallback gate n=16" >&2
"$bench" --fallback-gate --n 16 --reps 3 >>"$raw"

# Real-cluster datapoint: identical n=7 workload, batched vs unbatched
# syscalls.  Wall time is recorded but the cross-run comparison is the
# syscall counters — loopback wall clock is scheduler noise at this size.
cluster_send="${SINTRA_BENCH_SCALE_SEND:-4}"
echo "# scale: cluster n=7 (mmsg)" >&2
t0="$(date +%s.%N)"
"$repo_root/scripts/run_local_cluster.sh" --n 7 --send "$cluster_send" \
  --build-dir "$build_dir" --metrics-dir "$mdir_mmsg" >&2
t1="$(date +%s.%N)"
mmsg_wall="$(awk "BEGIN{printf \"%.3f\", $t1-$t0}")"

echo "# scale: cluster n=7 (--no-mmsg)" >&2
t0="$(date +%s.%N)"
"$repo_root/scripts/run_local_cluster.sh" --n 7 --send "$cluster_send" \
  --no-mmsg --build-dir "$build_dir" --metrics-dir "$mdir_sendto" >&2
t1="$(date +%s.%N)"
sendto_wall="$(awk "BEGIN{printf \"%.3f\", $t1-$t0}")"

python3 - "$raw" "$mdir_mmsg" "$mdir_sendto" "$mmsg_wall" "$sendto_wall" \
  "$repo_root/BENCH_scale.json" <<'PY'
import glob
import json
import os
import sys

raw_path, mdir_mmsg, mdir_sendto, mmsg_wall, sendto_wall, out_path = \
    sys.argv[1:7]

runs = {}
fallback = None
with open(raw_path) as f:
    for line in f:
        line = line.strip()
        if not line:
            continue
        r = json.loads(line)
        if r["mode"] == "sweep":
            runs[f"scale-n{r['n']}"] = r
            if not r.get("completed"):
                sys.exit(f"FAIL: sweep n={r['n']} did not complete")
        else:
            fallback = r
            runs["fallback-n16"] = r
if fallback is None:
    sys.exit("FAIL: no fallback-gate record")

def cluster_point(mdir, wall_s):
    with open(os.path.join(mdir, "cluster.json")) as f:
        summary = json.load(f)
    tx = rx = 0.0
    snapshots = sorted(glob.glob(os.path.join(mdir, "metrics.*.json")))
    if not snapshots:
        sys.exit(f"FAIL: no metrics snapshots in {mdir}")
    for path in snapshots:
        with open(path) as f:
            doc = json.load(f)
        for g in doc.get("gauges", []):
            if g["name"] == "net.tx_syscalls":
                tx += g["value"]
            elif g["name"] == "net.rx_syscalls":
                rx += g["value"]
    deliveries = summary["deliveries"]
    if deliveries <= 0 or tx + rx <= 0:
        sys.exit(f"FAIL: empty cluster datapoint in {mdir}")
    summary.update(
        nodes=len(snapshots),
        wall_s=float(wall_s),
        tx_syscalls=int(tx),
        rx_syscalls=int(rx),
        # Group-wide kernel round-trips per totally-ordered delivery.
        syscalls_per_delivery=round((tx + rx) / deliveries, 1),
    )
    return summary

mmsg = cluster_point(mdir_mmsg, mmsg_wall)
sendto = cluster_point(mdir_sendto, sendto_wall)
runs["cluster-n7-mmsg"] = mmsg
runs["cluster-n7-sendto"] = sendto

syscall_reduction = round(
    sendto["syscalls_per_delivery"] / mmsg["syscalls_per_delivery"], 2)

threads = fallback["threads"]
if threads >= 4:
    basis, measured = "parallel_fallback", fallback["speedup"]
else:
    basis, measured = "syscall_batching", syscall_reduction
gate = {
    "required": 2.0,
    "basis": basis,
    "measured": measured,
    "parallel_fallback_speedup": fallback["speedup"],
    "threads": threads,
    "cluster_syscall_reduction": syscall_reduction,
    "pass": measured >= 2.0,
}

out = {
    "description": "Group-size scaling (n = 4..31): scale-nN rows are the "
                   "discrete-event simulator sweep (deliveries/sec in "
                   "virtual and wall clock, crypto work units per "
                   "delivery, datagrams per delivery); fallback-n16 times "
                   "the Byzantine-share verification fallback serial vs "
                   "WorkPool-parallel in one process; cluster-n7-mmsg / "
                   "cluster-n7-sendto are a real 7-process loopback "
                   "cluster with the batched-syscall transport on vs off, "
                   "compared by measured syscalls per delivery.  The gate "
                   "requires the optimized path to beat the pre-PR "
                   "baseline 2x in the same run (basis picked by core "
                   "count; see scripts/bench_scale.sh).",
    "runs": runs,
    "gate": gate,
}
with open(out_path, "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")

print(f"wrote {out_path}")
for name in sorted(k for k in runs if k.startswith("scale-")):
    r = runs[name]
    print(f"  {name}: virtual {r['virtual_del_per_sec']}/s, "
          f"wall {r['wall_del_per_sec']}/s, "
          f"{r['datagrams_per_delivery']} datagrams/delivery")
print(f"  fallback-n16: serial {fallback['serial_ms']}ms, parallel "
      f"{fallback['parallel_ms']}ms ({fallback['speedup']}x, "
      f"{threads} threads)")
print(f"  cluster-n7: {sendto['syscalls_per_delivery']} -> "
      f"{mmsg['syscalls_per_delivery']} syscalls/delivery "
      f"({syscall_reduction}x reduction)")
print(f"  gate[{basis}]: {measured}x (need >= 2.0)")
if not gate["pass"]:
    sys.exit(f"FAIL: scaling gate {measured}x is below the 2x acceptance bar")
PY
