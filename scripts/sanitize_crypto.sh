#!/usr/bin/env bash
# Builds the test suite with -DSINTRA_SANITIZE=address,undefined in a
# separate build tree and runs the bignum/crypto test cases under
# ASan+UBSan.  The fast-exponentiation layer (multi-exp windows, comb
# tables, scratch-buffer reuse) does manual limb-buffer arithmetic, so it
# gets a sanitizer pass on every change.
#
# Usage: scripts/sanitize_crypto.sh [build_dir]   (default: ./build-asan)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build-asan}"

cmake -S "$repo_root" -B "$build_dir" \
  -DCMAKE_BUILD_TYPE=Debug \
  -DSINTRA_SANITIZE=address,undefined
cmake --build "$build_dir" --target sintra_tests -j"$(nproc)"

# Test names are gtest suite names, not source-file names: this regex
# covers the bignum suites (BigInt/Montgomery/MultiExp/FixedBase/Karatsuba/
# Prime) and the crypto-layer suites built on them.
filter='BigInt|Montgomery|MultiExp|FixedBase|GroupCache|Karatsuba|Prime'
filter+='|Rsa|Shamir|Lagrange|DlogGroup|Dleq|Group|ThresholdSig|Coin|Tdh2'
filter+='|Dealer|Hash|Sha|Aes'

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"

ctest --test-dir "$build_dir" -R "$filter" --output-on-failure
