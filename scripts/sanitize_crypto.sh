#!/usr/bin/env bash
# Builds the test suite in a separate build tree with the sanitizer set
# chosen by $SINTRA_SANITIZE and runs the suites that benefit most:
#
#   SINTRA_SANITIZE=address,undefined (default)
#     ASan+UBSan over the bignum/crypto suites and the net subsystem.
#     The fast-exponentiation layer (multi-exp windows, comb tables,
#     scratch-buffer reuse) does manual limb-buffer arithmetic, and the
#     net layer (epoll loop, raw UDP buffers, frame parsing of
#     attacker-controlled datagrams) handles untrusted input.
#
#   SINTRA_SANITIZE=thread
#     TSan over the concurrency surface: the crypto worker pool (jthread
#     workers, MPSC completion queue, cross-thread notify hook) and the
#     net subsystem that drives it (event loop wakeups, the node binary's
#     off-loop verification), including the multi-process LocalCluster
#     tests whose node binaries are TSan-built too.
#
# Usage: scripts/sanitize_crypto.sh [build_dir]
#        (default: ./build-asan, or ./build-tsan in thread mode)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
sanitize="${SINTRA_SANITIZE:-address,undefined}"

if [[ "$sanitize" == "thread" ]]; then
  build_dir="${1:-$repo_root/build-tsan}"
  # Suites with real multi-threading: the worker pool itself, the epoll
  # event loop (cross-thread call_soon), the UDP transport, and the
  # 4-process loopback clusters that run node binaries with the pool on.
  filter='WorkPool|EventLoop|UdpSocket|NetEnvironment|SlidingWindow'
  filter+='|LocalCluster'
  export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"
else
  build_dir="${1:-$repo_root/build-asan}"
  # Test names are gtest suite names, not source-file names: this regex
  # covers the bignum suites (BigInt/Montgomery/MultiExp/FixedBase/
  # Karatsuba/Prime), the crypto-layer suites built on them (including
  # batch DLEQ verification, the optimistic combine-first paths, and the
  # worker pool), and the net subsystem (event loop, UDP transport,
  # sliding-window link, 4-process clusters).
  filter='BigInt|BignumDiff|KnuthD|Montgomery|MultiExp|FixedBase|GroupCache'
  filter+='|Karatsuba|Prime'
  filter+='|Rsa|Shamir|Lagrange|DlogGroup|Dleq|BatchDleq|Group'
  filter+='|ThresholdSig|Coin|Tdh2|Optimistic|WorkPool'
  filter+='|Dealer|Hash|Sha|Aes'
  filter+='|EventLoop|UdpSocket|NetEnvironment|SlidingWindow|LocalCluster'
  export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1}"
  export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
fi

cmake -S "$repo_root" -B "$build_dir" \
  -DCMAKE_BUILD_TYPE=Debug \
  -DSINTRA_SANITIZE="$sanitize"
cmake --build "$build_dir" --target sintra_tests -j"$(nproc)"
# The loopback-cluster tests exercise the node and proxy binaries under
# the sanitizers too.
cmake --build "$build_dir" \
  --target dealer_tool sintra_node udp_chaos_proxy client_swarm -j"$(nproc)"

# The clients scenario asserts every request in a 2000-client overdrive
# completes; under a 2-3x sanitizer slowdown that wall-clock capacity bar
# is unreachable on the same timeouts, so scale the swarm down — the
# memory-safety coverage (gateway, swarm, signing paths) is identical.
# On boxes with few cores the sanitizer slowdown compounds with the lack
# of parallelism (the 4 node processes, proxy and swarm share one core),
# so scale down further there.
if [[ "$(nproc)" -ge 4 ]]; then
  export SINTRA_SWARM_CLIENTS="${SINTRA_SWARM_CLIENTS:-400}"
else
  export SINTRA_SWARM_CLIENTS="${SINTRA_SWARM_CLIENTS:-100}"
fi

ctest --test-dir "$build_dir" -R "$filter" --output-on-failure
