#!/usr/bin/env bash
# Builds the test suite with -DSINTRA_SANITIZE=address,undefined in a
# separate build tree and runs the bignum/crypto test cases plus the
# net-subsystem suites under ASan+UBSan.  The fast-exponentiation layer
# (multi-exp windows, comb tables, scratch-buffer reuse) does manual
# limb-buffer arithmetic, and the net layer (epoll loop, raw UDP buffers,
# frame parsing of attacker-controlled datagrams) handles untrusted
# input, so both get a sanitizer pass on every change.
#
# Usage: scripts/sanitize_crypto.sh [build_dir]   (default: ./build-asan)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build-asan}"

cmake -S "$repo_root" -B "$build_dir" \
  -DCMAKE_BUILD_TYPE=Debug \
  -DSINTRA_SANITIZE=address,undefined
cmake --build "$build_dir" --target sintra_tests -j"$(nproc)"
# The loopback-cluster tests exercise the node and proxy binaries under
# the sanitizers too.
cmake --build "$build_dir" \
  --target dealer_tool sintra_node udp_chaos_proxy -j"$(nproc)"

# Test names are gtest suite names, not source-file names: this regex
# covers the bignum suites (BigInt/Montgomery/MultiExp/FixedBase/Karatsuba/
# Prime), the crypto-layer suites built on them, and the net subsystem
# (event loop, UDP transport, sliding-window link, 4-process clusters).
filter='BigInt|Montgomery|MultiExp|FixedBase|GroupCache|Karatsuba|Prime'
filter+='|Rsa|Shamir|Lagrange|DlogGroup|Dleq|Group|ThresholdSig|Coin|Tdh2'
filter+='|Dealer|Hash|Sha|Aes'
filter+='|EventLoop|UdpSocket|NetEnvironment|SlidingWindow|LocalCluster'

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"

ctest --test-dir "$build_dir" -R "$filter" --output-on-failure
