#!/usr/bin/env python3
"""Merge per-node sintra metrics snapshots into one cluster-level view.

Each sintra_node writes a JSON snapshot (schema "sintra.metrics.v1", see
docs/OBSERVABILITY.md) via --metrics-out.  This script merges any number
of those files and prints:

  1. a per-layer breakdown table: messages / bytes dispatched and handler
     latency quantiles per protocol layer (the "layer" label collapses
     per-instance pids, e.g. "cluster.atomic.r*.cb.*"), plus channel
     round durations where present — the cluster-level analogue of the
     paper's SS4.2 attribution of time to protocol layers;
  2. greppable "total <name> <value>" lines: every counter summed across
     nodes and label sets, and every gauge summed likewise (meaningful
     for monotonic gauges such as link.retransmissions; scripts assert
     against these lines).

Merging rules: counters with identical (name, labels) add; gauges
last-write-wins (label sets include the party, so distinct nodes never
collide); histograms add count, sum and each bucket.

Usage: aggregate_metrics.py node0.metrics.json [node1.metrics.json ...]

Only the Python standard library is used.
"""

import json
import sys
from collections import defaultdict

SCHEMA = "sintra.metrics.v1"


def labels_key(labels):
    """Labels serialize as a JSON object: {"layer": "...", "party": "0"}."""
    return tuple(sorted(labels.items()))


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != SCHEMA:
        raise SystemExit(f"{path}: unexpected schema {doc.get('schema')!r}")
    return doc


def merge(paths):
    counters = defaultdict(int)  # (name, labels) -> value
    gauges = {}  # (name, labels) -> value
    hists = {}  # (name, labels) -> {count, sum, buckets: {i: n}}
    for path in paths:
        doc = load(path)
        for c in doc.get("counters", []):
            counters[(c["name"], labels_key(c["labels"]))] += c["value"]
        for g in doc.get("gauges", []):
            gauges[(g["name"], labels_key(g["labels"]))] = g["value"]
        for h in doc.get("histograms", []):
            key = (h["name"], labels_key(h["labels"]))
            agg = hists.setdefault(
                key, {"count": 0, "sum": 0.0, "buckets": defaultdict(int)}
            )
            agg["count"] += h["count"]
            agg["sum"] += h["sum"]
            for b in h["buckets"]:
                agg["buckets"][b["bucket"]] += b["count"]
    return counters, gauges, hists


def bucket_upper(i):
    """Exclusive upper bound of log-bucket i (mirrors obs::Histogram)."""
    return (2.0**i) / 1000.0


def quantile(hist, q):
    """Upper bound of the bucket holding the q-quantile observation."""
    total = hist["count"]
    if total == 0:
        return 0.0
    target = q * total
    seen = 0
    for i in sorted(hist["buckets"]):
        seen += hist["buckets"][i]
        if seen >= target:
            return bucket_upper(i)
    return bucket_upper(max(hist["buckets"], default=0))


def by_layer(merged, name):
    """Sums metric `name` across nodes, grouped by the 'layer' label."""
    out = defaultdict(int)
    for (n, labels), value in merged.items():
        if n != name:
            continue
        layer = dict(labels).get("layer")
        if layer is not None:
            out[layer] += value
    return out


def hist_by_layer(hists, name):
    out = {}
    for (n, labels), h in hists.items():
        if n != name:
            continue
        layer = dict(labels).get("layer")
        if layer is None:
            continue
        agg = out.setdefault(
            layer, {"count": 0, "sum": 0.0, "buckets": defaultdict(int)}
        )
        agg["count"] += h["count"]
        agg["sum"] += h["sum"]
        for i, c in h["buckets"].items():
            agg["buckets"][i] += c
    return out


def fmt_ms(v):
    return f"{v:.3f}" if v < 100 else f"{v:.1f}"


def print_layer_table(counters, hists):
    messages = by_layer(counters, "dispatcher.messages")
    byte_totals = by_layer(counters, "dispatcher.bytes")
    handle = hist_by_layer(hists, "dispatcher.handle_ms")
    rounds = hist_by_layer(hists, "channel.round_ms")

    layers = sorted(set(messages) | set(byte_totals) | set(handle))
    if not layers:
        print("(no per-layer dispatcher metrics in the input files)")
        return
    header = (
        f"{'layer':<34} {'msgs':>8} {'bytes':>12} "
        f"{'handle p50':>11} {'handle p95':>11} {'round p50':>10}"
    )
    print(header)
    print("-" * len(header))
    for layer in layers:
        h = handle.get(layer, {"count": 0, "sum": 0.0, "buckets": {}})
        r = rounds.get(layer)
        round_p50 = fmt_ms(quantile(r, 0.5)) if r and r["count"] else "-"
        print(
            f"{layer:<34} {messages.get(layer, 0):>8} "
            f"{byte_totals.get(layer, 0):>12} "
            f"{fmt_ms(quantile(h, 0.5)):>11} {fmt_ms(quantile(h, 0.95)):>11} "
            f"{round_p50:>10}"
        )


def print_totals(counters, gauges):
    totals = defaultdict(float)
    for (name, _), value in counters.items():
        totals[name] += value
    for (name, _), value in gauges.items():
        totals[name] += value
    for name in sorted(totals):
        value = totals[name]
        rendered = str(int(value)) if value == int(value) else f"{value:.3f}"
        print(f"total {name} {rendered}")


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    counters, gauges, hists = merge(argv[1:])
    print(f"# merged {len(argv) - 1} snapshot(s)")
    print()
    print_layer_table(counters, hists)
    print()
    print_totals(counters, gauges)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
