#!/usr/bin/env bash
# Runs the crypto-substrate microbenchmarks and distills them into
# BENCH_crypto.json at the repo root: ns/op and Montgomery work units per
# operation for every benchmark, plus the before/after speedup ratios for
# the fast-exponentiation layer (seed op sequences vs shipped fast paths)
# and the wall-clock before/after for the 64-bit limb rework (the frozen
# 32-bit path, BM_ModexpRef32, runs in the same binary so the comparison
# is same-machine, same-flags; docs/CRYPTO.md explains both gates).
#
# Usage: scripts/bench_crypto.sh [build_dir]   (default: ./build)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

if [[ ! -d "$build_dir" ]]; then
  cmake -S "$repo_root" -B "$build_dir" -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$build_dir" --target crypto_micro -j"$(nproc)"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

"$build_dir/bench/crypto_micro" \
  --benchmark_format=json \
  --benchmark_min_time="${SINTRA_BENCH_MIN_TIME:-0.2}" \
  --benchmark_out="$raw" \
  --benchmark_out_format=json

python3 - "$raw" "$repo_root/BENCH_crypto.json" \
  "$repo_root/scripts/bench_baselines.json" <<'PY'
import json
import os
import platform
import sys

raw_path, out_path, baselines_path = sys.argv[1], sys.argv[2], sys.argv[3]
with open(raw_path) as f:
    raw = json.load(f)

benchmarks = {}
for b in raw.get("benchmarks", []):
    if b.get("run_type") == "aggregate":
        continue
    benchmarks[b["name"]] = {
        "ns_per_op": round(b["real_time"], 1),
        "work_units_per_op": round(b.get("work_per_op", 0.0)),
    }

def ratio(seed, fast):
    s, f = benchmarks.get(seed), benchmarks.get(fast)
    if not s or not f or not f["work_units_per_op"]:
        return None
    return round(s["work_units_per_op"] / f["work_units_per_op"], 2)

out = {
    "description": "Crypto microbenchmarks: wall-clock ns/op and Montgomery "
                   "work-counter units/op (the unit driving simulated time). "
                   "*Seed benchmarks replicate pre-fast-path op sequences; "
                   "*Fast benchmarks use the shipped multi-exp/comb paths.",
    "context": {
        "date": raw.get("context", {}).get("date"),
        "build_type": raw.get("context", {}).get("library_build_type"),
        "group": "dl_p=1024, dl_q=160, n=4, t=1, hash=sha1",
    },
    "benchmarks": benchmarks,
    "speedups_work_units": {
        "dleq_verify": ratio("BM_DleqVerifySeed", "BM_DleqVerifyFast"),
        "coin_share_verify": ratio("BM_CoinShareVerifySeed",
                                   "BM_CoinShareVerifyFast"),
        "dual_exp": ratio("BM_DualExpSeed", "BM_DualExpFast"),
        "fixed_base_exp": ratio("BM_SingleExp", "BM_SingleExpFixedBase"),
        # Eager per-share verification vs the combine-first fast paths
        # (fault-free trace; the acceptance bar for both is >= 2x).
        "threshold_combine": ratio("BM_ThresholdCombine_Eager/512",
                                   "BM_ThresholdCombine_Optimistic/512"),
        "threshold_combine_1024": ratio("BM_ThresholdCombine_Eager/1024",
                                        "BM_ThresholdCombine_Optimistic/1024"),
        "coin_assemble": ratio("BM_CoinAssemble_Eager",
                               "BM_CoinAssemble_Optimistic"),
    },
}

# --- 64-bit limb rework: wall-clock before/after (PR 8) ---
# "Before" is measured live: BM_ModexpRef32 runs the frozen 32-bit limb
# layer (src/bignum/ref32.hpp) in this same binary.  The PR 7 numbers
# recorded in the pre-rework BENCH_crypto.json are kept alongside for
# reference, but the gate uses the same-machine ref32 ratio so it does
# not depend on which box ran the PR 7 bench.
PR7_RECORDED_NS = {"BM_Modexp/1024": 2066479.3,
                   "BM_Tdh2DecryptShare": 2465605.1}

def wall_ns(name):
    b = benchmarks.get(name)
    return b["ns_per_op"] if b else None

# --- Recorded baselines (PR 9): scripts/bench_baselines.json holds the
# PR 8 wall-clock figures.  When the file is present, (a) its recorded
# BM_ModexpRef32/1024 stands in for the in-binary 32-bit layer once
# src/bignum/ref32 is deleted, and (b) on a matching machine every live
# figure must stay within regression_tolerance of its baseline.
baselines = None
if os.path.exists(baselines_path):
    with open(baselines_path) as f:
        baselines = json.load(f)

ref32_ns = wall_ns("BM_ModexpRef32/1024")
if ref32_ns is None and baselines:
    ref32_ns = baselines["wall_clock_ns"].get("BM_ModexpRef32/1024")
live_ns = wall_ns("BM_Modexp/1024")
tdh2_ns = wall_ns("BM_Tdh2DecryptShare")
out["limb_rework_wall_clock"] = {
    "modexp_1024_before_ref32_ns": ref32_ns,
    "modexp_1024_after_ns": live_ns,
    "modexp_1024_speedup": (round(ref32_ns / live_ns, 2)
                            if ref32_ns and live_ns else None),
    "tdh2_decrypt_share_after_ns": tdh2_ns,
    "tdh2_decrypt_share_speedup_vs_pr7": (
        round(PR7_RECORDED_NS["BM_Tdh2DecryptShare"] / tdh2_ns, 2)
        if tdh2_ns else None),
    "pr7_recorded_ns": PR7_RECORDED_NS,
}

with open(out_path, "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")

sp = out["speedups_work_units"]
print(f"wrote {out_path}")
print(f"  dleq_verify speedup (work units):       {sp['dleq_verify']}x")
print(f"  coin_share_verify speedup (work units): {sp['coin_share_verify']}x")
print(f"  threshold_combine speedup (work units): {sp['threshold_combine']}x")
print(f"  coin_assemble speedup (work units):     {sp['coin_assemble']}x")
for key in ("threshold_combine", "coin_assemble"):
    if sp[key] is None or sp[key] < 2.0:
        sys.exit(f"FAIL: {key} optimistic speedup {sp[key]}x is below the "
                 "2x acceptance bar")
wall = out["limb_rework_wall_clock"]["modexp_1024_speedup"]
print(f"  limb rework wall-clock speedup (modexp-1024, vs 32-bit "
      f"baseline): {wall}x")
if wall is None or wall < 2.0:
    sys.exit(f"FAIL: 64-bit limb rework wall-clock speedup {wall}x on "
             "1024-bit modexp is below the 2x acceptance bar")

# --- Recorded-baseline regression gate ---
if baselines:
    rec = baselines.get("recorded", {})
    same_machine = (rec.get("machine") == platform.machine()
                    and rec.get("cores") == os.cpu_count())
    tol = baselines.get("regression_tolerance", 1.5)
    worst = []
    for name, base_ns in baselines["wall_clock_ns"].items():
        cur = wall_ns(name)
        if cur is None:  # benchmark retired (e.g. ref32 deletion) — fine
            continue
        ratio = cur / base_ns
        if ratio > tol:
            worst.append(f"{name}: {cur:.0f}ns vs baseline {base_ns:.0f}ns "
                         f"({ratio:.2f}x > {tol}x)")
    if same_machine:
        if worst:
            sys.exit("FAIL: wall-clock regression vs "
                     "scripts/bench_baselines.json:\n  " + "\n  ".join(worst))
        print(f"  recorded-baseline gate: all tracked benchmarks within "
              f"{tol}x of the PR {rec.get('pr')} figures")
    else:
        print("  recorded-baseline gate: skipped (different machine: "
              f"{platform.machine()}/{os.cpu_count()} cores vs recorded "
              f"{rec.get('machine')}/{rec.get('cores')})")
        if worst:
            print("  note (informational): " + "; ".join(worst))
PY
