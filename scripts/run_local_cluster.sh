#!/usr/bin/env bash
# End-to-end loopback cluster: dealer keygen, n sintra_node processes
# (default n=4/t=1; --n raises the group size, t = ⌊(n-1)/3⌋) over real
# UDP sockets, total-order assertion on the delivered sequences.  Exits
# nonzero on divergence, node failure, or timeout.
#
# Usage:
#   scripts/run_local_cluster.sh [--scenario clean|crash|chaos|recover|clients]
#                                [--build-dir DIR] [--channel atomic|...]
#                                [--n N] [--send N] [--batch-count N]
#                                [--pipeline-depth W] [--bench-load MxB]
#                                [--swarm-clients C] [--swarm-chaos 0|1]
#                                [--no-mmsg] [--metrics-dir DIR]
#
# --batch-count / --pipeline-depth enable throughput mode (DESIGN.md
# §11) on every node; --bench-load MxB replaces --send with a sustained
# M-message load of B-byte payloads (scripts/bench_e2e.sh --full uses
# this for a wall-clock cluster datapoint).  --no-mmsg disables the
# sendmmsg/recvmmsg batched-syscall transport path on every node, and
# --metrics-dir exports the per-node metrics snapshots plus a small
# cluster summary before the workdir is cleaned (scripts/bench_scale.sh
# uses both for the syscalls-per-delivery comparison in
# BENCH_scale.json).
#
# Scenarios:
#   clean    all four nodes up, close protocol terminates the channel
#   crash    the last node is SIGKILLed mid-run; the rest must still agree
#   chaos    all traffic through udp_chaos_proxy (loss/dup/reorder); the
#            link layer must heal it, and retransmissions + adaptive-RTO
#            backoff must be visible in the link stats
#   recover  every node runs with a durable --state-dir; node 3 is
#            SIGKILLed mid-run and restarted with the same state dir —
#            it must replay its fsync'd log, catch up via a
#            threshold-signed checkpoint certificate, and finish with
#            the identical delivery sequence as the nodes that never
#            crashed (asserted below via the recovery.* metrics)
#   clients  every node serves a signed-request client lane (DESIGN.md
#            §12); a client_swarm of --swarm-clients concurrent
#            ReplicatedServiceClients drives requests through the chaos
#            proxy's client lanes (with loss/dup/reorder unless
#            --swarm-chaos 0).  Every request must complete with a t+1
#            reply quorum while admission control sheds the initial
#            burst (client.shed > 0), injected replays answer from the
#            reply caches (client.dedup_hits > 0), and forged frames
#            are dropped without replies (client.rejected_auth > 0).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
scenario=clean
build_dir="$repo_root/build"
channel=atomic
n=4
send_count=5
send_count_set=0
batch_count=""
pipeline_depth=""
bench_load=""
swarm_clients="${SINTRA_SWARM_CLIENTS:-2000}"
swarm_chaos=1
swarm_json=""
no_mmsg=0
metrics_dir=""

while [[ $# -gt 0 ]]; do
  case "$1" in
    --scenario)       scenario="$2"; shift 2 ;;
    --build-dir)      build_dir="$2"; shift 2 ;;
    --channel)        channel="$2"; shift 2 ;;
    --n)              n="$2"; shift 2 ;;
    --send)           send_count="$2"; send_count_set=1; shift 2 ;;
    --batch-count)    batch_count="$2"; shift 2 ;;
    --pipeline-depth) pipeline_depth="$2"; shift 2 ;;
    --bench-load)     bench_load="$2"; shift 2 ;;
    --swarm-clients)  swarm_clients="$2"; shift 2 ;;
    --swarm-chaos)    swarm_chaos="$2"; shift 2 ;;
    --swarm-json)     swarm_json="$2"; shift 2 ;;
    --no-mmsg)        no_mmsg=1; shift ;;
    --metrics-dir)    metrics_dir="$2"; shift 2 ;;
    *) echo "unknown option: $1" >&2; exit 2 ;;
  esac
done

if (( n < 4 )); then
  echo "need --n >= 4 (got $n)" >&2
  exit 2
fi
t=$(( (n - 1) / 3 ))
last=$(( n - 1 ))

# --bench-load MxB drives the same per-node send loop as --send M, so
# the ordering floor below keys off M.
if [[ -n "$bench_load" ]]; then
  send_count="${bench_load%%x*}"
  send_count_set=1
fi

# A recover run must SIGKILL the last node strictly *mid-run* (after its first
# durable delivery, before completion); more payloads widen that window.
if [[ "$scenario" == recover && $send_count_set -eq 0 ]]; then
  send_count=12
fi

# The client scenario only generates totally-ordered traffic via the
# swarm; the nodes themselves send nothing.
if [[ "$scenario" == clients ]]; then
  send_count=0
fi

dealer="$build_dir/examples/dealer_tool"
node_bin="$build_dir/examples/sintra_node"
proxy_bin="$build_dir/examples/udp_chaos_proxy"
swarm_bin="$build_dir/examples/client_swarm"
required_bins=("$dealer" "$node_bin" "$proxy_bin")
[[ "$scenario" == clients ]] && required_bins+=("$swarm_bin")
for bin in "${required_bins[@]}"; do
  [[ -x "$bin" ]] || { echo "missing binary: $bin (build first)" >&2; exit 2; }
done

workdir="$(mktemp -d)"
pids=()
proxy_pid=""
cleanup() {
  local p
  for p in "${pids[@]:-}" "$proxy_pid"; do
    [[ -n "$p" ]] && kill "$p" 2>/dev/null || true
  done
  sleep 0.2
  for p in "${pids[@]:-}" "$proxy_pid"; do
    [[ -n "$p" ]] && kill -9 "$p" 2>/dev/null || true
  done
  rm -rf "$workdir"
}
trap cleanup EXIT

port_base="${SINTRA_CLUSTER_PORT_BASE:-$(( 20000 + ($$ % 20000) ))}"
proxy_base=$(( port_base + 50 ))

# Small crypto parameters: this validates transport and agreement, not
# key-size performance (bench/ covers that).
conf="$workdir/group.conf"
{
  echo "n = $n"
  echo "t = $t"
  echo "rsa_bits = 512"
  echo "dl_p_bits = 256"
  echo "dl_q_bits = 96"
  echo "hash = sha256"
  echo "signatures = multi"
  echo "seed = 1"
  for i in $(seq 0 $((n - 1))); do
    echo "party.$i = 127.0.0.1:$(( port_base + i ))"
  done
} > "$conf"

echo "== dealing keys (workdir $workdir, ports from $port_base)"
"$dealer" "$conf" "$workdir/keys" > /dev/null

node_args=(--channel "$channel" --stats)
if [[ "$no_mmsg" == 1 ]]; then
  node_args+=(--no-mmsg)
fi
if [[ -n "$bench_load" ]]; then
  node_args+=(--bench-load "$bench_load")
else
  node_args+=(--send "$send_count")
fi
if [[ -n "$batch_count" ]]; then
  node_args+=(--batch-count "$batch_count")
fi
if [[ -n "$pipeline_depth" ]]; then
  node_args+=(--pipeline-depth "$pipeline_depth")
fi
# Observability: every node writes a metrics snapshot + an event trace;
# aggregate_metrics.py merges the snapshots into a per-layer breakdown
# and greppable totals (used below for the chaos assertions).
metrics_files=()
for i in $(seq 0 $((n - 1))); do
  metrics_files+=("$workdir/metrics.$i.json")
done
# Client scenario plumbing: nodes bind client lanes at client_base+i,
# the swarm reaches them through the proxy's client lanes at
# proxy_base+n+j (NAT by the advisory client id in the frame header).
client_base=$(( port_base + 100 ))
swarm_requests=1
expect_total=$(( swarm_clients * swarm_requests ))
if [[ "$scenario" == clients ]]; then
  echo "== dealing $swarm_clients client keys"
  "$swarm_bin" --keygen --keys "$workdir/clients.keys" \
    --clients "$swarm_clients" --key-seed 5 2> /dev/null
  # Global admission far below the swarm's arrival rate (the ramp
  # spreads C clients over 1.5s, so scale the budget with C), so the
  # initial burst provably sheds; shed clients back off and retry until
  # their request lands (at-most-once makes the retries idempotent).
  client_global_rate=$(( swarm_clients / 3 ))
  (( client_global_rate >= 10 )) || client_global_rate=10
  node_args+=(--client-keys "$workdir/clients.keys"
              --client-rate 1000 --client-global-rate "$client_global_rate"
              --client-pending 256)
  if [[ -z "$batch_count" ]]; then node_args+=(--batch-count 64); fi
  if [[ -z "$pipeline_depth" ]]; then node_args+=(--pipeline-depth 4); fi
fi

if [[ "$channel" == optimistic ]]; then
  node_args+=(--expect $(( n * send_count )))
elif [[ "$scenario" == clients ]]; then
  # No close protocol here: a node is done once every swarm request has
  # executed exactly once (forged frames never execute, replays dedup).
  node_args+=(--expect "$expect_total")
else
  node_args+=(--close)
fi

if [[ "$scenario" == chaos ]]; then
  "$proxy_bin" "$conf" "127.0.0.1:$proxy_base" \
    --loss 0.10 --dup 0.05 --reorder-ms 25 --seed 7 \
    2> "$workdir/proxy.stats" &
  proxy_pid=$!
  node_args+=(--via "127.0.0.1:$proxy_base")
elif [[ "$scenario" == clients ]]; then
  # Milder chaos than the replica-lane scenario: thousands of clients
  # with RTO retransmissions amplify loss, and this scenario's job is
  # the client layer, not the link layer.  --swarm-chaos 0 drops the
  # impairments entirely (bench_e2e's clean-LAN datapoint).
  proxy_chaos_args=(--loss 0.05 --dup 0.02 --reorder-ms 10)
  if [[ "$swarm_chaos" == 0 ]]; then
    proxy_chaos_args=(--loss 0 --dup 0 --reorder-ms 0)
  fi
  "$proxy_bin" "$conf" "127.0.0.1:$proxy_base" \
    "${proxy_chaos_args[@]}" --seed 7 --client-ports "$client_base" \
    2> "$workdir/proxy.stats" &
  proxy_pid=$!
  node_args+=(--via "127.0.0.1:$proxy_base")
fi
# --linger -1: a completed node keeps serving (link retransmissions AND
# protocol responses from its closed-but-live channel) until we signal
# it.  We signal only once every expected node has written its .done
# marker, so no node ever exits while a slower peer still needs it —
# the liveness gap a fixed linger cannot close under heavy loss.
node_args+=(--linger -1)

# Launching is a function so the recover scenario can restart node 3
# with the exact same argument list (same --state-dir, same outputs;
# stderr appends so both incarnations' stats survive).
launch_node() {
  local i="$1"
  local extra=()
  # Chaos doubles as the Byzantine-share scenario: the last node (within
  # the corruption budget t >= 1) emits garbage threshold-signature
  # shares, so every honest node's optimistic combine must fall back,
  # blacklist it, and finish with the honest quorum (asserted below via
  # crypto.fallbacks).
  if [[ "$scenario" == chaos && $i -eq $last ]]; then
    extra+=(--corrupt-shares)
  fi
  if [[ "$scenario" == recover ]]; then
    extra+=(--state-dir "$workdir/state.$i" --checkpoint-interval 4)
  fi
  if [[ "$scenario" == clients ]]; then
    extra+=(--client-port $(( client_base + i )))
  fi
  "$node_bin" "$conf" "$workdir/keys/party-$i.keys" "${node_args[@]}" \
    ${extra[@]+"${extra[@]}"} \
    --out "$workdir/out.$i" \
    --metrics-out "$workdir/metrics.$i.json" \
    --trace-out "$workdir/trace.$i.jsonl" 2>> "$workdir/stats.$i" &
  pids[$i]=$!
}

echo "== starting $n nodes (scenario: $scenario, channel: $channel)"
for i in $(seq 0 $((n - 1))); do
  : > "$workdir/stats.$i"
  launch_node "$i"
done

expected=($(seq 0 $last))
if [[ "$scenario" == crash ]]; then
  sleep 1
  echo "== crashing node $last (SIGKILL)"
  kill -9 "${pids[$last]}" 2>/dev/null || true
  expected=($(seq 0 $(( last - 1 ))))
fi

if [[ "$scenario" == recover ]]; then
  # Wait for the last node's first *durable* delivery — its replica log is
  # fsync'd per record, so a nonempty log file is the earliest point
  # where a SIGKILL leaves state worth recovering.  Killing at the first
  # record (of n * send_count total) guarantees the restart replays a
  # partial log and must use catch-up, not a persisted final cert.
  while ! compgen -G "$workdir/state.$last/*.log" > /dev/null \
        || [[ ! -s $(compgen -G "$workdir/state.$last/*.log" | head -1) ]]; do
    if ! kill -0 "${pids[$last]}" 2>/dev/null; then
      echo "FAIL: node $last died before its first durable delivery" >&2
      cat "$workdir/stats.$last" >&2 || true
      exit 1
    fi
    sleep 0.05
  done
  if [[ -e "$workdir/out.$last.done" ]]; then
    echo "FAIL: node $last completed before the crash point (raise --send)" >&2
    exit 1
  fi
  echo "== crashing node $last (SIGKILL) and restarting from $workdir/state.$last"
  kill -9 "${pids[$last]}" 2>/dev/null || true
  wait "${pids[$last]}" 2>/dev/null || true
  launch_node $last
fi

if [[ "$scenario" == clients ]]; then
  # Give the nodes a moment to bind their client lanes, then drive the
  # swarm in the foreground: its exit code is the per-request verdict
  # (0 iff every request got a t+1 kOk quorum, no rejections/timeouts).
  sleep 1
  swarm_targets=""
  for j in $(seq 0 $((n - 1))); do
    swarm_targets+="${swarm_targets:+,}127.0.0.1:$(( proxy_base + n + j ))"
  done
  echo "== driving $swarm_clients clients through the proxy client lanes"
  if ! "$swarm_bin" --keys "$workdir/clients.keys" \
      --targets "$swarm_targets" \
      --clients "$swarm_clients" --requests "$swarm_requests" \
      --ramp-ms 1500 --rto-ms 400 --max-attempts 40 \
      --replay 25 --forge 25 \
      --timeout-s "${SINTRA_SWARM_TIMEOUT:-240}" \
      --label "clients" --json-out "$workdir/swarm.json" \
      2> "$workdir/swarm.err"; then
    echo "FAIL: client swarm did not complete every request" >&2
    cat "$workdir/swarm.err" >&2 || true
    cat "$workdir/swarm.json" >&2 || true
    exit 1
  fi
  echo "== swarm summary: $(cat "$workdir/swarm.json")"
  # Export the load summary (scripts/bench_e2e.sh merges it into
  # BENCH_e2e.json) before the trap cleans the workdir.
  if [[ -n "$swarm_json" ]]; then
    cp "$workdir/swarm.json" "$swarm_json"
  fi
fi

# Everything is localhost; generous deadline for sanitizer builds.
deadline=$(( $(date +%s) + ${SINTRA_CLUSTER_TIMEOUT:-420} ))
for i in "${expected[@]}"; do
  while [[ ! -e "$workdir/out.$i.done" ]]; do
    if ! kill -0 "${pids[$i]}" 2>/dev/null; then
      echo "FAIL: node $i died before completing" >&2
      cat "$workdir/stats.$i" >&2 || true
      exit 1
    fi
    if (( $(date +%s) > deadline )); then
      echo "FAIL: timeout waiting for node $i" >&2
      # Autopsy: signal the nodes so they print their stats, then dump
      # per-node delivery counts and link counters.
      for j in "${expected[@]}"; do kill "${pids[$j]}" 2>/dev/null || true; done
      sleep 1
      for j in "${expected[@]}"; do
        echo "--- node $j: $(wc -l < "$workdir/out.$j" 2>/dev/null) deliveries" >&2
        cat "$workdir/stats.$j" >&2 || true
      done
      exit 1
    fi
    sleep 0.2
  done
done

# Everyone is done: release the group.  A completed node exits 0 on
# SIGTERM.
status=0
for i in "${expected[@]}"; do
  kill "${pids[$i]}" 2>/dev/null || true
done
for i in "${expected[@]}"; do
  wait "${pids[$i]}" || {
    echo "FAIL: node $i exited nonzero" >&2
    cat "$workdir/stats.$i" >&2 || true
    status=1
  }
done
[[ $status -eq 0 ]] || exit 1

# Total order: every pair of surviving nodes must have delivered the
# exact same sequence (the close round is agreed, so the sequences are
# identical, not merely prefix-related).
first="${expected[0]}"
lines=$(wc -l < "$workdir/out.$first")
floor=$send_count
if [[ "$scenario" == clients ]]; then
  # Exactly one execution per swarm request: duplicates from racing
  # proposers are skipped deterministically, forged frames never enter
  # the order, and the nodes send nothing of their own.
  floor=$expect_total
elif [[ "$scenario" != crash ]]; then
  # Conservative: the agreed close can clip the slowest senders' tail
  # payloads (and in recover, node 3's own sends die with it), so the
  # floor is well below the n * send_count ideal.
  floor=$(( 2 * send_count ))
fi
if (( lines < floor )); then
  echo "FAIL: only $lines deliveries at node $first (floor $floor)" >&2
  exit 1
fi
for i in "${expected[@]}"; do
  if ! cmp -s "$workdir/out.$first" "$workdir/out.$i"; then
    echo "FAIL: delivery sequences diverge between node $first and node $i" >&2
    diff "$workdir/out.$first" "$workdir/out.$i" | head -20 >&2 || true
    exit 1
  fi
done

sum_stat() {
  local key="$1" total=0 v
  for i in "${expected[@]}"; do
    while read -r v; do total=$(( total + v )); done \
      < <(grep -o "${key}=[0-9]*" "$workdir/stats.$i" | cut -d= -f2)
  done
  echo "$total"
}

retrans=$(sum_stat retrans)
backoffs=$(sum_stat backoffs)
samples=$(sum_stat rtt_samples)
echo "== link stats: retransmissions=$retrans backoffs=$backoffs rtt_samples=$samples"

# Merge the per-node metrics snapshots (crashed nodes leave no file).
aggregate=""
if command -v python3 > /dev/null 2>&1; then
  present=()
  for f in "${metrics_files[@]}"; do
    [[ -s "$f" ]] && present+=("$f")
  done
  if (( ${#present[@]} > 0 )); then
    echo "== per-layer metrics breakdown (${#present[@]} snapshots)"
    aggregate="$(python3 "$repo_root/scripts/aggregate_metrics.py" "${present[@]}")"
    echo "$aggregate"
  else
    echo "WARN: no metrics snapshots written" >&2
  fi
else
  echo "WARN: python3 not found; skipping metrics aggregation" >&2
fi

metric_total_in() {
  # Integer part of a "total <name> <value>" line from aggregate text $2.
  echo "$2" | awk -v name="$1" \
    '$1 == "total" && $2 == name { split($3, p, "."); print p[1]; found=1 }
     END { if (!found) print 0 }'
}
metric_total() { metric_total_in "$1" "$aggregate"; }

if [[ "$scenario" == chaos ]]; then
  if (( retrans == 0 || backoffs == 0 )); then
    echo "FAIL: chaos run showed no retransmissions/backoff (retrans=$retrans, backoffs=$backoffs)" >&2
    exit 1
  fi
  # The same facts must be visible through the public metrics path:
  # link.retransmissions (sampled gauges) and the link drop buckets
  # (the proxy's duplicates surface as link.drop_duplicate).
  if [[ -n "$aggregate" ]]; then
    m_retrans=$(metric_total link.retransmissions)
    m_drop_dup=$(metric_total link.drop_duplicate)
    echo "== metrics path: link.retransmissions=$m_retrans link.drop_duplicate=$m_drop_dup"
    if (( m_retrans == 0 || m_drop_dup == 0 )); then
      echo "FAIL: chaos counters not visible via metrics snapshots (retrans=$m_retrans, drop_duplicate=$m_drop_dup)" >&2
      exit 1
    fi
    # Node 3 corrupted its threshold-signature shares: the optimistic
    # combine-first paths must have fallen back to per-share verification
    # somewhere, and that must be visible through the metrics snapshots.
    m_fallbacks=$(metric_total crypto.fallbacks)
    m_hits=$(metric_total crypto.optimistic_hits)
    echo "== metrics path: crypto.optimistic_hits=$m_hits crypto.fallbacks=$m_fallbacks"
    if (( m_fallbacks == 0 )); then
      echo "FAIL: Byzantine shares from node 3 triggered no optimistic-combine fallback (crypto.fallbacks=0)" >&2
      exit 1
    fi
  fi
  if [[ -n "$proxy_pid" ]]; then
    kill "$proxy_pid" 2>/dev/null || true
    wait "$proxy_pid" 2>/dev/null || true
    grep STATS "$workdir/proxy.stats" || true
    proxy_pid=""
  fi
fi

if [[ "$scenario" == clients ]]; then
  if [[ -n "$aggregate" ]]; then
    m_admitted=$(metric_total client.admitted)
    m_shed=$(metric_total client.shed)
    m_dedup=$(metric_total client.dedup_hits)
    m_auth=$(metric_total client.rejected_auth)
    m_executed=$(metric_total client.executed)
    echo "== metrics path: client.admitted=$m_admitted client.shed=$m_shed client.dedup_hits=$m_dedup client.rejected_auth=$m_auth client.executed=$m_executed"
    if (( m_admitted == 0 )); then
      echo "FAIL: gateways admitted nothing" >&2
      exit 1
    fi
    if (( m_shed == 0 )); then
      # The swarm's arrival rate is far above --client-global-rate, so a
      # run with no shedding means admission control never engaged.
      echo "FAIL: overdriven gateways shed nothing (client.shed=0)" >&2
      exit 1
    fi
    if (( m_dedup == 0 )); then
      echo "FAIL: injected replays produced no dedup hits" >&2
      exit 1
    fi
    if (( m_auth == 0 )); then
      echo "FAIL: forged frames were not rejected (client.rejected_auth=0)" >&2
      exit 1
    fi
    # Every node executed the full request set exactly once.
    if (( m_executed != ${#expected[@]} * expect_total )); then
      echo "FAIL: client.executed=$m_executed, want $(( ${#expected[@]} * expect_total ))" >&2
      exit 1
    fi
  fi
  if [[ -n "$proxy_pid" ]]; then
    kill "$proxy_pid" 2>/dev/null || true
    wait "$proxy_pid" 2>/dev/null || true
    grep STATS "$workdir/proxy.stats" || true
    proxy_pid=""
  fi
fi

if [[ "$scenario" == recover && -n "$aggregate" ]]; then
  # Group-wide: the survivors must have assembled threshold-signed
  # checkpoint certificates, and somebody must have noticed node 3's
  # link-session epoch change (the three survivors adopt its new epoch;
  # node 3 itself counts stale-echo frames from the dead session).
  m_certs=$(metric_total recovery.checkpoint_certs)
  m_resets=$(metric_total recovery.epoch_resets)
  # Restarted-node-specific: its own snapshot (written by the restarted
  # incarnation on exit; the SIGKILLed one leaves no file) must show a
  # log replay and at least one catch-up request.
  if [[ ! -s "$workdir/metrics.$last.json" ]]; then
    echo "FAIL: restarted node $last wrote no metrics snapshot" >&2
    exit 1
  fi
  node3_aggregate="$(python3 "$repo_root/scripts/aggregate_metrics.py" \
                     "$workdir/metrics.$last.json")"
  m_requests=$(metric_total_in recovery.catchup_requests "$node3_aggregate")
  m_replayed=$(metric_total_in recovery.replayed_records "$node3_aggregate")
  echo "== metrics path: recovery.checkpoint_certs=$m_certs recovery.epoch_resets=$m_resets node$last:{catchup_requests=$m_requests replayed_records=$m_replayed}"
  if (( m_certs == 0 )); then
    echo "FAIL: recover run assembled no checkpoint certificates" >&2
    exit 1
  fi
  if (( m_resets == 0 )); then
    echo "FAIL: node 3's restart triggered no link epoch resets" >&2
    exit 1
  fi
  if (( m_requests == 0 )); then
    echo "FAIL: restarted node $last sent no catch-up requests" >&2
    exit 1
  fi
  if (( m_replayed == 0 )); then
    echo "FAIL: restarted node $last replayed nothing from its durable log" >&2
    exit 1
  fi
fi

if [[ -n "$metrics_dir" ]]; then
  mkdir -p "$metrics_dir"
  for f in "${metrics_files[@]}"; do
    [[ -s "$f" ]] && cp "$f" "$metrics_dir/"
  done
  printf '{"n":%d,"t":%d,"scenario":"%s","channel":"%s","deliveries":%d,"mmsg":%s}\n' \
    "$n" "$t" "$scenario" "$channel" "$lines" \
    "$([[ "$no_mmsg" == 1 ]] && echo false || echo true)" \
    > "$metrics_dir/cluster.json"
fi

echo "PASS: $scenario/$channel — ${#expected[@]} nodes, $lines totally-ordered deliveries each"
