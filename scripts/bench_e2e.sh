#!/usr/bin/env bash
# End-to-end deliveries/sec benchmark for the throughput-mode channels
# (DESIGN.md §11), distilled into BENCH_e2e.json at the repo root.
#
# Scenarios (virtual time on the discrete-event simulator, so runs are
# deterministic per seed and comparable across machines):
#   clean       LAN, seed configuration (batch=1, depth=1) vs batched+
#               pipelined (batch=16, depth=4) — gated: the batched run
#               must deliver >= 3x the seed's deliveries/sec.
#   chaos       same comparison under seeded cross-link reordering (the
#               in-simulator analog of the cluster runner's chaos proxy).
#   wan         the paper's Internet topology (Fig. 3 RTT matrix).
#   closed      closed-loop latency shape (p50/p99 per-request latency).
#   client_lan  real 4-process cluster serving a client_swarm over a
#               clean loopback LAN: external requests/sec plus client-
#               observed p50/p99 reply-quorum latency (DESIGN.md §12).
#
# Short mode (default, used by ctest) runs clean + chaos + wan + closed on
# the simulator plus a small client_lan cluster run.  Full mode (--full or
# SINTRA_BENCH_E2E_MODE=full) also drives a real 4-process cluster through
# the chaos proxy with --bench-load (wall-clock deliveries/sec via
# scripts/run_local_cluster.sh) and a 2000-client client_chaos run.
#
# Usage: scripts/bench_e2e.sh [--full] [build_dir]   (default: ./build)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
mode="${SINTRA_BENCH_E2E_MODE:-short}"
build_dir=""
for arg in "$@"; do
  case "$arg" in
    --full) mode="full" ;;
    *) build_dir="$arg" ;;
  esac
done
build_dir="${build_dir:-$repo_root/build}"

if [[ ! -d "$build_dir" ]]; then
  cmake -S "$repo_root" -B "$build_dir" -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$build_dir" --target e2e_throughput sintra_node dealer_tool \
  udp_chaos_proxy client_swarm -j"$(nproc)"

bench="$build_dir/bench/e2e_throughput"
raw="$(mktemp)"
swarm_json="$(mktemp)"
trap 'rm -f "$raw" "$swarm_json"' EXIT

# Real-cluster client-service datapoint: the swarm's JSON summary is
# relabeled and merged alongside the simulator runs.
run_clients() {  # run_clients <label> <clients> <chaos 0|1>
  local label="$1" clients="$2" chaos="$3"
  echo "# e2e: $label" >&2
  : > "$swarm_json"
  "$repo_root/scripts/run_local_cluster.sh" --scenario clients \
    --swarm-clients "$clients" --swarm-chaos "$chaos" \
    --swarm-json "$swarm_json" --build-dir "$build_dir" >&2
  python3 -c '
import json, sys
r = json.load(open(sys.argv[1]))
r["label"] = sys.argv[2]
print(json.dumps(r))' "$swarm_json" "$label" >>"$raw"
}

msgs="${SINTRA_BENCH_E2E_MSGS:-240}"

run() {  # run <label> <extra args...>
  local label="$1"; shift
  echo "# e2e: $label" >&2
  "$bench" --label "$label" --messages "$msgs" "$@" >>"$raw"
}

# The gated pair: identical workload, seed configuration vs throughput
# mode (batch >= 16, depth >= 4), clean LAN simulator.
run clean-seed    --batch-count 1  --pipeline-depth 1
run clean-batched --batch-count 16 --pipeline-depth 4
# Robustness scenarios.
run chaos-seed    --batch-count 1  --pipeline-depth 1 --chaos
run chaos-batched --batch-count 16 --pipeline-depth 4 --chaos
run wan-batched   --batch-count 16 --pipeline-depth 4 --topology wan
run closed-batched --batch-count 16 --pipeline-depth 4 --mode closed
run secure-batched --channel secure --batch-count 8 --pipeline-depth 2 \
  --messages 48
# External clients against a real cluster, clean LAN: small in short
# mode so ctest stays quick.
run_clients client_lan "${SINTRA_BENCH_E2E_CLIENTS:-400}" 0

if [[ "$mode" == "full" ]]; then
  run_clients client_chaos 2000 1
  run wan-seed --batch-count 1 --pipeline-depth 1 --topology wan
  run wan-deep --batch-count 32 --pipeline-depth 8 --topology wan
  # Real processes through the chaos proxy, sustained --bench-load; the
  # runner checks total order, we time deliveries at node 0.
  t0="$(date +%s.%N)"
  "$repo_root/scripts/run_local_cluster.sh" --scenario chaos \
    --batch-count 16 --pipeline-depth 4 --bench-load 400x128 >&2
  t1="$(date +%s.%N)"
  echo "{\"label\":\"cluster-chaos-batched\",\"wall_s\":$(awk "BEGIN{printf \"%.3f\", $t1-$t0}"),\"deliveries\":1600}" >>"$raw"
fi

python3 - "$raw" "$repo_root/BENCH_e2e.json" <<'PY'
import json
import sys

raw_path, out_path = sys.argv[1], sys.argv[2]
runs = {}
with open(raw_path) as f:
    for line in f:
        line = line.strip()
        if not line:
            continue
        r = json.loads(line)
        runs[r["label"]] = r

def dps(label):
    r = runs.get(label)
    return r.get("deliveries_per_sec") if r else None

def ratio(seed, fast):
    s, f = dps(seed), dps(fast)
    if not s or not f:
        return None
    return round(f / s, 2)

out = {
    "description": "End-to-end atomic-broadcast throughput (virtual time, "
                   "discrete-event simulator): deliveries/sec and p50/p99 "
                   "delivery latency at the measurement node P0. "
                   "*-seed runs use the seed configuration (batch=1, "
                   "depth=1); *-batched runs use proposer batching + "
                   "pipelined rounds (DESIGN.md §11). client_* runs drive "
                   "a real 4-process cluster with a client_swarm of "
                   "signed external requests (wall clock): requests/sec "
                   "and client-observed p50/p99 reply-quorum latency "
                   "(DESIGN.md §12).",
    "runs": runs,
    "speedups_deliveries_per_sec": {
        "clean": ratio("clean-seed", "clean-batched"),
        "chaos": ratio("chaos-seed", "chaos-batched"),
    },
}

with open(out_path, "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")

sp = out["speedups_deliveries_per_sec"]
print(f"wrote {out_path}")
print(f"  clean throughput speedup (batch=16,depth=4 vs seed): {sp['clean']}x")
print(f"  chaos throughput speedup (batch=16,depth=4 vs seed): {sp['chaos']}x")
for label, r in runs.items():
    if "deliveries_per_sec" in r and not r.get("completed", True):
        sys.exit(f"FAIL: scenario {label} did not complete")
if sp["clean"] is None or sp["clean"] < 3.0:
    sys.exit(f"FAIL: clean throughput speedup {sp['clean']}x is below the "
             "3x acceptance bar")
PY
