# Regenerates the paper's Figure 4 scatter from the harness's raw series:
#
#   ./build/bench/fig4_lan_scatter 1000 --points | grep -v '^[^ 0-9]' > fig4.dat
#   gnuplot -e "datafile='fig4.dat'" scripts/plot_fig4.gp
#
# Produces fig4.png: delivery time per message for AtomicChannel on the
# LAN, one point per delivery, keyed by sender — compare with the paper's
# two bands (0 s and 0.5-1 s) and the per-sender tail structure.
if (!exists("datafile")) datafile = "fig4.dat"
set terminal pngcairo size 900,600
set output "fig4.png"
set title "Delivery time per message, AtomicChannel on a LAN (reproduction)"
set xlabel "Delivery Number"
set ylabel "sec/delivery"
set yrange [0:2]
set key top right title "Senders:"
plot datafile using 1:(strcol(3) eq "P0" ? $2 : 1/0) title "Linux P0" pt 7 ps 0.5, \
     datafile using 1:(strcol(3) eq "P2" ? $2 : 1/0) title "AIX P2" pt 5 ps 0.5, \
     datafile using 1:(strcol(3) eq "P3" ? $2 : 1/0) title "Win 2k P3" pt 9 ps 0.5
