// Protocol-layer cost breakdown for one atomic-broadcast workload.
//
// The paper's §4.2 concludes that "protocol overhead and network delays,
// but not cryptographic operations, account for most of the time"; this
// harness makes the network half of that attribution precise by tracing
// every frame and attributing it to its protocol layer: the channel's
// signed-message exchange, the MVBA's consistent broadcasts, its votes,
// the embedded binary agreements, and the coin.
#include <cstdio>
#include <cstdlib>

#include "bench/common.hpp"
#include "sim/trace.hpp"

using namespace sintra;
using namespace sintra::bench;

namespace {

// Classifies an instance pid into its protocol layer.
std::string layer_of(const std::string& pid) {
  // pids look like: bench (channel), bench.rN (MVBA votes),
  // bench.rN.cb.J (proposals via consistent broadcast),
  // bench.rN.vba.K (binary agreement incl. coin shares).
  if (pid.find(".vba.") != std::string::npos) return "binary agreement";
  if (pid.find(".cb.") != std::string::npos) return "consistent bcast";
  if (pid.find(".r") != std::string::npos) return "MVBA votes";
  return "channel (signed msgs)";
}

}  // namespace

int main(int argc, char** argv) {
  const int messages = argc > 1 ? std::atoi(argv[1]) : 50;
  const crypto::Deal deal = crypto::run_dealer(paper_dealer_config(4, 1));

  std::printf("Layer breakdown: AtomicChannel on the Internet setup, one "
              "sender, %d messages\n\n", messages);

  sim::Simulator sim(sim::internet_setup(), deal, 1);
  sim.per_message_cpu_ms = default_overhead_ms();
  sim::MessageTrace trace;
  sim.trace = &trace;

  std::vector<std::unique_ptr<core::AtomicChannel>> chans;
  for (int i = 0; i < 4; ++i) {
    chans.push_back(std::make_unique<core::AtomicChannel>(
        sim.node(i), sim.node(i).dispatcher(), "bench"));
  }
  for (int m = 0; m < messages; ++m) {
    sim.at(0.0, 0, [&, m] {
      chans[0]->send(to_bytes("m" + std::to_string(m)));
    });
  }
  if (!sim.run_until(
          [&] {
            return chans[0]->deliveries().size() >=
                   static_cast<std::size_t>(messages);
          },
          1e9)) {
    std::printf("workload did not complete\n");
    return 1;
  }

  const auto totals = trace.by_class(layer_of);
  std::uint64_t all_msgs = 0, all_bytes = 0;
  for (const auto& [layer, t] : totals) {
    all_msgs += t.messages;
    all_bytes += t.bytes;
  }
  std::printf("%-22s %10s %8s %12s %8s\n", "layer", "messages", "%msgs",
              "bytes", "%bytes");
  for (const auto& [layer, t] : totals) {
    std::printf("%-22s %10llu %7.1f%% %12llu %7.1f%%\n", layer.c_str(),
                static_cast<unsigned long long>(t.messages),
                100.0 * static_cast<double>(t.messages) / all_msgs,
                static_cast<unsigned long long>(t.bytes),
                100.0 * static_cast<double>(t.bytes) / all_bytes);
  }
  std::printf("%-22s %10llu %8s %12llu\n", "total",
              static_cast<unsigned long long>(all_msgs), "",
              static_cast<unsigned long long>(all_bytes));
  std::printf("\nper delivered message: %.1f network messages, %.0f bytes\n",
              static_cast<double>(all_msgs) / messages,
              static_cast<double>(all_bytes) / messages);
  std::printf("the binary-agreement layer dominates message count — the "
              "\"expensive protocols based on Byzantine agreement\" of "
              "§1, and the motivation for the optimistic fast path "
              "(ext_optimistic).\n");
  return 0;
}
