// Figure 6 reproduction: "Average delivery time versus size of the public
// keys with standard threshold-signatures (ts) and multi-signatures
// (multi)" — the AtomicChannel workload with one sender, on the LAN and
// Internet setups, sweeping the RSA key size over 128..1024 bits.
//
// Paper findings to reproduce in shape:
//   - with multi-signatures the key length has *no significant influence*
//     (CRT signing keeps even 1024-bit signatures cheap relative to
//     protocol+network overhead);
//   - with proper threshold signatures the key size matters above
//     256 bits: LAN delivery time grows by ~4x from 512 to 1024 bits,
//     on the Internet by < 2x per doubling (network hides computation).
#include <cstdio>
#include <cstdlib>

#include "bench/common.hpp"

using namespace sintra;
using namespace sintra::bench;

int main(int argc, char** argv) {
  const int messages = argc > 1 ? std::atoi(argv[1]) : 100;
  const int key_sizes[] = {128, 256, 512, 1024};

  std::printf("Figure 6: average delivery time (s) vs public-key size, "
              "AtomicChannel, one sender, %d messages\n\n", messages);
  std::printf("%8s %14s %14s %14s %14s\n", "keysize", "LAN ts", "LAN multi",
              "Internet ts", "Internet multi");

  double lan_ts[4] = {0};
  for (int k = 0; k < 4; ++k) {
    const int bits = key_sizes[k];
    double cells[4];
    int cell = 0;
    for (const auto impl :
         {crypto::SigImpl::kThresholdRsa, crypto::SigImpl::kMultiSig}) {
      const crypto::Deal deal =
          crypto::run_dealer(paper_dealer_config(4, 1, bits, impl));
      for (const auto* topo_name : {"LAN", "Internet"}) {
        WorkloadOptions opt;
        opt.kind = ChannelKind::kAtomic;
        opt.senders = {0};
        opt.total_messages = messages;
        const sim::Topology topo = std::string(topo_name) == "LAN"
                                       ? sim::lan_setup()
                                       : sim::internet_setup();
        const WorkloadResult res = run_workload(topo, deal, opt);
        cells[cell++] = res.completed ? res.mean_interdelivery_s() : -1;
      }
    }
    // cells: [ts LAN, ts Internet, multi LAN, multi Internet]
    lan_ts[k] = cells[0];
    std::printf("%8d %14.2f %14.2f %14.2f %14.2f\n", bits, cells[0], cells[2],
                cells[1], cells[3]);
    std::fflush(stdout);
  }

  std::printf("\npaper reference points: at 1024 bits the LAN ts curve "
              "reaches ~8-10 s while LAN multi stays ~0.7 s;\n"
              "multi curves are flat in the key size; ts grows visibly only "
              "above 256 bits.\n");
  if (lan_ts[2] > 0 && lan_ts[3] > 0) {
    std::printf("measured LAN ts growth 512->1024 bits: %.1fx (paper: "
                "almost 4x)\n", lan_ts[3] / lan_ts[2]);
  }
  return 0;
}
