// Shared harness for the paper-reproduction benchmarks (§4).
//
// Workload shape follows the paper exactly: "The test program opens a
// channel to broadcast messages and has one or more servers send short
// payload messages (< 32 bytes) to the group at maximum capacity.  Then
// the elapsed time between successive delivery of two messages is
// measured on a recipient."  Senders' queues are pre-filled at t = 0
// (maximum capacity); the measurement node is P0 (Zurich), as in §4.
#pragma once

#include <cstdlib>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "core/channel/atomic_channel.hpp"
#include "core/channel/broadcast_channel.hpp"
#include "core/channel/secure_atomic_channel.hpp"
#include "sim/simulator.hpp"

namespace sintra::bench {

enum class ChannelKind { kAtomic, kSecure, kReliable, kConsistent };

inline const char* channel_name(ChannelKind k) {
  switch (k) {
    case ChannelKind::kAtomic: return "atomic";
    case ChannelKind::kSecure: return "secure";
    case ChannelKind::kReliable: return "reliable";
    case ChannelKind::kConsistent: return "consistent";
  }
  return "?";
}

/// One delivery observed at the measurement node.
struct DeliveryRecord {
  double time_ms = 0;
  int origin = -1;           // -1 when the channel does not expose it
  int mvba_iterations = 1;   // atomic channel only
};

struct WorkloadResult {
  std::vector<DeliveryRecord> deliveries;  // at the measurement node, in order
  double total_virtual_ms = 0;
  bool completed = false;

  /// Mean time between successive deliveries, in (virtual) seconds —
  /// the quantity of Table 1 and Figure 6.
  [[nodiscard]] double mean_interdelivery_s() const {
    if (deliveries.size() < 2) return 0;
    return (deliveries.back().time_ms - deliveries.front().time_ms) /
           (static_cast<double>(deliveries.size() - 1) * 1000.0);
  }
};

/// Paper-faithful dealer configuration: SHA-1, 1024/160-bit discrete-log
/// group; RSA modulus size and signature implementation vary per
/// experiment.
inline crypto::DealerConfig paper_dealer_config(
    int n, int t, int rsa_bits = 1024,
    crypto::SigImpl impl = crypto::SigImpl::kMultiSig) {
  crypto::DealerConfig cfg;
  cfg.n = n;
  cfg.t = t;
  cfg.rsa_bits = rsa_bits;
  cfg.dl_p_bits = 1024;
  cfg.dl_q_bits = 160;
  cfg.hash = crypto::HashKind::kSha1;
  cfg.sig_impl = impl;
  return cfg;
}

inline double default_overhead_ms() {
  if (const char* env = std::getenv("SINTRA_BENCH_OVERHEAD_MS")) {
    return std::atof(env);
  }
  return 12.0;
}

struct WorkloadOptions {
  ChannelKind kind = ChannelKind::kAtomic;
  std::vector<int> senders = {0};
  int total_messages = 500;
  int measure_node = 0;
  core::AtomicChannel::Config atomic_config = {};
  std::uint64_t seed = 1;
  double deadline_virtual_ms = 1e9;
  /// Fixed per-message protocol-stack overhead charged by the simulator —
  /// the non-crypto share of the paper's "protocol overhead".  Calibrated
  /// once against Table 1's LAN consistent-channel row (see
  /// EXPERIMENTS.md); overridable via SINTRA_BENCH_OVERHEAD_MS.
  double per_message_cpu_ms = default_overhead_ms();
};

/// Runs the paper's workload on a fresh simulator and returns the
/// measurement node's delivery log.
inline WorkloadResult run_workload(const sim::Topology& topology,
                                   const crypto::Deal& deal,
                                   const WorkloadOptions& opt) {
  sim::Simulator sim(topology, deal, opt.seed);
  sim.per_message_cpu_ms = opt.per_message_cpu_ms;
  const int n = sim.n();

  WorkloadResult result;

  // Build one channel instance per party, all kinds sharing this shape.
  std::vector<std::unique_ptr<core::AtomicChannel>> atomic;
  std::vector<std::unique_ptr<core::SecureAtomicChannel>> secure;
  std::vector<std::unique_ptr<core::ReliableChannel>> reliable;
  std::vector<std::unique_ptr<core::ConsistentChannel>> consistent;

  std::size_t delivered_at_measure = 0;
  auto record = [&](double time_ms, int origin, int iterations) {
    result.deliveries.push_back(DeliveryRecord{time_ms, origin, iterations});
    ++delivered_at_measure;
  };

  for (int i = 0; i < n; ++i) {
    auto& env = sim.node(i);
    auto& disp = sim.node(i).dispatcher();
    switch (opt.kind) {
      case ChannelKind::kAtomic: {
        auto ch = std::make_unique<core::AtomicChannel>(env, disp, "bench",
                                                        opt.atomic_config);
        if (i == opt.measure_node) {
          auto* raw = ch.get();
          ch->set_deliver_callback([&, raw](const Bytes&, core::PartyId o) {
            record(raw->deliveries().back().time_ms, o,
                   raw->deliveries().back().mvba_iterations);
          });
        }
        atomic.push_back(std::move(ch));
        break;
      }
      case ChannelKind::kSecure: {
        auto ch = std::make_unique<core::SecureAtomicChannel>(
            env, disp, "bench", opt.atomic_config);
        if (i == opt.measure_node) {
          auto* raw = ch.get();
          ch->set_deliver_callback([&, raw](const Bytes&) {
            record(raw->deliveries().back().time_ms, -1, 1);
          });
        }
        secure.push_back(std::move(ch));
        break;
      }
      case ChannelKind::kReliable: {
        auto ch =
            std::make_unique<core::ReliableChannel>(env, disp, "bench");
        if (i == opt.measure_node) {
          ch->set_deliver_callback([&](const Bytes&, core::PartyId o) {
            record(sim.now_ms(), o, 1);
          });
        }
        reliable.push_back(std::move(ch));
        break;
      }
      case ChannelKind::kConsistent: {
        auto ch =
            std::make_unique<core::ConsistentChannel>(env, disp, "bench");
        if (i == opt.measure_node) {
          ch->set_deliver_callback([&](const Bytes&, core::PartyId o) {
            record(sim.now_ms(), o, 1);
          });
        }
        consistent.push_back(std::move(ch));
        break;
      }
    }
  }

  // Pre-fill sender queues at t = 0 ("maximum capacity"), round-robin so
  // each sender gets total/|senders| messages.  Payloads stay < 32 bytes.
  for (int m = 0; m < opt.total_messages; ++m) {
    const int sender =
        opt.senders[static_cast<std::size_t>(m) % opt.senders.size()];
    const std::string payload =
        "m" + std::to_string(m) + ".s" + std::to_string(sender);
    sim.at(0.0, sender, [&, sender, payload] {
      switch (opt.kind) {
        case ChannelKind::kAtomic:
          atomic[static_cast<std::size_t>(sender)]->send(to_bytes(payload));
          break;
        case ChannelKind::kSecure:
          secure[static_cast<std::size_t>(sender)]->send(to_bytes(payload));
          break;
        case ChannelKind::kReliable:
          reliable[static_cast<std::size_t>(sender)]->send(to_bytes(payload));
          break;
        case ChannelKind::kConsistent:
          consistent[static_cast<std::size_t>(sender)]->send(
              to_bytes(payload));
          break;
      }
    });
  }

  result.completed = sim.run_until(
      [&] {
        return delivered_at_measure >=
               static_cast<std::size_t>(opt.total_messages);
      },
      opt.deadline_virtual_ms);
  result.total_virtual_ms = sim.now_ms();
  return result;
}

}  // namespace sintra::bench
