// Ablation D2 (DESIGN.md): multi-valued agreement candidate order —
// fixed vs. locally-randomized permutation (paper §2.4 implements both;
// the experiments ran the randomized order "for load balancing").
//
// On the WAN, the randomized order is what produces Figure 5's second
// band: with probability ~the fraction of slow candidates, the first
// examined proposal is one the fast parties lack, costing one extra
// biased binary agreement.  Fixed order always examines P0 (the Zurich
// sender) first, concentrating both load and luck on one party.
#include <cstdio>
#include <cstdlib>

#include "bench/common.hpp"

using namespace sintra;
using namespace sintra::bench;

int main(int argc, char** argv) {
  const int messages = argc > 1 ? std::atoi(argv[1]) : 150;
  const crypto::Deal deal = crypto::run_dealer(paper_dealer_config(4, 1));

  std::printf("Ablation D2: MVBA candidate order, AtomicChannel on the "
              "Internet setup, 3 senders, %d messages\n\n", messages);
  std::printf("%-14s %16s %22s\n", "order", "s/delivery",
              "extra-agreement rounds");

  for (const auto& [name, order] :
       {std::pair{"fixed", core::ArrayAgreement::CandidateOrder::kFixed},
        std::pair{"random-local",
                  core::ArrayAgreement::CandidateOrder::kRandomLocal}}) {
    WorkloadOptions opt;
    opt.kind = ChannelKind::kAtomic;
    opt.senders = {0, 1, 2};
    opt.total_messages = messages;
    opt.atomic_config.order = order;
    const WorkloadResult res = run_workload(sim::internet_setup(), deal, opt);
    int extra = 0;
    for (const auto& d : res.deliveries) {
      if (d.mvba_iterations > 1) ++extra;
    }
    std::printf("%-14s %16.2f %18d/%d\n", name,
                res.completed ? res.mean_interdelivery_s() : -1.0, extra,
                messages);
    std::fflush(stdout);
  }
  std::printf("\nexpected: comparable mean latency; the paper chose the "
              "randomized order for load balancing, accepting the extra-"
              "agreement band it creates.\n");
  return 0;
}
