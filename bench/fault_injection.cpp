// Fault-injection ablation (A3): how the atomic channel's latency
// responds to failures the paper's model tolerates but its experiments
// did not exercise — a crashed replica, and a Byzantine replica flooding
// garbage.  The asynchronous design's prediction: a crash should not
// hurt (quorums of n−t never waited for the slowest anyway; on the LAN
// it can even help by removing a slow signer), and garbage should cost
// only verification time.
#include <cstdio>
#include <cstdlib>

#include "bench/common.hpp"
#include "sim/adversary.hpp"

using namespace sintra;
using namespace sintra::bench;

namespace {

double run_case(const sim::Topology& topo, const crypto::Deal& deal,
                int messages, int crash, bool flood) {
  sim::Simulator sim(topo, deal, 1);
  sim.per_message_cpu_ms = default_overhead_ms();
  std::vector<std::unique_ptr<core::AtomicChannel>> chans;
  for (int i = 0; i < sim.n(); ++i) {
    chans.push_back(std::make_unique<core::AtomicChannel>(
        sim.node(i), sim.node(i).dispatcher(), "fault"));
  }
  sim::Adversary adv(sim, deal);
  if (crash >= 0) adv.crash(crash);
  if (flood) {
    adv.corrupt(sim.n() - 1);
    Rng junk(99);
    for (int burst = 0; burst < 50; ++burst) {
      Writer w;
      w.u8(1);
      w.u32(static_cast<std::uint32_t>(burst / 4 + 1));
      w.raw(junk.bytes(200));
      adv.send_as_all(sim.n() - 1, "fault", w.data(), burst * 50.0);
    }
  }
  for (int m = 0; m < messages; ++m) {
    sim.at(0.0, 0, [&, m] {
      chans[0]->send(to_bytes("m" + std::to_string(m)));
    });
  }
  const bool ok = sim.run_until(
      [&] {
        return chans[0]->deliveries().size() >=
               static_cast<std::size_t>(messages);
      },
      1e9);
  if (!ok) return -1;
  const auto& ds = chans[0]->deliveries();
  return (ds.back().time_ms - ds.front().time_ms) /
         ((static_cast<double>(ds.size()) - 1) * 1000.0);
}

}  // namespace

int main(int argc, char** argv) {
  const int messages = argc > 1 ? std::atoi(argv[1]) : 60;
  const crypto::Deal deal = crypto::run_dealer(paper_dealer_config(4, 1));

  std::printf("Fault injection (A3): AtomicChannel s/delivery, one sender, "
              "%d messages\n\n", messages);
  std::printf("%-10s %16s %16s %18s\n", "setup", "fault-free",
              "1 crashed", "1 Byzantine flood");
  for (const auto& [name, topo] :
       {std::pair{"LAN", sim::lan_setup()},
        std::pair{"Internet", sim::internet_setup()}}) {
    const double clean = run_case(topo, deal, messages, -1, false);
    const double crash = run_case(topo, deal, messages, 3, false);
    const double flood = run_case(topo, deal, messages, -1, true);
    std::printf("%-10s %16.2f %16.2f %18.2f\n", name, clean, crash, flood);
    std::fflush(stdout);
  }
  std::printf("\nexpected: crash of the slowest replica does not increase "
              "latency (may decrease it on the LAN); flooding costs only "
              "signature-verification time.\n");
  return 0;
}
