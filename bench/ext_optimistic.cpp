// Extension benchmark (paper §6, future work): optimistic atomic
// broadcast vs. the randomized-agreement atomic channel.
//
// The paper predicts the optimistic protocol "will reduce the cost of
// atomic broadcast essentially to a single reliable broadcast per
// delivered message" — i.e. Table 1's atomic column should collapse
// toward its reliable/consistent columns when the sequencer is honest
// and timely.  This harness measures both channels on the same workload
// and also quantifies the price of one pessimistic switch.
#include <cstdio>
#include <cstdlib>

#include "bench/common.hpp"
#include "core/channel/optimistic_channel.hpp"

using namespace sintra;
using namespace sintra::bench;

namespace {

struct OptResult {
  double s_per_delivery;
  std::uint64_t messages;
  bool completed;
};

OptResult run_optimistic(const sim::Topology& topo, const crypto::Deal& deal,
                         int messages, bool force_switch) {
  sim::Simulator sim(topo, deal, 1);
  sim.per_message_cpu_ms = default_overhead_ms();
  std::vector<std::unique_ptr<core::OptimisticChannel>> chans;
  for (int i = 0; i < sim.n(); ++i) {
    chans.push_back(std::make_unique<core::OptimisticChannel>(
        sim.node(i), sim.node(i).dispatcher(), "opt"));
  }
  for (int m = 0; m < messages; ++m) {
    sim.at(0.0, 0, [&, m] {
      chans[0]->send(to_bytes("m" + std::to_string(m)));
    });
  }
  if (force_switch) {
    // Suspicion mid-run (e.g. a spurious timeout): measures switch cost.
    for (int i = 0; i < sim.n(); ++i) {
      sim.at(1000.0, i, [&, i] { chans[static_cast<std::size_t>(i)]->suspect(); });
    }
  }
  const bool ok = sim.run_until(
      [&] {
        return chans[0]->deliveries().size() >=
               static_cast<std::size_t>(messages);
      },
      1e9);
  OptResult out;
  out.completed = ok;
  out.messages = sim.messages_sent();
  const auto& ds = chans[0]->deliveries();
  out.s_per_delivery =
      ds.size() > 1 ? (ds.back().time_ms - ds.front().time_ms) /
                          ((ds.size() - 1) * 1000.0)
                    : 0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int messages = argc > 1 ? std::atoi(argv[1]) : 100;
  const crypto::Deal deal = crypto::run_dealer(paper_dealer_config(4, 1));

  std::printf("Extension: optimistic atomic broadcast vs. randomized "
              "atomic channel (one sender, %d messages)\n\n", messages);
  std::printf("%-10s %-26s %14s %14s\n", "setup", "protocol", "s/delivery",
              "net msgs");

  for (const auto& [name, topo] :
       {std::pair{"LAN", sim::lan_setup()},
        std::pair{"Internet", sim::internet_setup()}}) {
    // Baseline: the paper's atomic channel.
    WorkloadOptions opt;
    opt.kind = ChannelKind::kAtomic;
    opt.senders = {0};
    opt.total_messages = messages;
    sim::Simulator probe(topo, deal, 1);  // for message counting parity
    const WorkloadResult base = run_workload(topo, deal, opt);
    std::printf("%-10s %-26s %14.2f %14s\n", name, "atomic (randomized)",
                base.completed ? base.mean_interdelivery_s() : -1.0, "-");

    const OptResult fast = run_optimistic(topo, deal, messages, false);
    std::printf("%-10s %-26s %14.2f %14llu\n", name, "optimistic (fast path)",
                fast.completed ? fast.s_per_delivery : -1.0,
                static_cast<unsigned long long>(fast.messages));

    const OptResult switched = run_optimistic(topo, deal, messages, true);
    std::printf("%-10s %-26s %14.2f %14llu\n", name,
                "optimistic (1 switch)",
                switched.completed ? switched.s_per_delivery : -1.0,
                static_cast<unsigned long long>(switched.messages));
    std::fflush(stdout);
  }

  std::printf("\nexpected: the fast path approaches the cheap channels of "
              "Table 1 (one verifiable broadcast + one ack round per "
              "message); a switch costs one MVBA, amortized over the "
              "run.\n");
  return 0;
}
