// Group-size scaling benchmark (BENCH_scale.json; DESIGN.md §14).
//
// Two modes, both printing one JSON object on stdout:
//
//   --sweep --n N      Runs the paper's §4 workload on the discrete-event
//                      simulator at group size N (t = ⌊(N-1)/3⌋) and
//                      reports deliveries/sec in virtual AND wall-clock
//                      time, crypto work units per delivery, and the
//                      datagrams-per-delivery figure that bounds what an
//                      unbatched transport pays in syscalls (2 kernel
//                      round-trips per datagram: one sendto, one
//                      recvfrom).  The measured mmsg syscall figure comes
//                      from the real-cluster datapoint in
//                      scripts/bench_scale.sh, via the net.tx_syscalls /
//                      net.rx_syscalls gauges.
//
//   --fallback-gate    The CI gate for this PR's crypto-layer tentpole:
//                      at n=16 (k = n - t = 11, Shoup threshold RSA), one
//                      Byzantine share forces the per-share verification
//                      fallback, and the SAME workload is timed twice in
//                      one process — serial (pool = nullptr, the pre-PR
//                      path) and parallel (WorkPool::run_parallel across
//                      hardware threads).  The blacklist and returned
//                      signature are identical either way (see
//                      threshold_sig.hpp), so the ratio isolates
//                      wall-clock; scripts/bench_scale.sh enforces
//                      speedup >= 2 when enough cores exist.
//
// Virtual deliveries/sec is deterministic per seed and deliberately does
// NOT move with this PR: the optimizations cut wall-clock and syscalls,
// not the simulated work model — which is exactly why the sweep reports
// both clocks.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "crypto/cost.hpp"
#include "crypto/threshold_sig.hpp"
#include "crypto/work_pool.hpp"
#include "sim/topologies.hpp"

using namespace sintra;

namespace {

struct Options {
  bool sweep = false;
  bool fallback_gate = false;
  int n = 16;
  int messages = 40;
  int senders = 3;
  int reps = 3;
  std::uint64_t seed = 1;
  int rsa_bits = 512;
  double deadline_ms = 1e9;
};

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) throw std::runtime_error(arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--sweep") o.sweep = true;
    else if (arg == "--fallback-gate") o.fallback_gate = true;
    else if (arg == "--n") o.n = std::stoi(value());
    else if (arg == "--messages") o.messages = std::stoi(value());
    else if (arg == "--senders") o.senders = std::stoi(value());
    else if (arg == "--reps") o.reps = std::stoi(value());
    else if (arg == "--seed") o.seed = std::stoull(value());
    else if (arg == "--rsa-bits") o.rsa_bits = std::stoi(value());
    else if (arg == "--deadline-ms") o.deadline_ms = std::stod(value());
    else throw std::runtime_error("unknown option " + arg);
  }
  if (o.sweep == o.fallback_gate) {
    throw std::runtime_error("pass exactly one of --sweep / --fallback-gate");
  }
  return o;
}

double wall_ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

int run_sweep(const Options& o) {
  const int t = (o.n - 1) / 3;
  const sim::Topology topology = sim::uniform_setup(o.n);

  crypto::DealerConfig dealer_cfg =
      bench::paper_dealer_config(o.n, t, o.rsa_bits);
  if (o.rsa_bits < 1024) {
    // Fast mode for CI: smaller discrete-log group to match.
    dealer_cfg.dl_p_bits = 256;
    dealer_cfg.dl_q_bits = 96;
  }
  const crypto::Deal deal = crypto::run_dealer(dealer_cfg);

  bench::WorkloadOptions wl;
  wl.kind = bench::ChannelKind::kAtomic;
  wl.senders.clear();
  for (int s = 0; s < std::min(o.senders, o.n); ++s) wl.senders.push_back(s);
  wl.total_messages = o.messages;
  wl.seed = o.seed;
  wl.deadline_virtual_ms = o.deadline_ms;

  // run_workload owns its Simulator, but the sweep needs the simulator's
  // message counters — inline the same shape with the counters exposed.
  sim::Simulator sim(topology, deal, o.seed);
  sim.per_message_cpu_ms = wl.per_message_cpu_ms;

  std::vector<std::unique_ptr<core::AtomicChannel>> channels;
  std::size_t delivered_at_measure = 0;
  std::vector<double> delivery_times;
  for (int i = 0; i < o.n; ++i) {
    auto& env = sim.node(i);
    auto ch = std::make_unique<core::AtomicChannel>(env, env.dispatcher(),
                                                    "bench");
    if (i == 0) {
      ch->set_deliver_callback([&](const Bytes&, core::PartyId) {
        ++delivered_at_measure;
        delivery_times.push_back(sim.now_ms());
      });
    }
    channels.push_back(std::move(ch));
  }
  for (int m = 0; m < o.messages; ++m) {
    const int sender =
        wl.senders[static_cast<std::size_t>(m) % wl.senders.size()];
    const std::string payload = "m" + std::to_string(m);
    sim.at(0.0, sender, [&, sender, payload] {
      channels[static_cast<std::size_t>(sender)]->send(to_bytes(payload));
    });
  }

  const crypto::WorkMeter meter;
  const auto t0 = std::chrono::steady_clock::now();
  const bool completed = sim.run_until(
      [&] {
        return delivered_at_measure >= static_cast<std::size_t>(o.messages);
      },
      o.deadline_ms);
  const double wall_ms = wall_ms_since(t0);
  const std::uint64_t work = meter.elapsed();

  const double span_ms = delivery_times.size() > 1
                             ? delivery_times.back() - delivery_times.front()
                             : 0.0;
  const double deliveries =
      static_cast<double>(delivery_times.empty() ? 0 : delivery_times.size());
  const double virtual_dps =
      span_ms > 0.0 ? (deliveries - 1.0) / span_ms * 1000.0 : 0.0;
  const double wall_dps = wall_ms > 0.0 ? deliveries / wall_ms * 1000.0 : 0.0;
  const double msgs = static_cast<double>(sim.messages_sent());
  const double datagrams_per_delivery =
      deliveries > 0.0 ? msgs / deliveries : 0.0;

  std::printf(
      "{\"mode\":\"sweep\",\"n\":%d,\"t\":%d,\"messages\":%d,\"senders\":%zu,"
      "\"seed\":%llu,\"rsa_bits\":%d,\"completed\":%s,\"deliveries\":%zu,"
      "\"elapsed_virtual_ms\":%.3f,\"virtual_del_per_sec\":%.3f,"
      "\"wall_ms\":%.1f,\"wall_del_per_sec\":%.3f,"
      "\"work_units\":%llu,\"work_units_per_delivery\":%.0f,"
      "\"messages_sent\":%llu,\"datagrams_per_delivery\":%.1f,"
      "\"syscalls_per_delivery_unbatched\":%.1f}\n",
      o.n, t, o.messages, wl.senders.size(),
      static_cast<unsigned long long>(o.seed), o.rsa_bits,
      completed ? "true" : "false", delivery_times.size(), sim.now_ms(),
      virtual_dps, wall_ms, wall_dps,
      static_cast<unsigned long long>(work),
      deliveries > 0.0 ? static_cast<double>(work) / deliveries : 0.0,
      static_cast<unsigned long long>(sim.messages_sent()),
      datagrams_per_delivery,
      // One sendto + one recvfrom per datagram on the unbatched path.
      2.0 * datagrams_per_delivery);
  return completed ? 0 : 1;
}

/// Times one checked combine facing one Byzantine share: a fresh combiner
/// handle (the fallback blacklists, so handles are single-use here),
/// warmed so comb-table builds happen outside the timed region, then the
/// combine → failed check → per-share fallback → retry sequence.
double time_fallback_ms(const crypto::RsaThresholdDeal& deal, BytesView msg,
                        const std::vector<std::pair<int, Bytes>>& shares,
                        crypto::WorkPool* pool) {
  const std::unique_ptr<crypto::RsaThresholdScheme> combiner =
      deal.make_party(0);
  // Warm: verifying each signer's genuine share builds the per-signer comb
  // tables so the timed region measures verification, not table builds.
  for (const auto& [signer, share] : shares) {
    if (!combiner->verify_share(msg, signer, share)) {
      throw std::runtime_error("genuine share failed warm-up verification");
    }
  }
  // Shares as combined: signer 0 presents signer k's share bytes — parses
  // fine, verifies false — so the combine-first check fails and the
  // fallback individually verifies the k chosen shares.
  std::vector<std::pair<int, Bytes>> byzantine = shares;
  byzantine[0].second = shares[static_cast<std::size_t>(combiner->k())].second;

  const auto t0 = std::chrono::steady_clock::now();
  const auto sig = combiner->combine_checked(msg, byzantine, pool);
  const double ms = wall_ms_since(t0);
  if (!sig.has_value() || !combiner->verify(msg, sig->sig)) {
    throw std::runtime_error("checked combine failed to recover");
  }
  if (!combiner->is_blacklisted(0)) {
    throw std::runtime_error("Byzantine submitter was not blacklisted");
  }
  return ms;
}

int run_fallback_gate(const Options& o) {
  const int t = (o.n - 1) / 3;
  const int k = o.n - t;  // the agreement threshold, the paper's k_AB
  Rng rng(o.seed);
  const crypto::RsaThresholdDeal deal =
      crypto::deal_rsa_threshold(rng, o.n, k, o.rsa_bits);

  const Bytes msg = to_bytes(std::string("scale-sweep fallback gate"));
  std::vector<std::pair<int, Bytes>> shares;
  for (int i = 0; i < o.n; ++i) {
    shares.emplace_back(i, deal.make_party(i)->sign_share(msg));
  }

  const std::size_t threads = std::thread::hardware_concurrency();
  crypto::WorkPool pool(threads);

  double serial_ms = 1e18;
  double parallel_ms = 1e18;
  for (int r = 0; r < o.reps; ++r) {
    serial_ms = std::min(serial_ms, time_fallback_ms(deal, msg, shares,
                                                     /*pool=*/nullptr));
    parallel_ms = std::min(parallel_ms,
                           time_fallback_ms(deal, msg, shares, &pool));
  }
  const double speedup = parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0;

  std::printf(
      "{\"mode\":\"fallback_gate\",\"n\":%d,\"t\":%d,\"k\":%d,"
      "\"rsa_bits\":%d,\"reps\":%d,\"threads\":%zu,"
      "\"serial_ms\":%.3f,\"parallel_ms\":%.3f,\"speedup\":%.2f}\n",
      o.n, t, k, o.rsa_bits, o.reps, threads, serial_ms, parallel_ms,
      speedup);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options o = parse(argc, argv);
    return o.sweep ? run_sweep(o) : run_fallback_gate(o);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
