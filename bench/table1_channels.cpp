// Table 1 reproduction: "Average delivery times (s) for atomic channel,
// secure causal atomic channel, reliable channel, and consistent channel"
// on the LAN setup (n=4, t=1), the Internet setup (n=4, t=1) and the
// combined LAN+Internet setup (n=7, t=2).
//
// Paper workload (§4.2): one sender (P0 / Zurich), 500 short messages,
// batch size t+1, multi-signatures, 1024-bit keys, measurement on P0.
//
// Paper's measured values for comparison:
//            atomic  secure  reliable  consistent
//   LAN       0.69    1.07     0.13      0.11
//   Internet  2.95    3.61     0.72      0.83
//   LAN+I'net 2.74    3.79     0.60      0.64
//
// Expected *shape* (see EXPERIMENTS.md): reliable ~ consistent << atomic
// < secure; atomic ≈ 4-6x the cheap channels; WAN ≈ 4x LAN for atomic;
// secure ≈ atomic + one threshold-decryption round.
#include <cstdio>
#include <cstdlib>

#include "bench/common.hpp"

using namespace sintra;
using namespace sintra::bench;

int main(int argc, char** argv) {
  const int messages = argc > 1 ? std::atoi(argv[1]) : 100;

  struct Setup {
    const char* name;
    sim::Topology topology;
    int n, t;
    double paper[4];  // atomic, secure, reliable, consistent
  };
  const Setup setups[] = {
      {"LAN", sim::lan_setup(), 4, 1, {0.69, 1.07, 0.13, 0.11}},
      {"Internet", sim::internet_setup(), 4, 1, {2.95, 3.61, 0.72, 0.83}},
      {"LAN+I'net", sim::combined_setup(), 7, 2, {2.74, 3.79, 0.60, 0.64}},
  };
  const ChannelKind kinds[] = {ChannelKind::kAtomic, ChannelKind::kSecure,
                               ChannelKind::kReliable,
                               ChannelKind::kConsistent};

  std::printf("Table 1: average delivery times (s), %d messages, one sender "
              "(P0), batch t+1, multi-signatures, 1024-bit keys\n\n",
              messages);
  std::printf("%-10s %10s %10s %10s %10s\n", "Setup", "atomic", "secure",
              "reliable", "consistent");

  for (const Setup& s : setups) {
    const crypto::Deal deal =
        crypto::run_dealer(paper_dealer_config(s.n, s.t));
    std::printf("%-10s", s.name);
    double measured[4];
    for (int k = 0; k < 4; ++k) {
      WorkloadOptions opt;
      opt.kind = kinds[k];
      opt.senders = {0};
      opt.total_messages = messages;
      opt.measure_node = 0;
      WorkloadResult res = run_workload(s.topology, deal, opt);
      measured[k] = res.completed ? res.mean_interdelivery_s() : -1;
      std::printf(" %10.2f", measured[k]);
      std::fflush(stdout);
    }
    std::printf("\n%-10s paper:", "");
    for (double p : s.paper) std::printf(" %8.2f  ", p);
    std::printf("\n");
  }

  std::printf(
      "\nShape checks (see EXPERIMENTS.md for the recorded outcome):\n"
      "  - reliable and consistent within ~2x of each other, both far\n"
      "    below atomic;\n"
      "  - secure > atomic on every setup (extra decryption round);\n"
      "  - Internet atomic ≈ 4x LAN atomic.\n");
  return 0;
}
