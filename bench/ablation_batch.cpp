// Ablation D3 (DESIGN.md): atomic-channel batch size n-f+1 (paper §2.5
// calls it "a configurable parameter"; the experiments fixed it to t+1).
//
// Larger batches amortize one multi-valued agreement over more deliveries
// (throughput) but need more distinct signers per round and delay the
// round until enough messages circulate (latency at low load).
#include <cstdio>
#include <cstdlib>

#include "bench/common.hpp"

using namespace sintra;
using namespace sintra::bench;

int main(int argc, char** argv) {
  const int messages = argc > 1 ? std::atoi(argv[1]) : 150;
  const crypto::Deal deal = crypto::run_dealer(paper_dealer_config(4, 1));

  std::printf("Ablation D3: batch size sweep, AtomicChannel, LAN, 3 "
              "senders, %d messages\n\n", messages);
  std::printf("%10s %14s %14s %18s\n", "batch", "s/delivery", "rounds",
              "msgs/round");

  for (int batch : {1, 2, 3, 4}) {
    WorkloadOptions opt;
    opt.kind = ChannelKind::kAtomic;
    opt.senders = {0, 2, 3};
    opt.total_messages = messages;
    opt.atomic_config.batch_size = batch;

    // Count rounds via a probe channel on the measurement node: the
    // workload runner tracks deliveries; rounds = messages / msgs-per-round
    // follows from the delivery gaps (a ~0-gap means same round).
    const WorkloadResult res = run_workload(sim::lan_setup(), deal, opt);
    if (!res.completed) {
      std::printf("%10d  (did not complete — batch > concurrent senders "
                  "can starve rounds)\n", batch);
      continue;
    }
    int rounds = 1;
    double prev = res.deliveries.front().time_ms;
    for (std::size_t i = 1; i < res.deliveries.size(); ++i) {
      if (res.deliveries[i].time_ms - prev > 50.0) ++rounds;
      prev = res.deliveries[i].time_ms;
    }
    std::printf("%10d %14.2f %14d %18.2f\n", batch,
                res.mean_interdelivery_s(), rounds,
                static_cast<double>(messages) / rounds);
    std::fflush(stdout);
  }
  std::printf("\nexpected: throughput (msgs/round) grows with the batch "
              "size up to the number of concurrent senders; the paper's "
              "t+1 = 2 trades some throughput for round latency.\n");
  return 0;
}
