// Figure 5 reproduction: "Delivery time per message for AtomicChannel on
// the Internet" — three senders (Zurich, Tokyo, New York) send 1000
// messages; measurement in Zurich.  The paper's features:
//
//   1. the ~0 s batch band as on the LAN;
//   2. the round band splits in two: most points at the one-agreement
//      time (2-2.5 s in the paper) and roughly a quarter one binary
//      agreement higher (3-3.5 s) — when the randomized candidate order
//      examines a proposal the fast parties have not received, the first
//      biased agreement decides 0 and a second one is needed;
//   3. delivery order driven by *connectivity*, not CPU speed.
#include <cstdio>
#include <cstdlib>
#include <map>

#include "bench/common.hpp"

using namespace sintra;
using namespace sintra::bench;

int main(int argc, char** argv) {
  const int messages = argc > 1 ? std::atoi(argv[1]) : 500;
  const bool emit_points = argc > 2 && std::string(argv[2]) == "--points";

  const crypto::Deal deal = crypto::run_dealer(paper_dealer_config(4, 1));
  WorkloadOptions opt;
  opt.kind = ChannelKind::kAtomic;
  opt.senders = {0, 1, 2};  // Zurich, Tokyo, New York (California idle)
  opt.total_messages = messages;
  opt.measure_node = 0;     // Zurich

  const WorkloadResult res = run_workload(sim::internet_setup(), deal, opt);
  if (!res.completed) {
    std::printf("workload did not complete\n");
    return 1;
  }

  std::printf("Figure 5: AtomicChannel on the Internet, senders "
              "{Zurich,Tokyo,NewYork}, %d messages, measured in Zurich\n\n",
              messages);
  if (emit_points) {
    std::printf("# delivery_number  sec_per_delivery  sender  mvba_iters\n");
  }

  int band_zero = 0, band_one_agreement = 0, band_extra = 0;
  double one_sum = 0, extra_sum = 0;
  std::map<int, int> per_sender;
  double prev = res.deliveries.front().time_ms;
  for (std::size_t i = 0; i < res.deliveries.size(); ++i) {
    const auto& d = res.deliveries[i];
    const double gap_s = (d.time_ms - prev) / 1000.0;
    prev = d.time_ms;
    if (emit_points) {
      std::printf("%6zu  %8.3f  P%d  %d\n", i, gap_s, d.origin,
                  d.mvba_iterations);
    }
    if (i > 0) {
      if (gap_s < 0.05) {
        ++band_zero;
      } else if (d.mvba_iterations <= 1) {
        ++band_one_agreement;
        one_sum += gap_s;
      } else {
        ++band_extra;
        extra_sum += gap_s;
      }
    }
    ++per_sender[d.origin];
  }

  std::printf("band at ~0 s                 : %d points\n", band_zero);
  std::printf("one-agreement band           : %d points, mean %.2f s\n",
              band_one_agreement,
              band_one_agreement ? one_sum / band_one_agreement : 0.0);
  std::printf("extra-binary-agreement band  : %d points, mean %.2f s (%.0f%% "
              "of non-zero points)\n",
              band_extra, band_extra ? extra_sum / band_extra : 0.0,
              100.0 * band_extra /
                  std::max(1, band_one_agreement + band_extra));
  std::printf("paper: bands at 2-2.5 s and 3-3.5 s, the higher band holding "
              "roughly 1/4 of the above-zero points;\n"
              "       the gap between the bands is the time of one binary "
              "agreement (~1 s)\n\n");

  std::printf("deliveries per sender        :");
  for (const auto& [s, cnt] : per_sender) std::printf("  P%d=%d", s, cnt);
  std::printf("\npaper: order driven by connectivity — New York first, "
              "Tokyo (fastest CPU, worst links) last\n");

  std::printf("\ntotal virtual time %.1f s (%.2f s/delivery overall)\n",
              res.total_virtual_ms / 1000.0,
              res.total_virtual_ms / 1000.0 / messages);
  return 0;
}
