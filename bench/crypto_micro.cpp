// Crypto-substrate microbenchmarks (google-benchmark).
//
// Not a paper table — this validates the cost *model*: the relative costs
// measured here (CRT signing ~4x cheaper than full modexp, share
// generation dominated by one or two exponentiations, verification with
// e=65537 nearly free) are what drive the shapes of Table 1 and Figure 6
// through the simulator's work accounting.
// The *Seed benchmarks replicate the pre-fast-path operation sequences
// (plain square-and-multiply per base, explicit modular inverses,
// unmemoized hash-to-group arithmetic) so one binary reports both sides
// of the before/after comparison in BENCH_crypto.json; the *Fast
// benchmarks exercise the shipped simultaneous-multi-exp / comb-table
// paths.  Every benchmark also reports the Montgomery work counter per
// operation — the unit the simulator's virtual clock is driven by.
#include <benchmark/benchmark.h>

#include "bignum/montgomery.hpp"
#include "crypto/coin.hpp"
#include "crypto/dealer.hpp"
#include "crypto/group.hpp"
#include "crypto/tdh2.hpp"

namespace {

using namespace sintra;
using crypto::BigInt;

// Reports bignum work units per operation alongside wall-clock time.
class WorkTracker {
 public:
  explicit WorkTracker(benchmark::State& state)
      : state_(state), start_(bignum::work_counter()) {}
  ~WorkTracker() {
    const std::uint64_t total = bignum::work_counter() - start_;
    state_.counters["work_per_op"] = benchmark::Counter(
        static_cast<double>(total) /
        static_cast<double>(std::max<std::int64_t>(1, state_.iterations())));
  }
  WorkTracker(const WorkTracker&) = delete;
  WorkTracker& operator=(const WorkTracker&) = delete;

 private:
  benchmark::State& state_;
  std::uint64_t start_;
};

struct Fixture {
  crypto::Deal deal;
  Bytes msg = to_bytes("benchmark message under 32B");

  explicit Fixture(int rsa_bits,
                   crypto::SigImpl impl = crypto::SigImpl::kMultiSig) {
    crypto::DealerConfig cfg;
    cfg.n = 4;
    cfg.t = 1;
    cfg.rsa_bits = rsa_bits;
    cfg.dl_p_bits = 1024;
    cfg.dl_q_bits = 160;
    cfg.hash = crypto::HashKind::kSha1;
    cfg.sig_impl = impl;
    deal = crypto::run_dealer(cfg);
  }
};

Fixture& fixture(int rsa_bits, crypto::SigImpl impl) {
  static std::map<std::pair<int, int>, std::unique_ptr<Fixture>> cache;
  auto key = std::pair{rsa_bits, static_cast<int>(impl)};
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, std::make_unique<Fixture>(rsa_bits, impl)).first;
  }
  return *it->second;
}

void BM_Modexp(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  Rng rng(1);
  const BigInt m =
      (BigInt{1} << bits) - BigInt{static_cast<std::int64_t>(129)};
  const bignum::Montgomery mont(m);
  const BigInt base = BigInt::random_below(rng, m);
  const BigInt e = BigInt::random_bits(rng, bits);
  WorkTracker wt(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mont.pow(base, e));
  }
}
BENCHMARK(BM_Modexp)->Arg(128)->Arg(256)->Arg(512)->Arg(1024);

void BM_RsaSignCrt(benchmark::State& state) {
  Fixture& fx =
      fixture(static_cast<int>(state.range(0)), crypto::SigImpl::kMultiSig);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.deal.parties[0].sign(fx.msg));
  }
}
BENCHMARK(BM_RsaSignCrt)->Arg(512)->Arg(1024);

void BM_RsaVerify(benchmark::State& state) {
  Fixture& fx =
      fixture(static_cast<int>(state.range(0)), crypto::SigImpl::kMultiSig);
  const Bytes sig = fx.deal.parties[0].sign(fx.msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.deal.parties[1].verify_party_sig(0, fx.msg, sig));
  }
}
BENCHMARK(BM_RsaVerify)->Arg(512)->Arg(1024);

void BM_ThresholdSigShare(benchmark::State& state) {
  Fixture& fx = fixture(static_cast<int>(state.range(0)),
                        crypto::SigImpl::kThresholdRsa);
  WorkTracker wt(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.deal.parties[0].sig_broadcast->sign_share(fx.msg));
  }
}
BENCHMARK(BM_ThresholdSigShare)->Arg(512)->Arg(1024);

void BM_ThresholdSigVerifyShare(benchmark::State& state) {
  Fixture& fx = fixture(static_cast<int>(state.range(0)),
                        crypto::SigImpl::kThresholdRsa);
  const Bytes share = fx.deal.parties[0].sig_broadcast->sign_share(fx.msg);
  WorkTracker wt(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.deal.parties[1].sig_broadcast->verify_share(fx.msg, 0, share));
  }
}
BENCHMARK(BM_ThresholdSigVerifyShare)->Arg(512)->Arg(1024);

void BM_ThresholdSigCombine(benchmark::State& state) {
  Fixture& fx = fixture(static_cast<int>(state.range(0)),
                        crypto::SigImpl::kThresholdRsa);
  std::vector<std::pair<int, Bytes>> shares;
  for (int i = 0; i < fx.deal.parties[0].sig_broadcast->k(); ++i) {
    shares.emplace_back(
        i, fx.deal.parties[static_cast<std::size_t>(i)].sig_broadcast
               ->sign_share(fx.msg));
  }
  WorkTracker wt(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.deal.parties[0].sig_broadcast->combine(fx.msg, shares));
  }
}
BENCHMARK(BM_ThresholdSigCombine)->Arg(512)->Arg(1024);

void BM_CoinRelease(benchmark::State& state) {
  Fixture& fx = fixture(1024, crypto::SigImpl::kMultiSig);
  std::uint64_t i = 0;
  WorkTracker wt(state);
  for (auto _ : state) {
    Writer w;
    w.u64(i++);
    benchmark::DoNotOptimize(fx.deal.parties[0].coin->release(w.data()));
  }
}
BENCHMARK(BM_CoinRelease);

void BM_CoinVerifyAndAssemble(benchmark::State& state) {
  Fixture& fx = fixture(1024, crypto::SigImpl::kMultiSig);
  const Bytes name = to_bytes("bench coin");
  std::vector<std::pair<int, Bytes>> shares;
  for (int i = 0; i < 2; ++i) {
    shares.emplace_back(
        i, fx.deal.parties[static_cast<std::size_t>(i)].coin->release(name));
  }
  WorkTracker wt(state);
  for (auto _ : state) {
    bool ok = fx.deal.parties[2].coin->verify_share(name, 0, shares[0].second);
    benchmark::DoNotOptimize(ok);
    benchmark::DoNotOptimize(
        fx.deal.parties[2].coin->assemble_bit(name, shares));
  }
}
BENCHMARK(BM_CoinVerifyAndAssemble);

void BM_Tdh2Encrypt(benchmark::State& state) {
  Fixture& fx = fixture(1024, crypto::SigImpl::kMultiSig);
  Rng rng(7);
  WorkTracker wt(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.deal.encryption_key->encrypt(fx.msg, to_bytes("L"), rng));
  }
}
BENCHMARK(BM_Tdh2Encrypt);

void BM_Tdh2DecryptShare(benchmark::State& state) {
  Fixture& fx = fixture(1024, crypto::SigImpl::kMultiSig);
  Rng rng(8);
  const Bytes ct = fx.deal.encryption_key->encrypt(fx.msg, to_bytes("L"), rng);
  WorkTracker wt(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.deal.parties[0].cipher->decrypt_share(ct));
  }
}
BENCHMARK(BM_Tdh2DecryptShare);

void BM_Tdh2Combine(benchmark::State& state) {
  Fixture& fx = fixture(1024, crypto::SigImpl::kMultiSig);
  Rng rng(9);
  const Bytes ct = fx.deal.encryption_key->encrypt(fx.msg, to_bytes("L"), rng);
  std::vector<std::pair<int, Bytes>> shares;
  for (int i = 0; i < 2; ++i) {
    shares.emplace_back(
        i,
        *fx.deal.parties[static_cast<std::size_t>(i)].cipher->decrypt_share(ct));
  }
  WorkTracker wt(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.deal.parties[3].cipher->combine(ct, shares));
  }
}
BENCHMARK(BM_Tdh2Combine);

// --- Before/after comparison: seed op sequences vs fast paths ------------

struct DleqBench {
  crypto::DlogGroup grp;  // private copy: its precomputation cache is ours
  BigInt vk;              // h1 = g^x, a long-lived verification key
  BigInt base;            // g2 = H2G(name), fresh per coin
  BigInt gi;              // h2 = base^x, fresh per share
  crypto::DleqProof proof;
  BigInt cofactor;        // (p-1)/q, the hash-to-group projection exponent

  DleqBench()
      : grp(fixture(1024, crypto::SigImpl::kMultiSig)
                .deal.encryption_key->group) {
    Rng rng(0xd1e9);
    const BigInt x = grp.random_exponent(rng);
    vk = grp.exp(grp.g(), x);
    base = grp.hash_to_group(to_bytes("bench dleq base"));
    gi = grp.exp(base, x);
    proof = crypto::dleq_prove(grp, grp.g(), vk, base, gi, x, rng);
    cofactor = (grp.p() - BigInt{1}) / grp.q();
  }
};

DleqBench& dleq_bench() {
  static DleqBench b;
  return b;
}

// Seed-identical DLEQ verification: one plain exponentiation per base,
// explicit modular inverses, unmemoized membership checks.
bool seed_dleq_verify(const crypto::DlogGroup& grp, const BigInt& g1,
                      const BigInt& h1, const BigInt& g2, const BigInt& h2,
                      const crypto::DleqProof& pf) {
  if (pf.c.is_negative() || pf.z.is_negative() || pf.c >= grp.q() ||
      pf.z >= grp.q()) {
    return false;
  }
  if (!grp.is_member(h1) || !grp.is_member(h2)) return false;
  const BigInt a1 = grp.mul(grp.exp(g1, pf.z), grp.inv(grp.exp(h1, pf.c)));
  const BigInt a2 = grp.mul(grp.exp(g2, pf.z), grp.inv(grp.exp(h2, pf.c)));
  Writer w;
  g1.write(w);
  h1.write(w);
  g2.write(w);
  h2.write(w);
  a1.write(w);
  a2.write(w);
  return grp.hash_to_exponent(w.data()) == pf.c;
}

void BM_SingleExp(benchmark::State& state) {
  DleqBench& b = dleq_bench();
  Rng rng(11);
  const BigInt e = b.grp.random_exponent(rng);
  WorkTracker wt(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.grp.exp(b.grp.g(), e));
  }
}
BENCHMARK(BM_SingleExp);

void BM_SingleExpFixedBase(benchmark::State& state) {
  DleqBench& b = dleq_bench();
  Rng rng(12);
  const BigInt e = b.grp.random_exponent(rng);
  benchmark::DoNotOptimize(b.grp.exp_cached(b.grp.g(), e));  // warm the comb
  WorkTracker wt(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.grp.exp_cached(b.grp.g(), e));
  }
}
BENCHMARK(BM_SingleExpFixedBase);

void BM_DualExpSeed(benchmark::State& state) {
  DleqBench& b = dleq_bench();
  WorkTracker wt(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        b.grp.mul(b.grp.exp(b.grp.g(), b.proof.z),
                  b.grp.inv(b.grp.exp(b.vk, b.proof.c))));
  }
}
BENCHMARK(BM_DualExpSeed);

void BM_DualExpFast(benchmark::State& state) {
  DleqBench& b = dleq_bench();
  benchmark::DoNotOptimize(
      b.grp.dual_exp_neg(b.grp.g(), b.proof.z, true, b.vk, b.proof.c, true));
  WorkTracker wt(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        b.grp.dual_exp_neg(b.grp.g(), b.proof.z, true, b.vk, b.proof.c, true));
  }
}
BENCHMARK(BM_DualExpFast);

void BM_DleqVerifySeed(benchmark::State& state) {
  DleqBench& b = dleq_bench();
  WorkTracker wt(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        seed_dleq_verify(b.grp, b.grp.g(), b.vk, b.base, b.gi, b.proof));
  }
}
BENCHMARK(BM_DleqVerifySeed);

void BM_DleqVerifyFast(benchmark::State& state) {
  DleqBench& b = dleq_bench();
  const crypto::DleqHints hints{.g1_long_lived = true,
                                .h1_long_lived = true,
                                .g2_long_lived = false,
                                .h2_long_lived = false};
  benchmark::DoNotOptimize(
      crypto::dleq_verify(b.grp, b.grp.g(), b.vk, b.base, b.gi, b.proof,
                          hints));  // warm the combs
  WorkTracker wt(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::dleq_verify(b.grp, b.grp.g(), b.vk, b.base, b.gi, b.proof,
                            hints));
  }
}
BENCHMARK(BM_DleqVerifyFast);

void BM_CoinShareVerifySeed(benchmark::State& state) {
  // Seed coin-share verification = recompute H2G(name) from scratch (its
  // arithmetic core is the cofactor exponentiation) + a plain DLEQ verify.
  DleqBench& b = dleq_bench();
  const bignum::Montgomery mont(b.grp.p());
  WorkTracker wt(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mont.pow(b.base, b.cofactor));
    benchmark::DoNotOptimize(
        seed_dleq_verify(b.grp, b.grp.g(), b.vk, b.base, b.gi, b.proof));
  }
}
BENCHMARK(BM_CoinShareVerifySeed);

void BM_CoinShareVerifyFast(benchmark::State& state) {
  Fixture& fx = fixture(1024, crypto::SigImpl::kMultiSig);
  const Bytes name = to_bytes("bench coin fastpath");
  const Bytes share = fx.deal.parties[0].coin->release(name);
  benchmark::DoNotOptimize(
      fx.deal.parties[2].coin->verify_share(name, 0, share));  // warm caches
  WorkTracker wt(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.deal.parties[2].coin->verify_share(name, 0, share));
  }
}
BENCHMARK(BM_CoinShareVerifyFast);

}  // namespace

BENCHMARK_MAIN();
