// Crypto-substrate microbenchmarks (google-benchmark).
//
// Not a paper table — this validates the cost *model*: the relative costs
// measured here (CRT signing ~4x cheaper than full modexp, share
// generation dominated by one or two exponentiations, verification with
// e=65537 nearly free) are what drive the shapes of Table 1 and Figure 6
// through the simulator's work accounting.
#include <benchmark/benchmark.h>

#include "bignum/montgomery.hpp"
#include "crypto/coin.hpp"
#include "crypto/dealer.hpp"
#include "crypto/tdh2.hpp"

namespace {

using namespace sintra;
using crypto::BigInt;

struct Fixture {
  crypto::Deal deal;
  Bytes msg = to_bytes("benchmark message under 32B");

  explicit Fixture(int rsa_bits,
                   crypto::SigImpl impl = crypto::SigImpl::kMultiSig) {
    crypto::DealerConfig cfg;
    cfg.n = 4;
    cfg.t = 1;
    cfg.rsa_bits = rsa_bits;
    cfg.dl_p_bits = 1024;
    cfg.dl_q_bits = 160;
    cfg.hash = crypto::HashKind::kSha1;
    cfg.sig_impl = impl;
    deal = crypto::run_dealer(cfg);
  }
};

Fixture& fixture(int rsa_bits, crypto::SigImpl impl) {
  static std::map<std::pair<int, int>, std::unique_ptr<Fixture>> cache;
  auto key = std::pair{rsa_bits, static_cast<int>(impl)};
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, std::make_unique<Fixture>(rsa_bits, impl)).first;
  }
  return *it->second;
}

void BM_Modexp(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  Rng rng(1);
  const BigInt m =
      (BigInt{1} << bits) - BigInt{static_cast<std::int64_t>(129)};
  const bignum::Montgomery mont(m);
  const BigInt base = BigInt::random_below(rng, m);
  const BigInt e = BigInt::random_bits(rng, bits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mont.pow(base, e));
  }
}
BENCHMARK(BM_Modexp)->Arg(128)->Arg(256)->Arg(512)->Arg(1024);

void BM_RsaSignCrt(benchmark::State& state) {
  Fixture& fx =
      fixture(static_cast<int>(state.range(0)), crypto::SigImpl::kMultiSig);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.deal.parties[0].sign(fx.msg));
  }
}
BENCHMARK(BM_RsaSignCrt)->Arg(512)->Arg(1024);

void BM_RsaVerify(benchmark::State& state) {
  Fixture& fx =
      fixture(static_cast<int>(state.range(0)), crypto::SigImpl::kMultiSig);
  const Bytes sig = fx.deal.parties[0].sign(fx.msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.deal.parties[1].verify_party_sig(0, fx.msg, sig));
  }
}
BENCHMARK(BM_RsaVerify)->Arg(512)->Arg(1024);

void BM_ThresholdSigShare(benchmark::State& state) {
  Fixture& fx = fixture(static_cast<int>(state.range(0)),
                        crypto::SigImpl::kThresholdRsa);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.deal.parties[0].sig_broadcast->sign_share(fx.msg));
  }
}
BENCHMARK(BM_ThresholdSigShare)->Arg(512)->Arg(1024);

void BM_ThresholdSigVerifyShare(benchmark::State& state) {
  Fixture& fx = fixture(static_cast<int>(state.range(0)),
                        crypto::SigImpl::kThresholdRsa);
  const Bytes share = fx.deal.parties[0].sig_broadcast->sign_share(fx.msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.deal.parties[1].sig_broadcast->verify_share(fx.msg, 0, share));
  }
}
BENCHMARK(BM_ThresholdSigVerifyShare)->Arg(512)->Arg(1024);

void BM_ThresholdSigCombine(benchmark::State& state) {
  Fixture& fx = fixture(static_cast<int>(state.range(0)),
                        crypto::SigImpl::kThresholdRsa);
  std::vector<std::pair<int, Bytes>> shares;
  for (int i = 0; i < fx.deal.parties[0].sig_broadcast->k(); ++i) {
    shares.emplace_back(
        i, fx.deal.parties[static_cast<std::size_t>(i)].sig_broadcast
               ->sign_share(fx.msg));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.deal.parties[0].sig_broadcast->combine(fx.msg, shares));
  }
}
BENCHMARK(BM_ThresholdSigCombine)->Arg(512)->Arg(1024);

void BM_CoinRelease(benchmark::State& state) {
  Fixture& fx = fixture(1024, crypto::SigImpl::kMultiSig);
  std::uint64_t i = 0;
  for (auto _ : state) {
    Writer w;
    w.u64(i++);
    benchmark::DoNotOptimize(fx.deal.parties[0].coin->release(w.data()));
  }
}
BENCHMARK(BM_CoinRelease);

void BM_CoinVerifyAndAssemble(benchmark::State& state) {
  Fixture& fx = fixture(1024, crypto::SigImpl::kMultiSig);
  const Bytes name = to_bytes("bench coin");
  std::vector<std::pair<int, Bytes>> shares;
  for (int i = 0; i < 2; ++i) {
    shares.emplace_back(
        i, fx.deal.parties[static_cast<std::size_t>(i)].coin->release(name));
  }
  for (auto _ : state) {
    bool ok = fx.deal.parties[2].coin->verify_share(name, 0, shares[0].second);
    benchmark::DoNotOptimize(ok);
    benchmark::DoNotOptimize(
        fx.deal.parties[2].coin->assemble_bit(name, shares));
  }
}
BENCHMARK(BM_CoinVerifyAndAssemble);

void BM_Tdh2Encrypt(benchmark::State& state) {
  Fixture& fx = fixture(1024, crypto::SigImpl::kMultiSig);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.deal.encryption_key->encrypt(fx.msg, to_bytes("L"), rng));
  }
}
BENCHMARK(BM_Tdh2Encrypt);

void BM_Tdh2DecryptShare(benchmark::State& state) {
  Fixture& fx = fixture(1024, crypto::SigImpl::kMultiSig);
  Rng rng(8);
  const Bytes ct = fx.deal.encryption_key->encrypt(fx.msg, to_bytes("L"), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.deal.parties[0].cipher->decrypt_share(ct));
  }
}
BENCHMARK(BM_Tdh2DecryptShare);

void BM_Tdh2Combine(benchmark::State& state) {
  Fixture& fx = fixture(1024, crypto::SigImpl::kMultiSig);
  Rng rng(9);
  const Bytes ct = fx.deal.encryption_key->encrypt(fx.msg, to_bytes("L"), rng);
  std::vector<std::pair<int, Bytes>> shares;
  for (int i = 0; i < 2; ++i) {
    shares.emplace_back(
        i,
        *fx.deal.parties[static_cast<std::size_t>(i)].cipher->decrypt_share(ct));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.deal.parties[3].cipher->combine(ct, shares));
  }
}
BENCHMARK(BM_Tdh2Combine);

}  // namespace

BENCHMARK_MAIN();
