// Crypto-substrate microbenchmarks (google-benchmark).
//
// Not a paper table — this validates the cost *model*: the relative costs
// measured here (CRT signing ~4x cheaper than full modexp, share
// generation dominated by one or two exponentiations, verification with
// e=65537 nearly free) are what drive the shapes of Table 1 and Figure 6
// through the simulator's work accounting.
// The *Seed benchmarks replicate the pre-fast-path operation sequences
// (plain square-and-multiply per base, explicit modular inverses,
// unmemoized hash-to-group arithmetic) so one binary reports both sides
// of the before/after comparison in BENCH_crypto.json; the *Fast
// benchmarks exercise the shipped simultaneous-multi-exp / comb-table
// paths.  Every benchmark also reports the Montgomery work counter per
// operation — the unit the simulator's virtual clock is driven by.
#include <benchmark/benchmark.h>

#include "bignum/montgomery.hpp"
#include "bignum/ref32.hpp"
#include "crypto/coin.hpp"
#include "crypto/dealer.hpp"
#include "crypto/group.hpp"
#include "crypto/tdh2.hpp"

namespace {

using namespace sintra;
using crypto::BigInt;

// Reports bignum work units per operation alongside wall-clock time.
class WorkTracker {
 public:
  explicit WorkTracker(benchmark::State& state)
      : state_(state), start_(bignum::work_counter()) {}
  ~WorkTracker() {
    const std::uint64_t total = bignum::work_counter() - start_;
    state_.counters["work_per_op"] = benchmark::Counter(
        static_cast<double>(total) /
        static_cast<double>(std::max<std::int64_t>(1, state_.iterations())));
  }
  WorkTracker(const WorkTracker&) = delete;
  WorkTracker& operator=(const WorkTracker&) = delete;

 private:
  benchmark::State& state_;
  std::uint64_t start_;
};

struct Fixture {
  crypto::Deal deal;
  Bytes msg = to_bytes("benchmark message under 32B");

  explicit Fixture(int rsa_bits,
                   crypto::SigImpl impl = crypto::SigImpl::kMultiSig) {
    crypto::DealerConfig cfg;
    cfg.n = 4;
    cfg.t = 1;
    cfg.rsa_bits = rsa_bits;
    cfg.dl_p_bits = 1024;
    cfg.dl_q_bits = 160;
    cfg.hash = crypto::HashKind::kSha1;
    cfg.sig_impl = impl;
    deal = crypto::run_dealer(cfg);
  }
};

Fixture& fixture(int rsa_bits, crypto::SigImpl impl) {
  static std::map<std::pair<int, int>, std::unique_ptr<Fixture>> cache;
  auto key = std::pair{rsa_bits, static_cast<int>(impl)};
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, std::make_unique<Fixture>(rsa_bits, impl)).first;
  }
  return *it->second;
}

void BM_Modexp(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  Rng rng(1);
  const BigInt m =
      (BigInt{1} << bits) - BigInt{static_cast<std::int64_t>(129)};
  const bignum::Montgomery mont(m);
  const BigInt base = BigInt::random_below(rng, m);
  const BigInt e = BigInt::random_bits(rng, bits);
  WorkTracker wt(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mont.pow(base, e));
  }
}
BENCHMARK(BM_Modexp)->Arg(128)->Arg(256)->Arg(512)->Arg(1024);

// The frozen PR 1..7 32-bit limb layer (src/bignum/ref32.hpp), same inputs
// as BM_Modexp.  Having both paths in one binary gives scripts/
// bench_crypto.sh an honest same-machine wall-clock baseline for the
// >=2x 64-bit-rework gate; ref32 does not touch the work counter, so no
// work_per_op is reported.
void BM_ModexpRef32(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  Rng rng(1);
  const BigInt m =
      (BigInt{1} << bits) - BigInt{static_cast<std::int64_t>(129)};
  const bignum::Montgomery mont(m);
  const BigInt base = BigInt::random_below(rng, m);
  const BigInt e = BigInt::random_bits(rng, bits);
  namespace r32 = bignum::ref32;
  const auto rm = r32::Ref32Int::from_bytes(m.to_bytes());
  const auto rbase = r32::Ref32Int::from_bytes(base.to_bytes());
  const auto re = r32::Ref32Int::from_bytes(e.to_bytes());
  // Cross-check once so the baseline provably computes the same function.
  if (r32::Ref32Int::from_bytes(mont.pow(base, e).to_bytes()) !=
      rbase.mod_pow(re, rm)) {
    state.SkipWithError("ref32 disagrees with live modexp");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(rbase.mod_pow(re, rm));
  }
}
BENCHMARK(BM_ModexpRef32)->Arg(1024);

void BM_RsaSignCrt(benchmark::State& state) {
  Fixture& fx =
      fixture(static_cast<int>(state.range(0)), crypto::SigImpl::kMultiSig);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.deal.parties[0].sign(fx.msg));
  }
}
BENCHMARK(BM_RsaSignCrt)->Arg(512)->Arg(1024);

void BM_RsaVerify(benchmark::State& state) {
  Fixture& fx =
      fixture(static_cast<int>(state.range(0)), crypto::SigImpl::kMultiSig);
  const Bytes sig = fx.deal.parties[0].sign(fx.msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.deal.parties[1].verify_party_sig(0, fx.msg, sig));
  }
}
BENCHMARK(BM_RsaVerify)->Arg(512)->Arg(1024);

void BM_ThresholdSigShare(benchmark::State& state) {
  Fixture& fx = fixture(static_cast<int>(state.range(0)),
                        crypto::SigImpl::kThresholdRsa);
  WorkTracker wt(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.deal.parties[0].sig_broadcast->sign_share(fx.msg));
  }
}
BENCHMARK(BM_ThresholdSigShare)->Arg(512)->Arg(1024);

void BM_ThresholdSigVerifyShare(benchmark::State& state) {
  Fixture& fx = fixture(static_cast<int>(state.range(0)),
                        crypto::SigImpl::kThresholdRsa);
  const Bytes share = fx.deal.parties[0].sig_broadcast->sign_share(fx.msg);
  WorkTracker wt(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.deal.parties[1].sig_broadcast->verify_share(fx.msg, 0, share));
  }
}
BENCHMARK(BM_ThresholdSigVerifyShare)->Arg(512)->Arg(1024);

void BM_ThresholdSigCombine(benchmark::State& state) {
  Fixture& fx = fixture(static_cast<int>(state.range(0)),
                        crypto::SigImpl::kThresholdRsa);
  std::vector<std::pair<int, Bytes>> shares;
  for (int i = 0; i < fx.deal.parties[0].sig_broadcast->k(); ++i) {
    shares.emplace_back(
        i, fx.deal.parties[static_cast<std::size_t>(i)].sig_broadcast
               ->sign_share(fx.msg));
  }
  WorkTracker wt(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.deal.parties[0].sig_broadcast->combine(fx.msg, shares));
  }
}
BENCHMARK(BM_ThresholdSigCombine)->Arg(512)->Arg(1024);

void BM_CoinRelease(benchmark::State& state) {
  Fixture& fx = fixture(1024, crypto::SigImpl::kMultiSig);
  std::uint64_t i = 0;
  WorkTracker wt(state);
  for (auto _ : state) {
    Writer w;
    w.u64(i++);
    benchmark::DoNotOptimize(fx.deal.parties[0].coin->release(w.data()));
  }
}
BENCHMARK(BM_CoinRelease);

void BM_CoinVerifyAndAssemble(benchmark::State& state) {
  Fixture& fx = fixture(1024, crypto::SigImpl::kMultiSig);
  const Bytes name = to_bytes("bench coin");
  std::vector<std::pair<int, Bytes>> shares;
  for (int i = 0; i < 2; ++i) {
    shares.emplace_back(
        i, fx.deal.parties[static_cast<std::size_t>(i)].coin->release(name));
  }
  WorkTracker wt(state);
  for (auto _ : state) {
    bool ok = fx.deal.parties[2].coin->verify_share(name, 0, shares[0].second);
    benchmark::DoNotOptimize(ok);
    benchmark::DoNotOptimize(
        fx.deal.parties[2].coin->assemble_bit(name, shares));
  }
}
BENCHMARK(BM_CoinVerifyAndAssemble);

void BM_Tdh2Encrypt(benchmark::State& state) {
  Fixture& fx = fixture(1024, crypto::SigImpl::kMultiSig);
  Rng rng(7);
  WorkTracker wt(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.deal.encryption_key->encrypt(fx.msg, to_bytes("L"), rng));
  }
}
BENCHMARK(BM_Tdh2Encrypt);

void BM_Tdh2DecryptShare(benchmark::State& state) {
  Fixture& fx = fixture(1024, crypto::SigImpl::kMultiSig);
  Rng rng(8);
  const Bytes ct = fx.deal.encryption_key->encrypt(fx.msg, to_bytes("L"), rng);
  WorkTracker wt(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.deal.parties[0].cipher->decrypt_share(ct));
  }
}
BENCHMARK(BM_Tdh2DecryptShare);

void BM_Tdh2Combine(benchmark::State& state) {
  Fixture& fx = fixture(1024, crypto::SigImpl::kMultiSig);
  Rng rng(9);
  const Bytes ct = fx.deal.encryption_key->encrypt(fx.msg, to_bytes("L"), rng);
  std::vector<std::pair<int, Bytes>> shares;
  for (int i = 0; i < 2; ++i) {
    shares.emplace_back(
        i,
        *fx.deal.parties[static_cast<std::size_t>(i)].cipher->decrypt_share(ct));
  }
  WorkTracker wt(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.deal.parties[3].cipher->combine(ct, shares));
  }
}
BENCHMARK(BM_Tdh2Combine);

// --- Before/after comparison: seed op sequences vs fast paths ------------

struct DleqBench {
  crypto::DlogGroup grp;  // private copy: its precomputation cache is ours
  BigInt vk;              // h1 = g^x, a long-lived verification key
  BigInt base;            // g2 = H2G(name), fresh per coin
  BigInt gi;              // h2 = base^x, fresh per share
  crypto::DleqProof proof;
  BigInt c;               // the proof's recomputed Fiat–Shamir challenge
  BigInt cofactor;        // (p-1)/q, the hash-to-group projection exponent

  DleqBench()
      : grp(fixture(1024, crypto::SigImpl::kMultiSig)
                .deal.encryption_key->group) {
    Rng rng(0xd1e9);
    const BigInt x = grp.random_exponent(rng);
    vk = grp.exp(grp.g(), x);
    base = grp.hash_to_group(to_bytes("bench dleq base"));
    gi = grp.exp(base, x);
    proof = crypto::dleq_prove(grp, grp.g(), vk, base, gi, x, rng);
    Writer w;
    grp.g().write(w);
    vk.write(w);
    base.write(w);
    gi.write(w);
    proof.a1.write(w);
    proof.a2.write(w);
    c = grp.hash_to_exponent(w.data());
    cofactor = (grp.p() - BigInt{1}) / grp.q();
  }
};

DleqBench& dleq_bench() {
  static DleqBench b;
  return b;
}

// Seed-identical DLEQ verification: one plain exponentiation per base,
// explicit modular inverses, unmemoized membership checks.
bool seed_dleq_verify(const crypto::DlogGroup& grp, const BigInt& g1,
                      const BigInt& h1, const BigInt& g2, const BigInt& h2,
                      const crypto::DleqProof& pf) {
  if (pf.z.is_negative() || pf.z >= grp.q()) return false;
  if (!grp.is_member(h1) || !grp.is_member(h2)) return false;
  Writer w;
  g1.write(w);
  h1.write(w);
  g2.write(w);
  h2.write(w);
  pf.a1.write(w);
  pf.a2.write(w);
  const BigInt c = grp.hash_to_exponent(w.data());
  const BigInt v1 = grp.mul(grp.exp(g1, pf.z), grp.inv(grp.exp(h1, c)));
  const BigInt v2 = grp.mul(grp.exp(g2, pf.z), grp.inv(grp.exp(h2, c)));
  return v1 == pf.a1 && v2 == pf.a2;
}

void BM_SingleExp(benchmark::State& state) {
  DleqBench& b = dleq_bench();
  Rng rng(11);
  const BigInt e = b.grp.random_exponent(rng);
  WorkTracker wt(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.grp.exp(b.grp.g(), e));
  }
}
BENCHMARK(BM_SingleExp);

void BM_SingleExpFixedBase(benchmark::State& state) {
  DleqBench& b = dleq_bench();
  Rng rng(12);
  const BigInt e = b.grp.random_exponent(rng);
  benchmark::DoNotOptimize(b.grp.exp_cached(b.grp.g(), e));  // warm the comb
  WorkTracker wt(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.grp.exp_cached(b.grp.g(), e));
  }
}
BENCHMARK(BM_SingleExpFixedBase);

void BM_DualExpSeed(benchmark::State& state) {
  DleqBench& b = dleq_bench();
  WorkTracker wt(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        b.grp.mul(b.grp.exp(b.grp.g(), b.proof.z),
                  b.grp.inv(b.grp.exp(b.vk, b.c))));
  }
}
BENCHMARK(BM_DualExpSeed);

void BM_DualExpFast(benchmark::State& state) {
  DleqBench& b = dleq_bench();
  benchmark::DoNotOptimize(
      b.grp.dual_exp_neg(b.grp.g(), b.proof.z, true, b.vk, b.c, true));
  WorkTracker wt(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        b.grp.dual_exp_neg(b.grp.g(), b.proof.z, true, b.vk, b.c, true));
  }
}
BENCHMARK(BM_DualExpFast);

void BM_DleqVerifySeed(benchmark::State& state) {
  DleqBench& b = dleq_bench();
  WorkTracker wt(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        seed_dleq_verify(b.grp, b.grp.g(), b.vk, b.base, b.gi, b.proof));
  }
}
BENCHMARK(BM_DleqVerifySeed);

void BM_DleqVerifyFast(benchmark::State& state) {
  DleqBench& b = dleq_bench();
  const crypto::DleqHints hints{.g1_long_lived = true,
                                .h1_long_lived = true,
                                .g2_long_lived = false,
                                .h2_long_lived = false};
  benchmark::DoNotOptimize(
      crypto::dleq_verify(b.grp, b.grp.g(), b.vk, b.base, b.gi, b.proof,
                          hints));  // warm the combs
  WorkTracker wt(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::dleq_verify(b.grp, b.grp.g(), b.vk, b.base, b.gi, b.proof,
                            hints));
  }
}
BENCHMARK(BM_DleqVerifyFast);

void BM_CoinShareVerifySeed(benchmark::State& state) {
  // Seed coin-share verification = recompute H2G(name) from scratch (its
  // arithmetic core is the cofactor exponentiation) + a plain DLEQ verify.
  DleqBench& b = dleq_bench();
  const bignum::Montgomery mont(b.grp.p());
  WorkTracker wt(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mont.pow(b.base, b.cofactor));
    benchmark::DoNotOptimize(
        seed_dleq_verify(b.grp, b.grp.g(), b.vk, b.base, b.gi, b.proof));
  }
}
BENCHMARK(BM_CoinShareVerifySeed);

// --- Optimistic verification: eager per-share checks vs combine-first ----

void BM_ThresholdCombine_Eager(benchmark::State& state) {
  // Pre-optimistic operation sequence: every share in the chosen set is
  // verified individually before the combine (what the protocols did when
  // each arriving echo-share was checked on receipt).
  Fixture& fx = fixture(static_cast<int>(state.range(0)),
                        crypto::SigImpl::kThresholdRsa);
  const auto& sig = *fx.deal.parties[0].sig_broadcast;
  std::vector<std::pair<int, Bytes>> shares;
  for (int i = 0; i < sig.k(); ++i) {
    shares.emplace_back(
        i, fx.deal.parties[static_cast<std::size_t>(i)].sig_broadcast
               ->sign_share(fx.msg));
  }
  WorkTracker wt(state);
  for (auto _ : state) {
    for (const auto& [i, share] : shares) {
      benchmark::DoNotOptimize(sig.verify_share(fx.msg, i, share));
    }
    benchmark::DoNotOptimize(sig.combine(fx.msg, shares));
  }
}
BENCHMARK(BM_ThresholdCombine_Eager)->Arg(512)->Arg(1024);

void BM_ThresholdCombine_Optimistic(benchmark::State& state) {
  // Combine-first fast path on the fault-free trace: one unverified
  // combine plus one public-exponent verification of the result — the
  // k per-share proof checks disappear.
  Fixture& fx = fixture(static_cast<int>(state.range(0)),
                        crypto::SigImpl::kThresholdRsa);
  const auto& sig = *fx.deal.parties[0].sig_broadcast;
  std::vector<std::pair<int, Bytes>> shares;
  for (int i = 0; i < sig.k(); ++i) {
    shares.emplace_back(
        i, fx.deal.parties[static_cast<std::size_t>(i)].sig_broadcast
               ->sign_share(fx.msg));
  }
  WorkTracker wt(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sig.combine_checked(fx.msg, shares));
  }
}
BENCHMARK(BM_ThresholdCombine_Optimistic)->Arg(512)->Arg(1024);

void BM_CoinAssemble_Eager(benchmark::State& state) {
  // Pre-optimistic coin round at a node: all n released shares arrive and
  // each is verified on receipt (the node cannot know which k will land
  // first), then the first k assemble the bit.
  Fixture& fx = fixture(1024, crypto::SigImpl::kMultiSig);
  const Bytes name = to_bytes("bench coin assemble");
  const auto& coin = *fx.deal.parties[0].coin;
  std::vector<std::pair<int, Bytes>> shares;
  for (int i = 0; i < 4; ++i) {
    shares.emplace_back(
        i, fx.deal.parties[static_cast<std::size_t>(i)].coin->release(name));
  }
  const std::vector<std::pair<int, Bytes>> first_k(
      shares.begin(), shares.begin() + coin.k());
  benchmark::DoNotOptimize(coin.verify_share(name, 0, shares[0].second));
  WorkTracker wt(state);
  for (auto _ : state) {
    for (const auto& [i, share] : shares) {
      benchmark::DoNotOptimize(coin.verify_share(name, i, share));
    }
    benchmark::DoNotOptimize(coin.assemble_bit(name, first_k));
  }
}
BENCHMARK(BM_CoinAssemble_Eager);

void BM_CoinAssemble_Optimistic(benchmark::State& state) {
  // Batch-first fast path: one RLC DLEQ check over the k chosen shares
  // plus one batched membership exponentiation, then the assemble; the
  // n-k surplus shares are never verified at all.
  Fixture& fx = fixture(1024, crypto::SigImpl::kMultiSig);
  const Bytes name = to_bytes("bench coin assemble");
  const auto& coin = *fx.deal.parties[0].coin;
  std::vector<std::pair<int, Bytes>> shares;
  for (int i = 0; i < 4; ++i) {
    shares.emplace_back(
        i, fx.deal.parties[static_cast<std::size_t>(i)].coin->release(name));
  }
  benchmark::DoNotOptimize(coin.assemble_bit_checked(name, shares));
  WorkTracker wt(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(coin.assemble_bit_checked(name, shares));
  }
}
BENCHMARK(BM_CoinAssemble_Optimistic);

void BM_BatchDleqVerify(benchmark::State& state) {
  // RLC batch verification of m proofs sharing both bases (the coin /
  // TDH2 shape), batched membership — the amortized cost per proof is
  // what falls as m grows.
  DleqBench& b = dleq_bench();
  const auto m = static_cast<std::size_t>(state.range(0));
  Rng rng(0xba7c);
  std::vector<crypto::DleqStatement> stmts;
  stmts.reserve(m);
  for (std::size_t j = 0; j < m; ++j) {
    const BigInt x = b.grp.random_exponent(rng);
    crypto::DleqStatement s;
    s.g1 = b.grp.g();
    s.h1 = b.grp.exp(b.grp.g(), x);
    s.g2 = b.base;
    s.h2 = b.grp.exp(b.base, x);
    s.proof = crypto::dleq_prove(b.grp, s.g1, s.h1, s.g2, s.h2, x, rng);
    stmts.push_back(std::move(s));
  }
  benchmark::DoNotOptimize(crypto::dleq_batch_verify(
      b.grp, stmts, rng, {}, crypto::BatchMembership::kBatched));
  WorkTracker wt(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::dleq_batch_verify(
        b.grp, stmts, rng, {}, crypto::BatchMembership::kBatched));
  }
}
BENCHMARK(BM_BatchDleqVerify)->Arg(4)->Arg(16)->Arg(64);

void BM_CoinShareVerifyFast(benchmark::State& state) {
  Fixture& fx = fixture(1024, crypto::SigImpl::kMultiSig);
  const Bytes name = to_bytes("bench coin fastpath");
  const Bytes share = fx.deal.parties[0].coin->release(name);
  benchmark::DoNotOptimize(
      fx.deal.parties[2].coin->verify_share(name, 0, share));  // warm caches
  WorkTracker wt(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.deal.parties[2].coin->verify_share(name, 0, share));
  }
}
BENCHMARK(BM_CoinShareVerifyFast);

}  // namespace

BENCHMARK_MAIN();
