// End-to-end deliveries/sec benchmark for the throughput-mode channels
// (DESIGN.md §11): proposer batching (--batch-count/--batch-bytes) and
// pipelined rounds (--pipeline-depth) against the seed configuration
// (batch=1, depth=1).
//
// The driver runs the discrete-event simulator, so results are virtual
// time: deterministic per seed, comparable across configurations, and
// independent of host load.  Two load models:
//
//   --mode open    senders pre-fill their queues at t = 0 ("maximum
//                  capacity", the paper's §4 workload); delivery latency
//                  then includes queueing delay.
//   --mode closed  each sender keeps --window requests outstanding and
//                  issues the next one when it observes its own delivery
//                  — the client-visible latency shape.
//
// --chaos adds a seeded random extra delay per message (cross-link
// reordering; per-link FIFO is preserved, as over real links), the
// in-simulator analog of the cluster runner's chaos proxy.
//
// Output: one JSON object on stdout; scripts/bench_e2e.sh distills
// BENCH_e2e.json from a set of runs and enforces the >=3x gate.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "sim/topologies.hpp"

using namespace sintra;

namespace {

struct Options {
  int n = 4;
  int t = 1;
  int batch_count = 1;
  std::size_t batch_bytes = 64 * 1024;
  int pipeline_depth = 1;
  int senders = 3;
  int messages = 240;
  int payload_bytes = 64;
  std::string topology = "lan";  // lan | wan | uniform
  std::string mode = "open";     // open | closed
  int window = 8;                // closed-loop outstanding per sender
  std::uint64_t seed = 1;
  std::string channel = "atomic";  // atomic | secure
  std::string label;
  bool chaos = false;
  double chaos_extra_ms = 40.0;
  int rsa_bits = 512;  // 1024 = paper-faithful (slower to deal and run)
  double deadline_ms = 1e9;
};

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) throw std::runtime_error(arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--batch-count") o.batch_count = std::stoi(value());
    else if (arg == "--batch-bytes") o.batch_bytes = std::stoull(value());
    else if (arg == "--pipeline-depth") o.pipeline_depth = std::stoi(value());
    else if (arg == "--senders") o.senders = std::stoi(value());
    else if (arg == "--messages") o.messages = std::stoi(value());
    else if (arg == "--payload-bytes") o.payload_bytes = std::stoi(value());
    else if (arg == "--topology") o.topology = value();
    else if (arg == "--mode") o.mode = value();
    else if (arg == "--window") o.window = std::stoi(value());
    else if (arg == "--seed") o.seed = std::stoull(value());
    else if (arg == "--channel") o.channel = value();
    else if (arg == "--label") o.label = value();
    else if (arg == "--chaos") o.chaos = true;
    else if (arg == "--chaos-extra-ms") o.chaos_extra_ms = std::stod(value());
    else if (arg == "--rsa-bits") o.rsa_bits = std::stoi(value());
    else if (arg == "--n") o.n = std::stoi(value());
    else if (arg == "--deadline-ms") o.deadline_ms = std::stod(value());
    else throw std::runtime_error("unknown option " + arg);
  }
  if (o.label.empty()) {
    o.label = o.topology + "-b" + std::to_string(o.batch_count) + "-d" +
              std::to_string(o.pipeline_depth);
  }
  return o;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options o = parse(argc, argv);

    sim::Topology topology;
    if (o.topology == "lan") topology = sim::lan_setup();
    else if (o.topology == "wan") topology = sim::internet_setup();
    else if (o.topology == "uniform") topology = sim::uniform_setup(o.n);
    else throw std::runtime_error("unknown topology " + o.topology);
    if (o.topology != "uniform" && o.n != topology.n()) {
      throw std::runtime_error("--n only applies to --topology uniform");
    }

    crypto::DealerConfig dealer_cfg = bench::paper_dealer_config(
        topology.n(), o.t, o.rsa_bits);
    if (o.rsa_bits < 1024) {
      // Fast mode for CI: smaller discrete-log group to match.
      dealer_cfg.dl_p_bits = 256;
      dealer_cfg.dl_q_bits = 96;
    }
    const crypto::Deal deal = crypto::run_dealer(dealer_cfg);

    sim::Simulator sim(topology, deal, o.seed);
    sim.per_message_cpu_ms = bench::default_overhead_ms();
    if (o.chaos) {
      // Seeded extra delay: reorders messages across links (per-link FIFO
      // is preserved by the simulator, as over a real reliable link).
      sim.delay_hook = [state = o.seed ^ 0x9e3779b97f4a7c15ULL,
                        extra = o.chaos_extra_ms](int, int,
                                                  double) mutable {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        return extra * static_cast<double>((state >> 33) & 0xffff) / 65535.0;
      };
    }

    core::AtomicChannel::Config cfg;
    cfg.max_batch_count = o.batch_count;
    cfg.max_batch_bytes = o.batch_bytes;
    cfg.pipeline_depth = o.pipeline_depth;

    const int n = sim.n();
    std::vector<std::unique_ptr<core::AtomicChannel>> atomic;
    std::vector<std::unique_ptr<core::SecureAtomicChannel>> secure;

    // Per-payload send timestamps, keyed by the payload header; the
    // measure node (P0, as in §4) records delivery latency against them.
    std::map<std::string, double> send_ms;
    std::vector<double> latencies;
    std::vector<double> delivery_times;
    std::size_t delivered_at_measure = 0;

    const std::string pad(
        static_cast<std::size_t>(std::max(0, o.payload_bytes)), '.');
    auto payload_of = [&](int sender, int k) {
      std::string s = "c" + std::to_string(sender) + ":" + std::to_string(k);
      if (s.size() < pad.size()) s += pad.substr(s.size());
      return s;
    };
    auto header_of = [](const Bytes& payload) {
      const std::string s = to_string(payload);
      const auto dot = s.find('.');
      return dot == std::string::npos ? s : s.substr(0, dot);
    };

    // Closed-loop state.
    std::vector<int> next_idx(static_cast<std::size_t>(n), 0);
    const int per_sender = (o.messages + o.senders - 1) / o.senders;

    auto do_send = [&](int sender) {
      const int k = next_idx[static_cast<std::size_t>(sender)]++;
      const std::string p = payload_of(sender, k);
      send_ms.emplace(header_of(to_bytes(p)), sim.now_ms());
      if (o.channel == "secure") {
        secure[static_cast<std::size_t>(sender)]->send(to_bytes(p));
      } else {
        atomic[static_cast<std::size_t>(sender)]->send(to_bytes(p));
      }
    };

    auto on_measure_delivery = [&](const Bytes& payload) {
      const double now = sim.now_ms();
      ++delivered_at_measure;
      delivery_times.push_back(now);
      const auto it = send_ms.find(header_of(payload));
      if (it != send_ms.end()) latencies.push_back(now - it->second);
    };

    for (int i = 0; i < n; ++i) {
      auto& env = sim.node(i);
      auto& disp = env.dispatcher();
      const int sender_slot = i;  // sender s uses channel instance s
      auto on_deliver = [&, sender_slot](const Bytes& payload) {
        if (sender_slot == 0) on_measure_delivery(payload);
        if (o.mode == "closed" && sender_slot < o.senders) {
          // Closed loop: a sender issues its next request when it sees
          // its own previous one come back.
          const std::string h = header_of(payload);
          if (h.rfind("c" + std::to_string(sender_slot) + ":", 0) == 0 &&
              next_idx[static_cast<std::size_t>(sender_slot)] < per_sender) {
            do_send(sender_slot);
          }
        }
      };
      if (o.channel == "secure") {
        auto ch = std::make_unique<core::SecureAtomicChannel>(env, disp,
                                                              "bench", cfg);
        ch->set_deliver_callback(on_deliver);
        secure.push_back(std::move(ch));
        atomic.push_back(nullptr);
      } else {
        auto ch =
            std::make_unique<core::AtomicChannel>(env, disp, "bench", cfg);
        ch->set_deliver_callback(
            [on_deliver](const Bytes& payload, core::PartyId) {
              on_deliver(payload);
            });
        atomic.push_back(std::move(ch));
        secure.push_back(nullptr);
      }
    }

    // Kick off the load.
    for (int s = 0; s < o.senders; ++s) {
      const int initial = o.mode == "closed"
                              ? std::min(o.window, per_sender)
                              : per_sender;
      sim.at(0.0, s, [&, s, initial] {
        for (int k = 0; k < initial; ++k) do_send(s);
      });
    }

    const int total = per_sender * o.senders;
    const bool completed = sim.run_until(
        [&] { return delivered_at_measure >= static_cast<std::size_t>(total); },
        o.deadline_ms);

    const double first = delivery_times.empty() ? 0.0 : delivery_times.front();
    const double last = delivery_times.empty() ? 0.0 : delivery_times.back();
    const double span_ms = last - first;
    const double dps =
        delivery_times.size() > 1 && span_ms > 0.0
            ? static_cast<double>(delivery_times.size() - 1) / span_ms * 1000.0
            : 0.0;
    const int rounds = o.channel == "secure"
                           ? -1
                           : atomic[0]->rounds_completed();

    std::printf(
        "{\"label\":\"%s\",\"config\":{\"topology\":\"%s\",\"channel\":\"%s\","
        "\"mode\":\"%s\",\"n\":%d,\"t\":%d,\"batch_count\":%d,"
        "\"batch_bytes\":%zu,\"pipeline_depth\":%d,\"senders\":%d,"
        "\"messages\":%d,\"payload_bytes\":%d,\"window\":%d,\"seed\":%llu,"
        "\"chaos\":%s,\"rsa_bits\":%d},"
        "\"completed\":%s,\"deliveries\":%zu,\"elapsed_virtual_ms\":%.3f,"
        "\"span_ms\":%.3f,\"deliveries_per_sec\":%.3f,"
        "\"p50_latency_ms\":%.3f,\"p99_latency_ms\":%.3f,"
        "\"mean_round_trip_rounds\":%d}\n",
        o.label.c_str(), o.topology.c_str(), o.channel.c_str(),
        o.mode.c_str(), n, o.t, o.batch_count, o.batch_bytes,
        o.pipeline_depth, o.senders, o.messages, o.payload_bytes, o.window,
        static_cast<unsigned long long>(o.seed), o.chaos ? "true" : "false",
        o.rsa_bits, completed ? "true" : "false", delivery_times.size(),
        sim.now_ms(), span_ms, dps, percentile(latencies, 0.50),
        percentile(latencies, 0.99), rounds);
    return completed ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
