// Message-complexity verification — the paper's analytical claims,
// measured:
//   §2.2: reliable broadcast has "quadratic communication complexity",
//         consistent broadcast "a communication cost that is linear in n";
//   §2.3: binary agreement "involves a quadratic expected number of
//         messages";
//   §2.4: multi-valued agreement "incurs an expected communication cost
//         of O(t n^2) messages".
//
// Each primitive runs in isolation at n = 4, 7, 10, 13 (t = floor((n-1)/3))
// and the per-instance network message count is reported together with
// the normalization that should flatten if the claim holds.
#include <cstdio>

#include "bench/common.hpp"
#include "core/agreement/array_agreement.hpp"
#include "core/agreement/binary_agreement.hpp"
#include "core/broadcast/consistent_broadcast.hpp"
#include "core/broadcast/reliable_broadcast.hpp"

using namespace sintra;
using namespace sintra::bench;

namespace {

crypto::Deal deal_for(int n, int t) {
  crypto::DealerConfig cfg;
  cfg.n = n;
  cfg.t = t;
  cfg.rsa_bits = 512;  // message *counts* are key-size independent
  cfg.dl_p_bits = 256;
  cfg.dl_q_bits = 96;
  return crypto::run_dealer(cfg);
}

template <typename Run>
std::uint64_t count_messages(int n, int t, Run run) {
  const crypto::Deal deal = deal_for(n, t);
  sim::Simulator sim(sim::uniform_setup(n, 30.0, 1.0, 0.1), deal, 1);
  sim.per_message_cpu_ms = 0.01;
  run(sim, n, t);
  return sim.messages_sent();
}

}  // namespace

int main() {
  std::printf("Message complexity per protocol instance (t = (n-1)/3)\n\n");
  std::printf("%4s %4s | %9s %8s | %9s %8s | %9s %8s | %9s %9s\n", "n", "t",
              "reliable", "/n^2", "consist", "/n", "binary BA", "/n^2",
              "MVBA", "/n^2");

  for (int n : {4, 7, 10, 13}) {
    const int t = (n - 1) / 3;

    const std::uint64_t rbc =
        count_messages(n, t, [](sim::Simulator& sim, int n_, int) {
          std::vector<std::unique_ptr<core::ReliableBroadcast>> ps;
          for (int i = 0; i < n_; ++i) {
            ps.push_back(std::make_unique<core::ReliableBroadcast>(
                sim.node(i), sim.node(i).dispatcher(), "rbc", 0));
          }
          sim.at(0.0, 0, [&] { ps[0]->send(to_bytes("payload")); });
          sim.run_until(
              [&] {
                return std::all_of(ps.begin(), ps.end(), [](const auto& p) {
                  return p->delivered().has_value();
                });
              },
              1e7);
        });

    const std::uint64_t cbc =
        count_messages(n, t, [](sim::Simulator& sim, int n_, int) {
          std::vector<std::unique_ptr<core::ConsistentBroadcast>> ps;
          for (int i = 0; i < n_; ++i) {
            ps.push_back(std::make_unique<core::ConsistentBroadcast>(
                sim.node(i), sim.node(i).dispatcher(), "cbc", 0));
          }
          sim.at(0.0, 0, [&] { ps[0]->send(to_bytes("payload")); });
          sim.run_until(
              [&] {
                return std::all_of(ps.begin(), ps.end(), [](const auto& p) {
                  return p->delivered().has_value();
                });
              },
              1e7);
        });

    const std::uint64_t ba =
        count_messages(n, t, [](sim::Simulator& sim, int n_, int) {
          std::vector<std::unique_ptr<core::BinaryAgreement>> ps;
          for (int i = 0; i < n_; ++i) {
            ps.push_back(std::make_unique<core::BinaryAgreement>(
                sim.node(i), sim.node(i).dispatcher(), "ba"));
          }
          for (int i = 0; i < n_; ++i) {
            sim.at(0.0, i, [&, i] { ps[static_cast<std::size_t>(i)]->propose(i % 2 == 0); });
          }
          sim.run_until(
              [&] {
                return std::all_of(ps.begin(), ps.end(), [](const auto& p) {
                  return p->decided().has_value();
                });
              },
              1e7);
        });

    const std::uint64_t mvba =
        count_messages(n, t, [](sim::Simulator& sim, int n_, int) {
          std::vector<std::unique_ptr<core::ArrayAgreement>> ps;
          for (int i = 0; i < n_; ++i) {
            ps.push_back(std::make_unique<core::ArrayAgreement>(
                sim.node(i), sim.node(i).dispatcher(), "mvba",
                [](BytesView) { return true; }));
          }
          for (int i = 0; i < n_; ++i) {
            sim.at(0.0, i, [&, i] {
              ps[static_cast<std::size_t>(i)]->propose(
                  to_bytes("v" + std::to_string(i)));
            });
          }
          sim.run_until(
              [&] {
                return std::all_of(ps.begin(), ps.end(), [](const auto& p) {
                  return p->decided().has_value();
                });
              },
              1e7);
        });

    const double n2 = static_cast<double>(n) * n;
    std::printf("%4d %4d | %9llu %8.1f | %9llu %8.1f | %9llu %8.1f | %9llu "
                "%9.1f\n",
                n, t, static_cast<unsigned long long>(rbc), rbc / n2,
                static_cast<unsigned long long>(cbc),
                static_cast<double>(cbc) / n,
                static_cast<unsigned long long>(ba), ba / n2,
                static_cast<unsigned long long>(mvba), mvba / n2);
    std::fflush(stdout);
  }

  std::printf("\nclaims hold if the normalized columns stay ~flat as n "
              "grows: reliable/n^2, consistent/n, binary/n^2 "
              "(paper §2.2-2.3).\nMVBA under this benign schedule decides "
              "in one loop iteration, so it tracks n^2; the paper's O(t n^2) "
              "is the bound over the adversarial O(t) loop iterations "
              "(§2.4).\n");
  return 0;
}
