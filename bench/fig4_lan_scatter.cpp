// Figure 4 reproduction: "Delivery time per message for AtomicChannel on
// a LAN" — three senders with different CPU speeds (P0/Linux, P2/AIX,
// P3/Win2k) send 1000 messages concurrently; the measurement is taken on
// P0.  The paper's striking features, which this harness quantifies:
//
//   1. two bands of data points: one at ~0 s (the second message of each
//      round's batch is output immediately after the first) and one at
//      the per-round time (0.5-1 s in the paper);
//   2. delivery dominated by the faster senders first — the slow Win2k
//      host's messages trail the run — because only messages that arrive
//      in time make it into a batch.
#include <cstdio>
#include <cstdlib>
#include <map>

#include "bench/common.hpp"

using namespace sintra;
using namespace sintra::bench;

int main(int argc, char** argv) {
  const int messages = argc > 1 ? std::atoi(argv[1]) : 500;
  const bool emit_points = argc > 2 && std::string(argv[2]) == "--points";

  const crypto::Deal deal = crypto::run_dealer(paper_dealer_config(4, 1));
  WorkloadOptions opt;
  opt.kind = ChannelKind::kAtomic;
  opt.senders = {0, 2, 3};  // P0/Linux, P2/AIX, P3/Win2k (P1 idle, as in §4.1)
  opt.total_messages = messages;
  opt.measure_node = 0;

  const WorkloadResult res = run_workload(sim::lan_setup(), deal, opt);
  if (!res.completed) {
    std::printf("workload did not complete\n");
    return 1;
  }

  std::printf("Figure 4: AtomicChannel on the LAN, senders {P0,P2,P3}, %d "
              "messages, measured on P0\n\n", messages);
  if (emit_points) {
    std::printf("# delivery_number  sec_per_delivery  sender\n");
  }

  // Band statistics: inter-delivery gap per point, split at 50 ms.
  int band_zero = 0, band_round = 0;
  double round_band_sum = 0;
  std::map<int, int> per_sender;
  std::map<int, int> last_third_senders;
  double prev = res.deliveries.front().time_ms;
  for (std::size_t i = 0; i < res.deliveries.size(); ++i) {
    const auto& d = res.deliveries[i];
    const double gap_s = (d.time_ms - prev) / 1000.0;
    prev = d.time_ms;
    if (emit_points) {
      std::printf("%6zu  %8.3f  P%d\n", i, gap_s, d.origin);
    }
    if (i > 0) {
      if (gap_s < 0.05) {
        ++band_zero;
      } else {
        ++band_round;
        round_band_sum += gap_s;
      }
    }
    ++per_sender[d.origin];
    if (i >= res.deliveries.size() * 2 / 3) ++last_third_senders[d.origin];
  }

  std::printf("band at ~0 s            : %d points (%.0f%%)\n", band_zero,
              100.0 * band_zero / static_cast<double>(messages - 1));
  std::printf("round band              : %d points, mean %.2f s/delivery\n",
              band_round, round_band_sum / band_round);
  std::printf("paper: two bands, at 0 s and at 0.5-1 s\n\n");

  std::printf("deliveries per sender   :");
  for (const auto& [s, cnt] : per_sender) std::printf("  P%d=%d", s, cnt);
  std::printf("\nlast third of the run   :");
  for (const auto& [s, cnt] : last_third_senders)
    std::printf("  P%d=%d", s, cnt);
  std::printf("\npaper: fast P0 finishes first; the last ~50 deliveries "
              "come only from the slow P3/Win2k\n");

  std::printf("\ntotal virtual time %.1f s for %d deliveries (%.2f "
              "s/delivery overall)\n",
              res.total_virtual_ms / 1000.0, messages,
              res.total_virtual_ms / 1000.0 / messages);
  return 0;
}
