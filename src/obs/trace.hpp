// Structured event tracing: typed records for message send/recv, protocol
// round starts and state transitions, coin releases, decisions and
// deliveries.
//
// This supersedes and absorbs the simulator's MessageTrace (sim/trace.hpp
// is now an alias header): the same trace type serves the simulator —
// where experiments attach it per-run and aggregate offline, as the
// paper's §4.2 does for "protocol overhead and network delays" — and the
// real-network node, where `sintra_node --trace-out` streams events as
// JSON lines.
//
// Cost discipline: instrumentation sites call obs::emit(), which is one
// relaxed pointer load plus a branch when no sink is attached — no string
// construction, no allocation.  Attaching a sink is what opts in to the
// cost.
#pragma once

#include <atomic>
#include <cstdio>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace sintra::obs {

enum class EventType : std::uint8_t {
  kSend,        // frame handed to the transport
  kRecv,        // frame dispatched to a protocol instance
  kRoundStart,  // a channel/agreement round began (value = round)
  kTransition,  // protocol state transition (detail = state name)
  kCoinRelease, // threshold-coin share released (value = round)
  kDecide,      // agreement decided (value = bit, detail = "r<round>")
  kDeliver,     // atomic broadcast delivered a payload
  kPark,        // a decided batch parked awaiting earlier rounds (pipelining)
  kShed,        // client gateway refused a request (value = client id)
};

/// Stable lower-case name used in the JSON-lines output.
const char* event_type_name(EventType type);

struct Event {
  // Field names/types are load-bearing: pre-obs code (tests, benches)
  // consumed sim::TraceEntry{time_ms, from, to, pid, bytes} directly.
  double time_ms = 0;
  int from = -1;
  int to = -1;  // -1 = broadcast / not applicable
  std::string pid;
  std::size_t bytes = 0;
  EventType type = EventType::kSend;
  double value = 0;    // round number, decided bit, batch size, ...
  std::string detail;  // free-form: state name, marker kind, ...
};

/// Recorder for Events.  Not thread-safe by itself — each environment
/// owns its sink on one thread (the simulator loop or the epoll loop).
class EventTrace {
 public:
  void record(Event e);

  /// Back-compat with sim::MessageTrace::record — records a kSend.
  void record(double time_ms, int from, int to, std::string pid,
              std::size_t bytes) {
    Event e;
    e.time_ms = time_ms;
    e.from = from;
    e.to = to;
    e.pid = std::move(pid);
    e.bytes = bytes;
    record(std::move(e));
  }

  [[nodiscard]] const std::vector<Event>& entries() const { return entries_; }

  struct Totals {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
  };

  /// Aggregates *send* events by a caller-supplied classifier (e.g.
  /// obs::layer_of to group instance pids by protocol layer).
  template <typename Classify>
  [[nodiscard]] std::map<std::string, Totals> by_class(
      Classify classify) const {
    std::map<std::string, Totals> out;
    for (const Event& e : entries_) {
      if (e.type != EventType::kSend) continue;
      Totals& t = out[classify(e.pid)];
      ++t.messages;
      t.bytes += e.bytes;
    }
    return out;
  }

  void clear() { entries_.clear(); }

  /// Write-through sink: every record() is appended to `stream` as one
  /// JSON object per line (schema in docs/OBSERVABILITY.md).  Not owned.
  void set_stream(std::FILE* stream) { stream_ = stream; }

  /// When false, events are streamed (or dropped) without being retained
  /// in memory — the right mode for long-lived nodes.  Default true.
  void set_retain(bool retain) { retain_ = retain; }

 private:
  std::vector<Event> entries_;
  std::FILE* stream_ = nullptr;
  bool retain_ = true;
};

/// Process-default trace sink.  Null (the default) means tracing is off
/// and emit() is a pointer load + branch.
EventTrace* trace_sink();
void set_trace_sink(EventTrace* sink);

namespace detail {
extern std::atomic<EventTrace*> g_trace_sink;
}

/// Emits an event to the process sink, if one is attached.  The pid and
/// detail are only materialized into strings past the null check.
inline void emit(EventType type, double time_ms, int from, int to,
                 std::string_view pid, std::size_t bytes = 0,
                 double value = 0.0, std::string_view detail = {}) {
  EventTrace* sink = detail::g_trace_sink.load(std::memory_order_relaxed);
  if (!sink) return;
  Event e;
  e.time_ms = time_ms;
  e.from = from;
  e.to = to;
  e.pid = std::string(pid);
  e.bytes = bytes;
  e.type = type;
  e.value = value;
  e.detail = std::string(detail);
  sink->record(std::move(e));
}

/// Collapses digit runs in a pid to '*', mapping unbounded per-instance
/// pids onto a bounded set of protocol-layer labels:
///   "cluster.atomic.r3.cb.2" -> "cluster.atomic.r*.cb.*"
std::string layer_of(std::string_view pid);

}  // namespace sintra::obs
