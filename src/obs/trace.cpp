#include "obs/trace.hpp"

#include <cctype>

namespace sintra::obs {

const char* event_type_name(EventType type) {
  switch (type) {
    case EventType::kSend: return "send";
    case EventType::kRecv: return "recv";
    case EventType::kRoundStart: return "round_start";
    case EventType::kTransition: return "transition";
    case EventType::kCoinRelease: return "coin_release";
    case EventType::kDecide: return "decide";
    case EventType::kDeliver: return "deliver";
    case EventType::kPark: return "park";
    case EventType::kShed: return "shed";
  }
  return "unknown";
}

namespace detail {
std::atomic<EventTrace*> g_trace_sink{nullptr};
}

EventTrace* trace_sink() {
  return detail::g_trace_sink.load(std::memory_order_relaxed);
}

void set_trace_sink(EventTrace* sink) {
  detail::g_trace_sink.store(sink, std::memory_order_relaxed);
}

namespace {

void stream_escaped(std::FILE* f, std::string_view s) {
  std::fputc('"', f);
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      std::fputc('\\', f);
      std::fputc(c, f);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      std::fprintf(f, "\\u%04x", c);
    } else {
      std::fputc(c, f);
    }
  }
  std::fputc('"', f);
}

}  // namespace

void EventTrace::record(Event e) {
  if (stream_ != nullptr) {
    std::fprintf(stream_, "{\"t\":%.3f,\"type\":\"%s\",\"from\":%d", e.time_ms,
                 event_type_name(e.type), e.from);
    if (e.to >= 0) std::fprintf(stream_, ",\"to\":%d", e.to);
    std::fputs(",\"pid\":", stream_);
    stream_escaped(stream_, e.pid);
    if (e.bytes != 0) {
      std::fprintf(stream_, ",\"bytes\":%zu", e.bytes);
    }
    if (e.value != 0.0) std::fprintf(stream_, ",\"value\":%g", e.value);
    if (!e.detail.empty()) {
      std::fputs(",\"detail\":", stream_);
      stream_escaped(stream_, e.detail);
    }
    std::fputs("}\n", stream_);
  }
  if (retain_) entries_.push_back(std::move(e));
}

std::string layer_of(std::string_view pid) {
  std::string out;
  out.reserve(pid.size());
  bool in_digits = false;
  for (const char c : pid) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      if (!in_digits) out += '*';
      in_digits = true;
    } else {
      out += c;
      in_digits = false;
    }
  }
  return out;
}

}  // namespace sintra::obs
