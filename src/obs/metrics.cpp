#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace sintra::obs {

Labels party_labels(int party) {
  return {{"party", std::to_string(party)}};
}

Labels party_layer_labels(int party, std::string_view layer) {
  // Key order ("layer" < "party") matches the sorted registration order.
  return {{"layer", std::string(layer)}, {"party", std::to_string(party)}};
}

int Histogram::bucket_of(double v) {
  const std::uint64_t scaled = to_milli(v);
  if (scaled == 0) return 0;
  const int width = std::bit_width(scaled);  // in [1, 64]
  return std::min(width, kBuckets - 1);
}

double Histogram::bucket_upper(int i) {
  return std::ldexp(1.0, i) / 1000.0;  // 2^i thousandths of the unit
}

MetricsRegistry::Key MetricsRegistry::make_key(std::string_view name,
                                               Labels labels) {
  std::sort(labels.begin(), labels.end());
  return Key{std::string(name), std::move(labels)};
}

Counter& MetricsRegistry::counter(std::string_view name, Labels labels) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[make_key(name, std::move(labels))];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(std::string_view name, Labels labels) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[make_key(name, std::move(labels))];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(std::string_view name, Labels labels) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[make_key(name, std::move(labels))];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

Snapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  Snapshot out;
  for (const auto& [key, c] : counters_) {
    out.counters.push_back({key.name, key.labels, c->value()});
  }
  for (const auto& [key, g] : gauges_) {
    out.gauges.push_back({key.name, key.labels, g->value()});
  }
  for (const auto& [key, h] : histograms_) {
    Snapshot::HistogramValue v;
    v.name = key.name;
    v.labels = key.labels;
    v.count = h->count();
    v.sum = h->sum();
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t n = h->bucket(i);
      if (n != 0) v.buckets.emplace_back(i, n);
    }
    out.histograms.push_back(std::move(v));
  }
  return out;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, c] : counters_) c->value_.store(0);
  for (auto& [key, g] : gauges_) g->value_.store(0.0);
  for (auto& [key, h] : histograms_) {
    h->count_.store(0);
    h->sum_milli_.store(0);
    for (auto& b : h->buckets_) b.store(0);
  }
}

MetricsRegistry& registry() {
  static MetricsRegistry instance;
  return instance;
}

// --- JSON serialization -------------------------------------------------
//
// Hand-rolled on purpose: the container ships no JSON dependency, the
// schema is ours, and the parser only needs to read back what to_json()
// writes (plus tolerate whitespace).  scripts/aggregate_metrics.py uses
// Python's json module on the same files.

namespace {

void write_escaped(std::ostringstream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void write_labels(std::ostringstream& out, const Labels& labels) {
  out << '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i != 0) out << ',';
    write_escaped(out, labels[i].first);
    out << ':';
    write_escaped(out, labels[i].second);
  }
  out << '}';
}

void write_double(std::ostringstream& out, double v) {
  if (!std::isfinite(v)) {
    // Stats like srtt use -1 for "no sample yet"; NaN/inf never appear,
    // but degrade to null rather than emitting invalid JSON.
    out << "null";
    return;
  }
  // Shortest representation that parses back to exactly `v`: gauges
  // carry values like crypto.work_units that exceed %.6g precision.
  char buf[64];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  out << buf;
}

/// Minimal recursive-descent parser for the snapshot schema.
class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : text_(text) {}

  void expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      throw std::runtime_error(std::string("snapshot JSON: expected '") + c +
                               "' at offset " + std::to_string(pos_));
    }
    ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              throw std::runtime_error("snapshot JSON: truncated \\u escape");
            }
            const int code =
                std::stoi(std::string(text_.substr(pos_, 4)), nullptr, 16);
            pos_ += 4;
            c = static_cast<char>(code);  // schema only escapes ASCII
            break;
          }
          default: c = esc;
        }
      }
      out += c;
    }
    expect('"');
    return out;
  }

  double number() {
    const std::string tok = number_token();
    return tok.empty() ? 0.0 : std::stod(tok);
  }

  /// Exact for the full uint64 range: counters such as crypto.work can
  /// exceed 2^53 on large runs, where a round-trip through double would
  /// silently corrupt them.
  std::uint64_t integer() {
    const std::string tok = number_token();
    if (tok.empty()) return 0;  // null
    if (tok.find_first_of(".eE-") == std::string::npos) {
      return std::stoull(tok);
    }
    return static_cast<std::uint64_t>(std::stod(tok) + 0.5);
  }

  Labels labels() {
    Labels out;
    expect('{');
    if (consume('}')) return out;
    do {
      std::string key = string();
      expect(':');
      out.emplace_back(std::move(key), string());
    } while (consume(','));
    expect('}');
    return out;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

 private:
  /// Raw text of the next number, or "" for a null literal.
  std::string number_token() {
    skip_ws();
    if (text_.substr(pos_).starts_with("null")) {
      pos_ += 4;
      return {};
    }
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      throw std::runtime_error("snapshot JSON: expected number at offset " +
                               std::to_string(start));
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string Snapshot::to_json() const {
  std::ostringstream out;
  out << "{\"schema\":\"sintra.metrics.v1\",\n\"counters\":[";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    const auto& c = counters[i];
    out << (i == 0 ? "\n" : ",\n") << "{\"name\":";
    write_escaped(out, c.name);
    out << ",\"labels\":";
    write_labels(out, c.labels);
    out << ",\"value\":" << c.value << '}';
  }
  out << "],\n\"gauges\":[";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    const auto& g = gauges[i];
    out << (i == 0 ? "\n" : ",\n") << "{\"name\":";
    write_escaped(out, g.name);
    out << ",\"labels\":";
    write_labels(out, g.labels);
    out << ",\"value\":";
    write_double(out, g.value);
    out << '}';
  }
  out << "],\n\"histograms\":[";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const auto& h = histograms[i];
    out << (i == 0 ? "\n" : ",\n") << "{\"name\":";
    write_escaped(out, h.name);
    out << ",\"labels\":";
    write_labels(out, h.labels);
    out << ",\"count\":" << h.count << ",\"sum\":";
    write_double(out, h.sum);
    out << ",\"buckets\":[";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b != 0) out << ',';
      out << "{\"bucket\":" << h.buckets[b].first << ",\"le\":";
      write_double(out, Histogram::bucket_upper(h.buckets[b].first));
      out << ",\"count\":" << h.buckets[b].second << '}';
    }
    out << "]}";
  }
  out << "]}\n";
  return out.str();
}

Snapshot Snapshot::from_json(std::string_view json) {
  Snapshot out;
  JsonReader r(json);
  r.expect('{');
  do {
    const std::string section = r.string();
    r.expect(':');
    if (section == "schema") {
      const std::string schema = r.string();
      if (schema != "sintra.metrics.v1") {
        throw std::runtime_error("snapshot JSON: unknown schema " + schema);
      }
      continue;
    }
    r.expect('[');
    if (r.consume(']')) continue;
    do {
      r.expect('{');
      if (section == "counters") {
        CounterValue v;
        do {
          const std::string field = r.string();
          r.expect(':');
          if (field == "name") v.name = r.string();
          else if (field == "labels") v.labels = r.labels();
          else if (field == "value") v.value = r.integer();
          else throw std::runtime_error("snapshot JSON: field " + field);
        } while (r.consume(','));
        r.expect('}');
        out.counters.push_back(std::move(v));
      } else if (section == "gauges") {
        GaugeValue v;
        do {
          const std::string field = r.string();
          r.expect(':');
          if (field == "name") v.name = r.string();
          else if (field == "labels") v.labels = r.labels();
          else if (field == "value") v.value = r.number();
          else throw std::runtime_error("snapshot JSON: field " + field);
        } while (r.consume(','));
        r.expect('}');
        out.gauges.push_back(std::move(v));
      } else if (section == "histograms") {
        HistogramValue v;
        do {
          const std::string field = r.string();
          r.expect(':');
          if (field == "name") v.name = r.string();
          else if (field == "labels") v.labels = r.labels();
          else if (field == "count") v.count = r.integer();
          else if (field == "sum") v.sum = r.number();
          else if (field == "buckets") {
            r.expect('[');
            if (!r.consume(']')) {
              do {
                r.expect('{');
                int bucket = 0;
                std::uint64_t count = 0;
                do {
                  const std::string bf = r.string();
                  r.expect(':');
                  if (bf == "bucket") bucket = static_cast<int>(r.integer());
                  else if (bf == "le") (void)r.number();
                  else if (bf == "count") count = r.integer();
                  else throw std::runtime_error("snapshot JSON: field " + bf);
                } while (r.consume(','));
                r.expect('}');
                v.buckets.emplace_back(bucket, count);
              } while (r.consume(','));
              r.expect(']');
            }
          } else {
            throw std::runtime_error("snapshot JSON: field " + field);
          }
        } while (r.consume(','));
        r.expect('}');
        out.histograms.push_back(std::move(v));
      } else {
        throw std::runtime_error("snapshot JSON: section " + section);
      }
    } while (r.consume(','));
    r.expect(']');
  } while (r.consume(','));
  r.expect('}');
  return out;
}

}  // namespace sintra::obs
