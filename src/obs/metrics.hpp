// Process-wide metrics registry: counters, gauges and log-bucketed
// histograms, labeled by party / protocol layer / peer.
//
// The paper's §4.2 attributes wall-clock time to cryptography, protocol
// overhead and network delay; the simulator can do that attribution
// offline (sim/trace.hpp's predecessor), but the real-network path needs
// live, cheap introspection.  This registry is the single sink both
// transports feed: instrumentation sites resolve a handle once (mutex +
// map, at instance-construction time) and then update it with relaxed
// atomics — an increment on the hot path is one atomic add, and a
// histogram observation is two adds plus a bit-scan.  Nothing here ever
// influences protocol behaviour; it is measurement only.
//
// Snapshots serialize to a stable JSON schema (documented in
// docs/OBSERVABILITY.md) that scripts/aggregate_metrics.py merges across
// nodes, and parse back for round-trip tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sintra::obs {

/// Label set for one metric instance, e.g. {{"party","0"},{"layer","ac"}}.
/// Order-insensitive: labels are sorted by key on registration.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Convenience: the ubiquitous {"party", "<i>"} label set.
Labels party_labels(int party);
Labels party_layer_labels(int party, std::string_view layer);

/// Monotonic counter.  Updates are relaxed atomics; handles stay valid
/// for the registry's lifetime.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (link RTT estimates, backlog
/// sizes, work-counter exports).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  std::atomic<double> value_{0.0};
};

/// Log-bucketed histogram.  Bucket i counts observations v with
/// 1000*v in [2^(i-1), 2^i) — i.e. roughly-powers-of-two resolution with
/// the lowest bucket at one thousandth of the unit (1 µs when observing
/// milliseconds).  64 buckets cover ~18 decimal orders of magnitude, so
/// there is no configuration and merging across nodes is bucket-wise
/// addition (scripts/aggregate_metrics.py).
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void observe(double v) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_milli_.fetch_add(to_milli(v), std::memory_order_relaxed);
    buckets_[static_cast<std::size_t>(bucket_of(v))].fetch_add(
        1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  /// Sum of observed values (stored in thousandths for atomicity).
  [[nodiscard]] double sum() const {
    return static_cast<double>(sum_milli_.load(std::memory_order_relaxed)) /
           1000.0;
  }
  [[nodiscard]] std::uint64_t bucket(int i) const {
    return buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
  }

  /// Bucket index for a value (clamped to [0, kBuckets)).
  static int bucket_of(double v);
  /// Exclusive upper bound of bucket i, in the observed unit.
  static double bucket_upper(int i);

 private:
  friend class MetricsRegistry;
  static std::uint64_t to_milli(double v) {
    if (v <= 0.0) return 0;
    return static_cast<std::uint64_t>(v * 1000.0 + 0.5);
  }

  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_milli_{0};
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
};

/// Point-in-time copy of a registry, serializable to/from JSON.
struct Snapshot {
  struct CounterValue {
    std::string name;
    Labels labels;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    Labels labels;
    double value = 0.0;
  };
  struct HistogramValue {
    std::string name;
    Labels labels;
    std::uint64_t count = 0;
    double sum = 0.0;
    /// (bucket index, count) for non-empty buckets only.
    std::vector<std::pair<int, std::uint64_t>> buckets;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  [[nodiscard]] std::string to_json() const;
  /// Parses a snapshot produced by to_json().  Throws std::runtime_error
  /// on malformed input.
  static Snapshot from_json(std::string_view json);
};

class MetricsRegistry {
 public:
  /// Returns the metric instance for (name, labels), creating it on first
  /// use.  The reference stays valid for the registry's lifetime; callers
  /// cache it and update lock-free.
  Counter& counter(std::string_view name, Labels labels = {});
  Gauge& gauge(std::string_view name, Labels labels = {});
  Histogram& histogram(std::string_view name, Labels labels = {});

  [[nodiscard]] Snapshot snapshot() const;

  /// Zeroes every value (registrations and handles survive).  Tests only.
  void reset();

 private:
  struct Key {
    std::string name;
    Labels labels;
    bool operator<(const Key& o) const {
      return std::tie(name, labels) < std::tie(o.name, o.labels);
    }
  };
  static Key make_key(std::string_view name, Labels labels);

  mutable std::mutex mu_;
  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<Histogram>> histograms_;
};

/// The process-default registry every built-in instrumentation site
/// feeds.  Tests may also construct private registries.
MetricsRegistry& registry();

}  // namespace sintra::obs
