// Primality testing and cryptographic parameter generation.
//
// The dealer (crypto/dealer) uses these routines to build:
//  - RSA moduli from safe primes (Shoup threshold signatures require
//    N = p*q with p, q safe, so that the squares mod N form a cyclic
//    group of order p'q');
//  - DSA-style groups: a 1024-bit prime p such that p-1 has a 160-bit
//    prime factor q, exactly as in the paper's experimental setup, used
//    by the threshold coin and TDH2.
#pragma once

#include "bignum/bigint.hpp"
#include "util/rng.hpp"

namespace sintra::bignum {

/// Miller–Rabin with `rounds` random bases (after trial division by small
/// primes).  Error probability <= 4^-rounds for odd composites.
bool is_probable_prime(const BigInt& n, Rng& rng, int rounds = 32);

/// Random prime with exactly `bits` bits.
BigInt random_prime(Rng& rng, int bits);

/// Random safe prime p (p and (p-1)/2 both prime) with exactly `bits` bits.
BigInt random_safe_prime(Rng& rng, int bits);

/// A Schnorr/DSA-style group: prime p with `p_bits` bits, prime q with
/// `q_bits` bits dividing p-1, and g generating the order-q subgroup.
struct SchnorrGroup {
  BigInt p;
  BigInt q;
  BigInt g;
};

SchnorrGroup generate_schnorr_group(Rng& rng, int p_bits, int q_bits);

}  // namespace sintra::bignum
