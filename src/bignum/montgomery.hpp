// Montgomery modular arithmetic for odd moduli.
//
// All hot-path exponentiations in SINTRA (RSA, threshold-signature share
// generation, Diffie–Hellman coin shares, TDH2) go through this context.
// The implementation is CIOS (coarsely integrated operand scanning) over
// 32-bit limbs.
#pragma once

#include <cstdint>
#include <vector>

#include "bignum/bigint.hpp"

namespace sintra::bignum {

/// Work accounting: every Montgomery multiplication adds (limbs of the
/// modulus)^2 to a thread-local counter.  The discrete-event simulator
/// converts accumulated work into virtual CPU time using each host's
/// measured 1024-bit-modexp cost (the paper's `exp` column), so public-key
/// operations slow down simulated hosts exactly in proportion to the real
/// arithmetic they perform.
std::uint64_t work_counter() noexcept;
void reset_work_counter() noexcept;

class Montgomery {
 public:
  /// modulus must be odd and > 1.
  explicit Montgomery(const BigInt& modulus);

  [[nodiscard]] const BigInt& modulus() const { return modulus_; }

  /// base^exp mod modulus, base in [0, modulus).
  [[nodiscard]] BigInt pow(const BigInt& base, const BigInt& exp) const;

  /// a*b mod modulus without entering/leaving Montgomery form per call
  /// (converts at the edges); for one-off products plain BigInt is fine,
  /// this exists for callers doing many products against one modulus.
  [[nodiscard]] BigInt mul(const BigInt& a, const BigInt& b) const;

 private:
  using Limbs = std::vector<std::uint32_t>;

  [[nodiscard]] Limbs to_mont(const BigInt& a) const;
  [[nodiscard]] BigInt from_mont(const Limbs& a) const;
  /// out = a*b*R^-1 mod m (CIOS).
  [[nodiscard]] Limbs mont_mul(const Limbs& a, const Limbs& b) const;

  BigInt modulus_;
  Limbs m_;               // modulus limbs, size n
  std::uint32_t m0inv_;   // -m^{-1} mod 2^32
  Limbs r2_;              // R^2 mod m, for conversion into Montgomery form
  Limbs one_;             // R mod m (Montgomery representation of 1)
};

}  // namespace sintra::bignum
