// Montgomery modular arithmetic for odd moduli.
//
// All hot-path exponentiations in SINTRA (RSA, threshold-signature share
// generation, Diffie–Hellman coin shares, TDH2) go through this context.
// The implementation is fused CIOS (coarsely integrated operand scanning)
// over 64-bit limbs: each outer iteration interleaves the multiply row and
// the reduction row in ONE inner loop with two running carries and no
// intermediate normalization, using `unsigned __int128` products
// (docs/CRYPTO.md walks through the algorithm and its bounds; the 32-bit
// predecessor is frozen in ref32.hpp for differential tests).
//
// Beyond plain `pow`, the context offers the fast-path entry points that
// the threshold-crypto stack is built on:
//
//  - mul_pow / multi_pow: simultaneous multi-exponentiation (Shamir's
//    trick) — one shared squaring chain for several bases, so a product
//    like g^z * h^c costs barely more than a single exponentiation;
//  - FixedBaseTable: a comb table for a long-lived base (generator,
//    verification key, hash-to-group output).  Evaluation needs no
//    squarings at all — one multiplication per nonzero 4-bit digit of the
//    exponent — at the price of a one-off table build that is charged to
//    the work counter when it happens, so amortization is visible to the
//    simulator's virtual-time model rather than hidden from it.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "bignum/bigint.hpp"

namespace sintra::bignum {

/// Work accounting: every Montgomery multiplication adds
/// kLimbWorkScale * (64-bit limbs of the modulus)^2 to a thread-local
/// counter.  The *unit* is still the PR 1 definition — one 32-bit limb
/// product — so one 64-bit limb product, which does the work of four
/// 32-bit ones, charges kLimbWorkScale = 4 units.  For moduli whose width
/// is a multiple of 64 bits (every RSA/Schnorr modulus the dealer emits)
/// the counter value is bit-identical to the old 32-bit layer's, which is
/// what keeps simulator determinism and the PR 4 bench gates stable across
/// the limb rework (DESIGN.md §13).  The discrete-event simulator converts
/// accumulated work into virtual CPU time using each host's measured
/// 1024-bit-modexp cost (the paper's `exp` column) via a runtime-calibrated
/// ratio (crypto::work_per_exp1024), so public-key operations slow down
/// simulated hosts exactly in proportion to the real arithmetic they
/// perform.
inline constexpr std::uint64_t kLimbWorkScale = 4;

std::uint64_t work_counter() noexcept;
void reset_work_counter() noexcept;

/// Hard cap on modulus width: fixed-capacity scratch in the Montgomery
/// context is sized for 4096-bit moduli (64 limbs), so the hot path never
/// heap-allocates.  The constructor rejects wider moduli.
inline constexpr int kMaxModulusBits = 4096;

class Montgomery;

/// Precomputed fixed-base comb table (Brickell–Gordon–McCurley–Wilson
/// style): entry (j, d) holds base^(d * (2^w)^j) in Montgomery form, for a
/// window width of w bits (default 4).  Built by Montgomery::precompute
/// for one long-lived base and reused across many exponentiations; the
/// build performs real Montgomery multiplications and is therefore charged
/// to the work counter like any other arithmetic.
///
/// The window width is the comb's memory/speed dial: evaluation costs
/// ~ceil(E/w)·(1−2^−w) multiplications for an E-bit exponent while the
/// table holds ceil(E/w)·2^w entries, so wider windows buy fewer
/// multiplications per exponentiation at exponentially growing table and
/// build cost.  pick_comb_window_bits() below chooses w from the group's
/// expected number of concurrent long-lived bases.
class FixedBaseTable {
 public:
  FixedBaseTable() = default;

  [[nodiscard]] bool valid() const { return windows_ > 0; }
  /// Widest exponent the comb covers; wider exponents fall back to pow().
  [[nodiscard]] int max_exp_bits() const { return windows_ * window_bits_; }
  [[nodiscard]] int window_bits() const { return window_bits_; }
  [[nodiscard]] const BigInt& base() const { return base_; }
  /// Heap footprint of the table entries, for memory-bound assertions.
  [[nodiscard]] std::size_t memory_bytes() const {
    return entries_.size() * sizeof(std::uint64_t);
  }

 private:
  friend class Montgomery;

  BigInt base_;
  BigInt modulus_;  // guards against use with a different context
  int windows_ = 0;
  int window_bits_ = 4;
  std::size_t n_ = 0;                   // limbs of the modulus
  std::vector<std::uint64_t> entries_;  // windows x 2^window_bits x n_
};

/// Soft budget for the *sum* of all live comb tables a group is expected
/// to keep (verification keys, generators, per-name bases).  At the
/// paper's n=4 the default 4-bit windows fit with a wide margin, so the
/// historical (and work-counter-identical) sizing is preserved; at n=31 a
/// group holds ~2n+8 long-lived bases and the picker narrows windows
/// until the projected total fits.
inline constexpr std::size_t kCombMemoryBudgetBytes = 4u << 20;

/// Entry memory of one comb table: ceil(E/w) windows x 2^w digits x one
/// modulus-sized element each.
[[nodiscard]] std::size_t comb_table_bytes(int max_exp_bits, int modulus_bits,
                                           int window_bits);

/// Window width (bits, in [2, 4]) for a comb table over max_exp_bits-wide
/// exponents against a modulus_bits modulus, when ~concurrent_tables
/// tables are expected to be live at once.  Returns the widest width whose
/// projected total memory stays inside kCombMemoryBudgetBytes; 4 (the
/// historical constant) whenever the budget allows, so small groups are
/// bit-identical to the fixed-width era.
[[nodiscard]] int pick_comb_window_bits(int max_exp_bits, int modulus_bits,
                                        std::size_t concurrent_tables);

class Montgomery {
 public:
  /// modulus must be odd, > 1, and at most kMaxModulusBits wide.
  explicit Montgomery(const BigInt& modulus);

  [[nodiscard]] const BigInt& modulus() const { return modulus_; }

  /// base^exp mod modulus (exp >= 0; the sign of a negative exp is
  /// ignored, as only magnitudes reach the window scan).
  [[nodiscard]] BigInt pow(const BigInt& base, const BigInt& exp) const;

  /// a*b mod modulus without entering/leaving Montgomery form per call
  /// (converts at the edges); for one-off products plain BigInt is fine,
  /// this exists for callers doing many products against one modulus.
  [[nodiscard]] BigInt mul(const BigInt& a, const BigInt& b) const;

  /// a^ea * b^eb mod modulus in one interleaved pass: the squaring chain
  /// is shared between both bases (Shamir's trick), so the cost is one
  /// exponentiation's squarings plus each base's digit multiplications.
  /// Exponents must be >= 0 — callers with a negative exponent either fold
  /// it into the group order (DlogGroup::dual_exp_neg) or invert the base
  /// once; throws std::domain_error otherwise.
  [[nodiscard]] BigInt mul_pow(const BigInt& a, const BigInt& ea,
                               const BigInt& b, const BigInt& eb) const;

  /// prod terms[i].first ^ terms[i].second — the k-way generalization of
  /// mul_pow (used for Lagrange interpolation in the exponent).  All
  /// exponents must be >= 0.
  [[nodiscard]] BigInt multi_pow(
      const std::vector<std::pair<BigInt, BigInt>>& terms) const;

  /// Builds a comb table covering exponents up to max_exp_bits wide.
  /// window_bits in [2, 6] trades table memory for evaluation speed; the
  /// default 4 matches the historical layout (see pick_comb_window_bits).
  [[nodiscard]] FixedBaseTable precompute(const BigInt& base,
                                          int max_exp_bits,
                                          int window_bits = 4) const;

  /// base^e via the comb — no squarings, one multiplication per nonzero
  /// 4-bit digit of e.  Falls back to plain pow() when e is wider than the
  /// table or the table belongs to a different modulus.
  [[nodiscard]] BigInt pow(const FixedBaseTable& table, const BigInt& e) const;

  /// Dual fixed-base: ta.base^ea * tb.base^eb with no squarings at all.
  [[nodiscard]] BigInt mul_pow(const FixedBaseTable& ta, const BigInt& ea,
                               const FixedBaseTable& tb,
                               const BigInt& eb) const;

  /// Mixed: one cached base (comb, no squarings) times one fresh base
  /// (windowed, with squarings).
  [[nodiscard]] BigInt mul_pow(const FixedBaseTable& ta, const BigInt& ea,
                               const BigInt& b, const BigInt& eb) const;

 private:
  using Limb = std::uint64_t;
  using Limbs = std::vector<Limb>;

  [[nodiscard]] Limbs to_mont(const BigInt& a) const;
  [[nodiscard]] BigInt from_mont(const Limbs& a) const;
  /// out = a*b*R^-1 mod m (fused CIOS) over raw n-limb arrays; t is n+2
  /// limbs of scratch.  out may alias a and/or b.
  void mmul(Limb* out, const Limb* a, const Limb* b, Limb* t) const;
  /// out = a*a*R^-1 mod m.  Exploits product symmetry (cross terms computed
  /// once and doubled), ~25% fewer limb products than mmul; used for the
  /// squaring chains that dominate every exponentiation ladder.  Charges
  /// the same kLimbWorkScale*n^2 work as mmul — the counter is a cost
  /// *model* shared with the 32-bit era, and keeping squarings and
  /// multiplications indistinguishable there preserves counter values
  /// bit-for-bit across PRs (docs/CRYPTO.md).  out may alias a.
  void msqr(Limb* out, const Limb* a) const;
  [[nodiscard]] Limbs mont_mul(const Limbs& a, const Limbs& b) const;
  /// Writes the Montgomery form of a into out (n limbs).
  void to_mont_into(Limb* out, const BigInt& a, Limb* t) const;
  [[nodiscard]] BigInt from_mont_raw(const Limb* a) const;
  /// Fills table entries d = 2..max_digit with basemont^d (entry 1 must
  /// already hold basemont; entry 0 is never read).
  void build_window_table(Limb* table, const Limb* basemont, int max_digit,
                          Limb* t) const;
  /// acc *= table-eval of e (both in Montgomery form); the comb needs no
  /// squarings.
  void comb_mul_into(Limb* acc, const FixedBaseTable& table, const BigInt& e,
                     Limb* t) const;
  [[nodiscard]] bool accepts(const FixedBaseTable& table,
                             const BigInt& e) const;
  /// Hard cap on terms per shared squaring chain (sizes the fixed stack
  /// arrays in simul_pow).  64 covers a whole batched DLEQ verification at
  /// n=31 (k=21 statements fold to ~2k+2 terms) in ONE pass — a second
  /// pass costs a second full squaring chain, the single largest line item
  /// for 160-bit exponents.
  static constexpr std::size_t kSimulPowMax = 64;
  /// Terms per pass actually used by multi_pow: kSimulPowMax narrowed so
  /// the per-pass window-table working set (terms x 16 entries x modulus
  /// limbs) stays under ~256 KiB — k-aware for the small moduli the
  /// protocols use, narrower only for multi-kilobit ones.
  [[nodiscard]] std::size_t simul_terms_per_pass() const;
  /// Core shared-squaring simultaneous exponentiation over <=
  /// kSimulPowMax terms.
  [[nodiscard]] BigInt simul_pow(const std::pair<BigInt, BigInt>* terms,
                                 std::size_t count) const;

  BigInt modulus_;
  Limbs m_;               // modulus limbs, size n
  Limb m0inv_;            // -m^{-1} mod 2^64
  Limbs r2_;              // R^2 mod m, for conversion into Montgomery form
  Limbs one_;             // R mod m (Montgomery representation of 1)
};

}  // namespace sintra::bignum
