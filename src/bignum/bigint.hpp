// Arbitrary-precision integers for SINTRA's public-key cryptography.
//
// The paper's prototype used Java's BigInteger; this reproduction builds
// the substrate from scratch.  Representation is sign-magnitude with
// 64-bit limbs (least-significant first); intermediate products use the
// compiler's `unsigned __int128` so a full limb product plus two carries
// fits in one register pair.  Modular exponentiation uses fused-CIOS
// Montgomery multiplication (montgomery.hpp); primality testing and
// parameter generation live in prime.hpp.  Limb width is an internal
// representation choice only — the wire format is big-endian bytes and is
// bit-identical to the old 32-bit layer (docs/CRYPTO.md, DESIGN.md §13;
// tests/test_bignum_diff.cpp enforces it against the frozen ref32 path).
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/bytes.hpp"
#include "util/rng.hpp"
#include "util/serde.hpp"

namespace sintra::bignum {

/// Double-width intermediate for limb arithmetic.
using Wide = unsigned __int128;

class BigInt {
 public:
  /// The limb word.  64-bit since PR 8 (docs/CRYPTO.md has the layout).
  using Limb = std::uint64_t;
  static constexpr int kLimbBits = 64;

  BigInt() = default;
  BigInt(std::int64_t v);  // NOLINT(google-explicit-constructor) — numeric literal convenience

  /// Parses decimal, or hex with a "0x" prefix.  Throws std::invalid_argument.
  static BigInt from_string(std::string_view s);
  /// Big-endian unsigned byte string (the crypto wire format).
  static BigInt from_bytes(BytesView be);
  /// Uniform in [0, bound), bound > 0.
  static BigInt random_below(Rng& rng, const BigInt& bound);
  /// Uniform with exactly `bits` bits (top bit set).
  static BigInt random_bits(Rng& rng, int bits);

  [[nodiscard]] bool is_zero() const { return limbs_.empty(); }
  [[nodiscard]] bool is_negative() const { return negative_; }
  [[nodiscard]] bool is_odd() const {
    return !limbs_.empty() && (limbs_[0] & 1u);
  }
  [[nodiscard]] bool is_one() const {
    return !negative_ && limbs_.size() == 1 && limbs_[0] == 1;
  }

  /// Number of significant bits (0 for zero).
  [[nodiscard]] int bit_length() const;
  [[nodiscard]] bool bit(int i) const;
  /// Bits [i, i+width) of the magnitude as an unsigned value (width in
  /// [1, 64]; bits past the top read as 0).  The digit-extraction primitive
  /// of windowed and comb exponentiation.  Returns a full Limb since PR 8 —
  /// callers that stuff the digit into a narrower type must cast explicitly
  /// (the bignum target builds with -Wconversion to catch silent narrowing).
  [[nodiscard]] Limb bits_window(int i, int width) const;

  [[nodiscard]] std::string to_string() const;   // decimal
  [[nodiscard]] std::string to_hex() const;      // lowercase, no prefix
  /// Minimal big-endian unsigned bytes ("" for zero).  Negative values are
  /// not representable; throws std::logic_error.
  [[nodiscard]] Bytes to_bytes() const;
  /// Big-endian, left-padded with zeros to exactly `len` bytes; throws if
  /// the value does not fit.
  [[nodiscard]] Bytes to_bytes_padded(std::size_t len) const;
  /// Value as u64; throws std::overflow_error if it does not fit.
  [[nodiscard]] std::uint64_t to_u64() const;

  friend BigInt operator+(const BigInt& a, const BigInt& b);
  friend BigInt operator-(const BigInt& a, const BigInt& b);
  friend BigInt operator*(const BigInt& a, const BigInt& b);
  friend BigInt operator/(const BigInt& a, const BigInt& b);  // trunc toward 0
  friend BigInt operator%(const BigInt& a, const BigInt& b);  // sign of a
  friend BigInt operator<<(const BigInt& a, int k);
  friend BigInt operator>>(const BigInt& a, int k);
  BigInt operator-() const;

  BigInt& operator+=(const BigInt& b) { return *this = *this + b; }
  BigInt& operator-=(const BigInt& b) { return *this = *this - b; }
  BigInt& operator*=(const BigInt& b) { return *this = *this * b; }
  BigInt& operator%=(const BigInt& b) { return *this = *this % b; }

  friend bool operator==(const BigInt& a, const BigInt& b) = default;
  friend std::strong_ordering operator<=>(const BigInt& a, const BigInt& b);

  /// Quotient and remainder in one pass (remainder has sign of a),
  /// returned as {quotient, remainder}.
  static std::pair<BigInt, BigInt> div_mod(const BigInt& a, const BigInt& b);

  /// Non-negative residue in [0, m); m > 0.
  [[nodiscard]] BigInt mod(const BigInt& m) const;

  /// this^e mod m (e >= 0, m > 0).  Montgomery for odd m, generic otherwise.
  [[nodiscard]] BigInt mod_pow(const BigInt& e, const BigInt& m) const;

  /// Multiplicative inverse mod m; throws std::domain_error if gcd != 1.
  [[nodiscard]] BigInt mod_inverse(const BigInt& m) const;

  static BigInt gcd(BigInt a, BigInt b);

  /// Serialize as sign byte + length-prefixed magnitude.
  void write(Writer& w) const;
  static BigInt read(Reader& r);

  // Internal access for the Montgomery machinery.
  [[nodiscard]] const std::vector<Limb>& limbs() const { return limbs_; }
  static BigInt from_limbs(std::vector<Limb> limbs);

 private:
  void trim();
  static int cmp_mag(const BigInt& a, const BigInt& b);
  static BigInt add_mag(const BigInt& a, const BigInt& b);
  static BigInt sub_mag(const BigInt& a, const BigInt& b);  // |a| >= |b|

  std::vector<Limb> limbs_;  // little-endian; empty == 0
  bool negative_ = false;    // never true when limbs_ empty
};

}  // namespace sintra::bignum
