#include "bignum/bigint.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <stdexcept>

#include "bignum/montgomery.hpp"

namespace sintra::bignum {

namespace {
using Limb = BigInt::Limb;
constexpr int kLB = BigInt::kLimbBits;

inline Limb lo(Wide v) { return static_cast<Limb>(v); }
inline Limb hi(Wide v) { return static_cast<Limb>(v >> kLB); }
}  // namespace

BigInt::BigInt(std::int64_t v) {
  negative_ = v < 0;
  const std::uint64_t mag = negative_ ? ~static_cast<std::uint64_t>(v) + 1
                                      : static_cast<std::uint64_t>(v);
  if (mag != 0) limbs_.push_back(mag);
}

BigInt BigInt::from_limbs(std::vector<Limb> limbs) {
  BigInt out;
  out.limbs_ = std::move(limbs);
  out.trim();
  return out;
}

void BigInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

int BigInt::cmp_mag(const BigInt& a, const BigInt& b) {
  if (a.limbs_.size() != b.limbs_.size())
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

std::strong_ordering operator<=>(const BigInt& a, const BigInt& b) {
  if (a.negative_ != b.negative_)
    return a.negative_ ? std::strong_ordering::less
                       : std::strong_ordering::greater;
  int c = BigInt::cmp_mag(a, b);
  if (a.negative_) c = -c;
  if (c < 0) return std::strong_ordering::less;
  if (c > 0) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

BigInt BigInt::add_mag(const BigInt& a, const BigInt& b) {
  BigInt out;
  const auto& x = a.limbs_;
  const auto& y = b.limbs_;
  const std::size_t n = std::max(x.size(), y.size());
  out.limbs_.resize(n + 1, 0);
  Limb carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    Wide s = carry;
    if (i < x.size()) s += x[i];
    if (i < y.size()) s += y[i];
    out.limbs_[i] = lo(s);
    carry = hi(s);
  }
  out.limbs_[n] = carry;
  out.trim();
  return out;
}

BigInt BigInt::sub_mag(const BigInt& a, const BigInt& b) {
  BigInt out;
  out.limbs_.resize(a.limbs_.size(), 0);
  Limb borrow = 0;
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    const Limb bi = i < b.limbs_.size() ? b.limbs_[i] : 0;
    const Limb ai = a.limbs_[i];
    const Limb d = ai - bi - borrow;
    // Borrow iff the true difference went negative: ai < bi + borrow
    // (the RHS cannot wrap — bi <= 2^64-1 and borrow <= 1 never carry
    // together out of 128 bits).
    borrow = (static_cast<Wide>(bi) + borrow > ai) ? 1 : 0;
    out.limbs_[i] = d;
  }
  out.trim();
  return out;
}

BigInt operator+(const BigInt& a, const BigInt& b) {
  if (a.negative_ == b.negative_) {
    BigInt out = BigInt::add_mag(a, b);
    out.negative_ = a.negative_ && !out.is_zero();
    return out;
  }
  int c = BigInt::cmp_mag(a, b);
  if (c == 0) return BigInt{};
  BigInt out = c > 0 ? BigInt::sub_mag(a, b) : BigInt::sub_mag(b, a);
  out.negative_ = (c > 0 ? a.negative_ : b.negative_) && !out.is_zero();
  return out;
}

BigInt operator-(const BigInt& a, const BigInt& b) { return a + (-b); }

BigInt BigInt::operator-() const {
  BigInt out = *this;
  if (!out.is_zero()) out.negative_ = !out.negative_;
  return out;
}

namespace {

// Schoolbook product of limb magnitudes (little-endian).  One __int128
// accumulator per column step: (2^64-1)^2 + 2*(2^64-1) = 2^128-1, so the
// product + limb + carry chain cannot overflow.
std::vector<Limb> mul_school(const std::vector<Limb>& x,
                             const std::vector<Limb>& y) {
  std::vector<Limb> out(x.size() + y.size(), 0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    Limb carry = 0;
    const Limb xi = x[i];
    for (std::size_t j = 0; j < y.size(); ++j) {
      const Wide cur = static_cast<Wide>(xi) * y[j] + out[i + j] + carry;
      out[i + j] = lo(cur);
      carry = hi(cur);
    }
    std::size_t k = i + y.size();
    while (carry != 0) {
      const Wide cur = static_cast<Wide>(out[k]) + carry;
      out[k] = lo(cur);
      carry = hi(cur);
      ++k;
    }
  }
  return out;
}

std::vector<Limb> add_limbs(const std::vector<Limb>& x,
                            const std::vector<Limb>& y) {
  std::vector<Limb> out(std::max(x.size(), y.size()) + 1, 0);
  Limb carry = 0;
  for (std::size_t i = 0; i + 1 < out.size(); ++i) {
    Wide s = carry;
    if (i < x.size()) s += x[i];
    if (i < y.size()) s += y[i];
    out[i] = lo(s);
    carry = hi(s);
  }
  out.back() = carry;
  return out;
}

// out -= x * B^shift (in place; caller guarantees no final borrow).
void sub_limbs_at(std::vector<Limb>& out, const std::vector<Limb>& x,
                  std::size_t shift) {
  Limb borrow = 0;
  for (std::size_t i = 0; i < x.size() || borrow != 0; ++i) {
    const Limb xi = i < x.size() ? x[i] : 0;
    const Limb oi = out[shift + i];
    const Limb d = oi - xi - borrow;
    borrow = (static_cast<Wide>(xi) + borrow > oi) ? 1 : 0;
    out[shift + i] = d;
  }
}

// out += x * B^shift (in place; out must be large enough).
void add_limbs_at(std::vector<Limb>& out, const std::vector<Limb>& x,
                  std::size_t shift) {
  Limb carry = 0;
  for (std::size_t i = 0; i < x.size() || carry != 0; ++i) {
    Wide s = static_cast<Wide>(out[shift + i]) + carry;
    if (i < x.size()) s += x[i];
    out[shift + i] = lo(s);
    carry = hi(s);
  }
}

// Below this operand size (in 64-bit limbs) schoolbook wins.  Retuned for
// the 64-bit layer: the __int128 schoolbook inner loop is ~4x denser than
// the 32-bit one, so the crossover moves out to ~20 limbs = 1280 bits —
// RSA-size modexp squares (16 limbs at 1024 bits) stay schoolbook, while
// 2048-bit products and the dealer's safe-prime search take the
// three-multiplication split (measured sweep in docs/CRYPTO.md).
constexpr std::size_t kKaratsubaThreshold = 20;

// Karatsuba product (the "optimizations in the modular arithmetic" the
// paper's §6 suggests; pays off for the multi-limb products in division
// and non-Montgomery paths).
std::vector<Limb> mul_limbs(const std::vector<Limb>& x,
                            const std::vector<Limb>& y) {
  if (x.size() < kKaratsubaThreshold || y.size() < kKaratsubaThreshold) {
    return mul_school(x, y);
  }
  const std::size_t half = std::max(x.size(), y.size()) / 2;
  const auto split = [half](const std::vector<Limb>& v) {
    std::vector<Limb> lov(v.begin(),
                          v.begin() + static_cast<std::ptrdiff_t>(
                                          std::min(half, v.size())));
    std::vector<Limb> hiv(
        v.begin() + static_cast<std::ptrdiff_t>(std::min(half, v.size())),
        v.end());
    return std::pair{std::move(lov), std::move(hiv)};
  };
  auto [x0, x1] = split(x);
  auto [y0, y1] = split(y);

  const auto z0 = mul_limbs(x0, y0);                       // low product
  const auto z2 = mul_limbs(x1, y1);                       // high product
  auto zm = mul_limbs(add_limbs(x0, x1), add_limbs(y0, y1));
  // zm -= z0 + z2  => the middle term (non-negative by construction).
  sub_limbs_at(zm, z0, 0);
  sub_limbs_at(zm, z2, 0);

  std::vector<Limb> out(x.size() + y.size() + 1, 0);
  add_limbs_at(out, z0, 0);
  add_limbs_at(out, zm, half);
  add_limbs_at(out, z2, 2 * half);
  return out;
}

}  // namespace

BigInt operator*(const BigInt& a, const BigInt& b) {
  if (a.is_zero() || b.is_zero()) return BigInt{};
  BigInt out;
  out.limbs_ = mul_limbs(a.limbs_, b.limbs_);
  out.negative_ = a.negative_ != b.negative_;
  out.trim();
  return out;
}

BigInt operator<<(const BigInt& a, int k) {
  if (a.is_zero() || k == 0) return k < 0 ? a >> -k : a;
  if (k < 0) return a >> -k;
  const std::size_t limb_shift = static_cast<std::size_t>(k) / kLB;
  const int bit_shift = k % kLB;
  BigInt out;
  out.negative_ = a.negative_;
  out.limbs_.assign(a.limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    const Wide v = static_cast<Wide>(a.limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= lo(v);
    out.limbs_[i + limb_shift + 1] |= hi(v);
  }
  out.trim();
  return out;
}

BigInt operator>>(const BigInt& a, int k) {
  if (a.is_zero() || k == 0) return k < 0 ? a << -k : a;
  if (k < 0) return a << -k;
  const std::size_t limb_shift = static_cast<std::size_t>(k) / kLB;
  const int bit_shift = k % kLB;
  if (limb_shift >= a.limbs_.size()) return BigInt{};
  BigInt out;
  out.negative_ = a.negative_;
  out.limbs_.assign(a.limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    Limb v = a.limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < a.limbs_.size()) {
      v |= a.limbs_[i + limb_shift + 1] << (kLB - bit_shift);
    }
    out.limbs_[i] = v;
  }
  out.trim();
  return out;
}

std::pair<BigInt, BigInt> BigInt::div_mod(const BigInt& a, const BigInt& b) {
  if (b.is_zero()) throw std::domain_error("BigInt: division by zero");
  if (cmp_mag(a, b) < 0) return {BigInt{}, a};

  // Knuth Algorithm D on magnitudes (64-bit limbs; the two-limb trial
  // numerators are __int128).
  BigInt u = a;
  u.negative_ = false;
  BigInt v = b;
  v.negative_ = false;

  if (v.limbs_.size() == 1) {
    // Fast path: single-limb divisor.
    const Limb d = v.limbs_[0];
    BigInt q;
    q.limbs_.assign(u.limbs_.size(), 0);
    Limb rem = 0;
    for (std::size_t i = u.limbs_.size(); i-- > 0;) {
      const Wide cur = (static_cast<Wide>(rem) << kLB) | u.limbs_[i];
      q.limbs_[i] = static_cast<Limb>(cur / d);
      rem = static_cast<Limb>(cur % d);
    }
    q.trim();
    BigInt r;
    if (rem != 0) r.limbs_.push_back(rem);
    q.negative_ = !q.is_zero() && (a.negative_ != b.negative_);
    r.negative_ = !r.is_zero() && a.negative_;
    return {q, r};
  }

  // Normalize so the top limb of v has its high bit set.
  int shift = 0;
  Limb top = v.limbs_.back();
  while ((top & (1ULL << 63)) == 0) {
    top <<= 1;
    ++shift;
  }
  u = u << shift;
  v = v << shift;
  const std::size_t n = v.limbs_.size();
  const std::size_t m = u.limbs_.size() - n;
  u.limbs_.push_back(0);

  BigInt q;
  q.limbs_.assign(m + 1, 0);
  const Limb vtop = v.limbs_[n - 1];
  const Limb vsec = v.limbs_[n - 2];
  constexpr Wide kBase = static_cast<Wide>(1) << kLB;

  for (std::size_t j = m + 1; j-- > 0;) {
    const Wide num =
        (static_cast<Wide>(u.limbs_[j + n]) << kLB) | u.limbs_[j + n - 1];
    Wide qhat = num / vtop;
    Wide rhat = num % vtop;
    if (qhat >= kBase) {
      qhat = kBase - 1;
      rhat = num - qhat * vtop;
    }
    while (rhat < kBase &&
           qhat * vsec > ((rhat << kLB) | u.limbs_[j + n - 2])) {
      --qhat;
      rhat += vtop;
    }
    // u[j .. j+n] -= qhat * v
    const Limb qh = static_cast<Limb>(qhat);
    Limb borrow = 0;
    Limb carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const Wide p = static_cast<Wide>(qh) * v.limbs_[i] + carry;
      carry = hi(p);
      const Limb pl = lo(p);
      const Limb ui = u.limbs_[i + j];
      const Limb d = ui - pl - borrow;
      borrow = (static_cast<Wide>(pl) + borrow > ui) ? 1 : 0;
      u.limbs_[i + j] = d;
    }
    {
      const Limb ui = u.limbs_[j + n];
      Limb d = ui - carry - borrow;
      if (static_cast<Wide>(carry) + borrow > ui) {
        // qhat was one too large: add back.
        --qhat;
        Limb c = 0;
        for (std::size_t i = 0; i < n; ++i) {
          const Wide s = static_cast<Wide>(u.limbs_[i + j]) + v.limbs_[i] + c;
          u.limbs_[i + j] = lo(s);
          c = hi(s);
        }
        d += c;  // wraps back into range
      }
      u.limbs_[j + n] = d;
    }
    q.limbs_[j] = static_cast<Limb>(qhat);
  }

  q.trim();
  u.limbs_.resize(n);
  u.trim();
  BigInt r = u >> shift;
  q.negative_ = !q.is_zero() && (a.negative_ != b.negative_);
  r.negative_ = !r.is_zero() && a.negative_;
  return {q, r};
}

BigInt operator/(const BigInt& a, const BigInt& b) {
  return BigInt::div_mod(a, b).first;
}

BigInt operator%(const BigInt& a, const BigInt& b) {
  return BigInt::div_mod(a, b).second;
}

BigInt BigInt::mod(const BigInt& m) const {
  if (m <= BigInt{0}) throw std::domain_error("BigInt::mod: modulus <= 0");
  BigInt r = *this % m;
  if (r.is_negative()) r += m;
  return r;
}

BigInt BigInt::mod_pow(const BigInt& e, const BigInt& m) const {
  if (e.is_negative()) throw std::domain_error("BigInt::mod_pow: negative exponent");
  if (m <= BigInt{0}) throw std::domain_error("BigInt::mod_pow: modulus <= 0");
  if (m.is_one()) return BigInt{};
  if (m.is_odd()) return Montgomery(m).pow(this->mod(m), e);
  // Rare even-modulus path (not used by the crypto layer): square & multiply.
  BigInt base = this->mod(m);
  BigInt result{1};
  for (int i = e.bit_length() - 1; i >= 0; --i) {
    result = (result * result).mod(m);
    if (e.bit(i)) result = (result * base).mod(m);
  }
  return result;
}

BigInt BigInt::mod_inverse(const BigInt& m) const {
  if (m <= BigInt{0}) throw std::domain_error("BigInt::mod_inverse: modulus <= 0");
  // Extended Euclid on (a mod m, m).
  BigInt a = this->mod(m);
  BigInt r0 = m, r1 = a;
  BigInt s0{0}, s1{1};
  while (!r1.is_zero()) {
    auto [q, r2] = div_mod(r0, r1);
    BigInt s2 = s0 - q * s1;
    r0 = std::move(r1);
    r1 = std::move(r2);
    s0 = std::move(s1);
    s1 = std::move(s2);
  }
  if (!r0.is_one()) throw std::domain_error("BigInt::mod_inverse: not invertible");
  return s0.mod(m);
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  a.negative_ = false;
  b.negative_ = false;
  while (!b.is_zero()) {
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

int BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  int bits = static_cast<int>(limbs_.size() - 1) * kLB;
  Limb top = limbs_.back();
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::bit(int i) const {
  const std::size_t limb = static_cast<std::size_t>(i) / kLB;
  if (limb >= limbs_.size()) return false;
  return ((limbs_[limb] >> (i % kLB)) & 1u) != 0;
}

BigInt::Limb BigInt::bits_window(int i, int width) const {
  const std::size_t limb = static_cast<std::size_t>(i) / kLB;
  const int off = i % kLB;
  Wide word = limb < limbs_.size() ? limbs_[limb] : 0u;
  if (limb + 1 < limbs_.size()) {
    word |= static_cast<Wide>(limbs_[limb + 1]) << kLB;
  }
  word >>= off;
  const Limb mask =
      width >= kLB ? ~static_cast<Limb>(0) : (1ULL << width) - 1;
  return static_cast<Limb>(word) & mask;
}

BigInt BigInt::from_string(std::string_view s) {
  bool neg = false;
  if (!s.empty() && (s[0] == '-' || s[0] == '+')) {
    neg = s[0] == '-';
    s.remove_prefix(1);
  }
  if (s.empty()) throw std::invalid_argument("BigInt::from_string: empty");
  BigInt out;
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    for (char c : s.substr(2)) {
      int d;
      if (c >= '0' && c <= '9') d = c - '0';
      else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
      else if (c >= 'A' && c <= 'F') d = c - 'A' + 10;
      else throw std::invalid_argument("BigInt::from_string: bad hex digit");
      out = (out << 4) + BigInt{d};
    }
  } else {
    for (char c : s) {
      if (c < '0' || c > '9')
        throw std::invalid_argument("BigInt::from_string: bad decimal digit");
      out = out * BigInt{10} + BigInt{c - '0'};
    }
  }
  if (neg && !out.is_zero()) out.negative_ = true;
  return out;
}

std::string BigInt::to_string() const {
  if (is_zero()) return "0";
  // Repeated division by 10^18 (one limb's worth of decimal digits).
  BigInt v = *this;
  v.negative_ = false;
  const BigInt chunk{1000000000000000000LL};
  std::vector<std::uint64_t> groups;
  while (!v.is_zero()) {
    auto [q, r] = div_mod(v, chunk);
    groups.push_back(r.is_zero() ? 0 : r.limbs_[0]);
    v = std::move(q);
  }
  std::string out = negative_ ? "-" : "";
  out += std::to_string(groups.back());
  for (std::size_t i = groups.size() - 1; i-- > 0;) {
    std::string g = std::to_string(groups[i]);
    out += std::string(18 - g.size(), '0') + g;
  }
  return out;
}

std::string BigInt::to_hex() const {
  if (is_zero()) return "0";
  std::string out = negative_ ? "-" : "";
  char buf[17];
  std::snprintf(buf, sizeof buf, "%" PRIx64, limbs_.back());
  out += buf;
  for (std::size_t i = limbs_.size() - 1; i-- > 0;) {
    std::snprintf(buf, sizeof buf, "%016" PRIx64, limbs_[i]);
    out += buf;
  }
  return out;
}

BigInt BigInt::from_bytes(BytesView be) {
  BigInt out;
  const std::size_t n = be.size();
  out.limbs_.assign((n + 7) / 8, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t byte = be[n - 1 - i];  // i-th least significant
    out.limbs_[i / 8] |= static_cast<Limb>(byte) << (8 * (i % 8));
  }
  out.trim();
  return out;
}

Bytes BigInt::to_bytes() const {
  if (negative_) throw std::logic_error("BigInt::to_bytes: negative value");
  if (is_zero()) return {};
  const int bytes = (bit_length() + 7) / 8;
  return to_bytes_padded(static_cast<std::size_t>(bytes));
}

Bytes BigInt::to_bytes_padded(std::size_t len) const {
  if (negative_) throw std::logic_error("BigInt::to_bytes_padded: negative value");
  if (static_cast<std::size_t>((bit_length() + 7) / 8) > len)
    throw std::logic_error("BigInt::to_bytes_padded: value too large");
  Bytes out(len, 0);
  for (std::size_t i = 0; i < len; ++i) {
    const std::size_t byte_index = len - 1 - i;  // i-th least significant
    const std::size_t limb = i / 8;
    if (limb < limbs_.size()) {
      out[byte_index] = static_cast<std::uint8_t>(limbs_[limb] >> (8 * (i % 8)));
    }
  }
  return out;
}

std::uint64_t BigInt::to_u64() const {
  if (negative_ || bit_length() > 64)
    throw std::overflow_error("BigInt::to_u64: out of range");
  return limbs_.empty() ? 0 : limbs_[0];
}

BigInt BigInt::random_below(Rng& rng, const BigInt& bound) {
  if (bound <= BigInt{0})
    throw std::domain_error("BigInt::random_below: bound <= 0");
  const int bits = bound.bit_length();
  const std::size_t nbytes = static_cast<std::size_t>((bits + 7) / 8);
  const int excess = static_cast<int>(nbytes * 8) - bits;
  // Rejection sampling: uniform in [0, 2^bits), retry until < bound.
  for (;;) {
    Bytes raw = rng.bytes(nbytes);
    if (!raw.empty()) raw[0] &= static_cast<std::uint8_t>(0xff >> excess);
    BigInt v = from_bytes(raw);
    if (v < bound) return v;
  }
}

BigInt BigInt::random_bits(Rng& rng, int bits) {
  if (bits <= 0) throw std::domain_error("BigInt::random_bits: bits <= 0");
  const std::size_t nbytes = static_cast<std::size_t>((bits + 7) / 8);
  const int excess = static_cast<int>(nbytes * 8) - bits;
  Bytes raw = rng.bytes(nbytes);
  raw[0] &= static_cast<std::uint8_t>(0xff >> excess);
  raw[0] |= static_cast<std::uint8_t>(0x80 >> excess);  // force top bit
  return from_bytes(raw);
}

void BigInt::write(Writer& w) const {
  w.u8(negative_ ? 1 : 0);
  BigInt mag = *this;
  mag.negative_ = false;
  w.bytes(mag.to_bytes());
}

BigInt BigInt::read(Reader& r) {
  const bool neg = r.u8() != 0;
  BigInt out = from_bytes(r.bytes());
  if (neg && !out.is_zero()) out.negative_ = true;
  return out;
}

}  // namespace sintra::bignum
