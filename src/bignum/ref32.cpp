// The PR 1..7 32-bit limb arithmetic, preserved verbatim (see ref32.hpp).
// Kept intentionally close to the old bigint.cpp/montgomery.cpp text so a
// diff against git history shows only the renames.
#include "bignum/ref32.hpp"

#include <algorithm>
#include <stdexcept>

namespace sintra::bignum::ref32 {

namespace {
constexpr std::uint64_t kBase = 1ULL << 32;
}

Ref32Int::Ref32Int(std::int64_t v) {
  negative_ = v < 0;
  std::uint64_t mag = negative_ ? ~static_cast<std::uint64_t>(v) + 1
                                : static_cast<std::uint64_t>(v);
  while (mag != 0) {
    limbs_.push_back(static_cast<std::uint32_t>(mag));
    mag >>= 32;
  }
  if (limbs_.empty()) negative_ = false;
}

void Ref32Int::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

int Ref32Int::cmp_mag(const Ref32Int& a, const Ref32Int& b) {
  if (a.limbs_.size() != b.limbs_.size())
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

std::strong_ordering operator<=>(const Ref32Int& a, const Ref32Int& b) {
  if (a.negative_ != b.negative_)
    return a.negative_ ? std::strong_ordering::less
                       : std::strong_ordering::greater;
  int c = Ref32Int::cmp_mag(a, b);
  if (a.negative_) c = -c;
  if (c < 0) return std::strong_ordering::less;
  if (c > 0) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

Ref32Int Ref32Int::add_mag(const Ref32Int& a, const Ref32Int& b) {
  Ref32Int out;
  const auto& x = a.limbs_;
  const auto& y = b.limbs_;
  const std::size_t n = std::max(x.size(), y.size());
  out.limbs_.resize(n + 1, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t s = carry;
    if (i < x.size()) s += x[i];
    if (i < y.size()) s += y[i];
    out.limbs_[i] = static_cast<std::uint32_t>(s);
    carry = s >> 32;
  }
  out.limbs_[n] = static_cast<std::uint32_t>(carry);
  out.trim();
  return out;
}

Ref32Int Ref32Int::sub_mag(const Ref32Int& a, const Ref32Int& b) {
  Ref32Int out;
  out.limbs_.resize(a.limbs_.size(), 0);
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::int64_t d = static_cast<std::int64_t>(a.limbs_[i]) - borrow -
                     (i < b.limbs_.size() ? b.limbs_[i] : 0);
    if (d < 0) {
      d += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<std::uint32_t>(d);
  }
  out.trim();
  return out;
}

Ref32Int operator+(const Ref32Int& a, const Ref32Int& b) {
  if (a.negative_ == b.negative_) {
    Ref32Int out = Ref32Int::add_mag(a, b);
    out.negative_ = a.negative_ && !out.is_zero();
    return out;
  }
  int c = Ref32Int::cmp_mag(a, b);
  if (c == 0) return Ref32Int{};
  Ref32Int out = c > 0 ? Ref32Int::sub_mag(a, b) : Ref32Int::sub_mag(b, a);
  out.negative_ = (c > 0 ? a.negative_ : b.negative_) && !out.is_zero();
  return out;
}

Ref32Int operator-(const Ref32Int& a, const Ref32Int& b) { return a + (-b); }

Ref32Int Ref32Int::operator-() const {
  Ref32Int out = *this;
  if (!out.is_zero()) out.negative_ = !out.negative_;
  return out;
}

namespace {

// Schoolbook product of limb magnitudes (little-endian).
std::vector<std::uint32_t> mul_school(const std::vector<std::uint32_t>& x,
                                      const std::vector<std::uint32_t>& y) {
  std::vector<std::uint32_t> out(x.size() + y.size(), 0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t xi = x[i];
    for (std::size_t j = 0; j < y.size(); ++j) {
      std::uint64_t cur = out[i + j] + xi * y[j] + carry;
      out[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::size_t k = i + y.size();
    while (carry != 0) {
      std::uint64_t cur = out[k] + carry;
      out[k] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  return out;
}

std::vector<std::uint32_t> add_limbs(const std::vector<std::uint32_t>& x,
                                     const std::vector<std::uint32_t>& y) {
  std::vector<std::uint32_t> out(std::max(x.size(), y.size()) + 1, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i + 1 < out.size(); ++i) {
    std::uint64_t s = carry;
    if (i < x.size()) s += x[i];
    if (i < y.size()) s += y[i];
    out[i] = static_cast<std::uint32_t>(s);
    carry = s >> 32;
  }
  out.back() = static_cast<std::uint32_t>(carry);
  return out;
}

void sub_limbs_at(std::vector<std::uint32_t>& out,
                  const std::vector<std::uint32_t>& x, std::size_t shift) {
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < x.size() || borrow != 0; ++i) {
    std::int64_t d = static_cast<std::int64_t>(out[shift + i]) - borrow -
                     (i < x.size() ? x[i] : 0);
    if (d < 0) {
      d += 1LL << 32;
      borrow = 1;
    } else {
      borrow = 0;
    }
    out[shift + i] = static_cast<std::uint32_t>(d);
  }
}

void add_limbs_at(std::vector<std::uint32_t>& out,
                  const std::vector<std::uint32_t>& x, std::size_t shift) {
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < x.size() || carry != 0; ++i) {
    std::uint64_t s = out[shift + i] + carry;
    if (i < x.size()) s += x[i];
    out[shift + i] = static_cast<std::uint32_t>(s);
    carry = s >> 32;
  }
}

// The PR-era 32-bit crossover: 24 limbs = 768 bits.
constexpr std::size_t kKaratsubaThreshold = 24;

std::vector<std::uint32_t> mul_limbs(const std::vector<std::uint32_t>& x,
                                     const std::vector<std::uint32_t>& y) {
  if (x.size() < kKaratsubaThreshold || y.size() < kKaratsubaThreshold) {
    return mul_school(x, y);
  }
  const std::size_t half = std::max(x.size(), y.size()) / 2;
  const auto split = [half](const std::vector<std::uint32_t>& v) {
    std::vector<std::uint32_t> lo(v.begin(),
                                  v.begin() + static_cast<std::ptrdiff_t>(
                                                  std::min(half, v.size())));
    std::vector<std::uint32_t> hi(
        v.begin() + static_cast<std::ptrdiff_t>(std::min(half, v.size())),
        v.end());
    return std::pair{std::move(lo), std::move(hi)};
  };
  auto [x0, x1] = split(x);
  auto [y0, y1] = split(y);

  const auto z0 = mul_limbs(x0, y0);
  const auto z2 = mul_limbs(x1, y1);
  auto zm = mul_limbs(add_limbs(x0, x1), add_limbs(y0, y1));
  sub_limbs_at(zm, z0, 0);
  sub_limbs_at(zm, z2, 0);

  std::vector<std::uint32_t> out(x.size() + y.size() + 1, 0);
  add_limbs_at(out, z0, 0);
  add_limbs_at(out, zm, half);
  add_limbs_at(out, z2, 2 * half);
  return out;
}

}  // namespace

Ref32Int operator*(const Ref32Int& a, const Ref32Int& b) {
  if (a.is_zero() || b.is_zero()) return Ref32Int{};
  Ref32Int out;
  out.limbs_ = mul_limbs(a.limbs_, b.limbs_);
  out.negative_ = a.negative_ != b.negative_;
  out.trim();
  return out;
}

Ref32Int operator<<(const Ref32Int& a, int k) {
  if (a.is_zero() || k == 0) return k < 0 ? a >> -k : a;
  if (k < 0) return a >> -k;
  const int limb_shift = k / 32;
  const int bit_shift = k % 32;
  Ref32Int out;
  out.negative_ = a.negative_;
  out.limbs_.assign(a.limbs_.size() + static_cast<std::size_t>(limb_shift) + 1,
                    0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::uint64_t v = static_cast<std::uint64_t>(a.limbs_[i]) << bit_shift;
    out.limbs_[i + static_cast<std::size_t>(limb_shift)] |=
        static_cast<std::uint32_t>(v);
    out.limbs_[i + static_cast<std::size_t>(limb_shift) + 1] |=
        static_cast<std::uint32_t>(v >> 32);
  }
  out.trim();
  return out;
}

Ref32Int operator>>(const Ref32Int& a, int k) {
  if (a.is_zero() || k == 0) return k < 0 ? a << -k : a;
  if (k < 0) return a << -k;
  const std::size_t limb_shift = static_cast<std::size_t>(k) / 32;
  const int bit_shift = k % 32;
  if (limb_shift >= a.limbs_.size()) return Ref32Int{};
  Ref32Int out;
  out.negative_ = a.negative_;
  out.limbs_.assign(a.limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    std::uint64_t v = a.limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < a.limbs_.size()) {
      v |= static_cast<std::uint64_t>(a.limbs_[i + limb_shift + 1])
           << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<std::uint32_t>(v);
  }
  out.trim();
  return out;
}

std::pair<Ref32Int, Ref32Int> Ref32Int::div_mod(const Ref32Int& a,
                                                const Ref32Int& b) {
  if (b.is_zero()) throw std::domain_error("Ref32Int: division by zero");
  if (cmp_mag(a, b) < 0) return {Ref32Int{}, a};

  Ref32Int u = a;
  u.negative_ = false;
  Ref32Int v = b;
  v.negative_ = false;

  if (v.limbs_.size() == 1) {
    const std::uint64_t d = v.limbs_[0];
    Ref32Int q;
    q.limbs_.assign(u.limbs_.size(), 0);
    std::uint64_t rem = 0;
    for (std::size_t i = u.limbs_.size(); i-- > 0;) {
      std::uint64_t cur = (rem << 32) | u.limbs_[i];
      q.limbs_[i] = static_cast<std::uint32_t>(cur / d);
      rem = cur % d;
    }
    q.trim();
    Ref32Int r = Ref32Int(static_cast<std::int64_t>(rem));
    q.negative_ = !q.is_zero() && (a.negative_ != b.negative_);
    r.negative_ = !r.is_zero() && a.negative_;
    return {q, r};
  }

  int shift = 0;
  std::uint32_t top = v.limbs_.back();
  while ((top & 0x80000000u) == 0) {
    top <<= 1;
    ++shift;
  }
  u = u << shift;
  v = v << shift;
  const std::size_t n = v.limbs_.size();
  const std::size_t m = u.limbs_.size() - n;
  u.limbs_.push_back(0);

  Ref32Int q;
  q.limbs_.assign(m + 1, 0);
  const std::uint64_t vtop = v.limbs_[n - 1];
  const std::uint64_t vsec = v.limbs_[n - 2];

  for (std::size_t j = m + 1; j-- > 0;) {
    std::uint64_t num = (static_cast<std::uint64_t>(u.limbs_[j + n]) << 32) |
                        u.limbs_[j + n - 1];
    std::uint64_t qhat = num / vtop;
    std::uint64_t rhat = num % vtop;
    if (qhat >= kBase) {
      qhat = kBase - 1;
      rhat = num - qhat * vtop;
    }
    while (rhat < kBase &&
           qhat * vsec > ((rhat << 32) | u.limbs_[j + n - 2])) {
      --qhat;
      rhat += vtop;
    }
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t p = qhat * v.limbs_[i] + carry;
      carry = p >> 32;
      std::int64_t d = static_cast<std::int64_t>(u.limbs_[i + j]) -
                       static_cast<std::int64_t>(p & 0xffffffffu) - borrow;
      if (d < 0) {
        d += static_cast<std::int64_t>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u.limbs_[i + j] = static_cast<std::uint32_t>(d);
    }
    std::int64_t d = static_cast<std::int64_t>(u.limbs_[j + n]) -
                     static_cast<std::int64_t>(carry) - borrow;
    if (d < 0) {
      d += static_cast<std::int64_t>(kBase);
      --qhat;
      std::uint64_t c = 0;
      for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t s =
            static_cast<std::uint64_t>(u.limbs_[i + j]) + v.limbs_[i] + c;
        u.limbs_[i + j] = static_cast<std::uint32_t>(s);
        c = s >> 32;
      }
      d += static_cast<std::int64_t>(c);
      d &= static_cast<std::int64_t>(kBase - 1);
    }
    u.limbs_[j + n] = static_cast<std::uint32_t>(d);
    q.limbs_[j] = static_cast<std::uint32_t>(qhat);
  }

  q.trim();
  u.limbs_.resize(n);
  u.trim();
  Ref32Int r = u >> shift;
  q.negative_ = !q.is_zero() && (a.negative_ != b.negative_);
  r.negative_ = !r.is_zero() && a.negative_;
  return {q, r};
}

Ref32Int Ref32Int::mod(const Ref32Int& m) const {
  if (m <= Ref32Int{0}) throw std::domain_error("Ref32Int::mod: modulus <= 0");
  Ref32Int r = div_mod(*this, m).second;
  if (r.is_negative()) r = r + m;
  return r;
}

int Ref32Int::bit_length() const {
  if (limbs_.empty()) return 0;
  int bits = static_cast<int>(limbs_.size() - 1) * 32;
  std::uint32_t top = limbs_.back();
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool Ref32Int::bit(int i) const {
  const std::size_t limb = static_cast<std::size_t>(i) / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1u;
}

Ref32Int Ref32Int::from_bytes(BytesView be) {
  Ref32Int out;
  for (std::uint8_t b : be) out = (out << 8) + Ref32Int{b};
  return out;
}

Bytes Ref32Int::to_bytes() const {
  if (negative_) throw std::logic_error("Ref32Int::to_bytes: negative value");
  if (is_zero()) return {};
  const std::size_t len = static_cast<std::size_t>((bit_length() + 7) / 8);
  Bytes out(len, 0);
  for (std::size_t i = 0; i < len; ++i) {
    const std::size_t byte_index = len - 1 - i;
    const std::size_t limb = i / 4;
    if (limb < limbs_.size()) {
      out[byte_index] =
          static_cast<std::uint8_t>(limbs_[limb] >> (8 * (i % 4)));
    }
  }
  return out;
}

void Ref32Int::write(Writer& w) const {
  w.u8(negative_ ? 1 : 0);
  Ref32Int mag = *this;
  mag.negative_ = false;
  w.bytes(mag.to_bytes());
}

// --- The old 32-bit CIOS Montgomery ladder (montgomery.cpp as of PR 7) ---

namespace {

std::uint32_t inv32(std::uint32_t x) {
  std::uint32_t y = x;
  for (int i = 0; i < 4; ++i) y *= 2 - x * y;
  return y;
}

struct Mont32 {
  std::vector<std::uint32_t> m;
  std::uint32_t m0inv;
  std::vector<std::uint32_t> r2;
  std::vector<std::uint32_t> one;

  // The old two-inner-loop CIOS over 32-bit limbs (work counter untouched:
  // ref32 exists for differential checks, not simulated time).
  void mmul(std::uint32_t* out, const std::uint32_t* a, const std::uint32_t* b,
            std::uint32_t* t) const {
    const std::size_t n = m.size();
    std::fill(t, t + n + 2, 0u);
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t carry = 0;
      const std::uint64_t ai = a[i];
      for (std::size_t j = 0; j < n; ++j) {
        std::uint64_t cur = t[j] + ai * b[j] + carry;
        t[j] = static_cast<std::uint32_t>(cur);
        carry = cur >> 32;
      }
      std::uint64_t cur = t[n] + carry;
      t[n] = static_cast<std::uint32_t>(cur);
      t[n + 1] = static_cast<std::uint32_t>(cur >> 32);

      const std::uint64_t mi = static_cast<std::uint32_t>(t[0] * m0inv);
      carry = 0;
      std::uint64_t first = t[0] + mi * m[0];
      carry = first >> 32;
      for (std::size_t j = 1; j < n; ++j) {
        std::uint64_t c2 = t[j] + mi * m[j] + carry;
        t[j - 1] = static_cast<std::uint32_t>(c2);
        carry = c2 >> 32;
      }
      std::uint64_t c2 = t[n] + carry;
      t[n - 1] = static_cast<std::uint32_t>(c2);
      c2 = t[n + 1] + (c2 >> 32);
      t[n] = static_cast<std::uint32_t>(c2);
      t[n + 1] = static_cast<std::uint32_t>(c2 >> 32);
    }
    bool ge = t[n] != 0;
    if (!ge) {
      ge = true;
      for (std::size_t i = n; i-- > 0;) {
        if (t[i] != m[i]) {
          ge = t[i] > m[i];
          break;
        }
      }
    }
    if (ge) {
      std::int64_t borrow = 0;
      for (std::size_t i = 0; i < n; ++i) {
        std::int64_t d = static_cast<std::int64_t>(t[i]) - m[i] - borrow;
        if (d < 0) {
          d += (1LL << 32);
          borrow = 1;
        } else {
          borrow = 0;
        }
        out[i] = static_cast<std::uint32_t>(d);
      }
    } else {
      std::copy(t, t + n, out);
    }
  }
};

std::vector<std::uint32_t> limbs_of(const Ref32Int& v, std::size_t n) {
  // Big-endian bytes -> little-endian 32-bit limbs, padded to n.
  const Bytes be = v.to_bytes();
  std::vector<std::uint32_t> out(n, 0);
  for (std::size_t i = 0; i < be.size(); ++i) {
    const std::size_t bit_index = be.size() - 1 - i;  // significance
    out[bit_index / 4] |= static_cast<std::uint32_t>(be[i])
                          << (8 * (bit_index % 4));
  }
  return out;
}

Ref32Int from_limbs32(const std::vector<std::uint32_t>& limbs) {
  Bytes be(limbs.size() * 4, 0);
  for (std::size_t i = 0; i < limbs.size(); ++i) {
    for (std::size_t b = 0; b < 4; ++b) {
      be[be.size() - 1 - (i * 4 + b)] =
          static_cast<std::uint8_t>(limbs[i] >> (8 * b));
    }
  }
  return Ref32Int::from_bytes(be);
}

}  // namespace

Ref32Int Ref32Int::mod_pow(const Ref32Int& e, const Ref32Int& m) const {
  if (e.is_negative())
    throw std::domain_error("Ref32Int::mod_pow: negative exponent");
  if (m <= Ref32Int{0})
    throw std::domain_error("Ref32Int::mod_pow: modulus <= 0");
  if (m.is_one()) return Ref32Int{};
  if (!m.is_odd()) {
    // Square-and-multiply (the old even-modulus fallback).
    Ref32Int base = this->mod(m);
    Ref32Int result{1};
    for (int i = e.bit_length() - 1; i >= 0; --i) {
      result = (result * result).mod(m);
      if (e.bit(i)) result = (result * base).mod(m);
    }
    return result;
  }

  Mont32 mont;
  mont.m = limbs_of(m, static_cast<std::size_t>((m.bit_length() + 31) / 32));
  mont.m0inv = static_cast<std::uint32_t>(0) - inv32(mont.m[0]);
  const std::size_t n = mont.m.size();
  mont.r2 = limbs_of((Ref32Int{1} << static_cast<int>(64 * n)).mod(m), n);
  mont.one = limbs_of((Ref32Int{1} << static_cast<int>(32 * n)).mod(m), n);

  if (e.is_zero()) return Ref32Int{1}.mod(m);

  // 4-bit windowed ladder with a full 16-entry table, as the old pow().
  std::vector<std::uint32_t> table(16 * n, 0);
  std::vector<std::uint32_t> acc(n), t(n + 2);
  std::vector<std::uint32_t> basemont(n);
  {
    std::vector<std::uint32_t> al = limbs_of(this->mod(m), n);
    mont.mmul(basemont.data(), al.data(), mont.r2.data(), t.data());
  }
  std::copy(basemont.begin(), basemont.end(), table.begin() + static_cast<std::ptrdiff_t>(n));
  for (std::size_t d = 2; d < 16; ++d) {
    mont.mmul(table.data() + d * n, table.data() + (d - 1) * n,
              basemont.data(), t.data());
  }

  const int bits = e.bit_length();
  const int windows = (bits + 3) / 4;
  std::copy(mont.one.begin(), mont.one.end(), acc.begin());
  bool started = false;
  for (int w = windows - 1; w >= 0; --w) {
    if (started) {
      mont.mmul(acc.data(), acc.data(), acc.data(), t.data());
      mont.mmul(acc.data(), acc.data(), acc.data(), t.data());
      mont.mmul(acc.data(), acc.data(), acc.data(), t.data());
      mont.mmul(acc.data(), acc.data(), acc.data(), t.data());
    }
    std::uint32_t digit = 0;
    for (int bi = 3; bi >= 0; --bi) {
      const int idx = 4 * w + bi;
      digit = static_cast<std::uint32_t>((digit << 1) |
                                         (idx < bits && e.bit(idx) ? 1u : 0u));
    }
    if (digit != 0) {
      mont.mmul(acc.data(), acc.data(), table.data() + digit * n, t.data());
      started = true;
    }
  }
  if (!started) return Ref32Int{1}.mod(m);
  std::vector<std::uint32_t> unit(n, 0);
  unit[0] = 1;
  std::vector<std::uint32_t> out(n);
  mont.mmul(out.data(), acc.data(), unit.data(), t.data());
  return from_limbs32(out);
}

}  // namespace sintra::bignum::ref32
