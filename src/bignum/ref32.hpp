// Frozen 32-bit reference bignum (the PR 1..7 limb layer, kept verbatim).
//
// The live `BigInt`/`Montgomery` (bigint.hpp, montgomery.hpp) moved to
// 64-bit limbs with fused CIOS reduction in PR 8.  This file preserves the
// old 32-bit-limb arithmetic under `sintra::bignum::ref32` for two jobs:
//
//  1. differential testing — tests/test_bignum_diff.cpp cross-checks every
//     add/sub/mul/div/modexp and the serialized wire bytes of the 64-bit
//     path against this implementation on randomized and adversarial
//     inputs (limb width is an internal representation, so results and
//     wire bytes must be bit-identical);
//  2. an honest wall-clock baseline — bench/crypto_micro's BM_ModexpRef32
//     measures the old path in the same binary, so the >=2x wall-clock
//     gate in scripts/bench_crypto.sh compares like with like on the
//     machine actually running the bench.
//
// It deliberately does NOT touch the Montgomery work counter: only the
// live layer drives simulated time.  Remove this file once the 64-bit
// layer has soaked (tracked in ROADMAP.md).
#pragma once

#include <compare>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/bytes.hpp"
#include "util/serde.hpp"

namespace sintra::bignum::ref32 {

class Ref32Int {
 public:
  Ref32Int() = default;
  Ref32Int(std::int64_t v);  // NOLINT(google-explicit-constructor)

  /// Big-endian unsigned byte string (the crypto wire format).
  static Ref32Int from_bytes(BytesView be);

  [[nodiscard]] bool is_zero() const { return limbs_.empty(); }
  [[nodiscard]] bool is_negative() const { return negative_; }
  [[nodiscard]] bool is_odd() const {
    return !limbs_.empty() && (limbs_[0] & 1u);
  }
  [[nodiscard]] bool is_one() const {
    return !negative_ && limbs_.size() == 1 && limbs_[0] == 1;
  }

  [[nodiscard]] int bit_length() const;
  [[nodiscard]] bool bit(int i) const;

  /// Minimal big-endian unsigned bytes ("" for zero).
  [[nodiscard]] Bytes to_bytes() const;

  friend Ref32Int operator+(const Ref32Int& a, const Ref32Int& b);
  friend Ref32Int operator-(const Ref32Int& a, const Ref32Int& b);
  friend Ref32Int operator*(const Ref32Int& a, const Ref32Int& b);
  friend Ref32Int operator<<(const Ref32Int& a, int k);
  friend Ref32Int operator>>(const Ref32Int& a, int k);
  Ref32Int operator-() const;

  friend bool operator==(const Ref32Int& a, const Ref32Int& b) = default;
  friend std::strong_ordering operator<=>(const Ref32Int& a,
                                          const Ref32Int& b);

  static std::pair<Ref32Int, Ref32Int> div_mod(const Ref32Int& a,
                                               const Ref32Int& b);
  [[nodiscard]] Ref32Int mod(const Ref32Int& m) const;
  /// this^e mod m via the old 32-bit CIOS Montgomery ladder (odd m only).
  [[nodiscard]] Ref32Int mod_pow(const Ref32Int& e, const Ref32Int& m) const;

  /// Serialize exactly as the live BigInt::write does (sign byte +
  /// length-prefixed big-endian magnitude) — the wire-compat oracle.
  void write(Writer& w) const;

 private:
  void trim();
  static int cmp_mag(const Ref32Int& a, const Ref32Int& b);
  static Ref32Int add_mag(const Ref32Int& a, const Ref32Int& b);
  static Ref32Int sub_mag(const Ref32Int& a, const Ref32Int& b);

  std::vector<std::uint32_t> limbs_;  // little-endian; empty == 0
  bool negative_ = false;
};

}  // namespace sintra::bignum::ref32
