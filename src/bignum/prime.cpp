#include "bignum/prime.hpp"

#include <array>
#include <stdexcept>

#include "bignum/montgomery.hpp"

namespace sintra::bignum {

namespace {

constexpr std::array<std::uint32_t, 54> kSmallPrimes = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107,
    109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
    191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251};

// n mod small prime, without allocating.  Limbs are 64-bit, so the
// shift-in step runs through a 128-bit intermediate.
std::uint32_t mod_small(const BigInt& n, std::uint32_t d) {
  std::uint64_t rem = 0;
  const auto& limbs = n.limbs();
  for (std::size_t i = limbs.size(); i-- > 0;) {
    rem = static_cast<std::uint64_t>(
        ((static_cast<Wide>(rem) << 64) | limbs[i]) % d);
  }
  return static_cast<std::uint32_t>(rem);
}

bool miller_rabin_round(const Montgomery& mont, const BigInt& n_minus_1,
                        const BigInt& d, int s, const BigInt& a) {
  BigInt x = mont.pow(a, d);
  if (x.is_one() || x == n_minus_1) return true;
  for (int i = 1; i < s; ++i) {
    x = mont.mul(x, x);
    if (x == n_minus_1) return true;
    if (x.is_one()) return false;
  }
  return false;
}

}  // namespace

bool is_probable_prime(const BigInt& n, Rng& rng, int rounds) {
  if (n < BigInt{2}) return false;
  for (std::uint32_t p : kSmallPrimes) {
    if (n == BigInt{static_cast<std::int64_t>(p)}) return true;
    if (mod_small(n, p) == 0) return false;
  }
  // n is odd and > 251 here.
  const BigInt n_minus_1 = n - BigInt{1};
  BigInt d = n_minus_1;
  int s = 0;
  while (!d.is_odd()) {
    d = d >> 1;
    ++s;
  }
  const Montgomery mont(n);
  const BigInt two{2};
  const BigInt span = n - BigInt{4};  // bases in [2, n-2]
  for (int r = 0; r < rounds; ++r) {
    const BigInt a = two + BigInt::random_below(rng, span);
    if (!miller_rabin_round(mont, n_minus_1, d, s, a)) return false;
  }
  return true;
}

BigInt random_prime(Rng& rng, int bits) {
  if (bits < 8) throw std::domain_error("random_prime: bits too small");
  for (;;) {
    BigInt cand = BigInt::random_bits(rng, bits);
    if (!cand.is_odd()) cand += BigInt{1};
    // March forward in steps of 2 for a while before drawing fresh bits,
    // so trial division does most of the filtering cheaply.
    for (int step = 0; step < 64; ++step) {
      if (cand.bit_length() != bits) break;
      if (is_probable_prime(cand, rng)) return cand;
      cand += BigInt{2};
    }
  }
}

BigInt random_safe_prime(Rng& rng, int bits) {
  if (bits < 16) throw std::domain_error("random_safe_prime: bits too small");
  for (;;) {
    // Generate q prime with bits-1 bits, check p = 2q+1.
    BigInt q = BigInt::random_bits(rng, bits - 1);
    if (!q.is_odd()) q += BigInt{1};
    for (int step = 0; step < 64; ++step) {
      if (q.bit_length() != bits - 1) break;
      // Quick congruence filters: q mod 3 == 2 needed, else 3 | p.
      if (mod_small(q, 3) == 2 && is_probable_prime(q, rng, 8)) {
        const BigInt p = (q << 1) + BigInt{1};
        if (is_probable_prime(p, rng, 8) && is_probable_prime(q, rng) &&
            is_probable_prime(p, rng)) {
          return p;
        }
      }
      q += BigInt{2};
    }
  }
}

SchnorrGroup generate_schnorr_group(Rng& rng, int p_bits, int q_bits) {
  if (q_bits >= p_bits)
    throw std::domain_error("generate_schnorr_group: q_bits >= p_bits");
  const BigInt q = random_prime(rng, q_bits);
  const BigInt two_q = q << 1;
  for (;;) {
    // p = q * r + 1 for random even r of the right size.
    BigInt r = BigInt::random_bits(rng, p_bits - q_bits);
    r = r - (r % BigInt{2});  // make r even so p is odd
    BigInt p = q * r + BigInt{1};
    for (int step = 0; step < 64; ++step) {
      if (p.bit_length() == p_bits && is_probable_prime(p, rng)) {
        // g = h^((p-1)/q) for random h, g != 1.
        const BigInt exp = (p - BigInt{1}) / q;
        const Montgomery mont(p);
        for (;;) {
          const BigInt h =
              BigInt{2} + BigInt::random_below(rng, p - BigInt{4});
          const BigInt g = mont.pow(h, exp);
          if (!g.is_one() && !g.is_zero()) return {p, q, g};
        }
      }
      p += two_q;
    }
  }
}

}  // namespace sintra::bignum
