#include "bignum/montgomery.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace sintra::bignum {

namespace {
thread_local std::uint64_t g_work = 0;
}  // namespace

std::uint64_t work_counter() noexcept { return g_work; }
void reset_work_counter() noexcept { g_work = 0; }

namespace {
using Limb = std::uint64_t;

// Inverse of odd x mod 2^64 by Newton iteration: y = x is correct mod 2^3
// and each step doubles the number of correct low bits (3 -> 6 -> 12 -> 24
// -> 48 -> 96), so five steps cover 64 bits.
Limb inv64(Limb x) {
  Limb y = x;
  for (int i = 0; i < 5; ++i) y *= 2 - x * y;
  return y;
}

// Fixed-capacity scratch for the single-multiplication helpers: one CIOS
// accumulator (n+1 limbs used, one spare) plus one result row, sized for
// kMaxModulusBits.  Lives on the stack of each helper — the hot path
// performs zero heap allocations per multiply.
constexpr std::size_t kMaxLimbs = kMaxModulusBits / 64;       // 64
constexpr std::size_t kScratchCap = kMaxLimbs + 2;            // t buffer

// Exponentiation working set (window table + accumulator + temporaries).
// Sized so a full 16-entry window table for a 4096-bit modulus fits on the
// stack (16n + n + n+2 = 1154 limbs at n = 64); only the multi-base
// simul_pow working sets (up to kSimulPowMax tables) can exceed it, and
// those reuse one thread-local buffer, so no path pays a per-call heap
// allocation after warm-up.
constexpr std::size_t kStackLimbs = 1280;  // 10 KiB

thread_local std::vector<Limb> g_scratch;

struct Workspace {
  Limb stack[kStackLimbs];
  Limb* p;

  explicit Workspace(std::size_t limbs) {
    if (limbs <= kStackLimbs) {
      p = stack;
    } else {
      if (g_scratch.size() < limbs) g_scratch.resize(limbs);
      p = g_scratch.data();
    }
  }
};

// Largest 4-bit window digit occurring in e: short or structured exponents
// (membership checks, 2*lambda, 4*delta) need only a partial table.
int max_window_digit(const BigInt& e) {
  const int windows = (e.bit_length() + 3) / 4;
  int maxd = 0;
  for (int w = 0; w < windows && maxd < 15; ++w) {
    maxd = std::max<int>(maxd, static_cast<int>(e.bits_window(4 * w, 4)));
  }
  return maxd;
}

void check_nonneg(const BigInt& e) {
  if (e.is_negative()) {
    throw std::domain_error(
        "Montgomery::mul_pow: negative exponent (reduce mod the group order "
        "or invert the base instead)");
  }
}
}  // namespace

Montgomery::Montgomery(const BigInt& modulus) : modulus_(modulus) {
  if (!modulus.is_odd() || modulus <= BigInt{1})
    throw std::domain_error("Montgomery: modulus must be odd and > 1");
  if (modulus.bit_length() > kMaxModulusBits)
    throw std::domain_error(
        "Montgomery: modulus wider than 4096 bits (kMaxModulusBits bounds "
        "the fixed-capacity scratch buffers)");
  m_ = modulus.limbs();
  m0inv_ = static_cast<Limb>(0) - inv64(m_[0]);
  const int n = static_cast<int>(m_.size());
  // R^2 mod m with R = 2^(64n).
  BigInt r2 = (BigInt{1} << (128 * n)).mod(modulus_);
  r2_ = r2.limbs();
  r2_.resize(m_.size(), 0);
  BigInt r1 = (BigInt{1} << (64 * n)).mod(modulus_);
  one_ = r1.limbs();
  one_.resize(m_.size(), 0);
}

void Montgomery::mmul(Limb* out, const Limb* a, const Limb* b,
                      Limb* t) const {
  const std::size_t n = m_.size();
  g_work += kLimbWorkScale * static_cast<std::uint64_t>(n) * n;
  // Fused CIOS: one outer pass per limb of a; the multiply row
  // (t += a[i]*b) and the reduction row (t += mi*m, t >>= 64) share a
  // single inner loop with two running carries.  Invariant: the t value
  // entering and leaving each outer iteration is < 2m, so t occupies n
  // limbs plus a top limb t[n] in {0, 1} — no intermediate normalization
  // is ever needed (bounds walked through in docs/CRYPTO.md).
  std::fill(t, t + n + 2, 0u);
  for (std::size_t i = 0; i < n; ++i) {
    const Limb ai = a[i];
    // Column 0 decides the reduction multiplier mi, and its reduced limb
    // is exactly zero by construction of m0inv, so it is never stored.
    const Wide p0 = static_cast<Wide>(ai) * b[0] + t[0];
    const Limb mi = static_cast<Limb>(p0) * m0inv_;
    const Wide r0 = static_cast<Wide>(mi) * m_[0] + static_cast<Limb>(p0);
    Limb carry_mul = static_cast<Limb>(p0 >> 64);
    Limb carry_red = static_cast<Limb>(r0 >> 64);
    for (std::size_t j = 1; j < n; ++j) {
      const Wide p = static_cast<Wide>(ai) * b[j] + t[j] + carry_mul;
      carry_mul = static_cast<Limb>(p >> 64);
      const Wide r =
          static_cast<Wide>(mi) * m_[j] + static_cast<Limb>(p) + carry_red;
      t[j - 1] = static_cast<Limb>(r);
      carry_red = static_cast<Limb>(r >> 64);
    }
    const Wide s = static_cast<Wide>(t[n]) + carry_mul + carry_red;
    t[n - 1] = static_cast<Limb>(s);
    t[n] = static_cast<Limb>(s >> 64);  // in {0, 1}
  }
  // Conditional subtraction: t may be in [0, 2m).
  bool ge = t[n] != 0;
  if (!ge) {
    ge = true;
    for (std::size_t i = n; i-- > 0;) {
      if (t[i] != m_[i]) {
        ge = t[i] > m_[i];
        break;
      }
    }
  }
  if (ge) {
    Limb borrow = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const Limb ti = t[i];
      const Limb d = ti - m_[i] - borrow;
      borrow = (static_cast<Wide>(m_[i]) + borrow > ti) ? 1 : 0;
      out[i] = d;
    }
  } else {
    std::copy(t, t + n, out);
  }
}

void Montgomery::msqr(Limb* out, const Limb* a) const {
  const std::size_t n = m_.size();
  g_work += kLimbWorkScale * static_cast<std::uint64_t>(n) * n;
  // SOS squaring: full double-width square first (cross products computed
  // once, then doubled, then the diagonal squares added), followed by n
  // Montgomery reduction rows.  1.5n^2 + O(n) limb products vs the 2n^2
  // of mmul.  r needs 2n+1 limbs: the square fills 2n, and the reduction
  // carries can reach one bit into limb 2n (a^2 + m*floor-term < 2^(128n+1)).
  Limb r[2 * kMaxLimbs + 1];
  std::fill(r, r + 2 * n + 1, 0u);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const Limb ai = a[i];
    Limb carry = 0;
    for (std::size_t j = i + 1; j < n; ++j) {
      const Wide cur = static_cast<Wide>(ai) * a[j] + r[i + j] + carry;
      r[i + j] = static_cast<Limb>(cur);
      carry = static_cast<Limb>(cur >> 64);
    }
    r[i + n] = carry;
  }
  // Double the cross terms.  2*cross < a^2 < 2^(128n), so the shift-out of
  // limb 2n-1 is always zero.
  Limb topbit = 0;
  for (std::size_t i = 0; i < 2 * n; ++i) {
    const Limb v = r[i];
    r[i] = (v << 1) | topbit;
    topbit = v >> 63;
  }
  // Add the diagonal a[i]^2 at bit position 128*i.
  Limb carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Wide sq = static_cast<Wide>(a[i]) * a[i];
    const Wide lo_sum =
        static_cast<Wide>(r[2 * i]) + static_cast<Limb>(sq) + carry;
    r[2 * i] = static_cast<Limb>(lo_sum);
    const Wide hi_sum = static_cast<Wide>(r[2 * i + 1]) +
                        static_cast<Limb>(sq >> 64) +
                        static_cast<Limb>(lo_sum >> 64);
    r[2 * i + 1] = static_cast<Limb>(hi_sum);
    carry = static_cast<Limb>(hi_sum >> 64);
  }
  // Reduction: zero the low n limbs one at a time, exactly as in CIOS.
  for (std::size_t i = 0; i < n; ++i) {
    const Limb mi = r[i] * m0inv_;
    Limb c = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const Wide cur = static_cast<Wide>(mi) * m_[j] + r[i + j] + c;
      r[i + j] = static_cast<Limb>(cur);
      c = static_cast<Limb>(cur >> 64);
    }
    for (std::size_t k = i + n; c != 0; ++k) {
      const Wide cur = static_cast<Wide>(r[k]) + c;
      r[k] = static_cast<Limb>(cur);
      c = static_cast<Limb>(cur >> 64);
    }
  }
  // Result is r[n..2n] < 2m with r[2n] in {0, 1}; same conditional
  // subtraction as mmul.
  const Limb* t = r + n;
  bool ge = r[2 * n] != 0;
  if (!ge) {
    ge = true;
    for (std::size_t i = n; i-- > 0;) {
      if (t[i] != m_[i]) {
        ge = t[i] > m_[i];
        break;
      }
    }
  }
  if (ge) {
    Limb borrow = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const Limb ti = t[i];
      const Limb d = ti - m_[i] - borrow;
      borrow = (static_cast<Wide>(m_[i]) + borrow > ti) ? 1 : 0;
      out[i] = d;
    }
  } else {
    std::copy(t, t + n, out);
  }
}

Montgomery::Limbs Montgomery::mont_mul(const Limbs& a, const Limbs& b) const {
  const std::size_t n = m_.size();
  Limbs out(n);
  Limb t[kScratchCap];
  mmul(out.data(), a.data(), b.data(), t);
  return out;
}

Montgomery::Limbs Montgomery::to_mont(const BigInt& a) const {
  Limbs al = a.mod(modulus_).limbs();
  al.resize(m_.size(), 0);
  return mont_mul(al, r2_);
}

void Montgomery::to_mont_into(Limb* out, const BigInt& a, Limb* t) const {
  Limbs al = a.mod(modulus_).limbs();
  al.resize(m_.size(), 0);
  mmul(out, al.data(), r2_.data(), t);
}

BigInt Montgomery::from_mont(const Limbs& a) const {
  Limbs one(m_.size(), 0);
  one[0] = 1;
  return BigInt::from_limbs(mont_mul(a, one));
}

BigInt Montgomery::from_mont_raw(const Limb* a) const {
  const std::size_t n = m_.size();
  Limb unit[kMaxLimbs] = {};
  unit[0] = 1;
  Limb out[kMaxLimbs];
  Limb t[kScratchCap];
  mmul(out, a, unit, t);
  return BigInt::from_limbs(Limbs(out, out + n));
}

BigInt Montgomery::mul(const BigInt& a, const BigInt& b) const {
  return from_mont(mont_mul(to_mont(a), to_mont(b)));
}

void Montgomery::build_window_table(Limb* table, const Limb* basemont,
                                    int max_digit, Limb* t) const {
  const std::size_t n = m_.size();
  for (int d = 2; d <= max_digit; ++d) {
    mmul(table + static_cast<std::size_t>(d) * n,
         table + static_cast<std::size_t>(d - 1) * n, basemont, t);
  }
}

BigInt Montgomery::pow(const BigInt& base, const BigInt& exp) const {
  if (exp.is_zero()) return BigInt{1}.mod(modulus_);
  const std::size_t n = m_.size();
  // Partial 4-bit window table: entries above the largest digit actually
  // present in the exponent are never read, so they are never built —
  // short exponents (order checks, Lagrange-scaled integers) pay only for
  // the table they use.
  const int maxd = max_window_digit(exp);
  const std::size_t table_limbs = static_cast<std::size_t>(maxd + 1) * n;
  Workspace ws(table_limbs + 2 * n + (n + 2));
  Limb* table = ws.p;
  Limb* acc = table + table_limbs;
  Limb* t = acc + n;  // n+2 limbs, followed by nothing
  // table[1] = base in Montgomery form; table[2..maxd] by one mult each.
  to_mont_into(table + n, base, t);
  build_window_table(table, table + n, maxd, t);

  const int bits = exp.bit_length();
  const int windows = (bits + 3) / 4;
  std::copy(one_.begin(), one_.end(), acc);
  bool started = false;
  for (int w = windows - 1; w >= 0; --w) {
    if (started) {
      msqr(acc, acc);
      msqr(acc, acc);
      msqr(acc, acc);
      msqr(acc, acc);
    }
    const auto digit = exp.bits_window(4 * w, 4);
    if (digit != 0) {
      mmul(acc, acc, table + static_cast<std::size_t>(digit) * n, t);
      started = true;
    }
  }
  if (!started) return BigInt{1}.mod(modulus_);
  return from_mont_raw(acc);
}

BigInt Montgomery::simul_pow(const std::pair<BigInt, BigInt>* terms,
                             std::size_t count) const {
  assert(count >= 1 && count <= kSimulPowMax);
  const std::size_t n = m_.size();
  int bits = 0;
  int maxd[kSimulPowMax];
  std::size_t offset[kSimulPowMax];
  std::size_t table_limbs = 0;
  for (std::size_t i = 0; i < count; ++i) {
    check_nonneg(terms[i].second);
    bits = std::max(bits, terms[i].second.bit_length());
    maxd[i] = max_window_digit(terms[i].second);
    offset[i] = table_limbs;
    table_limbs += static_cast<std::size_t>(maxd[i] + 1) * n;
  }
  if (bits == 0) return BigInt{1}.mod(modulus_);

  Workspace ws(table_limbs + 2 * n + (n + 2));
  Limb* tables = ws.p;
  Limb* acc = tables + table_limbs;
  Limb* t = acc + n;
  for (std::size_t i = 0; i < count; ++i) {
    if (maxd[i] == 0) continue;  // zero exponent contributes nothing
    Limb* table = tables + offset[i];
    to_mont_into(table + n, terms[i].first, t);
    build_window_table(table, table + n, maxd[i], t);
  }

  const int windows = (bits + 3) / 4;
  std::copy(one_.begin(), one_.end(), acc);
  bool started = false;
  for (int w = windows - 1; w >= 0; --w) {
    if (started) {
      msqr(acc, acc);
      msqr(acc, acc);
      msqr(acc, acc);
      msqr(acc, acc);
    }
    for (std::size_t i = 0; i < count; ++i) {
      const auto digit = terms[i].second.bits_window(4 * w, 4);
      if (digit != 0) {
        mmul(acc, acc, tables + offset[i] + static_cast<std::size_t>(digit) * n,
             t);
        started = true;
      }
    }
  }
  if (!started) return BigInt{1}.mod(modulus_);
  return from_mont_raw(acc);
}

BigInt Montgomery::mul_pow(const BigInt& a, const BigInt& ea, const BigInt& b,
                           const BigInt& eb) const {
  check_nonneg(ea);
  check_nonneg(eb);
  const std::pair<BigInt, BigInt> terms[2] = {{a, ea}, {b, eb}};
  return simul_pow(terms, 2);
}

BigInt Montgomery::multi_pow(
    const std::vector<std::pair<BigInt, BigInt>>& terms) const {
  if (terms.empty()) return BigInt{1}.mod(modulus_);
  // The shared squaring chain serves up to kSimulPowMax bases per pass;
  // longer products fold the per-chunk results together.  The cap is a
  // window-table memory bound, and it is sized so that a whole batched
  // DLEQ verification (4 terms per statement) fits in ONE pass for the
  // batch sizes the protocols produce: a second pass costs a second full
  // squaring chain, which for 160-bit exponents is the single largest
  // line item in the profile.
  BigInt acc;
  bool have = false;
  const std::size_t per_pass = simul_terms_per_pass();
  for (std::size_t i = 0; i < terms.size(); i += per_pass) {
    const std::size_t count =
        std::min<std::size_t>(per_pass, terms.size() - i);
    BigInt part = simul_pow(terms.data() + i, count);
    acc = have ? mul(acc, part) : std::move(part);
    have = true;
  }
  return acc;
}

std::size_t comb_table_bytes(int max_exp_bits, int modulus_bits,
                             int window_bits) {
  const auto limbs =
      static_cast<std::size_t>((std::max(modulus_bits, 64) + 63) / 64);
  const auto exp_bits = static_cast<std::size_t>(std::max(max_exp_bits, 1));
  const auto uw = static_cast<std::size_t>(window_bits);
  const std::size_t windows = (exp_bits + uw - 1) / uw;
  return windows * (std::size_t{1} << uw) * limbs * sizeof(std::uint64_t);
}

int pick_comb_window_bits(int max_exp_bits, int modulus_bits,
                          std::size_t concurrent_tables) {
  const std::size_t tables = std::max<std::size_t>(concurrent_tables, 1);
  for (int w = 4; w > 2; --w) {
    const std::size_t bytes =
        comb_table_bytes(max_exp_bits, modulus_bits, w) * tables;
    if (bytes <= kCombMemoryBudgetBytes) return w;
  }
  return 2;
}

std::size_t Montgomery::simul_terms_per_pass() const {
  // terms x 16-entry window tables x n limbs x 8 bytes <= ~256 KiB.
  const std::size_t budget_limbs = (256u << 10) / sizeof(Limb);
  const std::size_t per_term = 16 * m_.size();
  const std::size_t fit = budget_limbs / per_term;
  return std::clamp<std::size_t>(fit, 8, kSimulPowMax);
}

FixedBaseTable Montgomery::precompute(const BigInt& base, int max_exp_bits,
                                      int window_bits) const {
  if (window_bits < 2 || window_bits > 6)
    throw std::domain_error("precompute: window_bits out of [2, 6]");
  const std::size_t n = m_.size();
  const int digits = 1 << window_bits;
  FixedBaseTable out;
  out.base_ = base;
  out.modulus_ = modulus_;
  out.n_ = n;
  out.window_bits_ = window_bits;
  out.windows_ =
      (std::max(max_exp_bits, window_bits) + window_bits - 1) / window_bits;
  out.entries_.assign(static_cast<std::size_t>(out.windows_) *
                          static_cast<std::size_t>(digits) * n,
                      0);
  Limb t[kScratchCap];
  auto entry = [&](int j, int d) -> Limb* {
    return out.entries_.data() +
           (static_cast<std::size_t>(j) * static_cast<std::size_t>(digits) +
            static_cast<std::size_t>(d)) *
               n;
  };
  to_mont_into(entry(0, 1), base, t);
  for (int j = 0; j < out.windows_; ++j) {
    if (j > 0) {
      // base^(D^j) = (base^(D^(j-1)))^D: window_bits squarings.
      std::copy(entry(j - 1, 1), entry(j - 1, 1) + n, entry(j, 1));
      for (int s = 0; s < window_bits; ++s) msqr(entry(j, 1), entry(j, 1));
    }
    for (int d = 2; d < digits; ++d) {
      mmul(entry(j, d), entry(j, d - 1), entry(j, 1), t);
    }
  }
  return out;
}

bool Montgomery::accepts(const FixedBaseTable& table, const BigInt& e) const {
  return table.valid() && table.n_ == m_.size() && table.modulus_ == modulus_ &&
         !e.is_negative() && e.bit_length() <= table.max_exp_bits();
}

void Montgomery::comb_mul_into(Limb* acc, const FixedBaseTable& table,
                               const BigInt& e, Limb* t) const {
  const std::size_t n = m_.size();
  const int w = table.window_bits_;
  const auto digits = static_cast<std::size_t>(1) << w;
  const int windows = (e.bit_length() + w - 1) / w;
  for (int j = 0; j < windows; ++j) {
    const auto digit = e.bits_window(w * j, w);
    if (digit != 0) {
      mmul(acc,
           acc,
           table.entries_.data() +
               (static_cast<std::size_t>(j) * digits + digit) * n,
           t);
    }
  }
}

BigInt Montgomery::pow(const FixedBaseTable& table, const BigInt& e) const {
  if (e.is_zero()) return BigInt{1}.mod(modulus_);
  if (!accepts(table, e)) return pow(table.base_, e);
  Limb acc[kMaxLimbs];
  Limb t[kScratchCap];
  std::copy(one_.begin(), one_.end(), acc);
  comb_mul_into(acc, table, e, t);
  return from_mont_raw(acc);
}

BigInt Montgomery::mul_pow(const FixedBaseTable& ta, const BigInt& ea,
                           const FixedBaseTable& tb, const BigInt& eb) const {
  check_nonneg(ea);
  check_nonneg(eb);
  if (!accepts(ta, ea) || !accepts(tb, eb)) {
    return mul(pow(ta, ea), pow(tb, eb));
  }
  if (ea.is_zero()) return pow(tb, eb);
  if (eb.is_zero()) return pow(ta, ea);
  Limb acc[kMaxLimbs];
  Limb t[kScratchCap];
  std::copy(one_.begin(), one_.end(), acc);
  comb_mul_into(acc, ta, ea, t);
  comb_mul_into(acc, tb, eb, t);
  return from_mont_raw(acc);
}

BigInt Montgomery::mul_pow(const FixedBaseTable& ta, const BigInt& ea,
                           const BigInt& b, const BigInt& eb) const {
  check_nonneg(ea);
  check_nonneg(eb);
  if (!accepts(ta, ea)) return mul_pow(ta.base_, ea, b, eb);
  if (ea.is_zero()) return pow(b, eb);
  if (eb.is_zero()) return pow(ta, ea);
  // The fresh base pays the squaring chain; the cached base folds in with
  // squaring-free comb multiplications.
  const std::size_t n = m_.size();
  const int maxd = max_window_digit(eb);
  const std::size_t table_limbs = static_cast<std::size_t>(maxd + 1) * n;
  Workspace ws(table_limbs + 2 * n + (n + 2));
  Limb* table = ws.p;
  Limb* acc = table + table_limbs;
  Limb* t = acc + n;
  to_mont_into(table + n, b, t);
  build_window_table(table, table + n, maxd, t);

  const int windows = (eb.bit_length() + 3) / 4;
  std::copy(one_.begin(), one_.end(), acc);
  bool started = false;
  for (int w = windows - 1; w >= 0; --w) {
    if (started) {
      msqr(acc, acc);
      msqr(acc, acc);
      msqr(acc, acc);
      msqr(acc, acc);
    }
    const auto digit = eb.bits_window(4 * w, 4);
    if (digit != 0) {
      mmul(acc, acc, table + static_cast<std::size_t>(digit) * n, t);
      started = true;
    }
  }
  if (!started) std::copy(one_.begin(), one_.end(), acc);
  comb_mul_into(acc, ta, ea, t);
  return from_mont_raw(acc);
}

}  // namespace sintra::bignum
