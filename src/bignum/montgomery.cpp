#include "bignum/montgomery.hpp"

#include <stdexcept>

namespace sintra::bignum {

namespace {
thread_local std::uint64_t g_work = 0;
}  // namespace

std::uint64_t work_counter() noexcept { return g_work; }
void reset_work_counter() noexcept { g_work = 0; }

namespace {
// Inverse of odd x mod 2^32 by Newton iteration.
std::uint32_t inv32(std::uint32_t x) {
  std::uint32_t y = x;  // correct mod 2^3
  for (int i = 0; i < 4; ++i) y *= 2 - x * y;  // doubles precision each step
  return y;
}
}  // namespace

Montgomery::Montgomery(const BigInt& modulus) : modulus_(modulus) {
  if (!modulus.is_odd() || modulus <= BigInt{1})
    throw std::domain_error("Montgomery: modulus must be odd and > 1");
  m_ = modulus.limbs();
  m0inv_ = static_cast<std::uint32_t>(0) - inv32(m_[0]);
  const int n = static_cast<int>(m_.size());
  // R^2 mod m with R = 2^(32n).
  BigInt r2 = (BigInt{1} << (64 * n)).mod(modulus_);
  r2_ = r2.limbs();
  r2_.resize(m_.size(), 0);
  BigInt r1 = (BigInt{1} << (32 * n)).mod(modulus_);
  one_ = r1.limbs();
  one_.resize(m_.size(), 0);
}

Montgomery::Limbs Montgomery::mont_mul(const Limbs& a, const Limbs& b) const {
  const std::size_t n = m_.size();
  g_work += static_cast<std::uint64_t>(n) * n;
  // CIOS: t has n+2 limbs.
  std::vector<std::uint32_t> t(n + 2, 0);
  for (std::size_t i = 0; i < n; ++i) {
    // t += a[i] * b
    std::uint64_t carry = 0;
    const std::uint64_t ai = a[i];
    for (std::size_t j = 0; j < n; ++j) {
      std::uint64_t cur = t[j] + ai * b[j] + carry;
      t[j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::uint64_t cur = t[n] + carry;
    t[n] = static_cast<std::uint32_t>(cur);
    t[n + 1] = static_cast<std::uint32_t>(cur >> 32);

    // m = t[0] * m0inv mod 2^32; t += m * modulus; t >>= 32
    const std::uint64_t m = static_cast<std::uint32_t>(t[0] * m0inv_);
    carry = 0;
    std::uint64_t first = t[0] + m * m_[0];
    carry = first >> 32;
    for (std::size_t j = 1; j < n; ++j) {
      std::uint64_t c2 = t[j] + m * m_[j] + carry;
      t[j - 1] = static_cast<std::uint32_t>(c2);
      carry = c2 >> 32;
    }
    std::uint64_t c2 = t[n] + carry;
    t[n - 1] = static_cast<std::uint32_t>(c2);
    c2 = t[n + 1] + (c2 >> 32);
    t[n] = static_cast<std::uint32_t>(c2);
    t[n + 1] = static_cast<std::uint32_t>(c2 >> 32);
  }
  // Conditional subtraction: t may be in [0, 2m).
  Limbs out(t.begin(), t.begin() + static_cast<std::ptrdiff_t>(n));
  bool ge = t[n] != 0;
  if (!ge) {
    ge = true;
    for (std::size_t i = n; i-- > 0;) {
      if (out[i] != m_[i]) {
        ge = out[i] > m_[i];
        break;
      }
    }
  }
  if (ge) {
    std::int64_t borrow = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::int64_t d = static_cast<std::int64_t>(out[i]) - m_[i] - borrow;
      if (d < 0) {
        d += (1LL << 32);
        borrow = 1;
      } else {
        borrow = 0;
      }
      out[i] = static_cast<std::uint32_t>(d);
    }
  }
  return out;
}

Montgomery::Limbs Montgomery::to_mont(const BigInt& a) const {
  Limbs al = a.mod(modulus_).limbs();
  al.resize(m_.size(), 0);
  return mont_mul(al, r2_);
}

BigInt Montgomery::from_mont(const Limbs& a) const {
  Limbs one(m_.size(), 0);
  one[0] = 1;
  return BigInt::from_limbs(mont_mul(a, one));
}

BigInt Montgomery::mul(const BigInt& a, const BigInt& b) const {
  return from_mont(mont_mul(to_mont(a), to_mont(b)));
}

BigInt Montgomery::pow(const BigInt& base, const BigInt& exp) const {
  if (exp.is_zero()) return BigInt{1}.mod(modulus_);
  // 4-bit fixed window exponentiation.
  const Limbs b = to_mont(base);
  std::vector<Limbs> table(16);
  table[0] = one_;
  table[1] = b;
  for (int i = 2; i < 16; ++i) table[i] = mont_mul(table[i - 1], b);

  const int bits = exp.bit_length();
  const int windows = (bits + 3) / 4;
  Limbs acc = one_;
  bool started = false;
  for (int w = windows - 1; w >= 0; --w) {
    if (started) {
      acc = mont_mul(acc, acc);
      acc = mont_mul(acc, acc);
      acc = mont_mul(acc, acc);
      acc = mont_mul(acc, acc);
    }
    int digit = 0;
    for (int k = 3; k >= 0; --k) {
      digit = (digit << 1) | (exp.bit(w * 4 + k) ? 1 : 0);
    }
    if (digit != 0) {
      acc = mont_mul(acc, table[static_cast<std::size_t>(digit)]);
      started = true;
    } else if (!started) {
      continue;
    }
  }
  if (!started) return BigInt{1}.mod(modulus_);
  return from_mont(acc);
}

}  // namespace sintra::bignum
