#include "bignum/montgomery.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace sintra::bignum {

namespace {
thread_local std::uint64_t g_work = 0;
}  // namespace

std::uint64_t work_counter() noexcept { return g_work; }
void reset_work_counter() noexcept { g_work = 0; }

namespace {
// Inverse of odd x mod 2^32 by Newton iteration.
std::uint32_t inv32(std::uint32_t x) {
  std::uint32_t y = x;  // correct mod 2^3
  for (int i = 0; i < 4; ++i) y *= 2 - x * y;  // doubles precision each step
  return y;
}

// Exponentiation working set (window table + accumulator + temporaries).
// Small instances live on the stack; anything larger reuses one
// thread-local buffer, so the hot path never pays a per-call heap
// allocation for its tables.
constexpr std::size_t kStackLimbs = 1280;  // covers 2048-bit moduli for pow()

thread_local std::vector<std::uint32_t> g_scratch;

struct Workspace {
  std::uint32_t stack[kStackLimbs];
  std::uint32_t* p;

  explicit Workspace(std::size_t limbs) {
    if (limbs <= kStackLimbs) {
      p = stack;
    } else {
      if (g_scratch.size() < limbs) g_scratch.resize(limbs);
      p = g_scratch.data();
    }
  }
};

// Largest 4-bit window digit occurring in e: short or structured exponents
// (membership checks, 2*lambda, 4*delta) need only a partial table.
int max_window_digit(const BigInt& e) {
  const int windows = (e.bit_length() + 3) / 4;
  int maxd = 0;
  for (int w = 0; w < windows && maxd < 15; ++w) {
    maxd = std::max<int>(maxd, static_cast<int>(e.bits_window(4 * w, 4)));
  }
  return maxd;
}

void check_nonneg(const BigInt& e) {
  if (e.is_negative()) {
    throw std::domain_error(
        "Montgomery::mul_pow: negative exponent (reduce mod the group order "
        "or invert the base instead)");
  }
}
}  // namespace

Montgomery::Montgomery(const BigInt& modulus) : modulus_(modulus) {
  if (!modulus.is_odd() || modulus <= BigInt{1})
    throw std::domain_error("Montgomery: modulus must be odd and > 1");
  m_ = modulus.limbs();
  m0inv_ = static_cast<std::uint32_t>(0) - inv32(m_[0]);
  const int n = static_cast<int>(m_.size());
  // R^2 mod m with R = 2^(32n).
  BigInt r2 = (BigInt{1} << (64 * n)).mod(modulus_);
  r2_ = r2.limbs();
  r2_.resize(m_.size(), 0);
  BigInt r1 = (BigInt{1} << (32 * n)).mod(modulus_);
  one_ = r1.limbs();
  one_.resize(m_.size(), 0);
}

void Montgomery::mmul(std::uint32_t* out, const std::uint32_t* a,
                      const std::uint32_t* b, std::uint32_t* t) const {
  const std::size_t n = m_.size();
  g_work += static_cast<std::uint64_t>(n) * n;
  // CIOS: t has n+2 limbs.
  std::fill(t, t + n + 2, 0u);
  for (std::size_t i = 0; i < n; ++i) {
    // t += a[i] * b
    std::uint64_t carry = 0;
    const std::uint64_t ai = a[i];
    for (std::size_t j = 0; j < n; ++j) {
      std::uint64_t cur = t[j] + ai * b[j] + carry;
      t[j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::uint64_t cur = t[n] + carry;
    t[n] = static_cast<std::uint32_t>(cur);
    t[n + 1] = static_cast<std::uint32_t>(cur >> 32);

    // m = t[0] * m0inv mod 2^32; t += m * modulus; t >>= 32
    const std::uint64_t m = static_cast<std::uint32_t>(t[0] * m0inv_);
    carry = 0;
    std::uint64_t first = t[0] + m * m_[0];
    carry = first >> 32;
    for (std::size_t j = 1; j < n; ++j) {
      std::uint64_t c2 = t[j] + m * m_[j] + carry;
      t[j - 1] = static_cast<std::uint32_t>(c2);
      carry = c2 >> 32;
    }
    std::uint64_t c2 = t[n] + carry;
    t[n - 1] = static_cast<std::uint32_t>(c2);
    c2 = t[n + 1] + (c2 >> 32);
    t[n] = static_cast<std::uint32_t>(c2);
    t[n + 1] = static_cast<std::uint32_t>(c2 >> 32);
  }
  // Conditional subtraction: t may be in [0, 2m).
  bool ge = t[n] != 0;
  if (!ge) {
    ge = true;
    for (std::size_t i = n; i-- > 0;) {
      if (t[i] != m_[i]) {
        ge = t[i] > m_[i];
        break;
      }
    }
  }
  if (ge) {
    std::int64_t borrow = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::int64_t d = static_cast<std::int64_t>(t[i]) - m_[i] - borrow;
      if (d < 0) {
        d += (1LL << 32);
        borrow = 1;
      } else {
        borrow = 0;
      }
      out[i] = static_cast<std::uint32_t>(d);
    }
  } else {
    std::copy(t, t + n, out);
  }
}

Montgomery::Limbs Montgomery::mont_mul(const Limbs& a, const Limbs& b) const {
  const std::size_t n = m_.size();
  Limbs out(n);
  Limbs t(n + 2);
  mmul(out.data(), a.data(), b.data(), t.data());
  return out;
}

Montgomery::Limbs Montgomery::to_mont(const BigInt& a) const {
  Limbs al = a.mod(modulus_).limbs();
  al.resize(m_.size(), 0);
  return mont_mul(al, r2_);
}

void Montgomery::to_mont_into(std::uint32_t* out, const BigInt& a,
                              std::uint32_t* t) const {
  Limbs al = a.mod(modulus_).limbs();
  al.resize(m_.size(), 0);
  mmul(out, al.data(), r2_.data(), t);
}

BigInt Montgomery::from_mont(const Limbs& a) const {
  Limbs one(m_.size(), 0);
  one[0] = 1;
  return BigInt::from_limbs(mont_mul(a, one));
}

BigInt Montgomery::from_mont_raw(const std::uint32_t* a) const {
  const std::size_t n = m_.size();
  Limbs unit(n, 0);
  unit[0] = 1;
  Limbs out(n);
  Limbs t(n + 2);
  mmul(out.data(), a, unit.data(), t.data());
  return BigInt::from_limbs(std::move(out));
}

BigInt Montgomery::mul(const BigInt& a, const BigInt& b) const {
  return from_mont(mont_mul(to_mont(a), to_mont(b)));
}

void Montgomery::build_window_table(std::uint32_t* table,
                                    const std::uint32_t* basemont,
                                    int max_digit, std::uint32_t* t) const {
  const std::size_t n = m_.size();
  for (int d = 2; d <= max_digit; ++d) {
    mmul(table + static_cast<std::size_t>(d) * n,
         table + static_cast<std::size_t>(d - 1) * n, basemont, t);
  }
}

BigInt Montgomery::pow(const BigInt& base, const BigInt& exp) const {
  if (exp.is_zero()) return BigInt{1}.mod(modulus_);
  const std::size_t n = m_.size();
  // Partial 4-bit window table: entries above the largest digit actually
  // present in the exponent are never read, so they are never built —
  // short exponents (order checks, Lagrange-scaled integers) pay only for
  // the table they use.
  const int maxd = max_window_digit(exp);
  const std::size_t table_limbs = static_cast<std::size_t>(maxd + 1) * n;
  Workspace ws(table_limbs + 2 * n + (n + 2));
  std::uint32_t* table = ws.p;
  std::uint32_t* acc = table + table_limbs;
  std::uint32_t* t = acc + n;  // n+2 limbs, followed by nothing
  // table[1] = base in Montgomery form; table[2..maxd] by one mult each.
  to_mont_into(table + n, base, t);
  build_window_table(table, table + n, maxd, t);

  const int bits = exp.bit_length();
  const int windows = (bits + 3) / 4;
  std::copy(one_.begin(), one_.end(), acc);
  bool started = false;
  for (int w = windows - 1; w >= 0; --w) {
    if (started) {
      mmul(acc, acc, acc, t);
      mmul(acc, acc, acc, t);
      mmul(acc, acc, acc, t);
      mmul(acc, acc, acc, t);
    }
    const auto digit = exp.bits_window(4 * w, 4);
    if (digit != 0) {
      mmul(acc, acc, table + static_cast<std::size_t>(digit) * n, t);
      started = true;
    }
  }
  if (!started) return BigInt{1}.mod(modulus_);
  return from_mont_raw(acc);
}

BigInt Montgomery::simul_pow(const std::pair<BigInt, BigInt>* terms,
                             std::size_t count) const {
  assert(count >= 1 && count <= kSimulPowMax);
  const std::size_t n = m_.size();
  int bits = 0;
  int maxd[kSimulPowMax];
  std::size_t offset[kSimulPowMax];
  std::size_t table_limbs = 0;
  for (std::size_t i = 0; i < count; ++i) {
    check_nonneg(terms[i].second);
    bits = std::max(bits, terms[i].second.bit_length());
    maxd[i] = max_window_digit(terms[i].second);
    offset[i] = table_limbs;
    table_limbs += static_cast<std::size_t>(maxd[i] + 1) * n;
  }
  if (bits == 0) return BigInt{1}.mod(modulus_);

  Workspace ws(table_limbs + 2 * n + (n + 2));
  std::uint32_t* tables = ws.p;
  std::uint32_t* acc = tables + table_limbs;
  std::uint32_t* t = acc + n;
  for (std::size_t i = 0; i < count; ++i) {
    if (maxd[i] == 0) continue;  // zero exponent contributes nothing
    std::uint32_t* table = tables + offset[i];
    to_mont_into(table + n, terms[i].first, t);
    build_window_table(table, table + n, maxd[i], t);
  }

  const int windows = (bits + 3) / 4;
  std::copy(one_.begin(), one_.end(), acc);
  bool started = false;
  for (int w = windows - 1; w >= 0; --w) {
    if (started) {
      mmul(acc, acc, acc, t);
      mmul(acc, acc, acc, t);
      mmul(acc, acc, acc, t);
      mmul(acc, acc, acc, t);
    }
    for (std::size_t i = 0; i < count; ++i) {
      const auto digit = terms[i].second.bits_window(4 * w, 4);
      if (digit != 0) {
        mmul(acc, acc, tables + offset[i] + static_cast<std::size_t>(digit) * n,
             t);
        started = true;
      }
    }
  }
  if (!started) return BigInt{1}.mod(modulus_);
  return from_mont_raw(acc);
}

BigInt Montgomery::mul_pow(const BigInt& a, const BigInt& ea, const BigInt& b,
                           const BigInt& eb) const {
  check_nonneg(ea);
  check_nonneg(eb);
  const std::pair<BigInt, BigInt> terms[2] = {{a, ea}, {b, eb}};
  return simul_pow(terms, 2);
}

BigInt Montgomery::multi_pow(
    const std::vector<std::pair<BigInt, BigInt>>& terms) const {
  if (terms.empty()) return BigInt{1}.mod(modulus_);
  // The shared squaring chain serves up to kSimulPowMax bases per pass;
  // longer products fold the per-chunk results together.  The cap is a
  // window-table memory bound, and it is sized so that a whole batched
  // DLEQ verification (4 terms per statement) fits in ONE pass for the
  // batch sizes the protocols produce: a second pass costs a second full
  // squaring chain, which for 160-bit exponents is the single largest
  // line item in the profile.
  BigInt acc;
  bool have = false;
  for (std::size_t i = 0; i < terms.size(); i += kSimulPowMax) {
    const std::size_t count =
        std::min<std::size_t>(kSimulPowMax, terms.size() - i);
    BigInt part = simul_pow(terms.data() + i, count);
    acc = have ? mul(acc, part) : std::move(part);
    have = true;
  }
  return acc;
}

FixedBaseTable Montgomery::precompute(const BigInt& base,
                                      int max_exp_bits) const {
  const std::size_t n = m_.size();
  FixedBaseTable out;
  out.base_ = base;
  out.modulus_ = modulus_;
  out.n_ = n;
  out.windows_ = (std::max(max_exp_bits, 4) + 3) / 4;
  out.entries_.assign(static_cast<std::size_t>(out.windows_) * 16 * n, 0);
  Limbs t(n + 2);
  auto entry = [&](int j, int d) -> std::uint32_t* {
    return out.entries_.data() +
           (static_cast<std::size_t>(j) * 16 + static_cast<std::size_t>(d)) * n;
  };
  to_mont_into(entry(0, 1), base, t.data());
  for (int j = 0; j < out.windows_; ++j) {
    if (j > 0) {
      // base^(16^j) = (base^(16^(j-1)))^16: four squarings.
      std::copy(entry(j - 1, 1), entry(j - 1, 1) + n, entry(j, 1));
      for (int s = 0; s < 4; ++s) mmul(entry(j, 1), entry(j, 1), entry(j, 1), t.data());
    }
    for (int d = 2; d < 16; ++d) {
      mmul(entry(j, d), entry(j, d - 1), entry(j, 1), t.data());
    }
  }
  return out;
}

bool Montgomery::accepts(const FixedBaseTable& table, const BigInt& e) const {
  return table.valid() && table.n_ == m_.size() && table.modulus_ == modulus_ &&
         !e.is_negative() && e.bit_length() <= table.max_exp_bits();
}

void Montgomery::comb_mul_into(std::uint32_t* acc, const FixedBaseTable& table,
                               const BigInt& e, std::uint32_t* t) const {
  const std::size_t n = m_.size();
  const int windows = (e.bit_length() + 3) / 4;
  for (int j = 0; j < windows; ++j) {
    const auto digit = e.bits_window(4 * j, 4);
    if (digit != 0) {
      mmul(acc,
           acc,
           table.entries_.data() +
               (static_cast<std::size_t>(j) * 16 + digit) * n,
           t);
    }
  }
}

BigInt Montgomery::pow(const FixedBaseTable& table, const BigInt& e) const {
  if (e.is_zero()) return BigInt{1}.mod(modulus_);
  if (!accepts(table, e)) return pow(table.base_, e);
  const std::size_t n = m_.size();
  Workspace ws(2 * n + 2);
  std::uint32_t* acc = ws.p;
  std::uint32_t* t = acc + n;
  std::copy(one_.begin(), one_.end(), acc);
  comb_mul_into(acc, table, e, t);
  return from_mont_raw(acc);
}

BigInt Montgomery::mul_pow(const FixedBaseTable& ta, const BigInt& ea,
                           const FixedBaseTable& tb, const BigInt& eb) const {
  check_nonneg(ea);
  check_nonneg(eb);
  if (!accepts(ta, ea) || !accepts(tb, eb)) {
    return mul(pow(ta, ea), pow(tb, eb));
  }
  if (ea.is_zero()) return pow(tb, eb);
  if (eb.is_zero()) return pow(ta, ea);
  const std::size_t n = m_.size();
  Workspace ws(2 * n + 2);
  std::uint32_t* acc = ws.p;
  std::uint32_t* t = acc + n;
  std::copy(one_.begin(), one_.end(), acc);
  comb_mul_into(acc, ta, ea, t);
  comb_mul_into(acc, tb, eb, t);
  return from_mont_raw(acc);
}

BigInt Montgomery::mul_pow(const FixedBaseTable& ta, const BigInt& ea,
                           const BigInt& b, const BigInt& eb) const {
  check_nonneg(ea);
  check_nonneg(eb);
  if (!accepts(ta, ea)) return mul_pow(ta.base_, ea, b, eb);
  if (ea.is_zero()) return pow(b, eb);
  if (eb.is_zero()) return pow(ta, ea);
  // The fresh base pays the squaring chain; the cached base folds in with
  // squaring-free comb multiplications.
  const std::size_t n = m_.size();
  const int maxd = max_window_digit(eb);
  const std::size_t table_limbs = static_cast<std::size_t>(maxd + 1) * n;
  Workspace ws(table_limbs + 2 * n + (n + 2));
  std::uint32_t* table = ws.p;
  std::uint32_t* acc = table + table_limbs;
  std::uint32_t* t = acc + n;
  to_mont_into(table + n, b, t);
  build_window_table(table, table + n, maxd, t);

  const int windows = (eb.bit_length() + 3) / 4;
  std::copy(one_.begin(), one_.end(), acc);
  bool started = false;
  for (int w = windows - 1; w >= 0; --w) {
    if (started) {
      mmul(acc, acc, acc, t);
      mmul(acc, acc, acc, t);
      mmul(acc, acc, acc, t);
      mmul(acc, acc, acc, t);
    }
    const auto digit = eb.bits_window(4 * w, 4);
    if (digit != 0) {
      mmul(acc, acc, table + static_cast<std::size_t>(digit) * n, t);
      started = true;
    }
  }
  if (!started) std::copy(one_.begin(), one_.end(), acc);
  comb_mul_into(acc, ta, ea, t);
  return from_mont_raw(acc);
}

}  // namespace sintra::bignum
