// Message tracing — now an alias of the unified observability trace
// (obs/trace.hpp), which extends the original send-only record with typed
// protocol events and a JSON-lines stream mode.  Kept so simulator-era
// code (`sim::MessageTrace`, `sim::TraceEntry`) keeps compiling.
#pragma once

#include "obs/trace.hpp"

namespace sintra::sim {

using TraceEntry = obs::Event;
using MessageTrace = obs::EventTrace;

}  // namespace sintra::sim
