// Message tracing: records every transmitted frame with its protocol id,
// so experiments can break network cost down by protocol layer (the
// paper's §4.2 attributes time to "protocol overhead and network delays"
// in aggregate; the trace makes the attribution precise).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace sintra::sim {

struct TraceEntry {
  double time_ms = 0;
  int from = -1;
  int to = -1;
  std::string pid;
  std::size_t bytes = 0;
};

class MessageTrace {
 public:
  void record(double time_ms, int from, int to, std::string pid,
              std::size_t bytes) {
    entries_.push_back(TraceEntry{time_ms, from, to, std::move(pid), bytes});
  }

  [[nodiscard]] const std::vector<TraceEntry>& entries() const {
    return entries_;
  }

  struct Totals {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
  };

  /// Aggregates by a caller-supplied classifier (e.g. strip instance
  /// suffixes to group by protocol layer).
  template <typename Classify>
  [[nodiscard]] std::map<std::string, Totals> by_class(
      Classify classify) const {
    std::map<std::string, Totals> out;
    for (const TraceEntry& e : entries_) {
      Totals& t = out[classify(e.pid)];
      ++t.messages;
      t.bytes += e.bytes;
    }
    return out;
  }

  void clear() { entries_.clear(); }

 private:
  std::vector<TraceEntry> entries_;
};

}  // namespace sintra::sim
