// Discrete-event network simulator.
//
// This is the reproduction's substitute for the paper's physical test-beds
// (see DESIGN.md): virtual time advances through an event queue; each
// host's CPU is a serial resource whose speed is calibrated by the
// paper's measured 1024-bit-modexp time; links deliver FIFO with the
// Figure 3 latencies plus seeded jitter.  Protocol handlers run *real*
// cryptography — the work they perform is measured (bignum work counter)
// and converted into virtual CPU time, so computational effects (CRT
// speedups, key-size scaling, slow hosts falling behind) emerge from the
// actual arithmetic rather than from hand-tuned constants.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <queue>
#include <vector>

#include "core/dispatcher.hpp"
#include "core/env.hpp"
#include "sim/datagram.hpp"
#include "sim/trace.hpp"
#include "sim/topologies.hpp"

namespace sintra::sim {

class Simulator;

/// One simulated party: implements core::Environment on top of the
/// simulator and owns the party's dispatcher and key material.
class Node final : public core::Environment {
 public:
  /// `boot` salts the party's deterministic rng so a restarted incarnation
  /// (Simulator::restart_node) draws a fresh-but-reproducible stream;
  /// boot 1 reproduces the historical seeds exactly.
  Node(Simulator& sim, int id, crypto::PartyKeys keys,
       std::uint64_t boot = 1);

  [[nodiscard]] core::PartyId self() const override { return id_; }
  [[nodiscard]] int n() const override;
  [[nodiscard]] int t() const override { return keys_.t; }
  void send(core::PartyId to, Bytes wire) override;
  void send_all(Bytes wire) override;
  [[nodiscard]] double now_ms() const override;
  [[nodiscard]] Rng& rng() override { return rng_; }
  [[nodiscard]] const crypto::PartyKeys& keys() const override {
    return keys_;
  }

  [[nodiscard]] core::Dispatcher& dispatcher() { return dispatcher_; }

  /// Crash-stop: the node neither processes nor sends anything afterwards.
  void crash() { crashed_ = true; }
  [[nodiscard]] bool crashed() const { return crashed_; }

 private:
  friend class Simulator;

  Simulator& sim_;
  int id_;
  crypto::PartyKeys keys_;
  core::Dispatcher dispatcher_;
  Rng rng_;
  double cpu_free_at_ms_ = 0.0;
  bool crashed_ = false;
  bool in_handler_ = false;
  double handler_start_ms_ = 0.0;
  std::vector<std::pair<int, Bytes>> outbox_;
};

class Simulator {
 public:
  static constexpr double kForever = std::numeric_limits<double>::infinity();

  /// The deal must have been produced for exactly topology.n() parties.
  Simulator(Topology topology, const crypto::Deal& deal,
            std::uint64_t seed = 1);

  [[nodiscard]] int n() const { return topology_.n(); }
  [[nodiscard]] Node& node(int i) { return *nodes_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] double now_ms() const { return now_ms_; }

  /// Schedules `fn` to run in party `party`'s context (CPU-accounted, with
  /// outgoing messages departing when the handler finishes) at absolute
  /// virtual time `time_ms`.  This is how tests and benchmarks stimulate
  /// protocol inputs.
  void at(double time_ms, int party, std::function<void()> fn);

  /// Schedules `fn` at absolute virtual time `time_ms` outside any
  /// party's CPU context — for actors that are not group members, like
  /// the simulated service clients (client/sim_net.hpp) whose timers
  /// and datagrams must not consume replica CPU.
  void post(double time_ms, std::function<void()> fn);

  /// Runs events until the queue empties or virtual time would exceed
  /// `until_ms`.  Returns the number of events processed.
  std::size_t run(double until_ms = kForever);

  /// Runs until pred() is true.  Returns false if the queue drained or the
  /// deadline passed first.
  bool run_until(const std::function<bool()>& pred, double deadline_ms);

  /// Crash recovery (DESIGN.md §10): replaces party `i` with a fresh
  /// incarnation holding the same dealer keys but reset protocol state
  /// and a boot-salted rng — the deterministic analogue of SIGKILL plus
  /// process restart.  The caller must have dropped every protocol bound
  /// to the old incarnation first (they hold references into it); events
  /// already queued for party `i` run against the new node, exactly like
  /// datagrams arriving at a rebooted host.  Works whether or not the old
  /// node was crash()ed.
  Node& restart_node(int i);

  /// How many incarnations party `i` has had (1 = never restarted).
  [[nodiscard]] std::uint64_t boots(int i) const {
    return boots_.at(static_cast<std::size_t>(i));
  }

  /// Adversarial injection: raw wire bytes appear to come from `from`
  /// (the adversary holds corrupted parties' link keys; see
  /// sim/adversary.hpp).
  void inject(int from, int to, Bytes wire, double at_time_ms);

  /// Unreliable-datagram endpoint for node i (see sim/datagram.hpp); the
  /// substrate for the sliding-window link layer.
  [[nodiscard]] DatagramService& datagrams(int i);

  /// Fault model applied to datagrams only.
  DatagramFaults datagram_faults;

  /// Optional message trace: when set, every transmitted frame is
  /// recorded with its protocol id (see sim/trace.hpp).
  MessageTrace* trace = nullptr;

  /// Optional adversarial scheduler: extra one-way delay for a message
  /// from->to departing at the given time.  Must be >= 0.
  std::function<double(int from, int to, double depart_ms)> delay_hook;

  /// Fixed per-message processing overhead (protocol stack, serialization
  /// — the non-crypto part of the paper's "protocol overhead").
  double per_message_cpu_ms = 0.5;

  /// Authenticate links with HMAC-SHA1 as in the paper.  Costs little and
  /// is on by default; tests of raw injection can disable it.
  bool authenticate_links = true;

  [[nodiscard]] std::uint64_t messages_delivered() const {
    return messages_delivered_;
  }
  [[nodiscard]] std::uint64_t messages_sent() const { return messages_sent_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  friend class Node;
  friend class DatagramService;

  void transmit_datagram(int from, int to, Bytes datagram);

  struct Event {
    double time_ms;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time_ms != b.time_ms) return a.time_ms > b.time_ms;
      return a.seq > b.seq;
    }
  };

  void schedule(double time_ms, std::function<void()> fn);
  /// Runs `fn` inside `node`'s CPU context starting no earlier than
  /// `ready_ms`; flushes the node's outbox when it completes.
  void run_in_node(Node& node, double ready_ms,
                   const std::function<void()>& fn);
  void transmit(int from, int to, Bytes wire, double depart_ms);
  void deliver(int from, int to, Bytes wire, double arrival_ms);

  Topology topology_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::uint64_t> boots_;
  std::vector<std::unique_ptr<DatagramService>> datagram_services_;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  double now_ms_ = 0.0;
  std::uint64_t seq_ = 0;
  Rng net_rng_;
  std::vector<std::vector<double>> last_arrival_ms_;  // FIFO clamp per link
  std::uint64_t messages_delivered_ = 0;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

}  // namespace sintra::sim
