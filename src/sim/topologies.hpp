// The experimental setups of the paper's §4, expressed as simulator
// topologies: per-host CPU speed (the measured 1024-bit-modexp `exp`
// column) and the pairwise round-trip times of Figure 3.
#pragma once

#include <string>
#include <vector>

namespace sintra::sim {

struct HostSpec {
  std::string name;   // e.g. "Zurich-P0"
  double exp_ms;      // measured 1024-bit modexp time (paper's exp column)
};

struct Topology {
  std::vector<HostSpec> hosts;
  /// One-way latency in milliseconds between host i and host j
  /// (RTT/2 of Figure 3); latency[i][i] is the loopback cost.
  std::vector<std::vector<double>> latency_ms;
  /// Relative jitter: each message's latency is multiplied by a factor
  /// uniform in [1-jitter, 1+jitter] ("variation is quite large, often
  /// 10% or more", §4).
  double jitter = 0.10;

  [[nodiscard]] int n() const { return static_cast<int>(hosts.size()); }
};

/// The LAN setup (§4): four hosts at the Zurich lab on 100 Mbit/s
/// switched Ethernet; exp = {93, 70, 105, 132} ms.
Topology lan_setup();

/// The Internet setup (§4): Zurich / Tokyo / New York / California with
/// the Figure 3 RTTs; exp = {93, 55, 101, 427} ms.
Topology internet_setup();

/// The combined 7-host LAN+Internet setup (Zurich P0 is in both).
Topology combined_setup();

/// A uniform synthetic topology for tests: n hosts, identical CPU speed
/// and identical pairwise latency.
Topology uniform_setup(int n, double exp_ms = 90.0, double latency_ms = 1.0,
                       double jitter = 0.10);

}  // namespace sintra::sim
