// Link-layer authentication: HMAC-SHA1 over (from, to, frame) under the
// pairwise dealer key, exactly as the paper's prototype authenticates its
// TCP links (§3).
#pragma once

#include "util/bytes.hpp"

namespace sintra::sim {

/// Wraps a frame with its authentication tag.
Bytes authenticate_frame(BytesView link_key, int from, int to, BytesView frame);

/// Verifies and strips the tag; returns false (leaving `frame_out`
/// untouched) on any tampering or malformed input.
bool open_frame(BytesView link_key, int from, int to, BytesView wire,
                Bytes& frame_out);

}  // namespace sintra::sim
