// Unreliable datagram service over the simulated network.
//
// The paper's prototype ran over TCP and noted the plan "to replace TCP
// by SINTRA's own sliding-window implementation, which will provide
// authenticated acknowledgments" (§3).  This service is the substrate
// for that link layer (core/link/sliding_window.hpp): datagrams may be
// dropped, duplicated and reordered under test-controlled hooks, unlike
// the reliable FIFO channel the Simulator gives protocol code.
#pragma once

#include <functional>

#include "util/bytes.hpp"

namespace sintra::sim {

class Simulator;

/// Per-node endpoint for unreliable datagrams plus one-shot timers — the
/// two capabilities a reliable-link implementation needs.
class DatagramService {
 public:
  using Handler = std::function<void(int from, BytesView datagram)>;

  DatagramService(Simulator& sim, int self);

  [[nodiscard]] int self() const { return self_; }

  /// Fire-and-forget: subject to the simulator's drop/duplicate/reorder
  /// hooks; never retransmitted by the network.
  void send_datagram(int to, Bytes datagram);

  /// Registers the receive handler (one per node).
  void set_handler(Handler handler);

  /// One-shot timer on this node's virtual clock.
  void call_later(double delay_ms, std::function<void()> fn);

  /// The simulator's virtual clock (for the link layer's RTT estimator).
  [[nodiscard]] double now_ms() const;

 private:
  friend class Simulator;

  Simulator& sim_;
  int self_;
  Handler handler_;
};

/// Network fault model applied to datagrams (not to the reliable links).
struct DatagramFaults {
  /// Return true to drop this datagram.
  std::function<bool(int from, int to, double depart_ms)> drop;
  /// Return k >= 0 extra copies to inject (default 0).
  std::function<int(int from, int to, double depart_ms)> duplicate;
  /// Extra delay per copy (enables reordering when randomized).
  std::function<double(int from, int to, double depart_ms)> extra_delay;
};

}  // namespace sintra::sim
