// Adversary is header-only; this translation unit exists to give the
// target a home for future out-of-line growth.
#include "sim/adversary.hpp"
