#include "sim/simulator.hpp"

#include <stdexcept>

#include "crypto/cost.hpp"
#include "sim/network.hpp"

namespace sintra::sim {

Node::Node(Simulator& sim, int id, crypto::PartyKeys keys,
           std::uint64_t boot)
    : sim_(sim),
      id_(id),
      keys_(std::move(keys)),
      rng_(0x90de ^ (static_cast<std::uint64_t>(id) << 20) ^
           ((boot - 1) << 44)) {
  // Same instrumentation surface as the real-network stack; timestamps
  // use the node's virtual clock.
  dispatcher_.attach_obs(id, [this] { return now_ms(); });
}

int Node::n() const { return keys_.n; }

double Node::now_ms() const {
  return in_handler_ ? handler_start_ms_ : sim_.now_ms();
}

void Node::send(core::PartyId to, Bytes wire) {
  if (crashed_) return;
  if (to < 0 || to >= n())
    throw std::out_of_range("Node::send: bad destination");
  if (in_handler_) {
    outbox_.emplace_back(to, std::move(wire));
  } else {
    sim_.transmit(id_, to, std::move(wire), sim_.now_ms());
  }
}

void Node::send_all(Bytes wire) {
  // The last destination takes the buffer by move; the simulator still
  // materializes per-link copies at transmit time (link authentication
  // rewrites the wire per peer), so this only trims the top-level copy.
  for (int j = 0; j < n() - 1; ++j) {
    send(j, wire);
  }
  if (n() > 0) send(n() - 1, std::move(wire));
}

Simulator::Simulator(Topology topology, const crypto::Deal& deal,
                     std::uint64_t seed)
    : topology_(std::move(topology)),
      net_rng_(seed ^ 0x5e7ULL),
      last_arrival_ms_(static_cast<std::size_t>(topology_.n()),
                       std::vector<double>(static_cast<std::size_t>(topology_.n()), 0.0)) {
  if (static_cast<int>(deal.parties.size()) != topology_.n())
    throw std::invalid_argument(
        "Simulator: deal size does not match topology");
  // Deals (and their scheme handles) outlive simulator runs; invalidating
  // the precomputation caches here makes every run rebuild — and be
  // re-charged for — its comb tables, so repeated runs from one deal see
  // identical virtual timings.
  crypto::bump_cache_epoch();
  nodes_.reserve(deal.parties.size());
  boots_.assign(deal.parties.size(), 1);
  for (int i = 0; i < topology_.n(); ++i) {
    nodes_.push_back(std::make_unique<Node>(
        *this, i, deal.parties[static_cast<std::size_t>(i)]));
  }
}

Node& Simulator::restart_node(int i) {
  if (i < 0 || i >= n())
    throw std::out_of_range("Simulator::restart_node: bad party");
  auto& slot = nodes_[static_cast<std::size_t>(i)];
  crypto::PartyKeys keys = slot->keys_;  // dealer keys survive the crash
  const std::uint64_t boot = ++boots_[static_cast<std::size_t>(i)];
  slot = std::make_unique<Node>(*this, i, std::move(keys), boot);
  return *slot;
}

void Simulator::schedule(double time_ms, std::function<void()> fn) {
  queue_.push(Event{time_ms, seq_++, std::move(fn)});
}

void Simulator::at(double time_ms, int party, std::function<void()> fn) {
  if (party < 0 || party >= n())
    throw std::out_of_range("Simulator::at: bad party");
  schedule(time_ms, [this, party, fn = std::move(fn)] {
    Node& node = *nodes_[static_cast<std::size_t>(party)];
    if (node.crashed_) return;
    run_in_node(node, now_ms_, fn);
  });
}

void Simulator::post(double time_ms, std::function<void()> fn) {
  schedule(time_ms, std::move(fn));
}

void Simulator::run_in_node(Node& node, double ready_ms,
                            const std::function<void()>& fn) {
  const double start = std::max(ready_ms, node.cpu_free_at_ms_);
  node.in_handler_ = true;
  node.handler_start_ms_ = start;
  const crypto::WorkMeter meter;
  fn();
  const double cpu_ms =
      crypto::work_to_ms(meter.elapsed(),
                         topology_.hosts[static_cast<std::size_t>(node.id_)].exp_ms) +
      per_message_cpu_ms;
  node.in_handler_ = false;
  const double end = start + cpu_ms;
  node.cpu_free_at_ms_ = end;
  // Outgoing messages depart when the handler finishes.
  auto outbox = std::move(node.outbox_);
  node.outbox_.clear();
  for (auto& [to, wire] : outbox) {
    transmit(node.id_, to, std::move(wire), end);
  }
}

void Simulator::transmit(int from, int to, Bytes frame, double depart_ms) {
  ++messages_sent_;
  bytes_sent_ += frame.size();
  if (trace != nullptr) {
    try {
      trace->record(depart_ms, from, to, core::parse_frame_view(frame).pid,
                    frame.size());
    } catch (const SerdeError&) {
      trace->record(depart_ms, from, to, "<malformed>", frame.size());
    }
  }
  Bytes wire =
      authenticate_links
          ? authenticate_frame(
                nodes_[static_cast<std::size_t>(from)]->keys_.link_keys[static_cast<std::size_t>(to)],
                from, to, frame)
          : std::move(frame);

  const double base =
      topology_.latency_ms[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)];
  const double jitter_factor =
      1.0 + topology_.jitter * (2.0 * net_rng_.uniform01() - 1.0);
  double extra = 0.0;
  if (delay_hook) extra = delay_hook(from, to, depart_ms);
  double arrival = depart_ms + base * jitter_factor + extra;
  // FIFO per link (TCP streams in the paper).
  double& last = last_arrival_ms_[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)];
  arrival = std::max(arrival, last);
  last = arrival;

  schedule(arrival, [this, from, to, wire = std::move(wire)]() mutable {
    deliver(from, to, std::move(wire), now_ms_);
  });
}

void Simulator::inject(int from, int to, Bytes wire, double at_time_ms) {
  schedule(at_time_ms, [this, from, to, wire = std::move(wire)]() mutable {
    deliver(from, to, std::move(wire), now_ms_);
  });
}

void Simulator::deliver(int from, int to, Bytes wire, double arrival_ms) {
  Node& node = *nodes_[static_cast<std::size_t>(to)];
  if (node.crashed_) return;
  Bytes frame;
  if (authenticate_links) {
    if (!open_frame(node.keys_.link_keys[static_cast<std::size_t>(from)],
                    from, to, wire, frame)) {
      return;  // forged or corrupted: drop silently
    }
  } else {
    frame = std::move(wire);
  }
  ++messages_delivered_;
  run_in_node(node, arrival_ms, [&node, from, &frame] {
    node.dispatcher_.on_message(from, frame);
  });
}

DatagramService::DatagramService(Simulator& sim, int self)
    : sim_(sim), self_(self) {}

void DatagramService::send_datagram(int to, Bytes datagram) {
  sim_.transmit_datagram(self_, to, std::move(datagram));
}

void DatagramService::set_handler(Handler handler) {
  handler_ = std::move(handler);
}

void DatagramService::call_later(double delay_ms, std::function<void()> fn) {
  const int self = self_;
  Simulator& sim = sim_;
  sim_.schedule(sim_.now_ms() + delay_ms, [&sim, self, fn = std::move(fn)] {
    Node& node = *sim.nodes_[static_cast<std::size_t>(self)];
    if (node.crashed()) return;
    sim.run_in_node(node, sim.now_ms(), fn);
  });
}

double DatagramService::now_ms() const { return sim_.now_ms(); }

DatagramService& Simulator::datagrams(int i) {
  if (i < 0 || i >= n()) throw std::out_of_range("Simulator::datagrams");
  if (datagram_services_.empty()) {
    datagram_services_.resize(static_cast<std::size_t>(n()));
  }
  auto& svc = datagram_services_[static_cast<std::size_t>(i)];
  if (!svc) svc = std::make_unique<DatagramService>(*this, i);
  return *svc;
}

void Simulator::transmit_datagram(int from, int to, Bytes datagram) {
  if (to < 0 || to >= n()) throw std::out_of_range("transmit_datagram");
  const double depart = now_ms();
  if (datagram_faults.drop && datagram_faults.drop(from, to, depart)) return;
  int copies = 1;
  if (datagram_faults.duplicate) {
    copies += datagram_faults.duplicate(from, to, depart);
  }
  const double base =
      topology_.latency_ms[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)];
  for (int c = 0; c < copies; ++c) {
    double extra = 0.0;
    if (datagram_faults.extra_delay) {
      extra = datagram_faults.extra_delay(from, to, depart);
    }
    const double jitter_factor =
        1.0 + topology_.jitter * (2.0 * net_rng_.uniform01() - 1.0);
    const double arrival = depart + base * jitter_factor + extra;
    // No FIFO clamp: datagrams reorder freely.
    schedule(arrival, [this, from, to, datagram] {
      Node& node = *nodes_[static_cast<std::size_t>(to)];
      if (node.crashed()) return;
      auto& svc = datagrams(to);
      if (!svc.handler_) return;
      run_in_node(node, now_ms_,
                  [&svc, from, &datagram] { svc.handler_(from, datagram); });
    });
  }
}

std::size_t Simulator::run(double until_ms) {
  std::size_t processed = 0;
  while (!queue_.empty()) {
    if (queue_.top().time_ms > until_ms) break;
    Event ev = queue_.top();
    queue_.pop();
    now_ms_ = ev.time_ms;
    ev.fn();
    ++processed;
  }
  return processed;
}

bool Simulator::run_until(const std::function<bool()>& pred,
                          double deadline_ms) {
  if (pred()) return true;
  while (!queue_.empty() && queue_.top().time_ms <= deadline_ms) {
    Event ev = queue_.top();
    queue_.pop();
    now_ms_ = ev.time_ms;
    ev.fn();
    if (pred()) return true;
  }
  return false;
}

}  // namespace sintra::sim
