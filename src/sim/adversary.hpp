// Adversary harness for tests and fault-injection benchmarks.
//
// The Byzantine model gives the adversary the full state of corrupted
// parties — including their link keys and threshold-share material (held
// in the Deal).  This helper crash-stops a party's honest logic and lets
// the test forge arbitrary protocol messages under its identity, which is
// exactly what a corrupted party can do.
#pragma once

#include <set>
#include <string_view>

#include "crypto/dealer.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace sintra::sim {

class Adversary {
 public:
  Adversary(Simulator& sim, crypto::Deal deal)
      : sim_(sim), deal_(std::move(deal)) {}

  /// Takes over party i (its honest protocol stack stops executing).
  void corrupt(int i) {
    sim_.node(i).crash();
    corrupted_.insert(i);
  }

  [[nodiscard]] bool is_corrupted(int i) const {
    return corrupted_.contains(i);
  }

  /// Crash fault only (no forged traffic afterwards).
  void crash(int i) { sim_.node(i).crash(); }

  /// Access to a corrupted party's key material (e.g. to craft valid
  /// signature shares on equivocating payloads).
  [[nodiscard]] const crypto::PartyKeys& keys_of(int i) const {
    return deal_.parties.at(static_cast<std::size_t>(i));
  }

  /// Sends an arbitrary payload under protocol id `pid` as corrupted
  /// party `from`, correctly link-authenticated.
  void send_as(int from, int to, std::string_view pid, BytesView payload,
               double at_ms) {
    const Bytes frame = core::frame_message(pid, payload);
    const Bytes wire = authenticate_frame(
        keys_of(from).link_keys.at(static_cast<std::size_t>(to)), from, to,
        frame);
    sim_.inject(from, to, wire, at_ms);
  }

  /// Broadcast version of send_as (distinct payload copies per receiver
  /// are possible by calling send_as directly — equivocation!).
  void send_as_all(int from, std::string_view pid, BytesView payload,
                   double at_ms) {
    for (int j = 0; j < sim_.n(); ++j) send_as(from, j, pid, payload, at_ms);
  }

 private:
  Simulator& sim_;
  crypto::Deal deal_;
  std::set<int> corrupted_;
};

}  // namespace sintra::sim
