#include "sim/network.hpp"

#include "crypto/hmac.hpp"
#include "util/serde.hpp"

namespace sintra::sim {

namespace {
Bytes mac_input(int from, int to, BytesView frame) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(from));
  w.u32(static_cast<std::uint32_t>(to));
  w.raw(frame);
  return std::move(w).take();
}
}  // namespace

Bytes authenticate_frame(BytesView link_key, int from, int to,
                         BytesView frame) {
  const Bytes tag =
      crypto::hmac(crypto::HashKind::kSha1, link_key, mac_input(from, to, frame));
  Writer w;
  w.bytes(tag);
  w.raw(frame);
  return std::move(w).take();
}

bool open_frame(BytesView link_key, int from, int to, BytesView wire,
                Bytes& frame_out) {
  try {
    Reader r(wire);
    const Bytes tag = r.bytes();
    Bytes frame = r.raw(r.remaining());
    if (!crypto::hmac_verify(crypto::HashKind::kSha1, link_key,
                             mac_input(from, to, frame), tag)) {
      return false;
    }
    frame_out = std::move(frame);
    return true;
  } catch (const SerdeError&) {
    return false;
  }
}

}  // namespace sintra::sim
