#include "sim/topologies.hpp"

#include <stdexcept>

namespace sintra::sim {

namespace {

constexpr double kLanRttMs = 0.2;       // 100 Mbit/s switched Ethernet
constexpr double kLoopbackMs = 0.01;

// Figure 3 round-trip times (ms).  The figure labels six edges with
// {93, 164, 230, 242, 285, 373}; the text adds that "packet round-trip
// times range from about 100 to 400 ms between most pairs".  We assign
// them geographically: Zurich–NewYork is the best transatlantic path (93),
// Zurich–California adds the US crossing (164), Zurich–Tokyo 230,
// NewYork–California 242, NewYork–Tokyo 285, and California–Tokyo 373 —
// consistent with §4.1's observation that Tokyo is "the most difficult to
// reach from the others".
constexpr double kZurTok = 230, kZurNyc = 93, kZurCal = 164;
constexpr double kTokNyc = 285, kTokCal = 373, kNycCal = 242;

std::vector<std::vector<double>> symmetric(int n, double fill) {
  std::vector<std::vector<double>> m(static_cast<std::size_t>(n),
                                     std::vector<double>(static_cast<std::size_t>(n), fill));
  for (int i = 0; i < n; ++i) {
    m[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] = kLoopbackMs;
  }
  return m;
}

void set_rtt(Topology& topo, int i, int j, double rtt) {
  topo.latency_ms[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
      rtt / 2;
  topo.latency_ms[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] =
      rtt / 2;
}

}  // namespace

Topology lan_setup() {
  Topology t;
  t.hosts = {{"Zurich-P0-Linux", 93.0},
             {"Zurich-P1-Linux", 70.0},
             {"Zurich-P2-AIX", 105.0},
             {"Zurich-P3-Win2k", 132.0}};
  t.latency_ms = symmetric(4, kLanRttMs / 2);
  return t;
}

Topology internet_setup() {
  Topology t;
  t.hosts = {{"Zurich-P0", 93.0},
             {"Tokyo-P1", 55.0},
             {"NewYork-P2", 101.0},
             {"California-P3", 427.0}};
  t.latency_ms = symmetric(4, 0.0);
  set_rtt(t, 0, 1, kZurTok);
  set_rtt(t, 0, 2, kZurNyc);
  set_rtt(t, 0, 3, kZurCal);
  set_rtt(t, 1, 2, kTokNyc);
  set_rtt(t, 1, 3, kTokCal);
  set_rtt(t, 2, 3, kNycCal);
  return t;
}

Topology combined_setup() {
  // Hosts 0..3: the LAN machines (0 is Zurich P0, part of both setups);
  // hosts 4..6: Tokyo, New York, California.
  Topology t;
  t.hosts = {{"Zurich-P0-Linux", 93.0},  {"Zurich-P1-Linux", 70.0},
             {"Zurich-P2-AIX", 105.0},   {"Zurich-P3-Win2k", 132.0},
             {"Tokyo-P1", 55.0},         {"NewYork-P2", 101.0},
             {"California-P3", 427.0}};
  t.latency_ms = symmetric(7, kLanRttMs / 2);
  // Every Zurich host reaches the remote sites with the Figure 3 RTTs.
  for (int z = 0; z < 4; ++z) {
    set_rtt(t, z, 4, kZurTok);
    set_rtt(t, z, 5, kZurNyc);
    set_rtt(t, z, 6, kZurCal);
  }
  set_rtt(t, 4, 5, kTokNyc);
  set_rtt(t, 4, 6, kTokCal);
  set_rtt(t, 5, 6, kNycCal);
  return t;
}

Topology uniform_setup(int n, double exp_ms, double latency_ms,
                       double jitter) {
  if (n < 1) throw std::invalid_argument("uniform_setup: n < 1");
  Topology t;
  for (int i = 0; i < n; ++i) {
    t.hosts.push_back({"host-" + std::to_string(i), exp_ms});
  }
  t.latency_ms = symmetric(n, latency_ms);
  t.jitter = jitter;
  return t;
}

}  // namespace sintra::sim
