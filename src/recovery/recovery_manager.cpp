#include "recovery/recovery_manager.hpp"

#include <utility>

#include "util/serde.hpp"

namespace sintra::recovery {

namespace {

Bytes encode_record(const RecoveryManager::Record& rec) {
  Writer w;
  w.u64(rec.seq);
  w.u32(rec.origin);
  w.bytes(rec.payload);
  return std::move(w).take();
}

RecoveryManager::Record decode_record(Reader& r) {
  RecoveryManager::Record rec;
  rec.seq = r.u64();
  rec.origin = r.u32();
  rec.payload = r.bytes();
  return rec;
}

}  // namespace

RecoveryManager::RecoveryManager(core::Environment& env,
                                 core::Dispatcher& dispatcher,
                                 std::string channel_pid, StateStore* store,
                                 Options options)
    : Protocol(env, dispatcher, "recovery." + channel_pid),
      options_(options),
      channel_pid_(std::move(channel_pid)),
      store_(store),
      digest_(chain_init(channel_pid_)) {
  if (store_ != nullptr) {
    log_ = std::make_unique<ReplicaLog>(store_->log_path(channel_pid_));
  }
  auto& reg = obs::registry();
  const auto labels = obs::party_labels(env.self());
  m_log_records_ = &reg.counter("recovery.log_records", labels);
  m_replayed_ = &reg.counter("recovery.replayed_records", labels);
  m_log_truncated_ = &reg.counter("recovery.log_truncated", labels);
  m_requests_ = &reg.counter("recovery.catchup_requests", labels);
  m_served_ = &reg.counter("recovery.catchup_served", labels);
  m_fetched_ = &reg.counter("recovery.catchup_records", labels);
  m_shares_ = &reg.counter("recovery.checkpoint_shares", labels);
  m_certs_ = &reg.counter("recovery.checkpoint_certs", labels);
  m_rejected_ = &reg.counter("recovery.rejected", labels);
  activate();
}

RecoveryManager::~RecoveryManager() = default;

Bytes RecoveryManager::statement(std::uint64_t seq, bool final,
                                 BytesView digest) const {
  return checkpoint_statement(channel_pid_, seq, final, digest);
}

void RecoveryManager::on_delivered(BytesView payload, int origin) {
  Record rec;
  rec.seq = seq_ + 1;
  rec.origin = origin < 0 ? 0xFFFFFFFFu : static_cast<std::uint32_t>(origin);
  rec.payload.assign(payload.begin(), payload.end());
  advance(std::move(rec), Source::kLive);
  if (options_.checkpoint_interval > 0 &&
      seq_ % options_.checkpoint_interval == 0) {
    initiate_checkpoint(seq_, /*final=*/false);
  }
}

void RecoveryManager::force_checkpoint(bool final) {
  initiate_checkpoint(seq_, final);
}

void RecoveryManager::advance(Record record, Source source) {
  digest_ = chain_next(digest_, record.seq, record.origin, record.payload);
  seq_ = record.seq;
  digests_.push_back(digest_);
  records_.push_back(std::move(record));
  const Record& rec = records_.back();

  if (source != Source::kReplay && log_ != nullptr && log_->ok()) {
    // Durable before acknowledged: the fsync inside append() is what
    // makes "the replica delivered seq s" survive a SIGKILL.
    if (log_->append(encode_record(rec))) m_log_records_->inc();
  }
  if (source == Source::kReplay) {
    m_replayed_->inc();
  } else if (source == Source::kCatchup) {
    m_fetched_->inc();
  }
  if (source != Source::kLive && apply_cb_) apply_cb_(rec);

  // A certificate assembled from shares while we were behind may now be
  // checkable against our chain.
  if (const auto it = pending_certs_.find(seq_); it != pending_certs_.end()) {
    CheckpointCert cert = std::move(it->second);
    pending_certs_.erase(it);
    handle_cert(std::move(cert), /*verified=*/true);
  }
}

void RecoveryManager::initiate_checkpoint(std::uint64_t seq, bool final) {
  if (!initiated_.emplace(seq, final).second) return;
  const Bytes& digest = seq == 0 ? digest_ : digests_[seq - 1];
  const Bytes stmt = statement(seq, final, digest);
  Bytes share = env_.keys().sig_agreement->sign_share(stmt);
  m_shares_->inc();

  Writer w;
  w.u8(kShare);
  w.u64(seq);
  w.u8(final ? 1 : 0);
  w.bytes(digest);
  w.bytes(share);
  send_all(w.data());

  // Our own share counts toward k directly (on_message ignores self, so
  // transports that loop send_all back do not double-add).
  const ShareKey key{seq, final, digest};
  add_share(key, env_.self(), std::move(share));
  try_combine(key);
}

void RecoveryManager::on_message(core::PartyId from, BytesView payload) {
  if (from == env_.self()) return;
  try {
    Reader r(payload);
    switch (r.u8()) {
      case kShare:
        handle_share(from, r);
        break;
      case kRequest:
        handle_request(from, r);
        break;
      case kResponse:
        handle_response(from, r);
        break;
      default:
        m_rejected_->inc();
    }
  } catch (const SerdeError&) {
    m_rejected_->inc();
  }
}

void RecoveryManager::handle_share(core::PartyId from, Reader& r) {
  ShareKey key;
  key.seq = r.u64();
  key.final = r.u8() != 0;
  key.digest = r.bytes();
  Bytes share = r.bytes();
  r.expect_end();
  add_share(key, from, std::move(share));
  try_combine(key);
}

void RecoveryManager::add_share(const ShareKey& key, int signer,
                                Bytes share) {
  auto it = shares_.find(key);
  if (it == shares_.end()) {
    if (shares_.size() >= options_.max_share_keys) {
      m_rejected_->inc();  // flood guard: divergent statements bounded
      return;
    }
    it = shares_.emplace(key, std::map<int, Bytes>{}).first;
  }
  it->second[signer] = std::move(share);
}

void RecoveryManager::try_combine(const ShareKey& key) {
  if (const auto it = cert_history_.find(key.seq);
      it != cert_history_.end() && (it->second.final || !key.final)) {
    return;  // already hold a certificate at least this strong
  }
  const auto it = shares_.find(key);
  if (it == shares_.end()) return;
  auto& scheme = *env_.keys().sig_agreement;
  if (static_cast<int>(it->second.size()) < scheme.k()) return;
  const std::vector<std::pair<int, Bytes>> shares(it->second.begin(),
                                                  it->second.end());
  // Combine-first fast path: one verification of the assembled signature
  // replaces k share verifications; bad shares trigger the blacklist
  // fallback inside combine_checked (see crypto/threshold_sig.hpp).
  auto checked =
      scheme.combine_checked(statement(key.seq, key.final, key.digest), shares);
  if (!checked) return;  // offenders blacklisted; wait for honest shares
  CheckpointCert cert;
  cert.seq = key.seq;
  cert.final = key.final;
  cert.digest = key.digest;
  cert.sig = std::move(checked->sig);
  handle_cert(std::move(cert), /*verified=*/true);
}

void RecoveryManager::handle_cert(CheckpointCert cert, bool verified) {
  if (!verified &&
      !verify_cert(*env_.keys().sig_agreement, channel_pid_, cert)) {
    m_rejected_->inc();
    return;
  }
  if (cert.seq > seq_) {
    // Can't check its digest against a chain position we haven't reached;
    // hold it, and let catch-up fetch the records in between.
    auto& slot = pending_certs_[cert.seq];
    if (slot.sig.empty() || (cert.final && !slot.final)) slot = cert;
    if (catchup_active_ && !caught_up_) send_request();
    return;
  }
  const Bytes& ours =
      cert.seq == 0 ? chain_init(channel_pid_) : digests_[cert.seq - 1];
  if (ours != cert.digest) {
    // A valid threshold signature over a digest that is not ours: our
    // local history diverged from the replicated one (disk corruption in
    // the already-CRC-valid prefix).  Counted, not adopted.
    m_rejected_->inc();
    return;
  }
  adopt_cert(cert);
}

void RecoveryManager::adopt_cert(const CheckpointCert& cert) {
  const auto it = cert_history_.find(cert.seq);
  if (it != cert_history_.end() && (it->second.final || !cert.final)) {
    return;  // duplicate (e.g. combined locally and received via catch-up)
  }
  cert_history_[cert.seq] = cert;
  m_certs_->inc();

  const bool better = !latest_cert_ || cert.seq > latest_cert_->seq ||
                      (cert.seq == latest_cert_->seq && cert.final &&
                       !latest_cert_->final);
  if (better) {
    latest_cert_ = cert;
    persist_cert();
  }

  // Shares for statements this certificate supersedes are dead weight.
  for (auto sit = shares_.begin(); sit != shares_.end();) {
    const ShareKey& key = sit->first;
    const bool covered = key.seq < cert.seq ||
                         (key.seq == cert.seq && (cert.final || !key.final));
    sit = covered ? shares_.erase(sit) : ++sit;
  }

  if (cert.final && cert.seq == seq_ && !caught_up_) {
    caught_up_ = true;
    catchup_active_ = false;
    if (caught_up_cb_) caught_up_cb_();
  }

  // Event-driven lagger liveness: every new certificate pushes a fresh
  // chunk to known laggers, so a requester that asked before we had
  // anything to serve still completes (the final certificate is the
  // terminal push).
  const auto laggers = laggers_;
  for (const auto& [peer, at] : laggers) {
    (void)at;
    serve(peer);
  }
}

void RecoveryManager::persist_cert() const {
  if (store_ == nullptr || !latest_cert_) return;
  store_->save_blob(channel_pid_, encode_cert(*latest_cert_));
}

void RecoveryManager::handle_request(core::PartyId from, Reader& r) {
  const std::uint64_t at = r.u64();
  r.expect_end();
  laggers_[from] = at;
  serve(from);
}

void RecoveryManager::serve(core::PartyId to) {
  const auto lit = laggers_.find(to);
  if (lit == laggers_.end() || !latest_cert_) return;
  const std::uint64_t at = lit->second;

  // Chunks must end exactly on a certificate boundary — that is the only
  // place the requester can verify the chain it rebuilt.  Extend the
  // chunk certificate by certificate while it fits the datagram budget;
  // the first certificate past `at` is always included so progress never
  // stalls (a single oversized interval would exceed the UDP datagram
  // cap anyway — keep interval * payload below it).
  const CheckpointCert* target = nullptr;
  std::size_t bytes = 0;
  for (const auto& [seq, cert] : cert_history_) {
    if (seq <= at) continue;
    std::size_t extra = 0;
    for (std::uint64_t s = (target == nullptr ? at : target->seq) + 1;
         s <= seq; ++s) {
      extra += 16 + records_[s - 1].payload.size();
    }
    if (target != nullptr && bytes + extra > options_.max_response_bytes) {
      break;
    }
    target = &cert;
    bytes += extra;
  }
  if (target == nullptr) {
    // Nothing newer than `at`; still confirm finality so a fully
    // caught-up requester learns it can stop.
    if (latest_cert_->final && latest_cert_->seq == at) {
      target = &*latest_cert_;
    } else {
      return;
    }
  }

  Writer w;
  w.u8(kResponse);
  w.u8(1);
  w.bytes(encode_cert(*target));
  const std::uint64_t first = at + 1;
  const std::uint32_t count =
      target->seq >= first
          ? static_cast<std::uint32_t>(target->seq - first + 1)
          : 0;
  w.u32(count);
  for (std::uint64_t s = first; s <= target->seq; ++s) {
    w.raw(encode_record(records_[s - 1]));
  }
  send_to(to, w.data());
  m_served_->inc();
  if (target->final) {
    laggers_.erase(to);  // terminal push delivered; requester is done
  } else {
    lit->second = target->seq;  // push only newer chunks from here on
  }
}

void RecoveryManager::handle_response(core::PartyId /*from*/, Reader& r) {
  if (r.u8() == 0) {
    r.expect_end();
    return;
  }
  const Bytes cert_raw = r.bytes();
  CheckpointCert cert = decode_cert(cert_raw);
  const std::uint32_t count = r.u32();
  std::vector<Record> incoming;
  incoming.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    incoming.push_back(decode_record(r));
  }
  r.expect_end();

  if (!verify_cert(*env_.keys().sig_agreement, channel_pid_, cert)) {
    m_rejected_->inc();
    return;
  }
  if (cert.seq <= seq_) {
    handle_cert(std::move(cert), /*verified=*/true);
    return;
  }

  // Rebuild the chain from our position through the shipped records; only
  // if it lands exactly on the certificate's digest is any of it applied.
  // A Byzantine responder therefore cannot plant a single fabricated
  // record, even alongside a genuine certificate.
  Bytes d = digest_;
  std::uint64_t s = seq_;
  std::vector<const Record*> to_apply;
  for (const Record& rec : incoming) {
    if (rec.seq <= s) continue;  // overlap with what we already hold
    if (rec.seq != s + 1) {
      m_rejected_->inc();
      return;
    }
    d = chain_next(d, rec.seq, rec.origin, rec.payload);
    s = rec.seq;
    to_apply.push_back(&rec);
    if (s == cert.seq) break;
  }
  if (s != cert.seq || d != cert.digest) {
    m_rejected_->inc();
    return;
  }
  for (const Record* rec : to_apply) {
    advance(*rec, Source::kCatchup);
  }
  handle_cert(std::move(cert), /*verified=*/true);
  if (catchup_active_ && !caught_up_) {
    send_request();  // progress made; there may be more beyond this chunk
  }
}

std::size_t RecoveryManager::replay_local() {
  if (store_ == nullptr) return 0;
  const std::string path = store_->log_path(channel_pid_);
  auto loaded = ReplicaLog::load(path);
  if (loaded.truncated) {
    m_log_truncated_->inc();
    // Cut the torn tail off before any new appends land after it.
    ReplicaLog::truncate_to(path, loaded.valid_bytes);
  }
  std::size_t replayed = 0;
  for (const Bytes& raw : loaded.records) {
    try {
      Reader r(raw);
      Record rec = decode_record(r);
      r.expect_end();
      if (rec.seq != seq_ + 1) break;  // our own log must be gapless
      advance(std::move(rec), Source::kReplay);
      ++replayed;
    } catch (const SerdeError&) {
      break;  // CRC-valid but unparsable: stop at the damage
    }
  }
  // A previously persisted certificate seeds latest_cert_ (and, when it
  // was final and the log is complete, completes recovery without the
  // network).
  if (const auto blob = store_->load_blob(channel_pid_)) {
    try {
      handle_cert(decode_cert(*blob), /*verified=*/false);
    } catch (const SerdeError&) {
      m_rejected_->inc();
    }
  }
  return replayed;
}

void RecoveryManager::start_catchup() {
  if (caught_up_) return;
  catchup_active_ = true;
  send_request();
}

void RecoveryManager::send_request() {
  Writer w;
  w.u8(kRequest);
  w.u64(seq_);
  send_all(w.data());
  m_requests_->inc();
}

}  // namespace sintra::recovery
