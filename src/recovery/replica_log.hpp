// Durable replica log: an append-only, CRC-framed, fsync'd stream of
// opaque records (DESIGN.md §10).
//
// Every frame is `u32 length | u32 crc32(payload) | payload` (big-endian,
// matching the wire serde).  Appends are flushed with fsync before they
// are reported durable, so a record the caller saw acknowledged survives
// SIGKILL and power loss.  A crash *during* an append can leave a torn
// final frame; load() therefore returns the longest valid prefix and a
// `truncated` flag instead of failing — the recovery layer replays the
// prefix and fetches the rest from its peers (the catch-up protocol),
// after truncating the file back to the valid prefix so later appends
// extend a well-formed log.
//
// The CRC is crash-consistency framing only, not authentication: the log
// is this replica's private state.  Records fetched from *other* replicas
// are authenticated by the threshold-signed checkpoint digest chain
// before they are ever appended here (recovery_manager.cpp).
#pragma once

#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace sintra::recovery {

class ReplicaLog {
 public:
  /// Largest accepted record; a corrupt length field must not trigger a
  /// giant allocation.
  static constexpr std::uint32_t kMaxRecordBytes = 16u << 20;

  struct LoadResult {
    std::vector<Bytes> records;  // longest valid prefix, in append order
    std::size_t valid_bytes = 0;  // file offset the prefix ends at
    bool truncated = false;       // a torn/corrupt tail was discarded
  };

  /// Parses the log at `path`.  A missing file is an empty, non-truncated
  /// log (first boot).
  static LoadResult load(const std::string& path);

  /// Shrinks the file to `len` bytes (discarding a corrupt tail found by
  /// load()).  Returns false on I/O failure.
  static bool truncate_to(const std::string& path, std::size_t len);

  /// Opens `path` for appending (creating it if needed).  Check ok().
  explicit ReplicaLog(std::string path);
  ~ReplicaLog();

  ReplicaLog(const ReplicaLog&) = delete;
  ReplicaLog& operator=(const ReplicaLog&) = delete;

  [[nodiscard]] bool ok() const { return fd_ >= 0; }

  /// Appends one framed record and fsyncs.  Returns false (filling
  /// `error` when given) on any failure; the log is then unusable for
  /// further appends but its on-disk prefix remains valid.
  bool append(BytesView record, std::string* error = nullptr);

 private:
  std::string path_;
  int fd_ = -1;
};

}  // namespace sintra::recovery
