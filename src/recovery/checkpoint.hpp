// Threshold-signed checkpoints over the delivery stream (DESIGN.md §10).
//
// Each replica chains a running digest over its delivered records:
//
//   D_0 = H("sintra.recovery.v1" | channel_pid)
//   D_s = H(D_{s-1} | s | origin_s | payload_s)
//
// Honest replicas of the same atomic channel deliver identical streams,
// so they compute identical D_s.  Every `checkpoint_interval` deliveries
// (and once more at channel close, with the `final` flag set) each
// replica signs the statement (channel, seq, final, D_seq) with its
// share of the *agreement* threshold scheme (k = n − t: the honest
// survivors alone always reach it) and broadcasts the share.  Any party
// holding k shares combines them into a single threshold signature — a
// self-certifying checkpoint certificate.  A restarted or lagging
// replica accepts a certificate with ONE threshold verification, instead
// of collecting and counting t + 1 matching votes; this is exactly the
// paper's §2.1 use of threshold signatures to compress quorum evidence.
//
// The digest chain also authenticates the catch-up payload: a responder
// ships raw records, and the requester re-chains them from its own
// position — if the chain lands on the certificate's digest, every
// record in between is as trustworthy as the certificate itself.
#pragma once

#include <string_view>

#include "crypto/threshold_sig.hpp"
#include "util/bytes.hpp"

namespace sintra::recovery {

/// A self-certifying checkpoint: `sig` is a k = n − t threshold signature
/// on checkpoint_statement(channel_pid, seq, final, digest).
struct CheckpointCert {
  std::uint64_t seq = 0;  // deliveries covered: records 1..seq
  bool final = false;     // set by the close-time checkpoint
  Bytes digest;           // D_seq of the chain below
  Bytes sig;
};

/// D_0: the chain anchor for a channel.
[[nodiscard]] Bytes chain_init(std::string_view channel_pid);

/// D_s from D_{s-1} and delivered record s.  `origin` is the delivering
/// channel's origin party (0xFFFFFFFF when the channel hides origins).
[[nodiscard]] Bytes chain_next(BytesView prev, std::uint64_t seq,
                               std::uint32_t origin, BytesView payload);

/// The byte string the threshold shares sign.
[[nodiscard]] Bytes checkpoint_statement(std::string_view channel_pid,
                                         std::uint64_t seq, bool final,
                                         BytesView digest);

/// Serialization (checkpoint files and kResponse wire messages).
[[nodiscard]] Bytes encode_cert(const CheckpointCert& cert);
/// Throws SerdeError on malformed input.
[[nodiscard]] CheckpointCert decode_cert(BytesView raw);

/// One threshold verification of the certificate for `channel_pid`.
[[nodiscard]] bool verify_cert(const crypto::ThresholdSigScheme& scheme,
                               std::string_view channel_pid,
                               const CheckpointCert& cert);

}  // namespace sintra::recovery
