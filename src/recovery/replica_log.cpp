#include "recovery/replica_log.hpp"

#include <cerrno>
#include <cstring>
#include <fstream>

#include <fcntl.h>
#include <unistd.h>

#include "util/crc32.hpp"

namespace sintra::recovery {

namespace {

std::uint32_t be32(const Bytes& buf, std::size_t off) {
  return (static_cast<std::uint32_t>(buf[off]) << 24) |
         (static_cast<std::uint32_t>(buf[off + 1]) << 16) |
         (static_cast<std::uint32_t>(buf[off + 2]) << 8) |
         static_cast<std::uint32_t>(buf[off + 3]);
}

void put32(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v >> 24);
  out[1] = static_cast<std::uint8_t>(v >> 16);
  out[2] = static_cast<std::uint8_t>(v >> 8);
  out[3] = static_cast<std::uint8_t>(v);
}

}  // namespace

ReplicaLog::LoadResult ReplicaLog::load(const std::string& path) {
  LoadResult out;
  std::ifstream in(path, std::ios::binary);
  if (!in) return out;  // first boot: no log yet
  Bytes buf((std::istreambuf_iterator<char>(in)),
            std::istreambuf_iterator<char>());
  std::size_t off = 0;
  while (buf.size() - off >= 8) {
    const std::uint32_t len = be32(buf, off);
    const std::uint32_t crc = be32(buf, off + 4);
    if (len > kMaxRecordBytes || off + 8 + len > buf.size()) break;
    const BytesView payload(buf.data() + off + 8, len);
    if (util::crc32(payload) != crc) break;
    out.records.emplace_back(payload.begin(), payload.end());
    off += 8 + len;
  }
  out.valid_bytes = off;
  out.truncated = off != buf.size();
  return out;
}

bool ReplicaLog::truncate_to(const std::string& path, std::size_t len) {
  return ::truncate(path.c_str(), static_cast<off_t>(len)) == 0;
}

ReplicaLog::ReplicaLog(std::string path) : path_(std::move(path)) {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
}

ReplicaLog::~ReplicaLog() {
  if (fd_ >= 0) ::close(fd_);
}

bool ReplicaLog::append(BytesView record, std::string* error) {
  if (fd_ < 0 || record.size() > kMaxRecordBytes) {
    if (error != nullptr) *error = "log not open or record too large";
    return false;
  }
  // One buffer, one write: O_APPEND makes the whole frame land
  // contiguously even if another fd somehow appends concurrently, and a
  // crash mid-write tears at most this one frame (which load() then
  // discards by CRC).
  Bytes frame(8 + record.size());
  put32(frame.data(), static_cast<std::uint32_t>(record.size()));
  put32(frame.data() + 4, util::crc32(record));
  std::memcpy(frame.data() + 8, record.data(), record.size());
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::write(fd_, frame.data() + off, frame.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) {
        *error = std::string("write ") + path_ + ": " + std::strerror(errno);
      }
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd_) != 0) {
    if (error != nullptr) {
      *error = std::string("fsync ") + path_ + ": " + std::strerror(errno);
    }
    return false;
  }
  return true;
}

}  // namespace sintra::recovery
