#include "recovery/checkpoint.hpp"

#include "crypto/sha256.hpp"
#include "util/serde.hpp"

namespace sintra::recovery {

Bytes chain_init(std::string_view channel_pid) {
  Writer w;
  w.str("sintra.recovery.v1");
  w.str(channel_pid);
  return crypto::Sha256::hash(w.data());
}

Bytes chain_next(BytesView prev, std::uint64_t seq, std::uint32_t origin,
                 BytesView payload) {
  Writer w;
  w.bytes(prev);
  w.u64(seq);
  w.u32(origin);
  w.bytes(payload);
  return crypto::Sha256::hash(w.data());
}

Bytes checkpoint_statement(std::string_view channel_pid, std::uint64_t seq,
                           bool final, BytesView digest) {
  Writer w;
  w.str("sintra.checkpoint.v1");
  w.str(channel_pid);
  w.u64(seq);
  w.u8(final ? 1 : 0);
  w.bytes(digest);
  return std::move(w).take();
}

Bytes encode_cert(const CheckpointCert& cert) {
  Writer w;
  w.u64(cert.seq);
  w.u8(cert.final ? 1 : 0);
  w.bytes(cert.digest);
  w.bytes(cert.sig);
  return std::move(w).take();
}

CheckpointCert decode_cert(BytesView raw) {
  Reader r(raw);
  CheckpointCert cert;
  cert.seq = r.u64();
  cert.final = r.u8() != 0;
  cert.digest = r.bytes();
  cert.sig = r.bytes();
  r.expect_end();
  return cert;
}

bool verify_cert(const crypto::ThresholdSigScheme& scheme,
                 std::string_view channel_pid, const CheckpointCert& cert) {
  return scheme.verify(
      checkpoint_statement(channel_pid, cert.seq, cert.final, cert.digest),
      cert.sig);
}

}  // namespace sintra::recovery
