// Per-replica durable state directory (DESIGN.md §10).
//
// Owns the layout of `--state-dir`: the replica log, checkpoint
// certificate snapshots, and a boot counter.  Snapshots go through
// util::atomic_write_file, so a reader (or the next boot) only ever sees
// a complete file.  The boot counter is bumped *before* anything else on
// startup — a second boot from the same directory is how a process knows
// it is a restart and must enter recovery, robust even when the first
// boot crashed before writing its first log record.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "util/bytes.hpp"

namespace sintra::recovery {

class StateStore {
 public:
  /// Creates `dir` (and parents) if missing.
  explicit StateStore(std::string dir);

  [[nodiscard]] const std::string& dir() const { return dir_; }

  /// Increments and durably persists the boot counter; returns the new
  /// value (1 on the first boot from a fresh directory).
  std::uint64_t bump_boot();

  /// Path of the replica log for `name` (a channel pid; sanitized).
  [[nodiscard]] std::string log_path(std::string_view name) const;

  /// Atomic snapshot of a named blob (checkpoint certificates).
  bool save_blob(std::string_view name, BytesView blob,
                 std::string* error = nullptr) const;
  [[nodiscard]] std::optional<Bytes> load_blob(std::string_view name) const;

 private:
  [[nodiscard]] std::string path_for(std::string_view name,
                                     std::string_view suffix) const;

  std::string dir_;
};

}  // namespace sintra::recovery
