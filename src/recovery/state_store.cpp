#include "recovery/state_store.hpp"

#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "util/atomic_file.hpp"

namespace sintra::recovery {

StateStore::StateStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);  // best effort; opens fail loudly later
  while (dir_.size() > 1 && dir_.back() == '/') dir_.pop_back();
}

std::uint64_t StateStore::bump_boot() {
  const std::string path = dir_ + "/boot";
  std::uint64_t boot = 0;
  if (std::ifstream in(path); in) {
    in >> boot;
    if (!in) boot = 0;  // unreadable counter: treat as fresh
  }
  ++boot;
  util::atomic_write_file(path, std::to_string(boot) + "\n");
  return boot;
}

std::string StateStore::path_for(std::string_view name,
                                 std::string_view suffix) const {
  std::string file;
  file.reserve(name.size());
  for (const char c : name) {
    file.push_back(
        std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '-' || c == '.'
            ? c
            : '_');
  }
  return dir_ + "/" + file + std::string(suffix);
}

std::string StateStore::log_path(std::string_view name) const {
  return path_for(name, ".log");
}

bool StateStore::save_blob(std::string_view name, BytesView blob,
                           std::string* error) const {
  return util::atomic_write_file(path_for(name, ".snap"), blob, error);
}

std::optional<Bytes> StateStore::load_blob(std::string_view name) const {
  std::ifstream in(path_for(name, ".snap"), std::ios::binary);
  if (!in) return std::nullopt;
  return Bytes((std::istreambuf_iterator<char>(in)),
               std::istreambuf_iterator<char>());
}

}  // namespace sintra::recovery
