// Crash-recovery manager for one channel (DESIGN.md §10).
//
// SINTRA's protocols assume crash-*stop*: a correct replica never loses
// state.  This layer restores that abstraction for processes that do
// crash and come back.  Per channel it maintains:
//
//   - the durable replica log (replica_log.hpp): every delivery is
//     appended (seq, origin, payload) and fsync'd before the manager
//     acknowledges it;
//   - the digest chain and threshold-signed checkpoint certificates
//     (checkpoint.hpp): every `checkpoint_interval` deliveries — and
//     once more, flagged `final`, when the channel closes — shares are
//     exchanged and combined into a self-certifying certificate;
//   - the catch-up protocol: a restarted or lagging replica replays its
//     local log, then broadcasts a request carrying its position; peers
//     respond with (certificate, record range) chunks.  The requester
//     verifies the certificate with ONE threshold verification (no t+1
//     vote counting), re-chains the shipped records from its own digest,
//     and applies them only if the chain lands exactly on the
//     certificate's digest.  It is caught up when it applies a `final`
//     certificate.
//
// Liveness without timers: protocols here are message-driven, so the
// requester re-requests only after making progress, and responders
// remember laggers and push a fresh chunk whenever a new certificate is
// assembled — the close-time final certificate guarantees every lagger
// eventually receives a terminal push.
//
// Wiring: the owner hooks the channel's deliver callback to
// on_delivered() and its closed callback to force_checkpoint(true);
// apply/caught-up callbacks feed replayed and fetched records back into
// the application (see examples/sintra_node.cpp).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>

#include "core/protocol.hpp"
#include "obs/metrics.hpp"
#include "recovery/checkpoint.hpp"
#include "recovery/replica_log.hpp"
#include "recovery/state_store.hpp"

namespace sintra::recovery {

class RecoveryManager : public core::Protocol {
 public:
  struct Options {
    /// Checkpoint every this many deliveries (plus the final one).
    std::uint64_t checkpoint_interval = 8;
    /// Soft cap on the record bytes in one catch-up response — links do
    /// not fragment, so a response must fit one datagram (at least one
    /// record is always sent, so progress never stalls).
    std::size_t max_response_bytes = 32 * 1024;
    /// Flood guard on buffered checkpoint-share statements.
    std::size_t max_share_keys = 1024;
  };

  /// One delivered record of the channel's totally-ordered stream.
  /// `seq` is 1-based position in the stream (not the channel's
  /// per-origin sequence); `origin` is 0xFFFFFFFF when unknown.
  struct Record {
    std::uint64_t seq = 0;
    std::uint32_t origin = 0xFFFFFFFFu;
    Bytes payload;
  };

  /// `store` may be null (in-memory only: no log, no snapshots — the
  /// digest chain, checkpoints and catch-up still work).
  RecoveryManager(core::Environment& env, core::Dispatcher& dispatcher,
                  std::string channel_pid, StateStore* store,
                  Options options);
  ~RecoveryManager() override;

  /// Applied to every record that did not come from the live channel:
  /// local-log replays and records fetched by catch-up.
  void set_apply_callback(std::function<void(const Record&)> cb) {
    apply_cb_ = std::move(cb);
  }
  /// Fired once, when a `final` certificate covering our whole chain is
  /// adopted (the catch-up terminal condition).
  void set_caught_up_callback(std::function<void()> cb) {
    caught_up_cb_ = std::move(cb);
  }

  /// Normal path: the channel delivered `payload`.  Appends to the log
  /// (fsync'd), advances the chain, and initiates a checkpoint at every
  /// interval boundary.
  void on_delivered(BytesView payload, int origin);

  /// Signs and broadcasts a checkpoint share at the current position.
  /// The channel-closed callback calls this with final = true.
  void force_checkpoint(bool final);

  /// Recovery path, step 1: replay the local log through the apply
  /// callback (validating and advancing the digest chain).  Returns the
  /// number of records replayed.  Must run before any catch-up records
  /// arrive; call start_catchup() immediately after.
  std::size_t replay_local();

  /// Recovery path, step 2: broadcast a catch-up request from the
  /// current position, and keep requesting (on progress) until a final
  /// certificate is reached.
  void start_catchup();

  [[nodiscard]] std::uint64_t delivered_seq() const { return seq_; }
  [[nodiscard]] bool caught_up() const { return caught_up_; }
  [[nodiscard]] const std::optional<CheckpointCert>& latest_cert() const {
    return latest_cert_;
  }

 protected:
  void on_message(core::PartyId from, BytesView payload) override;

 private:
  enum MsgType : std::uint8_t { kShare = 1, kRequest = 2, kResponse = 3 };

  /// Share statements are buffered per (seq, final, digest): Byzantine
  /// parties may sign divergent digests, which must not mix.
  struct ShareKey {
    std::uint64_t seq;
    bool final;
    Bytes digest;
    bool operator<(const ShareKey& o) const {
      if (seq != o.seq) return seq < o.seq;
      if (final != o.final) return final < o.final;
      return digest < o.digest;
    }
  };

  /// Where a record came from decides its side effects: live channel
  /// deliveries are logged (the app already saw them); local-log replays
  /// are applied upward (already on disk); catch-up fetches are both.
  enum class Source { kLive, kReplay, kCatchup };

  void advance(Record record, Source source);
  void initiate_checkpoint(std::uint64_t seq, bool final);
  void handle_share(core::PartyId from, Reader& r);
  void add_share(const ShareKey& key, int signer, Bytes share);
  void try_combine(const ShareKey& key);
  /// `verified` = the signature has already been checked (local combine).
  void handle_cert(CheckpointCert cert, bool verified);
  void adopt_cert(const CheckpointCert& cert);
  void handle_request(core::PartyId from, Reader& r);
  void serve(core::PartyId to);
  void handle_response(core::PartyId from, Reader& r);
  void send_request();
  void persist_cert() const;
  [[nodiscard]] Bytes statement(std::uint64_t seq, bool final,
                                BytesView digest) const;

  Options options_;
  std::string channel_pid_;
  StateStore* store_;                  // may be null
  std::unique_ptr<ReplicaLog> log_;    // open for append (when store_)

  // The totally-ordered stream as applied locally.
  std::uint64_t seq_ = 0;
  Bytes digest_;                        // D_seq_
  std::vector<Record> records_;         // records_[s-1] has seq s
  std::vector<Bytes> digests_;          // digests_[s-1] = D_s
  bool caught_up_ = false;
  bool catchup_active_ = false;

  std::optional<CheckpointCert> latest_cert_;
  std::map<std::uint64_t, CheckpointCert> cert_history_;   // adopted, by seq
  std::map<std::uint64_t, CheckpointCert> pending_certs_;  // beyond seq_
  std::map<ShareKey, std::map<int, Bytes>> shares_;
  std::set<std::pair<std::uint64_t, bool>> initiated_;  // (seq, final)
  std::map<core::PartyId, std::uint64_t> laggers_;      // peer -> its seq

  std::function<void(const Record&)> apply_cb_;
  std::function<void()> caught_up_cb_;

  // Instrumentation (docs/OBSERVABILITY.md `recovery.*`).
  obs::Counter* m_log_records_ = nullptr;
  obs::Counter* m_replayed_ = nullptr;
  obs::Counter* m_log_truncated_ = nullptr;
  obs::Counter* m_requests_ = nullptr;
  obs::Counter* m_served_ = nullptr;
  obs::Counter* m_fetched_ = nullptr;
  obs::Counter* m_shares_ = nullptr;
  obs::Counter* m_certs_ = nullptr;
  obs::Counter* m_rejected_ = nullptr;
};

}  // namespace sintra::recovery
