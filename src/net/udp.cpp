#include "net/udp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>

namespace sintra::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

SocketAddress SocketAddress::resolve(const std::string& host, int port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_DGRAM;
  hints.ai_protocol = IPPROTO_UDP;
  hints.ai_flags = AI_NUMERICSERV | AI_ADDRCONFIG;
  addrinfo* result = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(),
                               &hints, &result);
  if (rc != 0) {
    throw std::runtime_error("cannot resolve " + host + ":" +
                             std::to_string(port) + ": " + gai_strerror(rc));
  }
  // Prefer IPv4 (the config format's host:port reads naturally as v4 and
  // mixed-family groups would partition the cluster).
  const addrinfo* chosen = result;
  for (const addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    if (ai->ai_family == AF_INET) {
      chosen = ai;
      break;
    }
  }
  SocketAddress out;
  std::memcpy(&out.storage, chosen->ai_addr, chosen->ai_addrlen);
  out.length = static_cast<socklen_t>(chosen->ai_addrlen);
  ::freeaddrinfo(result);
  return out;
}

std::string SocketAddress::to_string() const {
  char host[NI_MAXHOST] = "?";
  char serv[NI_MAXSERV] = "?";
  ::getnameinfo(sockaddr_ptr(), length, host, sizeof(host), serv,
                sizeof(serv), NI_NUMERICHOST | NI_NUMERICSERV);
  return std::string(host) + ":" + serv;
}

UdpSocket::UdpSocket(const SocketAddress& bind_address) {
  fd_ = ::socket(bind_address.storage.ss_family,
                 SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, IPPROTO_UDP);
  if (fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd_, bind_address.sockaddr_ptr(), bind_address.length) < 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("bind");
  }
}

UdpSocket::~UdpSocket() {
  if (fd_ >= 0) ::close(fd_);
}

UdpSocket& UdpSocket::operator=(UdpSocket&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    tx_syscalls_ = other.tx_syscalls_;
    rx_syscalls_ = other.rx_syscalls_;
  }
  return *this;
}

SocketAddress UdpSocket::local_address() const {
  SocketAddress out;
  out.length = sizeof(out.storage);
  if (::getsockname(fd_, out.sockaddr_ptr(), &out.length) < 0) {
    throw_errno("getsockname");
  }
  return out;
}

bool UdpSocket::send_to(const SocketAddress& to, BytesView datagram) {
  ++tx_syscalls_;
  const ssize_t n =
      ::sendto(fd_, datagram.data(), datagram.size(), 0, to.sockaddr_ptr(),
               to.length);
  return n == static_cast<ssize_t>(datagram.size());
}

std::optional<std::pair<Bytes, SocketAddress>> UdpSocket::receive(
    std::size_t max_size) {
  Bytes buffer(max_size);
  SocketAddress from;
  from.length = sizeof(from.storage);
  ++rx_syscalls_;
  const ssize_t n = ::recvfrom(fd_, buffer.data(), buffer.size(), 0,
                               from.sockaddr_ptr(), &from.length);
  if (n < 0) return std::nullopt;  // EAGAIN or a transient error: drained
  buffer.resize(static_cast<std::size_t>(n));
  return std::make_pair(std::move(buffer), from);
}

ReceivePool::ReceivePool(std::size_t slots, std::size_t datagram_size) {
  storage_.assign(slots, Bytes(datagram_size));
  from_.assign(slots, SocketAddress{});
  iovecs_.resize(slots);
  headers_.resize(slots);
  for (std::size_t i = 0; i < slots; ++i) {
    iovecs_[i].iov_base = storage_[i].data();
    iovecs_[i].iov_len = storage_[i].size();
    msghdr& h = headers_[i].msg_hdr;
    h = {};
    h.msg_name = &from_[i].storage;
    h.msg_namelen = sizeof(from_[i].storage);
    h.msg_iov = &iovecs_[i];
    h.msg_iovlen = 1;
  }
}

BytesView ReceivePool::payload(std::size_t i) const {
  return BytesView(storage_[i]).subspan(0, headers_[i].msg_len);
}

std::size_t UdpSocket::send_batch(const std::vector<OutboundDatagram>& batch) {
  // sendmmsg caps vlen at UIO_MAXIOV (1024); chunk larger batches.
  constexpr std::size_t kMaxPerCall = 1024;
  std::vector<mmsghdr> hdrs(std::min(batch.size(), kMaxPerCall));
  std::vector<iovec> iovs(hdrs.size());
  std::size_t sent = 0;
  while (sent < batch.size()) {
    const std::size_t count = std::min(batch.size() - sent, kMaxPerCall);
    for (std::size_t i = 0; i < count; ++i) {
      const OutboundDatagram& d = batch[sent + i];
      iovs[i].iov_base =
          const_cast<std::uint8_t*>(d.payload.data());
      iovs[i].iov_len = d.payload.size();
      msghdr& h = hdrs[i].msg_hdr;
      h = {};
      h.msg_name = const_cast<sockaddr_storage*>(&d.to.storage);
      h.msg_namelen = d.to.length;
      h.msg_iov = &iovs[i];
      h.msg_iovlen = 1;
      hdrs[i].msg_len = 0;
    }
    ++tx_syscalls_;
    const int rc =
        ::sendmmsg(fd_, hdrs.data(), static_cast<unsigned>(count), 0);
    // rc < 0: nothing of this chunk went out (first datagram errored).
    // 0 < rc < count: the kernel stopped at a refused datagram; the tail
    // is dropped rather than retried — a full send buffer refuses again
    // immediately, and the link layer retransmits either way.
    if (rc <= 0) break;
    sent += static_cast<std::size_t>(rc);
    if (static_cast<std::size_t>(rc) < count) break;
  }
  return sent;
}

std::size_t UdpSocket::receive_batch(ReceivePool& pool) {
  // The kernel overwrites msg_namelen on every receive; restore it (and
  // nothing else — the iovecs are untouched) before reuse.
  for (mmsghdr& h : pool.headers_) {
    h.msg_hdr.msg_namelen = sizeof(sockaddr_storage);
  }
  ++rx_syscalls_;
  const int rc = ::recvmmsg(fd_, pool.headers_.data(),
                            static_cast<unsigned>(pool.headers_.size()), 0,
                            nullptr);
  if (rc <= 0) return 0;  // EAGAIN or transient: drained
  for (int i = 0; i < rc; ++i) {
    pool.from_[static_cast<std::size_t>(i)].length =
        pool.headers_[static_cast<std::size_t>(i)].msg_hdr.msg_namelen;
  }
  return static_cast<std::size_t>(rc);
}

}  // namespace sintra::net
