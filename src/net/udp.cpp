#include "net/udp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>

namespace sintra::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

SocketAddress SocketAddress::resolve(const std::string& host, int port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_DGRAM;
  hints.ai_protocol = IPPROTO_UDP;
  hints.ai_flags = AI_NUMERICSERV | AI_ADDRCONFIG;
  addrinfo* result = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(),
                               &hints, &result);
  if (rc != 0) {
    throw std::runtime_error("cannot resolve " + host + ":" +
                             std::to_string(port) + ": " + gai_strerror(rc));
  }
  // Prefer IPv4 (the config format's host:port reads naturally as v4 and
  // mixed-family groups would partition the cluster).
  const addrinfo* chosen = result;
  for (const addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    if (ai->ai_family == AF_INET) {
      chosen = ai;
      break;
    }
  }
  SocketAddress out;
  std::memcpy(&out.storage, chosen->ai_addr, chosen->ai_addrlen);
  out.length = static_cast<socklen_t>(chosen->ai_addrlen);
  ::freeaddrinfo(result);
  return out;
}

std::string SocketAddress::to_string() const {
  char host[NI_MAXHOST] = "?";
  char serv[NI_MAXSERV] = "?";
  ::getnameinfo(sockaddr_ptr(), length, host, sizeof(host), serv,
                sizeof(serv), NI_NUMERICHOST | NI_NUMERICSERV);
  return std::string(host) + ":" + serv;
}

UdpSocket::UdpSocket(const SocketAddress& bind_address) {
  fd_ = ::socket(bind_address.storage.ss_family,
                 SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, IPPROTO_UDP);
  if (fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd_, bind_address.sockaddr_ptr(), bind_address.length) < 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("bind");
  }
}

UdpSocket::~UdpSocket() {
  if (fd_ >= 0) ::close(fd_);
}

UdpSocket& UdpSocket::operator=(UdpSocket&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

SocketAddress UdpSocket::local_address() const {
  SocketAddress out;
  out.length = sizeof(out.storage);
  if (::getsockname(fd_, out.sockaddr_ptr(), &out.length) < 0) {
    throw_errno("getsockname");
  }
  return out;
}

bool UdpSocket::send_to(const SocketAddress& to, BytesView datagram) {
  const ssize_t n =
      ::sendto(fd_, datagram.data(), datagram.size(), 0, to.sockaddr_ptr(),
               to.length);
  return n == static_cast<ssize_t>(datagram.size());
}

std::optional<std::pair<Bytes, SocketAddress>> UdpSocket::receive(
    std::size_t max_size) {
  Bytes buffer(max_size);
  SocketAddress from;
  from.length = sizeof(from.storage);
  const ssize_t n = ::recvfrom(fd_, buffer.data(), buffer.size(), 0,
                               from.sockaddr_ptr(), &from.length);
  if (n < 0) return std::nullopt;  // EAGAIN or a transient error: drained
  buffer.resize(static_cast<std::size_t>(n));
  return std::make_pair(std::move(buffer), from);
}

}  // namespace sintra::net
