#include "net/net_environment.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>

#include "core/message.hpp"
#include "obs/trace.hpp"
#include "util/serde.hpp"

namespace sintra::net {

SendBatcher::SendBatcher(EventLoop& loop, UdpSocket& socket, int party)
    : loop_(loop), socket_(socket) {
  auto& reg = obs::registry();
  const obs::Labels labels = obs::party_labels(party);
  m_batch_size_ = &reg.histogram("net.sendmmsg_batch_size", labels);
  m_send_errors_ = &reg.counter("net.send_errors", labels);
}

void SendBatcher::push(const std::shared_ptr<SendBatcher>& self,
                       const SocketAddress& to, Bytes datagram) {
  self->pending_.push_back({to, std::move(datagram)});
  if (self->flush_scheduled_) return;
  self->flush_scheduled_ = true;
  // call_soon runs before the loop sleeps again, so batching never adds
  // latency: everything a single wake produced (broadcast fan-out, acks,
  // retransmissions) leaves in one flush at the end of that wake.
  self->loop_.call_soon([weak = std::weak_ptr<SendBatcher>(self)] {
    if (const std::shared_ptr<SendBatcher> b = weak.lock()) b->flush();
  });
}

void SendBatcher::flush() {
  flush_scheduled_ = false;
  if (pending_.empty()) return;
  std::vector<OutboundDatagram> batch;
  batch.swap(pending_);
  m_batch_size_->observe(static_cast<double>(batch.size()));
  const std::size_t sent = socket_.send_batch(batch);
  flushed_ += sent;
  if (sent < batch.size()) {
    m_send_errors_->inc(batch.size() - sent);  // links retransmit
  }
}

UdpDatagramChannel::UdpDatagramChannel(EventLoop& loop, UdpSocket& socket,
                                       SocketAddress peer_address,
                                       std::uint32_t self_id,
                                       std::shared_ptr<SendBatcher> batcher)
    : loop_(loop),
      socket_(socket),
      peer_address_(peer_address),
      self_id_(self_id),
      batcher_(std::move(batcher)) {
  // Party-wide counters: every channel of the party resolves the same
  // registry instances.
  auto& reg = obs::registry();
  const obs::Labels labels =
      obs::party_labels(static_cast<int>(self_id));
  m_sent_ = &reg.counter("net.datagrams_sent", labels);
  m_send_errors_ = &reg.counter("net.send_errors", labels);
}

void UdpDatagramChannel::send_datagram(Bytes datagram) {
  Writer w;
  w.u32(self_id_);
  w.raw(datagram);
  if (batcher_ != nullptr) {
    // Counted when queued; a kernel refusal at flush time surfaces in
    // net.send_errors (batcher-side), and the link retransmits.
    ++sent_;
    m_sent_->inc();
    SendBatcher::push(batcher_, peer_address_, std::move(w).take());
    return;
  }
  if (socket_.send_to(peer_address_, w.data())) {
    ++sent_;
    m_sent_->inc();
  } else {
    ++send_errors_;  // dropped by the kernel: the link retransmits
    m_send_errors_->inc();
  }
}

NetEnvironment::NetEnvironment(EventLoop& loop,
                               std::vector<core::Endpoint> endpoints,
                               crypto::PartyKeys keys, NetOptions options)
    // socket_ is declared before keys_, so `keys` (the parameter) is
    // still intact when the bind address is resolved here.
    : loop_(loop),
      socket_(SocketAddress::resolve(
          endpoints.at(static_cast<std::size_t>(keys.index)).host,
          endpoints.at(static_cast<std::size_t>(keys.index)).port)),
      keys_(std::move(keys)),
      options_(std::move(options)),
      rng_(options_.rng_seed != 0
               ? options_.rng_seed
               : 0x51e7a0de ^ (static_cast<std::uint64_t>(keys_.index) << 20)) {
  init_crypto_pool();
  wire_links(endpoints);
}

NetEnvironment::NetEnvironment(EventLoop& loop, UdpSocket socket,
                               std::vector<core::Endpoint> endpoints,
                               crypto::PartyKeys keys, NetOptions options)
    : loop_(loop),
      socket_(std::move(socket)),
      keys_(std::move(keys)),
      options_(std::move(options)),
      rng_(options_.rng_seed != 0
               ? options_.rng_seed
               : 0x51e7a0de ^ (static_cast<std::uint64_t>(keys_.index) << 20)) {
  init_crypto_pool();
  wire_links(endpoints);
}

void NetEnvironment::init_crypto_pool() {
  pool_ = std::make_shared<crypto::WorkPool>(
      options_.crypto_threads > 0
          ? static_cast<std::size_t>(options_.crypto_threads)
          : 0);
  // Hop completions onto the loop thread.  The hook runs on a worker, so
  // it only posts; the weak_ptr keeps a stale call_soon task (queued
  // after this environment was destroyed) from touching a dead pool.
  pool_->set_completion_notify(
      [&loop = loop_, wp = std::weak_ptr<crypto::WorkPool>(pool_)] {
        loop.call_soon([wp] {
          if (const std::shared_ptr<crypto::WorkPool> p = wp.lock()) {
            p->drain_completions();
          }
        });
      });
}

void NetEnvironment::wire_links(const std::vector<core::Endpoint>& endpoints) {
  if (static_cast<int>(endpoints.size()) != keys_.n) {
    throw std::invalid_argument(
        "NetEnvironment: endpoint count does not match n");
  }
  const std::vector<core::Endpoint>& targets =
      options_.send_to.empty() ? endpoints : options_.send_to;
  if (static_cast<int>(targets.size()) != keys_.n) {
    throw std::invalid_argument(
        "NetEnvironment: send_to count does not match n");
  }
  core::SlidingWindowLink::Options link_options = options_.link;
  if (link_options.epoch == 0) {
    // Fresh random per-boot epoch, shared by all of this party's links
    // (the MAC binds the peer pair, so sharing is safe).  Deliberately
    // NOT the party rng: its seed derives from the party id, so a
    // restarted process would reuse the dead session's epoch and defeat
    // restart detection.
    std::random_device rd;
    link_options.epoch = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
    if (link_options.epoch == 0) link_options.epoch = 1;
  }
  if (options_.use_mmsg) {
    batcher_ = std::make_shared<SendBatcher>(loop_, socket_, keys_.index);
    // A handful of slots per syscall batches deeply enough (a full
    // n=31 fan-out is 30 datagrams) without the pool ballooning when
    // tests run several parties in one process.
    rx_pool_ = std::make_unique<ReceivePool>(
        std::min<std::size_t>(options_.max_receive_batch, 32),
        options_.max_datagram + 1);
  }
  for (int peer = 0; peer < keys_.n; ++peer) {
    if (peer == keys_.index) continue;
    const auto& ep = targets[static_cast<std::size_t>(peer)];
    auto channel = std::make_unique<UdpDatagramChannel>(
        loop_, socket_, SocketAddress::resolve(ep.host, ep.port),
        static_cast<std::uint32_t>(keys_.index), batcher_);
    auto link = std::make_unique<core::SlidingWindowLink>(
        *channel, keys_.index, peer,
        keys_.link_keys[static_cast<std::size_t>(peer)], link_options);
    link->set_deliver_callback([this, peer](Bytes wire) {
      dispatcher_.on_message(peer, std::move(wire));
    });
    channels_.emplace(peer, std::move(channel));
    links_.emplace(peer, std::move(link));
  }
  loop_.add_fd(socket_.fd(), [this] { on_socket_readable(); });

  auto& reg = obs::registry();
  const obs::Labels labels = obs::party_labels(keys_.index);
  m_datagrams_received_ = &reg.counter("net.datagrams_received", labels);
  m_drop_no_sender_ = &reg.counter("net.drop_no_sender", labels);
  m_drop_bad_sender_ = &reg.counter("net.drop_bad_sender", labels);
  m_drop_oversized_ = &reg.counter("net.drop_oversized", labels);
  m_messages_sent_ = &reg.counter("net.messages_sent", labels);
  m_bytes_sent_ = &reg.counter("net.bytes_sent", labels);
  m_rx_pool_in_use_ = &reg.gauge("net.rx_pool_in_use", labels);
  dispatcher_.attach_obs(keys_.index, [this] { return loop_.now_ms(); });

  // Announce our epoch so peers detect a restart (and reset their window
  // state toward us) before any data traffic; UDP may drop these, in
  // which case the first data frame teaches the epoch instead.
  for (const auto& [peer, link] : links_) link->announce();
}

NetEnvironment::~NetEnvironment() {
  // A flush scheduled for later would find the batcher dead (weak_ptr);
  // write out what's pending while the socket is still open.
  if (batcher_ != nullptr) batcher_->flush();
  loop_.remove_fd(socket_.fd());
}

void NetEnvironment::send(core::PartyId to, Bytes wire) {
  if (to < 0 || to >= keys_.n) {
    throw std::out_of_range("NetEnvironment::send");
  }
  m_messages_sent_->inc();
  m_bytes_sent_->inc(wire.size());
  trace_send(to, wire);
  if (to == keys_.index) {
    // Self-delivery stays asynchronous (no reentrancy into protocol
    // handlers), via a zero-delay loop timer.
    loop_.call_later(0.0, [this, wire = std::move(wire)]() mutable {
      dispatcher_.on_message(keys_.index, std::move(wire));
    });
    return;
  }
  links_.at(to)->send(std::move(wire));
}

void NetEnvironment::trace_send(core::PartyId to, BytesView wire) {
  if (obs::trace_sink() == nullptr) return;
  try {
    obs::emit(obs::EventType::kSend, loop_.now_ms(), keys_.index, to,
              core::parse_frame_view(wire).pid, wire.size());
  } catch (const SerdeError&) {
    obs::emit(obs::EventType::kSend, loop_.now_ms(), keys_.index, to,
              "<malformed>", wire.size());
  }
}

void NetEnvironment::send_all(Bytes wire) {
  // Broadcast fan-out shares one immutable buffer across every per-peer
  // link (and the self-delivery closure) instead of copying the frame
  // n times.
  auto shared = std::make_shared<const Bytes>(std::move(wire));
  for (int j = 0; j < keys_.n; ++j) {
    m_messages_sent_->inc();
    m_bytes_sent_->inc(shared->size());
    trace_send(j, *shared);
    if (j == keys_.index) {
      loop_.call_later(0.0, [this, shared] {
        dispatcher_.on_message(keys_.index, *shared);
      });
      continue;
    }
    links_.at(j)->send(shared);
  }
}

void NetEnvironment::publish_link_metrics() {
  auto& reg = obs::registry();
  std::uint64_t epoch_resets_total = 0;
  for (const auto& [peer, link] : links_) {
    epoch_resets_total += link->stats().epoch_resets;
    const core::SlidingWindowLink::Stats& s = link->stats();
    const obs::Labels labels{{"party", std::to_string(keys_.index)},
                             {"peer", std::to_string(peer)}};
    reg.gauge("link.data_received", labels)
        .set(static_cast<double>(s.data_received));
    reg.gauge("link.acks_received", labels)
        .set(static_cast<double>(s.acks_received));
    reg.gauge("link.delivered", labels).set(static_cast<double>(s.delivered));
    reg.gauge("link.retransmissions", labels)
        .set(static_cast<double>(s.retransmissions));
    reg.gauge("link.backoffs", labels).set(static_cast<double>(s.backoffs));
    reg.gauge("link.rtt_samples", labels)
        .set(static_cast<double>(s.rtt_samples));
    reg.gauge("link.srtt_ms", labels).set(s.srtt_ms);
    reg.gauge("link.rttvar_ms", labels).set(s.rttvar_ms);
    reg.gauge("link.rto_ms", labels).set(s.rto_ms);
    reg.gauge("link.drop_auth", labels).set(static_cast<double>(s.drop_auth));
    reg.gauge("link.drop_malformed", labels)
        .set(static_cast<double>(s.drop_malformed));
    reg.gauge("link.drop_overflow", labels)
        .set(static_cast<double>(s.drop_overflow));
    reg.gauge("link.drop_duplicate", labels)
        .set(static_cast<double>(s.drop_duplicate));
    reg.gauge("link.drop_epoch", labels)
        .set(static_cast<double>(s.drop_epoch));
    reg.gauge("link.epoch_resets", labels)
        .set(static_cast<double>(s.epoch_resets));
    reg.gauge("link.backlog", labels).set(static_cast<double>(link->backlog()));
  }
  // Party-level restart-detection total, under the recovery.* family the
  // cluster runner asserts on.
  reg.gauge("recovery.epoch_resets", obs::party_labels(keys_.index))
      .set(static_cast<double>(epoch_resets_total));
  // Kernel round-trips made by this party's socket, split by direction —
  // divided by deliveries this yields the syscalls-per-delivery figure of
  // BENCH_scale.json (sendmmsg/recvmmsg batching is what moves it).
  reg.gauge("net.tx_syscalls", obs::party_labels(keys_.index))
      .set(static_cast<double>(socket_.tx_syscalls()));
  reg.gauge("net.rx_syscalls", obs::party_labels(keys_.index))
      .set(static_cast<double>(socket_.rx_syscalls()));
}

std::size_t NetEnvironment::send_backlog() const {
  std::size_t total = 0;
  for (const auto& [peer, link] : links_) total += link->backlog();
  return total;
}

void NetEnvironment::on_socket_readable() {
  // Bounded drain: at most max_receive_batch datagrams per wake so timers
  // and other parties on the loop stay responsive under flood; the
  // level-triggered epoll registration re-fires if more are queued.
  if (rx_pool_ != nullptr) {
    // recvmmsg path: one kernel round-trip fills up to slots() reusable
    // buffers — no per-datagram recvfrom, no per-datagram allocation.
    std::size_t drained = 0;
    while (drained < options_.max_receive_batch) {
      const std::size_t got = socket_.receive_batch(*rx_pool_);
      if (got == 0) break;
      m_rx_pool_in_use_->set(static_cast<double>(got));
      for (std::size_t i = 0; i < got; ++i) {
        process_datagram(rx_pool_->payload(i));
      }
      drained += got;
      if (got < rx_pool_->slots()) break;  // socket drained
    }
    return;
  }
  for (std::size_t i = 0; i < options_.max_receive_batch; ++i) {
    auto received = socket_.receive(options_.max_datagram + 1);
    if (!received) return;
    process_datagram(received->first);
  }
}

void NetEnvironment::process_datagram(BytesView datagram) {
  ++stats_.datagrams_received;
  m_datagrams_received_->inc();
  if (datagram.size() > options_.max_datagram) {
    ++stats_.drop_oversized;
    m_drop_oversized_->inc();
    return;
  }
  if (datagram.size() < 4) {
    ++stats_.drop_no_sender;
    m_drop_no_sender_->inc();
    return;
  }
  Reader r(datagram);
  const auto sender = static_cast<int>(r.u32());
  if (sender < 0 || sender >= keys_.n || sender == keys_.index) {
    ++stats_.drop_bad_sender;
    m_drop_bad_sender_->inc();
    return;
  }
  // The id prefix is only a routing hint; the link's HMAC decides
  // whether the frame really came from `sender`.
  links_.at(sender)->on_datagram(datagram.subspan(4));
}

}  // namespace sintra::net
