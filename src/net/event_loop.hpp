// Single-threaded epoll event loop: fd readiness, one-shot timers and
// cross-thread task injection — the real-time counterpart of the
// discrete-event simulator's scheduler.
//
// All protocol objects attached to a loop are touched only from the loop
// thread (the same ownership discipline as facade::LocalNode); post() is
// the one thread-safe entry point.  Timers drive nothing but the link
// layer's retransmissions — per the paper's model, no protocol decision
// above the links depends on time.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <map>
#include <mutex>
#include <queue>
#include <vector>

namespace sintra::net {

class EventLoop {
 public:
  using TimerId = std::uint64_t;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers a level-triggered read-readiness callback for `fd`.
  /// Loop-thread only (or before run()).  One callback per fd.
  void add_fd(int fd, std::function<void()> on_readable);
  void remove_fd(int fd);

  /// One-shot timer; returns an id usable with cancel().  Loop-thread
  /// only.  Delays clamp to >= 0.
  TimerId call_later(double delay_ms, std::function<void()> fn);
  void cancel(TimerId id);

  /// Enqueues `fn` to run on the loop thread.  Thread-safe; wakes the
  /// loop if it is blocked in epoll_wait.
  void post(std::function<void()> fn);

  /// Alias for post() under the conventional event-loop name — the
  /// crypto worker pool's completion hook uses it to hop results back
  /// onto the loop thread.
  void call_soon(std::function<void()> fn) { post(std::move(fn)); }

  /// Requests the loop to return from run().  Thread- and signal-safe
  /// via the wakeup eventfd.
  void stop();

  /// Installs handlers so the listed signals (e.g. SIGINT, SIGTERM) stop
  /// the loop instead of killing the process.  At most one loop per
  /// process may use this.  `on_signal`, if given, runs on the loop
  /// thread before the loop exits.
  void stop_on_signals(std::initializer_list<int> signals,
                       std::function<void(int)> on_signal = {});

  /// Installs a handler that runs `fn` on the loop thread whenever
  /// `signo` is delivered, *without* stopping the loop (e.g. SIGUSR1 ->
  /// dump a metrics snapshot).  Same one-loop-per-process restriction as
  /// stop_on_signals, with which it composes.
  void on_signal(int signo, std::function<void()> fn);

  /// Runs until stop().  Returns the number of callbacks dispatched.
  std::uint64_t run();

  /// Runs until `pred()` is true (checked after every dispatch batch),
  /// stop() is called, or `timeout_ms` of wall-clock elapses.  Returns
  /// whether the predicate was satisfied.  For tests and simple tools.
  bool run_until(const std::function<bool()>& pred, double timeout_ms);

  /// Monotonic milliseconds (an arbitrary epoch, comparable within the
  /// process).
  [[nodiscard]] double now_ms() const;

  [[nodiscard]] bool stopped() const { return stop_requested_.load(); }

 private:
  struct Timer {
    double deadline_ms;
    TimerId id;
    bool operator>(const Timer& o) const {
      return deadline_ms > o.deadline_ms ||
             (deadline_ms == o.deadline_ms && id > o.id);
    }
  };

  /// One pass: wait (up to the next timer / `max_wait_ms`), then dispatch
  /// ready fds, expired timers and posted tasks.  Returns callbacks run.
  std::uint64_t step(double max_wait_ms);
  void drain_wakeup();

  int epoll_fd_ = -1;
  int wakeup_fd_ = -1;  // eventfd: post()/stop()/signal wakeups

  std::map<int, std::function<void()>> fd_callbacks_;

  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>> timers_;
  std::map<TimerId, std::function<void()>> timer_fns_;  // absent = cancelled
  TimerId next_timer_id_ = 1;

  std::mutex posted_mutex_;
  std::vector<std::function<void()>> posted_;

  std::atomic<bool> stop_requested_{false};
  std::function<void(int)> signal_fn_;
  std::vector<int> handled_signals_;
  std::map<int, std::function<void()>> signal_callbacks_;  // non-stopping

  std::chrono::steady_clock::time_point origin_ =
      std::chrono::steady_clock::now();
};

}  // namespace sintra::net
