// core::Environment over real UDP sockets: the deployment transport.
//
// One NetEnvironment is one party of the group running inside one
// process (the sintra_node binary) or — for tests — several parties
// sharing one EventLoop in one process.  Layering per party:
//
//     Dispatcher  <-  SlidingWindowLink (per peer, HMAC link keys)
//                 <-  UdpDatagramChannel (per peer)
//                 <-  one bound UdpSocket + EventLoop timers
//
// Every outgoing datagram is prefixed with the sender's party id so the
// receiver can route it to the right link; the prefix is advisory only —
// the link's HMAC (which binds both endpoint ids) is what authenticates
// the claim, so a forged prefix is dropped by MAC verification exactly
// like any other forged frame.  The receiver never trusts source
// addresses, which also lets a mangling proxy sit between the parties.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "core/config.hpp"
#include "core/dispatcher.hpp"
#include "core/env.hpp"
#include "core/link/sliding_window.hpp"
#include "net/event_loop.hpp"
#include "net/udp.hpp"
#include "obs/metrics.hpp"

namespace sintra::net {

/// Coalesces the datagrams produced within one loop wake into sendmmsg
/// batches.  A broadcast fan-out writes n-1 per-peer frames back to back
/// (the frames differ — each link HMACs with its own key — so batching
/// can only happen at the syscall layer, below the links); push() just
/// buffers, and a flush scheduled via EventLoop::call_soon writes the
/// whole batch with one kernel round-trip before the loop sleeps again.
/// Datagram ORDER per peer is preserved (the batch is flushed in push
/// order), and a refused tail is dropped with plain UDP semantics.
/// Loop-thread only, like the channels that feed it.
class SendBatcher {
 public:
  SendBatcher(EventLoop& loop, UdpSocket& socket, int party);

  /// Queues one datagram and schedules a flush if none is pending.
  /// Called through a weak_ptr-guarded closure, so a flush posted just
  /// before environment teardown no-ops instead of touching a dead
  /// socket.
  static void push(const std::shared_ptr<SendBatcher>& self,
                   const SocketAddress& to, Bytes datagram);
  /// Writes everything queued via UdpSocket::send_batch.
  void flush();

  [[nodiscard]] std::uint64_t datagrams_flushed() const { return flushed_; }

 private:
  EventLoop& loop_;
  UdpSocket& socket_;
  std::vector<OutboundDatagram> pending_;
  bool flush_scheduled_ = false;
  std::uint64_t flushed_ = 0;
  obs::Histogram* m_batch_size_ = nullptr;
  obs::Counter* m_send_errors_ = nullptr;
};

/// core::DatagramChannel for one peer: prefixes the sender id, sends to
/// the peer's (possibly proxied) address, and exposes the loop's timers
/// and clock to the sliding-window link.  With a batcher, sends are
/// queued for a sendmmsg flush instead of issued one syscall each.
class UdpDatagramChannel final : public core::DatagramChannel {
 public:
  UdpDatagramChannel(EventLoop& loop, UdpSocket& socket,
                     SocketAddress peer_address, std::uint32_t self_id,
                     std::shared_ptr<SendBatcher> batcher = nullptr);

  void send_datagram(Bytes datagram) override;
  void call_later(double delay_ms, std::function<void()> fn) override {
    loop_.call_later(delay_ms, std::move(fn));
  }
  [[nodiscard]] double now_ms() const override { return loop_.now_ms(); }

  [[nodiscard]] std::uint64_t datagrams_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t send_errors() const { return send_errors_; }

 private:
  EventLoop& loop_;
  UdpSocket& socket_;
  SocketAddress peer_address_;
  std::uint32_t self_id_;
  std::shared_ptr<SendBatcher> batcher_;  // null = direct sendto path
  std::uint64_t sent_ = 0;
  std::uint64_t send_errors_ = 0;
  obs::Counter* m_sent_ = nullptr;        // party-wide (shared handle)
  obs::Counter* m_send_errors_ = nullptr;
};

struct NetOptions {
  /// Per-peer link options.  When link.epoch is 0 (the default), the
  /// environment draws one random nonzero per-boot epoch from
  /// std::random_device and uses it on every link — this is what lets
  /// peers detect a process restart (DESIGN.md §10); pass an explicit
  /// epoch only in tests that need reproducible epochs.
  core::SlidingWindowLink::Options link;
  /// Largest accepted incoming datagram; larger ones are dropped and
  /// counted (a sliding-window frame never legitimately exceeds this).
  std::size_t max_datagram = 65536;
  /// Datagrams drained from the socket per readiness callback before the
  /// loop gets to run timers again (bounded receive work per wake).
  std::size_t max_receive_batch = 256;
  /// Seed for the party's Rng; 0 derives one from the party id.
  std::uint64_t rng_seed = 0;
  /// If non-empty, outgoing datagrams for peer j go to send_to[j]
  /// instead of the configured endpoint (used to interpose the chaos
  /// proxy); parties still bind their own configured endpoints.
  std::vector<core::Endpoint> send_to;
  /// Worker threads for the crypto pool (see crypto/work_pool.hpp).
  /// 0 = inline: combines and verifications run on the loop thread,
  /// exactly like the simulator.  The sintra_node CLI defaults this to
  /// hardware_concurrency via --crypto-threads.
  int crypto_threads = 0;
  /// Batched syscalls: coalesce outgoing datagrams into sendmmsg(2)
  /// flushes and drain inbound ones with recvmmsg(2) into a reusable
  /// buffer pool — one kernel round-trip per loop wake instead of one
  /// per datagram, which is what keeps n=7..31 broadcast fan-outs off
  /// the syscall floor.  On by default; sintra_node --no-mmsg (and this
  /// flag) fall back to the one-sendto/one-recvfrom-per-datagram path.
  bool use_mmsg = true;
};

class NetEnvironment final : public core::Environment {
 public:
  /// Transport-level counters (the link layer keeps its own per-peer
  /// stats; see link_stats()).
  struct Stats {
    std::uint64_t datagrams_received = 0;
    std::uint64_t drop_no_sender = 0;   // too short for the id prefix
    std::uint64_t drop_bad_sender = 0;  // id out of range / self
    std::uint64_t drop_oversized = 0;
  };

  /// Binds endpoints[keys.index] and connects one link per peer.
  /// `endpoints` must have size keys.n.
  NetEnvironment(EventLoop& loop, std::vector<core::Endpoint> endpoints,
                 crypto::PartyKeys keys, NetOptions options = {});

  /// Same, with a pre-bound socket (tests bind port 0 first and exchange
  /// the real addresses).
  NetEnvironment(EventLoop& loop, UdpSocket socket,
                 std::vector<core::Endpoint> endpoints,
                 crypto::PartyKeys keys, NetOptions options = {});

  // --- core::Environment ---
  [[nodiscard]] core::PartyId self() const override { return keys_.index; }
  [[nodiscard]] int n() const override { return keys_.n; }
  [[nodiscard]] int t() const override { return keys_.t; }
  void send(core::PartyId to, Bytes wire) override;
  void send_all(Bytes wire) override;
  [[nodiscard]] double now_ms() const override { return loop_.now_ms(); }
  [[nodiscard]] Rng& rng() override { return rng_; }
  [[nodiscard]] const crypto::PartyKeys& keys() const override {
    return keys_;
  }
  /// The pool configured by NetOptions::crypto_threads.  Completions are
  /// drained on the loop thread: the constructor wires the pool's notify
  /// hook to loop.call_soon, so protocol callbacks observe results with
  /// the same single-threaded discipline as every other loop event.
  [[nodiscard]] crypto::WorkPool& crypto_pool() override { return *pool_; }

  [[nodiscard]] core::Dispatcher& dispatcher() { return dispatcher_; }
  [[nodiscard]] EventLoop& loop() { return loop_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const core::SlidingWindowLink::Stats& link_stats(
      int peer) const {
    return links_.at(peer)->stats();
  }

  /// Publishes the per-peer SlidingWindowLink stats (RTT estimate,
  /// retransmissions, drop buckets, backlog) into obs::registry() as
  /// "link.*" gauges labeled {party, peer}.  Transport drop counters are
  /// live registry counters already; the link layer keeps plain structs
  /// on its hot path, so its state is sampled here — call before taking
  /// a snapshot.
  void publish_link_metrics();
  /// Messages accepted by send() but not yet acknowledged by peers.
  [[nodiscard]] std::size_t send_backlog() const;
  [[nodiscard]] SocketAddress local_address() const {
    return socket_.local_address();
  }

  ~NetEnvironment() override;

 private:
  void init_crypto_pool();
  void wire_links(const std::vector<core::Endpoint>& endpoints);
  void on_socket_readable();
  /// Transport checks + routing for one inbound datagram (both the
  /// recvmmsg pool path and the legacy recvfrom path end up here; the
  /// view may point into the reusable pool, so links must not keep it).
  void process_datagram(BytesView datagram);
  void trace_send(core::PartyId to, BytesView wire);

  EventLoop& loop_;
  UdpSocket socket_;
  crypto::PartyKeys keys_;
  NetOptions options_;
  Rng rng_;
  core::Dispatcher dispatcher_;
  Stats stats_;

  std::map<int, std::unique_ptr<UdpDatagramChannel>> channels_;
  std::map<int, std::unique_ptr<core::SlidingWindowLink>> links_;

  // mmsg fast path (null when options_.use_mmsg is false).  shared_ptr
  // so the scheduled-flush closure can hold a weak_ptr across teardown.
  std::shared_ptr<SendBatcher> batcher_;
  std::unique_ptr<ReceivePool> rx_pool_;
  obs::Gauge* m_rx_pool_in_use_ = nullptr;

  // Instrumentation handles (obs/metrics.hpp); the drop counters mirror
  // Stats live so they are readable through the public metrics path.
  obs::Counter* m_datagrams_received_ = nullptr;
  obs::Counter* m_drop_no_sender_ = nullptr;
  obs::Counter* m_drop_bad_sender_ = nullptr;
  obs::Counter* m_drop_oversized_ = nullptr;
  obs::Counter* m_messages_sent_ = nullptr;
  obs::Counter* m_bytes_sent_ = nullptr;

  // Declared last: destroyed first, so in-flight work() closures finish
  // (and are joined) while the members they might reference still exist.
  // shared_ptr so the notify hook can hold a weak_ptr — a call_soon task
  // left in the loop after this environment dies locks null and no-ops.
  std::shared_ptr<crypto::WorkPool> pool_;
};

}  // namespace sintra::net
