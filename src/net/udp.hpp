// POSIX UDP datagram sockets for the deployment transport.
//
// The paper ran its prototype as n server processes communicating over
// the Internet (§3, hostname:port endpoints in the configuration file).
// UDP is the natural substrate here because the link layer above
// (core/link/sliding_window.hpp) already provides reliability, ordering
// and authentication — running it over TCP would duplicate all three and
// reintroduce §3's forged-acknowledgment surface.
#pragma once

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/uio.h>

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/bytes.hpp"

namespace sintra::net {

/// A resolved socket address (IPv4 or IPv6).
struct SocketAddress {
  sockaddr_storage storage{};
  socklen_t length = 0;

  /// Resolves `host` (name or numeric) and `port` to a UDP address;
  /// prefers IPv4.  Throws std::runtime_error on resolution failure.
  static SocketAddress resolve(const std::string& host, int port);

  [[nodiscard]] const sockaddr* sockaddr_ptr() const {
    return reinterpret_cast<const sockaddr*>(&storage);
  }
  [[nodiscard]] sockaddr* sockaddr_ptr() {
    return reinterpret_cast<sockaddr*>(&storage);
  }

  /// "ip:port" rendering for logs and errors.
  [[nodiscard]] std::string to_string() const;
};

/// One datagram queued for a batched send (UdpSocket::send_batch).
struct OutboundDatagram {
  SocketAddress to;
  Bytes payload;
};

/// Reusable receive buffers for recvmmsg(2): `slots` datagram-sized
/// buffers plus the iovec/mmsghdr scaffolding, allocated once and reused
/// on every drain — the receive path stops paying one heap allocation
/// per datagram.  payload(i)/from(i) views are valid until the next
/// UdpSocket::receive_batch call on the same pool.
class ReceivePool {
 public:
  ReceivePool(std::size_t slots, std::size_t datagram_size);

  [[nodiscard]] std::size_t slots() const { return storage_.size(); }
  /// Datagram i of the last receive_batch, trimmed to its actual length.
  [[nodiscard]] BytesView payload(std::size_t i) const;
  [[nodiscard]] const SocketAddress& from(std::size_t i) const {
    return from_[i];
  }

 private:
  friend class UdpSocket;

  std::vector<Bytes> storage_;
  std::vector<SocketAddress> from_;
  std::vector<iovec> iovecs_;
  std::vector<mmsghdr> headers_;
};

/// A bound non-blocking UDP socket (RAII, movable).
class UdpSocket {
 public:
  /// Creates and binds; throws std::system_error on failure.  Port 0
  /// binds an ephemeral port (see local_address()).
  explicit UdpSocket(const SocketAddress& bind_address);
  ~UdpSocket();

  UdpSocket(UdpSocket&& other) noexcept
      : fd_(std::exchange(other.fd_, -1)),
        tx_syscalls_(other.tx_syscalls_),
        rx_syscalls_(other.rx_syscalls_) {}
  UdpSocket& operator=(UdpSocket&& other) noexcept;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  [[nodiscard]] int fd() const { return fd_; }

  /// The actual bound address (resolves port 0).
  [[nodiscard]] SocketAddress local_address() const;

  /// Fire-and-forget send.  Returns false if the kernel refused the
  /// datagram (buffer full, unreachable, oversized) — UDP semantics: the
  /// link layer's retransmission owns recovery.
  bool send_to(const SocketAddress& to, BytesView datagram);

  /// Non-blocking receive; nullopt once the socket is drained.
  std::optional<std::pair<Bytes, SocketAddress>> receive(
      std::size_t max_size = 65536);

  /// Sends the whole batch (possibly to distinct destinations — a
  /// broadcast's n-1 per-peer frames) with as few sendmmsg(2) calls as
  /// possible, one kernel round-trip per 1024 datagrams instead of one
  /// per datagram.  Returns how many the kernel accepted; the unaccepted
  /// tail is dropped with plain UDP semantics — the link layer's
  /// retransmission owns recovery, exactly as for a refused send_to().
  std::size_t send_batch(const std::vector<OutboundDatagram>& batch);

  /// Drains up to pool.slots() queued datagrams with ONE recvmmsg(2)
  /// call into the pool's reusable buffers.  Returns the count received
  /// (0 = drained); results via pool.payload(i)/pool.from(i).
  std::size_t receive_batch(ReceivePool& pool);

  /// Cumulative kernel round-trips made by this socket, split by
  /// direction — the raw material for the syscalls-per-delivery figure
  /// in BENCH_scale.json.
  [[nodiscard]] std::uint64_t tx_syscalls() const { return tx_syscalls_; }
  [[nodiscard]] std::uint64_t rx_syscalls() const { return rx_syscalls_; }

 private:
  int fd_ = -1;
  std::uint64_t tx_syscalls_ = 0;
  std::uint64_t rx_syscalls_ = 0;
};

}  // namespace sintra::net
