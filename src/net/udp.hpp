// POSIX UDP datagram sockets for the deployment transport.
//
// The paper ran its prototype as n server processes communicating over
// the Internet (§3, hostname:port endpoints in the configuration file).
// UDP is the natural substrate here because the link layer above
// (core/link/sliding_window.hpp) already provides reliability, ordering
// and authentication — running it over TCP would duplicate all three and
// reintroduce §3's forged-acknowledgment surface.
#pragma once

#include <netinet/in.h>
#include <sys/socket.h>

#include <optional>
#include <string>
#include <utility>

#include "util/bytes.hpp"

namespace sintra::net {

/// A resolved socket address (IPv4 or IPv6).
struct SocketAddress {
  sockaddr_storage storage{};
  socklen_t length = 0;

  /// Resolves `host` (name or numeric) and `port` to a UDP address;
  /// prefers IPv4.  Throws std::runtime_error on resolution failure.
  static SocketAddress resolve(const std::string& host, int port);

  [[nodiscard]] const sockaddr* sockaddr_ptr() const {
    return reinterpret_cast<const sockaddr*>(&storage);
  }
  [[nodiscard]] sockaddr* sockaddr_ptr() {
    return reinterpret_cast<sockaddr*>(&storage);
  }

  /// "ip:port" rendering for logs and errors.
  [[nodiscard]] std::string to_string() const;
};

/// A bound non-blocking UDP socket (RAII, movable).
class UdpSocket {
 public:
  /// Creates and binds; throws std::system_error on failure.  Port 0
  /// binds an ephemeral port (see local_address()).
  explicit UdpSocket(const SocketAddress& bind_address);
  ~UdpSocket();

  UdpSocket(UdpSocket&& other) noexcept
      : fd_(std::exchange(other.fd_, -1)) {}
  UdpSocket& operator=(UdpSocket&& other) noexcept;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  [[nodiscard]] int fd() const { return fd_; }

  /// The actual bound address (resolves port 0).
  [[nodiscard]] SocketAddress local_address() const;

  /// Fire-and-forget send.  Returns false if the kernel refused the
  /// datagram (buffer full, unreachable, oversized) — UDP semantics: the
  /// link layer's retransmission owns recovery.
  bool send_to(const SocketAddress& to, BytesView datagram);

  /// Non-blocking receive; nullopt once the socket is drained.
  std::optional<std::pair<Bytes, SocketAddress>> receive(
      std::size_t max_size = 65536);

 private:
  int fd_ = -1;
};

}  // namespace sintra::net
