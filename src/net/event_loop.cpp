#include "net/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>

#include <algorithm>
#include <csignal>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <unistd.h>

namespace sintra::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

// Signal delivery has no user argument, so the wakeup route is a static:
// the handler writes to the registered loop's eventfd (write(2) is
// async-signal-safe) and records which signal fired.
std::atomic<int> g_signal_wakeup_fd{-1};
// One pending flag per signo: a burst of different signals (e.g. a
// SIGUSR1 snapshot request landing right after SIGTERM, before step()
// runs) must not overwrite each other, or the stop request is lost.
constexpr int kMaxSignal = 65;  // Linux signal numbers end at 64
volatile std::sig_atomic_t g_pending_signals[kMaxSignal] = {};
volatile std::sig_atomic_t g_any_pending_signal = 0;

void signal_trampoline(int signo) {
  if (signo > 0 && signo < kMaxSignal) {
    g_pending_signals[signo] = 1;
    g_any_pending_signal = 1;
  }
  const int fd = g_signal_wakeup_fd.load();
  if (fd >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(fd, &one, sizeof(one));
  }
}

}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw_errno("epoll_create1");
  wakeup_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wakeup_fd_ < 0) throw_errno("eventfd");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wakeup_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wakeup_fd_, &ev) < 0) {
    throw_errno("epoll_ctl(wakeup)");
  }
}

EventLoop::~EventLoop() {
  for (const int signo : handled_signals_) std::signal(signo, SIG_DFL);
  for (const auto& [signo, fn] : signal_callbacks_) {
    std::signal(signo, SIG_DFL);
  }
  if (!handled_signals_.empty() || !signal_callbacks_.empty()) {
    g_signal_wakeup_fd.store(-1);
  }
  if (wakeup_fd_ >= 0) ::close(wakeup_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::add_fd(int fd, std::function<void()> on_readable) {
  if (!fd_callbacks_.emplace(fd, std::move(on_readable)).second) {
    throw std::logic_error("EventLoop::add_fd: fd already registered");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    fd_callbacks_.erase(fd);
    throw_errno("epoll_ctl(add)");
  }
}

void EventLoop::remove_fd(int fd) {
  if (fd_callbacks_.erase(fd) == 0) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

EventLoop::TimerId EventLoop::call_later(double delay_ms,
                                         std::function<void()> fn) {
  const TimerId id = next_timer_id_++;
  const double deadline = now_ms() + std::max(delay_ms, 0.0);
  timers_.push(Timer{deadline, id});
  timer_fns_.emplace(id, std::move(fn));
  return id;
}

void EventLoop::cancel(TimerId id) { timer_fns_.erase(id); }

void EventLoop::post(std::function<void()> fn) {
  {
    const std::lock_guard<std::mutex> lock(posted_mutex_);
    posted_.push_back(std::move(fn));
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wakeup_fd_, &one, sizeof(one));
}

void EventLoop::stop() {
  stop_requested_.store(true);
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wakeup_fd_, &one, sizeof(one));
}

void EventLoop::stop_on_signals(std::initializer_list<int> signals,
                                std::function<void(int)> on_signal) {
  signal_fn_ = std::move(on_signal);
  g_signal_wakeup_fd.store(wakeup_fd_);
  for (const int signo : signals) {
    if (std::signal(signo, signal_trampoline) == SIG_ERR) {
      throw_errno("signal");
    }
    handled_signals_.push_back(signo);
  }
}

void EventLoop::on_signal(int signo, std::function<void()> fn) {
  g_signal_wakeup_fd.store(wakeup_fd_);
  signal_callbacks_[signo] = std::move(fn);
  if (std::signal(signo, signal_trampoline) == SIG_ERR) {
    signal_callbacks_.erase(signo);
    throw_errno("signal");
  }
}

double EventLoop::now_ms() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - origin_)
      .count();
}

void EventLoop::drain_wakeup() {
  std::uint64_t count = 0;
  while (::read(wakeup_fd_, &count, sizeof(count)) > 0) {
  }
}

std::uint64_t EventLoop::step(double max_wait_ms) {
  // Sleep until the next timer deadline (or the caller's bound).
  double wait = max_wait_ms;
  while (!timers_.empty() &&
         timer_fns_.find(timers_.top().id) == timer_fns_.end()) {
    timers_.pop();  // lazily discard cancelled timers
  }
  if (!timers_.empty()) {
    wait = std::min(wait, timers_.top().deadline_ms - now_ms());
  }
  const int timeout =
      wait <= 0.0 ? 0 : static_cast<int>(std::min(wait, 60000.0)) + 1;

  epoll_event events[64];
  const int ready =
      ::epoll_wait(epoll_fd_, events, 64, timeout);
  if (ready < 0 && errno != EINTR) throw_errno("epoll_wait");

  std::uint64_t dispatched = 0;

  for (int i = 0; i < std::max(ready, 0); ++i) {
    const int fd = events[i].data.fd;
    if (fd == wakeup_fd_) {
      drain_wakeup();
      continue;
    }
    const auto it = fd_callbacks_.find(fd);
    if (it != fd_callbacks_.end()) {
      it->second();
      ++dispatched;
    }
  }

  // Expired timers (fire in deadline order; callbacks may add new ones).
  const double now = now_ms();
  while (!timers_.empty() && timers_.top().deadline_ms <= now) {
    const Timer t = timers_.top();
    timers_.pop();
    auto it = timer_fns_.find(t.id);
    if (it == timer_fns_.end()) continue;  // cancelled
    auto fn = std::move(it->second);
    timer_fns_.erase(it);
    fn();
    ++dispatched;
  }

  // Posted tasks.
  std::vector<std::function<void()>> tasks;
  {
    const std::lock_guard<std::mutex> lock(posted_mutex_);
    tasks.swap(posted_);
  }
  for (auto& task : tasks) {
    task();
    ++dispatched;
  }

  if (g_any_pending_signal != 0 &&
      (!handled_signals_.empty() || !signal_callbacks_.empty())) {
    // Clear the summary flag first so a signal landing mid-scan re-arms
    // it; then process every pending signo, not just the latest one.
    g_any_pending_signal = 0;
    for (int signo = 1; signo < kMaxSignal; ++signo) {
      if (g_pending_signals[signo] == 0) continue;
      g_pending_signals[signo] = 0;
      const auto cb = signal_callbacks_.find(signo);
      if (cb != signal_callbacks_.end()) {
        cb->second();  // non-stopping (e.g. SIGUSR1 metrics snapshot)
        ++dispatched;
      } else {
        if (signal_fn_) signal_fn_(signo);
        stop_requested_.store(true);
      }
    }
  }

  return dispatched;
}

std::uint64_t EventLoop::run() {
  std::uint64_t total = 0;
  while (!stop_requested_.load()) total += step(60000.0);
  return total;
}

bool EventLoop::run_until(const std::function<bool()>& pred,
                          double timeout_ms) {
  const double deadline = now_ms() + timeout_ms;
  while (!stop_requested_.load()) {
    if (pred()) return true;
    const double left = deadline - now_ms();
    if (left <= 0.0) return pred();
    step(left);
  }
  return pred();
}

}  // namespace sintra::net
