#include "core/config.hpp"

#include <charconv>
#include <map>
#include <sstream>
#include <stdexcept>

namespace sintra::core {

namespace {

[[noreturn]] void fail(int line, const std::string& what) {
  throw std::invalid_argument("config line " + std::to_string(line) + ": " +
                              what);
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

int parse_int(std::string_view v, int line, const std::string& key) {
  int out = 0;
  const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec != std::errc() || ptr != v.data() + v.size()) {
    fail(line, "expected an integer for '" + key + "'");
  }
  return out;
}

Endpoint parse_endpoint(std::string_view v, int line) {
  const auto colon = v.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 == v.size()) {
    fail(line, "party endpoint must be host:port");
  }
  Endpoint ep;
  ep.host = std::string(v.substr(0, colon));
  ep.port = parse_int(v.substr(colon + 1), line, "port");
  if (ep.port < 1 || ep.port > 65535) fail(line, "port out of range");
  return ep;
}

}  // namespace

GroupConfig GroupConfig::parse(std::string_view text) {
  GroupConfig cfg;
  std::map<int, Endpoint> endpoints;
  bool have_n = false, have_t = false;

  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const auto eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;

    const auto hash_pos = line.find('#');
    if (hash_pos != std::string_view::npos) line = line.substr(0, hash_pos);
    line = trim(line);
    if (line.empty()) continue;

    const auto eq = line.find('=');
    if (eq == std::string_view::npos) fail(line_no, "expected key = value");
    const std::string key{trim(line.substr(0, eq))};
    const std::string_view value = trim(line.substr(eq + 1));
    if (value.empty()) fail(line_no, "empty value for '" + key + "'");

    if (key == "n") {
      cfg.dealer.n = parse_int(value, line_no, key);
      have_n = true;
    } else if (key == "t") {
      cfg.dealer.t = parse_int(value, line_no, key);
      have_t = true;
    } else if (key == "rsa_bits") {
      cfg.dealer.rsa_bits = parse_int(value, line_no, key);
    } else if (key == "dl_p_bits") {
      cfg.dealer.dl_p_bits = parse_int(value, line_no, key);
    } else if (key == "dl_q_bits") {
      cfg.dealer.dl_q_bits = parse_int(value, line_no, key);
    } else if (key == "seed") {
      cfg.dealer.seed = static_cast<std::uint64_t>(
          parse_int(value, line_no, key));
    } else if (key == "hash") {
      if (value == "sha1") {
        cfg.dealer.hash = crypto::HashKind::kSha1;
      } else if (value == "sha256") {
        cfg.dealer.hash = crypto::HashKind::kSha256;
      } else {
        fail(line_no, "hash must be sha1 or sha256");
      }
    } else if (key == "signatures") {
      if (value == "multi") {
        cfg.dealer.sig_impl = crypto::SigImpl::kMultiSig;
      } else if (value == "threshold-rsa") {
        cfg.dealer.sig_impl = crypto::SigImpl::kThresholdRsa;
      } else {
        fail(line_no, "signatures must be multi or threshold-rsa");
      }
    } else if (key.rfind("party.", 0) == 0) {
      const int index = parse_int(key.substr(6), line_no, key);
      if (index < 0) fail(line_no, "negative party index");
      if (!endpoints.emplace(index, parse_endpoint(value, line_no)).second) {
        fail(line_no, "duplicate party." + std::to_string(index));
      }
    } else {
      fail(line_no, "unknown key '" + key + "'");
    }
  }

  if (!have_n || !have_t)
    throw std::invalid_argument("config: n and t are required");
  if (cfg.dealer.n <= 3 * cfg.dealer.t || cfg.dealer.n < 1)
    throw std::invalid_argument("config: need n > 3t");
  if (static_cast<int>(endpoints.size()) != cfg.dealer.n)
    throw std::invalid_argument(
        "config: expected exactly n = " + std::to_string(cfg.dealer.n) +
        " party endpoints, got " + std::to_string(endpoints.size()));
  for (int i = 0; i < cfg.dealer.n; ++i) {
    auto it = endpoints.find(i);
    if (it == endpoints.end())
      throw std::invalid_argument("config: missing party." +
                                  std::to_string(i));
    cfg.parties.push_back(it->second);
  }
  return cfg;
}

std::string GroupConfig::to_text() const {
  std::ostringstream out;
  out << "# SINTRA group configuration\n";
  out << "n = " << dealer.n << "\n";
  out << "t = " << dealer.t << "\n";
  out << "rsa_bits = " << dealer.rsa_bits << "\n";
  out << "dl_p_bits = " << dealer.dl_p_bits << "\n";
  out << "dl_q_bits = " << dealer.dl_q_bits << "\n";
  out << "hash = "
      << (dealer.hash == crypto::HashKind::kSha1 ? "sha1" : "sha256") << "\n";
  out << "signatures = "
      << (dealer.sig_impl == crypto::SigImpl::kThresholdRsa ? "threshold-rsa"
                                                            : "multi")
      << "\n";
  out << "seed = " << dealer.seed << "\n";
  for (std::size_t i = 0; i < parties.size(); ++i) {
    out << "party." << i << " = " << parties[i].host << ":"
        << parties[i].port << "\n";
  }
  return out.str();
}

}  // namespace sintra::core
