#include "core/link/sliding_window.hpp"

#include <algorithm>

#include "crypto/hmac.hpp"
#include "util/serde.hpp"

namespace sintra::core {

namespace {

/// Deterministic nonzero fallback epoch for links constructed without an
/// explicit one (tests, single-boot simulator runs).
std::uint64_t derived_epoch(int self, int peer) {
  std::uint64_t x = 0xd1b54a32d192ed03ULL ^
                    (static_cast<std::uint64_t>(self) << 32) ^
                    static_cast<std::uint64_t>(static_cast<std::uint32_t>(peer));
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return x == 0 ? 1 : x;
}

}  // namespace

SlidingWindowLink::SlidingWindowLink(DatagramChannel& channel, int self,
                                     int peer, Bytes link_key,
                                     Options options)
    : channel_(channel),
      self_(self),
      peer_(peer),
      link_key_(std::move(link_key)),
      options_(options),
      epoch_(options.epoch != 0 ? options.epoch : derived_epoch(self, peer)),
      jitter_state_(0x9e3779b97f4a7c15ULL ^
                    (static_cast<std::uint64_t>(self) << 32) ^
                    static_cast<std::uint64_t>(peer)) {
  stats_.rto_ms = options_.retransmit_ms;
}

Bytes SlidingWindowLink::mac(FrameType type, std::uint64_t sender_epoch,
                             std::uint64_t echo, std::uint64_t seq,
                             BytesView body) const {
  // The MAC binds direction: data flows self->peer under (self, peer),
  // our ACKs answer peer->self traffic and are bound to (peer, self)'s
  // receive side with a distinct type byte — no frame can be reflected.
  // Both session epochs are covered, so neither the sender's epoch nor
  // the echo can be forged or spliced between sessions.
  Writer w;
  w.u8(static_cast<std::uint8_t>(type));
  if (type == FrameType::kData) {
    w.u32(static_cast<std::uint32_t>(self_));
    w.u32(static_cast<std::uint32_t>(peer_));
  } else {
    w.u32(static_cast<std::uint32_t>(peer_));
    w.u32(static_cast<std::uint32_t>(self_));
  }
  w.u64(sender_epoch);
  w.u64(echo);
  w.u64(seq);
  w.bytes(body);
  return crypto::hmac(crypto::HashKind::kSha1, link_key_, w.data());
}

Bytes SlidingWindowLink::frame(FrameType type, std::uint64_t seq,
                               BytesView body) const {
  // Frames are built at transmission time, so a retransmission after the
  // peer's epoch became known (or changed) automatically carries the
  // fresh echo.
  Writer w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(epoch_);
  w.u64(peer_epoch_);
  w.u64(seq);
  w.bytes(body);
  w.bytes(mac(type, epoch_, peer_epoch_, seq, body));
  return std::move(w).take();
}

void SlidingWindowLink::send(Bytes message) {
  send(std::make_shared<const Bytes>(std::move(message)));
}

void SlidingWindowLink::send(std::shared_ptr<const Bytes> message) {
  queue_.push_back(std::move(message));
  pump();
}

void SlidingWindowLink::pump() {
  while (!queue_.empty() && in_flight_.size() < options_.window) {
    const std::uint64_t seq = next_seq_++;
    InFlight entry;
    entry.message = std::move(queue_.front());
    entry.sent_ms = channel_.now_ms();
    queue_.pop_front();
    in_flight_.emplace(seq, std::move(entry));
    transmit(seq);
  }
  arm_timer();
}

void SlidingWindowLink::transmit(std::uint64_t seq) {
  const auto it = in_flight_.find(seq);
  if (it == in_flight_.end()) return;
  channel_.send_datagram(frame(FrameType::kData, seq, *it->second.message));
}

void SlidingWindowLink::send_ack() {
  channel_.send_datagram(frame(FrameType::kAck, expected_, {}));
}

double SlidingWindowLink::jittered_rto() {
  if (options_.jitter <= 0.0) return stats_.rto_ms;
  // xorshift64*: cheap deterministic per-link jitter; randomness quality
  // is irrelevant, only desynchronization matters.
  jitter_state_ ^= jitter_state_ >> 12;
  jitter_state_ ^= jitter_state_ << 25;
  jitter_state_ ^= jitter_state_ >> 27;
  const double u =
      static_cast<double>(jitter_state_ * 0x2545f4914f6cdd1dULL >> 11) /
      static_cast<double>(1ULL << 53);
  return stats_.rto_ms * (1.0 + options_.jitter * (2.0 * u - 1.0));
}

void SlidingWindowLink::arm_timer() {
  if (timer_armed_ || in_flight_.empty()) return;
  timer_armed_ = true;
  channel_.call_later(jittered_rto(), [this] { on_timeout(); });
}

void SlidingWindowLink::on_timeout() {
  timer_armed_ = false;
  if (in_flight_.empty()) return;
  // Go-back-from-base: retransmit every unacked frame (simple and robust;
  // cumulative ACKs make over-retransmission harmless).
  retransmit_in_flight();
  // Exponential backoff until the next clean RTT sample: persistent loss
  // (or a dead peer) must not produce a fixed-rate retransmit storm.
  const double backed = stats_.rto_ms * options_.backoff;
  if (backed <= options_.max_rto_ms) {
    stats_.rto_ms = backed;
    ++stats_.backoffs;
  } else if (stats_.rto_ms < options_.max_rto_ms) {
    stats_.rto_ms = options_.max_rto_ms;
    ++stats_.backoffs;
  }
  arm_timer();
}

void SlidingWindowLink::retransmit_in_flight() {
  for (auto& [seq, entry] : in_flight_) {
    ++stats_.retransmissions;
    entry.retransmitted = true;  // Karn's rule: never RTT-sample these
    transmit(seq);
  }
}

void SlidingWindowLink::sample_rtt(double rtt_ms) {
  ++stats_.rtt_samples;
  if (stats_.srtt_ms < 0.0) {
    // First sample (RFC 6298 §2.2).
    stats_.srtt_ms = rtt_ms;
    stats_.rttvar_ms = rtt_ms / 2.0;
  } else {
    stats_.rttvar_ms =
        0.75 * stats_.rttvar_ms + 0.25 * std::abs(stats_.srtt_ms - rtt_ms);
    stats_.srtt_ms = 0.875 * stats_.srtt_ms + 0.125 * rtt_ms;
  }
  stats_.rto_ms =
      std::clamp(stats_.srtt_ms + 4.0 * stats_.rttvar_ms,
                 options_.min_rto_ms, options_.max_rto_ms);
}

void SlidingWindowLink::reset_session() {
  // The peer rebooted: its receiver starts at zero and its sender starts
  // at zero.  Discard the receive position, and renumber everything we
  // still owe it from zero — in-flight frames (oldest first) rejoin the
  // head of the queue ahead of never-sent messages, preserving FIFO.
  expected_ = 0;
  out_of_order_.clear();
  for (auto it = in_flight_.rbegin(); it != in_flight_.rend(); ++it) {
    queue_.push_front(std::move(it->second.message));
  }
  in_flight_.clear();
  next_seq_ = 0;
  base_ = 0;
  pump();
}

bool SlidingWindowLink::accept_epochs(std::uint64_t sender_epoch,
                                      std::uint64_t echo) {
  // Runs only on authenticated frames: every value here was covered by a
  // MAC under the pairwise key, so a forger cannot reach this logic and
  // a replayer can only present epochs that genuinely existed.
  if (std::find(retired_.begin(), retired_.end(), sender_epoch) !=
      retired_.end()) {
    ++stats_.drop_epoch;  // replayed frame from a dead session
    return false;
  }
  if (peer_epoch_ == 0) {
    // First authenticated contact this boot: adopt, nothing to discard.
    peer_epoch_ = sender_epoch;
    retransmit_in_flight();  // anything sent blind now carries the echo
  } else if (sender_epoch != peer_epoch_) {
    // The peer restarted.  Retire the dead epoch so its frames can never
    // be replayed into the new session, and reset the window state.
    retired_.push_back(peer_epoch_);
    if (retired_.size() > options_.max_retired_epochs) {
      retired_.erase(retired_.begin());
    }
    peer_epoch_ = sender_epoch;
    ++stats_.epoch_resets;
    peer_stale_ = false;
    reset_session();
  }
  if (echo != epoch_) {
    // The peer has not yet seen our current epoch.  echo == 0 is benign
    // bootstrap (it never heard us at all); a nonzero stale echo means a
    // previous incarnation of us held a session with this peer — count
    // that as a detected reset, once per episode.  Either way the frame
    // is numbered against state we do not have, so it must not be
    // applied; the ACK we answer with teaches the peer our epoch.
    if (echo != 0 && !peer_stale_) {
      peer_stale_ = true;
      ++stats_.epoch_resets;
    }
    ++stats_.drop_epoch;
    send_ack();
    return false;
  }
  peer_stale_ = false;
  return true;
}

void SlidingWindowLink::on_datagram(BytesView datagram) {
  try {
    Reader r(datagram);
    const auto type = static_cast<FrameType>(r.u8());
    const std::uint64_t sender_epoch = r.u64();
    const std::uint64_t echo = r.u64();
    const std::uint64_t seq = r.u64();
    const Bytes body = r.bytes();
    const Bytes tag = r.bytes();
    r.expect_end();

    if (type != FrameType::kData && type != FrameType::kAck) {
      ++stats_.drop_malformed;  // unknown frame type
      return;
    }

    // Peer's data is authenticated under (peer -> self); its ACKs answer
    // our data and are bound to (self -> peer)'s receive side.
    Writer w;
    w.u8(static_cast<std::uint8_t>(type));
    if (type == FrameType::kData) {
      w.u32(static_cast<std::uint32_t>(peer_));
      w.u32(static_cast<std::uint32_t>(self_));
    } else {
      w.u32(static_cast<std::uint32_t>(self_));
      w.u32(static_cast<std::uint32_t>(peer_));
    }
    w.u64(sender_epoch);
    w.u64(echo);
    w.u64(seq);
    w.bytes(body);
    if (!crypto::hmac_verify(crypto::HashKind::kSha1, link_key_, w.data(),
                             tag)) {
      ++stats_.drop_auth;  // forged or corrupted (incl. the §3 attack)
      return;
    }

    if (!accept_epochs(sender_epoch, echo)) return;

    if (type == FrameType::kData) {
      ++stats_.data_received;
      if (seq < expected_) {
        ++stats_.drop_duplicate;  // already delivered; re-ack below heals
      } else if (seq >= expected_ + options_.max_receive_buffer) {
        ++stats_.drop_overflow;  // beyond the buffer window: flood guard
      } else {
        if (!out_of_order_.try_emplace(seq, body).second) {
          ++stats_.drop_duplicate;  // buffered copy already held
        }
        while (!out_of_order_.empty() &&
               out_of_order_.begin()->first == expected_) {
          Bytes message = std::move(out_of_order_.begin()->second);
          out_of_order_.erase(out_of_order_.begin());
          ++expected_;
          ++stats_.delivered;
          if (deliver_cb_) deliver_cb_(std::move(message));
        }
      }
      // Always (re-)acknowledge — this is what heals lost ACKs.
      send_ack();
      return;
    }

    ++stats_.acks_received;
    // Cumulative: everything below `seq` is delivered at the peer.
    const double now = channel_.now_ms();
    while (base_ < seq) {
      const auto it = in_flight_.find(base_);
      if (it != in_flight_.end()) {
        // Karn's rule: only frames acknowledged on their first
        // transmission produce an RTT sample.
        if (!it->second.retransmitted && now >= 0.0 &&
            it->second.sent_ms >= 0.0) {
          sample_rtt(now - it->second.sent_ms);
        }
        in_flight_.erase(it);
      }
      ++base_;
    }
    pump();
  } catch (const SerdeError&) {
    ++stats_.drop_malformed;  // truncated or unparsable datagram
  }
}

}  // namespace sintra::core
