#include "core/link/sliding_window.hpp"

#include "crypto/hmac.hpp"
#include "util/serde.hpp"

namespace sintra::core {

SlidingWindowLink::SlidingWindowLink(DatagramChannel& channel, int self,
                                     int peer, Bytes link_key,
                                     Options options)
    : channel_(channel),
      self_(self),
      peer_(peer),
      link_key_(std::move(link_key)),
      options_(options) {}

Bytes SlidingWindowLink::mac(FrameType type, std::uint64_t seq,
                             BytesView body) const {
  // The MAC binds direction: data flows self->peer under (self, peer),
  // our ACKs answer peer->self traffic and are bound to (peer, self)'s
  // receive side with a distinct type byte — no frame can be reflected.
  Writer w;
  w.u8(static_cast<std::uint8_t>(type));
  if (type == FrameType::kData) {
    w.u32(static_cast<std::uint32_t>(self_));
    w.u32(static_cast<std::uint32_t>(peer_));
  } else {
    w.u32(static_cast<std::uint32_t>(peer_));
    w.u32(static_cast<std::uint32_t>(self_));
  }
  w.u64(seq);
  w.bytes(body);
  return crypto::hmac(crypto::HashKind::kSha1, link_key_, w.data());
}

Bytes SlidingWindowLink::frame(FrameType type, std::uint64_t seq,
                               BytesView body) const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(seq);
  w.bytes(body);
  w.bytes(mac(type, seq, body));
  return std::move(w).take();
}

void SlidingWindowLink::send(Bytes message) {
  queue_.push_back(std::move(message));
  pump();
}

void SlidingWindowLink::pump() {
  while (!queue_.empty() && in_flight_.size() < options_.window) {
    const std::uint64_t seq = next_seq_++;
    in_flight_.emplace(seq, std::move(queue_.front()));
    queue_.pop_front();
    transmit(seq);
  }
  arm_timer();
}

void SlidingWindowLink::transmit(std::uint64_t seq) {
  const auto it = in_flight_.find(seq);
  if (it == in_flight_.end()) return;
  channel_.send_datagram(frame(FrameType::kData, seq, it->second));
}

void SlidingWindowLink::send_ack() {
  channel_.send_datagram(frame(FrameType::kAck, expected_, {}));
}

void SlidingWindowLink::arm_timer() {
  if (timer_armed_ || in_flight_.empty()) return;
  timer_armed_ = true;
  channel_.call_later(options_.retransmit_ms, [this] { on_timeout(); });
}

void SlidingWindowLink::on_timeout() {
  timer_armed_ = false;
  if (in_flight_.empty()) return;
  // Go-back-from-base: retransmit every unacked frame (simple and robust;
  // cumulative ACKs make over-retransmission harmless).
  for (const auto& [seq, message] : in_flight_) {
    ++retransmissions_;
    transmit(seq);
  }
  arm_timer();
}

void SlidingWindowLink::on_datagram(BytesView datagram) {
  try {
    Reader r(datagram);
    const auto type = static_cast<FrameType>(r.u8());
    const std::uint64_t seq = r.u64();
    const Bytes body = r.bytes();
    const Bytes tag = r.bytes();
    r.expect_end();

    if (type == FrameType::kData) {
      // Peer's data is authenticated under (peer -> self).
      Writer w;
      w.u8(static_cast<std::uint8_t>(FrameType::kData));
      w.u32(static_cast<std::uint32_t>(peer_));
      w.u32(static_cast<std::uint32_t>(self_));
      w.u64(seq);
      w.bytes(body);
      if (!crypto::hmac_verify(crypto::HashKind::kSha1, link_key_, w.data(),
                               tag)) {
        return;  // forged or corrupted
      }
      if (seq >= expected_ &&
          seq < expected_ + options_.max_receive_buffer) {
        out_of_order_.try_emplace(seq, body);
        while (!out_of_order_.empty() &&
               out_of_order_.begin()->first == expected_) {
          Bytes message = std::move(out_of_order_.begin()->second);
          out_of_order_.erase(out_of_order_.begin());
          ++expected_;
          if (deliver_cb_) deliver_cb_(std::move(message));
        }
      }
      // Always (re-)acknowledge — this is what heals lost ACKs.
      send_ack();
      return;
    }

    if (type == FrameType::kAck) {
      // Peer's ACK acknowledges our data, authenticated under
      // (self -> peer) receive side.
      Writer w;
      w.u8(static_cast<std::uint8_t>(FrameType::kAck));
      w.u32(static_cast<std::uint32_t>(self_));
      w.u32(static_cast<std::uint32_t>(peer_));
      w.u64(seq);
      w.bytes(Bytes{});
      if (!crypto::hmac_verify(crypto::HashKind::kSha1, link_key_, w.data(),
                               tag)) {
        return;  // forged acknowledgment — the attack §3 worries about
      }
      // Cumulative: everything below `seq` is delivered at the peer.
      while (base_ < seq) {
        in_flight_.erase(base_);
        ++base_;
      }
      pump();
      return;
    }
  } catch (const SerdeError&) {
    // Malformed datagram: drop.
  }
}

}  // namespace sintra::core
