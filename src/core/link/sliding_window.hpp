// Sliding-window reliable link with authenticated acknowledgments.
//
// The paper's §3 points out that its TCP links are "subject to a
// denial-of-service attack by sending forged TCP acknowledgements" and
// that "it is planned to replace TCP by SINTRA's own sliding-window
// implementation, which will provide authenticated acknowledgments."
// This module is that replacement: a reliable FIFO exactly-once byte-
// message link over an unreliable datagram service, with every frame —
// data AND acknowledgment — authenticated by HMAC under the pairwise
// dealer key, so acknowledgments cannot be forged.
//
// Mechanics (TCP-like selective repeat):
//   - data frames carry a 64-bit sequence number; the sender keeps up to
//     `window` unacknowledged frames in flight and retransmits on a
//     per-link timeout;
//   - the receiver buffers out-of-order frames inside the window,
//     delivers in order exactly once, and returns cumulative ACKs
//     (next-expected sequence) on every data frame;
//   - duplicated, reordered and forged datagrams are all tolerated.
#pragma once

#include <deque>
#include <functional>
#include <map>

#include "util/bytes.hpp"

namespace sintra::core {

/// Abstract datagram endpoint for one peer pair (implemented by
/// sim::DatagramService in the simulator; a UDP socket in a deployment).
class DatagramChannel {
 public:
  virtual ~DatagramChannel() = default;
  virtual void send_datagram(Bytes datagram) = 0;
  virtual void call_later(double delay_ms, std::function<void()> fn) = 0;
};

class SlidingWindowLink {
 public:
  struct Options {
    std::size_t window = 32;
    double retransmit_ms = 50.0;
    /// Hard cap on buffered out-of-order frames (flooding guard).
    std::size_t max_receive_buffer = 1024;
  };

  /// `link_key` is the dealer's pairwise HMAC key; `self`/`peer` index
  /// the endpoints and are bound into every MAC so frames cannot be
  /// reflected or cross-wired.
  SlidingWindowLink(DatagramChannel& channel, int self, int peer,
                    Bytes link_key, Options options);
  SlidingWindowLink(DatagramChannel& channel, int self, int peer,
                    Bytes link_key)
      : SlidingWindowLink(channel, self, peer, std::move(link_key),
                          Options{}) {}

  /// Queues a message for reliable in-order delivery to the peer.
  void send(Bytes message);

  /// Feeds an incoming datagram (possibly corrupt/forged/duplicated).
  void on_datagram(BytesView datagram);

  /// In-order exactly-once delivery upcall.
  void set_deliver_callback(std::function<void(Bytes)> cb) {
    deliver_cb_ = std::move(cb);
  }

  // Introspection for tests and stats.
  [[nodiscard]] std::uint64_t sent_seq() const { return next_seq_; }
  [[nodiscard]] std::uint64_t acked_seq() const { return base_; }
  [[nodiscard]] std::uint64_t delivered_seq() const { return expected_; }
  [[nodiscard]] std::uint64_t retransmissions() const {
    return retransmissions_;
  }

 private:
  enum class FrameType : std::uint8_t { kData = 1, kAck = 2 };

  [[nodiscard]] Bytes mac(FrameType type, std::uint64_t seq,
                          BytesView body) const;
  [[nodiscard]] Bytes frame(FrameType type, std::uint64_t seq,
                            BytesView body) const;
  void pump();
  void transmit(std::uint64_t seq);
  void send_ack();
  void arm_timer();
  void on_timeout();

  DatagramChannel& channel_;
  int self_;
  int peer_;
  Bytes link_key_;
  Options options_;

  // Sender state.
  std::deque<Bytes> queue_;                  // not yet assigned a seq
  std::map<std::uint64_t, Bytes> in_flight_;  // seq -> message
  std::uint64_t next_seq_ = 0;
  std::uint64_t base_ = 0;  // lowest unacked
  bool timer_armed_ = false;
  std::uint64_t retransmissions_ = 0;

  // Receiver state.
  std::uint64_t expected_ = 0;
  std::map<std::uint64_t, Bytes> out_of_order_;

  std::function<void(Bytes)> deliver_cb_;
};

}  // namespace sintra::core
