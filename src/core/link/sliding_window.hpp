// Sliding-window reliable link with authenticated acknowledgments.
//
// The paper's §3 points out that its TCP links are "subject to a
// denial-of-service attack by sending forged TCP acknowledgements" and
// that "it is planned to replace TCP by SINTRA's own sliding-window
// implementation, which will provide authenticated acknowledgments."
// This module is that replacement: a reliable FIFO exactly-once byte-
// message link over an unreliable datagram service, with every frame —
// data AND acknowledgment — authenticated by HMAC under the pairwise
// dealer key, so acknowledgments cannot be forged.
//
// Mechanics (TCP-like selective repeat):
//   - data frames carry a 64-bit sequence number; the sender keeps up to
//     `window` unacknowledged frames in flight and retransmits on a
//     per-link timeout;
//   - the receiver buffers out-of-order frames inside the window,
//     delivers in order exactly once, and returns cumulative ACKs
//     (next-expected sequence) on every data frame;
//   - duplicated, reordered and forged datagrams are all tolerated.
//
// Retransmission timing (used over real sockets, see src/net/): when the
// channel provides a monotonic clock, the retransmit timeout adapts to
// the measured round-trip time (Jacobson/Karels smoothing, Karn's rule:
// retransmitted frames are never sampled), backs off exponentially on
// every expiry, and is jittered to avoid synchronized retransmit storms.
// Timing never enters protocol logic above the link — it only decides
// *when to resend*, never *what to deliver*.
//
// Session epochs (crash recovery, DESIGN.md §10): each endpoint draws a
// random per-boot epoch; every frame carries the sender's epoch plus an
// echo of the last peer epoch it authenticated, both under the MAC.
// A changed peer epoch on an authenticated frame means the peer
// restarted: the local window state is discarded (receive position and
// outgoing numbering restart at zero) instead of treating the fresh
// process as a replay attacker.  Retired epochs are remembered so
// replayed frames from a dead session are dropped, and data/ACK frames
// are only *applied* when their echo matches our current epoch — a
// sender still numbering against a previous incarnation of us cannot
// corrupt the fresh window.  Exactly-once FIFO delivery therefore holds
// per (epoch pair) session; deduplication across restarts belongs to the
// protocol layers above (delivery keys / the recovery log), as does
// re-sending payloads the dead process had accepted but not yet flushed.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "util/bytes.hpp"

namespace sintra::core {

/// Abstract datagram endpoint for one peer pair (implemented by
/// sim::DatagramService in the simulator; a UDP socket in a deployment).
class DatagramChannel {
 public:
  virtual ~DatagramChannel() = default;
  virtual void send_datagram(Bytes datagram) = 0;
  virtual void call_later(double delay_ms, std::function<void()> fn) = 0;

  /// Monotonic clock in milliseconds, used only for RTT measurement.
  /// A channel without a usable clock returns a negative value; the link
  /// then keeps its configured fixed timeout (still with backoff).
  [[nodiscard]] virtual double now_ms() const { return -1.0; }
};

class SlidingWindowLink {
 public:
  struct Options {
    std::size_t window = 32;
    /// Initial retransmission timeout (also the fixed timeout when the
    /// channel has no clock).
    double retransmit_ms = 50.0;
    /// Adaptive-timeout clamp: rto = clamp(srtt + 4·rttvar, min, max).
    double min_rto_ms = 10.0;
    double max_rto_ms = 4000.0;
    /// Multiplier applied to the timeout on every expiry (exponential
    /// backoff; reset by the next successful RTT sample).
    double backoff = 2.0;
    /// Fraction of the timeout randomized away on each arm (±jitter).
    double jitter = 0.1;
    /// Hard cap on buffered out-of-order frames (flooding guard).
    std::size_t max_receive_buffer = 1024;
    /// Per-boot session epoch carried (authenticated) in every frame.
    /// 0 derives a deterministic nonzero value from (self, peer) — fine
    /// for tests and single-boot runs; a deployment that wants restart
    /// detection must pass a fresh random epoch each boot
    /// (NetEnvironment draws one from std::random_device).
    std::uint64_t epoch = 0;
    /// Retired peer epochs remembered for replay rejection.
    std::size_t max_retired_epochs = 16;
  };

  /// Counters and timing state exposed for tests, stats dumps and the
  /// cluster runner.  Every dropped datagram is accounted to exactly one
  /// drop_* bucket.
  struct Stats {
    std::uint64_t data_received = 0;   // authenticated data frames
    std::uint64_t acks_received = 0;   // authenticated ACK frames
    std::uint64_t delivered = 0;       // messages handed to the callback
    std::uint64_t retransmissions = 0;
    std::uint64_t backoffs = 0;        // timeout expiries that backed off
    std::uint64_t rtt_samples = 0;
    double srtt_ms = -1.0;             // smoothed RTT (-1 until sampled)
    double rttvar_ms = 0.0;
    double rto_ms = 0.0;               // current retransmission timeout
    std::uint64_t drop_auth = 0;       // HMAC verification failed
    std::uint64_t drop_malformed = 0;  // truncated / unparsable / bad type
    std::uint64_t drop_overflow = 0;   // beyond the receive-buffer window
    std::uint64_t drop_duplicate = 0;  // already delivered or buffered
    /// Authenticated frames not applied for epoch reasons: retired peer
    /// epoch (dead-session replay) or an echo that is not our current
    /// epoch (the peer is still numbering against a previous session).
    std::uint64_t drop_epoch = 0;
    /// Session resets detected: the peer's epoch changed (it restarted,
    /// our window state was discarded), or an authenticated frame echoed
    /// a stale epoch of ours (a previous incarnation of us died) —
    /// counted once per stale-echo episode, not per frame.
    std::uint64_t epoch_resets = 0;
  };

  /// `link_key` is the dealer's pairwise HMAC key; `self`/`peer` index
  /// the endpoints and are bound into every MAC so frames cannot be
  /// reflected or cross-wired.
  SlidingWindowLink(DatagramChannel& channel, int self, int peer,
                    Bytes link_key, Options options);
  SlidingWindowLink(DatagramChannel& channel, int self, int peer,
                    Bytes link_key)
      : SlidingWindowLink(channel, self, peer, std::move(link_key),
                          Options{}) {}

  /// Queues a message for reliable in-order delivery to the peer.
  void send(Bytes message);

  /// Shared-buffer variant for broadcast fan-out: the caller frames a
  /// message once and every per-peer link holds the same immutable buffer
  /// instead of its own copy (NetEnvironment::send_all).
  void send(std::shared_ptr<const Bytes> message);

  /// Feeds an incoming datagram (possibly corrupt/forged/duplicated).
  void on_datagram(BytesView datagram);

  /// Sends one (authenticated) ACK frame carrying our current epoch —
  /// an epoch announcement.  Called at link bring-up so peers learn a
  /// fresh epoch (and detect a restart) without waiting for data
  /// traffic; also sent automatically in response to stale-echo frames.
  void announce() { send_ack(); }

  /// In-order exactly-once delivery upcall.
  void set_deliver_callback(std::function<void(Bytes)> cb) {
    deliver_cb_ = std::move(cb);
  }

  // Introspection for tests and stats.
  [[nodiscard]] std::uint64_t sent_seq() const { return next_seq_; }
  [[nodiscard]] std::uint64_t acked_seq() const { return base_; }
  [[nodiscard]] std::uint64_t delivered_seq() const { return expected_; }
  [[nodiscard]] std::uint64_t retransmissions() const {
    return stats_.retransmissions;
  }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  /// Queued + in-flight messages not yet acknowledged by the peer.
  [[nodiscard]] std::size_t backlog() const {
    return queue_.size() + in_flight_.size();
  }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  /// Last authenticated peer epoch (0 until the first frame arrives).
  [[nodiscard]] std::uint64_t peer_epoch() const { return peer_epoch_; }

 private:
  enum class FrameType : std::uint8_t { kData = 1, kAck = 2 };

  struct InFlight {
    std::shared_ptr<const Bytes> message;
    double sent_ms = -1.0;      // first transmission time (clock units)
    bool retransmitted = false;  // Karn's rule: never RTT-sample these
  };

  [[nodiscard]] Bytes mac(FrameType type, std::uint64_t sender_epoch,
                          std::uint64_t echo, std::uint64_t seq,
                          BytesView body) const;
  [[nodiscard]] Bytes frame(FrameType type, std::uint64_t seq,
                            BytesView body) const;
  void pump();
  void transmit(std::uint64_t seq);
  void send_ack();
  void arm_timer();
  void on_timeout();
  void sample_rtt(double rtt_ms);
  [[nodiscard]] double jittered_rto();
  /// Epoch bookkeeping for one authenticated frame; returns false when
  /// the frame must not be applied (retired epoch / stale echo).
  bool accept_epochs(std::uint64_t sender_epoch, std::uint64_t echo);
  void reset_session();
  void retransmit_in_flight();

  DatagramChannel& channel_;
  int self_;
  int peer_;
  Bytes link_key_;
  Options options_;

  // Session epochs.
  std::uint64_t epoch_;
  std::uint64_t peer_epoch_ = 0;        // 0 = not yet learned
  std::vector<std::uint64_t> retired_;  // dead peer epochs (replay guard)
  bool peer_stale_ = false;  // inside a stale-echo episode (counted once)

  // Sender state.
  std::deque<std::shared_ptr<const Bytes>> queue_;  // not yet assigned a seq
  std::map<std::uint64_t, InFlight> in_flight_;  // seq -> frame state
  std::uint64_t next_seq_ = 0;
  std::uint64_t base_ = 0;  // lowest unacked
  bool timer_armed_ = false;

  // Adaptive retransmission timeout.
  std::uint64_t jitter_state_;  // per-link deterministic LCG

  // Receiver state.
  std::uint64_t expected_ = 0;
  std::map<std::uint64_t, Bytes> out_of_order_;

  Stats stats_;
  std::function<void(Bytes)> deliver_cb_;
};

}  // namespace sintra::core
