// Group configuration file (paper §3: "SINTRA uses a configuration file
// that contains all important parameters, such as the identities of all
// parties, the system parameters n and t, the cryptographic key sizes
// etc.  A party is identified by an Internet address of the form
// hostname:port").
//
// Line-oriented `key = value` text with `#` comments:
//
//   n = 4
//   t = 1
//   rsa_bits = 1024
//   dl_p_bits = 1024
//   dl_q_bits = 160
//   hash = sha1                 # or sha256
//   signatures = multi          # or threshold-rsa
//   seed = 1
//   party.0 = zurich.example.com:7001
//   party.1 = tokyo.example.com:7001
//   ...
#pragma once

#include <string>
#include <vector>

#include "crypto/dealer.hpp"

namespace sintra::core {

/// A party's socket endpoint.
struct Endpoint {
  std::string host;
  int port = 0;

  friend bool operator==(const Endpoint&, const Endpoint&) = default;
};

struct GroupConfig {
  crypto::DealerConfig dealer;
  /// parties[i] is party i's endpoint; size must equal dealer.n.
  std::vector<Endpoint> parties;

  /// Parses the text format above; throws std::invalid_argument with a
  /// line-numbered message on any error (unknown key, bad value, missing
  /// or duplicate party, n/t inconsistency).
  static GroupConfig parse(std::string_view text);

  /// Renders back to the text format (parse(to_text()) round-trips).
  [[nodiscard]] std::string to_text() const;
};

}  // namespace sintra::core
