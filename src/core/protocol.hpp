// Base class of every SINTRA protocol instance (mirrors the Java
// `Protocol` class of paper §3).
//
// Lifecycle contract: a concrete protocol's constructor must end with
// activate(), which registers the message handler and replays any early
// messages — calling it from the base constructor would dispatch into a
// not-yet-constructed object.  Destruction (or abort()) unregisters the
// pid; late messages for it are then dropped, matching the paper's abort
// semantics ("the local instance is cleaned up, but the state of other
// parties is unspecified").
#pragma once

#include <string>

#include "core/dispatcher.hpp"
#include "core/env.hpp"

namespace sintra::core {

class Protocol {
 public:
  Protocol(Environment& env, Dispatcher& dispatcher, std::string pid)
      : env_(env), dispatcher_(dispatcher), pid_(std::move(pid)) {}

  Protocol(const Protocol&) = delete;
  Protocol& operator=(const Protocol&) = delete;

  virtual ~Protocol() { deactivate(); }

  [[nodiscard]] const std::string& pid() const { return pid_; }

  /// Terminates the local instance immediately.
  virtual void abort() { deactivate(); }

 protected:
  /// Called for every incoming message addressed to this pid.  Must not
  /// throw for malformed payloads (catch SerdeError and drop).
  virtual void on_message(PartyId from, BytesView payload) = 0;

  /// Must be invoked at the end of the most-derived constructor.
  void activate() {
    if (active_) return;
    active_ = true;
    dispatcher_.register_pid(
        pid_, [this](PartyId from, BytesView payload) {
          on_message(from, payload);
        });
  }

  void deactivate() {
    if (!active_) return;
    active_ = false;
    dispatcher_.unregister_pid(pid_);
  }

  [[nodiscard]] bool active() const { return active_; }

  /// Frames `payload` under this pid and sends it.
  void send_to(PartyId to, BytesView payload) {
    env_.send(to, frame_message(pid_, payload));
  }
  void send_all(BytesView payload) {
    env_.send_all(frame_message(pid_, payload));
  }

  Environment& env_;
  Dispatcher& dispatcher_;

 private:
  std::string pid_;
  bool active_ = false;
};

}  // namespace sintra::core
