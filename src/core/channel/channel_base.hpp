// The abstract Channel interface of the paper's class hierarchy
// (Figure 2 / §3.4): send, receive, canSend, canReceive, close,
// isClosed.  All four channel protocols implement it, so applications
// can be written against the channel abstraction and switch guarantees
// (total order / causal-secure / agreement-only / consistency-only) by
// swapping the concrete class — exactly the substitution §2.7 suggests
// ("they offer a cheap alternative to atomic broadcast").
#pragma once

#include <optional>

#include "util/bytes.hpp"

namespace sintra::core {

class ChannelBase {
 public:
  virtual ~ChannelBase() = default;

  /// Queues a payload on the channel (throws std::logic_error if closed).
  virtual void send_payload(BytesView payload) = 0;

  /// Pops the next delivered payload, if any.
  virtual std::optional<Bytes> receive_payload() = 0;

  [[nodiscard]] virtual bool can_send_payload() const = 0;
  [[nodiscard]] virtual bool can_receive_payload() const = 0;

  /// Requests termination (t+1 honest closes terminate the channel).
  virtual void close_channel() = 0;
  [[nodiscard]] virtual bool channel_closed() const = 0;
};

}  // namespace sintra::core
