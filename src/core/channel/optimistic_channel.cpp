#include "core/channel/optimistic_channel.hpp"

#include <algorithm>

#include "crypto/sha256.hpp"
#include "obs/trace.hpp"

namespace sintra::core {

namespace {
enum class Tag : std::uint8_t {
  kInitiate = 1,
  kAck = 2,
  kComplain = 3,
  kWedge = 4,
};

struct OrderRecord {
  PartyId origin;
  std::uint64_t seq;
  Bytes payload;
};

Bytes encode_order(PartyId origin, std::uint64_t seq, BytesView payload) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(origin));
  w.u64(seq);
  w.bytes(payload);
  return std::move(w).take();
}

OrderRecord decode_order(BytesView raw) {
  Reader r(raw);
  OrderRecord out;
  out.origin = static_cast<PartyId>(r.u32());
  out.seq = r.u64();
  out.payload = r.bytes();
  r.expect_end();
  return out;
}

// Wedge record: signer + epoch + (slot, closing) list + signature.
struct WedgeRecord {
  PartyId signer = -1;
  int epoch = 0;
  std::vector<std::pair<std::uint64_t, Bytes>> closings;
  Bytes sig;
};

Bytes encode_wedge(const WedgeRecord& wr) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(wr.signer));
  w.u32(static_cast<std::uint32_t>(wr.epoch));
  w.u32(static_cast<std::uint32_t>(wr.closings.size()));
  for (const auto& [slot, closing] : wr.closings) {
    w.u64(slot);
    w.bytes(closing);
  }
  w.bytes(wr.sig);
  return std::move(w).take();
}

WedgeRecord decode_wedge(BytesView raw) {
  Reader r(raw);
  WedgeRecord out;
  out.signer = static_cast<PartyId>(r.u32());
  out.epoch = static_cast<int>(r.u32());
  const std::uint32_t count = r.u32();
  if (count > 1u << 20) throw SerdeError("wedge: too many closings");
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t slot = r.u64();
    out.closings.emplace_back(slot, r.bytes());
  }
  out.sig = r.bytes();
  r.expect_end();
  return out;
}

Bytes closings_digest(
    const std::vector<std::pair<std::uint64_t, Bytes>>& closings) {
  Writer w;
  for (const auto& [slot, closing] : closings) {
    w.u64(slot);
    w.bytes(closing);
  }
  return crypto::Sha256::hash(w.data());
}

}  // namespace

OptimisticChannel::OptimisticChannel(Environment& env, Dispatcher& dispatcher,
                                     const std::string& pid)
    : Protocol(env, dispatcher, pid) {
  auto& reg = obs::registry();
  const obs::Labels labels =
      obs::party_layer_labels(env.self(), obs::layer_of(pid));
  m_deliveries_ = &reg.counter("channel.deliveries", labels);
  m_epoch_switches_ = &reg.counter("optimistic.epoch_switches", labels);
  m_complaints_ = &reg.counter("optimistic.complaints", labels);
  activate();
  open_slot(0);
}

OptimisticChannel::~OptimisticChannel() = default;

std::string OptimisticChannel::slot_pid_base(int epoch) const {
  return pid() + ".e" + std::to_string(epoch) + ".s";
}

Bytes OptimisticChannel::wedge_statement(int epoch, std::uint64_t count,
                                         BytesView digest) const {
  Writer w;
  w.str("ow-wedge");
  w.str(pid());
  w.u32(static_cast<std::uint32_t>(epoch));
  w.u64(count);
  w.bytes(digest);
  return std::move(w).take();
}

void OptimisticChannel::send(BytesView payload) {
  pending_.push_back(
      PendingMessage{own_seq_++, Bytes(payload.begin(), payload.end())});
  if (!frozen_) {
    Writer w;
    w.u8(static_cast<std::uint8_t>(Tag::kInitiate));
    w.u64(pending_.back().seq);
    w.bytes(pending_.back().payload);
    send_to(sequencer(), w.data());
  }
}

void OptimisticChannel::initiate_pending() {
  for (const auto& msg : pending_) {
    if (msg.output) continue;
    Writer w;
    w.u8(static_cast<std::uint8_t>(Tag::kInitiate));
    w.u64(msg.seq);
    w.bytes(msg.payload);
    send_to(sequencer(), w.data());
  }
}

void OptimisticChannel::suspect() {
  if (complained_ || frozen_) return;
  complained_ = true;
  Writer w;
  w.u8(static_cast<std::uint8_t>(Tag::kComplain));
  w.u32(static_cast<std::uint32_t>(epoch_));
  send_all(w.data());
}

std::optional<Bytes> OptimisticChannel::receive() {
  if (inbox_.empty()) return std::nullopt;
  Bytes out = std::move(inbox_.front());
  inbox_.pop_front();
  return out;
}

void OptimisticChannel::on_message(PartyId from, BytesView payload) {
  try {
    Reader r(payload);
    switch (static_cast<Tag>(r.u8())) {
      case Tag::kInitiate:
        handle_initiate(from, r);
        return;
      case Tag::kAck:
        handle_ack(from, r);
        return;
      case Tag::kComplain:
        handle_complain(from, r);
        return;
      case Tag::kWedge:
        handle_wedge(from, r);
        return;
      default:
        return;
    }
  } catch (const SerdeError&) {
    // drop
  }
}

void OptimisticChannel::handle_initiate(PartyId from, Reader& r) {
  const std::uint64_t seq = r.u64();
  const Bytes payload = r.bytes();
  r.expect_end();
  if (env_.self() != sequencer() || frozen_) return;
  sequencer_order(from, seq, payload);
}

void OptimisticChannel::sequencer_order(PartyId origin, std::uint64_t seq,
                                        const Bytes& payload) {
  const MessageKey key{origin, seq};
  if (ordered_keys_.contains(key) || delivered_keys_.contains(key)) return;
  ordered_keys_.insert(key);
  const std::uint64_t slot = next_slot_++;
  open_slot(slot);
  slots_[slot].vcb->send(encode_order(origin, seq, payload));
}

void OptimisticChannel::open_slot(std::uint64_t index) {
  if (slots_.contains(index)) return;
  Slot slot;
  slot.vcb = std::make_unique<VerifiableConsistentBroadcast>(
      env_, dispatcher_, slot_pid_base(epoch_) + std::to_string(index),
      sequencer());
  auto* vcb = slot.vcb.get();
  slots_.emplace(index, std::move(slot));
  // Store before wiring: a buffered final replayed during construction
  // makes the setter fire on_slot_delivered immediately, which looks the
  // slot up in slots_.
  vcb->set_deliver_callback([this, index](const Bytes& order) {
    on_slot_delivered(index, order);
  });
}

void OptimisticChannel::on_slot_delivered(std::uint64_t index,
                                          const Bytes& order) {
  if (frozen_) return;
  Slot& slot = slots_[index];
  if (slot.order.has_value()) return;
  try {
    (void)decode_order(order);  // malformed sequencer records are ignored
  } catch (const SerdeError&) {
    return;
  }
  slot.order = order;
  // The sequencer keeps the pipeline warm for receivers that have not
  // seen slot index+1's SEND yet.
  open_slot(index + 1);
  // 1-hop ACK; the quorum makes output transferable across the switch.
  Writer w;
  w.u8(static_cast<std::uint8_t>(Tag::kAck));
  w.u32(static_cast<std::uint32_t>(epoch_));
  w.u64(index);
  send_all(w.data());
  try_output();
}

void OptimisticChannel::handle_ack(PartyId from, Reader& r) {
  const int epoch = static_cast<int>(r.u32());
  const std::uint64_t index = r.u64();
  r.expect_end();
  if (epoch != epoch_ || frozen_) return;  // stale or early acks are
                                           // harmless: output also
                                           // transfers via the switch
  // Tight bound: every ack-created slot allocates a broadcast instance,
  // so a Byzantine acker must not be able to open an unbounded number.
  if (index > next_output_ + 4096) return;
  open_slot(index);
  slots_[index].acks.insert(from);
  try_output();
}

void OptimisticChannel::try_output() {
  for (;;) {
    auto it = slots_.find(next_output_);
    if (it == slots_.end()) return;
    Slot& slot = it->second;
    if (!slot.order.has_value() || slot.output) return;
    if (static_cast<int>(slot.acks.size()) < env_.n() - env_.t()) return;
    slot.output = true;
    output_record(*slot.order);
    ++next_output_;
  }
}

void OptimisticChannel::output_record(const Bytes& order) {
  OrderRecord rec;
  try {
    rec = decode_order(order);
  } catch (const SerdeError&) {
    return;
  }
  const MessageKey key{rec.origin, rec.seq};
  if (!delivered_keys_.insert(key).second) return;
  if (rec.origin == env_.self()) {
    for (auto& msg : pending_) {
      if (msg.seq == rec.seq) msg.output = true;
    }
  }
  m_deliveries_->inc();
  obs::emit(obs::EventType::kDeliver, env_.now_ms(), rec.origin, env_.self(),
            pid(), rec.payload.size(), epoch_);
  deliveries_.push_back(
      Delivery{rec.payload, rec.origin, epoch_, env_.now_ms()});
  inbox_.push_back(rec.payload);
  if (deliver_cb_) deliver_cb_(inbox_.back(), rec.origin);
}

void OptimisticChannel::handle_complain(PartyId from, Reader& r) {
  const int epoch = static_cast<int>(r.u32());
  r.expect_end();
  if (epoch != epoch_ || frozen_) return;
  m_complaints_->inc();
  complaints_.insert(from);
  if (static_cast<int>(complaints_.size()) >= env_.t() + 1) {
    // Echo the complaint so slower parties reach the quorum too, then
    // freeze the epoch.
    if (!complained_) {
      complained_ = true;
      Writer w;
      w.u8(static_cast<std::uint8_t>(Tag::kComplain));
      w.u32(static_cast<std::uint32_t>(epoch_));
      send_all(w.data());
    }
    freeze_and_wedge();
  }
}

void OptimisticChannel::freeze_and_wedge() {
  if (frozen_) return;
  frozen_ = true;
  if (wedged_) return;
  wedged_ = true;

  WedgeRecord wr;
  wr.signer = env_.self();
  wr.epoch = epoch_;
  for (const auto& [index, slot] : slots_) {
    if (slot.vcb->delivered().has_value()) {
      wr.closings.emplace_back(index, *slot.vcb->get_closing());
    }
  }
  wr.sig = env_.keys().sign(wedge_statement(
      epoch_, wr.closings.size(), closings_digest(wr.closings)));
  const Bytes record = encode_wedge(wr);

  Writer w;
  w.u8(static_cast<std::uint8_t>(Tag::kWedge));
  w.raw(record);
  send_all(w.data());
}

bool OptimisticChannel::wedge_valid(PartyId signer, BytesView wedge) const {
  WedgeRecord wr;
  try {
    wr = decode_wedge(wedge);
  } catch (const SerdeError&) {
    return false;
  }
  if (wr.signer != signer && signer >= 0) return false;
  if (wr.signer < 0 || wr.signer >= env_.n()) return false;
  if (wr.epoch != epoch_) return false;
  std::set<std::uint64_t> seen;
  for (const auto& [slot, closing] : wr.closings) {
    if (!seen.insert(slot).second) return false;
    const std::string slot_pid = slot_pid_base(wr.epoch) +
                                 std::to_string(slot) + "." +
                                 std::to_string(sequencer());
    if (!VerifiableConsistentBroadcast::is_valid_closing(env_.keys(),
                                                         slot_pid, closing)) {
      return false;
    }
  }
  return env_.keys().verify_party_sig(
      wr.signer,
      wedge_statement(wr.epoch, wr.closings.size(),
                      closings_digest(wr.closings)),
      wr.sig);
}

void OptimisticChannel::handle_wedge(PartyId from, Reader& r) {
  const Bytes record = r.raw(r.remaining());
  if (!frozen_) {
    // A wedge implies t+1 complaints happened somewhere; treat it as a
    // complaint trigger for ourselves only if it verifies.
    if (!wedge_valid(from, record)) return;
    complaints_.insert(from);
    // Do not freeze on a single wedge — wait for the complaint quorum;
    // but remember the wedge for when we do.
    wedges_.emplace(from, record);
    return;
  }
  if (wedges_.contains(from)) return;
  if (!wedge_valid(from, record)) return;
  wedges_.emplace(from, record);
  maybe_start_switch_agreement();
}

void OptimisticChannel::maybe_start_switch_agreement() {
  if (!frozen_ || switch_mvba_) return;
  // Include our own wedge (broadcast loops back through the dispatcher,
  // so it is already in wedges_ once delivered to self).
  if (static_cast<int>(wedges_.size()) < env_.n() - env_.t()) return;

  Writer proposal;
  proposal.u32(static_cast<std::uint32_t>(env_.n() - env_.t()));
  int written = 0;
  for (const auto& [signer, record] : wedges_) {
    if (written == env_.n() - env_.t()) break;
    proposal.bytes(record);
    ++written;
  }

  const int switching_epoch = epoch_;
  switch_mvba_ = std::make_unique<ArrayAgreement>(
      env_, dispatcher_, pid() + ".switch." + std::to_string(switching_epoch),
      [this](BytesView p) { return switch_proposal_valid(p); },
      ArrayAgreement::CandidateOrder::kRandomLocal);
  switch_mvba_->set_decide_callback([this](const Bytes& decided) {
    on_switch_decided(decided);
  });
  switch_mvba_->propose(proposal.data());
}

bool OptimisticChannel::switch_proposal_valid(BytesView proposal) const {
  try {
    Reader r(proposal);
    const std::uint32_t count = r.u32();
    if (count != static_cast<std::uint32_t>(env_.n() - env_.t())) return false;
    std::set<PartyId> signers;
    for (std::uint32_t i = 0; i < count; ++i) {
      const Bytes record = r.bytes();
      WedgeRecord wr = decode_wedge(record);
      if (!signers.insert(wr.signer).second) return false;
      if (!wedge_valid(wr.signer, record)) return false;
    }
    r.expect_end();
    return true;
  } catch (const SerdeError&) {
    return false;
  }
}

void OptimisticChannel::on_switch_decided(const Bytes& proposal) {
  // Union of the decided wedges' closings, output in slot order.
  std::map<std::uint64_t, Bytes> history;  // slot -> ORDER record
  try {
    Reader r(proposal);
    const std::uint32_t count = r.u32();
    for (std::uint32_t i = 0; i < count; ++i) {
      const WedgeRecord wr = decode_wedge(r.bytes());
      for (const auto& [slot, closing] : wr.closings) {
        auto payload =
            VerifiableConsistentBroadcast::payload_from_closing(closing);
        if (payload) history.emplace(slot, std::move(*payload));
      }
    }
  } catch (const SerdeError&) {
    return;  // impossible: validated proposal
  }
  for (const auto& [slot, order] : history) {
    output_record(order);
  }

  // Next epoch, next sequencer; unordered payloads are re-initiated.
  old_switches_.push_back(std::move(switch_mvba_));
  for (auto& [index, slot] : slots_) {
    old_slots_.push_back(std::move(slot.vcb));
  }
  slots_.clear();
  next_slot_ = 0;
  next_output_ = 0;
  ordered_keys_.clear();
  complaints_.clear();
  wedges_.clear();
  complained_ = false;
  wedged_ = false;
  ++epoch_;
  frozen_ = false;
  m_epoch_switches_->inc();
  obs::emit(obs::EventType::kTransition, env_.now_ms(), env_.self(), -1,
            pid(), 0, epoch_, "epoch_switch");
  open_slot(0);
  initiate_pending();
}

}  // namespace sintra::core
