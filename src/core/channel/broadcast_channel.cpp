// BroadcastChannel is a header-only template; this translation unit
// instantiates both channel types to catch compile errors early.
#include "core/channel/broadcast_channel.hpp"

namespace sintra::core {

template class BroadcastChannel<ReliableBroadcast>;
template class BroadcastChannel<ConsistentBroadcast>;

}  // namespace sintra::core
