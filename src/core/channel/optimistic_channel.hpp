// Optimistic atomic broadcast — the paper's Conclusion (§6) names this as
// the main future optimization, citing Castro–Liskov and Kursawe–Shoup:
// "optimistic protocols ... run a much simpler algorithm with one server
// acting as sequencer ... switch back to the slower mode when the server
// is suspected ... This will reduce the cost of atomic broadcast
// essentially to a single reliable broadcast per delivered message."
//
// This module implements a Kursawe–Shoup-style simplification:
//
// Fast path (epoch e, sequencer = e mod n):
//   - senders hand payloads to the sequencer (INITIATE);
//   - the sequencer orders each payload into consecutive *slots*, each a
//     verifiable consistent broadcast (so every slot has a transferable
//     closing message);
//   - on delivering a slot, a party broadcasts a 1-hop ACK; a slot is
//     output to the application once n−t ACKs arrive and all earlier
//     slots are output.  The ACK quorum is what makes the epoch switch
//     safe: anything output by one honest party is held by ≥ n−2t ≥ t+1
//     honest parties, so every quorum of wedges sees it.
//
// Pessimistic switch:
//   - suspicion is external (the application's timeout policy — timing
//     never enters protocol logic, exactly as the paper's optimistic
//     protocols delegate suspicion to failure detectors/timeouts):
//     suspect() broadcasts a COMPLAIN;
//   - t+1 COMPLAINs freeze the epoch; each party signs a WEDGE carrying
//     its delivered prefix and all its closing messages;
//   - one multi-valued Byzantine agreement decides a set of n−t valid
//     wedges; the longest prefix among them becomes the epoch's
//     definitive history (its closings let everyone catch up), and the
//     next epoch starts with the next sequencer;
//   - unordered payloads are re-initiated automatically.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>

#include "core/agreement/array_agreement.hpp"
#include "core/broadcast/consistent_broadcast.hpp"
#include "obs/metrics.hpp"

namespace sintra::core {

class OptimisticChannel : public Protocol {
 public:
  OptimisticChannel(Environment& env, Dispatcher& dispatcher,
                    const std::string& pid);
  ~OptimisticChannel() override;

  /// Queues a payload for totally-ordered delivery.
  void send(BytesView payload);

  /// Signals suspicion of the current epoch's sequencer (driven by an
  /// application-level timeout; never called from protocol logic).
  void suspect();

  std::optional<Bytes> receive();
  [[nodiscard]] bool can_receive() const { return !inbox_.empty(); }

  [[nodiscard]] int epoch() const { return epoch_; }
  [[nodiscard]] PartyId sequencer() const { return epoch_ % env_.n(); }
  [[nodiscard]] int switches() const { return epoch_; }

  struct Delivery {
    Bytes payload;
    PartyId origin;
    int epoch;
    double time_ms;
  };
  [[nodiscard]] const std::vector<Delivery>& deliveries() const {
    return deliveries_;
  }

  void set_deliver_callback(
      std::function<void(const Bytes&, PartyId origin)> cb) {
    deliver_cb_ = std::move(cb);
  }

 protected:
  void on_message(PartyId from, BytesView payload) override;

 private:
  using MessageKey = std::pair<PartyId, std::uint64_t>;  // (origin, seq)

  struct Slot {
    std::unique_ptr<VerifiableConsistentBroadcast> vcb;
    std::optional<Bytes> order;  // delivered ORDER record
    std::set<PartyId> acks;
    bool output = false;
  };

  struct PendingMessage {
    std::uint64_t seq;
    Bytes payload;
    bool output = false;
  };

  [[nodiscard]] std::string slot_pid_base(int epoch) const;
  [[nodiscard]] Bytes wedge_statement(int epoch, std::uint64_t len,
                                      BytesView closings_digest) const;

  void initiate_pending();
  void handle_initiate(PartyId from, Reader& r);
  void sequencer_order(PartyId origin, std::uint64_t seq,
                       const Bytes& payload);
  void open_slot(std::uint64_t index);
  void on_slot_delivered(std::uint64_t index, const Bytes& order);
  void handle_ack(PartyId from, Reader& r);
  void try_output();
  void handle_complain(PartyId from, Reader& r);
  void freeze_and_wedge();
  void handle_wedge(PartyId from, Reader& r);
  [[nodiscard]] bool wedge_valid(PartyId signer, BytesView wedge) const;
  void maybe_start_switch_agreement();
  [[nodiscard]] bool switch_proposal_valid(BytesView proposal) const;
  void on_switch_decided(const Bytes& proposal);
  void output_record(const Bytes& order);

  int epoch_ = 0;
  bool frozen_ = false;

  // Sender side.
  std::uint64_t own_seq_ = 0;
  std::vector<PendingMessage> pending_;

  // Sequencer side.
  std::uint64_t next_slot_ = 0;
  std::set<MessageKey> ordered_keys_;

  // Receiver side.
  std::map<std::uint64_t, Slot> slots_;
  std::uint64_t next_output_ = 0;
  std::set<MessageKey> delivered_keys_;

  // Switch machinery.
  std::set<PartyId> complaints_;
  bool complained_ = false;
  bool wedged_ = false;
  std::map<PartyId, Bytes> wedges_;  // verified wedge records (serialized)
  std::unique_ptr<ArrayAgreement> switch_mvba_;
  std::vector<std::unique_ptr<ArrayAgreement>> old_switches_;
  std::vector<std::unique_ptr<VerifiableConsistentBroadcast>> old_slots_;

  std::deque<Bytes> inbox_;
  std::vector<Delivery> deliveries_;
  std::function<void(const Bytes&, PartyId)> deliver_cb_;

  // Instrumentation handles (obs/metrics.hpp); measurement only.
  obs::Counter* m_deliveries_ = nullptr;
  obs::Counter* m_epoch_switches_ = nullptr;
  obs::Counter* m_complaints_ = nullptr;
};

}  // namespace sintra::core
